// Package cure is a from-scratch Go implementation of CURE ("CURE for
// Cubes: Cubing Using a ROLAP Engine", Morfonios & Ioannidis, VLDB 2006):
// a ROLAP data-cube construction method that handles dimension
// hierarchies end to end — a hierarchical execution plan with pipelined
// shared sorting, external partitioning for fact tables larger than
// memory, and a redundancy-eliminating relational storage format (trivial
// tuples, normal tuples, and common-aggregate tuples with a shared
// AGGREGATES relation).
//
// This root package is a thin facade over the implementation packages:
//
//   - internal/hierarchy — dimensions, levels, roll-up maps
//   - internal/relation  — fact tables and their binary persistence
//   - internal/core      — the CURE algorithm and its variants
//   - internal/query     — node queries over materialized cubes
//   - internal/gen       — benchmark dataset generators
//   - internal/bench     — the paper's experiment suite
//
// Quick start:
//
//	stats, err := cure.Build(cure.BuildOptions{
//	    Dir:      "cube/",
//	    FactPath: "sales.bin",
//	    Hier:     schema,
//	    AggSpecs: []cure.AggSpec{{Func: cure.AggSum, Measure: 0}},
//	})
//	eng, err := cure.OpenCube("cube/")
//	err = eng.NodeQuery(id, func(row cure.Row) error { ... })
//
// See the runnable programs under examples/ and the experiment harness in
// cmd/cubebench.
package cure

import (
	"io"

	"cure/internal/core"
	"cure/internal/lattice"
	"cure/internal/obsv"
	"cure/internal/query"
	"cure/internal/relation"
)

// Re-exported building blocks of the public API.
type (
	// BuildOptions configures a cube build; see core.Options.
	BuildOptions = core.Options
	// BuildStats reports a completed build.
	BuildStats = core.BuildStats
	// AggSpec defines one aggregate (function + measure column).
	AggSpec = relation.AggSpec
	// FactTable is the in-memory columnar fact table.
	FactTable = relation.FactTable
	// Engine answers node queries over a cube directory.
	Engine = query.Engine
	// Row is one node-query result tuple.
	Row = query.Row
	// NodeID identifies a lattice node.
	NodeID = lattice.NodeID
	// QueryOptions configures cache behaviour of a query engine.
	QueryOptions = query.Options
	// Registry collects counters, gauges, histograms, and phase spans
	// when attached to BuildOptions.Metrics or QueryOptions.Metrics.
	Registry = obsv.Registry
	// MetricsSnapshot is a point-in-time copy of a Registry's contents.
	MetricsSnapshot = obsv.Snapshot
	// TraceWriter streams JSONL plan-traversal events during a build.
	TraceWriter = obsv.TraceWriter
	// Sampler periodically records runtime memory statistics into a
	// registry; see StartSampler.
	Sampler = obsv.Sampler
	// SamplerOptions configures a Sampler's interval, ring capacity, and
	// optional memory-budget override.
	SamplerOptions = obsv.SamplerOptions
	// MemSample is one runtime memory observation from a Sampler.
	MemSample = obsv.MemSample
	// TelemetryServer serves /metrics, /healthz, /progress, and pprof
	// for a registry; see StartTelemetry.
	TelemetryServer = obsv.Server
	// TelemetryOptions configures a TelemetryServer.
	TelemetryOptions = obsv.ServerOptions
)

// Aggregate functions.
const (
	AggSum   = relation.AggSum
	AggCount = relation.AggCount
	AggMin   = relation.AggMin
	AggMax   = relation.AggMax
)

// Build constructs a cube from a fact table on disk, choosing between the
// in-memory and externally partitioned paths by the memory budget.
func Build(opts BuildOptions) (*BuildStats, error) { return core.Build(opts) }

// BuildFromTable persists an in-memory fact table into the cube directory
// and cubes it in memory.
func BuildFromTable(t *FactTable, opts BuildOptions) (*BuildStats, error) {
	return core.BuildFromTable(t, opts)
}

// OpenCube opens a cube directory for querying with full caching (the
// paper's recommended configuration).
func OpenCube(dir string) (*Engine, error) { return query.OpenDefault(dir) }

// OpenCubeWith opens a cube with explicit cache settings.
func OpenCubeWith(dir string, opts QueryOptions) (*Engine, error) { return query.Open(dir, opts) }

// NewMetrics creates an observability registry to attach to
// BuildOptions.Metrics or QueryOptions.Metrics.
func NewMetrics() *Registry { return obsv.NewRegistry() }

// NewTrace creates a JSONL trace sink; attach it to a registry with
// Registry.SetTrace to stream plan-traversal events during builds.
func NewTrace(w io.Writer) *TraceWriter { return obsv.NewTraceWriter(w) }

// WriteMetrics renders a registry snapshot in Prometheus text exposition
// format (version 0.0.4).
func WriteMetrics(w io.Writer, s *MetricsSnapshot) error { return obsv.WriteProm(w, s) }

// StartSampler begins sampling runtime memory statistics into the
// registry at opts.Interval; stop it with Sampler.Stop.
func StartSampler(r *Registry, opts SamplerOptions) *Sampler { return obsv.StartSampler(r, opts) }

// StartTelemetry serves /metrics, /healthz, /progress, and /debug/pprof
// for the registry on addr (e.g. "127.0.0.1:9090"; ":0" picks a free
// port, see TelemetryServer.Addr). Close it with TelemetryServer.Close.
func StartTelemetry(addr string, r *Registry, opts TelemetryOptions) (*TelemetryServer, error) {
	return obsv.StartServer(addr, r, opts)
}
