module cure

go 1.22
