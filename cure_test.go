package cure_test

// End-to-end tests through the public facade: the API a downstream user
// sees must build, query, slice, update, verify, and diff without
// reaching into internal packages beyond type construction.

import (
	"path/filepath"
	"testing"

	cure "cure"
	"cure/internal/gen"
	"cure/internal/hierarchy"
	"cure/internal/query"
	"cure/internal/relation"
	"cure/internal/update"
)

func TestFacadeEndToEnd(t *testing.T) {
	ft, hier, err := gen.APB(0.0003, 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "cube")
	stats, err := cure.BuildFromTable(ft, cure.BuildOptions{
		Dir:  dir,
		Hier: hier,
		AggSpecs: []cure.AggSpec{
			{Func: cure.AggSum, Measure: 1},
			{Func: cure.AggCount},
		},
		Plus: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesMaterialized == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	eng, err := cure.OpenCube(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// A roll-up walk from base Product level to Division.
	node := eng.Enum().Encode([]int{0, 2, 3, 1})
	for lvl := 0; lvl < 5; lvl++ {
		up, ok := eng.RollUp(node, 0)
		if !ok {
			t.Fatalf("roll-up stopped at level %d", lvl)
		}
		node = up
	}
	var rows int
	var total float64
	if err := eng.NodeQuery(node, func(row cure.Row) error {
		rows++
		total += row.Aggrs[0]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows != 3 { // |Division| = 3
		t.Errorf("division rows = %d, want 3", rows)
	}
	// The division totals must sum to the grand total.
	var grand float64
	if err := eng.NodeQuery(eng.Enum().RootID(), func(row cure.Row) error {
		grand = row.Aggrs[0]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != grand {
		t.Errorf("division sum %v != grand total %v", total, grand)
	}

	// Verify through the facade-exposed engine.
	rep, err := eng.Verify(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verification failed: %v", rep.Errors)
	}
}

func TestFacadeBuildFromDiskWithBudget(t *testing.T) {
	dir := t.TempDir()
	factPath := filepath.Join(dir, "apb.bin")
	if _, _, err := gen.APBToFile(factPath, 0.002, 2); err != nil {
		t.Fatal(err)
	}
	stats, err := cure.Build(cure.BuildOptions{
		Dir:          filepath.Join(dir, "cube"),
		FactPath:     factPath,
		Hier:         gen.APBSchema(),
		AggSpecs:     []cure.AggSpec{{Func: cure.AggSum, Measure: 0}, {Func: cure.AggCount}},
		MemoryBudget: 256 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partitioned {
		t.Fatal("small budget did not trigger partitioning")
	}
	eng, err := cure.OpenCubeWith(filepath.Join(dir, "cube"), cure.QueryOptions{CacheFraction: 0.5, PinAggregates: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rep, err := eng.Verify(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("partitioned cube failed verification: %v", rep.Errors)
	}
}

func TestFacadeUpdateAndDiff(t *testing.T) {
	// Build two cubes: one incrementally maintained, one rebuilt; they
	// must be query-equivalent (exercises update + diff together through
	// public-ish surfaces).
	hier, err := hierarchy.NewSchema(
		hierarchy.NewFlatDim("A", 10),
		hierarchy.NewFlatDim("B", 6),
	)
	if err != nil {
		t.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"A", "B"}, MeasureNames: []string{"M"}}
	base := relation.NewFactTable(schema, 100)
	for i := 0; i < 100; i++ {
		base.Append([]int32{int32(i % 10), int32(i % 6)}, []float64{float64(i % 7)})
	}
	delta := relation.NewFactTable(schema, 20)
	for i := 0; i < 20; i++ {
		delta.Append([]int32{int32(i % 10), int32((i + 3) % 6)}, []float64{float64(i % 5)})
	}
	specs := []cure.AggSpec{{Func: cure.AggSum, Measure: 0}, {Func: cure.AggCount}}

	dir := t.TempDir()
	oldDir := filepath.Join(dir, "v1")
	if _, err := cure.BuildFromTable(base, cure.BuildOptions{Dir: oldDir, Hier: hier, AggSpecs: specs}); err != nil {
		t.Fatal(err)
	}
	newDir := filepath.Join(dir, "v2")
	if _, err := update.Apply(update.Options{OldDir: oldDir, NewDir: newDir, Delta: delta}); err != nil {
		t.Fatal(err)
	}
	refDir := filepath.Join(dir, "ref")
	combined := relation.NewFactTable(schema, 120)
	for _, tbl := range []*relation.FactTable{base, delta} {
		dims := make([]int32, 2)
		meas := make([]float64, 1)
		for r := 0; r < tbl.Len(); r++ {
			dims = tbl.DimRow(r, dims)
			meas = tbl.MeasureRow(r, meas)
			combined.Append(dims, meas)
		}
	}
	if _, err := cure.BuildFromTable(combined, cure.BuildOptions{Dir: refDir, Hier: hier, AggSpecs: specs}); err != nil {
		t.Fatal(err)
	}
	a, err := cure.OpenCube(newDir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := cure.OpenCube(refDir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rep, err := query.Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equal() {
		t.Fatalf("incrementally updated cube diverges from rebuild: %v", rep.Differences)
	}
}
