package lattice

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cure/internal/hierarchy"
)

// paperSchema reproduces the running example of §3: A0 → A1 → A2,
// B0 → B1, and flat C. Cardinalities are immaterial to enumeration.
func paperSchema(t *testing.T) *hierarchy.Schema {
	t.Helper()
	am1 := hierarchy.BuildContiguousMap(8, 4)
	am2 := hierarchy.ComposeMaps(am1, hierarchy.BuildContiguousMap(4, 2))
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1", "A2"}, []int32{8, 4, 2}, [][]int32{am1, am2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := hierarchy.NewLinearDim("B", []string{"B0", "B1"}, []int32{6, 3}, [][]int32{hierarchy.BuildContiguousMap(6, 3)})
	if err != nil {
		t.Fatal(err)
	}
	c := hierarchy.NewFlatDim("C", 4)
	s, err := hierarchy.NewSchema(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEnumMatchesPaperFigure6(t *testing.T) {
	e := NewEnum(paperSchema(t))
	if e.NumNodes() != 24 {
		t.Fatalf("NumNodes = %d, want 24", e.NumNodes())
	}
	// Spot-check ids against Figure 6 of the paper.
	cases := []struct {
		levels []int
		id     NodeID
	}{
		{[]int{0, 0, 0}, 0},  // A0B0C0
		{[]int{1, 0, 0}, 1},  // A1B0C0
		{[]int{2, 0, 0}, 2},  // A2B0C0
		{[]int{3, 0, 0}, 3},  // B0C0
		{[]int{0, 1, 0}, 4},  // A0B1C0
		{[]int{3, 1, 0}, 7},  // B1C0
		{[]int{0, 2, 0}, 8},  // A0C0
		{[]int{3, 2, 0}, 11}, // C0
		{[]int{0, 0, 1}, 12}, // A0B0
		{[]int{3, 0, 1}, 15}, // B0
		{[]int{1, 1, 1}, 17}, // A1B1
		{[]int{1, 2, 1}, 21}, // A1 — the paper's decode example
		{[]int{2, 2, 1}, 22}, // A2
		{[]int{3, 2, 1}, 23}, // ∅
	}
	for _, tc := range cases {
		if got := e.Encode(tc.levels); got != tc.id {
			t.Errorf("Encode(%v) = %d, want %d", tc.levels, got, tc.id)
		}
		if got := e.Decode(tc.id, nil); !reflect.DeepEqual(got, tc.levels) {
			t.Errorf("Decode(%d) = %v, want %v", tc.id, got, tc.levels)
		}
	}
	if e.RootID() != 23 {
		t.Errorf("RootID = %d, want 23", e.RootID())
	}
}

func TestEnumRoundTripProperty(t *testing.T) {
	e := NewEnum(paperSchema(t))
	f := func(raw uint16) bool {
		id := NodeID(int64(raw) % e.NumNodes())
		return e.Encode(e.Decode(id, nil)) == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEnumValid(t *testing.T) {
	e := NewEnum(paperSchema(t))
	if !e.Valid(0) || !e.Valid(23) {
		t.Error("valid ids rejected")
	}
	if e.Valid(-1) || e.Valid(24) {
		t.Error("invalid ids accepted")
	}
}

func TestName(t *testing.T) {
	e := NewEnum(paperSchema(t))
	if got := e.Name(23); got != "∅" {
		t.Errorf("Name(root) = %q", got)
	}
	if got := e.Name(21); got != "A[A1]" {
		t.Errorf("Name(21) = %q", got)
	}
	if got := e.Name(0); got != "A[A0]B[B0]C[C]" {
		t.Errorf("Name(0) = %q", got)
	}
}

func TestGroupingArity(t *testing.T) {
	e := NewEnum(paperSchema(t))
	if e.GroupingArity(23) != 0 || e.GroupingArity(21) != 1 || e.GroupingArity(0) != 3 {
		t.Error("GroupingArity wrong")
	}
}

func TestPlanParentMatchesFigure4(t *testing.T) {
	e := NewEnum(paperSchema(t))
	cases := []struct {
		node, parent NodeID
	}{
		{21, 22}, // A1 ← A2 (dashed)
		{20, 21}, // A0 ← A1 (dashed)
		{22, 23}, // A2 ← ∅ (solid)
		{19, 23}, // B1 ← ∅ (solid)
		{11, 23}, // C0 ← ∅ (solid)
		{16, 20}, // A0B1 ← A0 (solid)
		{12, 16}, // A0B0 ← A0B1 (dashed)
		{0, 12},  // A0B0C0 ← A0B0 (solid)
		{15, 19}, // B0 ← B1 (dashed)
		{18, 22}, // A2B1 ← A2 (solid)
		{14, 18}, // A2B0 ← A2B1 (dashed)
	}
	for _, tc := range cases {
		p, ok := e.PlanParent(tc.node)
		if !ok || p != tc.parent {
			t.Errorf("PlanParent(%s) = %s, want %s", e.Name(tc.node), e.Name(p), e.Name(tc.parent))
		}
	}
	if _, ok := e.PlanParent(e.RootID()); ok {
		t.Error("root has a parent")
	}
}

func TestPlanCoversAllNodesExactlyOnce(t *testing.T) {
	e := NewEnum(paperSchema(t))
	seen := map[NodeID]int{}
	var walk func(id NodeID)
	walk = func(id NodeID) {
		seen[id]++
		for _, c := range e.PlanChildren(id) {
			walk(c)
		}
	}
	walk(e.RootID())
	if len(seen) != 24 {
		t.Fatalf("plan visits %d nodes, want 24", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("node %s visited %d times", e.Name(id), n)
		}
	}
}

func TestPlanChildrenAreConsistentWithPlanParent(t *testing.T) {
	e := NewEnum(paperSchema(t))
	for _, id := range e.AllNodes() {
		for _, c := range e.PlanChildren(id) {
			p, ok := e.PlanParent(c)
			if !ok || p != id {
				t.Errorf("PlanParent(%s) = %s, want %s", e.Name(c), e.Name(p), e.Name(id))
			}
		}
	}
}

func TestPlanHeightIsTallest(t *testing.T) {
	// §3.1: for the running example P3 has height 6 (edges), i.e. the
	// longest root-to-leaf path has 7 nodes.
	e := NewEnum(paperSchema(t))
	if got := e.PlanHeight(e.RootID()); got != 7 {
		t.Errorf("PlanHeight = %d nodes, want 7", got)
	}
}

func TestPlanPath(t *testing.T) {
	e := NewEnum(paperSchema(t))
	got := e.PlanPath(0) // A0B0C0
	want := []NodeID{23, 22, 21, 20, 16, 12, 0}
	if !reflect.DeepEqual(got, want) {
		names := make([]string, len(got))
		for i, id := range got {
			names[i] = e.Name(id)
		}
		t.Errorf("PlanPath(A0B0C0) = %v (%v), want %v", got, names, want)
	}
	if got := e.PlanPath(23); !reflect.DeepEqual(got, []NodeID{23}) {
		t.Errorf("PlanPath(root) = %v", got)
	}
}

func TestPlanPathFrom(t *testing.T) {
	e := NewEnum(paperSchema(t))
	// Partitioned build with L = 1: nodes with dim A at level ≤ 1 are
	// built inside partitions rooted at A1; their trivial-tuple sharing
	// must not cross above A1.
	got := e.PlanPathFrom(0, 1) // A0B0C0, root at A1
	want := []NodeID{21, 20, 16, 12, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanPathFrom = %v, want %v", got, want)
	}
	// A node outside the subtree keeps its full path.
	full := e.PlanPath(11)
	if got := e.PlanPathFrom(11, 1); !reflect.DeepEqual(got, full) {
		t.Errorf("PlanPathFrom outside subtree = %v, want full %v", got, full)
	}
}

func TestRefines(t *testing.T) {
	e := NewEnum(paperSchema(t))
	if !e.Refines(0, 23) { // base refines ∅
		t.Error("A0B0C0 must refine ∅")
	}
	if !e.Refines(0, 21) { // A0B0C0 refines A1
		t.Error("A0B0C0 must refine A1")
	}
	if e.Refines(21, 0) {
		t.Error("A1 must not refine A0B0C0")
	}
	if !e.Refines(17, 17) {
		t.Error("node must refine itself")
	}
	if e.Refines(15, 11) { // B0 vs C0: incomparable
		t.Error("B0 must not refine C0")
	}
}

func TestRefinesHoldsAlongPlanPaths(t *testing.T) {
	// Property: every node refines all of its plan ancestors — the
	// invariant trivial-tuple sharing relies on.
	e := NewEnum(paperSchema(t))
	for _, id := range e.AllNodes() {
		for _, anc := range e.PlanPath(id) {
			if !e.Refines(id, anc) {
				t.Errorf("%s does not refine plan ancestor %s", e.Name(id), e.Name(anc))
			}
		}
	}
}

// complexTimeSchema is the 1-dimensional cube of Figure 5.
func complexTimeSchema(t *testing.T) *hierarchy.Schema {
	t.Helper()
	const days = 728
	d := &hierarchy.Dim{
		Name: "time",
		Levels: []hierarchy.Level{
			{Name: "day", Card: days, RollsUpTo: []int{1, 2}},
			{Name: "week", Card: 104, Map: hierarchy.BuildContiguousMap(days, 104), RollsUpTo: []int{3}},
			{Name: "month", Card: 24, Map: hierarchy.BuildContiguousMap(days, 24), RollsUpTo: []int{3}},
			{Name: "year", Card: 2, Map: hierarchy.BuildContiguousMap(days, 2)},
		},
	}
	if err := d.Finalize(); err != nil {
		t.Fatal(err)
	}
	s, err := hierarchy.NewSchema(d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestComplexHierarchyPlanMatchesFigure5b(t *testing.T) {
	e := NewEnum(complexTimeSchema(t))
	if e.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", e.NumNodes())
	}
	// Level indices: day=0, week=1, month=2, year=3, ALL=4. Node id of a
	// 1-dim schema is just the level.
	root := e.RootID()
	if root != 4 {
		t.Fatalf("root = %d", root)
	}
	if got := e.PlanChildren(root); !reflect.DeepEqual(got, []NodeID{3}) {
		t.Errorf("children(∅) = %v, want [year]", got)
	}
	if got := e.PlanChildren(3); !reflect.DeepEqual(got, []NodeID{1, 2}) {
		t.Errorf("children(year) = %v, want [week month]", got)
	}
	if got := e.PlanChildren(1); !reflect.DeepEqual(got, []NodeID{0}) {
		t.Errorf("children(week) = %v, want [day]", got)
	}
	if got := e.PlanChildren(2); len(got) != 0 {
		t.Errorf("children(month) = %v, want none (month→day edge discarded)", got)
	}
	if got := e.PlanChildren(0); len(got) != 0 {
		t.Errorf("children(day) = %v", got)
	}
	// Every node still covered exactly once.
	seen := map[NodeID]bool{}
	var walk func(id NodeID)
	walk = func(id NodeID) {
		seen[id] = true
		for _, c := range e.PlanChildren(id) {
			walk(c)
		}
	}
	walk(root)
	if len(seen) != 5 {
		t.Errorf("plan covers %d of 5 nodes", len(seen))
	}
}

func TestPlanCoverageRandomSchemas(t *testing.T) {
	// Property: for random linear schemas the plan tree covers every
	// lattice node exactly once.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		numDims := 1 + rng.Intn(4)
		dims := make([]*hierarchy.Dim, numDims)
		for i := range dims {
			numLevels := 1 + rng.Intn(3)
			cards := make([]int32, numLevels)
			names := make([]string, numLevels)
			cards[0] = int32(4 + rng.Intn(20))
			names[0] = string(rune('A'+i)) + "0"
			maps := make([][]int32, 0, numLevels-1)
			prev := cards[0]
			var prevMap []int32
			for l := 1; l < numLevels; l++ {
				c := prev/2 + 1
				cards[l] = c
				names[l] = string(rune('A'+i)) + string(rune('0'+l))
				step := hierarchy.BuildContiguousMap(prev, c)
				if prevMap == nil {
					prevMap = step
				} else {
					prevMap = hierarchy.ComposeMaps(prevMap, step)
				}
				maps = append(maps, prevMap)
				prev = c
			}
			d, err := hierarchy.NewLinearDim(string(rune('A'+i)), names, cards, maps)
			if err != nil {
				t.Fatal(err)
			}
			dims[i] = d
		}
		s, err := hierarchy.NewSchema(dims...)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEnum(s)
		seen := map[NodeID]int{}
		var walk func(id NodeID)
		walk = func(id NodeID) {
			seen[id]++
			for _, c := range e.PlanChildren(id) {
				walk(c)
			}
		}
		walk(e.RootID())
		if int64(len(seen)) != e.NumNodes() {
			t.Fatalf("trial %d: covered %d of %d nodes", trial, len(seen), e.NumNodes())
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("trial %d: node %s visited %d times", trial, e.Name(id), n)
			}
		}
	}
}

func TestPlanCoverageRandomComplexHierarchies(t *testing.T) {
	// Property: even for random DAG (complex) hierarchies, the plan tree
	// visits every lattice node exactly once and refinement holds along
	// plan paths.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		numDims := 1 + rng.Intn(3)
		dims := make([]*hierarchy.Dim, numDims)
		for i := range dims {
			numLevels := 2 + rng.Intn(3)
			levels := make([]hierarchy.Level, numLevels)
			baseCard := int32(8 + rng.Intn(24))
			levels[0] = hierarchy.Level{Name: "l0", Card: baseCard}
			for l := 1; l < numLevels; l++ {
				card := baseCard / int32(1<<l)
				if card < 1 {
					card = 1
				}
				levels[l] = hierarchy.Level{
					Name: string(rune('a' + l)),
					Card: card,
					Map:  hierarchy.BuildContiguousMap(baseCard, card),
				}
			}
			// Random roll-up DAG: every level rolls up into one or two
			// strictly coarser levels.
			for l := 0; l < numLevels-1; l++ {
				ups := []int{l + 1}
				if l+2 < numLevels && rng.Intn(2) == 0 {
					ups = append(ups, l+2+rng.Intn(numLevels-l-2))
				}
				levels[l].RollsUpTo = ups
			}
			d := &hierarchy.Dim{Name: string(rune('A' + i)), Levels: levels}
			if err := d.Finalize(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			dims[i] = d
		}
		s, err := hierarchy.NewSchema(dims...)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEnum(s)
		seen := map[NodeID]int{}
		var walk func(id NodeID)
		walk = func(id NodeID) {
			seen[id]++
			for _, c := range e.PlanChildren(id) {
				walk(c)
			}
		}
		walk(e.RootID())
		if int64(len(seen)) != e.NumNodes() {
			t.Fatalf("trial %d: covered %d of %d nodes", trial, len(seen), e.NumNodes())
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("trial %d: node %s visited %d times", trial, e.Name(id), n)
			}
			for _, anc := range e.PlanPath(id) {
				if !e.Refines(id, anc) {
					t.Fatalf("trial %d: %s does not refine plan ancestor %s", trial, e.Name(id), e.Name(anc))
				}
			}
		}
	}
}

func TestPlanPathShort(t *testing.T) {
	e := NewEnum(paperSchema(t))
	// Under P2 the parent chain drops the rightmost dimension whole:
	// A0B0C0 → A0B0 → A0 → ∅ (compare P3's seven-node path).
	got := e.PlanPathShort(0)
	want := []NodeID{23, 20, 12, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanPathShort(A0B0C0) = %v, want %v", got, want)
	}
	if _, ok := e.PlanParentShort(e.RootID()); ok {
		t.Error("root has a short-plan parent")
	}
	// Every node still refines its short-plan ancestors.
	for _, id := range e.AllNodes() {
		for _, anc := range e.PlanPathShort(id) {
			if !e.Refines(id, anc) {
				t.Errorf("%s does not refine short-plan ancestor %s", e.Name(id), e.Name(anc))
			}
		}
	}
}
