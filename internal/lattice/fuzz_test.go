package lattice

import (
	"testing"

	"cure/internal/hierarchy"
)

// FuzzEncodeDecode checks the mixed-radix node enumeration over arbitrary
// ids: valid ids must round-trip, and plan parents must stay valid.
func FuzzEncodeDecode(f *testing.F) {
	am := hierarchy.BuildContiguousMap(8, 4)
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1"}, []int32{8, 4}, [][]int32{am})
	if err != nil {
		f.Fatal(err)
	}
	s, err := hierarchy.NewSchema(a, hierarchy.NewFlatDim("B", 5), hierarchy.NewFlatDim("C", 3))
	if err != nil {
		f.Fatal(err)
	}
	e := NewEnum(s)
	f.Add(int64(0))
	f.Add(int64(11))
	f.Fuzz(func(t *testing.T, raw int64) {
		id := NodeID(raw)
		if !e.Valid(id) {
			return
		}
		if e.Encode(e.Decode(id, nil)) != id {
			t.Fatalf("round trip failed for %d", id)
		}
		if p, ok := e.PlanParent(id); ok && !e.Valid(p) {
			t.Fatalf("plan parent of %d is invalid: %d", id, p)
		}
		if p, ok := e.PlanParentShort(id); ok && !e.Valid(p) {
			t.Fatalf("short plan parent of %d is invalid: %d", id, p)
		}
	})
}
