// Package lattice models the hierarchical cube lattice and CURE's
// execution plan over it: the mixed-radix node enumeration of §3.3
// (formulas (1) and (2)), the solid/dashed edge rules of §3.1–3.2, the
// plan-tree parent relation used by trivial-tuple sharing and query
// answering, and full node enumeration for small lattices.
//
// A node is identified by its level vector: levels[d] is the hierarchy
// level of dimension d in the node's grouping attributes, with the value
// Dim.AllLevel() meaning the dimension is absent (aggregated away).
package lattice

import (
	"fmt"
	"strings"

	"cure/internal/hierarchy"
)

// NodeID is the unique integer identifier of a lattice node, computed by
// the paper's formula (2).
type NodeID int64

// Enum encodes and decodes node identifiers for one hierarchical schema.
// Following §3.3, dimension i with 𝓛_i levels (including ALL) gets a
// factor F_i where F_1 = 1 and F_i = F_{i-1}·𝓛_{i-1}; the id of a node
// with level vector L is Σ F_i·L_i.
//
// Note: the paper's worked decode example contains a typo (it writes
// "L3 = 21 mod F3", which evaluates to 9, not the stated 1); the correct
// mixed-radix decode divides by the factor of the most significant digit
// first, which is what Decode implements and what round-trips Encode.
type Enum struct {
	schema  *hierarchy.Schema
	factors []int64
	radices []int64
	total   int64
}

// NewEnum builds the enumeration for a schema.
func NewEnum(s *hierarchy.Schema) *Enum {
	e := &Enum{schema: s}
	e.factors = make([]int64, s.NumDims())
	e.radices = make([]int64, s.NumDims())
	f := int64(1)
	for i, d := range s.Dims {
		e.factors[i] = f
		e.radices[i] = int64(d.NumLevels())
		f *= e.radices[i]
	}
	e.total = f
	return e
}

// Schema returns the schema the enumeration was built for.
func (e *Enum) Schema() *hierarchy.Schema { return e.schema }

// NumNodes returns the total number of lattice nodes, ∏ 𝓛_i.
func (e *Enum) NumNodes() int64 { return e.total }

// Encode computes the node id of a level vector (formula (2)).
func (e *Enum) Encode(levels []int) NodeID {
	var id int64
	for i, l := range levels {
		id += e.factors[i] * int64(l)
	}
	return NodeID(id)
}

// Decode writes the level vector of id into dst and returns it.
func (e *Enum) Decode(id NodeID, dst []int) []int {
	if cap(dst) < len(e.factors) {
		dst = make([]int, len(e.factors))
	}
	dst = dst[:len(e.factors)]
	rem := int64(id)
	for i := len(e.factors) - 1; i >= 0; i-- {
		dst[i] = int(rem / e.factors[i])
		rem %= e.factors[i]
	}
	return dst
}

// Valid reports whether id identifies a lattice node.
func (e *Enum) Valid(id NodeID) bool { return id >= 0 && int64(id) < e.total }

// Name renders a node id in the paper's notation, e.g. "A1B0" or "∅" for
// the all-ALL node.
func (e *Enum) Name(id NodeID) string {
	levels := e.Decode(id, nil)
	var b strings.Builder
	for i, l := range levels {
		d := e.schema.Dims[i]
		if d.IsAll(l) {
			continue
		}
		fmt.Fprintf(&b, "%s[%s]", d.Name, d.LevelName(l))
	}
	if b.Len() == 0 {
		return "∅"
	}
	return b.String()
}

// RootID returns the id of the all-ALL node (∅), the root of CURE's
// execution plan.
func (e *Enum) RootID() NodeID {
	levels := make([]int, e.schema.NumDims())
	for i, d := range e.schema.Dims {
		levels[i] = d.AllLevel()
	}
	return e.Encode(levels)
}

// GroupingArity returns the number of dimensions present (not at ALL) in
// the node.
func (e *Enum) GroupingArity(id NodeID) int {
	levels := e.Decode(id, nil)
	n := 0
	for i, l := range levels {
		if !e.schema.Dims[i].IsAll(l) {
			n++
		}
	}
	return n
}

// PlanParent returns the parent of a node in CURE's execution-plan tree
// (plan P3), or false for the root. The plan is the BUC-style pruning of
// the hierarchical lattice: a node is entered either by a solid edge from
// the node lacking its rightmost grouping dimension (when that dimension
// sits at a level directly under ALL in the dashed-edge tree) or by a
// dashed edge from the node whose rightmost dimension is one dashed-tree
// step coarser.
func (e *Enum) PlanParent(id NodeID) (NodeID, bool) {
	levels := e.Decode(id, nil)
	dmax := -1
	for i, l := range levels {
		if !e.schema.Dims[i].IsAll(l) {
			dmax = i
		}
	}
	if dmax < 0 {
		return 0, false // root
	}
	d := e.schema.Dims[dmax]
	p := d.DashParent(levels[dmax])
	levels[dmax] = p // p may be AllLevel, which removes the dimension
	return e.Encode(levels), true
}

// PlanPath returns the node ids on the plan-tree path from the root (∅)
// to id, inclusive, in root-first order. Query answering collects trivial
// tuples from exactly these nodes.
func (e *Enum) PlanPath(id NodeID) []NodeID {
	var rev []NodeID
	cur := id
	for {
		rev = append(rev, cur)
		p, ok := e.PlanParent(cur)
		if !ok {
			break
		}
		cur = p
	}
	// Reverse into root-first order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PlanPathFrom is PlanPath restricted to the subtree rooted at the node
// whose level vector has dimension 0 at level rootLv0 and every other
// dimension at ALL. It is used in partitioned builds, where nodes with
// dimension 0 at level ≤ L are constructed inside partitions whose
// recursion roots at that node, so trivial-tuple sharing must not cross
// into the N-phase part of the plan.
func (e *Enum) PlanPathFrom(id NodeID, rootLv0 int) []NodeID {
	full := e.PlanPath(id)
	rootLevels := make([]int, e.schema.NumDims())
	rootLevels[0] = rootLv0
	for i := 1; i < len(rootLevels); i++ {
		rootLevels[i] = e.schema.Dims[i].AllLevel()
	}
	root := e.Encode(rootLevels)
	for i, n := range full {
		if n == root {
			return full[i:]
		}
	}
	return full
}

// PlanPathFromNode truncates PlanPath(id) at the given subtree root: the
// returned path starts at root when root lies on the path, and is the
// full path otherwise. Partitioned builds use it to bound trivial-tuple
// sharing at their phase roots.
func (e *Enum) PlanPathFromNode(id, root NodeID) []NodeID {
	full := e.PlanPath(id)
	for i, n := range full {
		if n == root {
			return full[i:]
		}
	}
	return full
}

// AllNodes enumerates every node id of the lattice. It materializes the
// full node set and must only be used when NumNodes is small (query
// workloads, plan inspection); construction never calls it.
func (e *Enum) AllNodes() []NodeID {
	out := make([]NodeID, 0, e.total)
	for id := int64(0); id < e.total; id++ {
		out = append(out, NodeID(id))
	}
	return out
}

// PlanChildren returns the children of a node in the plan tree. Like
// AllNodes it is intended for inspection and tests on small lattices; the
// cubing recursion derives children implicitly.
func (e *Enum) PlanChildren(id NodeID) []NodeID {
	var out []NodeID
	levels := e.Decode(id, nil)
	dmax := -1
	for i, l := range levels {
		if !e.schema.Dims[i].IsAll(l) {
			dmax = i
		}
	}
	// Solid edges: add any dimension to the right of dmax at a level
	// directly under ALL in its dashed tree.
	for dd := dmax + 1; dd < e.schema.NumDims(); dd++ {
		d := e.schema.Dims[dd]
		for _, top := range d.TopUnderAll() {
			levels[dd] = top
			out = append(out, e.Encode(levels))
			levels[dd] = d.AllLevel()
		}
	}
	// Dashed edges: refine the rightmost grouping dimension one
	// dashed-tree step.
	if dmax >= 0 {
		d := e.schema.Dims[dmax]
		saved := levels[dmax]
		for _, c := range d.DashChildren(saved) {
			levels[dmax] = c
			out = append(out, e.Encode(levels))
		}
		levels[dmax] = saved
	}
	return out
}

// PlanHeight returns the height of the plan tree rooted at id (a single
// node has height 1). The paper's P3 is the tallest BUC-style plan; tests
// verify the expected heights of the running example.
func (e *Enum) PlanHeight(id NodeID) int {
	h := 0
	for _, c := range e.PlanChildren(id) {
		if ch := e.PlanHeight(c); ch > h {
			h = ch
		}
	}
	return h + 1
}

// Refines reports whether node a refines node b in the lattice: every
// grouping attribute of b appears in a at the same or a more detailed
// level. Equivalently, b is an ancestor-or-self of a in the cube lattice
// (b is computable from a).
func (e *Enum) Refines(a, b NodeID) bool {
	la := e.Decode(a, nil)
	lb := e.Decode(b, nil)
	for i := range la {
		if la[i] > lb[i] {
			return false
		}
	}
	return true
}

// PlanParentShort returns a node's parent under the *shortest* BUC-style
// hierarchical plan (the paper's P2, Figure 3), where every edge adds one
// grouping dimension at some level and no dashed refinements exist: the
// parent simply drops the rightmost grouping dimension. Used only by the
// plan-height ablation; CURE's production plan is the tallest one (P3).
func (e *Enum) PlanParentShort(id NodeID) (NodeID, bool) {
	levels := e.Decode(id, nil)
	dmax := -1
	for i, l := range levels {
		if !e.schema.Dims[i].IsAll(l) {
			dmax = i
		}
	}
	if dmax < 0 {
		return 0, false
	}
	levels[dmax] = e.schema.Dims[dmax].AllLevel()
	return e.Encode(levels), true
}

// PlanPathShort is PlanPath under the shortest plan (P2).
func (e *Enum) PlanPathShort(id NodeID) []NodeID {
	var rev []NodeID
	cur := id
	for {
		rev = append(rev, cur)
		p, ok := e.PlanParentShort(cur)
		if !ok {
			break
		}
		cur = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
