// Package sortutil provides the tuple-sorting machinery shared by BUC-style
// cube algorithms: sorting a segment of row indices by the (hierarchy-
// mapped) value of one dimension, and iterating over the resulting runs of
// equal values. Following the paper's remark that CountingSort instead of
// QuickSort keeps BUC-based methods efficient under high skew, the
// counting sort is the default whenever the key cardinality is reasonable,
// with a three-way quicksort fallback.
package sortutil

// Keyer produces the sort key of fact-table row r (already an int32 code
// in [0, Card)).
type Keyer interface {
	Key(r int32) int32
	Card() int32
}

// SliceKeyer keys rows by a plain column.
type SliceKeyer struct {
	Col []int32
	Hi  int32 // cardinality
}

// Key returns the code of row r.
func (k SliceKeyer) Key(r int32) int32 { return k.Col[r] }

// Card returns the key cardinality.
func (k SliceKeyer) Card() int32 { return k.Hi }

// MappedKeyer keys rows by a column mapped through a hierarchy level map.
type MappedKeyer struct {
	Col []int32
	Map []int32
	Hi  int32
}

// Key returns the mapped code of row r.
func (k MappedKeyer) Key(r int32) int32 { return k.Map[k.Col[r]] }

// Card returns the key cardinality.
func (k MappedKeyer) Card() int32 { return k.Hi }

// countingSortThreshold bounds the extra memory counting sort may use: we
// fall back to quicksort when the key cardinality exceeds the segment
// length by more than this factor (the counts array would be mostly
// zeroes and its initialization would dominate).
const countingSortThreshold = 4

// Alg identifies which algorithm a Sort call ran, for instrumentation.
type Alg uint8

const (
	// AlgNone means the segment was too short to need sorting.
	AlgNone Alg = iota
	// AlgCounting is the stable distribution sort.
	AlgCounting
	// AlgQuick is the three-way quicksort fallback.
	AlgQuick
)

// String names the algorithm.
func (a Alg) String() string {
	switch a {
	case AlgCounting:
		return "counting"
	case AlgQuick:
		return "quick"
	default:
		return "none"
	}
}

// Sorter sorts index segments, reusing scratch buffers across calls. It is
// not safe for concurrent use; cube construction owns one per goroutine.
type Sorter struct {
	counts  []int32
	scratch []int32
	// ForceQuick disables counting sort; used by the ablation benchmark
	// that reproduces the paper's CountingSort-vs-QuickSort remark.
	ForceQuick bool
	// ForceCounting disables the heuristic fallback to quicksort.
	ForceCounting bool
}

// Sort reorders idx so that keys are non-decreasing. It chooses counting
// sort when the cardinality is small relative to the segment, quicksort
// otherwise, and reports which algorithm ran.
func (s *Sorter) Sort(idx []int32, key Keyer) Alg {
	if len(idx) < 2 {
		return AlgNone
	}
	card := int(key.Card())
	useCounting := !s.ForceQuick && (s.ForceCounting || card <= countingSortThreshold*len(idx) || card <= 256)
	if useCounting {
		s.countingSort(idx, key, card)
		return AlgCounting
	}
	s.quickSort(idx, key)
	return AlgQuick
}

// countingSort is a stable distribution sort over codes [0, card).
// Scratch buffers grow geometrically rather than exact-fit: a cube
// build feeds one Sorter an endless mix of segment sizes, and doubling
// makes reallocation amortize away instead of recurring every time a
// slightly larger segment shows up.
func (s *Sorter) countingSort(idx []int32, key Keyer, card int) {
	if cap(s.counts) < card+1 {
		s.counts = make([]int32, max(card+1, 2*cap(s.counts)))
	}
	counts := s.counts[:card+1]
	clear(counts)
	for _, r := range idx {
		counts[key.Key(r)+1]++
	}
	for i := 1; i <= card; i++ {
		counts[i] += counts[i-1]
	}
	if cap(s.scratch) < len(idx) {
		s.scratch = make([]int32, max(len(idx), 2*cap(s.scratch)))
	}
	out := s.scratch[:len(idx)]
	for _, r := range idx {
		k := key.Key(r)
		out[counts[k]] = r
		counts[k]++
	}
	copy(idx, out)
}

// quickSort is a three-way (Dutch-flag) quicksort, robust to the long runs
// of duplicate keys that cube segments are made of.
func (s *Sorter) quickSort(idx []int32, key Keyer) {
	for len(idx) > 12 {
		lo, hi := threeWayPartition(idx, key)
		// Recurse into the smaller side, loop on the larger, keeping the
		// stack logarithmic even on adversarial inputs.
		if lo < len(idx)-hi {
			s.quickSort(idx[:lo], key)
			idx = idx[hi:]
		} else {
			s.quickSort(idx[hi:], key)
			idx = idx[:lo]
		}
	}
	insertionSort(idx, key)
}

// threeWayPartition partitions idx around a median-of-three pivot and
// returns the bounds [lo, hi) of the run equal to the pivot.
func threeWayPartition(idx []int32, key Keyer) (int, int) {
	n := len(idx)
	a, b, c := key.Key(idx[0]), key.Key(idx[n/2]), key.Key(idx[n-1])
	pivot := median3(a, b, c)
	lo, mid, hi := 0, 0, n
	for mid < hi {
		k := key.Key(idx[mid])
		switch {
		case k < pivot:
			idx[lo], idx[mid] = idx[mid], idx[lo]
			lo++
			mid++
		case k > pivot:
			hi--
			idx[mid], idx[hi] = idx[hi], idx[mid]
		default:
			mid++
		}
	}
	return lo, hi
}

func median3(a, b, c int32) int32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

func insertionSort(idx []int32, key Keyer) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && key.Key(idx[j]) < key.Key(idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// Segments iterates over maximal runs of equal keys in a sorted idx,
// calling fn(lo, hi, key) for each run idx[lo:hi]. It is the
// GetNextSegment loop of the paper's FollowEdge in callback form.
func Segments(idx []int32, key Keyer, fn func(lo, hi int, code int32)) {
	lo := 0
	for lo < len(idx) {
		code := key.Key(idx[lo])
		hi := lo + 1
		for hi < len(idx) && key.Key(idx[hi]) == code {
			hi++
		}
		fn(lo, hi, code)
		lo = hi
	}
}

// IsSorted reports whether idx is sorted by key; used by tests.
func IsSorted(idx []int32, key Keyer) bool {
	for i := 1; i < len(idx); i++ {
		if key.Key(idx[i]) < key.Key(idx[i-1]) {
			return false
		}
	}
	return true
}

// Iota fills dst with 0..n-1, allocating if needed, and returns it.
func Iota(dst []int32, n int) []int32 {
	if cap(dst) < n {
		dst = make([]int32, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = int32(i)
	}
	return dst
}
