package sortutil

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIota(t *testing.T) {
	got := Iota(nil, 5)
	if !reflect.DeepEqual(got, []int32{0, 1, 2, 3, 4}) {
		t.Errorf("Iota = %v", got)
	}
	// Reuse path.
	got = Iota(got, 3)
	if !reflect.DeepEqual(got, []int32{0, 1, 2}) {
		t.Errorf("Iota reuse = %v", got)
	}
}

func TestSortSmallAndEmpty(t *testing.T) {
	var s Sorter
	col := []int32{5, 3}
	idx := []int32{}
	s.Sort(idx, SliceKeyer{Col: col, Hi: 10})
	idx = []int32{1}
	s.Sort(idx, SliceKeyer{Col: col, Hi: 10})
	if idx[0] != 1 {
		t.Error("singleton disturbed")
	}
	idx = []int32{0, 1}
	s.Sort(idx, SliceKeyer{Col: col, Hi: 10})
	if !reflect.DeepEqual(idx, []int32{1, 0}) {
		t.Errorf("pair sort = %v", idx)
	}
}

func randomCase(rng *rand.Rand, n, card int) ([]int32, []int32) {
	col := make([]int32, n)
	for i := range col {
		col[i] = int32(rng.Intn(card))
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return col, idx
}

func TestSortVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		name string
		conf func(*Sorter)
	}{
		{"auto", func(s *Sorter) {}},
		{"quick", func(s *Sorter) { s.ForceQuick = true }},
		{"counting", func(s *Sorter) { s.ForceCounting = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 30; trial++ {
				n := 1 + rng.Intn(2000)
				card := 1 + rng.Intn(5000)
				col, idx := randomCase(rng, n, card)
				var s Sorter
				tc.conf(&s)
				key := SliceKeyer{Col: col, Hi: int32(card)}
				s.Sort(idx, key)
				if !IsSorted(idx, key) {
					t.Fatalf("trial %d (n=%d card=%d): not sorted", trial, n, card)
				}
				// Permutation check: every original index appears once.
				seen := make([]bool, n)
				for _, r := range idx {
					if seen[r] {
						t.Fatalf("trial %d: duplicate index %d", trial, r)
					}
					seen[r] = true
				}
			}
		})
	}
}

func TestCountingSortIsStable(t *testing.T) {
	// Equal keys must preserve the input order of idx: BUC-style
	// recursion depends on segments staying contiguous after re-sorts
	// at coarser levels, and stability gives deterministic output.
	col := []int32{1, 0, 1, 0, 1, 0}
	idx := []int32{0, 1, 2, 3, 4, 5}
	var s Sorter
	s.ForceCounting = true
	s.Sort(idx, SliceKeyer{Col: col, Hi: 2})
	want := []int32{1, 3, 5, 0, 2, 4}
	if !reflect.DeepEqual(idx, want) {
		t.Errorf("counting sort order = %v, want %v", idx, want)
	}
}

func TestMappedKeyer(t *testing.T) {
	col := []int32{0, 1, 2, 3}
	m := []int32{1, 1, 0, 0}
	k := MappedKeyer{Col: col, Map: m, Hi: 2}
	if k.Key(0) != 1 || k.Key(3) != 0 {
		t.Error("MappedKeyer.Key wrong")
	}
	if k.Card() != 2 {
		t.Error("MappedKeyer.Card wrong")
	}
	idx := []int32{0, 1, 2, 3}
	var s Sorter
	s.Sort(idx, k)
	if !IsSorted(idx, k) {
		t.Error("not sorted under mapped keys")
	}
	if idx[0] != 2 && idx[0] != 3 {
		t.Errorf("mapped sort = %v", idx)
	}
}

func TestSegments(t *testing.T) {
	col := []int32{3, 3, 5, 5, 5, 7}
	idx := []int32{0, 1, 2, 3, 4, 5}
	type seg struct {
		lo, hi int
		code   int32
	}
	var got []seg
	Segments(idx, SliceKeyer{Col: col, Hi: 8}, func(lo, hi int, code int32) {
		got = append(got, seg{lo, hi, code})
	})
	want := []seg{{0, 2, 3}, {2, 5, 5}, {5, 6, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Segments = %v, want %v", got, want)
	}
	// Empty input yields no segments.
	got = nil
	Segments(nil, SliceKeyer{Col: col, Hi: 8}, func(lo, hi int, code int32) {
		got = append(got, seg{lo, hi, code})
	})
	if got != nil {
		t.Error("segments on empty input")
	}
}

func TestSegmentsCoverInput(t *testing.T) {
	// Property: after sorting, segments tile [0, n) exactly and each
	// segment is key-homogeneous.
	f := func(seed int64, nRaw, cardRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%500) + 1
		card := int(cardRaw%40) + 1
		col, idx := randomCase(rng, n, card)
		var s Sorter
		key := SliceKeyer{Col: col, Hi: int32(card)}
		s.Sort(idx, key)
		next := 0
		ok := true
		Segments(idx, key, func(lo, hi int, code int32) {
			if lo != next || hi <= lo {
				ok = false
			}
			for i := lo; i < hi; i++ {
				if key.Key(idx[i]) != code {
					ok = false
				}
			}
			next = hi
		})
		return ok && next == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickVsCountingAgreeOnOrder(t *testing.T) {
	// The two sorts may order equal keys differently, but the key
	// sequences must be identical.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 3000
		card := 100
		col, idx := randomCase(rng, n, card)
		idx2 := append([]int32(nil), idx...)
		key := SliceKeyer{Col: col, Hi: int32(card)}
		var q, c Sorter
		q.ForceQuick = true
		c.ForceCounting = true
		q.Sort(idx, key)
		c.Sort(idx2, key)
		for i := range idx {
			if key.Key(idx[i]) != key.Key(idx2[i]) {
				t.Fatalf("key sequence diverges at %d", i)
			}
		}
	}
}

func TestHighSkewSort(t *testing.T) {
	// Long runs of one value — the regime where naive quicksort is
	// quadratic; both variants must handle it (three-way partitioning).
	n := 200000
	col := make([]int32, n)
	for i := n - 10; i < n; i++ {
		col[i] = 1
	}
	idx := Iota(nil, n)
	var s Sorter
	s.ForceQuick = true
	key := SliceKeyer{Col: col, Hi: 2}
	s.Sort(idx, key)
	if !IsSorted(idx, key) {
		t.Error("skewed input not sorted")
	}
}

// TestSorterSteadyStateAllocs pins the scratch-reuse contract: once a
// Sorter has seen its largest segment and cardinality, further sorts of
// any smaller (or equal) shape allocate nothing.
func TestSorterSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, card = 4096, 512
	col := make([]int32, n)
	for i := range col {
		col[i] = int32(rng.Intn(card))
	}
	var s Sorter
	idx := Iota(nil, n)
	key := Keyer(SliceKeyer{Col: col, Hi: card}) // boxed once, like a hot loop would
	s.Sort(idx, key)                             // warm up the buffers
	sizes := []int{n, n / 2, 37, 1000, n, 256}
	allocs := testing.AllocsPerRun(50, func() {
		for _, sz := range sizes {
			s.Sort(idx[:sz], key)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Sort allocated %.1f times per run, want 0", allocs)
	}
}

// TestSorterGrowsGeometrically feeds steadily growing segments and
// checks the amortization: the total number of reallocations stays
// logarithmic in the final size instead of linear in the number of
// distinct sizes (the old exact-fit behavior).
func TestSorterGrowsGeometrically(t *testing.T) {
	var s Sorter
	grows := 0
	prevCap := 0
	col := make([]int32, 10000)
	for i := range col {
		col[i] = int32(i % 64)
	}
	for n := 16; n <= len(col); n += 16 {
		idx := Iota(nil, n)
		s.Sort(idx, SliceKeyer{Col: col[:n], Hi: 64})
		if cap(s.scratch) != prevCap {
			grows++
			prevCap = cap(s.scratch)
		}
	}
	if grows > 12 {
		t.Fatalf("scratch reallocated %d times over a 16..10000 ramp; doubling should need ~10", grows)
	}
}

// BenchmarkSorterManySmallSegments is the fan-out workload: one sorter
// handling a stream of small segments of varying size. The report must
// show 0 allocs/op in steady state.
func BenchmarkSorterManySmallSegments(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	const n, card = 1 << 16, 300
	col := make([]int32, n)
	for i := range col {
		col[i] = int32(rng.Intn(card))
	}
	var s Sorter
	idx := Iota(nil, n)
	key := Keyer(SliceKeyer{Col: col, Hi: card})
	s.Sort(idx, key) // steady state
	segs := []int{900, 64, 4000, 17, 1 << 14, 333}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sz := segs[i%len(segs)]
		s.Sort(idx[:sz], key)
	}
}
