package storage

import (
	"encoding/binary"
	"math"
)

// Row codecs shared by the writer (logs, compaction) and the reader.
// All integers are little endian; aggregates are IEEE-754 bit patterns.

func putInt64(b []byte, v int64) { binary.LittleEndian.PutUint64(b, uint64(v)) }
func getInt64(b []byte) int64    { return int64(binary.LittleEndian.Uint64(b)) }

func putAggrs(b []byte, aggrs []float64) {
	for i, v := range aggrs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
}

func getAggrs(b []byte, dst []float64) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

func putDims(b []byte, dims []int32) {
	for i, v := range dims {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
}

func getDims(b []byte, dst []int32) {
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
}

// Log row widths (pre-compaction; logs always carry the widest shape so
// that no ordering constraint exists between format lock and first write).
func ntLogRowWidth(numAggrs int) int { return 8 + 8*numAggrs }

const (
	ttLogRowWidth  = 8  // R-rowid
	catLogRowWidth = 16 // R-rowid (or -1), A-rowid
)
