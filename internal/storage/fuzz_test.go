package storage

import (
	"os"
	"testing"
)

// FuzzReadManifestBytes exercises manifest parsing against arbitrary
// bytes: it must reject garbage with an error, never panic.
func FuzzReadManifestBytes(f *testing.F) {
	f.Add([]byte(`{"version":1,"agg_specs":[{"Func":0,"Measure":0}],"nodes":{"7":{"nt_rows":3}}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"version":99}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := writeFileHelper(dir, data); err != nil {
			t.Skip()
		}
		m, err := ReadManifest(dir)
		if err == nil && (m.Version < 1 || m.Version > manifestVersion) {
			t.Fatalf("accepted manifest with version %d", m.Version)
		}
	})
}

func writeFileHelper(dir string, data []byte) error {
	return os.WriteFile(dir+"/"+ManifestFile, data, 0o644)
}
