package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cure/internal/bitmap"
	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/obsv"
	"cure/internal/signature"
)

// Reader opens a finalized cube directory for query answering.
type Reader struct {
	dir  string
	m    *Manifest
	hier *hierarchy.Schema
	enum *lattice.Enum

	ntF, ttF, catF, aggF, bmF *os.File

	// Global read accounting (nil-safe, set via SetMetrics): every
	// attributed read tallies here as well as into the per-query IOStats,
	// so /metrics and diagnostic bundles carry the process-wide storage
	// read volume.
	cReadBytes *obsv.Counter
	cReads     *obsv.Counter
	// Codec decode accounting (storage.codec.bytes_decoded /
	// storage.codec.blocks_read): raw-equivalent bytes materialized from
	// compressed blocks, and the block-decode count.
	cDecBytes  *obsv.Counter
	cDecBlocks *obsv.Counter
	// blocks is the optional decoded-block cache (set once before
	// concurrent use via SetBlockCache); nil reads decode into per-call
	// scratch instead.
	blocks BlockCache
}

// BlockCache caches decoded extent blocks across queries. Implementations
// must be safe for concurrent use; blocks returned by GetBlock are shared
// and must be treated as immutable. decodedBytes is the raw-equivalent
// footprint of the block, the unit cache budgets account in.
type BlockCache interface {
	GetBlock(rel uint8, node int64, block int) *DecodedBlock
	PutBlock(rel uint8, node int64, block int, db *DecodedBlock, decodedBytes int64)
}

// Block-cache relation tags.
const (
	BlockRelNT uint8 = iota
	BlockRelTT
	BlockRelCAT
	BlockRelAgg
)

// SetBlockCache attaches a decoded-block cache to the reader. Must be
// called before the reader is shared across goroutines.
func (r *Reader) SetBlockCache(c BlockCache) { r.blocks = c }

// SetMetrics attaches the registry's storage read counters
// (storage.read.bytes / storage.read.calls) to the reader; nil reg
// detaches them.
func (r *Reader) SetMetrics(reg *obsv.Registry) {
	if reg == nil {
		r.cReadBytes, r.cReads = nil, nil
		r.cDecBytes, r.cDecBlocks = nil, nil
		return
	}
	r.cReadBytes = reg.Counter("storage.read.bytes")
	r.cReads = reg.Counter("storage.read.calls")
	r.cDecBytes = reg.Counter("storage.codec.bytes_decoded")
	r.cDecBlocks = reg.Counter("storage.codec.blocks_read")
}

// account folds one attributed read of n bytes into the per-query tally
// and the reader's global counters.
func (r *Reader) account(io *IOStats, n int64) {
	io.Add(n)
	r.cReadBytes.Add(n)
	r.cReads.Inc()
}

// OpenReader loads the manifest and hierarchy of a cube directory and
// opens its relation files.
func OpenReader(dir string) (*Reader, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	hier, err := hierarchy.ReadSchemaFile(filepath.Join(dir, HierFile))
	if err != nil {
		return nil, err
	}
	r := &Reader{dir: dir, m: m, hier: hier, enum: lattice.NewEnum(hier)}
	open := func(name string, dst **os.File, required bool) error {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			if os.IsNotExist(err) && !required {
				return nil
			}
			return err
		}
		*dst = f
		return nil
	}
	for _, x := range []struct {
		name     string
		dst      **os.File
		required bool
	}{
		{NTFile, &r.ntF, true}, {TTFile, &r.ttF, true}, {CATFile, &r.catF, true},
		{AggFile, &r.aggF, true}, {BitmapFile, &r.bmF, false},
	} {
		if err := open(x.name, x.dst, x.required); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// Close releases the reader's file handles.
func (r *Reader) Close() error {
	var first error
	for _, f := range []*os.File{r.ntF, r.ttF, r.catF, r.aggF, r.bmF} {
		if f != nil {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Manifest returns the cube catalog.
func (r *Reader) Manifest() *Manifest { return r.m }

// Hier returns the hierarchical schema the cube was built over.
func (r *Reader) Hier() *hierarchy.Schema { return r.hier }

// Enum returns the node enumeration of the schema.
func (r *Reader) Enum() *lattice.Enum { return r.enum }

// FactPath returns the resolved path of the fact table the cube's
// row-ids reference.
func (r *Reader) FactPath() string { return resolveFactPath(r.dir, r.m.FactFile) }

// IOStats tallies the read volume one scan causes, attributing storage
// I/O to the query that asked for it. One IOStats belongs to one query
// (one goroutine), so the fields are plain — concurrent queries each
// carry their own. The nil *IOStats is a valid no-op, which keeps
// un-attributed callers (zone-map construction, tests) unchanged.
type IOStats struct {
	// BytesRead is the number of bytes fetched from relation files.
	BytesRead int64 `json:"bytes_read"`
	// Reads is the number of ReadAt calls issued.
	Reads int64 `json:"reads"`
	// BytesDecoded is the raw-equivalent bytes materialized from
	// compressed extent blocks (0 when reading v1 fixed-width extents or
	// when every block was a decoded-cache hit).
	BytesDecoded int64 `json:"bytes_decoded,omitempty"`
}

// Add folds one read of n bytes into the tally (no-op on nil).
func (s *IOStats) Add(n int64) {
	if s != nil {
		s.BytesRead += n
		s.Reads++
	}
}

// addDecoded folds one block decode of n raw-equivalent bytes into the
// tally (no-op on nil).
func (s *IOStats) addDecoded(n int64) {
	if s != nil {
		s.BytesDecoded += n
	}
}

// TTRowIDs returns the trivial-tuple row-ids stored at node id (only the
// tuples stored there — callers assemble the full TT set of a node from
// its plan path).
func (r *Reader) TTRowIDs(id lattice.NodeID, dst []int64) ([]int64, error) {
	return r.TTRowIDsIO(id, dst, nil)
}

// TTRowIDsIO is TTRowIDs with per-query I/O attribution: bytes fetched
// for the extent (or its CURE+ bitmap) are tallied into io.
func (r *Reader) TTRowIDsIO(id lattice.NodeID, dst []int64, io *IOStats) ([]int64, error) {
	nm, ok := r.m.NodeMeta(id)
	if !ok || nm.TTRows == 0 {
		return dst[:0], nil
	}
	if nm.TTKind == TTBitmap {
		buf := make([]byte, nm.TTBmLen)
		if _, err := r.bmF.ReadAt(buf, nm.TTOff); err != nil {
			return nil, fmt.Errorf("storage: TT bitmap of node %d: %w", id, err)
		}
		r.account(io, nm.TTBmLen)
		bm, err := bitmap.Unmarshal(buf)
		if err != nil {
			return nil, err
		}
		dst = dst[:0]
		bm.ForEach(func(i int64) bool {
			dst = append(dst, i)
			return true
		})
		return dst, nil
	}
	if nm.TTCodec != nil {
		return r.ttRowIDsBlocks(id, nm, dst, io)
	}
	buf := make([]byte, nm.TTRows*ttLogRowWidth)
	if _, err := r.ttF.ReadAt(buf, nm.TTOff); err != nil {
		return nil, fmt.Errorf("storage: TT extent of node %d: %w", id, err)
	}
	r.account(io, nm.TTRows*ttLogRowWidth)
	if cap(dst) < int(nm.TTRows) {
		dst = make([]int64, 0, nm.TTRows)
	}
	dst = dst[:0]
	for i := int64(0); i < nm.TTRows; i++ {
		dst = append(dst, getInt64(buf[i*8:]))
	}
	return dst, nil
}

// NTRow is one decoded normal tuple. Exactly one of RRowid / Dims is
// meaningful, depending on Manifest.DimsInline.
type NTRow struct {
	RRowid int64
	Dims   []int32 // projected codes at the node's levels (CURE_DR only)
	Aggrs  []float64
}

// NTRows streams the normal tuples of node id. The row passed to fn
// reuses internal buffers; copy what must outlive the call.
func (r *Reader) NTRows(id lattice.NodeID, fn func(row NTRow) error) error {
	return r.NTRowsRanges(id, nil, nil, fn)
}

// NTRowsRanges streams the normal tuples of node id whose extent-row
// index falls in one of the given half-open ranges (nil = the whole
// extent; an empty non-nil slice streams nothing). Zone-map pruning
// produces the ranges; extent bytes fetched are tallied into io (nil
// disables attribution). NTRowsRanges is safe for concurrent use: every
// call reads through ReadAt with private buffers.
func (r *Reader) NTRowsRanges(id lattice.NodeID, ranges []RowRange, io *IOStats, fn func(row NTRow) error) error {
	nm, ok := r.m.NodeMeta(id)
	if !ok || nm.NTRows == 0 {
		return nil
	}
	if ranges == nil {
		ranges = []RowRange{{0, nm.NTRows}}
	}
	arity := r.nodeArity(id)
	if nm.NTCodec != nil {
		return r.ntRowsBlocks(id, nm, arity, ranges, io, fn)
	}
	width := int64(r.m.ntRowWidth(arity))
	row := NTRow{Aggrs: make([]float64, r.m.NumAggrs())}
	if r.m.DimsInline {
		row.Dims = make([]int32, arity)
	}
	var buf []byte
	for _, rg := range ranges {
		if rg.Lo < 0 || rg.Hi > nm.NTRows || rg.Lo >= rg.Hi {
			continue
		}
		n := rg.Hi - rg.Lo
		if int64(cap(buf)) < n*width {
			buf = make([]byte, n*width)
		}
		buf = buf[:n*width]
		if _, err := r.ntF.ReadAt(buf, nm.NTOff+rg.Lo*width); err != nil {
			return fmt.Errorf("storage: NT extent of node %d: %w", id, err)
		}
		r.account(io, n*width)
		for i := int64(0); i < n; i++ {
			rec := buf[i*width : (i+1)*width]
			if r.m.DimsInline {
				getDims(rec, row.Dims)
				getAggrs(rec[4*arity:], row.Aggrs)
				row.RRowid = -1
			} else {
				row.RRowid = getInt64(rec)
				getAggrs(rec[8:], row.Aggrs)
			}
			if err := fn(row); err != nil {
				return err
			}
		}
	}
	return nil
}

// CATRow is one decoded common-aggregate tuple reference. RRowid is -1
// under format (a) (it lives in AGGREGATES).
type CATRow struct {
	RRowid int64
	ARowid int64
}

// CATRows streams the CAT references of node id.
func (r *Reader) CATRows(id lattice.NodeID, fn func(row CATRow) error) error {
	return r.CATRowsRanges(id, nil, nil, fn)
}

// CATRowsRanges streams the CAT references of node id within the given
// extent-row ranges (nil = the whole extent; an empty non-nil slice
// streams nothing), tallying extent bytes into io (nil disables
// attribution). Safe for concurrent use.
func (r *Reader) CATRowsRanges(id lattice.NodeID, ranges []RowRange, io *IOStats, fn func(row CATRow) error) error {
	nm, ok := r.m.NodeMeta(id)
	if !ok || nm.CATRows == 0 {
		return nil
	}
	if ranges == nil {
		ranges = []RowRange{{0, nm.CATRows}}
	}
	if nm.CATCodec != nil {
		return r.catRowsBlocks(id, nm, ranges, io, fn)
	}
	width := int64(r.m.catRowWidth())
	var buf []byte
	for _, rg := range ranges {
		if rg.Lo < 0 || rg.Hi > nm.CATRows || rg.Lo >= rg.Hi {
			continue
		}
		n := rg.Hi - rg.Lo
		if int64(cap(buf)) < n*width {
			buf = make([]byte, n*width)
		}
		buf = buf[:n*width]
		if _, err := r.catF.ReadAt(buf, nm.CATOff+rg.Lo*width); err != nil {
			return fmt.Errorf("storage: CAT extent of node %d: %w", id, err)
		}
		r.account(io, n*width)
		for i := int64(0); i < n; i++ {
			rec := buf[i*width:]
			var row CATRow
			if r.m.CatFormat == signature.FormatA {
				row.RRowid = -1
				row.ARowid = getInt64(rec)
			} else {
				row.RRowid = getInt64(rec)
				row.ARowid = getInt64(rec[8:])
			}
			if err := fn(row); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadAggregate fetches AGGREGATES tuple arowid. Under format (a) the
// returned rrowid is the shared source row-id; under format (b) it is -1.
func (r *Reader) ReadAggregate(arowid int64, aggrs []float64) (int64, error) {
	return r.ReadAggregateIO(arowid, aggrs, nil)
}

// ReadAggregateIO is ReadAggregate with per-query I/O attribution.
func (r *Reader) ReadAggregateIO(arowid int64, aggrs []float64, io *IOStats) (int64, error) {
	if arowid < 0 || arowid >= r.m.AggRows {
		return 0, fmt.Errorf("storage: A-rowid %d out of range [0,%d)", arowid, r.m.AggRows)
	}
	if r.m.AggCodec != nil {
		return r.readAggregateBlock(arowid, aggrs, io)
	}
	width := r.m.aggRowWidth()
	buf := make([]byte, width)
	if _, err := r.aggF.ReadAt(buf, arowid*int64(width)); err != nil {
		return 0, err
	}
	r.account(io, int64(width))
	rrowid := int64(-1)
	off := 0
	if r.m.CatFormat == signature.FormatA {
		rrowid = getInt64(buf)
		off = 8
	}
	getAggrs(buf[off:], aggrs[:r.m.NumAggrs()])
	return rrowid, nil
}

// AggregatesRaw reads the entire AGGREGATES relation into one raw buffer;
// the query cache uses it to pin the relation in memory (§5.3 singles out
// AGGREGATES, together with the fact table, as the two relations worth
// caching).
func (r *Reader) AggregatesRaw() ([]byte, error) {
	width := int64(r.m.aggRowWidth())
	buf := make([]byte, r.m.AggRows*width)
	if r.m.AggRows == 0 {
		return buf, nil
	}
	if r.m.AggCodec != nil {
		// Decode the whole relation back to the fixed-width layout so
		// DecodeAggregate (and the pin that holds it) work unchanged.
		if err := r.aggregatesRawBlocks(buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	if _, err := r.aggF.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// DecodeAggregate decodes row arowid from a buffer returned by
// AggregatesRaw.
func (r *Reader) DecodeAggregate(raw []byte, arowid int64, aggrs []float64) int64 {
	width := int64(r.m.aggRowWidth())
	rec := raw[arowid*width:]
	rrowid := int64(-1)
	off := 0
	if r.m.CatFormat == signature.FormatA {
		rrowid = getInt64(rec)
		off = 8
	}
	getAggrs(rec[off:], aggrs[:r.m.NumAggrs()])
	return rrowid
}

// nodeArity returns the grouping arity of node id.
func (r *Reader) nodeArity(id lattice.NodeID) int {
	levels := r.enum.Decode(id, nil)
	arity := 0
	for d, l := range levels {
		if !r.hier.Dims[d].IsAll(l) {
			arity++
		}
	}
	return arity
}

// NodeTupleCount returns the number of materialized tuples stored AT node
// id (excluding trivial tuples inherited from plan ancestors).
func (r *Reader) NodeTupleCount(id lattice.NodeID) int64 {
	nm, ok := r.m.NodeMeta(id)
	if !ok {
		return 0
	}
	return nm.NTRows + nm.TTRows + nm.CATRows
}

// VerifyChecksums recomputes the CRC-32 of every relation file and
// compares it with the manifest, returning the names of corrupted files
// (bit rot, truncation, or out-of-band edits). Cubes written before
// checksumming existed (no recorded sums) verify trivially.
func (r *Reader) VerifyChecksums() ([]string, error) {
	var bad []string
	for name, want := range r.m.Checksums {
		got, err := fileChecksum(filepath.Join(r.dir, name))
		if err != nil {
			return nil, err
		}
		if got != want {
			bad = append(bad, name)
		}
	}
	sort.Strings(bad)
	return bad, nil
}
