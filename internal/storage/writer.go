package storage

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cure/internal/bitmap"
	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/obsv"
	"cure/internal/relation"
	"cure/internal/signature"
)

// DimResolver fetches the base-level dimension codes of an original
// fact-table row. The CURE_DR variant needs it during compaction to
// replace NT row-ids with projected dimension values; the in-memory build
// path backs it with the loaded table, the partitioned path with a
// relation.FactReader.
type DimResolver func(rrowid int64, dst []int32) error

// Options configures a cube writer.
type Options struct {
	// Dir is the cube directory (created if missing).
	Dir string
	// Hier is the hierarchical schema the cube is built over.
	Hier *hierarchy.Schema
	// AggSpecs are the cube's aggregates (Y = len).
	AggSpecs []relation.AggSpec
	// FactFile is the fact table path recorded for query-time row-id
	// dereferencing.
	FactFile string
	// FactRows is the fact table's row count.
	FactRows int64
	// DimsInline selects the CURE_DR variant.
	DimsInline bool
	// Plus selects CURE+ post-processing at Finalize.
	Plus bool
	// ShortPlan records that the build used the shortest plan (P2).
	ShortPlan bool
	// Resolver is required when DimsInline is set.
	Resolver DimResolver
	// StageBudget bounds the bytes buffered across per-node stages
	// before they are spilled to the logs (default 8 MiB).
	StageBudget int64
	// ZoneBlockRows is the zone-map block granularity Finalize indexes
	// extents at (0 = DefaultZoneBlockRows, negative = no zone maps).
	// Zone maps also require a Resolver; writers without one (incremental
	// merges) skip them silently.
	ZoneBlockRows int
	// Compression selects the extent storage format: "" or "none" keeps
	// the fixed-width v1 layout; "auto" rewrites extents into compressed
	// columnar blocks at Finalize (block granularity = the effective
	// ZoneBlockRows, so zone-map pruning skips whole blocks); "sampled"
	// is the same format with sampled codec selection (see
	// CompressionSampled).
	Compression string
	// Parallelism caps the workers of the finalize extent pipeline
	// (compression + fused zone maps); ≤1 keeps it sequential. The output
	// is byte-identical at every setting. When Parallelism > 1 the
	// Resolver must be safe for concurrent calls.
	Parallelism int
	// Pool, when set, is the build-wide limiter extra finalize workers
	// are drawn from (up to Parallelism-1), so finalize shares one
	// concurrency budget with the rest of the build. nil lets the
	// pipeline spawn its workers freely.
	Pool WorkerPool
	// Iceberg records the min-count threshold of the build (default 1).
	Iceberg int64
	// Metrics is the optional observability registry: per-relation tuple
	// and byte counters (storage.nt.*, storage.tt.*, storage.cat.*,
	// storage.agg.*) and final size gauges. nil disables it.
	Metrics *obsv.Registry
}

// Writer materializes a cube. It implements signature.Sink for NT/CAT
// traffic and additionally receives trivial tuples directly (they bypass
// the signature pool). Finalize compacts everything and writes the
// manifest. A Writer is single-goroutine until Lock() arms its mutex;
// parallel builds then share one writer across all workers, and the
// storage.lock.* counters report how contended that sharing was.
type Writer struct {
	opts Options
	enum *lattice.Enum
	// mu serializes sink calls when the build runs partition workers in
	// parallel; taken only after Lock() arms it.
	mu     sync.Mutex
	locked bool

	ntLog, ttLog, catLog *blockLog
	aggF                 *os.File
	aggW                 *bufio.Writer
	aggRows              int64
	aggBuf               []byte

	catFormat  signature.Format
	partLevel  int
	partLevelB int

	// Bound instruments (nil-safe no-ops when no registry is attached).
	cNTRows, cNTBytes   *obsv.Counter
	cTTRows, cTTBytes   *obsv.Counter
	cCATRows, cCATBytes *obsv.Counter
	cAggRows, cAggBytes *obsv.Counter
	// Lock-contention accounting for parallel builds: every armed lock()
	// counts an acquisition; the ones that found the mutex held count as
	// contended. Their ratio tells whether the shared writer is the
	// scaling bottleneck.
	cLockAcq, cLockContended *obsv.Counter

	// finSpan, when set, parents the finalize sub-phase spans
	// (finalize.compact/compress/zones/commit). nil is fine — child
	// spans of a nil span are inert.
	finSpan *obsv.Span

	finalized bool
}

// NewWriter creates the cube directory and opens the construction logs.
func NewWriter(opts Options) (*Writer, error) {
	if len(opts.AggSpecs) == 0 {
		return nil, errors.New("storage: cube needs at least one aggregate")
	}
	if opts.DimsInline && opts.Resolver == nil {
		return nil, errors.New("storage: DimsInline requires a Resolver")
	}
	if opts.StageBudget <= 0 {
		opts.StageBudget = 8 << 20
	}
	if opts.Iceberg <= 0 {
		opts.Iceberg = 1
	}
	if _, err := compressionEnabled(opts.Compression); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{opts: opts, enum: lattice.NewEnum(opts.Hier), partLevel: -1, partLevelB: -1}
	share := &stageBudget{limit: opts.StageBudget}
	var err error
	if w.ntLog, err = newBlockLog(filepath.Join(opts.Dir, NTFile+".log"), ntLogRowWidth(len(opts.AggSpecs)), share); err != nil {
		return nil, err
	}
	if w.ttLog, err = newBlockLog(filepath.Join(opts.Dir, TTFile+".log"), ttLogRowWidth, share); err != nil {
		return nil, err
	}
	if w.catLog, err = newBlockLog(filepath.Join(opts.Dir, CATFile+".log"), catLogRowWidth, share); err != nil {
		return nil, err
	}
	if w.aggF, err = os.Create(filepath.Join(opts.Dir, AggFile)); err != nil {
		return nil, err
	}
	w.aggW = bufio.NewWriterSize(w.aggF, 1<<20)
	w.aggBuf = make([]byte, 8+8*len(opts.AggSpecs))
	reg := opts.Metrics // nil registry yields nil (inert) counters
	w.cNTRows, w.cNTBytes = reg.Counter("storage.nt.rows"), reg.Counter("storage.nt.bytes")
	w.cTTRows, w.cTTBytes = reg.Counter("storage.tt.rows"), reg.Counter("storage.tt.bytes")
	w.cCATRows, w.cCATBytes = reg.Counter("storage.cat.rows"), reg.Counter("storage.cat.bytes")
	w.cAggRows, w.cAggBytes = reg.Counter("storage.agg.rows"), reg.Counter("storage.agg.bytes")
	w.cLockAcq = reg.Counter("storage.lock.acquired")
	w.cLockContended = reg.Counter("storage.lock.contended")
	return w, nil
}

// Enum returns the node enumeration of the cube's schema.
func (w *Writer) Enum() *lattice.Enum { return w.enum }

// SetPartitionLevel records the external-partitioning level L (dimension
// 0) so queries can bound trivial-tuple sharing correctly.
func (w *Writer) SetPartitionLevel(l int) { w.partLevel = l }

// SetPartitionLevelPair records pair-partitioning levels (L, M) on
// dimensions 0 and 1.
func (w *Writer) SetPartitionLevelPair(la, lb int) {
	w.partLevel = la
	w.partLevelB = lb
}

// Lock arms internal locking so several construction workers may share
// the writer; single-threaded builds skip the mutex entirely.
func (w *Writer) Lock() { w.locked = true }

// SetFinalizeSpan attaches the span Finalize hangs its sub-phase child
// spans off (typically the caller's "finalize" span).
func (w *Writer) SetFinalizeSpan(sp *obsv.Span) { w.finSpan = sp }

func (w *Writer) lock() {
	if !w.locked {
		return
	}
	if !w.mu.TryLock() {
		w.cLockContended.Inc()
		w.mu.Lock()
	}
	w.cLockAcq.Inc()
}

func (w *Writer) unlock() {
	if w.locked {
		w.mu.Unlock()
	}
}

// WriteNT implements signature.Sink.
func (w *Writer) WriteNT(node lattice.NodeID, rrowid int64, aggrs []float64) error {
	w.lock()
	defer w.unlock()
	row := w.ntLog.rowBuf()
	putInt64(row, rrowid)
	putAggrs(row[8:], aggrs)
	w.cNTRows.Inc()
	w.cNTBytes.Add(int64(len(row)))
	return w.ntLog.append(node, row)
}

// AppendAggregate implements signature.Sink. Rows are written in final
// form immediately (the CAT format is locked before the first call);
// A-rowids are the append order.
func (w *Writer) AppendAggregate(rrowid int64, aggrs []float64) (int64, error) {
	w.lock()
	defer w.unlock()
	inferred := signature.FormatB
	if rrowid >= 0 {
		inferred = signature.FormatA
	}
	switch w.catFormat {
	case signature.FormatUndecided:
		w.catFormat = inferred
	case inferred:
	default:
		return 0, fmt.Errorf("storage: AGGREGATES format flip: had %v, got %v", w.catFormat, inferred)
	}
	buf := w.aggBuf[:0]
	if rrowid >= 0 {
		buf = buf[:8]
		putInt64(buf, rrowid)
	}
	off := len(buf)
	buf = buf[:off+8*len(aggrs)]
	putAggrs(buf[off:], aggrs)
	if _, err := w.aggW.Write(buf); err != nil {
		return 0, err
	}
	w.cAggRows.Inc()
	w.cAggBytes.Add(int64(len(buf)))
	id := w.aggRows
	w.aggRows++
	return id, nil
}

// WriteCAT implements signature.Sink.
func (w *Writer) WriteCAT(node lattice.NodeID, rrowid, arowid int64) error {
	w.lock()
	defer w.unlock()
	row := w.catLog.rowBuf()
	putInt64(row, rrowid)
	putInt64(row[8:], arowid)
	w.cCATRows.Inc()
	w.cCATBytes.Add(int64(len(row)))
	return w.catLog.append(node, row)
}

// WriteTT records a trivial tuple: just the R-rowid, stored once in its
// least detailed node.
func (w *Writer) WriteTT(node lattice.NodeID, rrowid int64) error {
	w.lock()
	defer w.unlock()
	row := w.ttLog.rowBuf()
	putInt64(row, rrowid)
	w.cTTRows.Inc()
	w.cTTBytes.Add(int64(len(row)))
	return w.ttLog.append(node, row)
}

// Finalize compacts the logs into per-node extents, runs CURE+
// post-processing if requested, writes the manifest and hierarchy sidecar,
// and removes the logs. catFormat is the format the signature pool locked
// (FormatUndecided is acceptable when no CATs exist).
func (w *Writer) Finalize(catFormat signature.Format) (*Manifest, error) {
	if w.finalized {
		return nil, errors.New("storage: Finalize called twice")
	}
	w.finalized = true
	if w.catFormat == signature.FormatUndecided {
		w.catFormat = catFormat
	} else if catFormat != signature.FormatUndecided && catFormat != w.catFormat {
		return nil, fmt.Errorf("storage: pool format %v disagrees with written AGGREGATES format %v", catFormat, w.catFormat)
	}
	if w.catFormat == signature.FormatUndecided {
		w.catFormat = signature.FormatNT // no CATs anywhere; pick the degenerate format
	}
	if err := w.aggW.Flush(); err != nil {
		return nil, err
	}
	if err := w.aggF.Close(); err != nil {
		return nil, err
	}

	// Uncompressed cubes are written as manifest version 1, byte-identical
	// to pre-codec builds; the compression pass below bumps to version 2.
	m := &Manifest{
		Version:         1,
		AggSpecs:        w.opts.AggSpecs,
		CatFormat:       w.catFormat,
		DimsInline:      w.opts.DimsInline,
		Plus:            w.opts.Plus,
		PartitionLevel:  w.partLevel,
		PartitionLevelB: w.partLevelB,
		ShortPlan:       w.opts.ShortPlan,
		FactFile:        w.opts.FactFile,
		FactRows:        w.opts.FactRows,
		AggRows:         w.aggRows,
		Nodes:           map[string]NodeMeta{},
		Iceberg:         w.opts.Iceberg,
	}

	fin := w.newFinState()

	// Compact each log into its extent file.
	compactStart := time.Now()
	compactSpan := w.finSpan.Child("compact")
	ntW := ntCompactor{w: w, m: m}
	if err := compactLog(w.ntLog, filepath.Join(w.opts.Dir, NTFile), ntW.width, ntW.rewrite, func(id lattice.NodeID, off, rows int64) {
		nm := m.Nodes[nodeKey(id)]
		nm.NTOff, nm.NTRows = off, rows
		m.Nodes[nodeKey(id)] = nm
	}); err != nil {
		return nil, err
	}
	if err := compactLog(w.ttLog, filepath.Join(w.opts.Dir, TTFile), func(lattice.NodeID) int { return ttLogRowWidth }, nil, func(id lattice.NodeID, off, rows int64) {
		nm := m.Nodes[nodeKey(id)]
		nm.TTOff, nm.TTRows = off, rows
		m.Nodes[nodeKey(id)] = nm
	}); err != nil {
		return nil, err
	}
	catW := catCompactor{format: w.catFormat}
	if err := compactLog(w.catLog, filepath.Join(w.opts.Dir, CATFile), func(lattice.NodeID) int { return m.catRowWidth() }, catW.rewrite, func(id lattice.NodeID, off, rows int64) {
		nm := m.Nodes[nodeKey(id)]
		nm.CATOff, nm.CATRows = off, rows
		m.Nodes[nodeKey(id)] = nm
	}); err != nil {
		return nil, err
	}

	if w.opts.Plus {
		if err := w.postProcess(m); err != nil {
			return nil, err
		}
	}
	compactSpan.End()
	fin.stats.CompactSec = time.Since(compactStart).Seconds()

	// Compression runs after CURE+ post-processing (sorted extents are
	// where RLE and delta coding earn their keep) and before checksums,
	// which see the final compressed files. Zone maps are folded into the
	// same pass: workers index each extent from the raw rows already in
	// memory for encoding, so the cube is read once, not twice. Bitmap TT
	// extents never stream through the encoder and are indexed in a small
	// residual pass.
	compressed, _ := compressionEnabled(w.opts.Compression)
	if compressed {
		t := time.Now()
		sp := w.finSpan.Child("compress")
		err := w.compressExtents(m, fin)
		sp.End()
		if err != nil {
			return nil, err
		}
		fin.stats.CompressSec = time.Since(t).Seconds()
		m.Compression = "block"
		m.Version = manifestVersion

		t = time.Now()
		sp = w.finSpan.Child("zones")
		err = w.buildBitmapZones(m, fin)
		sp.End()
		if err != nil {
			return nil, err
		}
		fin.stats.ZonesSec = time.Since(t).Seconds()
	}

	commitStart := time.Now()
	commitSpan := w.finSpan.Child("commit")
	// Footprint accounting and integrity checksums.
	m.Checksums = map[string]uint32{}
	for _, f := range []struct {
		name string
		dst  *int64
	}{
		{NTFile, &m.Sizes.NT}, {TTFile, &m.Sizes.TT}, {CATFile, &m.Sizes.CAT},
		{AggFile, &m.Sizes.Agg}, {BitmapFile, &m.Sizes.Bitmap},
	} {
		path := filepath.Join(w.opts.Dir, f.name)
		if fi, err := os.Stat(path); err == nil {
			*f.dst = fi.Size()
			sum, err := fileChecksum(path)
			if err != nil {
				return nil, err
			}
			m.Checksums[f.name] = sum
		}
	}

	if reg := w.opts.Metrics; reg != nil {
		reg.Gauge("storage.size.nt").Set(m.Sizes.NT)
		reg.Gauge("storage.size.tt").Set(m.Sizes.TT)
		reg.Gauge("storage.size.cat").Set(m.Sizes.CAT)
		reg.Gauge("storage.size.agg").Set(m.Sizes.Agg)
		reg.Gauge("storage.size.bitmap").Set(m.Sizes.Bitmap)
		reg.Gauge("storage.nodes").Set(int64(len(m.Nodes)))
	}

	if err := hierarchy.WriteSchemaFile(filepath.Join(w.opts.Dir, HierFile), w.opts.Hier); err != nil {
		return nil, err
	}
	if err := WriteManifest(w.opts.Dir, m); err != nil {
		return nil, err
	}
	commitSpan.End()
	fin.stats.CommitSec = time.Since(commitStart).Seconds()

	if !compressed {
		// The v1 path still indexes by re-reading the finalized extents
		// through a Reader (it needs the manifest already on disk), then
		// rewrites the manifest with the zone maps attached. Every byte
		// the pass touches is charged to storage.finalize.reread_bytes.
		t := time.Now()
		sp := w.finSpan.Child("zones")
		err := w.buildZoneMaps(m, fin)
		if err == nil {
			err = WriteManifest(w.opts.Dir, m)
		}
		sp.End()
		if err != nil {
			return nil, err
		}
		fin.stats.ZonesSec = time.Since(t).Seconds()
	}
	if err := fin.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// Abort releases writer resources without finalizing (best effort).
func (w *Writer) Abort() {
	if w.finalized {
		return
	}
	w.finalized = true
	for _, l := range []*blockLog{w.ntLog, w.ttLog, w.catLog} {
		if l != nil {
			l.f.Close()
			os.Remove(l.path)
		}
	}
	if w.aggF != nil {
		w.aggF.Close()
	}
}

func nodeKey(id lattice.NodeID) string { return fmt.Sprintf("%d", id) }

// ntCompactor rewrites NT log rows into their final shape. For plain CURE
// the log row already is the final row; for CURE_DR the R-rowid is
// resolved to base dims and projected onto the node's levels.
type ntCompactor struct {
	w      *Writer
	m      *Manifest
	levels []int
	dims   []int32
	proj   []int32
}

func (c *ntCompactor) arity(id lattice.NodeID) int {
	c.levels = c.w.enum.Decode(id, c.levels)
	arity := 0
	for d, l := range c.levels {
		if !c.w.opts.Hier.Dims[d].IsAll(l) {
			arity++
		}
	}
	return arity
}

func (c *ntCompactor) width(id lattice.NodeID) int {
	if !c.w.opts.DimsInline {
		return ntLogRowWidth(len(c.w.opts.AggSpecs))
	}
	return c.m.ntRowWidth(c.arity(id))
}

// rewrite converts one log row into the final row for node id. dst has
// width(id) bytes. With DimsInline unset it is nil (identity copy).
func (c *ntCompactor) rewrite(id lattice.NodeID, src, dst []byte) error {
	if !c.w.opts.DimsInline {
		copy(dst, src)
		return nil
	}
	rrowid := getInt64(src)
	hier := c.w.opts.Hier
	if cap(c.dims) < len(hier.Dims) {
		c.dims = make([]int32, len(hier.Dims))
		c.proj = make([]int32, len(hier.Dims))
	}
	c.dims = c.dims[:len(hier.Dims)]
	if err := c.w.opts.Resolver(rrowid, c.dims); err != nil {
		return fmt.Errorf("storage: resolving dims of row %d: %w", rrowid, err)
	}
	c.levels = c.w.enum.Decode(id, c.levels)
	proj := c.proj[:0]
	for d, l := range c.levels {
		if hier.Dims[d].IsAll(l) {
			continue
		}
		proj = append(proj, hier.Dims[d].MapCode(c.dims[d], l))
	}
	putDims(dst, proj)
	copy(dst[4*len(proj):], src[8:8+8*len(c.w.opts.AggSpecs)])
	return nil
}

// catCompactor shrinks CAT log rows to the final width under format (a).
type catCompactor struct{ format signature.Format }

func (c catCompactor) rewrite(id lattice.NodeID, src, dst []byte) error {
	if c.format == signature.FormatA {
		copy(dst, src[8:16]) // keep only the A-rowid
		return nil
	}
	copy(dst, src)
	return nil
}

// postProcess implements §5.3 for CURE+: per node, sort TT row-ids (and
// format-(a) CAT rows by A-rowid) to produce sequential scans, and convert
// dense TT id sets into bitmap indices over the fact table.
func (w *Writer) postProcess(m *Manifest) error {
	ttPath := filepath.Join(w.opts.Dir, TTFile)
	ttF, err := os.OpenFile(ttPath, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer ttF.Close()
	var bmF *os.File
	var bmOff int64
	ids := make([]int64, 0, 1024)
	keys := make([]string, 0, len(m.Nodes))
	for k := range m.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		nm := m.Nodes[k]
		if nm.TTRows == 0 {
			continue
		}
		buf := make([]byte, nm.TTRows*ttLogRowWidth)
		if _, err := ttF.ReadAt(buf, nm.TTOff); err != nil {
			return err
		}
		ids = ids[:0]
		for i := int64(0); i < nm.TTRows; i++ {
			ids = append(ids, getInt64(buf[i*8:]))
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if bitmap.DenserThanIDs(m.FactRows, nm.TTRows) {
			if bmF == nil {
				if bmF, err = os.Create(filepath.Join(w.opts.Dir, BitmapFile)); err != nil {
					return err
				}
				defer bmF.Close()
			}
			bm := bitmap.FromIDs(m.FactRows, ids)
			data := bm.Marshal()
			if _, err := bmF.WriteAt(data, bmOff); err != nil {
				return err
			}
			nm.TTKind = TTBitmap
			nm.TTOff = bmOff
			nm.TTBmLen = int64(len(data))
			bmOff += int64(len(data))
			m.Nodes[k] = nm
			continue
		}
		for i, id := range ids {
			putInt64(buf[i*8:], id)
		}
		if _, err := ttF.WriteAt(buf, nm.TTOff); err != nil {
			return err
		}
	}
	// Bitmap-converted nodes leave dead extents inside tt.bin; rebuilding
	// the file to reclaim them is a straightforward extension we skip —
	// the size accounting below charges tt.bin as written, which is the
	// conservative direction.
	if w.catFormat == signature.FormatA {
		if err := w.sortCATByARowid(m); err != nil {
			return err
		}
	}
	return nil
}

// sortCATByARowid sorts each node's format-(a) CAT extent so query-time
// AGGREGATES accesses are sequential.
func (w *Writer) sortCATByARowid(m *Manifest) error {
	path := filepath.Join(w.opts.Dir, CATFile)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	width := m.catRowWidth()
	for k, nm := range m.Nodes {
		if nm.CATRows == 0 {
			continue
		}
		buf := make([]byte, nm.CATRows*int64(width))
		if _, err := f.ReadAt(buf, nm.CATOff); err != nil {
			return fmt.Errorf("storage: reading CAT extent of node %s: %w", k, err)
		}
		rows := make([]int64, nm.CATRows)
		for i := range rows {
			rows[i] = getInt64(buf[i*width:])
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
		for i, v := range rows {
			putInt64(buf[i*width:], v)
		}
		if _, err := f.WriteAt(buf, nm.CATOff); err != nil {
			return err
		}
	}
	return nil
}

// fileChecksum computes the CRC-32 (IEEE) of a whole file.
func fileChecksum(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}
