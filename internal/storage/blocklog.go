package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"cure/internal/lattice"
)

// blockLog is the sequential construction-time spill target for one
// relation class (NT, TT, or CAT). Rows for the same node are staged in
// memory and written as node-tagged blocks — header <nodeID int64,
// payloadLen int32> followed by fixed-width rows — so construction I/O is
// purely sequential no matter how the signature pool interleaves nodes.
type blockLog struct {
	path     string
	f        *os.File
	w        *bufio.Writer
	rowWidth int
	stages   map[lattice.NodeID][]byte
	budget   *stageBudget
	staged   int64
	scratch  []byte
	rows     int64
	closed   bool
}

// stageBudget caps the total bytes staged across the logs that share it.
type stageBudget struct {
	limit int64
	used  int64
}

func newBlockLog(path string, rowWidth int, budget *stageBudget) (*blockLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &blockLog{
		path:     path,
		f:        f,
		w:        bufio.NewWriterSize(f, 1<<20),
		rowWidth: rowWidth,
		stages:   map[lattice.NodeID][]byte{},
		budget:   budget,
		scratch:  make([]byte, rowWidth),
	}, nil
}

// rowBuf returns the shared scratch row buffer (rowWidth bytes); callers
// fill it and pass it to append, which copies it.
func (l *blockLog) rowBuf() []byte { return l.scratch }

func (l *blockLog) append(node lattice.NodeID, row []byte) error {
	l.stages[node] = append(l.stages[node], row[:l.rowWidth]...)
	l.staged += int64(l.rowWidth)
	l.budget.used += int64(l.rowWidth)
	l.rows++
	if l.budget.used > l.budget.limit {
		return l.spill()
	}
	return nil
}

// spill writes all staged rows out as blocks and releases their budget.
func (l *blockLog) spill() error {
	var hdr [12]byte
	for node, rows := range l.stages {
		if len(rows) == 0 {
			continue
		}
		binary.LittleEndian.PutUint64(hdr[0:], uint64(node))
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(rows)))
		if _, err := l.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := l.w.Write(rows); err != nil {
			return err
		}
		delete(l.stages, node)
	}
	l.budget.used -= l.staged
	l.staged = 0
	return nil
}

// finish spills remaining stages and flushes the log to disk.
func (l *blockLog) finish() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.spill(); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}

// scan replays the log, calling fn for every block.
func (l *blockLog) scan(fn func(node lattice.NodeID, payload []byte) error) error {
	f, err := os.Open(l.path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [12]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("storage: scanning %s: %w", l.path, err)
		}
		node := lattice.NodeID(binary.LittleEndian.Uint64(hdr[0:]))
		n := int(binary.LittleEndian.Uint32(hdr[8:]))
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("storage: scanning %s: truncated block: %w", l.path, err)
		}
		if err := fn(node, payload); err != nil {
			return err
		}
	}
}

// rewriteFunc converts one log row into its final on-disk form for node
// id; dst is widthFn(id) bytes. A nil rewriteFunc means identity (final
// width must equal the log row width).
type rewriteFunc func(id lattice.NodeID, src, dst []byte) error

// compactLog turns a block log into a compacted extent file: all rows of
// a node stored contiguously, nodes in id order. done is called once per
// node with its byte offset and row count.
func compactLog(l *blockLog, finalPath string, widthFn func(lattice.NodeID) int, rewrite rewriteFunc, done func(id lattice.NodeID, off, rows int64)) error {
	if err := l.finish(); err != nil {
		return err
	}
	// Pass 1: row counts per node.
	counts := map[lattice.NodeID]int64{}
	if err := l.scan(func(node lattice.NodeID, payload []byte) error {
		counts[node] += int64(len(payload) / l.rowWidth)
		return nil
	}); err != nil {
		return err
	}
	ids := make([]lattice.NodeID, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	offsets := make(map[lattice.NodeID]int64, len(counts))
	cursor := make(map[lattice.NodeID]int64, len(counts))
	var off int64
	for _, id := range ids {
		offsets[id] = off
		cursor[id] = off
		off += counts[id] * int64(widthFn(id))
	}
	out, err := os.Create(finalPath)
	if err != nil {
		return err
	}
	// Pass 2: place blocks at their node cursors.
	var outBuf []byte
	err = l.scan(func(node lattice.NodeID, payload []byte) error {
		rows := len(payload) / l.rowWidth
		w := widthFn(node)
		var data []byte
		if rewrite == nil && w == l.rowWidth {
			data = payload
		} else {
			need := rows * w
			if cap(outBuf) < need {
				outBuf = make([]byte, need)
			}
			data = outBuf[:need]
			for i := 0; i < rows; i++ {
				if err := rewrite(node, payload[i*l.rowWidth:(i+1)*l.rowWidth], data[i*w:(i+1)*w]); err != nil {
					return err
				}
			}
		}
		if _, err := out.WriteAt(data, cursor[node]); err != nil {
			return err
		}
		cursor[node] += int64(len(data))
		return nil
	})
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	for _, id := range ids {
		done(id, offsets[id], counts[id])
	}
	return os.Remove(l.path)
}
