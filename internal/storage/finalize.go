package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cure/internal/bitmap"
	"cure/internal/hierarchy"
	"cure/internal/obsv"
)

// Finalize's extent pipeline. Compression (manifest v2) and zone-map
// construction used to be two serial passes over the whole cube: encode
// every extent, then re-read the finalized files through a Reader to
// index them. Extents are independent — the same observation that makes
// the cube's group-bys parallel makes its storage rewrite parallel — so
// both are now one fused pass executed as concurrent work items: each
// worker reads one extent's raw rows, picks codecs and encodes the
// blocks into a private buffer, folds the very same rows into the
// extent's zone map, and whoever holds the commit lock flushes every
// ready prefix result to the temp file in ascending-offset order. The
// ordered commit is what keeps the output byte-identical to the
// sequential pass at every worker count; the fused zone fold is what
// kills the second read of the cube.

// WorkerPool grants extra worker slots from a build-wide limiter so the
// finalize pipeline draws from the same concurrency budget as every
// other parallel site (it mirrors partition.WorkerPool; core's shared
// limiter satisfies both).
type WorkerPool interface {
	// TryAcquire claims one extra worker slot without blocking.
	TryAcquire() bool
	// Release returns a slot claimed by TryAcquire.
	Release()
}

// FinalizeStatsFile is the sidecar file finalize telemetry is persisted
// to. Timings can never live in the manifest: the manifest must stay
// byte-identical across worker counts (and across runs of equal input).
const FinalizeStatsFile = "finalize.json"

// FinalizeStats is the persisted record of one Finalize run: sub-phase
// wall clocks, pipeline volume, the codec histogram, the sampled-codec
// hit rate, and how many bytes the pass re-read from files it had
// already written (≈0 when zone construction is fused into the
// compression scan).
type FinalizeStats struct {
	// Parallelism is the configured worker cap; Workers is what the
	// pipeline actually got (pool grants can fall short on a busy build).
	Parallelism int `json:"parallelism"`
	Workers     int `json:"workers"`
	// Compression is the writer's mode ("", "none", "auto", "sampled").
	Compression string `json:"compression,omitempty"`

	// Wall-clock seconds of the finalize sub-phases.
	CompactSec  float64 `json:"compact_sec"`
	CompressSec float64 `json:"compress_sec,omitempty"`
	ZonesSec    float64 `json:"zones_sec,omitempty"`
	CommitSec   float64 `json:"commit_sec"`

	// CPU-time sums inside the fused pass; they overlap across workers,
	// so they may exceed the CompressSec wall clock.
	EncodeSec   float64 `json:"encode_sec,omitempty"`
	ZoneFoldSec float64 `json:"zone_fold_sec,omitempty"`
	WriteSec    float64 `json:"write_sec,omitempty"`

	Extents   int64            `json:"extents"`
	Blocks    int64            `json:"blocks"`
	Encodings map[string]int64 `json:"encodings,omitempty"`
	// SampledBlocks counts column-blocks encoded by the sampled fast
	// path; Mispredicts counts the ones whose prediction lost to raw and
	// fell back to the exact brute force.
	SampledBlocks int64 `json:"sampled_blocks,omitempty"`
	Mispredicts   int64 `json:"mispredicts,omitempty"`
	ZoneExtents   int64 `json:"zone_extents"`
	RereadBytes   int64 `json:"reread_bytes"`
	CommitStalls  int64 `json:"commit_stalls"`

	// WorkerRawBytes is the raw extent volume each worker slot processed
	// (slot 0 is the calling goroutine) — the pipeline's skew record.
	WorkerRawBytes []int64 `json:"worker_raw_bytes,omitempty"`
}

// WriteFinalizeStats persists the finalize sidecar of a cube directory.
func WriteFinalizeStats(dir string, st *FinalizeStats) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, FinalizeStatsFile), append(data, '\n'), 0o644)
}

// ReadFinalizeStats loads the finalize sidecar of a cube directory.
func ReadFinalizeStats(dir string) (*FinalizeStats, error) {
	data, err := os.ReadFile(filepath.Join(dir, FinalizeStatsFile))
	if err != nil {
		return nil, err
	}
	st := &FinalizeStats{}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("storage: finalize sidecar: %w", err)
	}
	return st, nil
}

// zoneConfig is the zone-map layout of a build, nil when indexing is off
// (negative ZoneBlockRows, no resolver, or a slot-less schema).
type zoneConfig struct {
	blockRows int
	offs      []int
	slots     int
}

func (w *Writer) zoneConfig() *zoneConfig {
	blockRows := w.opts.ZoneBlockRows
	if blockRows == 0 {
		blockRows = DefaultZoneBlockRows
	}
	if blockRows < 0 || w.opts.Resolver == nil {
		return nil
	}
	offs, slots := ZoneSlots(w.opts.Hier)
	if slots == 0 {
		return nil
	}
	return &zoneConfig{blockRows: blockRows, offs: offs, slots: slots}
}

// zoneResolver maps an R-rowid to codes at every dimension-level slot.
// Each pipeline worker owns one; Options.Resolver must therefore be safe
// for concurrent calls when Options.Parallelism > 1.
type zoneResolver struct {
	resolver DimResolver
	hier     *hierarchy.Schema
	offs     []int
	baseDims []int32
	codes    []int32
}

func newZoneResolver(resolver DimResolver, hier *hierarchy.Schema, zc *zoneConfig) *zoneResolver {
	return &zoneResolver{
		resolver: resolver,
		hier:     hier,
		offs:     zc.offs,
		baseDims: make([]int32, hier.NumDims()),
		codes:    make([]int32, zc.slots),
	}
}

func (zr *zoneResolver) rowCodes(rrowid int64) ([]int32, error) {
	if err := zr.resolver(rrowid, zr.baseDims); err != nil {
		return nil, fmt.Errorf("storage: zone map: resolving row %d: %w", rrowid, err)
	}
	for d, dim := range zr.hier.Dims {
		for l := 0; l < dim.AllLevel(); l++ {
			zr.codes[zr.offs[d]+l] = dim.MapCode(zr.baseDims[d], l)
		}
	}
	return zr.codes, nil
}

// zoneMode says how an extent's raw rows map to zone-map codes.
type zoneMode uint8

const (
	zoneNone   zoneMode = iota
	zoneRowID           // resolve the int64 R-rowid in column 0 (plain NT, TT ids, format-(b) CAT)
	zoneSparse          // CURE_DR NT: the leading int32 columns are the node's own level codes
	zoneAggRef          // format-(a) CAT: column 0 is an A-rowid into AGGREGATES
)

type zoneSpec struct {
	mode    zoneMode
	slotIdx []int
}

// extentJob is one unit of pipeline work: where the raw rows live, their
// column schema, how the rows map to zone slots, and how to record the
// new location once the ordered committer reaches it.
type extentJob struct {
	off, rows int64
	kinds     []colKind
	zone      zoneSpec
	// captureRowIDs retains the extent's int64 column 0 — the AGGREGATES
	// R-rowid column format-(a) CAT zone maps dereference, captured while
	// agg.bin streams through the encoder instead of re-reading it.
	captureRowIDs bool
	set           func(off int64, c *ExtentCodec, z *ZoneIndex)
}

// extentResult is a processed extent waiting for its ordered commit.
type extentResult struct {
	enc              []byte
	codec            *ExtentCodec
	zone             *ZoneIndex
	rowIDs           []int64
	slot             int
	encodeNs, zoneNs int64
	sampledBlocks    int64
	mispredicts      int64
}

// finState carries one Finalize run's pipeline state and metric bindings
// across the per-file rewrites.
type finState struct {
	w    *Writer
	mode string
	zcfg *zoneConfig
	// aggRRows is the R-rowid column of AGGREGATES under format (a), set
	// by the committer when agg.bin's extent lands (agg.bin is rewritten
	// before cat.bin exactly so the CAT zone fold finds it here).
	aggRRows []int64

	stats       FinalizeStats
	workerBytes []int64

	cExtents, cBlocks    *obsv.Counter // storage.codec.*
	cRawBytes, cEncBytes *obsv.Counter
	cFinExtents          *obsv.Counter
	cFinBlocks           *obsv.Counter
	cSampled, cMispred   *obsv.Counter
	cReread, cStalls     *obsv.Counter
	cZoneExts, cZoneBlks *obsv.Counter
}

func (w *Writer) newFinState() *finState {
	reg := w.opts.Metrics
	fin := &finState{
		w:           w,
		mode:        w.opts.Compression,
		zcfg:        w.zoneConfig(),
		cExtents:    reg.Counter("storage.codec.extents"),
		cBlocks:     reg.Counter("storage.codec.blocks"),
		cRawBytes:   reg.Counter("storage.codec.raw_bytes"),
		cEncBytes:   reg.Counter("storage.codec.encoded_bytes"),
		cFinExtents: reg.Counter("storage.finalize.extents"),
		cFinBlocks:  reg.Counter("storage.finalize.blocks"),
		cSampled:    reg.Counter("storage.finalize.sampled_blocks"),
		cMispred:    reg.Counter("storage.finalize.mispredicts"),
		cReread:     reg.Counter("storage.finalize.reread_bytes"),
		cStalls:     reg.Counter("storage.finalize.commit_stalls"),
		cZoneExts:   reg.Counter("storage.zone.extents"),
		cZoneBlks:   reg.Counter("storage.zone.blocks"),
	}
	fin.stats.Parallelism = w.opts.Parallelism
	if fin.stats.Parallelism < 1 {
		fin.stats.Parallelism = 1
	}
	fin.stats.Workers = 1
	fin.stats.Compression = w.opts.Compression
	fin.stats.Encodings = map[string]int64{}
	return fin
}

// codecBlockRows is the block granularity of the compression pass (and,
// whenever zone maps are on, of the zone maps — they share it so pruning
// skips whole codec blocks).
func (fin *finState) codecBlockRows() int64 {
	br := int64(fin.w.opts.ZoneBlockRows)
	if br <= 0 {
		br = DefaultZoneBlockRows
	}
	return br
}

// acquireWorkers grants the pipeline's worker count for one file: the
// calling goroutine plus up to Parallelism-1 extras, drawn from the
// build-wide pool when one is attached (finalize never oversubscribes a
// parallel build's budget) or spawned freely otherwise.
func (fin *finState) acquireWorkers(jobs int) (int, func()) {
	want := fin.w.opts.Parallelism - 1
	if want > jobs-1 {
		want = jobs - 1
	}
	if want <= 0 {
		return 1, func() {}
	}
	got := want
	release := func() {}
	if pool := fin.w.opts.Pool; pool != nil {
		got = 0
		for got < want && pool.TryAcquire() {
			got++
		}
		n := got
		release = func() {
			for i := 0; i < n; i++ {
				pool.Release()
			}
		}
	}
	if got+1 > fin.stats.Workers {
		fin.stats.Workers = got + 1
	}
	return got + 1, release
}

// foldResult folds one committed extent into the run's counters and
// stats. Called with the commit lock held, in commit order, so totals
// are deterministic.
func (fin *finState) foldResult(res *extentResult) {
	nb := int64(res.codec.NumBlocks())
	fin.cExtents.Inc()
	fin.cBlocks.Add(nb)
	fin.cRawBytes.Add(res.codec.RawBytes)
	fin.cEncBytes.Add(res.codec.EncodedBytes())
	fin.cFinExtents.Inc()
	fin.cFinBlocks.Add(nb)
	fin.cSampled.Add(res.sampledBlocks)
	fin.cMispred.Add(res.mispredicts)
	st := &fin.stats
	st.Extents++
	st.Blocks += nb
	st.SampledBlocks += res.sampledBlocks
	st.Mispredicts += res.mispredicts
	st.EncodeSec += float64(res.encodeNs) / 1e9
	st.ZoneFoldSec += float64(res.zoneNs) / 1e9
	for name, n := range res.codec.Encodings {
		st.Encodings[name] += n
	}
	for len(fin.workerBytes) <= res.slot {
		fin.workerBytes = append(fin.workerBytes, 0)
	}
	fin.workerBytes[res.slot] += res.codec.RawBytes
	if res.zone != nil {
		fin.recordZone(res.zone)
	}
}

func (fin *finState) recordZone(z *ZoneIndex) {
	fin.cZoneExts.Inc()
	fin.cZoneBlks.Add(int64(z.NumBlocks()))
	fin.stats.ZoneExtents++
}

// finish publishes the worker-skew gauges and writes the sidecar.
func (fin *finState) finish() error {
	st := &fin.stats
	st.WorkerRawBytes = fin.workerBytes
	if reg := fin.w.opts.Metrics; reg != nil {
		reg.Gauge("storage.finalize.workers").Set(int64(st.Workers))
		if len(fin.workerBytes) > 0 {
			var max, sum int64
			for _, b := range fin.workerBytes {
				sum += b
				if b > max {
					max = b
				}
			}
			reg.Gauge("storage.finalize.skew.max_bytes").Set(max)
			reg.Gauge("storage.finalize.skew.mean_bytes").Set(sum / int64(len(fin.workerBytes)))
		}
	}
	return WriteFinalizeStats(fin.w.opts.Dir, st)
}

// finalizeWorker is one pipeline worker's scratch state, reused across
// the extents the worker claims.
type finalizeWorker struct {
	raw    []byte
	sparse []int32
	zr     *zoneResolver
}

// processExtent reads one extent's raw rows, encodes its blocks into a
// private buffer (recycled from committed results when possible), and
// folds the same rows into the extent's zone map.
func (w *Writer) processExtent(fw *finalizeWorker, in *os.File, e *extentJob, fin *finState, enc []byte) (*extentResult, error) {
	width := 0
	for _, k := range e.kinds {
		width += k.width()
	}
	size := e.rows * int64(width)
	if int64(cap(fw.raw)) < size {
		fw.raw = make([]byte, size)
	}
	raw := fw.raw[:size]
	if size > 0 {
		if _, err := in.ReadAt(raw, e.off); err != nil {
			return nil, fmt.Errorf("storage: finalize: reading extent at %d: %w", e.off, err)
		}
	}
	blockRows := fin.codecBlockRows()
	var be *blockEncoder
	if fin.mode == CompressionSampled {
		be = newSampledBlockEncoder(e.kinds, DefaultSampleBlocks)
	} else {
		be = newBlockEncoder(e.kinds)
	}
	codec := &ExtentCodec{
		BlockRows: blockRows,
		RawBytes:  size,
		Offs:      []int64{0},
		Encodings: map[string]int64{},
	}
	enc = enc[:0]
	t0 := time.Now()
	for r0 := int64(0); r0 < e.rows; r0 += blockRows {
		n := blockRows
		if r0+n > e.rows {
			n = e.rows - r0
		}
		enc = be.encodeBlock(raw[r0*int64(width):], int(n), enc)
		codec.Offs = append(codec.Offs, int64(len(enc)))
		for _, tag := range be.tags {
			codec.Encodings[encName(tag)]++
		}
	}
	res := &extentResult{
		enc:           enc,
		codec:         codec,
		encodeNs:      time.Since(t0).Nanoseconds(),
		sampledBlocks: be.sampledBlocks,
		mispredicts:   be.mispredicts,
	}
	if zc := fin.zcfg; zc != nil && e.zone.mode != zoneNone && e.rows >= int64(zc.blockRows) {
		t1 := time.Now()
		z, err := w.foldExtentZones(fw, e, fin, raw, width)
		if err != nil {
			return nil, err
		}
		res.zone = z
		res.zoneNs = time.Since(t1).Nanoseconds()
	}
	if e.captureRowIDs && e.rows > 0 {
		ids := make([]int64, e.rows)
		for r := int64(0); r < e.rows; r++ {
			ids[r] = getInt64(raw[r*int64(width):])
		}
		res.rowIDs = ids
	}
	return res, nil
}

// foldExtentZones builds the zone map of one extent from the raw rows
// already in memory for compression. Raw extent order is the final
// on-disk order (compression runs after CURE+ post-processing), which is
// exactly the order query-time scans visit — the invariant that makes
// the fused zones equal to the legacy Reader-based pass.
func (w *Writer) foldExtentZones(fw *finalizeWorker, e *extentJob, fin *finState, raw []byte, width int) (*ZoneIndex, error) {
	zc := fin.zcfg
	if fw.zr == nil {
		fw.zr = newZoneResolver(w.opts.Resolver, w.opts.Hier, zc)
	}
	zb := newZoneBuilder(zc.blockRows, zc.slots)
	for r := int64(0); r < e.rows; r++ {
		row := raw[r*int64(width):]
		switch e.zone.mode {
		case zoneRowID:
			codes, err := fw.zr.rowCodes(getInt64(row))
			if err != nil {
				return nil, err
			}
			zb.addAll(codes)
		case zoneSparse:
			k := len(e.zone.slotIdx)
			if cap(fw.sparse) < k {
				fw.sparse = make([]int32, k)
			}
			sp := fw.sparse[:k]
			for i := range sp {
				sp[i] = int32(binary.LittleEndian.Uint32(row[4*i:]))
			}
			zb.addSparse(e.zone.slotIdx, sp)
		case zoneAggRef:
			ar := getInt64(row)
			if ar < 0 || ar >= int64(len(fin.aggRRows)) {
				return nil, fmt.Errorf("storage: finalize: A-rowid %d outside AGGREGATES (%d rows)", ar, len(fin.aggRRows))
			}
			codes, err := fw.zr.rowCodes(fin.aggRRows[ar])
			if err != nil {
				return nil, err
			}
			zb.addAll(codes)
		}
	}
	return zb.finish(), nil
}

// rewriteExtents rewrites one relation file through the worker/committer
// pipeline. Workers claim extents (sorted by ascending offset) from a
// shared cursor, bounded by a lookahead window so buffered results never
// exceed ~2 extents per worker; whoever holds the commit lock flushes
// every ready prefix result, so bytes reach the temp file in exactly the
// sequential pass's order at any worker count. The temp file is renamed
// over the original, so a crash mid-pass leaves either the old or the
// new file, never a mix.
func (w *Writer) rewriteExtents(path string, jobs []extentJob, fin *finState) error {
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].off < jobs[j].off })
	in, err := os.Open(path)
	if err != nil {
		return err
	}
	defer in.Close()
	tmp := path + ".z"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer out.Close()
	bw := bufio.NewWriterSize(out, 1<<20)

	workers, release := fin.acquireWorkers(len(jobs))
	defer release()
	window := 2 * workers

	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		next      int
		committed int
		cursor    int64
		results   = make([]*extentResult, len(jobs))
		spare     [][]byte // recycled encode buffers of committed results
		firstErr  error
		panicVal  any
		writeNs   int64
	)
	commitReady := func() {
		for firstErr == nil && committed < len(jobs) && results[committed] != nil {
			res := results[committed]
			t0 := time.Now()
			if _, err := bw.Write(res.enc); err != nil {
				firstErr = err
				break
			}
			writeNs += time.Since(t0).Nanoseconds()
			jobs[committed].set(cursor, res.codec, res.zone)
			cursor += int64(len(res.enc))
			if res.rowIDs != nil {
				fin.aggRRows = res.rowIDs
			}
			fin.foldResult(res)
			spare = append(spare, res.enc)
			results[committed] = nil
			committed++
		}
	}
	worker := func(slot int) {
		defer func() {
			if v := recover(); v != nil {
				mu.Lock()
				if panicVal == nil {
					panicVal = v
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
		fw := &finalizeWorker{}
		for {
			mu.Lock()
			if firstErr == nil && panicVal == nil && next < len(jobs) && next-committed >= window {
				fin.cStalls.Inc()
				fin.stats.CommitStalls++
				for firstErr == nil && panicVal == nil && next < len(jobs) && next-committed >= window {
					cond.Wait()
				}
			}
			if firstErr != nil || panicVal != nil || next >= len(jobs) {
				mu.Unlock()
				return
			}
			i := next
			next++
			var buf []byte
			if n := len(spare); n > 0 {
				buf, spare = spare[n-1], spare[:n-1]
			}
			mu.Unlock()

			res, err := w.processExtent(fw, in, &jobs[i], fin, buf)
			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				res.slot = slot
				results[i] = res
				commitReady()
			}
			cond.Broadcast()
			mu.Unlock()
		}
	}

	if workers <= 1 {
		worker(0)
	} else {
		var wg sync.WaitGroup
		for s := 1; s < workers; s++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				worker(slot)
			}(s)
		}
		worker(0)
		wg.Wait()
	}
	if panicVal != nil {
		panic(panicVal)
	}
	if firstErr != nil {
		return firstErr
	}
	fin.stats.WriteSec += float64(writeNs) / 1e9
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// buildBitmapZones indexes CURE+ bitmap TT extents after the fused pass.
// Bitmaps are already a compressed form, so they never stream through
// the encoder — these extents are the one place finalize still re-reads
// bytes it already wrote, counted in storage.finalize.reread_bytes.
func (w *Writer) buildBitmapZones(m *Manifest, fin *finState) error {
	zc := fin.zcfg
	if zc == nil {
		return nil
	}
	var f *os.File
	var zr *zoneResolver
	keys := make([]string, 0, len(m.Nodes))
	for k := range m.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		nm := m.Nodes[k]
		if nm.TTKind != TTBitmap || nm.TTRows < int64(zc.blockRows) {
			continue
		}
		if f == nil {
			var err error
			if f, err = os.Open(filepath.Join(w.opts.Dir, BitmapFile)); err != nil {
				return err
			}
			defer f.Close()
			zr = newZoneResolver(w.opts.Resolver, w.opts.Hier, zc)
		}
		buf := make([]byte, nm.TTBmLen)
		if _, err := f.ReadAt(buf, nm.TTOff); err != nil {
			return fmt.Errorf("storage: finalize: TT bitmap of node %s: %w", k, err)
		}
		fin.cReread.Add(nm.TTBmLen)
		fin.stats.RereadBytes += nm.TTBmLen
		bm, err := bitmap.Unmarshal(buf)
		if err != nil {
			return err
		}
		zb := newZoneBuilder(zc.blockRows, zc.slots)
		var ferr error
		bm.ForEach(func(i int64) bool {
			codes, err := zr.rowCodes(i)
			if err != nil {
				ferr = err
				return false
			}
			zb.addAll(codes)
			return true
		})
		if ferr != nil {
			return ferr
		}
		if z := zb.finish(); z != nil {
			fin.recordZone(z)
			nm.TTZones = z
			m.Nodes[k] = nm
		}
	}
	return nil
}
