package storage

import (
	"fmt"
	"os"

	"cure/internal/lattice"
	"cure/internal/signature"
)

// Block-wise read paths of compressed extents. Each public Reader method
// keeps its streaming contract; under the hood the compressed variants
// fetch one block at a time — consulting the optional decoded-block cache
// first, so cached blocks cost neither the read nor the decode — and run
// tight per-column loops over the decoded buffers. All scratch state is
// per-call, so the paths stay safe for concurrent queries.

// blockFetcher streams the blocks of one compressed extent. The local
// DecodedBlock is reused across blocks when no cache is attached (zero
// allocations steady-state); with a cache, misses decode into a fresh
// block that is then shared immutably between queries.
type blockFetcher struct {
	r        *Reader
	f        *os.File
	rel      uint8
	node     int64
	base     int64 // extent offset inside the file
	c        *ExtentCodec
	kinds    []colKind
	rows     int64 // extent row count
	rawWidth int64 // fixed-width bytes per row (decode accounting)
	// skipCache bypasses the block cache for one-shot passes (pinning
	// AGGREGATES) that would otherwise evict hot query blocks.
	skipCache bool

	enc   []byte
	local DecodedBlock
}

// blockRowCount returns the rows of block b (the last block may be
// partial).
func blockRowCount(c *ExtentCodec, rows int64, b int) int {
	lo := int64(b) * c.BlockRows
	hi := lo + c.BlockRows
	if hi > rows {
		hi = rows
	}
	return int(hi - lo)
}

// fetch returns block b decoded, via the cache when one is attached.
func (bf *blockFetcher) fetch(b int, io *IOStats) (*DecodedBlock, error) {
	cache := bf.r.blocks
	if bf.skipCache {
		cache = nil
	}
	if cache != nil {
		if db := cache.GetBlock(bf.rel, bf.node, b); db != nil {
			return db, nil
		}
	}
	lo, hi := bf.c.Offs[b], bf.c.Offs[b+1]
	n := hi - lo
	if int64(cap(bf.enc)) < n {
		bf.enc = make([]byte, n)
	}
	buf := bf.enc[:n]
	if _, err := bf.f.ReadAt(buf, bf.base+lo); err != nil {
		return nil, fmt.Errorf("block %d: %w", b, err)
	}
	bf.r.account(io, n)
	want := blockRowCount(bf.c, bf.rows, b)
	db := &bf.local
	if cache != nil {
		db = &DecodedBlock{}
	}
	if _, err := decodeBlock(buf, bf.kinds, want, db); err != nil {
		return nil, fmt.Errorf("block %d: %w", b, err)
	}
	decoded := int64(want) * bf.rawWidth
	io.addDecoded(decoded)
	bf.r.cDecBytes.Add(decoded)
	bf.r.cDecBlocks.Inc()
	if cache != nil {
		cache.PutBlock(bf.rel, bf.node, b, db, decoded)
	}
	return db, nil
}

// ttRowIDsBlocks decodes a compressed TT id extent whole (the TT contract:
// the extent is fetched in one piece, zone pruning narrows iteration).
func (r *Reader) ttRowIDsBlocks(id lattice.NodeID, nm NodeMeta, dst []int64, io *IOStats) ([]int64, error) {
	if cap(dst) < int(nm.TTRows) {
		dst = make([]int64, 0, nm.TTRows)
	}
	dst = dst[:0]
	bf := &blockFetcher{
		r: r, f: r.ttF, rel: BlockRelTT, node: int64(id), base: nm.TTOff,
		c: nm.TTCodec, kinds: ttKinds(), rows: nm.TTRows, rawWidth: ttLogRowWidth,
	}
	for b := 0; b < nm.TTCodec.NumBlocks(); b++ {
		db, err := bf.fetch(b, io)
		if err != nil {
			return nil, fmt.Errorf("storage: TT extent of node %d: %w", id, err)
		}
		dst = append(dst, db.I64[0][:db.Rows]...)
	}
	return dst, nil
}

// ntRowsBlocks streams a compressed NT extent block-at-a-time over the
// kept row ranges; pruned blocks are neither read nor decoded.
func (r *Reader) ntRowsBlocks(id lattice.NodeID, nm NodeMeta, arity int, ranges []RowRange, io *IOStats, fn func(row NTRow) error) error {
	kinds := r.m.ntKinds(arity)
	row := NTRow{Aggrs: make([]float64, r.m.NumAggrs())}
	dimsInline := r.m.DimsInline
	if dimsInline {
		row.Dims = make([]int32, arity)
	}
	bf := &blockFetcher{
		r: r, f: r.ntF, rel: BlockRelNT, node: int64(id), base: nm.NTOff,
		c: nm.NTCodec, kinds: kinds, rows: nm.NTRows,
		rawWidth: int64(r.m.ntRowWidth(arity)),
	}
	br := nm.NTCodec.BlockRows
	for _, rg := range ranges {
		if rg.Lo < 0 || rg.Hi > nm.NTRows || rg.Lo >= rg.Hi {
			continue
		}
		for b := int(rg.Lo / br); int64(b)*br < rg.Hi; b++ {
			db, err := bf.fetch(b, io)
			if err != nil {
				return fmt.Errorf("storage: NT extent of node %d: %w", id, err)
			}
			base := int64(b) * br
			lo, hi := rg.Lo-base, rg.Hi-base
			if lo < 0 {
				lo = 0
			}
			if hi > int64(db.Rows) {
				hi = int64(db.Rows)
			}
			if dimsInline {
				for i := lo; i < hi; i++ {
					for d := 0; d < arity; d++ {
						row.Dims[d] = db.I32[d][i]
					}
					for a := range row.Aggrs {
						row.Aggrs[a] = db.F64[arity+a][i]
					}
					row.RRowid = -1
					if err := fn(row); err != nil {
						return err
					}
				}
			} else {
				ids := db.I64[0]
				for i := lo; i < hi; i++ {
					row.RRowid = ids[i]
					for a := range row.Aggrs {
						row.Aggrs[a] = db.F64[1+a][i]
					}
					if err := fn(row); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// catRowsBlocks streams a compressed CAT extent block-at-a-time over the
// kept row ranges.
func (r *Reader) catRowsBlocks(id lattice.NodeID, nm NodeMeta, ranges []RowRange, io *IOStats, fn func(row CATRow) error) error {
	formatA := r.m.CatFormat == signature.FormatA
	bf := &blockFetcher{
		r: r, f: r.catF, rel: BlockRelCAT, node: int64(id), base: nm.CATOff,
		c: nm.CATCodec, kinds: r.m.catKinds(), rows: nm.CATRows,
		rawWidth: int64(r.m.catRowWidth()),
	}
	br := nm.CATCodec.BlockRows
	for _, rg := range ranges {
		if rg.Lo < 0 || rg.Hi > nm.CATRows || rg.Lo >= rg.Hi {
			continue
		}
		for b := int(rg.Lo / br); int64(b)*br < rg.Hi; b++ {
			db, err := bf.fetch(b, io)
			if err != nil {
				return fmt.Errorf("storage: CAT extent of node %d: %w", id, err)
			}
			base := int64(b) * br
			lo, hi := rg.Lo-base, rg.Hi-base
			if lo < 0 {
				lo = 0
			}
			if hi > int64(db.Rows) {
				hi = int64(db.Rows)
			}
			var row CATRow
			if formatA {
				row.RRowid = -1
				ids := db.I64[0]
				for i := lo; i < hi; i++ {
					row.ARowid = ids[i]
					if err := fn(row); err != nil {
						return err
					}
				}
			} else {
				rr, ar := db.I64[0], db.I64[1]
				for i := lo; i < hi; i++ {
					row.RRowid, row.ARowid = rr[i], ar[i]
					if err := fn(row); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// aggFetcher builds a block fetcher over the shared AGGREGATES extent.
func (r *Reader) aggFetcher(skipCache bool) *blockFetcher {
	return &blockFetcher{
		r: r, f: r.aggF, rel: BlockRelAgg, node: -1, base: 0,
		c: r.m.AggCodec, kinds: r.m.aggKinds(), rows: r.m.AggRows,
		rawWidth: int64(r.m.aggRowWidth()), skipCache: skipCache,
	}
}

// readAggregateBlock fetches one AGGREGATES tuple out of its compressed
// block (unpinned engines; pinned ones go through AggregatesRaw once).
func (r *Reader) readAggregateBlock(arowid int64, aggrs []float64, io *IOStats) (int64, error) {
	c := r.m.AggCodec
	bf := r.aggFetcher(false)
	db, err := bf.fetch(int(arowid/c.BlockRows), io)
	if err != nil {
		return 0, fmt.Errorf("storage: AGGREGATES: %w", err)
	}
	i := arowid % c.BlockRows
	rrowid := int64(-1)
	off := 0
	if r.m.CatFormat == signature.FormatA {
		rrowid = db.I64[0][i]
		off = 1
	}
	for a := 0; a < r.m.NumAggrs(); a++ {
		aggrs[a] = db.F64[off+a][i]
	}
	return rrowid, nil
}

// aggregatesRawBlocks decodes the whole compressed AGGREGATES relation
// into buf in the fixed-width v1 layout DecodeAggregate expects.
func (r *Reader) aggregatesRawBlocks(buf []byte) error {
	c := r.m.AggCodec
	bf := r.aggFetcher(true) // one-shot pass: don't churn the block cache
	width := r.m.aggRowWidth()
	formatA := r.m.CatFormat == signature.FormatA
	y := r.m.NumAggrs()
	aggs := make([]float64, y)
	pos := 0
	for b := 0; b < c.NumBlocks(); b++ {
		db, err := bf.fetch(b, nil)
		if err != nil {
			return fmt.Errorf("storage: AGGREGATES: %w", err)
		}
		for i := 0; i < db.Rows; i++ {
			rec := buf[pos : pos+width]
			off := 0
			colOff := 0
			if formatA {
				putInt64(rec, db.I64[0][i])
				off, colOff = 8, 1
			}
			for a := 0; a < y; a++ {
				aggs[a] = db.F64[colOff+a][i]
			}
			putAggrs(rec[off:], aggs)
			pos += width
		}
	}
	return nil
}
