package storage

import (
	"testing"

	"cure/internal/hierarchy"
)

func zoneTestSchema(t *testing.T) *hierarchy.Schema {
	t.Helper()
	m := hierarchy.BuildContiguousMap(12, 3)
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1"}, []int32{12, 3}, [][]int32{m})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := hierarchy.NewSchema(a, hierarchy.NewFlatDim("B", 5))
	if err != nil {
		t.Fatal(err)
	}
	return hier
}

func TestZoneSlots(t *testing.T) {
	hier := zoneTestSchema(t)
	offs, n := ZoneSlots(hier)
	// A has 2 real levels, B has 1; ALL levels get no slot.
	if n != 3 {
		t.Fatalf("slots = %d, want 3", n)
	}
	if offs[0] != 0 || offs[1] != 2 {
		t.Fatalf("offs = %v, want [0 2]", offs)
	}
}

// buildIndex folds rows of codes (one []int32 per row, one code per slot)
// through the zone builder.
func buildIndex(blockRows int, rows [][]int32) *ZoneIndex {
	zb := newZoneBuilder(blockRows, len(rows[0]))
	for _, r := range rows {
		zb.addAll(r)
	}
	return zb.finish()
}

func TestPruneZonesUnsorted(t *testing.T) {
	// One slot, block size 2, 7 rows (last block partial); values chosen
	// so the bounds are NOT monotone — forces the linear path.
	z := buildIndex(2, [][]int32{{5}, {9}, {1}, {2}, {8}, {7}, {3}})
	if z.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4", z.NumBlocks())
	}
	if z.Sorted != nil && z.sortedSlot(0) {
		t.Fatal("non-monotone slot flagged sorted")
	}
	// [1,3] matches blocks 1 ([1,2]) and 3 ([3,3]) only.
	ranges, kept, skipped := PruneZones(z, 7, []ZonePred{{Slot: 0, Lo: 1, Hi: 3}})
	if kept != 2 || skipped != 2 {
		t.Fatalf("kept=%d skipped=%d, want 2/2", kept, skipped)
	}
	want := []RowRange{{2, 4}, {6, 7}}
	if len(ranges) != len(want) || ranges[0] != want[0] || ranges[1] != want[1] {
		t.Fatalf("ranges = %v, want %v", ranges, want)
	}
	// A vacuous predicate keeps everything and merges into one range.
	ranges, kept, skipped = PruneZones(z, 7, []ZonePred{{Slot: 0, Lo: 0, Hi: 100}})
	if kept != 4 || skipped != 0 || len(ranges) != 1 || ranges[0] != (RowRange{0, 7}) {
		t.Fatalf("vacuous predicate: ranges=%v kept=%d skipped=%d", ranges, kept, skipped)
	}
	// An impossible predicate prunes every block: empty non-nil result.
	ranges, kept, _ = PruneZones(z, 7, []ZonePred{{Slot: 0, Lo: 50, Hi: 60}})
	if ranges == nil || len(ranges) != 0 || kept != 0 {
		t.Fatalf("impossible predicate: ranges=%v kept=%d", ranges, kept)
	}
	// No predicates: no pruning signal at all.
	if r, _, _ := PruneZones(z, 7, nil); r != nil {
		t.Fatalf("no preds returned %v", r)
	}
}

func TestPruneZonesSorted(t *testing.T) {
	// Monotone values → the slot is sorted and binary search narrows the
	// window before any per-block test.
	z := buildIndex(2, [][]int32{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}})
	if !z.sortedSlot(0) {
		t.Fatal("monotone slot not flagged sorted")
	}
	ranges, kept, skipped := PruneZones(z, 8, []ZonePred{{Slot: 0, Lo: 4, Hi: 5}})
	if kept != 2 || skipped != 2 {
		t.Fatalf("kept=%d skipped=%d, want 2/2", kept, skipped)
	}
	if len(ranges) != 1 || ranges[0] != (RowRange{2, 6}) {
		t.Fatalf("ranges = %v, want [{2 6}]", ranges)
	}
	// Out-of-range predicate on a sorted slot: everything pruned.
	ranges, kept, _ = PruneZones(z, 8, []ZonePred{{Slot: 0, Lo: 100, Hi: 200}})
	if len(ranges) != 0 || kept != 0 {
		t.Fatalf("out-of-range: ranges=%v kept=%d", ranges, kept)
	}
}

func TestPruneZonesMultiPredicate(t *testing.T) {
	// Two slots: slot 0 sorted, slot 1 not; both predicates must hold.
	z := buildIndex(2, [][]int32{
		{1, 9}, {2, 9}, // block 0: s0 [1,2], s1 [9,9]
		{3, 1}, {4, 1}, // block 1: s0 [3,4], s1 [1,1]
		{5, 9}, {6, 9}, // block 2: s0 [5,6], s1 [9,9]
	})
	ranges, kept, skipped := PruneZones(z, 6, []ZonePred{
		{Slot: 0, Lo: 3, Hi: 6}, // keeps blocks 1,2
		{Slot: 1, Lo: 9, Hi: 9}, // keeps blocks 0,2
	})
	if kept != 1 || skipped != 2 {
		t.Fatalf("kept=%d skipped=%d, want 1/2", kept, skipped)
	}
	if len(ranges) != 1 || ranges[0] != (RowRange{4, 6}) {
		t.Fatalf("ranges = %v, want [{4 6}]", ranges)
	}
	// Out-of-bounds slots are ignored (never prune on unknown slots).
	ranges, _, _ = PruneZones(z, 6, []ZonePred{{Slot: 99, Lo: 0, Hi: 0}})
	if len(ranges) != 1 || ranges[0] != (RowRange{0, 6}) {
		t.Fatalf("unknown slot pruned: %v", ranges)
	}
}

func TestZoneBuilderSparseUnknownSlots(t *testing.T) {
	// Sparse rows touch only slot 1; slot 0 must widen to the full range
	// so no predicate can prune it.
	zb := newZoneBuilder(2, 2)
	for _, c := range []int32{3, 4, 5, 6} {
		zb.addSparse([]int{1}, []int32{c})
	}
	z := zb.finish()
	if z.NumBlocks() != 2 {
		t.Fatalf("blocks = %d", z.NumBlocks())
	}
	ranges, kept, _ := PruneZones(z, 4, []ZonePred{{Slot: 0, Lo: 7, Hi: 8}})
	if kept != 2 || len(ranges) != 1 || ranges[0] != (RowRange{0, 4}) {
		t.Fatalf("unknown slot pruned: ranges=%v kept=%d", ranges, kept)
	}
	// The known slot still prunes.
	_, kept, skipped := PruneZones(z, 4, []ZonePred{{Slot: 1, Lo: 3, Hi: 4}})
	if kept != 1 || skipped != 1 {
		t.Fatalf("known slot: kept=%d skipped=%d", kept, skipped)
	}
}

func TestZoneBuilderEmpty(t *testing.T) {
	if z := newZoneBuilder(4, 2).finish(); z != nil {
		t.Fatalf("empty builder produced %+v", z)
	}
	var nilIdx *ZoneIndex
	if nilIdx.NumBlocks() != 0 {
		t.Fatal("nil index has blocks")
	}
}
