// Package storage implements CURE's relational cube store (§5): per-node
// NT, TT, and CAT relations, the shared AGGREGATES relation, and the
// CURE+ post-processing step (sorted row-ids, bitmap indices).
//
// During construction, classified tuples arrive interleaved across nodes
// (the signature pool flushes whenever it fills), so the writer appends
// node-tagged blocks to sequential log files. Finalize compacts the logs
// into per-node extents inside one file per relation class — the paper's
// D = 28 experiment materializes 88,932 relations, which would be
// pathological as individual files — and records the extents in a JSON
// manifest next to the data.
package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cure/internal/lattice"
	"cure/internal/relation"
	"cure/internal/signature"
)

// File names inside a cube directory.
const (
	ManifestFile = "manifest.json"
	HierFile     = "hier.gob"
	NTFile       = "nt.bin"
	TTFile       = "tt.bin"
	CATFile      = "cat.bin"
	AggFile      = "agg.bin"
	BitmapFile   = "ttbm.bin"
)

// TTKind says how a node's trivial tuples are materialized.
type TTKind uint8

const (
	// TTIDs stores trivial tuples as an extent of 8-byte row-ids.
	TTIDs TTKind = iota
	// TTBitmap stores them as a bitmap over the fact table (CURE+ when
	// the id set is dense enough).
	TTBitmap
)

// NodeMeta records where one lattice node's tuples live inside the
// compacted relation files. Offsets are byte offsets; counts are rows.
type NodeMeta struct {
	NTOff   int64  `json:"nt_off"`
	NTRows  int64  `json:"nt_rows"`
	TTOff   int64  `json:"tt_off"`
	TTRows  int64  `json:"tt_rows"`
	TTKind  TTKind `json:"tt_kind"`
	TTBmLen int64  `json:"tt_bm_len,omitempty"` // bitmap byte length when TTKind == TTBitmap
	CATOff  int64  `json:"cat_off"`
	CATRows int64  `json:"cat_rows"`
	// Zone maps of the extents (nil when the extent is smaller than one
	// zone block or the cube was written without a resolver).
	NTZones  *ZoneIndex `json:"nt_zones,omitempty"`
	TTZones  *ZoneIndex `json:"tt_zones,omitempty"`
	CATZones *ZoneIndex `json:"cat_zones,omitempty"`
	// Block-codec records of compressed extents (nil = fixed-width v1
	// layout; version-2 manifests only). TTCodec applies only to TTIDs
	// extents — bitmaps are already compressed.
	NTCodec  *ExtentCodec `json:"nt_codec,omitempty"`
	TTCodec  *ExtentCodec `json:"tt_codec,omitempty"`
	CATCodec *ExtentCodec `json:"cat_codec,omitempty"`
}

// Sizes breaks down the on-disk footprint of a cube, the quantity the
// paper's storage-space figures report.
type Sizes struct {
	NT     int64 `json:"nt"`
	TT     int64 `json:"tt"`
	CAT    int64 `json:"cat"`
	Agg    int64 `json:"agg"`
	Bitmap int64 `json:"bitmap"`
}

// Total returns the cube data footprint in bytes.
func (s Sizes) Total() int64 { return s.NT + s.TT + s.CAT + s.Agg + s.Bitmap }

// Manifest is the catalog of a cube directory.
type Manifest struct {
	Version int `json:"version"`
	// AggSpecs are the cube's aggregate definitions in fact-table terms.
	AggSpecs []relation.AggSpec `json:"agg_specs"`
	// CatFormat is the CAT storage format locked during construction.
	CatFormat signature.Format `json:"cat_format"`
	// DimsInline marks the CURE_DR variant: NT rows carry projected
	// dimension values instead of an R-rowid.
	DimsInline bool `json:"dims_inline"`
	// Plus marks CURE+ post-processing (sorted row-ids / bitmaps).
	Plus bool `json:"plus"`
	// PartitionLevel is the level L of dimension 0 the build partitioned
	// on, or -1 for an in-memory build. It bounds trivial-tuple sharing
	// (see lattice.PlanPathFrom).
	PartitionLevel int `json:"partition_level"`
	// PartitionLevelB is the level M of dimension 1 when the build used
	// pair partitioning (§4's omitted extension), or -1 otherwise.
	PartitionLevelB int `json:"partition_level_b"`
	// ShortPlan marks a cube built with the shortest hierarchical plan
	// (the paper's P2, used only by the plan-height ablation); trivial
	// tuples are then shared along drop-rightmost-dimension chains.
	ShortPlan bool `json:"short_plan,omitempty"`
	// FactFile is the path of the fact table the cube's row-ids point
	// into (relative paths are resolved against the cube directory).
	FactFile string `json:"fact_file"`
	// FactRows is the row count of that fact table.
	FactRows int64 `json:"fact_rows"`
	// AggRows is the number of tuples in the AGGREGATES relation.
	AggRows int64 `json:"agg_rows"`
	// Nodes maps node ids (as decimal strings, a JSON map-key
	// restriction) to their extents. Nodes with no materialized tuples
	// are absent.
	Nodes map[string]NodeMeta `json:"nodes"`
	// Sizes is the on-disk footprint breakdown.
	Sizes Sizes `json:"sizes"`
	// Checksums maps relation file names to their CRC-32 (IEEE) over the
	// whole file, computed at finalize; Reader.VerifyChecksums rechecks
	// them on demand.
	Checksums map[string]uint32 `json:"checksums,omitempty"`
	// Iceberg is the min-count threshold the cube was built with (1 for
	// a complete cube).
	Iceberg int64 `json:"iceberg"`
	// Compression names the extent codec ("block" for the columnar block
	// codec, empty for fixed-width v1 extents). Version-1 manifests never
	// carry it; version-2 readers treat its absence as uncompressed.
	Compression string `json:"compression,omitempty"`
	// AggCodec is the block-codec record of the AGGREGATES relation (one
	// extent covering all AggRows rows), nil when uncompressed.
	AggCodec *ExtentCodec `json:"agg_codec,omitempty"`
}

// Compressed reports whether any extent of the cube uses the block codec.
func (m *Manifest) Compressed() bool { return m.Compression != "" }

// NodeMeta returns the extent record for a node.
func (m *Manifest) NodeMeta(id lattice.NodeID) (NodeMeta, bool) {
	nm, ok := m.Nodes[fmt.Sprintf("%d", id)]
	return nm, ok
}

// NumAggrs returns Y, the number of aggregate columns.
func (m *Manifest) NumAggrs() int { return len(m.AggSpecs) }

// NTRowWidth, CATRowWidth, and AggRowWidth expose the extent row widths
// for planners (EXPLAIN cost estimates) outside the package.
func (m *Manifest) NTRowWidth(arity int) int { return m.ntRowWidth(arity) }

// CATRowWidth returns the byte width of one compacted CAT row.
func (m *Manifest) CATRowWidth() int { return m.catRowWidth() }

// AggRowWidth returns the byte width of one AGGREGATES row.
func (m *Manifest) AggRowWidth() int { return m.aggRowWidth() }

// TTBytes returns the bytes one full read of the node's TT extent costs:
// the bitmap length under CURE+, the encoded footprint when the extent is
// block-compressed, 8 bytes per row-id otherwise. The TT extent is always
// fetched whole (zone pruning narrows the iteration, not the read), so
// this is also the read a query pays.
func (nm NodeMeta) TTBytes() int64 {
	if nm.TTKind == TTBitmap {
		return nm.TTBmLen
	}
	if nm.TTCodec != nil {
		return nm.TTCodec.EncodedBytes()
	}
	return nm.TTRows * ttLogRowWidth
}

// ntRowWidth returns the byte width of one NT row of the given node.
// Plain CURE: <R-rowid, aggrs> (8 + 8Y). CURE_DR: <dims…, aggrs>
// (4·arity + 8Y) where arity is the node's grouping arity.
func (m *Manifest) ntRowWidth(arity int) int {
	if m.DimsInline {
		return 4*arity + 8*m.NumAggrs()
	}
	return 8 + 8*m.NumAggrs()
}

// catRowWidth returns the byte width of one compacted CAT row.
func (m *Manifest) catRowWidth() int {
	if m.CatFormat == signature.FormatA {
		return 8 // bare A-rowid
	}
	return 16 // <R-rowid, A-rowid>
}

// aggRowWidth returns the byte width of one AGGREGATES row.
func (m *Manifest) aggRowWidth() int {
	if m.CatFormat == signature.FormatA {
		return 8 + 8*m.NumAggrs()
	}
	return 8 * m.NumAggrs()
}

// WriteManifest writes m into dir.
func WriteManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("storage: marshaling manifest: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, ManifestFile), data, 0o644)
}

// ReadManifest loads the manifest of a cube directory.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("storage: parsing manifest in %s: %w", dir, err)
	}
	if m.Version < 1 || m.Version > manifestVersion {
		return nil, fmt.Errorf("storage: manifest version %d, want 1..%d", m.Version, manifestVersion)
	}
	return m, nil
}

// manifestVersion is the newest manifest format this build writes and
// reads. Version 1 is the fixed-width extent layout; version 2 adds the
// optional block-codec records (Compression, *Codec fields). Uncompressed
// cubes are still written as version 1, byte-identical to older builds,
// so v1 directories and v1 readers stay interoperable.
const manifestVersion = 2

// resolveFactPath resolves the manifest's fact-file reference against the
// cube directory.
func resolveFactPath(dir, factFile string) string {
	if filepath.IsAbs(factFile) {
		return factFile
	}
	return filepath.Join(dir, factFile)
}
