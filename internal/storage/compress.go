package storage

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cure/internal/lattice"
)

// compressExtents rewrites the compacted relation files (nt.bin, tt.bin,
// cat.bin, agg.bin) into the block-columnar format, updating each
// NodeMeta's extent offset and attaching its ExtentCodec. Each file is
// rewritten into a sibling temp file and renamed over the original, so a
// crash mid-pass leaves either the old or the new file, never a mix.
// Bitmap TT extents (ttbm.bin) are untouched — a bitmap is already a
// compressed form — and rebuilding tt.bin drops the dead extents bitmap
// conversion left behind.
func (w *Writer) compressExtents(m *Manifest) error {
	blockRows := int64(w.opts.ZoneBlockRows)
	if blockRows <= 0 {
		blockRows = DefaultZoneBlockRows
	}
	reg := w.opts.Metrics
	cExtents := reg.Counter("storage.codec.extents")
	cBlocks := reg.Counter("storage.codec.blocks")
	cRawBytes := reg.Counter("storage.codec.raw_bytes")
	cEncBytes := reg.Counter("storage.codec.encoded_bytes")

	// extent is one unit of work: where the rows live now, their schema,
	// and how to record the new location.
	type extent struct {
		off   int64
		rows  int64
		kinds []colKind
		set   func(off int64, c *ExtentCodec)
	}

	rewrite := func(path string, exts []extent) error {
		sort.Slice(exts, func(i, j int) bool { return exts[i].off < exts[j].off })
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		tmp := path + ".z"
		out, err := os.Create(tmp)
		if err != nil {
			return err
		}
		defer out.Close()
		bw := bufio.NewWriterSize(out, 1<<20)
		cursor := int64(0)
		var raw, enc []byte
		for _, e := range exts {
			width := 0
			for _, k := range e.kinds {
				width += k.width()
			}
			size := e.rows * int64(width)
			if int64(cap(raw)) < size {
				raw = make([]byte, size)
			}
			raw = raw[:size]
			if size > 0 {
				if _, err := in.ReadAt(raw, e.off); err != nil {
					return fmt.Errorf("storage: compress: reading extent at %d of %s: %w", e.off, path, err)
				}
			}
			be := newBlockEncoder(e.kinds)
			codec := &ExtentCodec{
				BlockRows: blockRows,
				RawBytes:  size,
				Offs:      []int64{0},
				Encodings: map[string]int64{},
			}
			enc = enc[:0]
			for r0 := int64(0); r0 < e.rows; r0 += blockRows {
				n := blockRows
				if r0+n > e.rows {
					n = e.rows - r0
				}
				enc = be.encodeBlock(raw[r0*int64(width):], int(n), enc)
				codec.Offs = append(codec.Offs, int64(len(enc)))
				for _, tag := range be.tags {
					codec.Encodings[encName(tag)]++
				}
			}
			if _, err := bw.Write(enc); err != nil {
				return err
			}
			e.set(cursor, codec)
			cursor += int64(len(enc))
			cExtents.Inc()
			cBlocks.Add(int64(codec.NumBlocks()))
			cRawBytes.Add(size)
			cEncBytes.Add(codec.EncodedBytes())
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}

	keys := make([]string, 0, len(m.Nodes))
	for k := range m.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// NT: the schema varies per node under CURE_DR (arity int32 columns).
	var ntExts []extent
	var levels []int
	for _, k := range keys {
		k := k
		nm := m.Nodes[k]
		if nm.NTRows == 0 {
			continue
		}
		arity := 0
		if m.DimsInline {
			idNum, err := parseNodeKey(k)
			if err != nil {
				return err
			}
			levels = w.enum.Decode(idNum, levels)
			for d, l := range levels {
				if !w.opts.Hier.Dims[d].IsAll(l) {
					arity++
				}
			}
		}
		ntExts = append(ntExts, extent{
			off: nm.NTOff, rows: nm.NTRows, kinds: m.ntKinds(arity),
			set: func(off int64, c *ExtentCodec) {
				nm := m.Nodes[k]
				nm.NTOff, nm.NTCodec = off, c
				m.Nodes[k] = nm
			},
		})
	}
	if err := rewrite(filepath.Join(w.opts.Dir, NTFile), ntExts); err != nil {
		return err
	}

	var ttExts []extent
	for _, k := range keys {
		k := k
		nm := m.Nodes[k]
		if nm.TTRows == 0 || nm.TTKind != TTIDs {
			continue
		}
		ttExts = append(ttExts, extent{
			off: nm.TTOff, rows: nm.TTRows, kinds: ttKinds(),
			set: func(off int64, c *ExtentCodec) {
				nm := m.Nodes[k]
				nm.TTOff, nm.TTCodec = off, c
				m.Nodes[k] = nm
			},
		})
	}
	if err := rewrite(filepath.Join(w.opts.Dir, TTFile), ttExts); err != nil {
		return err
	}

	var catExts []extent
	for _, k := range keys {
		k := k
		nm := m.Nodes[k]
		if nm.CATRows == 0 {
			continue
		}
		catExts = append(catExts, extent{
			off: nm.CATOff, rows: nm.CATRows, kinds: m.catKinds(),
			set: func(off int64, c *ExtentCodec) {
				nm := m.Nodes[k]
				nm.CATOff, nm.CATCodec = off, c
				m.Nodes[k] = nm
			},
		})
	}
	if err := rewrite(filepath.Join(w.opts.Dir, CATFile), catExts); err != nil {
		return err
	}

	// AGGREGATES is one shared extent covering all AggRows rows.
	var aggExts []extent
	if m.AggRows > 0 {
		aggExts = append(aggExts, extent{
			off: 0, rows: m.AggRows, kinds: m.aggKinds(),
			set: func(off int64, c *ExtentCodec) { m.AggCodec = c },
		})
	}
	return rewrite(filepath.Join(w.opts.Dir, AggFile), aggExts)
}

// parseNodeKey parses a manifest node key back into a NodeID.
func parseNodeKey(k string) (lattice.NodeID, error) {
	var id int64
	if _, err := fmt.Sscanf(k, "%d", &id); err != nil {
		return 0, fmt.Errorf("storage: compress: bad node key %q: %w", k, err)
	}
	return lattice.NodeID(id), nil
}
