package storage

import (
	"fmt"
	"path/filepath"
	"sort"

	"cure/internal/lattice"
	"cure/internal/signature"
)

// compressExtents rewrites the compacted relation files (nt.bin, tt.bin,
// cat.bin, agg.bin) into the block-columnar format, updating each
// NodeMeta's extent offset and attaching its ExtentCodec and zone map.
// Extents are independent work items executed on the finalize pipeline
// (see rewriteExtents): workers encode and index concurrently, the
// ordered committer keeps the output byte-identical to a sequential
// pass. Each file is rewritten into a sibling temp file and renamed over
// the original. Bitmap TT extents (ttbm.bin) are untouched — a bitmap is
// already a compressed form — and rebuilding tt.bin drops the dead
// extents bitmap conversion left behind. agg.bin is rewritten before
// cat.bin: the AGGREGATES pass captures its R-rowid column, which
// format-(a) CAT zone maps dereference without re-reading the file.
func (w *Writer) compressExtents(m *Manifest, fin *finState) error {
	zc := fin.zcfg
	keys := make([]string, 0, len(m.Nodes))
	for k := range m.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// NT: the schema varies per node under CURE_DR (arity int32 columns).
	var ntExts []extentJob
	var levels []int
	for _, k := range keys {
		k := k
		nm := m.Nodes[k]
		if nm.NTRows == 0 {
			continue
		}
		arity := 0
		zone := zoneSpec{mode: zoneRowID}
		if m.DimsInline {
			idNum, err := parseNodeKey(k)
			if err != nil {
				return err
			}
			levels = w.enum.Decode(idNum, levels)
			// DR rows carry codes only at the node's own levels; the other
			// zone slots stay unknown.
			var slotIdx []int
			for d, l := range levels {
				if !w.opts.Hier.Dims[d].IsAll(l) {
					arity++
					if zc != nil {
						slotIdx = append(slotIdx, zc.offs[d]+l)
					}
				}
			}
			zone = zoneSpec{mode: zoneSparse, slotIdx: slotIdx}
		}
		ntExts = append(ntExts, extentJob{
			off: nm.NTOff, rows: nm.NTRows, kinds: m.ntKinds(arity), zone: zone,
			set: func(off int64, c *ExtentCodec, z *ZoneIndex) {
				nm := m.Nodes[k]
				nm.NTOff, nm.NTCodec, nm.NTZones = off, c, z
				m.Nodes[k] = nm
			},
		})
	}
	if err := w.rewriteExtents(filepath.Join(w.opts.Dir, NTFile), ntExts, fin); err != nil {
		return err
	}

	var ttExts []extentJob
	for _, k := range keys {
		k := k
		nm := m.Nodes[k]
		if nm.TTRows == 0 || nm.TTKind != TTIDs {
			continue
		}
		ttExts = append(ttExts, extentJob{
			off: nm.TTOff, rows: nm.TTRows, kinds: ttKinds(),
			zone: zoneSpec{mode: zoneRowID},
			set: func(off int64, c *ExtentCodec, z *ZoneIndex) {
				nm := m.Nodes[k]
				nm.TTOff, nm.TTCodec, nm.TTZones = off, c, z
				m.Nodes[k] = nm
			},
		})
	}
	if err := w.rewriteExtents(filepath.Join(w.opts.Dir, TTFile), ttExts, fin); err != nil {
		return err
	}

	// AGGREGATES is one shared extent covering all AggRows rows. Under
	// format (a) its leading column is the R-rowid the CAT pass resolves
	// through, so capture it while the rows stream through the encoder.
	var aggExts []extentJob
	if m.AggRows > 0 {
		aggExts = append(aggExts, extentJob{
			off: 0, rows: m.AggRows, kinds: m.aggKinds(),
			captureRowIDs: zc != nil && m.CatFormat == signature.FormatA,
			set: func(off int64, c *ExtentCodec, z *ZoneIndex) {
				m.AggCodec = c
			},
		})
	}
	if err := w.rewriteExtents(filepath.Join(w.opts.Dir, AggFile), aggExts, fin); err != nil {
		return err
	}

	catZone := zoneSpec{mode: zoneRowID}
	if m.CatFormat == signature.FormatA {
		catZone = zoneSpec{mode: zoneAggRef}
	}
	var catExts []extentJob
	for _, k := range keys {
		k := k
		nm := m.Nodes[k]
		if nm.CATRows == 0 {
			continue
		}
		catExts = append(catExts, extentJob{
			off: nm.CATOff, rows: nm.CATRows, kinds: m.catKinds(), zone: catZone,
			set: func(off int64, c *ExtentCodec, z *ZoneIndex) {
				nm := m.Nodes[k]
				nm.CATOff, nm.CATCodec, nm.CATZones = off, c, z
				m.Nodes[k] = nm
			},
		})
	}
	return w.rewriteExtents(filepath.Join(w.opts.Dir, CATFile), catExts, fin)
}

// parseNodeKey parses a manifest node key back into a NodeID.
func parseNodeKey(k string) (lattice.NodeID, error) {
	var id int64
	if _, err := fmt.Sscanf(k, "%d", &id); err != nil {
		return 0, fmt.Errorf("storage: compress: bad node key %q: %w", k, err)
	}
	return lattice.NodeID(id), nil
}
