package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// finalizeTestResolver maps R-rowids of the writeWorkload fact space
// (rrowid < 5000) onto the testHier base codes: A0 has 8 members, B 4.
func finalizeTestResolver(rrowid int64, dst []int32) error {
	dst[0] = int32(rrowid % 8)
	dst[1] = int32(rrowid % 4)
	return nil
}

// buildFinalizeCube runs the standard mixed workload through a writer
// with zone maps on and the given compression mode and parallelism.
func buildFinalizeCube(t *testing.T, dir, mode string, par int, pool WorkerPool, plus, formatA bool) *Manifest {
	t.Helper()
	w := newTestWriter(t, Options{
		Dir: dir, Plus: plus, FactRows: 5000, ZoneBlockRows: 64,
		Compression: mode, Parallelism: par, Pool: pool,
		Resolver: finalizeTestResolver,
	})
	return writeWorkload(t, w, plus, formatA)
}

// cubeFiles reads every extent file plus the manifest, keyed by name.
// The finalize sidecar is deliberately absent: it records wall clocks.
func cubeFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range []string{NTFile, TTFile, CATFile, AggFile, BitmapFile, ManifestFile} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	return out
}

// testPool is a fixed-size WorkerPool so tests cover the build-wide
// limiter path of acquireWorkers, not just the free-spawn path.
type testPool struct{ slots chan struct{} }

func newTestPool(n int) *testPool {
	p := &testPool{slots: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		p.slots <- struct{}{}
	}
	return p
}

func (p *testPool) TryAcquire() bool {
	select {
	case <-p.slots:
		return true
	default:
		return false
	}
}

func (p *testPool) Release() { p.slots <- struct{}{} }

// TestParallelFinalizeByteIdentity pins the pipeline's core contract:
// whatever the worker count, the rewritten extent files and the manifest
// are byte-for-byte the sequential pass's output. Sampled selection is
// held to the same bar — its codec picks may differ from "auto", but
// they must not depend on scheduling.
func TestParallelFinalizeByteIdentity(t *testing.T) {
	cases := []struct {
		name    string
		plus    bool
		formatA bool
	}{
		{"plain-formatB", false, false},
		{"plus-formatB", true, false},
		{"plus-formatA", true, true},
	}
	for _, tc := range cases {
		for _, mode := range []string{CompressionAuto, CompressionSampled} {
			t.Run(tc.name+"/"+mode, func(t *testing.T) {
				refDir := t.TempDir()
				buildFinalizeCube(t, refDir, mode, 1, nil, tc.plus, tc.formatA)
				ref := cubeFiles(t, refDir)
				for _, par := range []int{2, 8} {
					dir := t.TempDir()
					buildFinalizeCube(t, dir, mode, par, nil, tc.plus, tc.formatA)
					got := cubeFiles(t, dir)
					if len(got) != len(ref) {
						t.Fatalf("P=%d: %d files, want %d", par, len(got), len(ref))
					}
					for name, want := range ref {
						if !bytes.Equal(got[name], want) {
							t.Errorf("P=%d: %s differs from sequential output", par, name)
						}
					}
				}
			})
		}
	}
}

// TestParallelFinalizePooled drives the pipeline through a build-wide
// WorkerPool that grants fewer slots than requested; output must still
// match the sequential pass, and the sidecar must record the grant.
func TestParallelFinalizePooled(t *testing.T) {
	refDir := t.TempDir()
	buildFinalizeCube(t, refDir, CompressionAuto, 1, nil, true, false)
	ref := cubeFiles(t, refDir)

	dir := t.TempDir()
	buildFinalizeCube(t, dir, CompressionAuto, 8, newTestPool(2), true, false)
	for name, want := range ref {
		if got := cubeFiles(t, dir)[name]; !bytes.Equal(got, want) {
			t.Errorf("pooled P=8: %s differs from sequential output", name)
		}
	}
	st, err := ReadFinalizeStats(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Parallelism != 8 {
		t.Errorf("sidecar parallelism = %d, want 8", st.Parallelism)
	}
	if st.Workers < 1 || st.Workers > 3 {
		t.Errorf("workers = %d, want 1..3 (pool grants 2 extras)", st.Workers)
	}
}

// TestSampledCubeDecodesEqual: sampled selection may encode blocks
// differently from exact brute force, but the decoded cube must be
// identical — and to the uncompressed cube too.
func TestSampledCubeDecodesEqual(t *testing.T) {
	dirNone, dirAuto, dirSampled := t.TempDir(), t.TempDir(), t.TempDir()
	buildFinalizeCube(t, dirNone, "", 1, nil, true, false)
	buildFinalizeCube(t, dirAuto, CompressionAuto, 4, nil, true, false)
	buildFinalizeCube(t, dirSampled, CompressionSampled, 4, nil, true, false)

	want := collectExtents(t, dirNone)
	if got := collectExtents(t, dirAuto); !reflect.DeepEqual(got, want) {
		t.Fatalf("auto cube decodes differently: %d vs %d tuples", len(got), len(want))
	}
	if got := collectExtents(t, dirSampled); !reflect.DeepEqual(got, want) {
		t.Fatalf("sampled cube decodes differently: %d vs %d tuples", len(got), len(want))
	}
	st, err := ReadFinalizeStats(dirSampled)
	if err != nil {
		t.Fatal(err)
	}
	if st.SampledBlocks == 0 {
		t.Error("sampled build recorded no fast-path blocks")
	}
	if st, err := ReadFinalizeStats(dirAuto); err != nil || st.SampledBlocks != 0 {
		t.Errorf("auto build recorded sampled blocks: %+v err=%v", st, err)
	}
}

// TestFusedZonesMatchLegacy compares the fused zone maps (built from
// the raw bytes streaming through the compressor) with the legacy
// Reader-based pass an uncompressed build still runs. Row content and
// order are identical across the two cubes, so every zone index must be.
func TestFusedZonesMatchLegacy(t *testing.T) {
	for _, tc := range []struct {
		name    string
		plus    bool
		formatA bool
	}{
		{"plain-formatB", false, false},
		{"plus-formatB", true, false},
		{"plus-formatA", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dirLegacy, dirFused := t.TempDir(), t.TempDir()
			mLegacy := buildFinalizeCube(t, dirLegacy, "", 1, nil, tc.plus, tc.formatA)
			mFused := buildFinalizeCube(t, dirFused, CompressionAuto, 4, nil, tc.plus, tc.formatA)

			zones := 0
			for k, nl := range mLegacy.Nodes {
				nf, ok := mFused.Nodes[k]
				if !ok {
					t.Fatalf("node %s missing from fused cube", k)
				}
				for _, z := range []struct {
					rel           string
					legacy, fused *ZoneIndex
				}{
					{"nt", nl.NTZones, nf.NTZones},
					{"tt", nl.TTZones, nf.TTZones},
					{"cat", nl.CATZones, nf.CATZones},
				} {
					if !reflect.DeepEqual(z.legacy, z.fused) {
						t.Errorf("node %s %s zones differ:\nlegacy %+v\nfused  %+v", k, z.rel, z.legacy, z.fused)
					}
					if z.legacy != nil {
						zones++
					}
				}
			}
			if zones == 0 {
				t.Fatal("workload produced no zone maps; the comparison is vacuous")
			}
		})
	}
}

// TestFinalizeRereadBytes pins the point of the fused pass: a compressed
// build's zone maps come from bytes already in memory. The only allowed
// re-read is bitmap TT extents (they never stream through the encoder);
// with none present the counter must be exactly zero. The legacy
// uncompressed pass, by contrast, re-reads the cube it just wrote.
func TestFinalizeRereadBytes(t *testing.T) {
	dir := t.TempDir()
	m := buildFinalizeCube(t, dir, CompressionAuto, 4, nil, false, false)
	st, err := ReadFinalizeStats(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bitmapBytes int64
	for _, nm := range m.Nodes {
		if nm.TTKind == TTBitmap && nm.TTRows >= 64 {
			bitmapBytes += nm.TTBmLen
		}
	}
	if st.RereadBytes != bitmapBytes {
		t.Errorf("compressed build reread %d bytes, want %d (bitmap residual only)", st.RereadBytes, bitmapBytes)
	}
	if bitmapBytes == 0 && st.RereadBytes != 0 {
		t.Errorf("fused pass re-read %d bytes with no bitmaps present", st.RereadBytes)
	}

	dirLegacy := t.TempDir()
	buildFinalizeCube(t, dirLegacy, "", 1, nil, false, false)
	stLegacy, err := ReadFinalizeStats(dirLegacy)
	if err != nil {
		t.Fatal(err)
	}
	if stLegacy.RereadBytes == 0 {
		t.Error("legacy zone pass reported zero re-read bytes")
	}
}

// TestFinalizeStatsSidecar checks the sidecar's shape on a parallel
// compressed build, and that ReadFinalizeStats fails cleanly on a
// directory without one.
func TestFinalizeStatsSidecar(t *testing.T) {
	dir := t.TempDir()
	buildFinalizeCube(t, dir, CompressionAuto, 8, nil, true, false)
	st, err := ReadFinalizeStats(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Parallelism != 8 || st.Workers < 1 || st.Workers > 8 {
		t.Errorf("parallelism=%d workers=%d", st.Parallelism, st.Workers)
	}
	if st.Compression != CompressionAuto {
		t.Errorf("compression = %q", st.Compression)
	}
	if st.Extents == 0 || st.Blocks == 0 || len(st.Encodings) == 0 {
		t.Errorf("empty pipeline record: %+v", st)
	}
	if st.ZoneExtents == 0 {
		t.Error("no zone extents recorded despite resolver being set")
	}
	if len(st.WorkerRawBytes) < 1 || len(st.WorkerRawBytes) > st.Workers {
		t.Errorf("worker skew record has %d slots for %d workers", len(st.WorkerRawBytes), st.Workers)
	}
	var sum int64
	for _, b := range st.WorkerRawBytes {
		sum += b
	}
	if sum == 0 {
		t.Error("worker skew record sums to zero")
	}
	if _, err := ReadFinalizeStats(t.TempDir()); err == nil {
		t.Error("sidecar read from empty dir succeeded")
	}
}
