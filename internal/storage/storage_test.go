package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/obsv"
	"cure/internal/relation"
	"cure/internal/signature"
)

// testHier builds a 2-dim schema: A with levels A0(8)→A1(2), flat B(4).
func testHier(t *testing.T) *hierarchy.Schema {
	t.Helper()
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1"}, []int32{8, 2}, [][]int32{hierarchy.BuildContiguousMap(8, 2)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := hierarchy.NewSchema(a, hierarchy.NewFlatDim("B", 4))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestWriter(t *testing.T, opts Options) *Writer {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Hier == nil {
		opts.Hier = testHier(t)
	}
	if opts.AggSpecs == nil {
		opts.AggSpecs = []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}}
	}
	if opts.FactRows == 0 {
		opts.FactRows = 100
	}
	if opts.FactFile == "" {
		opts.FactFile = "fact.bin"
	}
	w, err := NewWriter(opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(Options{Dir: t.TempDir(), Hier: testHier(t)}); err == nil {
		t.Error("writer without aggregates accepted")
	}
	if _, err := NewWriter(Options{
		Dir: t.TempDir(), Hier: testHier(t),
		AggSpecs:   []relation.AggSpec{{Func: relation.AggCount}},
		DimsInline: true,
	}); err == nil {
		t.Error("DimsInline without resolver accepted")
	}
}

func TestRoundTripBasic(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, Options{Dir: dir})
	// Node ids for the 2-dim schema: A has 3 levels (A0,A1,ALL), B has 2.
	enum := w.Enum()
	nodeA0B := enum.Encode([]int{0, 0}) // A0,B
	nodeA1 := enum.Encode([]int{1, 1})  // A1 only

	if err := w.WriteNT(nodeA0B, 5, []float64{10, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteNT(nodeA0B, 9, []float64{20, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTT(nodeA1, 17); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTT(nodeA1, 4); err != nil {
		t.Fatal(err)
	}
	a0, err := w.AppendAggregate(-1, []float64{33, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCAT(nodeA0B, 7, a0); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCAT(nodeA1, 8, a0); err != nil {
		t.Fatal(err)
	}
	m, err := w.Finalize(signature.FormatB)
	if err != nil {
		t.Fatal(err)
	}
	if m.CatFormat != signature.FormatB {
		t.Errorf("CatFormat = %v", m.CatFormat)
	}
	if m.AggRows != 1 {
		t.Errorf("AggRows = %d", m.AggRows)
	}
	// Logs must be gone.
	for _, n := range []string{NTFile + ".log", TTFile + ".log", CATFile + ".log"} {
		if _, err := os.Stat(filepath.Join(dir, n)); !os.IsNotExist(err) {
			t.Errorf("log %s survived finalize", n)
		}
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids, err := r.TTRowIDs(nodeA1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) != 2 || ids[0] != 4 || ids[1] != 17 {
		t.Errorf("TTRowIDs = %v", ids)
	}
	var nts []NTRow
	if err := r.NTRows(nodeA0B, func(row NTRow) error {
		cp := row
		cp.Aggrs = append([]float64(nil), row.Aggrs...)
		nts = append(nts, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(nts) != 2 {
		t.Fatalf("NT rows = %d", len(nts))
	}
	sort.Slice(nts, func(i, j int) bool { return nts[i].RRowid < nts[j].RRowid })
	if nts[0].RRowid != 5 || nts[0].Aggrs[0] != 10 || nts[1].RRowid != 9 || nts[1].Aggrs[1] != 3 {
		t.Errorf("NT rows = %+v", nts)
	}
	var cats []CATRow
	for _, node := range []lattice.NodeID{nodeA0B, nodeA1} {
		if err := r.CATRows(node, func(row CATRow) error {
			cats = append(cats, row)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(cats) != 2 {
		t.Fatalf("CAT rows = %+v", cats)
	}
	aggrs := make([]float64, 2)
	rrowid, err := r.ReadAggregate(cats[0].ARowid, aggrs)
	if err != nil {
		t.Fatal(err)
	}
	if rrowid != -1 || aggrs[0] != 33 || aggrs[1] != 4 {
		t.Errorf("aggregate = rrowid %d, %v", rrowid, aggrs)
	}
	if _, err := r.ReadAggregate(99, aggrs); err == nil {
		t.Error("out-of-range A-rowid accepted")
	}
	// Size accounting: NT extent = 2 rows × (8 + 16) bytes, etc.
	if m.Sizes.NT != 2*24 || m.Sizes.TT != 2*8 || m.Sizes.CAT != 2*16 || m.Sizes.Agg != 16 {
		t.Errorf("Sizes = %+v", m.Sizes)
	}
	if m.Sizes.Total() != m.Sizes.NT+m.Sizes.TT+m.Sizes.CAT+m.Sizes.Agg {
		t.Error("Total mismatch")
	}
}

func TestFormatARoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, Options{Dir: dir})
	node := w.Enum().Encode([]int{0, 0})
	a0, err := w.AppendAggregate(42, []float64{7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCAT(node, -1, a0); err != nil {
		t.Fatal(err)
	}
	// Mixing formats must fail loudly.
	if _, err := w.AppendAggregate(-1, []float64{1, 1}); err == nil {
		t.Error("format flip accepted")
	}
	m, err := w.Finalize(signature.FormatA)
	if err != nil {
		t.Fatal(err)
	}
	if m.CatFormat != signature.FormatA {
		t.Fatalf("CatFormat = %v", m.CatFormat)
	}
	// Format (a): CAT rows are 8 bytes, AGGREGATES rows carry rrowid.
	if m.Sizes.CAT != 8 || m.Sizes.Agg != 8+16 {
		t.Errorf("Sizes = %+v", m.Sizes)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []CATRow
	if err := r.CATRows(node, func(row CATRow) error {
		got = append(got, row)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].RRowid != -1 || got[0].ARowid != a0 {
		t.Errorf("CAT rows = %+v", got)
	}
	aggrs := make([]float64, 2)
	rrowid, err := r.ReadAggregate(a0, aggrs)
	if err != nil {
		t.Fatal(err)
	}
	if rrowid != 42 || aggrs[0] != 7 {
		t.Errorf("aggregate = %d %v", rrowid, aggrs)
	}
}

func TestFinalizeDisagreementRejected(t *testing.T) {
	w := newTestWriter(t, Options{})
	if _, err := w.AppendAggregate(42, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finalize(signature.FormatB); err == nil {
		t.Error("format disagreement accepted")
	}
}

func TestFinalizeTwiceRejected(t *testing.T) {
	w := newTestWriter(t, Options{})
	if _, err := w.Finalize(signature.FormatNT); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finalize(signature.FormatNT); err == nil {
		t.Error("double finalize accepted")
	}
}

func TestDimsInlineCompaction(t *testing.T) {
	dir := t.TempDir()
	// The resolver serves base dims for row-ids: row r has A = r%8, B = r%4.
	resolver := func(rrowid int64, dst []int32) error {
		dst[0] = int32(rrowid % 8)
		dst[1] = int32(rrowid % 4)
		return nil
	}
	w := newTestWriter(t, Options{Dir: dir, DimsInline: true, Resolver: resolver})
	enum := w.Enum()
	nodeA1B := enum.Encode([]int{1, 0}) // A at level 1, B at base
	// Row-id 5: A0 = 5 → A1 = 5/4 = 1; B = 1.
	if err := w.WriteNT(nodeA1B, 5, []float64{99, 4}); err != nil {
		t.Fatal(err)
	}
	m, err := w.Finalize(signature.FormatNT)
	if err != nil {
		t.Fatal(err)
	}
	if !m.DimsInline {
		t.Fatal("manifest lost DimsInline")
	}
	// Row width: 2 dims × 4 + 2 aggrs × 8 = 24.
	if m.Sizes.NT != 24 {
		t.Errorf("NT size = %d, want 24", m.Sizes.NT)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var rows []NTRow
	if err := r.NTRows(nodeA1B, func(row NTRow) error {
		cp := row
		cp.Dims = append([]int32(nil), row.Dims...)
		cp.Aggrs = append([]float64(nil), row.Aggrs...)
		rows = append(rows, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].RRowid != -1 || rows[0].Dims[0] != 1 || rows[0].Dims[1] != 1 || rows[0].Aggrs[0] != 99 {
		t.Errorf("DR row = %+v", rows[0])
	}
}

func TestPlusSortsTTIDs(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, Options{Dir: dir, Plus: true, FactRows: 1 << 20})
	node := w.Enum().Encode([]int{0, 0})
	for _, id := range []int64{50, 3, 17, 99, 1} {
		if err := w.WriteTT(node, id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finalize(signature.FormatNT); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids, err := r.TTRowIDs(node, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 3, 17, 50, 99}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("TT ids not sorted: %v", ids)
		}
	}
}

func TestPlusConvertsDenseTTsToBitmap(t *testing.T) {
	dir := t.TempDir()
	const factRows = 256
	w := newTestWriter(t, Options{Dir: dir, Plus: true, FactRows: factRows})
	node := w.Enum().Encode([]int{0, 0})
	// 200 of 256 rows are TTs: dense, so the bitmap (16 + 32 bytes) beats
	// 200 × 8 bytes of ids.
	for id := int64(0); id < 200; id++ {
		if err := w.WriteTT(node, id*7%factRows); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Finalize(signature.FormatNT)
	if err != nil {
		t.Fatal(err)
	}
	nm, ok := m.NodeMeta(node)
	if !ok || nm.TTKind != TTBitmap {
		t.Fatalf("node meta = %+v, want bitmap kind", nm)
	}
	if m.Sizes.Bitmap == 0 {
		t.Error("bitmap file size not accounted")
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids, err := r.TTRowIDs(node, nil)
	if err != nil {
		t.Fatal(err)
	}
	// id*7 mod 256: 7 is odd and coprime with 256 → 200 distinct ids.
	if len(ids) != 200 {
		t.Fatalf("bitmap TT count = %d, want 200", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("bitmap ids not ascending")
		}
	}
}

func TestPlusSortsCATFormatA(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, Options{Dir: dir, Plus: true})
	node := w.Enum().Encode([]int{0, 0})
	// Append aggregates 0..4, reference them in reverse order.
	var arowids []int64
	for i := 0; i < 5; i++ {
		a, err := w.AppendAggregate(int64(i*10), []float64{float64(i), 1})
		if err != nil {
			t.Fatal(err)
		}
		arowids = append(arowids, a)
	}
	for i := 4; i >= 0; i-- {
		if err := w.WriteCAT(node, -1, arowids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finalize(signature.FormatA); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []int64
	if err := r.CATRows(node, func(row CATRow) error {
		got = append(got, row.ARowid)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("CAT A-rowids not sorted after Plus: %v", got)
		}
	}
}

func TestStageSpillPreservesData(t *testing.T) {
	// A tiny stage budget forces many spills and multi-block nodes; the
	// compacted extents must still hold every row.
	dir := t.TempDir()
	w := newTestWriter(t, Options{Dir: dir, StageBudget: 64})
	enum := w.Enum()
	nodes := []lattice.NodeID{
		enum.Encode([]int{0, 0}),
		enum.Encode([]int{1, 0}),
		enum.Encode([]int{0, 1}),
	}
	const perNode = 100
	for i := 0; i < perNode; i++ {
		for _, n := range nodes {
			if err := w.WriteNT(n, int64(i), []float64{float64(i), 1}); err != nil {
				t.Fatal(err)
			}
			if err := w.WriteTT(n, int64(i+1000)); err != nil {
				t.Fatal(err)
			}
		}
	}
	m, err := w.Finalize(signature.FormatNT)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, n := range nodes {
		nm, ok := m.NodeMeta(n)
		if !ok || nm.NTRows != perNode || nm.TTRows != perNode {
			t.Fatalf("node %d meta = %+v", n, nm)
		}
		seen := map[int64]bool{}
		if err := r.NTRows(n, func(row NTRow) error {
			if seen[row.RRowid] {
				t.Fatalf("duplicate NT rrowid %d", row.RRowid)
			}
			seen[row.RRowid] = true
			if row.Aggrs[0] != float64(row.RRowid) {
				t.Fatalf("row %d has aggr %v", row.RRowid, row.Aggrs)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(seen) != perNode {
			t.Fatalf("node %d: %d distinct NT rows", n, len(seen))
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{
		Version:        manifestVersion,
		AggSpecs:       []relation.AggSpec{{Func: relation.AggSum}},
		CatFormat:      signature.FormatA,
		PartitionLevel: 2,
		FactFile:       "fact.bin",
		FactRows:       1234,
		Nodes:          map[string]NodeMeta{"7": {NTRows: 3, NTOff: 24}},
		Iceberg:        1,
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.PartitionLevel != 2 || back.FactRows != 1234 {
		t.Errorf("manifest fields lost: %+v", back)
	}
	nm, ok := back.NodeMeta(7)
	if !ok || nm.NTRows != 3 {
		t.Errorf("node meta lost: %+v ok=%v", nm, ok)
	}
	if _, ok := back.NodeMeta(8); ok {
		t.Error("phantom node meta")
	}
}

func TestReadManifestRejectsBadVersion(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Error("bad version accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Error("bad json accepted")
	}
}

func TestHierSchemaSidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, Options{Dir: dir})
	if _, err := w.Finalize(signature.FormatNT); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h := r.Hier()
	if h.NumDims() != 2 || h.Dims[0].Name != "A" || h.Dims[0].NumLevels() != 3 {
		t.Errorf("hierarchy lost in round trip: %+v", h)
	}
	// Level maps survive too.
	if h.Dims[0].MapCode(7, 1) != 1 {
		t.Error("level map lost")
	}
}

func TestAggregatesRawDecode(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, Options{Dir: dir})
	for i := 0; i < 10; i++ {
		if _, err := w.AppendAggregate(-1, []float64{float64(i), float64(i * 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finalize(signature.FormatB); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	raw, err := r.AggregatesRaw()
	if err != nil {
		t.Fatal(err)
	}
	aggrs := make([]float64, 2)
	for i := int64(0); i < 10; i++ {
		if rr := r.DecodeAggregate(raw, i, aggrs); rr != -1 {
			t.Errorf("format-B decode returned rrowid %d", rr)
		}
		if aggrs[0] != float64(i) || aggrs[1] != float64(i*2) {
			t.Errorf("agg %d = %v", i, aggrs)
		}
	}
}

func TestOpenReaderMissingFiles(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, Options{Dir: dir})
	if err := w.WriteTT(w.Enum().Encode([]int{0, 0}), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finalize(signature.FormatNT); err != nil {
		t.Fatal(err)
	}
	// Removing a required relation file must fail OpenReader cleanly.
	if err := os.Remove(filepath.Join(dir, NTFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(dir); err == nil {
		t.Error("reader opened a cube with a missing relation file")
	}
	// Missing bitmap file is fine (optional component).
	dir2 := t.TempDir()
	w2 := newTestWriter(t, Options{Dir: dir2})
	if _, err := w2.Finalize(signature.FormatNT); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir2)
	if err != nil {
		t.Fatalf("reader rejected cube without bitmap file: %v", err)
	}
	r.Close()
}

func TestReaderTruncatedExtent(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, Options{Dir: dir})
	node := w.Enum().Encode([]int{0, 0})
	for i := 0; i < 50; i++ {
		if err := w.WriteNT(node, int64(i), []float64{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finalize(signature.FormatNT); err != nil {
		t.Fatal(err)
	}
	// Truncate the NT file below the recorded extent.
	if err := os.Truncate(filepath.Join(dir, NTFile), 10); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.NTRows(node, func(NTRow) error { return nil }); err == nil {
		t.Error("truncated extent read without error")
	}
}

func TestAbortCleansLogs(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, Options{Dir: dir})
	if err := w.WriteTT(w.Enum().Encode([]int{0, 0}), 1); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			t.Errorf("log %s survived Abort", e.Name())
		}
	}
	// Abort after Finalize is a no-op.
	w2 := newTestWriter(t, Options{Dir: t.TempDir()})
	if _, err := w2.Finalize(signature.FormatNT); err != nil {
		t.Fatal(err)
	}
	w2.Abort()
}

func TestWriterEmptyCube(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, Options{Dir: dir})
	m, err := w.Finalize(signature.FormatUndecided)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nodes) != 0 || m.Sizes.Total() != 0 {
		t.Errorf("empty cube has %d nodes, %d bytes", len(m.Nodes), m.Sizes.Total())
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids, err := r.TTRowIDs(0, nil)
	if err != nil || len(ids) != 0 {
		t.Errorf("empty cube TTs = %v, %v", ids, err)
	}
}

func TestChecksums(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, Options{Dir: dir})
	node := w.Enum().Encode([]int{0, 0})
	for i := 0; i < 10; i++ {
		if err := w.WriteNT(node, int64(i), []float64{float64(i), 1}); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteTT(node, int64(i+100)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Finalize(signature.FormatNT)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Checksums) == 0 {
		t.Fatal("no checksums recorded")
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := r.VerifyChecksums()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("clean cube reports corrupted files: %v", bad)
	}
	r.Close()

	// Flip a byte in the NT relation: the checksum must catch it.
	data, err := os.ReadFile(filepath.Join(dir, NTFile))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(filepath.Join(dir, NTFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	bad, err = r2.VerifyChecksums()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != NTFile {
		t.Fatalf("corruption not localized: %v", bad)
	}
}

func TestRandomizedWriteReadRoundTrip(t *testing.T) {
	// Property: arbitrary interleavings of NT/TT/CAT writes across nodes
	// survive spill, compaction, and (optionally) CURE+ post-processing.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		dir := t.TempDir()
		plus := trial%2 == 0
		w := newTestWriter(t, Options{Dir: dir, Plus: plus, StageBudget: int64(64 + rng.Intn(4096)), FactRows: 10_000})
		enum := w.Enum()
		numNodes := int(enum.NumNodes())

		type ntRec struct {
			rrowid int64
			aggrs  [2]float64
		}
		wantNT := map[lattice.NodeID][]ntRec{}
		seenNT := map[lattice.NodeID]map[int64]bool{}
		wantTT := map[lattice.NodeID]map[int64]bool{}
		wantCAT := map[lattice.NodeID]int{}
		n := 200 + rng.Intn(800)
		var arowid int64 = -1
		for i := 0; i < n; i++ {
			node := lattice.NodeID(rng.Intn(numNodes))
			switch rng.Intn(3) {
			case 0:
				rec := ntRec{int64(rng.Intn(10_000)), [2]float64{float64(rng.Intn(50)), float64(rng.Intn(5))}}
				if seenNT[node] == nil {
					seenNT[node] = map[int64]bool{}
				}
				if seenNT[node][rec.rrowid] {
					continue // one tuple per source group per node, as in real builds
				}
				seenNT[node][rec.rrowid] = true
				if err := w.WriteNT(node, rec.rrowid, rec.aggrs[:]); err != nil {
					t.Fatal(err)
				}
				wantNT[node] = append(wantNT[node], rec)
			case 1:
				id := int64(rng.Intn(10_000))
				if wantTT[node] == nil {
					wantTT[node] = map[int64]bool{}
				}
				if wantTT[node][id] {
					continue // TT ids are unique per node in real builds
				}
				wantTT[node][id] = true
				if err := w.WriteTT(node, id); err != nil {
					t.Fatal(err)
				}
			case 2:
				if arowid < 0 || rng.Intn(3) == 0 {
					var err error
					if arowid, err = w.AppendAggregate(-1, []float64{float64(rng.Intn(9)), 1}); err != nil {
						t.Fatal(err)
					}
				}
				if err := w.WriteCAT(node, int64(rng.Intn(10_000)), arowid); err != nil {
					t.Fatal(err)
				}
				wantCAT[node]++
			}
		}
		m, err := w.Finalize(signature.FormatB)
		if err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(dir)
		if err != nil {
			t.Fatal(err)
		}
		for node, want := range wantNT {
			got := map[int64][2]float64{}
			if err := r.NTRows(node, func(row NTRow) error {
				got[row.RRowid] = [2]float64{row.Aggrs[0], row.Aggrs[1]}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for _, rec := range want {
				g, ok := got[rec.rrowid]
				if !ok || g != rec.aggrs {
					t.Fatalf("trial %d node %d: NT %d = %v, want %v", trial, node, rec.rrowid, g, rec.aggrs)
				}
			}
		}
		for node, want := range wantTT {
			ids, err := r.TTRowIDs(node, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(want) {
				t.Fatalf("trial %d node %d: %d TTs, want %d", trial, node, len(ids), len(want))
			}
			for _, id := range ids {
				if !want[id] {
					t.Fatalf("trial %d node %d: unexpected TT %d", trial, node, id)
				}
			}
		}
		for node, want := range wantCAT {
			got := 0
			if err := r.CATRows(node, func(CATRow) error { got++; return nil }); err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d node %d: %d CATs, want %d", trial, node, got, want)
			}
		}
		// Checksums hold for every trial.
		bad, err := r.VerifyChecksums()
		if err != nil {
			t.Fatal(err)
		}
		if len(bad) > 0 {
			t.Fatalf("trial %d: corrupted files %v", trial, bad)
		}
		r.Close()
		_ = m
	}
}

// TestConcurrentWritersCountLockTraffic hammers one armed writer from
// several goroutines and checks (a) every tuple survives into the cube
// and (b) the storage.lock.acquired counter accounts for every sink
// call, with contended ≤ acquired. Run under -race this doubles as the
// writer's concurrency regression test.
func TestConcurrentWritersCountLockTraffic(t *testing.T) {
	reg := obsv.NewRegistry()
	w := newTestWriter(t, Options{Metrics: reg})
	w.Lock()
	enum := w.Enum()
	node := enum.Encode([]int{0, 0})
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rid := int64(g*perWorker + i)
				var err error
				if i%2 == 0 {
					err = w.WriteNT(node, rid, []float64{float64(rid), 1})
				} else {
					err = w.WriteTT(node, rid)
				}
				if err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Finalize(signature.FormatB)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, nm := range m.Nodes {
		total += nm.NTRows + nm.TTRows
	}
	if want := int64(workers * perWorker); total != want {
		t.Fatalf("cube holds %d tuples, want %d", total, want)
	}
	acq := reg.Counter("storage.lock.acquired").Value()
	cont := reg.Counter("storage.lock.contended").Value()
	if acq != int64(workers*perWorker) {
		t.Fatalf("lock.acquired = %d, want %d", acq, workers*perWorker)
	}
	if cont < 0 || cont > acq {
		t.Fatalf("lock.contended = %d out of range [0, %d]", cont, acq)
	}
}

// TestUnarmedWriterSkipsLockCounters pins the sequential fast path: a
// writer that was never Lock()ed must not touch the lock counters.
func TestUnarmedWriterSkipsLockCounters(t *testing.T) {
	reg := obsv.NewRegistry()
	w := newTestWriter(t, Options{Metrics: reg})
	node := w.Enum().Encode([]int{0, 0})
	if err := w.WriteNT(node, 1, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finalize(signature.FormatB); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("storage.lock.acquired").Value(); v != 0 {
		t.Fatalf("unarmed writer recorded %d lock acquisitions", v)
	}
}
