package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Compressed columnar extents. CURE's whole point (§5) is a small stored
// cube, yet the compacted extents hold fixed-width 8-byte row-ids and
// IEEE-754 aggregates over data that is heavily repetitive: CURE+ sorts
// TT row-ids and format-(a) CAT rows, COUNT aggregates are tiny integers,
// and CURE_DR dimension columns are low-cardinality codes. A compression
// pass at Finalize rewrites each extent into blocks of ZoneBlockRows rows
// stored column-major; every column of every block independently picks
// the cheapest of a handful of lightweight encodings, recorded in a
// per-block header so the reader dispatches once per column, not per row.
// Block byte offsets live in the manifest (ExtentCodec), so zone-map
// pruning skips the read *and* the decode of pruned blocks.
//
// Block layout:
//
//	uvarint rowCount
//	per column: 1 byte encoding tag, uvarint payloadLen
//	payloads, concatenated in column order
//
// Per-column encodings (tag → payload):
//
//	encRaw      fixed-width little-endian values (any column kind)
//	encBitpack  int32: [min int32 LE][width byte][ceil(n·width/8) packed]
//	            (FOR — frame of reference: values stored min-relative in
//	            ceil(log2(range+1)) bits)
//	encRLE      int32: runs of (uvarint len, zigzag-varint value)
//	            float64: runs of (uvarint len, 8-byte LE bit pattern)
//	encDelta    int64: zigzag varints — first the value, then deltas
//	encIntFloat float64 holding exact integers: zigzag varints of int64(v)
//
// Selection is brute force per column per block: encode the applicable
// candidates and keep the shortest. Blocks are small (ZoneBlockRows rows,
// 256 by default), so the write-side cost is negligible next to the sort
// and compaction passes.

// Compression mode names accepted by Options.Compression.
const (
	// CompressionNone leaves extents in the fixed-width v1 layout.
	CompressionNone = "none"
	// CompressionAuto enables the block-columnar codec with per-column
	// cheapest-encoding selection (exact brute force on every block).
	CompressionAuto = "auto"
	// CompressionSampled enables the codec with sampled selection: the
	// first DefaultSampleBlocks blocks of each column are brute-forced;
	// when they agree on a codec, later blocks encode only that codec and
	// fall back to the exact brute force when the prediction loses to
	// raw. The on-disk format is identical to "auto" — only which codec
	// wins a given block may differ.
	CompressionSampled = "sampled"
)

// compressionEnabled maps an Options.Compression string to a decision;
// the empty string means "none" so existing writers are byte-stable.
func compressionEnabled(mode string) (bool, error) {
	switch mode {
	case "", CompressionNone:
		return false, nil
	case CompressionAuto, "block", CompressionSampled:
		return true, nil
	}
	return false, fmt.Errorf("storage: unknown compression mode %q", mode)
}

// Column kinds of the extent schemas.
type colKind uint8

const (
	colI64 colKind = iota // row-ids (8-byte)
	colI32                // dimension-level codes (4-byte, CURE_DR)
	colF64                // aggregates (8-byte IEEE-754)
)

func (k colKind) width() int {
	if k == colI32 {
		return 4
	}
	return 8
}

// Encoding tags recorded in block headers.
const (
	encRaw      byte = 0
	encBitpack  byte = 1
	encRLE      byte = 2
	encDelta    byte = 3
	encIntFloat byte = 4
)

// encName maps a tag to its histogram name (curectl inspect).
func encName(tag byte) string {
	switch tag {
	case encRaw:
		return "raw"
	case encBitpack:
		return "bitpack"
	case encRLE:
		return "rle"
	case encDelta:
		return "delta"
	case encIntFloat:
		return "intfloat"
	}
	return fmt.Sprintf("enc%d", tag)
}

// ExtentCodec is the manifest record of one compressed extent: the block
// granularity, the pre-compression footprint, the encoding histogram
// (column-blocks per tag name), and the block byte offsets relative to
// the extent's file offset (len = NumBlocks+1, so block b occupies
// [Offs[b], Offs[b+1])). A nil *ExtentCodec means the extent is stored
// in the fixed-width v1 layout.
type ExtentCodec struct {
	BlockRows int64            `json:"block_rows"`
	RawBytes  int64            `json:"raw_bytes"`
	Offs      []int64          `json:"offs"`
	Encodings map[string]int64 `json:"encodings,omitempty"`
}

// NumBlocks returns the number of blocks of the extent.
func (c *ExtentCodec) NumBlocks() int {
	if c == nil || len(c.Offs) == 0 {
		return 0
	}
	return len(c.Offs) - 1
}

// EncodedBytes returns the extent's compressed footprint.
func (c *ExtentCodec) EncodedBytes() int64 {
	if c == nil || len(c.Offs) == 0 {
		return 0
	}
	return c.Offs[len(c.Offs)-1]
}

// BytesForRanges returns the encoded bytes of the blocks overlapping the
// given row ranges (nil ranges = the whole extent) — the read cost
// EXPLAIN estimates for a compressed extent.
func (c *ExtentCodec) BytesForRanges(ranges []RowRange) int64 {
	if c == nil {
		return 0
	}
	if ranges == nil {
		return c.EncodedBytes()
	}
	var n int64
	nb := c.NumBlocks()
	for _, rg := range ranges {
		if rg.Lo >= rg.Hi {
			continue
		}
		b0 := int(rg.Lo / c.BlockRows)
		b1 := int((rg.Hi - 1) / c.BlockRows)
		if b0 < 0 {
			b0 = 0
		}
		if b1 >= nb {
			b1 = nb - 1
		}
		for b := b0; b <= b1; b++ {
			n += c.Offs[b+1] - c.Offs[b]
		}
	}
	return n
}

// DecodedBlock is one block decoded column-major into typed buffers. The
// slices are indexed by column position; only the entry matching the
// column's kind is non-nil. Blocks handed out by a BlockCache are shared
// between queries and must be treated as immutable.
type DecodedBlock struct {
	Rows int
	I64  [][]int64
	I32  [][]int32
	F64  [][]float64
}

// reset prepares the block for reuse with the given schema and row count,
// recycling column capacity (zero allocations once warmed up).
func (db *DecodedBlock) reset(kinds []colKind, rows int) {
	db.Rows = rows
	grow := func(n int) {
		if cap(db.I64) < n {
			db.I64 = make([][]int64, n)
			db.I32 = make([][]int32, n)
			db.F64 = make([][]float64, n)
		}
		db.I64, db.I32, db.F64 = db.I64[:n], db.I32[:n], db.F64[:n]
	}
	grow(len(kinds))
	for i, k := range kinds {
		switch k {
		case colI64:
			if cap(db.I64[i]) < rows {
				db.I64[i] = make([]int64, rows)
			}
			db.I64[i] = db.I64[i][:rows]
		case colI32:
			if cap(db.I32[i]) < rows {
				db.I32[i] = make([]int32, rows)
			}
			db.I32[i] = db.I32[i][:rows]
		case colF64:
			if cap(db.F64[i]) < rows {
				db.F64[i] = make([]float64, rows)
			}
			db.F64[i] = db.F64[i][:rows]
		}
	}
}

// --- varint / zigzag primitives -------------------------------------------

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendUvarint(dst []byte, u uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], u)
	return append(dst, tmp[:n]...)
}

// --- int32 codecs ---------------------------------------------------------

// encodeBitpack32 appends the FOR bit-packed payload of vals. An empty
// column encodes to an empty payload.
func encodeBitpack32(dst []byte, vals []int32) []byte {
	if len(vals) == 0 {
		return dst
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	width := uint(bits.Len64(uint64(int64(hi) - int64(lo))))
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(lo))
	dst = append(dst, b4[:]...)
	dst = append(dst, byte(width))
	var acc uint64
	var nb uint
	for _, v := range vals {
		acc |= (uint64(int64(v)-int64(lo)) & (1<<width - 1)) << nb
		nb += width
		for nb >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nb -= 8
		}
	}
	if nb > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

func decodeBitpack32(src []byte, dst []int32) error {
	if len(dst) == 0 && len(src) == 0 {
		return nil
	}
	if len(src) < 5 {
		return fmt.Errorf("storage: bitpack payload too short (%d bytes)", len(src))
	}
	base := int64(int32(binary.LittleEndian.Uint32(src)))
	width := uint(src[4])
	if width > 32 {
		return fmt.Errorf("storage: bitpack width %d", width)
	}
	src = src[5:]
	if width == 0 {
		for i := range dst {
			dst[i] = int32(base)
		}
		return nil
	}
	if need := (uint64(len(dst))*uint64(width) + 7) / 8; uint64(len(src)) < need {
		return fmt.Errorf("storage: bitpack payload truncated (%d < %d)", len(src), need)
	}
	mask := uint64(1)<<width - 1
	var acc uint64
	var nb uint
	idx := 0
	for i := range dst {
		for nb < width {
			acc |= uint64(src[idx]) << nb
			idx++
			nb += 8
		}
		dst[i] = int32(base + int64(acc&mask))
		acc >>= width
		nb -= width
	}
	return nil
}

// encodeRLE32 appends runs of (uvarint len, zigzag value).
func encodeRLE32(dst []byte, vals []int32) []byte {
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		dst = appendUvarint(dst, uint64(j-i))
		dst = appendUvarint(dst, zigzag(int64(vals[i])))
		i = j
	}
	return dst
}

func decodeRLE32(src []byte, dst []int32) error {
	i := 0
	for i < len(dst) {
		run, n := binary.Uvarint(src)
		if n <= 0 {
			return fmt.Errorf("storage: rle run length at row %d", i)
		}
		src = src[n:]
		u, n := binary.Uvarint(src)
		if n <= 0 {
			return fmt.Errorf("storage: rle value at row %d", i)
		}
		src = src[n:]
		v := int32(unzigzag(u))
		if run > uint64(len(dst)-i) {
			return fmt.Errorf("storage: rle run overflows block (%d > %d)", run, len(dst)-i)
		}
		for k := uint64(0); k < run; k++ {
			dst[i] = v
			i++
		}
	}
	return nil
}

func encodeRaw32(dst []byte, vals []int32) []byte {
	var b4 [4]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint32(b4[:], uint32(v))
		dst = append(dst, b4[:]...)
	}
	return dst
}

func decodeRaw32(src []byte, dst []int32) error {
	if len(src) < 4*len(dst) {
		return fmt.Errorf("storage: raw32 payload truncated")
	}
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return nil
}

// --- int64 codecs ---------------------------------------------------------

// encodeDelta64 appends zigzag varints: the first value, then deltas.
// Signed wraparound in the delta is fine — decoding adds it back with the
// same two's-complement wraparound.
func encodeDelta64(dst []byte, vals []int64) []byte {
	prev := int64(0)
	for _, v := range vals {
		dst = appendUvarint(dst, zigzag(v-prev))
		prev = v
	}
	return dst
}

func decodeDelta64(src []byte, dst []int64) error {
	prev := int64(0)
	for i := range dst {
		u, n := binary.Uvarint(src)
		if n <= 0 {
			return fmt.Errorf("storage: delta varint at row %d", i)
		}
		src = src[n:]
		prev += unzigzag(u)
		dst[i] = prev
	}
	return nil
}

func encodeRaw64(dst []byte, vals []int64) []byte {
	var b8 [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b8[:], uint64(v))
		dst = append(dst, b8[:]...)
	}
	return dst
}

func decodeRaw64(src []byte, dst []int64) error {
	if len(src) < 8*len(dst) {
		return fmt.Errorf("storage: raw64 payload truncated")
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return nil
}

// --- float64 codecs -------------------------------------------------------

// intFloatOK reports whether v survives an exact round-trip through
// int64: integral, inside the int64 range, not NaN/Inf, and not -0 (whose
// bit pattern the int path would lose).
func intFloatOK(v float64) bool {
	if v != math.Trunc(v) || v < -(1<<62) || v > 1<<62 {
		return false
	}
	if v == 0 && math.Signbit(v) {
		return false
	}
	return float64(int64(v)) == v
}

func encodeIntFloat(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = appendUvarint(dst, zigzag(int64(v)))
	}
	return dst
}

func decodeIntFloat(src []byte, dst []float64) error {
	for i := range dst {
		u, n := binary.Uvarint(src)
		if n <= 0 {
			return fmt.Errorf("storage: intfloat varint at row %d", i)
		}
		src = src[n:]
		dst[i] = float64(unzigzag(u))
	}
	return nil
}

// encodeRLEF64 appends runs of (uvarint len, 8-byte bit pattern) —
// bit-pattern comparison, so NaN payloads and signed zeros round-trip.
func encodeRLEF64(dst []byte, vals []float64) []byte {
	var b8 [8]byte
	for i := 0; i < len(vals); {
		bitsI := math.Float64bits(vals[i])
		j := i + 1
		for j < len(vals) && math.Float64bits(vals[j]) == bitsI {
			j++
		}
		dst = appendUvarint(dst, uint64(j-i))
		binary.LittleEndian.PutUint64(b8[:], bitsI)
		dst = append(dst, b8[:]...)
		i = j
	}
	return dst
}

func decodeRLEF64(src []byte, dst []float64) error {
	i := 0
	for i < len(dst) {
		run, n := binary.Uvarint(src)
		if n <= 0 {
			return fmt.Errorf("storage: f64 rle run length at row %d", i)
		}
		src = src[n:]
		if len(src) < 8 {
			return fmt.Errorf("storage: f64 rle value truncated at row %d", i)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(src))
		src = src[8:]
		if run > uint64(len(dst)-i) {
			return fmt.Errorf("storage: f64 rle run overflows block (%d > %d)", run, len(dst)-i)
		}
		for k := uint64(0); k < run; k++ {
			dst[i] = v
			i++
		}
	}
	return nil
}

func encodeRawF64(dst []byte, vals []float64) []byte {
	var b8 [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		dst = append(dst, b8[:]...)
	}
	return dst
}

func decodeRawF64(src []byte, dst []float64) error {
	if len(src) < 8*len(dst) {
		return fmt.Errorf("storage: rawf64 payload truncated")
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return nil
}

// --- block encode / decode ------------------------------------------------

// DefaultSampleBlocks is the per-column sampling window of the
// "sampled" mode: how many leading blocks are brute-forced before the
// encoder commits to a predicted codec.
const DefaultSampleBlocks = 4

// Prediction sentinels of the sampled selector (real tags are < 0x80).
const (
	predUnset byte = 0xFE // no sampled block seen yet
	predNone  byte = 0xFF // sampled blocks disagreed: stay exact
)

// blockEncoder turns row-major fixed-width rows into encoded blocks,
// reusing its gather and candidate buffers across blocks.
type blockEncoder struct {
	kinds []colKind
	offs  []int // byte offset of each column inside a row
	width int

	i64 []int64
	i32 []int32
	f64 []float64
	// cand/alt are the candidate payload buffers the selector compares.
	cand, alt []byte
	// tags/payloads of the current block, one per column.
	tags     []byte
	payloads [][]byte
	bufs     [][]byte // retained payload buffers, one per column

	// Sampled selection state: during the first sampleLeft blocks each
	// column's brute-force winners vote on predicted[c]; afterwards the
	// fast path encodes only the predicted codec, falling back to the
	// exact brute force when the prediction loses to raw.
	sampled       bool
	sampleLeft    int
	predicted     []byte
	sampledBlocks int64 // column-blocks taken by the fast path
	mispredicts   int64 // fast-path encodes beaten by raw, re-brute-forced
}

func newBlockEncoder(kinds []colKind) *blockEncoder {
	be := &blockEncoder{
		kinds:    kinds,
		offs:     make([]int, len(kinds)),
		tags:     make([]byte, len(kinds)),
		payloads: make([][]byte, len(kinds)),
		bufs:     make([][]byte, len(kinds)),
	}
	for i, k := range kinds {
		be.offs[i] = be.width
		be.width += k.width()
	}
	return be
}

// newSampledBlockEncoder returns an encoder whose codec selection is
// predicted from the column's first sampleBlocks blocks (≤0 means
// DefaultSampleBlocks).
func newSampledBlockEncoder(kinds []colKind, sampleBlocks int) *blockEncoder {
	be := newBlockEncoder(kinds)
	if sampleBlocks <= 0 {
		sampleBlocks = DefaultSampleBlocks
	}
	be.sampled = true
	be.sampleLeft = sampleBlocks
	be.predicted = make([]byte, len(kinds))
	for i := range be.predicted {
		be.predicted[i] = predUnset
	}
	return be
}

// pick chooses the shorter of the current best (tag, payload in bufs[c])
// and the candidate in be.cand, leaving the winner in bufs[c].
func (be *blockEncoder) pick(c int, tag byte) {
	if be.payloads[c] == nil || len(be.cand) < len(be.payloads[c]) {
		be.tags[c] = tag
		be.bufs[c] = append(be.bufs[c][:0], be.cand...)
		be.payloads[c] = be.bufs[c]
	}
}

// accept takes the candidate in be.cand as column c's encoding without
// comparing alternatives — the sampled fast path.
func (be *blockEncoder) accept(c int, tag byte) {
	be.tags[c] = tag
	be.bufs[c] = append(be.bufs[c][:0], be.cand...)
	be.payloads[c] = be.bufs[c]
	be.sampledBlocks++
}

// fastTag returns column c's predicted codec once the sampling window
// closed with a unanimous vote.
func (be *blockEncoder) fastTag(c int) (byte, bool) {
	if !be.sampled || be.sampleLeft > 0 {
		return 0, false
	}
	t := be.predicted[c]
	return t, t < predUnset
}

// vote folds column c's brute-force winner into its prediction while the
// sampling window is open.
func (be *blockEncoder) vote(c int) {
	if !be.sampled || be.sampleLeft == 0 {
		return
	}
	switch {
	case be.predicted[c] == predUnset:
		be.predicted[c] = be.tags[c]
	case be.predicted[c] != be.tags[c]:
		be.predicted[c] = predNone
	}
}

// encodeI64Col selects and retains column c's encoding of vals.
func (be *blockEncoder) encodeI64Col(c int, vals []int64) {
	if tag, ok := be.fastTag(c); ok {
		switch tag {
		case encRaw:
			be.cand = encodeRaw64(be.cand[:0], vals)
			be.accept(c, encRaw)
			return
		case encDelta:
			be.cand = encodeDelta64(be.cand[:0], vals)
			if len(be.cand) < 8*len(vals) {
				be.accept(c, encDelta)
				return
			}
		}
		be.mispredicts++
	}
	be.cand = encodeRaw64(be.cand[:0], vals)
	be.pick(c, encRaw)
	be.cand = encodeDelta64(be.cand[:0], vals)
	be.pick(c, encDelta)
	be.vote(c)
}

// encodeI32Col selects and retains column c's encoding of vals.
func (be *blockEncoder) encodeI32Col(c int, vals []int32) {
	if tag, ok := be.fastTag(c); ok {
		switch tag {
		case encRaw:
			be.cand = encodeRaw32(be.cand[:0], vals)
			be.accept(c, encRaw)
			return
		case encBitpack:
			be.cand = encodeBitpack32(be.cand[:0], vals)
		case encRLE:
			be.cand = encodeRLE32(be.cand[:0], vals)
		}
		if len(be.cand) < 4*len(vals) {
			be.accept(c, tag)
			return
		}
		be.mispredicts++
	}
	be.cand = encodeRaw32(be.cand[:0], vals)
	be.pick(c, encRaw)
	be.cand = encodeBitpack32(be.cand[:0], vals)
	be.pick(c, encBitpack)
	be.cand = encodeRLE32(be.cand[:0], vals)
	be.pick(c, encRLE)
	be.vote(c)
}

// encodeF64Col selects and retains column c's encoding of vals. intOK
// reports whether every value survives the intfloat round-trip.
func (be *blockEncoder) encodeF64Col(c int, vals []float64, intOK bool) {
	if tag, ok := be.fastTag(c); ok {
		valid := true
		switch tag {
		case encRaw:
			be.cand = encodeRawF64(be.cand[:0], vals)
			be.accept(c, encRaw)
			return
		case encRLE:
			be.cand = encodeRLEF64(be.cand[:0], vals)
		case encIntFloat:
			if intOK {
				be.cand = encodeIntFloat(be.cand[:0], vals)
			} else {
				valid = false
			}
		}
		if valid && len(be.cand) < 8*len(vals) {
			be.accept(c, tag)
			return
		}
		be.mispredicts++
	}
	be.cand = encodeRawF64(be.cand[:0], vals)
	be.pick(c, encRaw)
	be.cand = encodeRLEF64(be.cand[:0], vals)
	be.pick(c, encRLE)
	if intOK {
		be.cand = encodeIntFloat(be.cand[:0], vals)
		be.pick(c, encIntFloat)
	}
	be.vote(c)
}

// encodeBlock appends the encoded form of rows[0:n] (row-major, be.width
// bytes each) to dst and returns it.
func (be *blockEncoder) encodeBlock(rows []byte, n int, dst []byte) []byte {
	for c, k := range be.kinds {
		off := be.offs[c]
		be.payloads[c] = nil
		switch k {
		case colI64:
			if cap(be.i64) < n {
				be.i64 = make([]int64, n)
			}
			vals := be.i64[:n]
			for i := range vals {
				vals[i] = int64(binary.LittleEndian.Uint64(rows[i*be.width+off:]))
			}
			be.encodeI64Col(c, vals)
		case colI32:
			if cap(be.i32) < n {
				be.i32 = make([]int32, n)
			}
			vals := be.i32[:n]
			for i := range vals {
				vals[i] = int32(binary.LittleEndian.Uint32(rows[i*be.width+off:]))
			}
			be.encodeI32Col(c, vals)
		case colF64:
			if cap(be.f64) < n {
				be.f64 = make([]float64, n)
			}
			vals := be.f64[:n]
			intOK := true
			for i := range vals {
				vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(rows[i*be.width+off:]))
				intOK = intOK && intFloatOK(vals[i])
			}
			be.encodeF64Col(c, vals, intOK)
		}
	}
	if be.sampleLeft > 0 {
		be.sampleLeft--
	}
	dst = appendUvarint(dst, uint64(n))
	for c := range be.kinds {
		dst = append(dst, be.tags[c])
		dst = appendUvarint(dst, uint64(len(be.payloads[c])))
	}
	for c := range be.kinds {
		dst = append(dst, be.payloads[c]...)
	}
	return dst
}

// decodeBlock decodes one encoded block into db (reusing its buffers) and
// returns the number of bytes consumed from src. wantRows is the row
// count the manifest says the block holds; a mismatch is corruption (and
// the check keeps hostile headers from over-allocating).
func decodeBlock(src []byte, kinds []colKind, wantRows int, db *DecodedBlock) (int, error) {
	total := len(src)
	rows64, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, fmt.Errorf("storage: block row count")
	}
	src = src[n:]
	if rows64 != uint64(wantRows) {
		return 0, fmt.Errorf("storage: block claims %d rows, manifest says %d", rows64, wantRows)
	}
	rows := int(rows64)
	db.reset(kinds, rows)
	type colHdr struct {
		tag byte
		ln  int
	}
	hdrs := make([]colHdr, len(kinds))
	for c := range kinds {
		if len(src) < 1 {
			return 0, fmt.Errorf("storage: block header truncated at column %d", c)
		}
		tag := src[0]
		src = src[1:]
		ln, n := binary.Uvarint(src)
		if n <= 0 || ln > uint64(total) {
			return 0, fmt.Errorf("storage: column %d payload length", c)
		}
		src = src[n:]
		hdrs[c] = colHdr{tag, int(ln)}
	}
	for c, k := range kinds {
		h := hdrs[c]
		if h.ln > len(src) {
			return 0, fmt.Errorf("storage: column %d payload truncated (%d > %d)", c, h.ln, len(src))
		}
		payload := src[:h.ln]
		src = src[h.ln:]
		var err error
		switch k {
		case colI64:
			switch h.tag {
			case encRaw:
				err = decodeRaw64(payload, db.I64[c])
			case encDelta:
				err = decodeDelta64(payload, db.I64[c])
			default:
				err = fmt.Errorf("storage: tag %d on int64 column", h.tag)
			}
		case colI32:
			switch h.tag {
			case encRaw:
				err = decodeRaw32(payload, db.I32[c])
			case encBitpack:
				err = decodeBitpack32(payload, db.I32[c])
			case encRLE:
				err = decodeRLE32(payload, db.I32[c])
			default:
				err = fmt.Errorf("storage: tag %d on int32 column", h.tag)
			}
		case colF64:
			switch h.tag {
			case encRaw:
				err = decodeRawF64(payload, db.F64[c])
			case encRLE:
				err = decodeRLEF64(payload, db.F64[c])
			case encIntFloat:
				err = decodeIntFloat(payload, db.F64[c])
			default:
				err = fmt.Errorf("storage: tag %d on float64 column", h.tag)
			}
		}
		if err != nil {
			return 0, fmt.Errorf("storage: decoding column %d: %w", c, err)
		}
	}
	return total - len(src), nil
}

// --- extent schemas -------------------------------------------------------

// ntKinds returns the column schema of an NT extent: <rowid, aggrs…> for
// plain CURE, <dims…, aggrs…> for CURE_DR (arity int32 columns).
func (m *Manifest) ntKinds(arity int) []colKind {
	var kinds []colKind
	if m.DimsInline {
		for i := 0; i < arity; i++ {
			kinds = append(kinds, colI32)
		}
	} else {
		kinds = append(kinds, colI64)
	}
	for i := 0; i < m.NumAggrs(); i++ {
		kinds = append(kinds, colF64)
	}
	return kinds
}

// ttKinds is the TT id-extent schema: one row-id column.
func ttKinds() []colKind { return []colKind{colI64} }

// catKinds returns the CAT extent schema: <A-rowid> under format (a),
// <R-rowid, A-rowid> under format (b).
func (m *Manifest) catKinds() []colKind {
	if m.catRowWidth() == 8 {
		return []colKind{colI64}
	}
	return []colKind{colI64, colI64}
}

// aggKinds returns the AGGREGATES schema: <R-rowid, aggrs…> under format
// (a), <aggrs…> under format (b).
func (m *Manifest) aggKinds() []colKind {
	var kinds []colKind
	if m.aggRowWidth() == 8+8*m.NumAggrs() {
		kinds = append(kinds, colI64)
	}
	for i := 0; i < m.NumAggrs(); i++ {
		kinds = append(kinds, colF64)
	}
	return kinds
}
