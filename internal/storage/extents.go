package storage

import (
	"fmt"
	"os"

	"cure/internal/lattice"
)

// Extent locates one node's rows inside a compacted extent file.
type Extent struct {
	Off  int64 `json:"off"`
	Rows int64 `json:"rows"`
}

// ExtentWriter is the generic node-tagged spill-and-compact store used by
// the baseline implementations (BUC's per-node cube relations). Rows are
// fixed width; construction appends in any node order; Compact produces a
// file with each node's rows contiguous.
type ExtentWriter struct {
	log      *blockLog
	rowWidth int
}

// NewExtentWriter creates the construction log at logPath.
func NewExtentWriter(logPath string, rowWidth int, budgetBytes int64) (*ExtentWriter, error) {
	if budgetBytes <= 0 {
		budgetBytes = 8 << 20
	}
	l, err := newBlockLog(logPath, rowWidth, &stageBudget{limit: budgetBytes})
	if err != nil {
		return nil, err
	}
	return &ExtentWriter{log: l, rowWidth: rowWidth}, nil
}

// RowWidth returns the fixed row width.
func (w *ExtentWriter) RowWidth() int { return w.rowWidth }

// Append adds one row (must be RowWidth bytes) for node.
func (w *ExtentWriter) Append(node lattice.NodeID, row []byte) error {
	if len(row) != w.rowWidth {
		return fmt.Errorf("storage: extent row is %d bytes, want %d", len(row), w.rowWidth)
	}
	return w.log.append(node, row)
}

// Rows returns the number of rows appended so far.
func (w *ExtentWriter) Rows() int64 { return w.log.rows }

// Compact turns the log into the extent file at finalPath, removes the
// log, and returns the per-node extents (byte offsets).
func (w *ExtentWriter) Compact(finalPath string) (map[lattice.NodeID]Extent, error) {
	extents := map[lattice.NodeID]Extent{}
	err := compactLog(w.log, finalPath, func(lattice.NodeID) int { return w.rowWidth }, nil,
		func(id lattice.NodeID, off, rows int64) {
			extents[id] = Extent{Off: off, Rows: rows}
		})
	if err != nil {
		return nil, err
	}
	return extents, nil
}

// Abort discards the log without compacting.
func (w *ExtentWriter) Abort() {
	w.log.f.Close()
	os.Remove(w.log.path)
}

// ReadExtent reads rows [0, ext.Rows) of an extent into a buffer.
func ReadExtent(f *os.File, ext Extent, rowWidth int) ([]byte, error) {
	buf := make([]byte, ext.Rows*int64(rowWidth))
	if ext.Rows == 0 {
		return buf, nil
	}
	if _, err := f.ReadAt(buf, ext.Off); err != nil {
		return nil, err
	}
	return buf, nil
}
