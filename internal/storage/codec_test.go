package storage

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"cure/internal/relation"
	"cure/internal/signature"
)

// encodeOneBlock encodes row-major rows through the production encoder
// and decodes them back, returning the decoded block.
func encodeOneBlock(t *testing.T, kinds []colKind, rows []byte, n int) *DecodedBlock {
	t.Helper()
	be := newBlockEncoder(kinds)
	enc := be.encodeBlock(rows, n, nil)
	var db DecodedBlock
	consumed, err := decodeBlock(enc, kinds, n, &db)
	if err != nil {
		t.Fatalf("decodeBlock: %v", err)
	}
	if consumed != len(enc) {
		t.Fatalf("decodeBlock consumed %d of %d bytes", consumed, len(enc))
	}
	return &db
}

func TestCodecColumnShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := map[string]func(i int) int64{
		"constant":  func(i int) int64 { return 42 },
		"sorted":    func(i int) int64 { return int64(i) * 3 },
		"runs":      func(i int) int64 { return int64(i / 17) },
		"random":    func(i int) int64 { return rng.Int63() - rng.Int63() },
		"lowcard":   func(i int) int64 { return int64(rng.Intn(5)) },
		"extremes":  func(i int) int64 { return []int64{math.MinInt64, math.MaxInt64, 0, -1}[i%4] },
		"negatives": func(i int) int64 { return -int64(i) * 1000 },
	}
	for name, gen := range shapes {
		for _, n := range []int{1, 2, 255, 256, 1000} {
			t.Run(fmt.Sprintf("%s/n=%d", name, n), func(t *testing.T) {
				// One block of <i64, i32, f64> columns derived from gen.
				kinds := []colKind{colI64, colI32, colF64}
				width := 8 + 4 + 8
				rows := make([]byte, n*width)
				wantI64 := make([]int64, n)
				wantI32 := make([]int32, n)
				wantF64 := make([]float64, n)
				for i := 0; i < n; i++ {
					v := gen(i)
					wantI64[i] = v
					wantI32[i] = int32(v)
					wantF64[i] = float64(v % 100000)
					rec := rows[i*width:]
					putInt64(rec, v)
					putDims(rec[8:], []int32{int32(v)})
					putAggrs(rec[12:], []float64{wantF64[i]})
				}
				db := encodeOneBlock(t, kinds, rows, n)
				if !reflect.DeepEqual(db.I64[0], wantI64) {
					t.Error("int64 column mismatch")
				}
				if !reflect.DeepEqual(db.I32[1], wantI32) {
					t.Error("int32 column mismatch")
				}
				if !reflect.DeepEqual(db.F64[2], wantF64) {
					t.Error("float64 column mismatch")
				}
			})
		}
	}
}

func TestCodecFloatBitPatterns(t *testing.T) {
	// Values whose bit patterns must survive exactly: -0, NaN (quiet and
	// payload-carrying), ±Inf, denormals, and huge integral floats.
	vals := []float64{
		0, math.Copysign(0, -1), math.NaN(),
		math.Float64frombits(0x7ff8000000000abc), // NaN with payload
		math.Inf(1), math.Inf(-1),
		math.SmallestNonzeroFloat64, math.MaxFloat64,
		1.5, -2.75, 1e300, float64(1 << 60), -float64(1 << 60),
		123456789, 3, 3, 3, 3, // a run
	}
	n := len(vals)
	kinds := []colKind{colF64}
	rows := make([]byte, n*8)
	for i, v := range vals {
		putAggrs(rows[i*8:], []float64{v})
	}
	db := encodeOneBlock(t, kinds, rows, n)
	for i, want := range vals {
		if math.Float64bits(db.F64[0][i]) != math.Float64bits(want) {
			t.Errorf("row %d: bits %x, want %x (value %v)", i,
				math.Float64bits(db.F64[0][i]), math.Float64bits(want), want)
		}
	}
}

func TestCodecEmptyBlock(t *testing.T) {
	kinds := []colKind{colI64, colF64}
	be := newBlockEncoder(kinds)
	enc := be.encodeBlock(nil, 0, nil)
	var db DecodedBlock
	if _, err := decodeBlock(enc, kinds, 0, &db); err != nil {
		t.Fatalf("empty block: %v", err)
	}
	if db.Rows != 0 {
		t.Errorf("rows = %d", db.Rows)
	}
}

func TestCodecRowCountMismatchRejected(t *testing.T) {
	kinds := []colKind{colI64}
	be := newBlockEncoder(kinds)
	rows := make([]byte, 5*8)
	enc := be.encodeBlock(rows, 5, nil)
	var db DecodedBlock
	if _, err := decodeBlock(enc, kinds, 6, &db); err == nil {
		t.Error("row-count mismatch accepted")
	}
}

func TestCompressionModeValidation(t *testing.T) {
	for _, mode := range []string{"", "none", "auto", "block", "sampled"} {
		if _, err := compressionEnabled(mode); err != nil {
			t.Errorf("mode %q rejected: %v", mode, err)
		}
	}
	if _, err := compressionEnabled("zstd"); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := NewWriter(Options{
		Dir: t.TempDir(), Hier: testHier(t),
		AggSpecs:    []relation.AggSpec{{Func: relation.AggCount}},
		Compression: "zstd",
	}); err == nil {
		t.Error("writer with unknown compression mode accepted")
	}
}

// writeWorkload writes one deterministic mixed workload (multi-block NT,
// TT, CAT extents plus AGGREGATES) into w and finalizes it.
func writeWorkload(t *testing.T, w *Writer, plus bool, formatA bool) *Manifest {
	t.Helper()
	enum := w.Enum()
	nodeA0B := enum.Encode([]int{0, 0})
	nodeA1 := enum.Encode([]int{1, 1})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 700; i++ {
		if err := w.WriteNT(nodeA0B, int64(rng.Intn(5000)), []float64{float64(rng.Intn(50)), float64(1 + rng.Intn(9))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 900; i++ {
		if err := w.WriteTT(nodeA1, int64(rng.Intn(5000))); err != nil {
			t.Fatal(err)
		}
	}
	format := signature.FormatB
	for i := 0; i < 500; i++ {
		rrowid := int64(-1)
		if formatA {
			rrowid = int64(rng.Intn(5000))
		}
		a, err := w.AppendAggregate(rrowid, []float64{float64(rng.Intn(100)) + 0.5, float64(2 + rng.Intn(7))})
		if err != nil {
			t.Fatal(err)
		}
		catSrc := int64(-1)
		if !formatA {
			catSrc = int64(rng.Intn(5000))
		}
		if err := w.WriteCAT(nodeA0B, catSrc, a); err != nil {
			t.Fatal(err)
		}
	}
	if formatA {
		format = signature.FormatA
	}
	m, err := w.Finalize(format)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// collectExtents renders every readable tuple of the cube as strings, the
// equivalence unit compressed and uncompressed cubes are compared by.
func collectExtents(t *testing.T, dir string) []string {
	t.Helper()
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []string
	m := r.Manifest()
	for k := range m.Nodes {
		id, err := parseNodeKey(k)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.NTRows(id, func(nt NTRow) error {
			out = append(out, fmt.Sprintf("nt %s %d %v %v", k, nt.RRowid, nt.Dims, nt.Aggrs))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		ids, err := r.TTRowIDs(id, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range ids {
			out = append(out, fmt.Sprintf("tt %s %d", k, v))
		}
		if err := r.CATRows(id, func(cat CATRow) error {
			out = append(out, fmt.Sprintf("cat %s %d %d", k, cat.RRowid, cat.ARowid))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	aggs := make([]float64, m.NumAggrs())
	for a := int64(0); a < m.AggRows; a++ {
		rrowid, err := r.ReadAggregate(a, aggs)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fmt.Sprintf("agg %d %d %v", a, rrowid, aggs))
	}
	raw, err := r.AggregatesRaw()
	if err != nil {
		t.Fatal(err)
	}
	for a := int64(0); a < m.AggRows; a++ {
		rrowid := r.DecodeAggregate(raw, a, aggs)
		out = append(out, fmt.Sprintf("aggraw %d %d %v", a, rrowid, aggs))
	}
	sort.Strings(out)
	return out
}

func TestCompressedCubeEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		plus    bool
		formatA bool
	}{
		{"plain-formatB", false, false},
		{"plus-formatB", true, false},
		{"plus-formatA", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dirNone, dirAuto := t.TempDir(), t.TempDir()
			wNone := newTestWriter(t, Options{Dir: dirNone, Plus: tc.plus, FactRows: 5000, ZoneBlockRows: 64})
			mNone := writeWorkload(t, wNone, tc.plus, tc.formatA)
			wAuto := newTestWriter(t, Options{Dir: dirAuto, Plus: tc.plus, FactRows: 5000, ZoneBlockRows: 64, Compression: "auto"})
			mAuto := writeWorkload(t, wAuto, tc.plus, tc.formatA)

			if mNone.Version != 1 || mNone.Compressed() {
				t.Errorf("uncompressed manifest: version %d, compression %q", mNone.Version, mNone.Compression)
			}
			if mAuto.Version != 2 || !mAuto.Compressed() {
				t.Errorf("compressed manifest: version %d, compression %q", mAuto.Version, mAuto.Compression)
			}
			if mAuto.AggCodec == nil {
				t.Error("compressed cube without AggCodec")
			}
			if got, want := collectExtents(t, dirAuto), collectExtents(t, dirNone); !reflect.DeepEqual(got, want) {
				t.Fatalf("compressed cube decodes differently: %d vs %d tuples", len(got), len(want))
			}
			// The workload is repetitive on purpose: the codec must win.
			if mAuto.Sizes.Total() >= mNone.Sizes.Total() {
				t.Errorf("compressed cube not smaller: %d >= %d", mAuto.Sizes.Total(), mNone.Sizes.Total())
			}
			if bad, err := func() ([]string, error) {
				r, err := OpenReader(dirAuto)
				if err != nil {
					return nil, err
				}
				defer r.Close()
				return r.VerifyChecksums()
			}(); err != nil || len(bad) != 0 {
				t.Errorf("checksums after compression: bad=%v err=%v", bad, err)
			}
		})
	}
}

func TestCompressedExtentCodecMetadata(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, Options{Dir: dir, FactRows: 5000, ZoneBlockRows: 64, Compression: "auto"})
	m := writeWorkload(t, w, false, false)
	for k, nm := range m.Nodes {
		if nm.NTRows > 0 {
			c := nm.NTCodec
			if c == nil {
				t.Fatalf("node %s: NT extent without codec", k)
			}
			if got, want := c.NumBlocks(), int((nm.NTRows+63)/64); got != want {
				t.Errorf("node %s: %d blocks, want %d", k, got, want)
			}
			if c.RawBytes != nm.NTRows*int64(m.ntRowWidth(0)) {
				t.Errorf("node %s: RawBytes = %d", k, c.RawBytes)
			}
			if c.EncodedBytes() <= 0 || len(c.Encodings) == 0 {
				t.Errorf("node %s: empty codec record %+v", k, c)
			}
		}
	}
}

// benchRows builds n rows of the mixed <i64, i32, f64> extent schema with
// realistic shapes: sorted row-ids, low-cardinality codes, small-integer
// aggregates (delta, bitpack, and intfloat all in play).
func benchRows(n int) ([]colKind, []byte, int) {
	kinds := []colKind{colI64, colI32, colF64}
	width := 8 + 4 + 8
	rows := make([]byte, n*width)
	for i := 0; i < n; i++ {
		rec := rows[i*width:]
		putInt64(rec, int64(i)*3)
		putDims(rec[8:], []int32{int32(i % 7)})
		putAggrs(rec[12:], []float64{float64(i % 100)})
	}
	return kinds, rows, width
}

func BenchmarkBlockEncode(b *testing.B) {
	for _, bc := range []struct {
		name string
		mk   func(kinds []colKind) *blockEncoder
	}{
		{"exact", func(kinds []colKind) *blockEncoder { return newBlockEncoder(kinds) }},
		{"sampled", func(kinds []colKind) *blockEncoder { return newSampledBlockEncoder(kinds, 1) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			const n = 256
			kinds, rows, width := benchRows(n)
			be := bc.mk(kinds)
			enc := be.encodeBlock(rows, n, nil)
			b.ReportAllocs()
			b.SetBytes(int64(n * width))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc = be.encodeBlock(rows, n, enc[:0])
			}
			_ = enc
		})
	}
}

// TestBlockEncodeSteadyStateAllocs pins the encoder's steady state at
// zero allocations per block: every gather buffer, candidate buffer, and
// payload buffer must be recycled once warmed up. A regression here
// multiplies across every block of every extent of a finalize pass.
func TestBlockEncodeSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		be   func(kinds []colKind) *blockEncoder
	}{
		{"exact", func(kinds []colKind) *blockEncoder { return newBlockEncoder(kinds) }},
		{"sampled", func(kinds []colKind) *blockEncoder { return newSampledBlockEncoder(kinds, 1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 256
			kinds, rows, _ := benchRows(n)
			be := tc.be(kinds)
			var enc []byte
			for i := 0; i < 4; i++ { // warm up buffers and close the sampling window
				enc = be.encodeBlock(rows, n, enc[:0])
			}
			allocs := testing.AllocsPerRun(100, func() {
				enc = be.encodeBlock(rows, n, enc[:0])
			})
			if allocs != 0 {
				t.Errorf("steady-state encodeBlock allocates %.1f times per block, want 0", allocs)
			}
		})
	}
}
