package storage

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/signature"
)

// Zone maps are the sparse indexes of the query path: per node, per
// extent (NT, TT, CAT), Finalize records the min/max code of every
// dimension-level over blocks of ZoneBlockRows tuples, in the exact
// order query-time scans visit them. A selective query compares its
// predicate ranges against the block bounds and skips blocks that cannot
// match; on extents CURE+ left sorted (TT row-ids, format-(a) CATs) the
// bounds are monotone and the candidate window narrows by binary search
// instead of a linear sweep.

// DefaultZoneBlockRows is the zone-map block granularity (rows per
// block). Extents smaller than one block carry no zone map — pruning a
// sub-block extent saves less than the manifest bytes it costs.
const DefaultZoneBlockRows = 256

// Sentinel bounds of a slot whose value is unknown for a row (e.g. the
// non-grouped dimensions of a CURE_DR NT extent): the full int32 range,
// which no predicate can exclude.
const (
	zoneWideLo = math.MinInt32
	zoneWideHi = math.MaxInt32
)

// ZoneIndex is the zone map of one extent: for each block of BlockRows
// consecutive rows and each slot (one per real dimension-level, see
// ZoneSlots), the inclusive [Lo, Hi] code bounds, stored flat as
// block-major arrays of numBlocks·Slots entries. Sorted[s] marks slots
// whose per-block bounds are globally ordered (hi of block b ≤ lo of
// block b+1), enabling binary search.
type ZoneIndex struct {
	BlockRows int32   `json:"block_rows"`
	Slots     int32   `json:"slots"`
	Lo        []int32 `json:"lo"`
	Hi        []int32 `json:"hi"`
	Sorted    []bool  `json:"sorted,omitempty"`
}

// NumBlocks returns the number of blocks the index covers.
func (z *ZoneIndex) NumBlocks() int {
	if z == nil || z.Slots == 0 {
		return 0
	}
	return len(z.Lo) / int(z.Slots)
}

// sortedSlot reports whether slot s has globally ordered block bounds.
func (z *ZoneIndex) sortedSlot(s int) bool { return s < len(z.Sorted) && z.Sorted[s] }

// ZoneSlots returns the slot layout of a schema: slot offs[d]+l holds
// the bounds of dimension d at real level l (the ALL level needs no
// slot — it has a single code). The second result is the total slot
// count.
func ZoneSlots(hier *hierarchy.Schema) ([]int, int) {
	offs := make([]int, hier.NumDims())
	n := 0
	for d, dim := range hier.Dims {
		offs[d] = n
		n += dim.AllLevel()
	}
	return offs, n
}

// ZonePred is one predicate lowered to zone-map terms: accept rows whose
// code in Slot falls in [Lo, Hi].
type ZonePred struct {
	Slot   int
	Lo, Hi int32
}

// RowRange is a half-open interval [Lo, Hi) of row indexes within one
// extent.
type RowRange struct{ Lo, Hi int64 }

// ZoneStats summarizes one pruning decision, the unit EXPLAIN plans and
// per-query attribution report.
type ZoneStats struct {
	// Blocks is the total number of zone-map blocks of the extent.
	Blocks int `json:"blocks"`
	// Kept and Skipped partition Blocks by the pruning verdict.
	Kept    int `json:"kept"`
	Skipped int `json:"skipped"`
	// Narrowed reports that at least one predicate hit a sorted slot and
	// shrank the candidate window by binary search (CURE+ sorted extents)
	// rather than a linear block sweep.
	Narrowed bool `json:"narrowed,omitempty"`
	// ScanRows is the number of extent rows inside the surviving ranges.
	ScanRows int64 `json:"scan_rows"`
}

// PruneZones returns the row ranges of an extent that may contain rows
// satisfying every predicate, merging adjacent surviving blocks, plus
// the numbers of blocks kept and skipped. rows is the extent's row
// count (the last block may be partial). Predicates on sorted slots
// narrow the candidate window by binary search; the rest are tested
// block by block.
func PruneZones(z *ZoneIndex, rows int64, preds []ZonePred) ([]RowRange, int, int) {
	ranges, st := PruneZonesStats(z, rows, preds)
	return ranges, st.Kept, st.Skipped
}

// PruneZonesStats is PruneZones with the full decision record: the
// surviving ranges plus block counts, whether sorted-slot narrowing
// applied, and the surviving row volume. Explain renders the decision;
// the query path tallies it into per-query counters.
func PruneZonesStats(z *ZoneIndex, rows int64, preds []ZonePred) ([]RowRange, ZoneStats) {
	nb := z.NumBlocks()
	if nb == 0 || len(preds) == 0 {
		return nil, ZoneStats{}
	}
	st := ZoneStats{Blocks: nb}
	slots := int(z.Slots)
	lo, hi := 0, nb
	for _, p := range preds {
		if p.Slot < 0 || p.Slot >= slots || !z.sortedSlot(p.Slot) {
			continue
		}
		l := sort.Search(nb, func(b int) bool { return z.Hi[b*slots+p.Slot] >= p.Lo })
		h := sort.Search(nb, func(b int) bool { return z.Lo[b*slots+p.Slot] > p.Hi })
		if l > lo {
			lo = l
		}
		if h < hi {
			hi = h
		}
	}
	st.Narrowed = lo > 0 || hi < nb
	var out []RowRange
	kept := 0
	br := int64(z.BlockRows)
	for b := lo; b < hi; b++ {
		match := true
		for _, p := range preds {
			if p.Slot < 0 || p.Slot >= slots {
				continue
			}
			if z.Hi[b*slots+p.Slot] < p.Lo || z.Lo[b*slots+p.Slot] > p.Hi {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		kept++
		rLo := int64(b) * br
		rHi := rLo + br
		if rHi > rows {
			rHi = rows
		}
		if n := len(out); n > 0 && out[n-1].Hi == rLo {
			out[n-1].Hi = rHi
		} else {
			out = append(out, RowRange{rLo, rHi})
		}
	}
	if out == nil {
		out = []RowRange{} // every block pruned: scan nothing, not everything
	}
	st.Kept = kept
	st.Skipped = nb - kept
	for _, rg := range out {
		st.ScanRows += rg.Hi - rg.Lo
	}
	return out, st
}

// zoneBuilder accumulates per-block bounds while an extent streams by in
// its final on-disk order.
type zoneBuilder struct {
	blockRows int
	slots     int
	lo, hi    []int32
	n         int // rows folded into the current block
}

func newZoneBuilder(blockRows, slots int) *zoneBuilder {
	return &zoneBuilder{blockRows: blockRows, slots: slots}
}

// openBlock appends a fresh block with empty (inverted) bounds.
func (b *zoneBuilder) openBlock() int {
	base := len(b.lo)
	for s := 0; s < b.slots; s++ {
		b.lo = append(b.lo, zoneWideHi)
		b.hi = append(b.hi, zoneWideLo)
	}
	return base
}

func (b *zoneBuilder) blockBase() int {
	if b.n == 0 {
		return b.openBlock()
	}
	return len(b.lo) - b.slots
}

func (b *zoneBuilder) endRow() {
	b.n++
	if b.n == b.blockRows {
		b.n = 0
	}
}

// addAll folds one row whose code is known in every slot.
func (b *zoneBuilder) addAll(codes []int32) {
	base := b.blockBase()
	for s, c := range codes {
		if c < b.lo[base+s] {
			b.lo[base+s] = c
		}
		if c > b.hi[base+s] {
			b.hi[base+s] = c
		}
	}
	b.endRow()
}

// addSparse folds one row known only in the listed slots (codes[i] is
// the value of slot slotIdx[i]); the rest stay unknown.
func (b *zoneBuilder) addSparse(slotIdx []int, codes []int32) {
	base := b.blockBase()
	for i, s := range slotIdx {
		c := codes[i]
		if c < b.lo[base+s] {
			b.lo[base+s] = c
		}
		if c > b.hi[base+s] {
			b.hi[base+s] = c
		}
	}
	b.endRow()
}

// finish widens never-touched slots to the full range (unknown must not
// prune), computes the per-slot sortedness bits, and returns the index
// (nil when no rows were added).
func (b *zoneBuilder) finish() *ZoneIndex {
	if len(b.lo) == 0 {
		return nil
	}
	for i := range b.lo {
		if b.lo[i] > b.hi[i] {
			b.lo[i] = zoneWideLo
			b.hi[i] = zoneWideHi
		}
	}
	z := &ZoneIndex{
		BlockRows: int32(b.blockRows),
		Slots:     int32(b.slots),
		Lo:        b.lo,
		Hi:        b.hi,
	}
	nb := z.NumBlocks()
	if nb > 1 {
		sorted := make([]bool, b.slots)
		any := false
		for s := 0; s < b.slots; s++ {
			ok := true
			for blk := 1; blk < nb; blk++ {
				if z.Hi[(blk-1)*b.slots+s] > z.Lo[blk*b.slots+s] {
					ok = false
					break
				}
			}
			sorted[s] = ok
			any = any || ok
		}
		if any {
			z.Sorted = sorted
		}
	}
	return z
}

// buildZoneMaps is the legacy (uncompressed v1) zone-map pass: it runs
// after compaction with the manifest already on disk and re-reads every
// extent through a Reader — guaranteeing block order matches query-time
// scan order, bitmap expansion and CURE+ sorting included — resolves
// each tuple's representative source row to codes at every
// dimension-level, and attaches the per-extent zone maps to m's NodeMeta
// records. Compressed builds never come here: their zones are folded
// into the compression scan (see foldExtentZones), which is why this
// pass charges every byte it touches to storage.finalize.reread_bytes.
// Cubes written without a resolver (incremental merges) skip indexing.
func (w *Writer) buildZoneMaps(m *Manifest, fin *finState) error {
	zc := fin.zcfg
	if zc == nil {
		return nil
	}
	blockRows, offs, slots := zc.blockRows, zc.offs, zc.slots
	hier := w.opts.Hier
	r, err := OpenReader(w.opts.Dir)
	if err != nil {
		return err
	}
	defer r.Close()
	io := &IOStats{}
	defer func() {
		fin.cReread.Add(io.BytesRead)
		fin.stats.RereadBytes += io.BytesRead
	}()

	// Format (a) CAT rows reach their representative row through
	// AGGREGATES; pin the relation for the pass.
	var aggRaw []byte
	if m.CatFormat == signature.FormatA && m.AggRows > 0 {
		if aggRaw, err = r.AggregatesRaw(); err != nil {
			return err
		}
		io.Add(int64(len(aggRaw)))
	}
	baseDims := make([]int32, hier.NumDims())
	aggs := make([]float64, m.NumAggrs())
	codes := make([]int32, slots)
	resolve := func(rrowid int64) error {
		if err := w.opts.Resolver(rrowid, baseDims); err != nil {
			return fmt.Errorf("storage: zone map: resolving row %d: %w", rrowid, err)
		}
		for d, dim := range hier.Dims {
			for l := 0; l < dim.AllLevel(); l++ {
				codes[offs[d]+l] = dim.MapCode(baseDims[d], l)
			}
		}
		return nil
	}

	record := func(z *ZoneIndex) *ZoneIndex {
		if z != nil {
			fin.recordZone(z)
		}
		return z
	}

	keys := make([]string, 0, len(m.Nodes))
	for k := range m.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var levels []int
	for _, k := range keys {
		nm := m.Nodes[k]
		idNum, err := strconv.ParseInt(k, 10, 64)
		if err != nil {
			return fmt.Errorf("storage: zone map: bad node key %q: %w", k, err)
		}
		id := lattice.NodeID(idNum)

		if nm.NTRows >= int64(blockRows) {
			zb := newZoneBuilder(blockRows, slots)
			if m.DimsInline {
				// DR rows carry codes only at the node's own levels; the
				// other slots stay unknown.
				levels = w.enum.Decode(id, levels)
				slotIdx := make([]int, 0, len(levels))
				for d, l := range levels {
					if !hier.Dims[d].IsAll(l) {
						slotIdx = append(slotIdx, offs[d]+l)
					}
				}
				if err := r.NTRowsRanges(id, nil, io, func(nt NTRow) error {
					zb.addSparse(slotIdx, nt.Dims)
					return nil
				}); err != nil {
					return err
				}
			} else {
				if err := r.NTRowsRanges(id, nil, io, func(nt NTRow) error {
					if err := resolve(nt.RRowid); err != nil {
						return err
					}
					zb.addAll(codes)
					return nil
				}); err != nil {
					return err
				}
			}
			nm.NTZones = record(zb.finish())
		}

		if nm.TTRows >= int64(blockRows) {
			ids, err := r.TTRowIDsIO(id, nil, io)
			if err != nil {
				return err
			}
			zb := newZoneBuilder(blockRows, slots)
			for _, rrowid := range ids {
				if err := resolve(rrowid); err != nil {
					return err
				}
				zb.addAll(codes)
			}
			nm.TTZones = record(zb.finish())
		}

		if nm.CATRows >= int64(blockRows) {
			zb := newZoneBuilder(blockRows, slots)
			if err := r.CATRowsRanges(id, nil, io, func(cat CATRow) error {
				rr := cat.RRowid
				if rr < 0 {
					// Format (a): the representative row-id lives in the
					// AGGREGATES tuple — the same indirection queries take.
					if aggRaw != nil {
						rr = r.DecodeAggregate(aggRaw, cat.ARowid, aggs)
					} else if rr, err = r.ReadAggregateIO(cat.ARowid, aggs, io); err != nil {
						return err
					}
				}
				if err := resolve(rr); err != nil {
					return err
				}
				zb.addAll(codes)
				return nil
			}); err != nil {
				return err
			}
			nm.CATZones = record(zb.finish())
		}

		m.Nodes[k] = nm
	}
	return nil
}
