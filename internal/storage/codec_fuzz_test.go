package storage

import (
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

// Fuzz targets for every extent codec: each derives a typed column from
// the fuzzer's bytes, encodes it with the production encoder, decodes it
// back, and demands an exact round-trip. Seeds cover the edge shapes the
// issue calls out — empty blocks, single-row blocks, and maximum-range
// values.

func bytesToI32(data []byte) []int32 {
	vals := make([]int32, len(data)/4)
	for i := range vals {
		vals[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return vals
}

func bytesToI64(data []byte) []int64 {
	vals := make([]int64, len(data)/8)
	for i := range vals {
		vals[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return vals
}

func seedI32(f *testing.F) {
	f.Add([]byte{})           // empty block
	f.Add([]byte{1, 2, 3, 4}) // single row
	var maxRange [8]byte      // MinInt32 followed by MaxInt32
	lo, hi := int32(math.MinInt32), int32(math.MaxInt32)
	binary.LittleEndian.PutUint32(maxRange[0:], uint32(lo))
	binary.LittleEndian.PutUint32(maxRange[4:], uint32(hi))
	f.Add(maxRange[:])
	f.Add(append(maxRange[:], maxRange[:]...))
}

func FuzzBitpack32RoundTrip(f *testing.F) {
	seedI32(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := bytesToI32(data)
		if len(vals) == 0 {
			return // bitpack payloads are per-block; empty blocks skip the column
		}
		enc := encodeBitpack32(nil, vals)
		got := make([]int32, len(vals))
		if err := decodeBitpack32(enc, got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, vals) {
			t.Fatalf("round trip: got %v, want %v", got, vals)
		}
	})
}

func FuzzRLE32RoundTrip(f *testing.F) {
	seedI32(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := bytesToI32(data)
		enc := encodeRLE32(nil, vals)
		got := make([]int32, len(vals))
		if err := decodeRLE32(enc, got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, vals) {
			t.Fatalf("round trip: got %v, want %v", got, vals)
		}
	})
}

func FuzzDelta64RoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}) // single row
	var extremes [16]byte                 // MinInt64 then MaxInt64: wraparound deltas
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	binary.LittleEndian.PutUint64(extremes[0:], uint64(lo))
	binary.LittleEndian.PutUint64(extremes[8:], uint64(hi))
	f.Add(extremes[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := bytesToI64(data)
		enc := encodeDelta64(nil, vals)
		got := make([]int64, len(vals))
		if err := decodeDelta64(enc, got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, vals) {
			t.Fatalf("round trip: got %v, want %v", got, vals)
		}
	})
}

// FuzzFloatColumnRoundTrip drives the full float column path — candidate
// selection included — demanding bit-exact reconstruction (NaN payloads,
// signed zeros).
func FuzzFloatColumnRoundTrip(f *testing.F) {
	f.Add([]byte{})
	var one [8]byte
	binary.LittleEndian.PutUint64(one[:], math.Float64bits(3))
	f.Add(one[:]) // single row, integral (intfloat candidate)
	var special [32]byte
	binary.LittleEndian.PutUint64(special[0:], math.Float64bits(math.Copysign(0, -1)))
	binary.LittleEndian.PutUint64(special[8:], 0x7ff8000000000abc) // NaN payload
	binary.LittleEndian.PutUint64(special[16:], math.Float64bits(math.Inf(-1)))
	binary.LittleEndian.PutUint64(special[24:], math.Float64bits(math.MaxFloat64))
	f.Add(special[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n == 0 {
			return
		}
		rows := data[:n*8]
		kinds := []colKind{colF64}
		be := newBlockEncoder(kinds)
		enc := be.encodeBlock(rows, n, nil)
		var db DecodedBlock
		if _, err := decodeBlock(enc, kinds, n, &db); err != nil {
			t.Fatalf("decode: %v", err)
		}
		for i := 0; i < n; i++ {
			want := binary.LittleEndian.Uint64(rows[8*i:])
			if got := math.Float64bits(db.F64[0][i]); got != want {
				t.Fatalf("row %d: bits %x, want %x", i, got, want)
			}
		}
	})
}

// FuzzBlockRoundTrip drives the whole block format over a mixed
// <i64, i32, f64> schema.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 20))  // single row of zeros
	f.Add(make([]byte, 400)) // 20 rows of zeros
	f.Fuzz(func(t *testing.T, data []byte) {
		kinds := []colKind{colI64, colI32, colF64}
		const width = 20
		n := len(data) / width
		rows := data[:n*width]
		be := newBlockEncoder(kinds)
		enc := be.encodeBlock(rows, n, nil)
		var db DecodedBlock
		if _, err := decodeBlock(enc, kinds, n, &db); err != nil {
			t.Fatalf("decode: %v", err)
		}
		for i := 0; i < n; i++ {
			rec := rows[i*width:]
			if got, want := db.I64[0][i], int64(binary.LittleEndian.Uint64(rec)); got != want {
				t.Fatalf("row %d i64: %d, want %d", i, got, want)
			}
			if got, want := db.I32[1][i], int32(binary.LittleEndian.Uint32(rec[8:])); got != want {
				t.Fatalf("row %d i32: %d, want %d", i, got, want)
			}
			if got, want := math.Float64bits(db.F64[2][i]), binary.LittleEndian.Uint64(rec[12:]); got != want {
				t.Fatalf("row %d f64 bits: %x, want %x", i, got, want)
			}
		}
	})
}

// FuzzDecodeBlockBytes feeds arbitrary bytes to the block decoder: it
// must reject corruption with an error, never panic or over-allocate.
func FuzzDecodeBlockBytes(f *testing.F) {
	kinds := []colKind{colI64, colF64}
	be := newBlockEncoder(kinds)
	valid := be.encodeBlock(make([]byte, 16*4), 4, nil)
	f.Add(valid, 4)
	f.Add([]byte{}, 0)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}, 1)
	f.Fuzz(func(t *testing.T, data []byte, wantRows int) {
		if wantRows < 0 || wantRows > 1<<16 {
			return
		}
		var db DecodedBlock
		decodeBlock(data, kinds, wantRows, &db) //nolint:errcheck // errors expected; panics are the bug
	})
}

// FuzzSampledBlockRoundTrip drives the sampled selector over a stream of
// blocks: a one-block sampling window commits to a prediction fast, the
// remaining blocks exercise the fast path and its raw fallback. Every
// block must decode back exactly, and the exact encoder must agree on
// the decoded values (the formats are identical; only codec picks may
// differ).
func FuzzSampledBlockRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 20))  // one block of one zero row
	f.Add(make([]byte, 200)) // several blocks
	mixed := make([]byte, 400)
	for i := range mixed {
		mixed[i] = byte(i * 7) // shapes that flip the winning codec mid-stream
	}
	f.Add(mixed)
	f.Fuzz(func(t *testing.T, data []byte) {
		kinds := []colKind{colI64, colI32, colF64}
		const width = 20
		const blockRows = 3
		rows := data[:len(data)/width*width]
		n := len(rows) / width
		be := newSampledBlockEncoder(kinds, 1)
		ex := newBlockEncoder(kinds)
		for r0 := 0; r0 < n; r0 += blockRows {
			bn := blockRows
			if r0+bn > n {
				bn = n - r0
			}
			block := rows[r0*width : (r0+bn)*width]
			enc := be.encodeBlock(block, bn, nil)
			var db DecodedBlock
			if consumed, err := decodeBlock(enc, kinds, bn, &db); err != nil {
				t.Fatalf("block at row %d: decode: %v", r0, err)
			} else if consumed != len(enc) {
				t.Fatalf("block at row %d: consumed %d of %d bytes", r0, consumed, len(enc))
			}
			encEx := ex.encodeBlock(block, bn, nil)
			var dbEx DecodedBlock
			if _, err := decodeBlock(encEx, kinds, bn, &dbEx); err != nil {
				t.Fatalf("block at row %d: exact decode: %v", r0, err)
			}
			for i := 0; i < bn; i++ {
				rec := block[i*width:]
				if got, want := db.I64[0][i], int64(binary.LittleEndian.Uint64(rec)); got != want {
					t.Fatalf("row %d i64: %d, want %d", r0+i, got, want)
				}
				if got, want := db.I32[1][i], int32(binary.LittleEndian.Uint32(rec[8:])); got != want {
					t.Fatalf("row %d i32: %d, want %d", r0+i, got, want)
				}
				if got, want := math.Float64bits(db.F64[2][i]), binary.LittleEndian.Uint64(rec[12:]); got != want {
					t.Fatalf("row %d f64 bits: %x, want %x", r0+i, got, want)
				}
				if math.Float64bits(db.F64[2][i]) != math.Float64bits(dbEx.F64[2][i]) ||
					db.I64[0][i] != dbEx.I64[0][i] || db.I32[1][i] != dbEx.I32[1][i] {
					t.Fatalf("row %d: sampled and exact decodes disagree", r0+i)
				}
			}
		}
	})
}
