package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestRunTasksPropagatesPanic pins the crash contract of the build's
// worker pool: a panicking task stops new claims, the helpers drain,
// every limiter slot is released, and the first panic value re-raises
// on the calling goroutine.
func TestRunTasksPropagatesPanic(t *testing.T) {
	for _, p := range []int{1, 4} {
		lim := newParLimiter(p)
		var ran atomic.Int32
		var recovered any
		func() {
			defer func() { recovered = recover() }()
			runTasks(lim, 16, func(slot, i int) error {
				if i == 2 {
					panic("kaboom-2")
				}
				ran.Add(1)
				return nil
			})
		}()
		if recovered == nil || !strings.Contains(fmt.Sprint(recovered), "kaboom-2") {
			t.Fatalf("p=%d: recovered %v, want the task's panic value", p, recovered)
		}
		if n := ran.Load(); n >= 16 {
			t.Fatalf("p=%d: all %d tasks ran despite a panic stopping claims", p, n)
		}
		// Every limiter slot must come back even through the panic path —
		// a partitioned build reuses the limiter for its next fan-out.
		free := 0
		for lim.tryAcquire() {
			free++
		}
		if p > 1 && free != p-1 {
			t.Fatalf("p=%d: %d slots free after panic, want %d", p, free, p-1)
		}
	}
}
