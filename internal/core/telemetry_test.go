package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cure/internal/obsv"
	"cure/internal/query"
	"cure/internal/relation"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestLiveTelemetryDuringPartitionedBuild is the tentpole acceptance
// check: while a partitioned build runs, the telemetry server answers
// /metrics (valid Prometheus text), /healthz, /progress (JSON and SSE),
// and pprof; the runtime sampler emits mem_sample events and — under the
// forced low memory budget — a mem_budget crossing; and a query engine
// attached to the same registry lands its spans and counters in the same
// exposition as the build's.
func TestLiveTelemetryDuringPartitionedBuild(t *testing.T) {
	hier := paperHier(t)
	// Large enough that the build cannot outrun the first scrape loop
	// iterations even on a loaded single-core machine — observing the
	// running build below must stay deterministic in practice. (Bumped
	// 32k → 96k → 192k: each time a build phase gets faster — last the
	// batched partition scan — the window for catching a running span
	// shrinks again.)
	ft := duplicatedFact(t, 192000, 31)
	dir := t.TempDir()
	factPath := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(factPath, ft); err != nil {
		t.Fatal(err)
	}

	reg := obsv.NewRegistry()
	var trace bytes.Buffer
	reg.SetTrace(obsv.NewTraceWriter(&trace))
	smp := obsv.StartSampler(reg, obsv.SamplerOptions{Interval: 2 * time.Millisecond})
	srv, err := obsv.StartServer("127.0.0.1:0", reg, obsv.ServerOptions{
		Sampler:          smp,
		ProgressInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Scaled from the known-sound 400-rows/16KB pairing: large enough for
	// the partitioner to find a sound split, small enough both to force
	// the external path and to sit far below the process's real heap use
	// (so the sampler must record a budget crossing).
	// Scaled 2× with the 192k-row table so level selection still finds a
	// sound split while the heap still crosses the budget.
	const memBudget = 7_680_000
	buildDone := make(chan error, 1)
	var stats *BuildStats
	go func() {
		var berr error
		stats, berr = Build(Options{
			Dir:          filepath.Join(dir, "cube"),
			FactPath:     factPath,
			Hier:         hier,
			AggSpecs:     testSpecs(),
			MemoryBudget: memBudget,
			Metrics:      reg,
		})
		buildDone <- berr
	}()

	// Scrape while the build runs. The build takes orders of magnitude
	// longer than one scrape loop, so observing a running build span is
	// deterministic in practice; every scrape must be well-formed either
	// way.
	sawLiveBuild := false
	sawLiveMetrics := false
	sawDegraded := false
	for done := false; !done; {
		select {
		case err := <-buildDone:
			if err != nil {
				t.Fatal(err)
			}
			done = true
		default:
		}

		// Before the heap crosses the forced budget /healthz is 200 "ok";
		// after the crossing it must degrade to 503 naming the budget.
		code, body := httpGet(t, base+"/healthz")
		switch {
		case code == 200 && strings.TrimSpace(body) == "ok":
		case code == 503 && strings.Contains(body, "degraded") &&
			strings.Contains(body, "mem_budget_bytes"):
			sawDegraded = true
		default:
			t.Fatalf("/healthz = %d %q", code, body)
		}

		// /progress first: the Running-span check is the tightest race
		// against build completion, so give it the freshest chance.
		code, body = httpGet(t, base+"/progress")
		if code != 200 {
			t.Fatalf("/progress = %d", code)
		}
		var pj struct {
			Progress string         `json:"progress"`
			Snapshot *obsv.Snapshot `json:"snapshot"`
		}
		if err := json.Unmarshal([]byte(body), &pj); err != nil {
			t.Fatalf("/progress is not JSON: %v", err)
		}
		if pj.Snapshot != nil && !done {
			for _, sp := range pj.Snapshot.Spans {
				if sp.Name == "build" && sp.Running {
					if !sp.EndTime.IsZero() {
						t.Fatalf("running span has non-zero end time: %+v", sp)
					}
					sawLiveBuild = true
				}
			}
		}

		code, body = httpGet(t, base+"/metrics")
		if code != 200 {
			t.Fatalf("/metrics = %d", code)
		}
		metrics, err := obsv.ParseProm(strings.NewReader(body))
		if err != nil {
			t.Fatalf("/metrics is not valid Prometheus text: %v\n%s", err, body)
		}
		if _, ok := metrics[`cure_span_elapsed_seconds{path="build"}`]; ok && !done {
			sawLiveMetrics = true
		}
	}
	if !stats.Partitioned {
		t.Fatal("build did not partition; raise the table size or lower the budget")
	}
	if !sawLiveBuild || !sawLiveMetrics {
		t.Fatalf("never observed the build live (progress=%v, metrics=%v)", sawLiveBuild, sawLiveMetrics)
	}

	// SSE: one request must yield progress events.
	req, err := http.NewRequest("GET", base+"/progress?stream=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sseData := 0
	for sc.Scan() && sseData < 2 {
		if strings.HasPrefix(sc.Text(), "data: ") {
			sseData++
		}
	}
	resp.Body.Close()
	if sseData < 2 {
		t.Fatalf("SSE stream yielded %d data lines", sseData)
	}

	// pprof is mounted.
	if code, body := httpGet(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}

	// Query traffic on the same registry: its spans and counters join
	// the exposition.
	eng, err := query.Open(filepath.Join(dir, "cube"), query.Options{CacheFraction: 1, PinAggregates: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	id := eng.Enum().Encode([]int{0, 0, 0})
	if err := eng.NodeQuery(id, func(query.Row) error { return nil }); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	_, body := httpGet(t, base+"/metrics")
	metrics, err := obsv.ParseProm(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"cure_query_node_count",
		"cure_query_scan_nt_rows",
		"cure_query_node_latency_us_p99",
		"cure_partition_bytes_read",
		"cure_runtime_heap_inuse_bytes",
		`cure_span_elapsed_seconds{path="query.node"}`,
	} {
		if _, ok := metrics[name]; !ok {
			t.Fatalf("exposition missing %q after query traffic:\n%s", name, body)
		}
	}

	// Sampler evidence in the trace: mem_sample events during the build,
	// and a mem_budget "above" crossing against the forced low budget.
	smp.Stop()
	srv.Close()
	if err := reg.Trace().Flush(); err != nil {
		t.Fatal(err)
	}
	var memSamples, crossings int
	dec := json.NewDecoder(bytes.NewReader(trace.Bytes()))
	for dec.More() {
		var ev struct {
			Ev     string `json:"ev"`
			Dir    string `json:"dir"`
			Budget int64  `json:"budget"`
		}
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Ev {
		case "mem_sample":
			memSamples++
		case "mem_budget":
			if ev.Dir == "above" {
				crossings++
				if ev.Budget != memBudget {
					t.Fatalf("mem_budget event budget = %d, want %d", ev.Budget, memBudget)
				}
			}
		}
	}
	if memSamples < 1 {
		t.Fatal("no mem_sample events in trace")
	}
	if crossings < 1 {
		t.Fatal("no mem_budget crossing despite a 64KB budget")
	}
	if !sawDegraded {
		t.Fatal("/healthz never reported degraded despite the heap sitting above the forced budget")
	}
	if smp.Samples() < 1 {
		t.Fatal("sampler took no samples")
	}

	verifyCube(t, filepath.Join(dir, "cube"), hier, ft, testSpecs(), query.Options{CacheFraction: 1, PinAggregates: true})
}
