package core

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"cure/internal/lattice"
	"cure/internal/obsv"
	"cure/internal/query"
	"cure/internal/relation"
)

// duplicatedFact builds a fact table where every distinct dimension
// combination appears exactly twice, so no segment of the traversal is a
// trivial tuple and the plan visits (and materializes) every lattice node.
func duplicatedFact(t testing.TB, rows, seed int64) *relation.FactTable {
	t.Helper()
	base := randomFact(t, int(rows), seed)
	schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M1", "M2"}}
	ft := relation.NewFactTable(schema, base.Len()*2)
	dims := make([]int32, 3)
	meas := make([]float64, 2)
	for r := 0; r < base.Len(); r++ {
		for d := range dims {
			dims[d] = base.Dims[d][r]
		}
		meas = base.MeasureRow(r, meas)
		ft.Append(dims, meas)
		ft.Append(dims, meas)
	}
	return ft
}

// traceEvent is the superset of the JSONL event fields the tests read.
type traceEvent struct {
	Ev   string `json:"ev"`
	Node int64  `json:"node"`
	Edge string `json:"edge"`
	Mode string `json:"mode"`
	Alg  string `json:"alg"`
}

func parseTrace(t *testing.T, buf *bytes.Buffer) []traceEvent {
	t.Helper()
	var events []traceEvent
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for dec.More() {
		var ev traceEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("trace is not valid JSONL: %v", err)
		}
		events = append(events, ev)
	}
	return events
}

func traceNodeSet(events []traceEvent) map[int64]bool {
	nodes := map[int64]bool{}
	for _, ev := range events {
		if ev.Ev == "node" {
			nodes[ev.Node] = true
		}
	}
	return nodes
}

// TestTraceCoversTallestPlanNodes is the golden trace check: an in-memory
// build over a TT-free table must emit node events for exactly the nodes
// of the tallest plan P3 — which covers the entire lattice — and that set
// must agree with the independent lattice enumeration and the manifest.
func TestTraceCoversTallestPlanNodes(t *testing.T) {
	hier := paperHier(t)
	ft := duplicatedFact(t, 300, 11)
	reg := obsv.NewRegistry()
	var buf bytes.Buffer
	reg.SetTrace(obsv.NewTraceWriter(&buf))

	dir := t.TempDir()
	stats, err := BuildFromTable(ft, Options{Dir: dir, Hier: hier, AggSpecs: testSpecs(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TTs != 0 {
		t.Fatalf("duplicated table produced %d trivial tuples", stats.TTs)
	}
	if err := reg.Trace().Flush(); err != nil {
		t.Fatal(err)
	}
	events := parseTrace(t, &buf)
	visited := traceNodeSet(events)

	enum := lattice.NewEnum(hier)
	all := enum.AllNodes()
	if len(visited) != len(all) {
		t.Fatalf("trace visited %d distinct nodes, lattice has %d", len(visited), len(all))
	}
	for _, id := range all {
		if !visited[int64(id)] {
			t.Fatalf("trace missing node %d (%s)", id, enum.Name(id))
		}
	}
	// With no trivial tuples, every visited node materializes tuples.
	if stats.NodesMaterialized != len(all) {
		t.Fatalf("materialized %d nodes, want %d", stats.NodesMaterialized, len(all))
	}

	// Edge events carry the plan structure: both edge kinds and both
	// execution modes must appear (P3 has solid and dashed edges), and
	// every event field must be well-formed.
	modes := map[string]bool{}
	for _, ev := range events {
		if ev.Ev != "edge" {
			continue
		}
		if ev.Edge != "solid" && ev.Edge != "dashed" {
			t.Fatalf("edge event with edge=%q", ev.Edge)
		}
		if ev.Mode != "sort" && ev.Mode != "pipeline" {
			t.Fatalf("edge event with mode=%q", ev.Mode)
		}
		modes[ev.Edge] = true
	}
	if !modes["solid"] || !modes["dashed"] {
		t.Fatalf("trace lacks an edge kind: %v", modes)
	}

	// Counters corroborate the trace: segments counted == node events.
	var nodeEvents int64
	for _, ev := range events {
		if ev.Ev == "node" {
			nodeEvents++
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["core.segments"]; got != nodeEvents {
		t.Fatalf("core.segments = %d, node events = %d", got, nodeEvents)
	}
	if snap.Counters["core.tt_pruned"] != 0 {
		t.Fatalf("core.tt_pruned = %d, want 0", snap.Counters["core.tt_pruned"])
	}
}

// TestPartitionedBuildObservability is the out-of-core acceptance check:
// phase spans must account for the build's wall time, the partition I/O
// counters must respect §4's 2-reads-1-write bound, and the trace must
// still cover the whole lattice across both phases.
func TestPartitionedBuildObservability(t *testing.T) {
	hier := paperHier(t)
	ft := duplicatedFact(t, 400, 23)
	dir := t.TempDir()
	factPath := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(factPath, ft); err != nil {
		t.Fatal(err)
	}
	reg := obsv.NewRegistry()
	var buf bytes.Buffer
	reg.SetTrace(obsv.NewTraceWriter(&buf))

	stats, err := Build(Options{
		Dir:          filepath.Join(dir, "cube"),
		FactPath:     factPath,
		Hier:         hier,
		AggSpecs:     testSpecs(),
		MemoryBudget: 16_000,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partitioned {
		t.Fatal("build did not partition")
	}
	if err := reg.Trace().Flush(); err != nil {
		t.Fatal(err)
	}

	// Phase spans: the build root's direct children partition its wall
	// time; their sum must not exceed it and must account for the bulk
	// of BuildStats.Elapsed (the remainder is writer/pool setup).
	snap := reg.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "build" {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	root := snap.Spans[0]
	names := map[string]bool{}
	var childSum float64
	for _, c := range root.Children {
		childSum += c.ElapsedSec
		names[c.Name] = true
	}
	for _, want := range []string{"load", "partition.split", "partition.cube", "n.cube", "pool.flush", "finalize"} {
		if !names[want] {
			t.Fatalf("missing phase span %q (have %v)", want, names)
		}
	}
	elapsed := stats.Elapsed.Seconds()
	if childSum <= 0 || childSum > elapsed {
		t.Fatalf("phase sum %.6fs outside (0, %.6fs]", childSum, elapsed)
	}
	if childSum < 0.2*elapsed {
		t.Fatalf("phase sum %.6fs accounts for <20%% of Elapsed %.6fs", childSum, elapsed)
	}

	// 2-reads-1-write (§4): R is scanned once by the split and the
	// partitions are re-read once, against one write of the partitions.
	// Partition rows carry an extra row-id, so read/write lands between
	// 1.5 and 2.5 rather than exactly 2.
	read := snap.Counters["partition.bytes_read"]
	written := snap.Counters["partition.bytes_written"]
	if written <= 0 || read <= written {
		t.Fatalf("partition bytes: read=%d written=%d", read, written)
	}
	if ratio := float64(read) / float64(written); ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("read/write ratio = %.2f, want ≈2", ratio)
	}

	// The two phases together traverse the full lattice, and with no TTs
	// every node materializes.
	visited := traceNodeSet(parseTrace(t, &buf))
	enum := lattice.NewEnum(hier)
	all := enum.AllNodes()
	if len(visited) != len(all) {
		t.Fatalf("trace visited %d distinct nodes, lattice has %d", len(visited), len(all))
	}
	if stats.NodesMaterialized != len(all) {
		t.Fatalf("materialized %d nodes, want %d", stats.NodesMaterialized, len(all))
	}

	// Partition split events agree with the selection.
	var parts int
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for dec.More() {
		var ev struct {
			Ev string `json:"ev"`
		}
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Ev {
		case "partition":
			parts++
		}
	}
	if parts != stats.NumPartitions {
		t.Fatalf("%d partition events, want %d", parts, stats.NumPartitions)
	}

	verifyCube(t, filepath.Join(dir, "cube"), hier, ft, testSpecs(), query.Options{CacheFraction: 1, PinAggregates: true})
}

// BenchmarkBuildMetricsNil and BenchmarkBuildMetricsAttached compare the
// disabled (nil-registry) instrumentation path against a live registry:
// the nil path must show no measurable overhead over the seed build.
func BenchmarkBuildMetricsNil(b *testing.B) {
	benchmarkBuild(b, nil)
}

func BenchmarkBuildMetricsAttached(b *testing.B) {
	benchmarkBuild(b, obsv.NewRegistry())
}

func benchmarkBuild(b *testing.B, reg *obsv.Registry) {
	hier := paperHier(b)
	ft := randomFact(b, 2000, 5)
	dir := b.TempDir()
	factPath := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(factPath, ft); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := Options{
			Dir:      filepath.Join(dir, "cube"),
			FactPath: factPath,
			Hier:     hier,
			AggSpecs: testSpecs(),
			Metrics:  reg,
		}
		if _, err := Build(opts); err != nil {
			b.Fatal(err)
		}
	}
}
