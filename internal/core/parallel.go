package core

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cure/internal/obsv"
	"cure/internal/partition"
	"cure/internal/signature"
	"cure/internal/sortutil"
)

// parLimiter caps the extra goroutines a build may run beyond the ones
// that already own its phases. One limiter is shared by every parallel
// site — partition workers, the in-memory root fan-out, the node-N
// phase, and the nested fan-out inside each partition — so total
// concurrency never exceeds Options.Parallelism no matter how the
// sites compose.
type parLimiter struct {
	slots chan struct{}
}

// newParLimiter returns the limiter for a build, or nil (sequential
// everywhere) when the requested parallelism allows no extra workers.
func newParLimiter(parallelism int) *parLimiter {
	if parallelism <= 1 {
		return nil
	}
	l := &parLimiter{slots: make(chan struct{}, parallelism-1)}
	for i := 0; i < parallelism-1; i++ {
		l.slots <- struct{}{}
	}
	return l
}

// tryAcquire claims one extra-worker slot without blocking. The nil
// limiter never grants one, which is what makes sequential builds take
// the inline path at every site.
func (l *parLimiter) tryAcquire() bool {
	if l == nil {
		return false
	}
	select {
	case <-l.slots:
		return true
	default:
		return false
	}
}

func (l *parLimiter) release() { l.slots <- struct{}{} }

// limiterPool adapts the build's limiter to partition.WorkerPool so the
// scan pipeline's extra workers draw from the same build-wide cap as
// every other parallel site.
type limiterPool struct{ lim *parLimiter }

func (p limiterPool) TryAcquire() bool { return p.lim.tryAcquire() }
func (p limiterPool) Release()         { p.lim.release() }

// scanConfig assembles the partitioner's pipeline configuration from the
// build options: worker slots come from the shared limiter, batch/shard
// sizing from the scan knobs, and counters/spans from the metrics
// registry.
func scanConfig(opts Options, lim *parLimiter, span *obsv.Span) partition.ScanConfig {
	cfg := partition.ScanConfig{
		Parallelism: opts.Parallelism,
		BatchRows:   opts.ScanBatchRows,
		ShardRows:   opts.ScanShardRows,
		Reg:         opts.Metrics,
		Span:        span,
	}
	if lim != nil {
		cfg.Pool = limiterPool{lim}
	}
	return cfg
}

// maxSlots is the worker-state capacity a site must provision: slot 0
// is the calling goroutine, slots 1..cap(slots) are limiter grants.
func (l *parLimiter) maxSlots() int {
	if l == nil {
		return 1
	}
	return cap(l.slots) + 1
}

// runTasks runs task(slot, i) for every i in [0, n). The calling
// goroutine is slot 0 and always participates; up to n-1 helpers join
// on limiter grants. Work is claimed from a shared atomic counter —
// there is no channel hand-off, so a failing worker cannot strand a
// producer the way a jobs-channel pool can. The first error stops new
// claims; every error that did occur is reported via errors.Join.
//
// A panicking task does not kill its goroutine silently: the first
// panic (from any slot) is captured, remaining claims stop, the helpers
// drain, and the panic is re-raised on the calling goroutine — so it
// propagates up the build's own stack with whatever context the task's
// own deferred obsv.CapturePanic attached, instead of crashing the
// process from an anonymous worker.
func runTasks(lim *parLimiter, n int, task func(slot, i int) error) error {
	if n <= 0 {
		return nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, n)
	var panicMu sync.Mutex
	var panicVal any
	capture := func(v any) {
		panicMu.Lock()
		if panicVal == nil {
			panicVal = v
		}
		panicMu.Unlock()
		failed.Store(true)
	}
	loop := func(slot int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n || failed.Load() {
				return
			}
			if err := task(slot, i); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}
	}
	extra := 0
	for extra < n-1 && lim.tryAcquire() {
		extra++
	}
	var wg sync.WaitGroup
	for s := 1; s <= extra; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			defer lim.release()
			defer func() {
				if v := recover(); v != nil {
					capture(v)
				}
			}()
			loop(slot)
		}(s)
	}
	func() {
		defer func() {
			if v := recover(); v != nil {
				capture(v)
			}
		}()
		loop(0)
	}()
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return errors.Join(errs...)
}

// Test hook: CURE_TEST_PANIC=worker makes the first parallel cube
// worker task panic, so the exec-based flight-recorder test can crash a
// real build through the production panic path. Read once; fires once.
var (
	testPanicOnce  sync.Once
	testPanicMode  string
	testPanicFired atomic.Bool
)

func injectTestPanic(site string) bool {
	testPanicOnce.Do(func() { testPanicMode = os.Getenv("CURE_TEST_PANIC") })
	return testPanicMode == site && testPanicFired.CompareAndSwap(false, true)
}

// nodePath renders the node the executor is currently computing as its
// dimension.level names ("Product.Class,Outlet.ALL") — the attribution
// the panic wrappers put into diagnostic bundles.
func (ex *executor) nodePath() string {
	var b strings.Builder
	for d, lv := range ex.levels {
		if d > 0 {
			b.WriteByte(',')
		}
		b.WriteString(ex.hier.Dims[d].Name)
		b.WriteByte('.')
		b.WriteString(ex.hier.Dims[d].LevelName(lv))
	}
	return b.String()
}

// segRun is one run of equal key codes in a freshly sorted root
// segment — an independent subproblem of the Figure 13 recursion.
type segRun struct{ lo, hi int }

// parCtx is one executor's fan-out state: the build-wide limiter, the
// span that parents the per-batch "seg" spans, and the lazily built
// per-slot worker executors.
type parCtx struct {
	lim      *parLimiter
	span     *obsv.Span
	reg      *obsv.Registry
	poolCap  int          // per-worker signature-pool capacity (pre-sharded)
	batching int          // target batches per fan-out (≈ 4 × parallelism)
	workers  []*segWorker // slot-indexed; [0] stays nil (the owning executor)
	runs     []segRun     // scratch, reused across fan-outs
}

// segWorker is one slot's private cubing state: a cloned executor that
// shares the parent's fact table and index array (batches touch
// disjoint subranges) but owns its sorter, level state, aggregate
// scratch, and a sharded signature pool. Its trivial-tuple and pool
// statistics merge into the parent's BuildStats in finishPar.
type segWorker struct {
	ex  *executor
	tts int64
}

func (p *parCtx) newSegWorker(parent *executor) (*segWorker, error) {
	pool, err := signature.NewPool(len(parent.specs), p.poolCap, parent.w)
	if err != nil {
		return nil, err
	}
	pool.ForceFormat = parent.pool.ForceFormat
	pool.Metrics = p.reg
	w := &segWorker{}
	ex := &executor{
		table:         parent.table,
		hier:          parent.hier,
		specs:         parent.specs,
		enum:          parent.enum,
		pool:          pool,
		w:             parent.w,
		countCol:      parent.countCol,
		minCount:      parent.minCount,
		shortPlan:     parent.shortPlan,
		idx:           parent.idx,
		levels:        make([]int, len(parent.levels)),
		baseLevel:     make([]int, len(parent.baseLevel)),
		aggBuf:        make([]float64, len(parent.specs)),
		ttWritten:     &w.tts,
		tr:            parent.tr,
		cSortCounting: parent.cSortCounting,
		cSortQuick:    parent.cSortQuick,
		cSortRows:     parent.cSortRows,
		cSegments:     parent.cSegments,
		cTTPruned:     parent.cTTPruned,
		cIcePruned:    parent.cIcePruned,
	}
	ex.sorter.ForceQuick = parent.sorter.ForceQuick
	ex.sorter.ForceCounting = parent.sorter.ForceCounting
	w.ex = ex
	return w, nil
}

// fanOut distributes the runs of the freshly sorted full-table segment
// across the worker pool: runs are packed into size-balanced batches
// (longest first, so one hot run under skew fills a batch alone instead
// of serializing the build) and each batch is cubed by one slot. The
// false return means the segment collapsed to a single run and the
// caller should recurse sequentially — the next dimension down offers
// fan-out again through the same hook.
func (ex *executor) fanOut(dim int, key sortutil.Keyer) (bool, error) {
	p := ex.par
	seg := ex.idx
	p.runs = p.runs[:0]
	lo := 0
	for lo < len(seg) {
		code := key.Key(seg[lo])
		hi := lo + 1
		for hi < len(seg) && key.Key(seg[hi]) == code {
			hi++
		}
		p.runs = append(p.runs, segRun{lo, hi})
		lo = hi
	}
	if len(p.runs) < 2 {
		return false, nil
	}
	batches := batchRuns(p.runs, p.batching)
	// Snapshot the traversal state workers must enter with: the parent
	// executor keeps mutating its own levels while cubing slot 0's
	// batches.
	levels := append([]int(nil), ex.levels...)
	base := append([]int(nil), ex.baseLevel...)
	err := runTasks(p.lim, len(batches), func(slot, bi int) error {
		wex := ex
		// wex rebinds to the slot's worker below; the closure sees the
		// rebound value, so a panic names the worker that actually ran.
		defer obsv.CapturePanic(p.reg, func() string {
			return fmt.Sprintf("cube worker slot=%d batch=%d node=%s span=%s",
				slot, bi, wex.nodePath(), p.span.Path())
		})
		if injectTestPanic("worker") {
			panic("injected test panic (CURE_TEST_PANIC=worker)")
		}
		if slot > 0 {
			w := p.workers[slot]
			if w == nil {
				var werr error
				if w, werr = p.newSegWorker(ex); werr != nil {
					return werr
				}
				p.workers[slot] = w
			}
			copy(w.ex.levels, levels)
			copy(w.ex.baseLevel, base)
			wex = w.ex
		}
		var rows int64
		for _, r := range batches[bi] {
			rows += int64(r.hi - r.lo)
		}
		sp := p.span.Child("seg")
		sp.AddRowsIn(rows)
		defer sp.End()
		for _, r := range batches[bi] {
			if err := wex.executePlan(r.lo, r.hi, dim+1); err != nil {
				return err
			}
		}
		return nil
	})
	return true, err
}

// batchRuns packs runs into at most maxBatches size-balanced batches
// (greedy longest-processing-time: biggest run first, into the lightest
// batch). Oversubscribing the workers ~4× lets the dynamic claiming in
// runTasks smooth whatever imbalance the packing leaves.
func batchRuns(runs []segRun, maxBatches int) [][]segRun {
	if maxBatches < 2 {
		maxBatches = 2
	}
	nb := maxBatches
	if nb > len(runs) {
		nb = len(runs)
	}
	order := make([]int, len(runs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa := runs[order[a]].hi - runs[order[a]].lo
		sb := runs[order[b]].hi - runs[order[b]].lo
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})
	batches := make([][]segRun, nb)
	loads := make([]int, nb)
	for _, ri := range order {
		min := 0
		for b := 1; b < nb; b++ {
			if loads[b] < loads[min] {
				min = b
			}
		}
		batches[min] = append(batches[min], runs[ri])
		loads[min] += runs[ri].hi - runs[ri].lo
	}
	return batches
}

// attachPar arms one executor for segment fan-out under span. The
// signature budget is sharded across Parallelism workers exactly like
// the partition-worker pools. A nil limiter leaves the executor
// sequential.
func attachPar(ex *executor, lim *parLimiter, span *obsv.Span, opts *Options) {
	if lim == nil {
		return
	}
	ex.par = &parCtx{
		lim:      lim,
		span:     span,
		reg:      opts.Metrics,
		poolCap:  shardedPoolCap(opts),
		batching: 4 * opts.Parallelism,
		workers:  make([]*segWorker, lim.maxSlots()),
	}
}

// shardedPoolCap is the per-worker signature-pool capacity: the build's
// pool budget split across Parallelism workers (floor 1024), so
// parallel builds honor roughly the same memory envelope as sequential
// ones.
func shardedPoolCap(opts *Options) int {
	poolCap := opts.PoolCapacity
	switch {
	case poolCap == NoPool:
		return 0
	case poolCap == 0:
		poolCap = DefaultPoolCapacity
	}
	if opts.Parallelism > 1 {
		poolCap /= opts.Parallelism
		if poolCap < 1024 {
			poolCap = 1024
		}
	}
	return poolCap
}

// finishPar flushes the fan-out workers' pools and folds their trivial-
// tuple counts and signature statistics into stats. Call once, after
// the executor's last traversal; a no-op for sequential executors.
func (ex *executor) finishPar(stats *BuildStats) error {
	if ex.par == nil {
		return nil
	}
	var errs []error
	for _, w := range ex.par.workers {
		if w == nil {
			continue
		}
		if err := w.ex.pool.Flush(); err != nil {
			errs = append(errs, err)
			continue
		}
		stats.TTs += w.tts
		stats.workerPool = stats.workerPool.Add(w.ex.pool.Stats())
	}
	return errors.Join(errs...)
}
