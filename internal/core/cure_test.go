package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/query"
	"cure/internal/relation"
	"cure/internal/signature"
)

// paperHier builds the running example: A0(12)→A1(6)→A2(2), B0(8)→B1(3),
// flat C(4).
func paperHier(t testing.TB) *hierarchy.Schema {
	t.Helper()
	am1 := hierarchy.BuildContiguousMap(12, 6)
	am2 := hierarchy.ComposeMaps(am1, hierarchy.BuildContiguousMap(6, 2))
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1", "A2"}, []int32{12, 6, 2}, [][]int32{am1, am2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := hierarchy.NewLinearDim("B", []string{"B0", "B1"}, []int32{8, 3}, [][]int32{hierarchy.BuildContiguousMap(8, 3)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := hierarchy.NewSchema(a, b, hierarchy.NewFlatDim("C", 4))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomFact builds a fact table over paperHier's domains with integer
// measures (so float aggregation is exact).
func randomFact(t testing.TB, rows int, seed int64) *relation.FactTable {
	t.Helper()
	schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M1", "M2"}}
	ft := relation.NewFactTable(schema, rows)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		ft.Append(
			[]int32{int32(rng.Intn(12)), int32(rng.Intn(8)), int32(rng.Intn(4))},
			[]float64{float64(rng.Intn(20)), float64(rng.Intn(5))},
		)
	}
	return ft
}

func testSpecs() []relation.AggSpec {
	return []relation.AggSpec{
		{Func: relation.AggSum, Measure: 0},
		{Func: relation.AggCount},
	}
}

// referenceNode computes node id by brute force: group the fact table on
// the node's projected dims and aggregate.
func referenceNode(hier *hierarchy.Schema, enum *lattice.Enum, ft *relation.FactTable, specs []relation.AggSpec, id lattice.NodeID) map[string][]float64 {
	levels := enum.Decode(id, nil)
	groups := map[string]*relation.Aggregator{}
	meas := make([]float64, len(ft.Measures))
	for r := 0; r < ft.Len(); r++ {
		var key strings.Builder
		for d, l := range levels {
			if hier.Dims[d].IsAll(l) {
				continue
			}
			fmt.Fprintf(&key, "%d|", hier.Dims[d].MapCode(ft.Dims[d][r], l))
		}
		k := key.String()
		a, ok := groups[k]
		if !ok {
			a = relation.NewAggregator(specs)
			groups[k] = a
		}
		meas = ft.MeasureRow(r, meas)
		a.AddValues(meas)
	}
	out := make(map[string][]float64, len(groups))
	for k, a := range groups {
		out[k] = a.Values(nil)
	}
	return out
}

func rowKey(dims []int32) string {
	var b strings.Builder
	for _, d := range dims {
		fmt.Fprintf(&b, "%d|", d)
	}
	return b.String()
}

// verifyCube checks every lattice node of the cube against the reference.
func verifyCube(t *testing.T, dir string, hier *hierarchy.Schema, ft *relation.FactTable, specs []relation.AggSpec, engOpts query.Options) {
	t.Helper()
	eng, err := query.Open(dir, engOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	enum := eng.Enum()
	for _, id := range enum.AllNodes() {
		want := referenceNode(hier, enum, ft, specs, id)
		got := map[string][]float64{}
		err := eng.NodeQuery(id, func(row query.Row) error {
			k := rowKey(row.Dims)
			if _, dup := got[k]; dup {
				return fmt.Errorf("duplicate tuple %q in node %s", k, enum.Name(id))
			}
			got[k] = append([]float64(nil), row.Aggrs...)
			return nil
		})
		if err != nil {
			t.Fatalf("node %s: %v", enum.Name(id), err)
		}
		if len(got) != len(want) {
			t.Fatalf("node %s: %d tuples, want %d", enum.Name(id), len(got), len(want))
		}
		for k, w := range want {
			g, ok := got[k]
			if !ok {
				t.Fatalf("node %s: missing tuple %q", enum.Name(id), k)
			}
			for i := range w {
				if g[i] != w[i] {
					t.Fatalf("node %s tuple %q: aggrs %v, want %v", enum.Name(id), k, g, w)
				}
			}
		}
		// NodeCount agrees with the enumerated result.
		n, err := eng.NodeCount(id)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(want)) {
			t.Fatalf("node %s: NodeCount = %d, want %d", enum.Name(id), n, len(want))
		}
	}
}

func TestBuildVariantsMatchReference(t *testing.T) {
	hier := paperHier(t)
	ft := randomFact(t, 600, 42)
	specs := testSpecs()
	variants := []struct {
		name string
		mod  func(*Options)
	}{
		{"plain", func(o *Options) {}},
		{"plus", func(o *Options) { o.Plus = true }},
		{"dr", func(o *Options) { o.DimsInline = true }},
		{"dr_plus", func(o *Options) { o.DimsInline = true; o.Plus = true }},
		{"no_pool", func(o *Options) { o.PoolCapacity = NoPool }},
		{"tiny_pool", func(o *Options) { o.PoolCapacity = 7 }},
		{"force_format_a", func(o *Options) { o.ForceFormat = signature.FormatA }},
		{"force_format_b", func(o *Options) { o.ForceFormat = signature.FormatB }},
		{"quicksort", func(o *Options) { o.ForceQuickSort = true }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			opts := Options{Dir: t.TempDir(), Hier: hier, AggSpecs: specs}
			v.mod(&opts)
			stats, err := BuildFromTable(ft, opts)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Partitioned {
				t.Fatal("in-memory build partitioned")
			}
			verifyCube(t, opts.Dir, hier, ft, specs, query.Options{CacheFraction: 1, PinAggregates: true})
		})
	}
}

func TestBuildPartitionedMatchesReference(t *testing.T) {
	hier := paperHier(t)
	ft := randomFact(t, 800, 7)
	specs := testSpecs()
	dir := t.TempDir()
	factPath := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(factPath, ft); err != nil {
		t.Fatal(err)
	}
	// Budget forces partitioning: the table is 800 × 28 = 22,400 bytes;
	// a 16,000-byte budget loads at most 8,000 bytes of partition at a
	// time (3 partitions on A1) with node N under 4,000 bytes.
	opts := Options{
		Dir:          filepath.Join(dir, "cube"),
		FactPath:     factPath,
		Hier:         hier,
		AggSpecs:     specs,
		MemoryBudget: 16_000,
	}
	stats, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partitioned {
		t.Fatal("build did not partition")
	}
	if stats.NumPartitions < 2 {
		t.Fatalf("partitions = %d", stats.NumPartitions)
	}
	t.Logf("partitioned at level %d into %d partitions, N has %d rows", stats.PartitionLevel, stats.NumPartitions, stats.NRows)
	verifyCube(t, opts.Dir, hier, ft, specs, query.Options{CacheFraction: 1, PinAggregates: true})
}

func TestBuildPartitionedVariants(t *testing.T) {
	hier := paperHier(t)
	ft := randomFact(t, 500, 99)
	specs := testSpecs()
	for _, v := range []struct {
		name string
		mod  func(*Options)
	}{
		{"plus", func(o *Options) { o.Plus = true }},
		{"dr", func(o *Options) { o.DimsInline = true }},
	} {
		t.Run(v.name, func(t *testing.T) {
			dir := t.TempDir()
			factPath := filepath.Join(dir, "fact.bin")
			if err := relation.WriteFactFile(factPath, ft); err != nil {
				t.Fatal(err)
			}
			opts := Options{
				Dir:          filepath.Join(dir, "cube"),
				FactPath:     factPath,
				Hier:         hier,
				AggSpecs:     specs,
				MemoryBudget: 10_000,
			}
			v.mod(&opts)
			stats, err := Build(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !stats.Partitioned {
				t.Fatal("expected partitioned build")
			}
			verifyCube(t, opts.Dir, hier, ft, specs, query.Options{CacheFraction: 0.5, PinAggregates: true})
		})
	}
}

func TestFlatBuildMatchesFlatReference(t *testing.T) {
	hier := paperHier(t)
	ft := randomFact(t, 400, 3)
	specs := testSpecs()
	opts := Options{Dir: t.TempDir(), Hier: hier, AggSpecs: specs, Flat: true}
	if _, err := BuildFromTable(ft, opts); err != nil {
		t.Fatal(err)
	}
	// The flat cube is the cube of the flattened schema: 2^3 nodes.
	flat := hier.Flatten()
	eng, err := query.OpenDefault(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	enum := eng.Enum()
	if enum.NumNodes() != 8 {
		t.Fatalf("flat cube has %d nodes, want 8", enum.NumNodes())
	}
	for _, id := range enum.AllNodes() {
		want := referenceNode(flat, enum, ft, specs, id)
		count := 0
		if err := eng.NodeQuery(id, func(row query.Row) error {
			w, ok := want[rowKey(row.Dims)]
			if !ok {
				return fmt.Errorf("unexpected tuple %v", row.Dims)
			}
			if w[0] != row.Aggrs[0] || w[1] != row.Aggrs[1] {
				return fmt.Errorf("tuple %v: aggrs %v, want %v", row.Dims, row.Aggrs, w)
			}
			count++
			return nil
		}); err != nil {
			t.Fatalf("node %s: %v", enum.Name(id), err)
		}
		if count != len(want) {
			t.Fatalf("node %s: %d tuples, want %d", enum.Name(id), count, len(want))
		}
	}
}

func TestIcebergBuild(t *testing.T) {
	hier := paperHier(t)
	ft := randomFact(t, 500, 11)
	specs := testSpecs()
	const minCount = 4
	opts := Options{Dir: t.TempDir(), Hier: hier, AggSpecs: specs, Iceberg: minCount}
	stats, err := BuildFromTable(ft, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TTs != 0 {
		t.Errorf("iceberg cube stored %d TTs", stats.TTs)
	}
	eng, err := query.OpenDefault(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	enum := eng.Enum()
	for _, id := range enum.AllNodes() {
		want := referenceNode(hier, enum, ft, specs, id)
		// Keep only groups meeting the threshold.
		for k, v := range want {
			if v[1] < minCount {
				delete(want, k)
			}
		}
		got := map[string]bool{}
		if err := eng.NodeQuery(id, func(row query.Row) error {
			k := rowKey(row.Dims)
			w, ok := want[k]
			if !ok {
				return fmt.Errorf("tuple %q below threshold or wrong (aggrs %v)", k, row.Aggrs)
			}
			if w[0] != row.Aggrs[0] || w[1] != row.Aggrs[1] {
				return fmt.Errorf("tuple %q: %v want %v", k, row.Aggrs, w)
			}
			got[k] = true
			return nil
		}); err != nil {
			t.Fatalf("node %s: %v", enum.Name(id), err)
		}
		if len(got) != len(want) {
			t.Fatalf("node %s: %d tuples, want %d", enum.Name(id), len(got), len(want))
		}
	}
}

func TestIcebergQueryOnCompleteCube(t *testing.T) {
	hier := paperHier(t)
	ft := randomFact(t, 500, 13)
	specs := testSpecs()
	opts := Options{Dir: t.TempDir(), Hier: hier, AggSpecs: specs}
	if _, err := BuildFromTable(ft, opts); err != nil {
		t.Fatal(err)
	}
	eng, err := query.OpenDefault(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	enum := eng.Enum()
	const minCount = 5.0
	for _, id := range enum.AllNodes() {
		want := referenceNode(hier, enum, ft, specs, id)
		for k, v := range want {
			if v[1] <= minCount {
				delete(want, k)
			}
		}
		got := 0
		if err := eng.IcebergQuery(id, 1, minCount, func(row query.Row) error {
			w, ok := want[rowKey(row.Dims)]
			if !ok || w[0] != row.Aggrs[0] {
				return fmt.Errorf("unexpected iceberg tuple %v %v", row.Dims, row.Aggrs)
			}
			got++
			return nil
		}); err != nil {
			t.Fatalf("node %s: %v", enum.Name(id), err)
		}
		if got != len(want) {
			t.Fatalf("node %s: iceberg returned %d, want %d", enum.Name(id), got, len(want))
		}
	}
	// Bad arguments are rejected.
	if err := eng.IcebergQuery(0, 0, 5, func(query.Row) error { return nil }); err == nil {
		t.Error("non-COUNT aggregate accepted")
	}
	if err := eng.IcebergQuery(0, 1, 0, func(query.Row) error { return nil }); err == nil {
		t.Error("threshold below 1 accepted")
	}
}

func TestComplexHierarchyBuild(t *testing.T) {
	// 2-dim cube where the first dimension is Figure 5a's complex time
	// hierarchy; verifies the modified rule 2 still yields a correct,
	// complete cube.
	const days = 60
	timeDim := &hierarchy.Dim{
		Name: "time",
		Levels: []hierarchy.Level{
			{Name: "day", Card: days, RollsUpTo: []int{1, 2}},
			{Name: "week", Card: 9, Map: hierarchy.BuildContiguousMap(days, 9), RollsUpTo: []int{3}},
			{Name: "month", Card: 3, Map: hierarchy.BuildContiguousMap(days, 3), RollsUpTo: []int{3}},
			{Name: "year", Card: 1, Map: make([]int32, days)},
		},
	}
	if err := timeDim.Finalize(); err != nil {
		t.Fatal(err)
	}
	hier, err := hierarchy.NewSchema(timeDim, hierarchy.NewFlatDim("store", 5))
	if err != nil {
		t.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"time", "store"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, 300)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		ft.Append([]int32{int32(rng.Intn(days)), int32(rng.Intn(5))}, []float64{float64(rng.Intn(9))})
	}
	specs := testSpecs()
	opts := Options{Dir: t.TempDir(), Hier: hier, AggSpecs: specs}
	if _, err := BuildFromTable(ft, opts); err != nil {
		t.Fatal(err)
	}
	verifyCube(t, opts.Dir, hier, ft, specs, query.Options{CacheFraction: 1, PinAggregates: true})
}

func TestPoolSizeAffectsCubeSizeMonotonically(t *testing.T) {
	// Figure 18's claim: cube size decreases (weakly) with pool size.
	hier := paperHier(t)
	ft := randomFact(t, 800, 55)
	specs := testSpecs()
	var sizes []int64
	for _, cap := range []int{NoPool, 16, 256, 0 /* default = unbounded here */} {
		opts := Options{Dir: t.TempDir(), Hier: hier, AggSpecs: specs, PoolCapacity: cap}
		stats, err := BuildFromTable(ft, opts)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, stats.Sizes.Total())
	}
	if !sort.SliceIsSorted(sizes, func(i, j int) bool { return sizes[i] >= sizes[j] }) {
		t.Errorf("cube sizes not non-increasing with pool size: %v", sizes)
	}
}

func TestBuildStatsAndValidation(t *testing.T) {
	hier := paperHier(t)
	ft := randomFact(t, 200, 1)
	specs := testSpecs()
	opts := Options{Dir: t.TempDir(), Hier: hier, AggSpecs: specs}
	stats, err := BuildFromTable(ft, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TTs == 0 || stats.Pool.Total == 0 {
		t.Errorf("suspicious stats: %+v", stats)
	}
	if stats.NodesMaterialized == 0 || stats.Relations < stats.NodesMaterialized {
		t.Errorf("relation accounting wrong: %+v", stats)
	}
	if stats.Elapsed <= 0 {
		t.Error("Elapsed not measured")
	}
	// Validation failures.
	if _, err := Build(Options{}); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := Build(Options{Dir: t.TempDir(), FactPath: "nope.bin", Hier: hier, AggSpecs: specs}); err == nil {
		t.Error("missing fact file accepted")
	}
	if _, err := BuildFromTable(ft, Options{Dir: t.TempDir(), FactPath: "x", Hier: hier, AggSpecs: specs}); err == nil {
		t.Error("BuildFromTable with FactPath accepted")
	}
}

func TestRollUpDrillDown(t *testing.T) {
	hier := paperHier(t)
	ft := randomFact(t, 100, 17)
	opts := Options{Dir: t.TempDir(), Hier: hier, AggSpecs: testSpecs()}
	if _, err := BuildFromTable(ft, opts); err != nil {
		t.Fatal(err)
	}
	eng, err := query.OpenDefault(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	enum := eng.Enum()
	base := enum.Encode([]int{0, 0, 0})
	up, ok := eng.RollUp(base, 0)
	if !ok || up != enum.Encode([]int{1, 0, 0}) {
		t.Errorf("RollUp = %d ok=%v", up, ok)
	}
	down, ok := eng.DrillDown(up, 0)
	if !ok || down != base {
		t.Errorf("DrillDown = %d ok=%v", down, ok)
	}
	root := enum.RootID()
	if _, ok := eng.DrillDown(base, 0); ok {
		t.Error("drill below base succeeded")
	}
	if _, ok := eng.RollUp(root, 0); ok {
		t.Error("roll above ALL succeeded")
	}
}

func TestBuildEmptyAndSingleRowTables(t *testing.T) {
	hier := paperHier(t)
	specs := testSpecs()
	// Empty table: a valid cube with no tuples anywhere.
	empty := relation.NewFactTable(&relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M1", "M2"}}, 0)
	opts := Options{Dir: t.TempDir(), Hier: hier, AggSpecs: specs}
	stats, err := BuildFromTable(empty, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TTs != 0 || stats.Pool.Total != 0 {
		t.Errorf("empty build stats = %+v", stats)
	}
	eng, err := query.OpenDefault(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range eng.Enum().AllNodes() {
		if err := eng.NodeQuery(id, func(query.Row) error {
			return fmt.Errorf("tuple in empty cube")
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()

	// Single row: one TT at the root (∅) shared by the entire lattice.
	single := relation.NewFactTable(empty.Schema, 1)
	single.Append([]int32{3, 2, 1}, []float64{10, 20})
	opts2 := Options{Dir: t.TempDir(), Hier: hier, AggSpecs: specs}
	stats2, err := BuildFromTable(single, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.TTs != 1 {
		t.Errorf("single-row build stored %d TTs, want 1 (shared from the root)", stats2.TTs)
	}
	verifyCube(t, opts2.Dir, hier, single, specs, query.Options{CacheFraction: 1, PinAggregates: true})
}

func TestMinMaxAggregatesEndToEnd(t *testing.T) {
	hier := paperHier(t)
	ft := randomFact(t, 300, 77)
	specs := []relation.AggSpec{
		{Func: relation.AggSum, Measure: 0},
		{Func: relation.AggCount},
		{Func: relation.AggMin, Measure: 1},
		{Func: relation.AggMax, Measure: 1},
	}
	opts := Options{Dir: t.TempDir(), Hier: hier, AggSpecs: specs}
	if _, err := BuildFromTable(ft, opts); err != nil {
		t.Fatal(err)
	}
	verifyCube(t, opts.Dir, hier, ft, specs, query.Options{CacheFraction: 1, PinAggregates: true})
}

func TestConcurrentEngines(t *testing.T) {
	// Each query.Engine is single-goroutine, but independent engines over
	// one cube directory must be safe to use concurrently.
	hier := paperHier(t)
	ft := randomFact(t, 400, 12)
	specs := testSpecs()
	opts := Options{Dir: t.TempDir(), Hier: hier, AggSpecs: specs}
	if _, err := BuildFromTable(ft, opts); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			eng, err := query.Open(opts.Dir, query.Options{CacheFraction: 0.5, PinAggregates: true})
			if err != nil {
				errs <- err
				return
			}
			defer eng.Close()
			for _, id := range eng.Enum().AllNodes() {
				if err := eng.NodeQuery(id, func(query.Row) error { return nil }); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBuildWithSortedDimsHeuristic(t *testing.T) {
	// The BUC cardinality-ordering heuristic: building over a schema
	// whose dims are pre-sorted by decreasing cardinality must produce
	// the same query results as the natural order (contents are order-
	// independent; only performance differs).
	hier := paperHier(t)
	ft := randomFact(t, 300, 31)
	specs := testSpecs()
	perm := hier.SortByCardinality()
	permDims := make([]*hierarchy.Dim, len(perm))
	names := make([]string, len(perm))
	for i, p := range perm {
		permDims[i] = hier.Dims[p]
		names[i] = hier.Dims[p].Name
	}
	permHier, err := hierarchy.NewSchema(permDims...)
	if err != nil {
		t.Fatal(err)
	}
	permFt := relation.NewFactTable(&relation.Schema{DimNames: names, MeasureNames: ft.Schema.MeasureNames}, ft.Len())
	dims := make([]int32, len(perm))
	meas := make([]float64, ft.Schema.NumMeasures())
	for r := 0; r < ft.Len(); r++ {
		for i, p := range perm {
			dims[i] = ft.Dims[p][r]
		}
		meas = ft.MeasureRow(r, meas)
		permFt.Append(dims, meas)
	}
	opts := Options{Dir: t.TempDir(), Hier: permHier, AggSpecs: specs}
	if _, err := BuildFromTable(permFt, opts); err != nil {
		t.Fatal(err)
	}
	verifyCube(t, opts.Dir, permHier, permFt, specs, query.Options{CacheFraction: 1, PinAggregates: true})
}

func TestShortPlanBuildMatchesReference(t *testing.T) {
	// The P2 (shortest-plan) ablation variant must still produce a fully
	// correct cube; only its construction cost differs.
	hier := paperHier(t)
	ft := randomFact(t, 500, 61)
	specs := testSpecs()
	opts := Options{Dir: t.TempDir(), Hier: hier, AggSpecs: specs, ShortPlan: true}
	if _, err := BuildFromTable(ft, opts); err != nil {
		t.Fatal(err)
	}
	verifyCube(t, opts.Dir, hier, ft, specs, query.Options{CacheFraction: 1, PinAggregates: true})
}

func TestShortPlanRejectsPartitioned(t *testing.T) {
	hier := paperHier(t)
	ft := randomFact(t, 800, 3)
	dir := t.TempDir()
	factPath := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(factPath, ft); err != nil {
		t.Fatal(err)
	}
	_, err := Build(Options{
		Dir:          filepath.Join(dir, "cube"),
		FactPath:     factPath,
		Hier:         hier,
		AggSpecs:     testSpecs(),
		MemoryBudget: 16_000,
		ShortPlan:    true,
	})
	if err == nil {
		t.Error("ShortPlan with partitioning accepted")
	}
}

func TestParallelPartitionedBuildMatchesReference(t *testing.T) {
	hier := paperHier(t)
	ft := randomFact(t, 1200, 19)
	specs := testSpecs()
	dir := t.TempDir()
	factPath := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(factPath, ft); err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Dir:          filepath.Join(dir, "cube"),
		FactPath:     factPath,
		Hier:         hier,
		AggSpecs:     specs,
		MemoryBudget: 24_000,
		Parallelism:  4,
	}
	stats, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partitioned {
		t.Fatal("expected a partitioned build")
	}
	if stats.CatFormat != signature.FormatB {
		t.Errorf("parallel build format = %v, want pinned B", stats.CatFormat)
	}
	verifyCube(t, opts.Dir, hier, ft, specs, query.Options{CacheFraction: 1, PinAggregates: true})
}

func TestParallelBuildRandomized(t *testing.T) {
	// Chaos test: random schemas, data, budgets, and worker counts must
	// all verify against the fact table.
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 4; trial++ {
		cards := []int32{int32(6 + rng.Intn(20)), int32(4 + rng.Intn(10)), int32(2 + rng.Intn(6))}
		m := hierarchy.BuildContiguousMap(cards[0], cards[0]/2+1)
		a, err := hierarchy.NewLinearDim("A", []string{"a0", "a1"}, []int32{cards[0], cards[0]/2 + 1}, [][]int32{m})
		if err != nil {
			t.Fatal(err)
		}
		hier, err := hierarchy.NewSchema(a, hierarchy.NewFlatDim("B", cards[1]), hierarchy.NewFlatDim("C", cards[2]))
		if err != nil {
			t.Fatal(err)
		}
		schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M"}}
		rows := 300 + rng.Intn(900)
		ft := relation.NewFactTable(schema, rows)
		for i := 0; i < rows; i++ {
			ft.Append(
				[]int32{rng.Int31n(cards[0]), rng.Int31n(cards[1]), rng.Int31n(cards[2])},
				[]float64{float64(rng.Intn(11))},
			)
		}
		dir := t.TempDir()
		factPath := filepath.Join(dir, "fact.bin")
		if err := relation.WriteFactFile(factPath, ft); err != nil {
			t.Fatal(err)
		}
		specs := []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}}
		stats, err := Build(Options{
			Dir:          filepath.Join(dir, "cube"),
			FactPath:     factPath,
			Hier:         hier,
			AggSpecs:     specs,
			MemoryBudget: int64(rows) * 20 / 2, // forces partitioning more often than not
			Parallelism:  1 + rng.Intn(4),
			PoolCapacity: 1 << (4 + rng.Intn(10)),
		})
		if err != nil {
			// Some random budgets make partitioning infeasible; that is a
			// legitimate, documented failure mode.
			t.Logf("trial %d: build infeasible: %v", trial, err)
			continue
		}
		eng, err := query.OpenDefault(filepath.Join(dir, "cube"))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Verify(0, 1)
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("trial %d (partitioned=%v): %v", trial, stats.Partitioned, rep.Errors)
		}
	}
}

func TestPartitionedBuildWithSkewedFirstDim(t *testing.T) {
	// Heavily skewed dimension 0: modulo routing piles most rows into
	// one partition (exceeding its size estimate), which must degrade
	// gracefully, not break soundness or results.
	hier := paperHier(t)
	schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M1", "M2"}}
	ft := relation.NewFactTable(schema, 900)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 900; i++ {
		a := int32(0) // 80% of rows share one A value
		if rng.Intn(5) == 0 {
			a = int32(rng.Intn(12))
		}
		ft.Append([]int32{a, int32(rng.Intn(8)), int32(rng.Intn(4))}, []float64{float64(rng.Intn(9)), 1})
	}
	dir := t.TempDir()
	factPath := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(factPath, ft); err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()
	stats, err := Build(Options{
		Dir:          filepath.Join(dir, "cube"),
		FactPath:     factPath,
		Hier:         hier,
		AggSpecs:     specs,
		MemoryBudget: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partitioned {
		t.Fatal("expected partitioned build")
	}
	verifyCube(t, filepath.Join(dir, "cube"), hier, ft, specs, query.Options{CacheFraction: 1, PinAggregates: true})
}

// pairHier builds a schema that forces the pair-partitioning fallback
// with a 5,600-byte budget over 1,600 rows (R = 44,800 B, 16 partitions
// needed): dimension A's top level has only 4 values (too few partitions)
// while level 0 makes node N too big (R/16 > budget/4); the pair
// (A_1, B_1) offers 64 values with N1 = R/64 and N2 = R/256 both fitting.
func pairHier(t testing.TB) *hierarchy.Schema {
	t.Helper()
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1"}, []int32{64, 4}, [][]int32{hierarchy.BuildContiguousMap(64, 4)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := hierarchy.NewLinearDim("B", []string{"B0", "B1"}, []int32{256, 16}, [][]int32{hierarchy.BuildContiguousMap(256, 16)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := hierarchy.NewSchema(a, b, hierarchy.NewFlatDim("C", 5))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPairPartitionedBuildMatchesReference(t *testing.T) {
	hier := pairHier(t)
	schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M1", "M2"}}
	ft := relation.NewFactTable(schema, 1600)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1600; i++ {
		ft.Append(
			[]int32{int32(rng.Intn(64)), int32(rng.Intn(256)), int32(rng.Intn(5))},
			[]float64{float64(rng.Intn(12)), float64(rng.Intn(3))},
		)
	}
	dir := t.TempDir()
	factPath := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(factPath, ft); err != nil {
		t.Fatal(err)
	}
	specs := testSpecs()
	stats, err := Build(Options{
		Dir:          filepath.Join(dir, "cube"),
		FactPath:     factPath,
		Hier:         hier,
		AggSpecs:     specs,
		MemoryBudget: 5_600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partitioned {
		t.Fatal("expected a partitioned build")
	}
	eng, err := query.OpenDefault(filepath.Join(dir, "cube"))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Manifest().PartitionLevelB < 0 {
		eng.Close()
		t.Fatal("expected pair partitioning (PartitionLevelB set)")
	}
	eng.Close()
	verifyCube(t, filepath.Join(dir, "cube"), hier, ft, specs, query.Options{CacheFraction: 1, PinAggregates: true})
}

func TestPairPartitionedVariantsAndSkew(t *testing.T) {
	hier := pairHier(t)
	schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M1", "M2"}}
	for _, tc := range []struct {
		name string
		mod  func(*Options)
		seed int64
	}{
		{"plus", func(o *Options) { o.Plus = true }, 3},
		{"iceberg", func(o *Options) { o.Iceberg = 3 }, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ft := relation.NewFactTable(schema, 1600)
			rng := rand.New(rand.NewSource(tc.seed))
			for i := 0; i < 1600; i++ {
				ft.Append(
					[]int32{int32(rng.Intn(64)), int32(rng.Intn(256)), int32(rng.Intn(5))},
					[]float64{float64(rng.Intn(12)), float64(rng.Intn(3))},
				)
			}
			dir := t.TempDir()
			factPath := filepath.Join(dir, "fact.bin")
			if err := relation.WriteFactFile(factPath, ft); err != nil {
				t.Fatal(err)
			}
			specs := testSpecs()
			opts := Options{
				Dir:          filepath.Join(dir, "cube"),
				FactPath:     factPath,
				Hier:         hier,
				AggSpecs:     specs,
				MemoryBudget: 5_600,
			}
			tc.mod(&opts)
			stats, err := Build(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !stats.Partitioned {
				t.Fatal("expected partitioned build")
			}
			if opts.Iceberg > 1 {
				// Iceberg cubes: spot-check against thresholded reference.
				eng, err := query.OpenDefault(opts.Dir)
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
				enum := eng.Enum()
				for _, id := range enum.AllNodes() {
					want := referenceNode(hier, enum, ft, specs, id)
					for k, v := range want {
						if v[1] < float64(opts.Iceberg) {
							delete(want, k)
						}
					}
					got := 0
					if err := eng.NodeQuery(id, func(row query.Row) error {
						if _, ok := want[rowKey(row.Dims)]; !ok {
							return fmt.Errorf("unexpected tuple %v", row.Dims)
						}
						got++
						return nil
					}); err != nil {
						t.Fatalf("node %s: %v", enum.Name(id), err)
					}
					if got != len(want) {
						t.Fatalf("node %s: %d tuples, want %d", enum.Name(id), got, len(want))
					}
				}
				return
			}
			verifyCube(t, opts.Dir, hier, ft, specs, query.Options{CacheFraction: 1, PinAggregates: true})
		})
	}
}
