package core

import (
	"sync"

	"cure/internal/relation"
	"cure/internal/storage"
)

// resolverPageRows is the rows-per-page of the paged dimension resolver.
const resolverPageRows = 512

// resolverMaxPages bounds the paged resolver's memory (pages are evicted
// FIFO beyond this; compaction reads are clustered enough that a simple
// policy works).
const resolverMaxPages = 256

// newPagedResolver wraps a fact reader in a read-through page cache,
// serving base dimension codes by row-id. It exists for out-of-core
// CURE_DR builds, whose compaction step dereferences one fact row per
// normal tuple. The resolver is mutex-guarded: parallel finalize workers
// fold zone maps concurrently, and the cache (pages map, eviction order,
// measure scratch) is shared state.
func newPagedResolver(fr *relation.FactReader) storage.DimResolver {
	type page struct {
		id   int64
		data []byte
	}
	var mu sync.Mutex
	pages := map[int64]*page{}
	var order []int64
	rowWidth := fr.RowWidth()
	numDims := fr.Schema().NumDims()
	meas := make([]float64, fr.Schema().NumMeasures())
	return func(rrowid int64, dst []int32) error {
		mu.Lock()
		defer mu.Unlock()
		pid := rrowid / resolverPageRows
		p, ok := pages[pid]
		if !ok {
			first := pid * resolverPageRows
			count := int64(resolverPageRows)
			if first+count > fr.Rows() {
				count = fr.Rows() - first
			}
			data := make([]byte, int(count)*rowWidth)
			if err := fr.ReadRawAt(first, int(count), data); err != nil {
				return err
			}
			if len(order) >= resolverMaxPages {
				delete(pages, order[0])
				order = order[1:]
			}
			p = &page{id: pid, data: data}
			pages[pid] = p
			order = append(order, pid)
		}
		off := int(rrowid%resolverPageRows) * rowWidth
		fr.DecodeRow(p.data[off:off+rowWidth], dst[:numDims], meas)
		return nil
	}
}
