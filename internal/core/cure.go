// Package core implements the CURE algorithm itself (§6, Figure 13): the
// bottom-up depth-first traversal of the hierarchical execution plan
// (ExecutePlan / FollowEdge), trivial-tuple pruning, signature collection,
// the in-memory and externally partitioned build paths, iceberg cubes,
// and all the paper's variants — CURE, CURE+ (post-processed row-ids /
// bitmaps), CURE_DR / CURE_DR+ (NTs with inline dimension values), and
// FCURE / FCURE+ (flat cubes over hierarchical data).
package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cure/internal/hierarchy"
	"cure/internal/obsv"
	"cure/internal/partition"
	"cure/internal/relation"
	"cure/internal/signature"
	"cure/internal/storage"
)

// DefaultPoolCapacity matches the paper's experimental setting of a
// 1,000,000-signature pool.
const DefaultPoolCapacity = 1_000_000

// Options configures a cube build.
type Options struct {
	// Dir is the output cube directory.
	Dir string
	// FactPath is the fact table on disk. Leave empty when building with
	// BuildFromTable, which persists the table into the cube directory.
	FactPath string
	// Hier is the hierarchical schema (one Dim per fact-table dimension,
	// in column order).
	Hier *hierarchy.Schema
	// AggSpecs defines the cube's aggregates.
	AggSpecs []relation.AggSpec
	// MemoryBudget in bytes decides between the in-memory and the
	// externally partitioned path and sizes the partitions. Zero means
	// unlimited (always in-memory).
	MemoryBudget int64
	// PoolCapacity is the signature-pool size in signatures
	// (DefaultPoolCapacity if zero; use NoPool for a zero-length pool).
	PoolCapacity int
	// DimsInline selects CURE_DR (NTs store projected dimension values).
	DimsInline bool
	// Plus selects CURE+ (post-processing: sorted row-ids, bitmaps).
	Plus bool
	// Flat selects FCURE: the hierarchy is flattened to base levels and
	// only the 2^D flat nodes are built.
	Flat bool
	// Iceberg is the min-count threshold: groups of fewer source tuples
	// are neither stored nor refined (BUC-style iceberg cubes). Values
	// ≤ 1 build the complete cube.
	Iceberg int64
	// ForceQuickSort disables counting sort (skew ablation).
	ForceQuickSort bool
	// ShortPlan builds with the shortest hierarchical plan (the paper's
	// P2, Figure 3) instead of CURE's tallest plan (P3) — the §3.1 plan
	// ablation. In-memory builds only.
	ShortPlan bool
	// Parallelism caps the number of concurrent workers for the whole
	// build (≤1 = sequential, the paper's setting). It accelerates every
	// path: multi-partition builds cube partition files concurrently,
	// and after any root sort — the in-memory build, the node-N phase,
	// and each partition's own recursion — the resulting runs fan out
	// across the same worker budget (one shared semaphore caps the
	// total, so nested sites never oversubscribe). Each worker owns a
	// sorter and a shard of the signature-pool budget; parallel builds
	// therefore fix the CAT format up front (format (b), or the NT
	// fallback for a single aggregate) instead of deciding it from
	// statistics — the formats differ only in size, never in
	// correctness.
	Parallelism int
	// FinalizeParallelism overrides the worker cap of the finalize extent
	// pipeline (compression + fused zone maps). 0 inherits Parallelism;
	// ≤0 otherwise means sequential. The finalized cube is byte-identical
	// at every setting — the knob exists so benchmarks and tests can vary
	// finalize concurrency while holding the build itself fixed.
	FinalizeParallelism int
	// ScanBatchRows overrides the partitioner's decode batch size in
	// rows (≤ 0 picks enough rows for ~1 MB of raw data).
	ScanBatchRows int
	// ScanShardRows overrides the partitioner's shard size in rows
	// (≤ 0 picks 8 decode batches). Shard boundaries never depend on
	// Parallelism, so the pass is reproducible across worker counts.
	ScanShardRows int64
	// ForceFormat overrides the dynamic CAT-format decision.
	ForceFormat signature.Format
	// ZoneBlockRows is the zone-map block granularity Finalize indexes
	// the cube's extents at (0 = storage.DefaultZoneBlockRows, negative
	// disables zone maps).
	ZoneBlockRows int
	// Compression selects the extent storage format: "" or "none" keeps
	// the fixed-width v1 layout, "auto" rewrites every extent into
	// compressed columnar blocks at Finalize (block granularity = the
	// effective ZoneBlockRows, so zone pruning skips whole blocks), and
	// "sampled" is the same format with sampled codec selection (the
	// codec of a column is predicted from its first few blocks, with
	// exact brute force as the fallback).
	Compression string
	// TempDir holds partition files (default: Dir/tmp).
	TempDir string
	// KeepPartitions leaves partition files on disk after the build
	// (for inspection); by default they are removed.
	KeepPartitions bool
	// Metrics is the optional observability registry: when set, the
	// build records phase spans, sort/prune counters, partition I/O
	// bytes, pool occupancy, and per-relation write volumes into it, and
	// streams plan-traversal events to any attached trace sink. nil (the
	// default) disables all instrumentation at zero overhead.
	Metrics *obsv.Registry
}

// NoPool is the PoolCapacity sentinel for a zero-length signature pool
// (disables CAT identification entirely).
const NoPool = -1

// BuildStats reports what a build did.
type BuildStats struct {
	// Partitioned reports whether the external path ran.
	Partitioned bool
	// PartitionLevel is L when partitioned (-1 otherwise).
	PartitionLevel int
	// NumPartitions is the partition count when partitioned.
	NumPartitions int
	// NRows is the row count of the in-memory node N when partitioned.
	NRows int
	// TTs is the number of trivial tuples written.
	TTs int64
	// Pool carries the signature-pool statistics (NT/CAT split).
	Pool signature.Stats
	// CatFormat is the locked CAT storage format.
	CatFormat signature.Format
	// Sizes is the cube's on-disk footprint.
	Sizes storage.Sizes
	// NodesMaterialized counts lattice nodes holding at least one tuple.
	NodesMaterialized int
	// Relations counts non-empty per-node relations (≤ 3 per node), the
	// quantity the paper contrasts with the 3·2^D worst case.
	Relations int
	// Elapsed is the wall-clock build time.
	Elapsed time.Duration

	// workerPool accumulates the signature statistics of per-worker
	// pools (partition workers and segment fan-out); Build folds it
	// into Pool.
	workerPool signature.Stats
}

// Build constructs the cube of the fact table at opts.FactPath following
// Algorithm CURE of Figure 13: if the table fits in the memory budget it
// is loaded and cubed in memory; otherwise it is partitioned on the
// selected level L of dimension 0, the partitions are cubed one at a time
// (covering all nodes with dimension 0 at levels ≤ L), and the rest of
// the cube is computed from the in-memory node N.
func Build(opts Options) (*BuildStats, error) {
	start := time.Now()
	if err := validate(&opts); err != nil {
		return nil, err
	}
	reg := opts.Metrics
	if opts.MemoryBudget > 0 {
		// Declare the budget up front so the runtime sampler (and any
		// /metrics scraper) can check §4's budget adherence externally.
		reg.Gauge(obsv.BudgetGaugeName).Set(opts.MemoryBudget)
	}
	root := reg.StartSpan("build")
	defer root.End() // ends early on success; ending twice is a no-op

	loadSpan := root.Child("load")
	fr, err := relation.OpenFactReader(opts.FactPath)
	if err != nil {
		return nil, err
	}
	rows := fr.Rows()
	rBytes := rows * int64(fr.RowWidth())
	if fr.Schema().NumDims() != opts.Hier.NumDims() {
		fr.Close()
		return nil, fmt.Errorf("core: fact table has %d dims, hierarchy %d", fr.Schema().NumDims(), opts.Hier.NumDims())
	}

	effHier := opts.Hier
	if opts.Flat {
		effHier = opts.Hier.Flatten()
	}

	var resolver storage.DimResolver
	var table *relation.FactTable
	inMemory := opts.MemoryBudget <= 0 || rBytes <= opts.MemoryBudget/2
	if inMemory {
		fr.Close()
		if table, err = relation.ReadFactFile(opts.FactPath); err != nil {
			return nil, err
		}
		loadSpan.AddRowsIn(rows)
		loadSpan.AddBytesRead(rBytes)
		resolver = func(rrowid int64, dst []int32) error {
			for d := range dst {
				dst[d] = table.Dims[d][rrowid]
			}
			return nil
		}
	} else {
		defer fr.Close()
		// The CURE_DR compaction resolves one fact row per NT tuple; a
		// paged read-through cache keeps that from degenerating into one
		// random read per tuple.
		resolver = newPagedResolver(fr)
	}
	loadSpan.End()

	if opts.ShortPlan && !inMemory {
		return nil, errors.New("core: ShortPlan (P2 ablation) supports in-memory builds only")
	}
	lim := newParLimiter(opts.Parallelism)
	finPar := opts.FinalizeParallelism
	if finPar == 0 {
		finPar = opts.Parallelism
	}
	var finPool storage.WorkerPool
	if lim != nil {
		// Finalize workers draw from the same build-wide limiter as every
		// other parallel site.
		finPool = limiterPool{lim}
	}
	w, err := storage.NewWriter(storage.Options{
		Dir:           opts.Dir,
		Hier:          effHier,
		AggSpecs:      opts.AggSpecs,
		FactFile:      factRef(opts.Dir, opts.FactPath),
		FactRows:      rows,
		DimsInline:    opts.DimsInline,
		Plus:          opts.Plus,
		ShortPlan:     opts.ShortPlan,
		Resolver:      resolver,
		Iceberg:       opts.Iceberg,
		ZoneBlockRows: opts.ZoneBlockRows,
		Compression:   opts.Compression,
		Parallelism:   finPar,
		Pool:          finPool,
		Metrics:       reg,
	})
	if err != nil {
		return nil, err
	}
	poolCap := opts.PoolCapacity
	switch {
	case poolCap == NoPool:
		poolCap = 0
	case poolCap == 0:
		poolCap = DefaultPoolCapacity
	}
	if opts.Parallelism > 1 && opts.ForceFormat == signature.FormatUndecided {
		// Independent worker pools cannot share the dynamic format
		// decision; pin the always-correct format up front.
		if len(opts.AggSpecs) == 1 {
			opts.ForceFormat = signature.FormatNT
		} else {
			opts.ForceFormat = signature.FormatB
		}
	}
	pool, err := signature.NewPool(len(opts.AggSpecs), poolCap, w)
	if err != nil {
		w.Abort()
		return nil, err
	}
	pool.ForceFormat = opts.ForceFormat
	pool.Metrics = reg

	if lim != nil {
		// Concurrent workers append through the shared writer.
		w.Lock()
	}
	stats := &BuildStats{PartitionLevel: -1}
	if inMemory {
		err = buildInMemory(table, effHier, opts, lim, pool, w, stats, root)
	} else {
		err = buildPartitioned(opts, effHier, rBytes, lim, pool, w, stats, root)
	}
	if err != nil {
		w.Abort()
		return nil, err
	}
	flushSpan := root.Child("pool.flush")
	if err := pool.Flush(); err != nil {
		w.Abort()
		return nil, err
	}
	flushSpan.End()
	finSpan := root.Child("finalize")
	w.SetFinalizeSpan(finSpan)
	m, err := w.Finalize(pool.Format())
	if err != nil {
		return nil, err
	}
	finSpan.End()
	stats.Pool = pool.Stats().Add(stats.workerPool)
	stats.CatFormat = m.CatFormat
	stats.Sizes = m.Sizes
	stats.NodesMaterialized = len(m.Nodes)
	for _, nm := range m.Nodes {
		if nm.NTRows > 0 {
			stats.Relations++
		}
		if nm.TTRows > 0 {
			stats.Relations++
		}
		if nm.CATRows > 0 {
			stats.Relations++
		}
	}
	root.End()
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// BuildFromTable persists an in-memory fact table into the cube directory
// and builds its cube in memory (no partitioning).
func BuildFromTable(t *relation.FactTable, opts Options) (*BuildStats, error) {
	if opts.FactPath != "" {
		return nil, errors.New("core: BuildFromTable must not set FactPath")
	}
	if opts.Dir == "" {
		return nil, errors.New("core: missing cube directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	opts.FactPath = filepath.Join(opts.Dir, "fact.bin")
	if err := relation.WriteFactFile(opts.FactPath, t); err != nil {
		return nil, err
	}
	opts.MemoryBudget = 0
	return Build(opts)
}

func validate(opts *Options) error {
	if opts.Dir == "" {
		return errors.New("core: missing cube directory")
	}
	if opts.FactPath == "" {
		return errors.New("core: missing fact path")
	}
	if opts.Hier == nil {
		return errors.New("core: missing hierarchy schema")
	}
	if len(opts.AggSpecs) == 0 {
		return errors.New("core: need at least one aggregate")
	}
	if opts.TempDir == "" {
		opts.TempDir = filepath.Join(opts.Dir, "tmp")
	}
	return nil
}

// factRef records the fact file relative to the cube dir when it lives
// inside it (keeping such cubes relocatable) and as an absolute path
// otherwise (so queries resolve it regardless of the working directory).
func factRef(dir, factPath string) string {
	absDir, err1 := filepath.Abs(dir)
	absFact, err2 := filepath.Abs(factPath)
	if err1 != nil || err2 != nil {
		return factPath
	}
	if rel, err := filepath.Rel(absDir, absFact); err == nil && filepath.Dir(rel) == "." && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return absFact
}

func buildInMemory(table *relation.FactTable, hier *hierarchy.Schema, opts Options, lim *parLimiter, pool *signature.Pool, w *storage.Writer, stats *BuildStats, root *obsv.Span) error {
	span := root.Child("cube")
	span.AddRowsIn(int64(table.Len()))
	defer span.End()
	ex := newExecutor(table, hier, opts.AggSpecs, -1, pool, w, opts.Iceberg, opts.ForceQuickSort, opts.Metrics)
	ex.shortPlan = opts.ShortPlan
	attachPar(ex, lim, span, &opts)
	if err := ex.run(stats); err != nil {
		return err
	}
	return ex.finishPar(stats)
}

// partitionReadBytes charges the phase-1 re-read of a partition file to
// the 2-reads-1-write accounting (§4): the split pass already counted
// one read of R and one write of the partitions.
func partitionReadBytes(reg *obsv.Registry, path string) {
	if reg == nil {
		return
	}
	if fi, err := os.Stat(path); err == nil {
		reg.Counter("partition.bytes_read").Add(fi.Size())
	}
}

func buildPartitioned(opts Options, hier *hierarchy.Schema, rBytes int64, lim *parLimiter, pool *signature.Pool, w *storage.Writer, stats *BuildStats, root *obsv.Span) error {
	reg := opts.Metrics
	// Memory split: half the budget for a loaded partition, a quarter
	// for node N (the signature pool and sort scratch take the rest).
	partBudget := opts.MemoryBudget / 2
	nBudget := opts.MemoryBudget / 4
	choice, err := partition.SelectLevelObs(hier.Dims[0], rBytes, partBudget, nBudget, reg)
	if err != nil {
		// §4's omitted extension: fall back to partitioning on a pair of
		// dimensions when no single level of dimension 0 is feasible.
		if hier.NumDims() >= 2 {
			if pairChoice, perr := partition.SelectLevelPair(hier.Dims[0], hier.Dims[1], rBytes, partBudget, nBudget); perr == nil {
				return buildPartitionedPair(opts, hier, pairChoice, lim, pool, w, stats, root)
			}
		}
		return err
	}
	splitSpan := root.Child("partition.split")
	splitSpan.AddBytesRead(rBytes)
	res, err := partition.PartitionScan(opts.FactPath, opts.TempDir, hier, opts.AggSpecs, choice, scanConfig(opts, lim, splitSpan))
	if err != nil {
		return err
	}
	splitSpan.End()
	if !opts.KeepPartitions {
		defer os.RemoveAll(opts.TempDir)
	}
	L := choice.Level
	w.SetPartitionLevel(L)
	stats.Partitioned = true
	stats.PartitionLevel = L
	stats.NumPartitions = choice.NumPartitions
	stats.NRows = res.N.Len()

	// Phase 1: every partition covers the nodes with dimension 0 at
	// levels [0, L] (Figure 13 lines 13–16: FollowEdge at level L).
	// Partitions are disjoint and sound, so with Parallelism > 1 they
	// are cubed by concurrent workers, each with its own signature pool
	// (the writer serializes the actual appends).
	cubeSpan := root.Child("partition.cube")
	if lim != nil {
		if err := runPartitionsParallel(res.PartitionPaths, L, hier, opts, lim, w, stats, cubeSpan); err != nil {
			return err
		}
	} else {
		for _, pp := range res.PartitionPaths {
			pt, err := relation.ReadFactFile(pp)
			if err != nil {
				return err
			}
			partitionReadBytes(reg, pp)
			if pt.Len() == 0 {
				continue
			}
			ps := cubeSpan.Child("part")
			ps.AddRowsIn(int64(pt.Len()))
			ex := newExecutor(pt, hier, opts.AggSpecs, -1, pool, w, opts.Iceberg, opts.ForceQuickSort, reg)
			if err := ex.runPartition(L, stats); err != nil {
				return err
			}
			ps.End()
		}
	}
	cubeSpan.End()

	// Phase 2: all remaining nodes from N (lines 17–20: start dimension
	// 0 at its top level, never descend below L+1).
	if res.N.Len() > 0 {
		nSpan := root.Child("n.cube")
		nSpan.AddRowsIn(int64(res.N.Len()))
		defer nSpan.End()
		ex := newExecutor(res.N, hier, res.NSpecs, res.NCountCol, pool, w, opts.Iceberg, opts.ForceQuickSort, reg)
		ex.baseLevel[0] = L + 1
		attachPar(ex, lim, nSpan, &opts)
		if err := ex.run(stats); err != nil {
			return err
		}
		return ex.finishPar(stats)
	}
	return nil
}

// runPartitionsParallel cubes the partitions on the shared worker
// budget. Each task owns a signature pool (flushed when its partition
// is done) so classification needs no cross-worker coordination; the
// shared writer is already armed for locking, and a task's executor may
// itself fan out whenever limiter slots are idle (fewer partitions than
// workers, or a skewed straggler). Work is claimed from an atomic
// counter, not a channel — the old channel-fed pool deadlocked when
// every worker had errored and returned while the producer still
// blocked on the unbuffered jobs channel. Errors from all partitions
// are aggregated with errors.Join, each wrapped with its path.
func runPartitionsParallel(paths []string, level int, hier *hierarchy.Schema, opts Options, lim *parLimiter, w *storage.Writer, stats *BuildStats, cubeSpan *obsv.Span) error {
	reg := opts.Metrics
	poolCap := shardedPoolCap(&opts)
	type taskResult struct {
		tts  int64
		pool signature.Stats
	}
	results := make([]taskResult, len(paths))
	err := runTasks(lim, len(paths), func(slot, i int) error {
		pp := paths[i]
		defer obsv.CapturePanic(reg, func() string {
			return fmt.Sprintf("partition worker slot=%d partition=%s", slot, pp)
		})
		pt, err := relation.ReadFactFile(pp)
		if err != nil {
			return fmt.Errorf("core: partition %s: %w", pp, err)
		}
		partitionReadBytes(reg, pp)
		if pt.Len() == 0 {
			return nil
		}
		pool, err := signature.NewPool(len(opts.AggSpecs), poolCap, w)
		if err != nil {
			return fmt.Errorf("core: partition %s: %w", pp, err)
		}
		pool.ForceFormat = opts.ForceFormat
		pool.Metrics = reg
		ps := cubeSpan.Child("part")
		ps.AddRowsIn(int64(pt.Len()))
		ex := newExecutor(pt, hier, opts.AggSpecs, -1, pool, w, opts.Iceberg, opts.ForceQuickSort, reg)
		attachPar(ex, lim, ps, &opts)
		var local BuildStats
		if err := ex.runPartition(level, &local); err != nil {
			return fmt.Errorf("core: partition %s: %w", pp, err)
		}
		if err := ex.finishPar(&local); err != nil {
			return fmt.Errorf("core: partition %s: %w", pp, err)
		}
		if err := pool.Flush(); err != nil {
			return fmt.Errorf("core: partition %s: %w", pp, err)
		}
		ps.End()
		results[i] = taskResult{tts: local.TTs, pool: pool.Stats().Add(local.workerPool)}
		return nil
	})
	for _, r := range results {
		stats.TTs += r.tts
		stats.workerPool = stats.workerPool.Add(r.pool)
	}
	return err
}

// buildPartitionedPair is the out-of-core path when partitioning needs a
// pair of dimensions (§4's omitted extension): partitions sound on
// {A_L, B_M} cover the nodes with both dimensions at fine levels; the
// in-memory node N1 covers dimension 0 above L; N2 covers the remaining
// nodes (dimension 0 fine, dimension 1 above M).
func buildPartitionedPair(opts Options, hier *hierarchy.Schema, choice partition.PairChoice, lim *parLimiter, pool *signature.Pool, w *storage.Writer, stats *BuildStats, root *obsv.Span) error {
	reg := opts.Metrics
	splitSpan := root.Child("partition.split")
	res, err := partition.PartitionPairScan(opts.FactPath, opts.TempDir, hier, opts.AggSpecs, choice, scanConfig(opts, lim, splitSpan))
	if err != nil {
		return err
	}
	splitSpan.End()
	if !opts.KeepPartitions {
		defer os.RemoveAll(opts.TempDir)
	}
	L, M := choice.LevelA, choice.LevelB
	w.SetPartitionLevelPair(L, M)
	stats.Partitioned = true
	stats.PartitionLevel = L
	stats.NumPartitions = choice.NumPartitions
	stats.NRows = res.N1.Len() + res.N2.Len()

	// Phase 1: each partition covers the subtrees rooted at {A_i, B_M}
	// for every i ∈ [0, L].
	cubeSpan := root.Child("partition.cube")
	for _, pp := range res.PartitionPaths {
		pt, err := relation.ReadFactFile(pp)
		if err != nil {
			return err
		}
		partitionReadBytes(reg, pp)
		if pt.Len() == 0 {
			continue
		}
		ps := cubeSpan.Child("part")
		ps.AddRowsIn(int64(pt.Len()))
		ex := newExecutor(pt, hier, opts.AggSpecs, -1, pool, w, opts.Iceberg, opts.ForceQuickSort, reg)
		for la := 0; la <= L; la++ {
			if err := ex.runPartitionPair(la, M, stats); err != nil {
				return err
			}
		}
		ps.End()
	}
	cubeSpan.End()
	// Phase 2: N1 yields every node with dimension 0 above L (or ALL).
	nSpan := root.Child("n.cube")
	defer nSpan.End()
	if res.N1.Len() > 0 {
		nSpan.AddRowsIn(int64(res.N1.Len()))
		ex := newExecutor(res.N1, hier, res.NSpecs, res.NCountCol, pool, w, opts.Iceberg, opts.ForceQuickSort, reg)
		ex.baseLevel[0] = L + 1
		attachPar(ex, lim, nSpan, &opts)
		if err := ex.run(stats); err != nil {
			return err
		}
		if err := ex.finishPar(stats); err != nil {
			return err
		}
	}
	// Phase 3: N2 yields the nodes with dimension 0 at levels ≤ L and
	// dimension 1 above M (or ALL), one root {A_i} per level.
	if res.N2.Len() > 0 {
		nSpan.AddRowsIn(int64(res.N2.Len()))
		ex := newExecutor(res.N2, hier, res.NSpecs, res.NCountCol, pool, w, opts.Iceberg, opts.ForceQuickSort, reg)
		attachPar(ex, lim, nSpan, &opts)
		for la := 0; la <= L; la++ {
			if err := ex.runN2Root(la, M+1, stats); err != nil {
				return err
			}
		}
		if err := ex.finishPar(stats); err != nil {
			return err
		}
	}
	return nil
}
