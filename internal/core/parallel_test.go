package core

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cure/internal/query"
	"cure/internal/relation"
	"cure/internal/signature"
)

// pairEquivFact draws rows in pairHier's code space (A:64, B:256, C:5)
// with integer-valued measures so aggregates stay exact across fold
// orders — the same shape TestPairPartitionedBuildMatchesReference uses.
func pairEquivFact(t *testing.T, seed int64) *relation.FactTable {
	t.Helper()
	schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M1", "M2"}}
	ft := relation.NewFactTable(schema, 1600)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 1600; i++ {
		ft.Append(
			[]int32{int32(rng.Intn(64)), int32(rng.Intn(256)), int32(rng.Intn(5))},
			[]float64{float64(rng.Intn(12)), float64(rng.Intn(3))},
		)
	}
	return ft
}

func buildAt(t *testing.T, dir string, ft *relation.FactTable, opts Options) *BuildStats {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	factPath := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(factPath, ft); err != nil {
		t.Fatal(err)
	}
	opts.Dir = filepath.Join(dir, "cube")
	opts.FactPath = factPath
	stats, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func diffCubes(t *testing.T, dirA, dirB string) {
	t.Helper()
	a, err := query.Open(dirA, query.Options{CacheFraction: 1, PinAggregates: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := query.Open(dirB, query.Options{CacheFraction: 1, PinAggregates: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rep, err := query.Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equal() {
		t.Fatalf("cubes differ: %v", rep.Differences)
	}
}

// TestParallelEquivalence is the correctness contract of the segment
// fan-out: for every build path — in-memory hierarchical, flat, iceberg,
// and externally partitioned — Parallelism 2 and 8 must answer every
// node query identically to the sequential build, write the same number
// of trivial tuples, and classify the same total number of signatures.
// Run with -race this is also the fan-out's data-race regression test.
func TestParallelEquivalence(t *testing.T) {
	hier := paperHier(t)
	configs := []struct {
		name string
		ft   *relation.FactTable
		opts Options
	}{
		{name: "hierarchical", ft: randomFact(t, 1500, 7), opts: Options{Hier: hier, AggSpecs: testSpecs()}},
		{name: "flat", ft: randomFact(t, 1500, 8), opts: Options{Hier: hier, AggSpecs: testSpecs(), Flat: true}},
		{name: "iceberg", ft: randomFact(t, 1500, 9), opts: Options{Hier: hier, AggSpecs: testSpecs(), Iceberg: 3}},
		{name: "partitioned", ft: randomFact(t, 1200, 19), opts: Options{Hier: hier, AggSpecs: testSpecs(), MemoryBudget: 24_000}},
		{name: "pair-partitioned", ft: pairEquivFact(t, 27), opts: Options{Hier: pairHier(t), AggSpecs: testSpecs(), MemoryBudget: 5_600}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			base := t.TempDir()
			seqOpts := cfg.opts
			seqOpts.Parallelism = 1
			seqDir := filepath.Join(base, "p1")
			seqStats := buildAt(t, seqDir, cfg.ft, seqOpts)
			for _, p := range []int{2, 8} {
				parOpts := cfg.opts
				parOpts.Parallelism = p
				parDir := filepath.Join(base, "p"+string(rune('0'+p)))
				parStats := buildAt(t, parDir, cfg.ft, parOpts)
				diffCubes(t, filepath.Join(seqDir, "cube"), filepath.Join(parDir, "cube"))
				if parStats.TTs != seqStats.TTs {
					t.Errorf("P=%d wrote %d TTs, sequential %d", p, parStats.TTs, seqStats.TTs)
				}
				if parStats.Pool.Total != seqStats.Pool.Total {
					t.Errorf("P=%d classified %d signatures, sequential %d", p, parStats.Pool.Total, seqStats.Pool.Total)
				}
				if cfg.opts.MemoryBudget > 0 && !parStats.Partitioned {
					t.Errorf("P=%d did not take the external path", p)
				}
			}
		})
	}
}

// TestParallelNoPoolStatsEquality pins the full NT/CAT accounting in the
// one configuration where the split is deterministic: with the pool
// disabled every signature is a normal tuple, so NT counts must match
// exactly across worker counts. (With pooling, sharding the capacity
// legitimately shifts the NT/CAT boundary; only Total is invariant.)
func TestParallelNoPoolStatsEquality(t *testing.T) {
	hier := paperHier(t)
	ft := randomFact(t, 1000, 21)
	var ref *BuildStats
	for _, p := range []int{1, 2, 8} {
		opts := Options{Hier: hier, AggSpecs: testSpecs(), PoolCapacity: NoPool, Parallelism: p}
		stats := buildAt(t, t.TempDir(), ft, opts)
		if stats.Pool.CatGroups != 0 {
			t.Fatalf("P=%d classified CATs with the pool disabled", p)
		}
		if ref == nil {
			ref = stats
			continue
		}
		if stats.Pool.NTs != ref.Pool.NTs || stats.Pool.Total != ref.Pool.Total || stats.TTs != ref.TTs {
			t.Errorf("P=%d stats (NT=%d total=%d tt=%d) != sequential (NT=%d total=%d tt=%d)",
				p, stats.Pool.NTs, stats.Pool.Total, stats.TTs, ref.Pool.NTs, ref.Pool.Total, ref.TTs)
		}
	}
}

// TestParallelInMemoryMatchesReference ties the parallel in-memory build
// to ground truth computed straight from the fact table (not just to the
// sequential build).
func TestParallelInMemoryMatchesReference(t *testing.T) {
	hier := paperHier(t)
	ft := randomFact(t, 900, 33)
	opts := Options{Hier: hier, AggSpecs: testSpecs(), Parallelism: 4}
	dir := t.TempDir()
	stats := buildAt(t, dir, ft, opts)
	if stats.Partitioned {
		t.Fatal("expected an in-memory build")
	}
	if stats.CatFormat != signature.FormatB {
		t.Errorf("parallel in-memory format = %v, want pinned B", stats.CatFormat)
	}
	verifyCube(t, filepath.Join(dir, "cube"), hier, ft, testSpecs(), query.Options{CacheFraction: 1, PinAggregates: true})
}

// TestRunPartitionsParallelErrorAggregation is the regression test for
// the worker-pool deadlock: with more partitions than workers and every
// read failing, the old channel-fed pool blocked forever on the jobs
// send once all workers had exited. The rewrite must return promptly
// with the failing partition's path in the error.
func TestRunPartitionsParallelErrorAggregation(t *testing.T) {
	hier := paperHier(t)
	paths := make([]string, 6)
	for i := range paths {
		paths[i] = filepath.Join(t.TempDir(), "part-missing.bin")
	}
	opts := Options{Hier: hier, AggSpecs: testSpecs(), Parallelism: 2}
	lim := newParLimiter(opts.Parallelism)
	done := make(chan error, 1)
	go func() {
		var stats BuildStats
		done <- runPartitionsParallel(paths, 0, hier, opts, lim, nil, &stats, nil)
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("reading nonexistent partitions succeeded")
		}
		if !strings.Contains(err.Error(), "partition") || !strings.Contains(err.Error(), "part-missing.bin") {
			t.Fatalf("error lacks per-partition context: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("runPartitionsParallel deadlocked on worker errors")
	}
}

func TestRunTasksRunsEverything(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		lim := newParLimiter(p)
		var ran [50]atomic.Int32
		err := runTasks(lim, len(ran), func(slot, i int) error {
			if slot < 0 || slot >= p {
				t.Errorf("slot %d outside [0, %d)", slot, p)
			}
			ran[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("p=%d: task %d ran %d times", p, i, got)
			}
		}
		// Every limiter slot must be back: a full build reuses the
		// limiter across many fan-outs.
		free := 0
		for lim.tryAcquire() {
			free++
		}
		if p > 1 && free != p-1 {
			t.Fatalf("p=%d: %d slots free after runTasks, want %d", p, free, p-1)
		}
	}
}

func TestRunTasksAggregatesErrors(t *testing.T) {
	// Sequential (nil limiter): the first failure stops later claims and
	// is the one reported.
	ran := 0
	err := runTasks(nil, 10, func(slot, i int) error {
		ran++
		if i == 2 {
			return errors.New("boom-2")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom-2") {
		t.Fatalf("err = %v", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d tasks after failure at task 2, want 3", ran)
	}
	// Concurrent failures all surface through errors.Join.
	lim := newParLimiter(4)
	err = runTasks(lim, 4, func(slot, i int) error {
		return errors.New("boom-all")
	})
	if err == nil {
		t.Fatal("no error reported")
	}
}

func TestBatchRunsBalanceAndCoverage(t *testing.T) {
	runs := []segRun{{0, 100}, {100, 101}, {101, 103}, {103, 106}, {106, 110}, {110, 115}}
	batches := batchRuns(runs, 4)
	if len(batches) < 2 || len(batches) > 4 {
		t.Fatalf("got %d batches, want 2..4", len(batches))
	}
	seen := map[segRun]int{}
	hotAlone := false
	for _, b := range batches {
		if len(b) == 0 {
			t.Fatal("empty batch")
		}
		rows := 0
		for _, r := range b {
			seen[r]++
			rows += r.hi - r.lo
		}
		if len(b) == 1 && b[0] == (segRun{0, 100}) {
			hotAlone = true
		}
		_ = rows
	}
	for _, r := range runs {
		if seen[r] != 1 {
			t.Fatalf("run %v assigned %d times", r, seen[r])
		}
	}
	if !hotAlone {
		t.Fatalf("hot run not isolated in its own batch: %v", batches)
	}
	// Two runs never collapse into one batch — that would silently
	// serialize the fan-out.
	two := batchRuns([]segRun{{0, 1}, {1, 500}}, 8)
	if len(two) != 2 {
		t.Fatalf("two runs packed into %d batches, want 2", len(two))
	}
}
