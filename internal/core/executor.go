package core

import (
	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/obsv"
	"cure/internal/relation"
	"cure/internal/signature"
	"cure/internal/sortutil"
	"cure/internal/storage"
)

// edgeKind tags the plan edge a FollowEdge call descends: solid edges
// introduce a dimension with a fresh sort, dashed edges refine the
// rightmost grouping dimension inside an existing order (the pipelined
// shared sorts of §3.2).
type edgeKind uint8

const (
	edgeSolid edgeKind = iota
	edgeDashed
)

func (e edgeKind) String() string {
	if e == edgeDashed {
		return "dashed"
	}
	return "solid"
}

// mode maps the edge kind to the paper's sort-vs-pipeline terminology.
func (e edgeKind) mode() string {
	if e == edgeDashed {
		return "pipeline"
	}
	return "sort"
}

// executor runs the ExecutePlan / FollowEdge recursion of Figure 13 over
// one in-memory input table (the full fact table, one partition, or the
// node N). Several executors may share one signature pool and one cube
// writer across phases of a partitioned build.
type executor struct {
	table *relation.FactTable
	hier  *hierarchy.Schema
	specs []relation.AggSpec
	enum  *lattice.Enum
	pool  *signature.Pool
	w     *storage.Writer

	// countCol is the measure column holding per-row source-tuple counts
	// when the input is pre-aggregated (node N), or -1 when every input
	// row is one source tuple.
	countCol int
	// minCount is the iceberg threshold (1 = complete cube).
	minCount int64

	sorter sortutil.Sorter
	// shortPlan switches the traversal to the paper's P2 (every solid
	// edge adds a dimension at *each* of its levels; no dashed edges).
	shortPlan bool
	idx       []int32
	// levels[d] is the hierarchy level of dimension d in the node being
	// computed; AllLevel means the dimension is aggregated away.
	levels []int
	// baseLevel[d] is the most detailed level the dashed edges may reach
	// for dimension d (0 normally; L+1 for dimension 0 in the N phase).
	baseLevel []int
	aggBuf    []float64
	ttWritten *int64

	// par, when non-nil, fans the runs of every full-table root sort out
	// across a bounded worker pool (see parallel.go). Worker executors
	// cloned from this one always have par == nil: their segments are
	// strict subranges, cubed inline.
	par *parCtx

	// Instrumentation: nil-safe counters (no-ops without a registry) and
	// an optional plan-traversal trace sink.
	tr            *obsv.TraceWriter
	cSortCounting *obsv.Counter
	cSortQuick    *obsv.Counter
	cSortRows     *obsv.Counter
	cSegments     *obsv.Counter
	cTTPruned     *obsv.Counter
	cIcePruned    *obsv.Counter
}

func newExecutor(t *relation.FactTable, hier *hierarchy.Schema, specs []relation.AggSpec, countCol int, pool *signature.Pool, w *storage.Writer, iceberg int64, forceQuick bool, reg *obsv.Registry) *executor {
	ex := &executor{
		table:    t,
		hier:     hier,
		specs:    specs,
		enum:     w.Enum(),
		pool:     pool,
		w:        w,
		countCol: countCol,
		minCount: iceberg,
	}
	if reg != nil {
		ex.tr = reg.Trace()
		ex.cSortCounting = reg.Counter("core.sort.counting")
		ex.cSortQuick = reg.Counter("core.sort.quick")
		ex.cSortRows = reg.Counter("core.sort.rows")
		ex.cSegments = reg.Counter("core.segments")
		ex.cTTPruned = reg.Counter("core.tt_pruned")
		ex.cIcePruned = reg.Counter("core.iceberg_pruned")
	}
	if ex.minCount < 1 {
		ex.minCount = 1
	}
	ex.sorter.ForceQuick = forceQuick
	ex.idx = sortutil.Iota(nil, t.Len())
	ex.levels = make([]int, hier.NumDims())
	ex.baseLevel = make([]int, hier.NumDims())
	for d, dim := range hier.Dims {
		ex.levels[d] = dim.AllLevel()
	}
	ex.aggBuf = make([]float64, len(specs))
	return ex
}

// run executes the full plan from the root (∅) node — Figure 13 line 8
// (in-memory path) and line 20 (N phase).
func (ex *executor) run(stats *BuildStats) error {
	ex.ttWritten = &stats.TTs
	if ex.table.Len() == 0 {
		return nil
	}
	return ex.executePlan(0, len(ex.idx), 0)
}

// runPartition executes the partition phase for one partition: dimension
// 0 enters directly at level L (Figure 13 lines 12–15), covering exactly
// the nodes with dimension 0 at levels ≤ L.
func (ex *executor) runPartition(level int, stats *BuildStats) error {
	ex.ttWritten = &stats.TTs
	if ex.table.Len() == 0 {
		return nil
	}
	ex.levels[0] = level
	err := ex.followEdge(0, len(ex.idx), 0, edgeSolid)
	ex.levels[0] = ex.hier.Dims[0].AllLevel()
	return err
}

// executePlan computes the tuple of the current node (identified by
// ex.levels) for the segment idx[lo:hi], then follows the plan's solid
// edges (adding each dimension ≥ dim at its levels directly under ALL)
// and dashed edges (refining dimension dim-1 one dashed-tree step).
func (ex *executor) executePlan(lo, hi, dim int) error {
	// Source-tuple count: row count for raw input, summed counts for the
	// pre-aggregated node N.
	var srcCount int64
	if ex.countCol < 0 {
		srcCount = int64(hi - lo)
	} else {
		col := ex.table.Measures[ex.countCol]
		for j := lo; j < hi; j++ {
			srcCount += int64(col[ex.idx[j]])
		}
	}
	if srcCount < ex.minCount {
		ex.cIcePruned.Inc()
		return nil // iceberg pruning: neither stored nor refined
	}
	node := ex.enum.Encode(ex.levels)
	ex.cSegments.Inc()
	if ex.tr != nil {
		ex.tr.Emit(obsv.NodeEvent{Ev: "node", Node: int64(node), Rows: hi - lo, Depth: dim})
	}
	if srcCount == 1 {
		// Trivial tuple: store only the R-rowid, once, at this (least
		// detailed) node, and prune — the whole plan subtree shares it.
		(*ex.ttWritten)++
		ex.cTTPruned.Inc()
		return ex.w.WriteTT(node, ex.table.RowID(int(ex.idx[lo])))
	}
	aggs := relation.AggregateRange(ex.table, ex.specs, ex.idx, lo, hi, ex.aggBuf)
	minRowid := ex.table.RowID(int(ex.idx[lo]))
	for j := lo + 1; j < hi; j++ {
		if id := ex.table.RowID(int(ex.idx[j])); id < minRowid {
			minRowid = id
		}
	}
	if err := ex.pool.Add(node, minRowid, aggs); err != nil {
		return err
	}

	numDims := ex.hier.NumDims()
	if ex.shortPlan {
		// Shortest plan (P2): every edge adds one dimension, at each of
		// its levels; refinement never happens in place, so sorts are
		// not shared across levels of a dimension.
		for d := dim; d < numDims; d++ {
			dimD := ex.hier.Dims[d]
			for l := dimD.AllLevel() - 1; l >= 0; l-- {
				ex.levels[d] = l
				if err := ex.followEdge(lo, hi, d, edgeSolid); err != nil {
					return err
				}
			}
			ex.levels[d] = dimD.AllLevel()
		}
		return nil
	}
	// Solid edges: bring in each remaining dimension at its level(s)
	// directly under ALL (rule 1; several for complex hierarchies).
	for d := dim; d < numDims; d++ {
		dimD := ex.hier.Dims[d]
		for _, top := range dimD.DashChildren(dimD.AllLevel()) {
			if top < ex.baseLevel[d] {
				continue
			}
			ex.levels[d] = top
			if err := ex.followEdge(lo, hi, d, edgeSolid); err != nil {
				return err
			}
		}
		ex.levels[d] = dimD.AllLevel()
	}
	// Dashed edges: refine the rightmost grouping dimension one step
	// down its dashed tree (rule 2 / modified rule 2).
	if dim >= 1 {
		dimP := ex.hier.Dims[dim-1]
		cur := ex.levels[dim-1]
		for _, c := range dimP.DashChildren(cur) {
			if c < ex.baseLevel[dim-1] {
				continue
			}
			ex.levels[dim-1] = c
			if err := ex.followEdge(lo, hi, dim-1, edgeDashed); err != nil {
				return err
			}
		}
		ex.levels[dim-1] = cur
	}
	return nil
}

// followEdge re-sorts the segment idx[lo:hi] on dimension dim at its
// current level and recurses into every run of equal codes (Figure 13's
// FollowEdge).
func (ex *executor) followEdge(lo, hi, dim int, edge edgeKind) error {
	key := ex.keyer(dim)
	seg := ex.idx[lo:hi]
	alg := ex.sorter.Sort(seg, key)
	switch alg {
	case sortutil.AlgCounting:
		ex.cSortCounting.Inc()
		ex.cSortRows.Add(int64(len(seg)))
	case sortutil.AlgQuick:
		ex.cSortQuick.Inc()
		ex.cSortRows.Add(int64(len(seg)))
	}
	if ex.tr != nil {
		ex.tr.Emit(obsv.EdgeEvent{
			Ev:    "edge",
			Node:  int64(ex.enum.Encode(ex.levels)),
			Edge:  edge.String(),
			Mode:  edge.mode(),
			Alg:   alg.String(),
			Dim:   dim,
			Level: ex.levels[dim],
			Rows:  len(seg),
		})
	}
	if ex.par != nil && lo == 0 && hi == len(ex.idx) {
		// A root sort over the whole table: its runs are independent
		// subproblems, so fan them out instead of recursing inline.
		if handled, err := ex.fanOut(dim, key); handled {
			return err
		}
	}
	runLo := 0
	for runLo < len(seg) {
		code := key.Key(seg[runLo])
		runHi := runLo + 1
		for runHi < len(seg) && key.Key(seg[runHi]) == code {
			runHi++
		}
		if err := ex.executePlan(lo+runLo, lo+runHi, dim+1); err != nil {
			return err
		}
		runLo = runHi
	}
	return nil
}

// keyer builds the sort key for dimension dim at its current level.
func (ex *executor) keyer(dim int) sortutil.Keyer {
	d := ex.hier.Dims[dim]
	lvl := ex.levels[dim]
	col := ex.table.Dims[dim]
	if lvl == 0 {
		return sortutil.SliceKeyer{Col: col, Hi: d.Card(0)}
	}
	return sortutil.MappedKeyer{Col: col, Map: d.Levels[lvl].Map, Hi: d.Card(lvl)}
}

// runPartitionPair executes one pair-partitioning root {A_la, B_lb}: the
// segment tree fixes dimension 0 at level la and enters dimension 1 at
// level lb, covering exactly the plan subtree rooted at that node (§4's
// pair extension). Dimension 0 never descends here — it is never the
// rightmost grouping dimension inside this subtree.
func (ex *executor) runPartitionPair(la, lb int, stats *BuildStats) error {
	ex.ttWritten = &stats.TTs
	if ex.table.Len() == 0 {
		return nil
	}
	ex.levels[0] = la
	ex.levels[1] = lb
	defer func() {
		ex.levels[0] = ex.hier.Dims[0].AllLevel()
		ex.levels[1] = ex.hier.Dims[1].AllLevel()
	}()
	key0 := ex.keyer(0)
	switch ex.sorter.Sort(ex.idx, key0) {
	case sortutil.AlgCounting:
		ex.cSortCounting.Inc()
		ex.cSortRows.Add(int64(len(ex.idx)))
	case sortutil.AlgQuick:
		ex.cSortQuick.Inc()
		ex.cSortRows.Add(int64(len(ex.idx)))
	}
	lo := 0
	for lo < len(ex.idx) {
		code := key0.Key(ex.idx[lo])
		hi := lo + 1
		for hi < len(ex.idx) && key0.Key(ex.idx[hi]) == code {
			hi++
		}
		// Inner segmentation on dimension 1 at level lb.
		if err := ex.followEdge(lo, hi, 1, edgeSolid); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// runN2Root executes one N2-phase root {A_la} over the pre-aggregated
// node N2: dimension 1 may only descend to level lbCap (= M+1), and
// dimension 0 is pinned at la.
func (ex *executor) runN2Root(la, lbCap int, stats *BuildStats) error {
	ex.ttWritten = &stats.TTs
	if ex.table.Len() == 0 {
		return nil
	}
	ex.levels[0] = la
	ex.baseLevel[0] = la // block dashed descent of dimension 0
	ex.baseLevel[1] = lbCap
	defer func() {
		ex.levels[0] = ex.hier.Dims[0].AllLevel()
		ex.baseLevel[0] = 0
		ex.baseLevel[1] = 0
	}()
	return ex.followEdge(0, len(ex.idx), 0, edgeSolid)
}
