package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cure/internal/relation"
	"cure/internal/storage"
)

// readCubeFiles loads a cube's extent files and manifest keyed by name
// (the finalize sidecar is excluded — it records wall clocks, which
// legitimately vary run to run).
func readCubeFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range []string{
		storage.NTFile, storage.TTFile, storage.CATFile,
		storage.AggFile, storage.BitmapFile, storage.ManifestFile,
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	return out
}

// TestFinalizeParallelismByteIdentity is the end-to-end contract of the
// finalize pipeline: with the construction phase held sequential, any
// FinalizeParallelism must produce byte-identical extent files and
// manifests — across the flat, hierarchical, and pair-partitioned build
// paths, for both exact and sampled codec selection. Run with -race this
// doubles as the pipeline's data-race regression test over real builds
// (including CURE_DR's shared paged resolver).
func TestFinalizeParallelismByteIdentity(t *testing.T) {
	cases := []struct {
		name string
		mode string
		opts Options
		seed int64
		pair bool
		rows int
	}{
		{name: "hierarchical", mode: storage.CompressionAuto, opts: Options{AggSpecs: testSpecs()}, seed: 7, rows: 1500},
		{name: "hierarchical-sampled", mode: storage.CompressionSampled, opts: Options{AggSpecs: testSpecs()}, seed: 7, rows: 1500},
		{name: "flat", mode: storage.CompressionAuto, opts: Options{AggSpecs: testSpecs(), Flat: true}, seed: 8, rows: 1500},
		{name: "pair-partitioned", mode: storage.CompressionAuto, opts: Options{AggSpecs: testSpecs(), MemoryBudget: 5_600}, seed: 27, pair: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.Compression = tc.mode
			opts.Parallelism = 1
			if tc.pair {
				opts.Hier = pairHier(t)
			} else {
				opts.Hier = paperHier(t)
			}
			ft := pairEquivFact(t, tc.seed)
			if !tc.pair {
				ft = randomFact(t, tc.rows, tc.seed)
			}

			// One shared fact file: the manifest embeds its path, and the
			// byte comparison must only see finalize-pipeline effects.
			base := t.TempDir()
			factPath := filepath.Join(base, "fact.bin")
			if err := relation.WriteFactFile(factPath, ft); err != nil {
				t.Fatal(err)
			}
			opts.FactPath = factPath

			var ref map[string][]byte
			for _, p := range []int{1, 2, 8} {
				opts.FinalizeParallelism = p
				cube := filepath.Join(base, "cube-fp"+string(rune('0'+p)))
				opts.Dir = cube
				if _, err := Build(opts); err != nil {
					t.Fatal(err)
				}
				got := readCubeFiles(t, cube)
				if ref == nil {
					ref = got
					continue
				}
				if len(got) != len(ref) {
					t.Fatalf("FinalizeParallelism=%d: %d files, want %d", p, len(got), len(ref))
				}
				for name, want := range ref {
					if !bytes.Equal(got[name], want) {
						t.Errorf("FinalizeParallelism=%d: %s differs from sequential finalize", p, name)
					}
				}
			}
		})
	}
}

// TestFinalizeSidecarFromBuild checks the wiring end to end: a core build
// leaves a finalize sidecar recording the configured parallelism and the
// fused pass's volume, and FinalizeParallelism=0 inherits Parallelism.
func TestFinalizeSidecarFromBuild(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Hier: paperHier(t), AggSpecs: testSpecs(),
		Compression: storage.CompressionAuto, Parallelism: 4,
	}
	buildAt(t, dir, randomFact(t, 1200, 5), opts)
	st, err := storage.ReadFinalizeStats(filepath.Join(dir, "cube"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Parallelism != 4 {
		t.Errorf("sidecar parallelism = %d, want 4 (inherited from Options.Parallelism)", st.Parallelism)
	}
	if st.Compression != storage.CompressionAuto {
		t.Errorf("sidecar compression = %q", st.Compression)
	}
	if st.Extents == 0 || st.Blocks == 0 {
		t.Errorf("sidecar records no pipeline volume: %+v", st)
	}
	if st.CompactSec <= 0 && st.CompressSec <= 0 {
		t.Errorf("sidecar records no finalize wall clock: %+v", st)
	}
}
