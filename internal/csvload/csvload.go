// Package csvload imports raw CSV data into the library's fact-table
// format: dimension columns are dictionary-encoded into dense int32 codes
// (first-seen order), measure columns are parsed as floats, and the
// resulting dictionaries can be persisted alongside the fact file and
// used to decode query results back into the original strings. It also
// derives hierarchy levels from classification functions over the raw
// values (e.g. "2024-03-15" → "2024-03" → "2024"), producing the level
// maps the cube builder consumes.
package csvload

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"cure/internal/hierarchy"
	"cure/internal/relation"
)

// Spec describes how to interpret a CSV stream.
type Spec struct {
	// DimCols are the header names of dimension columns, in the
	// dimension order of the resulting fact table.
	DimCols []string
	// MeasureCols are the header names of measure columns.
	MeasureCols []string
	// Comma is the field separator (',' when zero).
	Comma rune
	// AllowMissingMeasures treats empty measure fields as 0 instead of
	// failing.
	AllowMissingMeasures bool
}

// DimDict is the dictionary of one dimension: Values[code] is the
// original string of a code.
type DimDict struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
	index  map[string]int32
}

// Card returns the number of distinct values.
func (d *DimDict) Card() int32 { return int32(len(d.Values)) }

// Code returns the code of a raw value.
func (d *DimDict) Code(value string) (int32, bool) {
	d.ensureIndex()
	c, ok := d.index[value]
	return c, ok
}

// Value returns the raw string of a code ("" when out of range).
func (d *DimDict) Value(code int32) string {
	if code < 0 || int(code) >= len(d.Values) {
		return ""
	}
	return d.Values[code]
}

// add interns a value, returning its code.
func (d *DimDict) add(value string) int32 {
	d.ensureIndex()
	if c, ok := d.index[value]; ok {
		return c
	}
	c := int32(len(d.Values))
	d.Values = append(d.Values, value)
	d.index[value] = c
	return c
}

func (d *DimDict) ensureIndex() {
	if d.index == nil {
		d.index = make(map[string]int32, len(d.Values))
		for i, v := range d.Values {
			d.index[v] = int32(i)
		}
	}
}

// Dictionary bundles the per-dimension dictionaries of a fact table.
type Dictionary struct {
	Dims []*DimDict `json:"dims"`
}

// Save writes the dictionary as JSON.
func (d *Dictionary) Save(path string) error {
	data, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadDictionary reads a dictionary written by Save.
func LoadDictionary(path string) (*Dictionary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d := &Dictionary{}
	if err := json.Unmarshal(data, d); err != nil {
		return nil, fmt.Errorf("csvload: parsing dictionary %s: %w", path, err)
	}
	return d, nil
}

// Load reads a CSV stream (with a header row) into a fact table and its
// dictionaries.
func Load(r io.Reader, spec Spec) (*relation.FactTable, *Dictionary, error) {
	if len(spec.DimCols) == 0 {
		return nil, nil, errors.New("csvload: need at least one dimension column")
	}
	cr := csv.NewReader(r)
	if spec.Comma != 0 {
		cr.Comma = spec.Comma
	}
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("csvload: reading header: %w", err)
	}
	colIdx := map[string]int{}
	for i, name := range header {
		colIdx[name] = i
	}
	dimIdx := make([]int, len(spec.DimCols))
	for i, name := range spec.DimCols {
		idx, ok := colIdx[name]
		if !ok {
			return nil, nil, fmt.Errorf("csvload: dimension column %q not in header %v", name, header)
		}
		dimIdx[i] = idx
	}
	measIdx := make([]int, len(spec.MeasureCols))
	for i, name := range spec.MeasureCols {
		idx, ok := colIdx[name]
		if !ok {
			return nil, nil, fmt.Errorf("csvload: measure column %q not in header %v", name, header)
		}
		measIdx[i] = idx
	}

	dict := &Dictionary{}
	for _, name := range spec.DimCols {
		dict.Dims = append(dict.Dims, &DimDict{Name: name})
	}
	schema := &relation.Schema{DimNames: spec.DimCols, MeasureNames: spec.MeasureCols}
	if err := schema.Validate(); err != nil {
		return nil, nil, err
	}
	ft := relation.NewFactTable(schema, 1024)
	dims := make([]int32, len(dimIdx))
	meas := make([]float64, len(measIdx))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, nil, fmt.Errorf("csvload: line %d: %w", line, err)
		}
		for i, idx := range dimIdx {
			dims[i] = dict.Dims[i].add(rec[idx])
		}
		for i, idx := range measIdx {
			field := rec[idx]
			if field == "" && spec.AllowMissingMeasures {
				meas[i] = 0
				continue
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("csvload: line %d: measure %q: %w", line, spec.MeasureCols[i], err)
			}
			meas[i] = v
		}
		ft.Append(dims, meas)
	}
	return ft, dict, nil
}

// LoadFile is Load over a file path.
func LoadFile(path string, spec Spec) (*relation.FactTable, *Dictionary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Load(f, spec)
}

// LevelSpec derives one hierarchy level from raw dimension values:
// Classify maps a base value to its member at this level (e.g. a date
// string to its month).
type LevelSpec struct {
	Name     string
	Classify func(value string) string
}

// BuildDim turns a base dictionary plus derived-level specs (ordered fine
// to coarse) into a hierarchy dimension with consistent level maps and a
// dictionary per level. The classification of level i+1 is applied to the
// *base* values, and consistency (each level-i member maps to exactly one
// level-i+1 member) is enforced.
func BuildDim(base *DimDict, levels []LevelSpec) (*hierarchy.Dim, []*DimDict, error) {
	dim := &hierarchy.Dim{Name: base.Name}
	dim.Levels = append(dim.Levels, hierarchy.Level{Name: base.Name, Card: base.Card()})
	dicts := []*DimDict{base}
	prevMap := make([]int32, base.Card()) // base → previous level (identity initially)
	for i := range prevMap {
		prevMap[i] = int32(i)
	}
	prevDict := base
	for li, ls := range levels {
		levelDict := &DimDict{Name: ls.Name}
		m := make([]int32, base.Card())
		// memberOf[prevCode] remembers the level code each previous-level
		// member maps to, enforcing consistency.
		memberOf := make([]int32, prevDict.Card())
		for i := range memberOf {
			memberOf[i] = -1
		}
		for baseCode := int32(0); baseCode < base.Card(); baseCode++ {
			val := ls.Classify(base.Value(baseCode))
			code := levelDict.add(val)
			m[baseCode] = code
			prev := prevMap[baseCode]
			if memberOf[prev] == -1 {
				memberOf[prev] = code
			} else if memberOf[prev] != code {
				return nil, nil, fmt.Errorf(
					"csvload: level %q is inconsistent: %s member %q maps to both %q and %q",
					ls.Name, dim.Levels[li].Name, prevDict.Value(prev),
					levelDict.Value(memberOf[prev]), levelDict.Value(code))
			}
		}
		dim.Levels[li].RollsUpTo = []int{li + 1}
		dim.Levels = append(dim.Levels, hierarchy.Level{Name: ls.Name, Card: levelDict.Card(), Map: m})
		dicts = append(dicts, levelDict)
		prevMap = m
		prevDict = levelDict
	}
	if err := dim.Finalize(); err != nil {
		return nil, nil, err
	}
	return dim, dicts, nil
}
