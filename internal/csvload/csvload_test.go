package csvload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cure/internal/core"
	"cure/internal/hierarchy"
	"cure/internal/query"
	"cure/internal/relation"
)

const sampleCSV = `date,city,product,qty,price
2024-01-05,London,apples,3,1.5
2024-01-09,Paris,pears,2,2.0
2024-02-11,London,apples,1,1.5
2024-02-12,Berlin,plums,5,0.5
2024-03-01,Paris,apples,4,1.5
`

func TestLoadBasics(t *testing.T) {
	ft, dict, err := Load(strings.NewReader(sampleCSV), Spec{
		DimCols:     []string{"city", "product"},
		MeasureCols: []string{"qty", "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ft.Len() != 5 {
		t.Fatalf("rows = %d", ft.Len())
	}
	if len(dict.Dims) != 2 {
		t.Fatalf("dicts = %d", len(dict.Dims))
	}
	city := dict.Dims[0]
	if city.Card() != 3 {
		t.Errorf("city card = %d", city.Card())
	}
	// First-seen order.
	if city.Value(0) != "London" || city.Value(1) != "Paris" || city.Value(2) != "Berlin" {
		t.Errorf("city values = %v", city.Values)
	}
	if c, ok := city.Code("Paris"); !ok || c != 1 {
		t.Errorf("Code(Paris) = %d,%v", c, ok)
	}
	if _, ok := city.Code("Tokyo"); ok {
		t.Error("unknown value resolved")
	}
	if city.Value(99) != "" {
		t.Error("out-of-range Value")
	}
	// Row 3 (Berlin plums): dims (2, 2), measures (5, 0.5).
	if ft.Dims[0][3] != 2 || ft.Dims[1][3] != 2 || ft.Measures[0][3] != 5 || ft.Measures[1][3] != 0.5 {
		t.Errorf("row 3 = %v %v %v", ft.DimRow(3, nil), ft.Measures[0][3], ft.Measures[1][3])
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, err := Load(strings.NewReader(sampleCSV), Spec{}); err == nil {
		t.Error("no dims accepted")
	}
	if _, _, err := Load(strings.NewReader(sampleCSV), Spec{DimCols: []string{"nope"}}); err == nil {
		t.Error("unknown dim column accepted")
	}
	if _, _, err := Load(strings.NewReader(sampleCSV), Spec{DimCols: []string{"city"}, MeasureCols: []string{"nope"}}); err == nil {
		t.Error("unknown measure column accepted")
	}
	bad := "a,b\nx,notanumber\n"
	if _, _, err := Load(strings.NewReader(bad), Spec{DimCols: []string{"a"}, MeasureCols: []string{"b"}}); err == nil {
		t.Error("bad float accepted")
	}
	missing := "a,b\nx,\n"
	if _, _, err := Load(strings.NewReader(missing), Spec{DimCols: []string{"a"}, MeasureCols: []string{"b"}}); err == nil {
		t.Error("empty measure accepted without AllowMissingMeasures")
	}
	ft, _, err := Load(strings.NewReader(missing), Spec{DimCols: []string{"a"}, MeasureCols: []string{"b"}, AllowMissingMeasures: true})
	if err != nil {
		t.Fatal(err)
	}
	if ft.Measures[0][0] != 0 {
		t.Error("missing measure not zeroed")
	}
}

func TestDictionarySaveLoad(t *testing.T) {
	_, dict, err := Load(strings.NewReader(sampleCSV), Spec{DimCols: []string{"city"}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dict.json")
	if err := dict.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDictionary(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dims[0].Value(2) != "Berlin" {
		t.Errorf("round-tripped dict = %v", back.Dims[0].Values)
	}
	if c, ok := back.Dims[0].Code("London"); !ok || c != 0 {
		t.Error("index not rebuilt after load")
	}
	if _, err := LoadDictionary(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildDimDateHierarchy(t *testing.T) {
	ft, dict, err := Load(strings.NewReader(sampleCSV), Spec{
		DimCols:     []string{"date", "city"},
		MeasureCols: []string{"qty"},
	})
	if err != nil {
		t.Fatal(err)
	}
	dateDim, dicts, err := BuildDim(dict.Dims[0], []LevelSpec{
		{Name: "month", Classify: func(v string) string { return v[:7] }},
		{Name: "year", Classify: func(v string) string { return v[:4] }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dateDim.NumLevels() != 4 { // date, month, year, ALL
		t.Fatalf("levels = %d", dateDim.NumLevels())
	}
	if dateDim.Card(1) != 3 { // 2024-01, 2024-02, 2024-03
		t.Errorf("month card = %d", dateDim.Card(1))
	}
	if dateDim.Card(2) != 1 {
		t.Errorf("year card = %d", dateDim.Card(2))
	}
	if dicts[1].Value(dateDim.MapCode(0, 1)) != "2024-01" {
		t.Errorf("month of first date = %q", dicts[1].Value(dateDim.MapCode(0, 1)))
	}
	if !dateDim.FactorsThrough(1, 2) {
		t.Error("derived hierarchy does not factor")
	}

	// End to end: cube the imported table with the derived hierarchy and
	// answer "qty per month".
	hier, err := hierarchy.NewSchema(dateDim, hierarchy.NewFlatDim("city", dict.Dims[1].Card()))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "cube")
	if _, err := core.BuildFromTable(ft, core.Options{
		Dir: dir, Hier: hier,
		AggSpecs: []relation.AggSpec{{Func: relation.AggSum, Measure: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	eng, err := query.OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	monthNode := eng.Enum().Encode([]int{1, 1}) // month × ALL
	got := map[string]float64{}
	if err := eng.NodeQuery(monthNode, func(row query.Row) error {
		got[dicts[1].Value(row.Dims[0])] = row.Aggrs[0]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"2024-01": 5, "2024-02": 6, "2024-03": 4}
	for m, q := range want {
		if got[m] != q {
			t.Errorf("month %s qty = %v, want %v", m, got[m], q)
		}
	}
}

func TestBuildDimRejectsInconsistentLevels(t *testing.T) {
	base := &DimDict{Name: "x", Values: []string{"a1", "a2", "b1"}}
	// Level 1 groups by first letter; level 2 groups by last character —
	// "a1" and "a2" share a level-1 member but split at level 2.
	_, _, err := BuildDim(base, []LevelSpec{
		{Name: "first", Classify: func(v string) string { return v[:1] }},
		{Name: "last", Classify: func(v string) string { return v[1:] }},
	})
	if err == nil {
		t.Error("inconsistent hierarchy accepted")
	}
}

func TestLoadFileAndSemicolons(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	content := "a;m\nx;1\ny;2\n"
	if err := writeFile(path, content); err != nil {
		t.Fatal(err)
	}
	ft, _, err := LoadFile(path, Spec{DimCols: []string{"a"}, MeasureCols: []string{"m"}, Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if ft.Len() != 2 || ft.Measures[0][1] != 2 {
		t.Errorf("semicolon CSV parsed wrong: %d rows", ft.Len())
	}
	if _, _, err := LoadFile(filepath.Join(dir, "absent.csv"), Spec{DimCols: []string{"a"}}); err == nil {
		t.Error("missing file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
