package estimate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cure/internal/core"
	"cure/internal/gen"
	"cure/internal/hierarchy"
	"cure/internal/query"
	"cure/internal/relation"
)

func TestGroupsBasics(t *testing.T) {
	if Groups(0, 10) != 0 || Groups(10, 0) != 0 {
		t.Error("degenerate inputs must give 0")
	}
	if Groups(1, 100) != 1 {
		t.Error("one cell holds one group")
	}
	// t ≪ g: nearly every tuple lands alone → groups ≈ t.
	if g := Groups(1e9, 1000); math.Abs(g-1000) > 1 {
		t.Errorf("sparse Groups = %v, want ≈1000", g)
	}
	// t ≫ g: every cell hit → groups ≈ g.
	if g := Groups(10, 100000); math.Abs(g-10) > 0.01 {
		t.Errorf("dense Groups = %v, want ≈10", g)
	}
}

func TestSingletonsBasics(t *testing.T) {
	if Singletons(0, 5) != 0 || Singletons(5, 0) != 0 {
		t.Error("degenerate inputs must give 0")
	}
	if Singletons(1, 1) != 1 || Singletons(1, 5) != 0 {
		t.Error("single-cell cases wrong")
	}
	// Sparse: nearly all groups are singletons.
	if s := Singletons(1e9, 1000); math.Abs(s-1000) > 1 {
		t.Errorf("sparse Singletons = %v", s)
	}
	// Dense: singletons vanish.
	if s := Singletons(10, 100000); s > 1e-3 {
		t.Errorf("dense Singletons = %v", s)
	}
}

func TestGroupsMonotoneProperties(t *testing.T) {
	// Groups grows with t, is bounded by min(g, t), and singletons never
	// exceed groups.
	f := func(gRaw, tRaw uint16) bool {
		g := float64(gRaw%5000) + 1
		n := int64(tRaw%5000) + 1
		gr := Groups(g, n)
		if gr > g+1e-9 || gr > float64(n)+1e-9 || gr <= 0 {
			return false
		}
		if Groups(g, n+100) < gr {
			return false
		}
		return Singletons(g, n) <= gr+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGroupsMatchesSimulation(t *testing.T) {
	// Monte-Carlo check of Cardenas' formula.
	rng := rand.New(rand.NewSource(8))
	const g, n, trials = 50, 120, 200
	var sumGroups, sumSingles float64
	for tr := 0; tr < trials; tr++ {
		counts := make([]int, g)
		for i := 0; i < n; i++ {
			counts[rng.Intn(g)]++
		}
		for _, c := range counts {
			if c > 0 {
				sumGroups++
			}
			if c == 1 {
				sumSingles++
			}
		}
	}
	gotGroups := sumGroups / trials
	gotSingles := sumSingles / trials
	if math.Abs(gotGroups-Groups(g, n)) > 1.5 {
		t.Errorf("simulated groups %.2f vs formula %.2f", gotGroups, Groups(g, n))
	}
	if math.Abs(gotSingles-Singletons(g, n)) > 1.5 {
		t.Errorf("simulated singletons %.2f vs formula %.2f", gotSingles, Singletons(g, n))
	}
}

func TestCubeEstimateAgainstRealBuild(t *testing.T) {
	// Build a uniform synthetic cube and check the estimator's totals
	// land within a reasonable factor.
	ft, hier, err := gen.Synthetic(gen.SyntheticSpec{Dims: 4, Tuples: 2000, Zipf: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Cube(hier, int64(ft.Len()), 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	stats, err := core.BuildFromTable(ft, core.Options{
		Dir: dir, Hier: hier,
		AggSpecs: []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Count true cube tuples.
	eng, err := query.OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var trueTuples int64
	for _, id := range eng.Enum().AllNodes() {
		n, err := eng.NodeCount(id)
		if err != nil {
			t.Fatal(err)
		}
		trueTuples += n
	}
	ratio := est.FullTuples / float64(trueTuples)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("FullTuples estimate %.0f vs measured %d (ratio %.2f)", est.FullTuples, trueTuples, ratio)
	}
	// Non-trivial tuples ≈ signature-pool traffic.
	aggRatio := est.AggregatedTuples / float64(stats.Pool.Total)
	if aggRatio < 0.5 || aggRatio > 2 {
		t.Errorf("AggregatedTuples estimate %.0f vs pool %d (ratio %.2f)", est.AggregatedTuples, stats.Pool.Total, aggRatio)
	}
	// Nodes are sorted by size, largest first.
	for i := 1; i < len(est.Nodes); i++ {
		if est.Nodes[i].Tuples > est.Nodes[i-1].Tuples {
			t.Fatal("node estimates not sorted")
		}
	}
}

func TestCubeValidation(t *testing.T) {
	hier, err := hierarchy.NewSchema(hierarchy.NewFlatDim("A", 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Cube(hier, -1, 1); err == nil {
		t.Error("negative rows accepted")
	}
	if _, err := Cube(hier, 10, 0); err == nil {
		t.Error("zero aggregates accepted")
	}
}

func TestBuildPlan(t *testing.T) {
	hier := gen.APBSchema()
	schema := gen.APBSchemaRelation()
	// Small table, unlimited memory: in-memory.
	p, err := BuildPlan(hier, schema, 10_000, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.InMemory {
		t.Error("unlimited memory should plan in-memory")
	}
	// Large table, small budget: the partitioned path with a concrete
	// level choice.
	p2, err := BuildPlan(hier, schema, 5_000_000, 8<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.InMemory {
		t.Error("160 MB table with 8 MiB budget planned in-memory")
	}
	if p2.ChoiceErr != "" {
		t.Fatalf("level selection failed: %s", p2.ChoiceErr)
	}
	if p2.Choice.NumPartitions < 2 {
		t.Errorf("choice = %+v", p2.Choice)
	}
	// An unpartitionable first dimension reports the error, not a panic.
	tiny, err := hierarchy.NewSchema(hierarchy.NewFlatDim("A", 2), hierarchy.NewFlatDim("B", 2))
	if err != nil {
		t.Fatal(err)
	}
	p3, err := BuildPlan(tiny, &relation.Schema{DimNames: []string{"A", "B"}}, 1_000_000, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p3.InMemory || p3.ChoiceErr == "" {
		t.Errorf("expected infeasible plan, got %+v", p3)
	}
}
