// Package estimate predicts cube sizes and partitioning plans before
// anything is built — the planning arithmetic behind §4's observations
// and Table 1, generalized to whole schemas. Group counts use Cardenas'
// formula under the uniformity/independence assumptions the paper's own
// partition sizing makes; the estimates are advisory (real data with
// correlations or skew produces fewer distinct groups and more trivial
// tuples) and are validated against measured builds in the tests.
package estimate

import (
	"fmt"
	"math"
	"sort"

	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/partition"
	"cure/internal/relation"
)

// Groups is Cardenas' formula: the expected number of distinct cells hit
// when t tuples are thrown uniformly into g cells.
func Groups(g float64, t int64) float64 {
	if g <= 0 || t <= 0 {
		return 0
	}
	if g == 1 {
		return 1
	}
	// g·(1 − (1 − 1/g)^t), computed in log space for large t.
	exp := float64(t) * math.Log1p(-1/g)
	return g * (1 - math.Exp(exp))
}

// Singletons is the expected number of cells holding exactly one tuple:
// t · (1 − 1/g)^(t−1).
func Singletons(g float64, t int64) float64 {
	if g <= 0 || t <= 0 {
		return 0
	}
	if g == 1 {
		if t == 1 {
			return 1
		}
		return 0
	}
	return float64(t) * math.Exp(float64(t-1)*math.Log1p(-1/g))
}

// NodeEstimate predicts one lattice node.
type NodeEstimate struct {
	ID lattice.NodeID
	// Name is the node's grouping in the paper's notation.
	Name string
	// Cells is the size of the node's value space (∏ level cards).
	Cells float64
	// Tuples is the expected distinct-group count (the node's size in a
	// fully materialized cube).
	Tuples float64
	// TrivialFraction is the expected share of groups with a single
	// source tuple (CURE stores those as shared row-ids, not rows).
	TrivialFraction float64
}

// CubeEstimate predicts a whole cube.
type CubeEstimate struct {
	Rows int64
	// Nodes holds one estimate per lattice node, largest first.
	Nodes []NodeEstimate
	// FullTuples is the expected tuple count of the uncondensed cube
	// (what BUC materializes).
	FullTuples float64
	// AggregatedTuples is the expected count of non-trivial tuples (what
	// flows through CURE's signature pool).
	AggregatedTuples float64
	// FullBytes estimates the uncondensed relational cube size using
	// per-node row widths (arity·4 + Y·8).
	FullBytes float64
	// CondensedBytes is a lower-bound estimate of a CURE cube: trivial
	// tuples as one 8-byte row-id at their least detailed node, others
	// as NT rows (8 + 8Y) — CAT savings would shrink it further.
	CondensedBytes float64
}

// Cube predicts the cube of a schema for a fact table of rows tuples with
// numAggrs aggregate columns. The lattice must be materializable (it is
// enumerated node by node).
func Cube(hier *hierarchy.Schema, rows int64, numAggrs int) (*CubeEstimate, error) {
	if rows < 0 {
		return nil, fmt.Errorf("estimate: negative row count %d", rows)
	}
	if numAggrs < 1 {
		return nil, fmt.Errorf("estimate: need at least one aggregate")
	}
	enum := lattice.NewEnum(hier)
	if enum.NumNodes() > 1<<22 {
		return nil, fmt.Errorf("estimate: lattice has %d nodes; refusing to enumerate", enum.NumNodes())
	}
	est := &CubeEstimate{Rows: rows}
	levels := make([]int, hier.NumDims())
	for _, id := range enum.AllNodes() {
		levels = enum.Decode(id, levels)
		cells := 1.0
		arity := 0
		for d, l := range levels {
			if hier.Dims[d].IsAll(l) {
				continue
			}
			cells *= float64(hier.Dims[d].Card(l))
			arity++
		}
		tuples := Groups(cells, rows)
		singles := Singletons(cells, rows)
		ne := NodeEstimate{
			ID:     id,
			Name:   enum.Name(id),
			Cells:  cells,
			Tuples: tuples,
		}
		if tuples > 0 {
			ne.TrivialFraction = singles / tuples
			if ne.TrivialFraction > 1 {
				ne.TrivialFraction = 1
			}
		}
		est.Nodes = append(est.Nodes, ne)
		est.FullTuples += tuples
		est.AggregatedTuples += tuples - singles
		est.FullBytes += tuples * float64(4*arity+8*numAggrs)
		// Condensed: non-singleton groups as NT rows; singleton groups
		// approximated as one shared 8-byte row-id when this node is
		// where they first become singletons — bounded by charging each
		// node only the singletons its plan parent did not have.
		est.CondensedBytes += (tuples - singles) * float64(8+8*numAggrs)
	}
	// Shared trivial tuples: each fact tuple is stored at most once per
	// minimal singleton node; a safe (and empirically close) lower bound
	// charges one row-id per expected singleton of the most detailed
	// node of each solid-edge chain — approximated here as the total
	// singleton count of the base node plus 10% slack.
	base := est.Nodes[0]
	for _, ne := range est.Nodes {
		if ne.Cells > base.Cells {
			base = ne
		}
	}
	est.CondensedBytes += Singletons(base.Cells, rows) * 8 * 1.1
	sort.Slice(est.Nodes, func(i, j int) bool { return est.Nodes[i].Tuples > est.Nodes[j].Tuples })
	return est, nil
}

// Plan combines the cube estimate with §4's partition-level selection for
// a given memory budget, reporting what a Build would decide.
type Plan struct {
	RowBytes   int64
	TableBytes int64
	InMemory   bool
	Choice     partition.LevelChoice
	ChoiceErr  string
	Estimate   *CubeEstimate
}

// BuildPlan predicts the execution strategy of core.Build for a table of
// rows tuples under the given memory budget (bytes; 0 = unlimited). The
// relational schema supplies the row width.
func BuildPlan(hier *hierarchy.Schema, schema *relation.Schema, rows int64, memoryBudget int64, numAggrs int) (*Plan, error) {
	est, err := Cube(hier, rows, numAggrs)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		RowBytes:   int64(schema.RowWidth()),
		TableBytes: rows * int64(schema.RowWidth()),
		Estimate:   est,
	}
	if memoryBudget <= 0 || p.TableBytes <= memoryBudget/2 {
		p.InMemory = true
		return p, nil
	}
	choice, err := partition.SelectLevel(hier.Dims[0], p.TableBytes, memoryBudget/2, memoryBudget/4)
	if err != nil {
		p.ChoiceErr = err.Error()
		return p, nil
	}
	p.Choice = choice
	return p, nil
}
