package obsv

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fullRegistry assembles a registry with every flight-recorder data
// source live: trace tail, sampler, query tracker, history, and some
// counters to move.
func fullRecorder(t *testing.T) (*Registry, *FlightRecorder, string) {
	t.Helper()
	r := NewRegistry()
	tw := NewTraceWriter(discardWriter{})
	tw.SetTailCap(8)
	r.SetTrace(tw)
	r.Counter("core.sort.rows").Add(1000)
	sp := r.StartSpan("build")
	sp.End()

	smp := StartSampler(r, SamplerOptions{Interval: 2 * time.Millisecond})
	for smp.Samples() < 2 {
		time.Sleep(time.Millisecond)
	}
	smp.Stop()

	tr := NewQueryTracker(r, 8)
	done := tr.Begin("node", 3, "Product.Class,Outlet.ALL", "")
	tr.End(done, 12, nil, QueryIO{BytesRead: 96}, nil)
	running := tr.Begin("where", 7, "Product.Code,Outlet.ALL", "Product.Class=1")
	t.Cleanup(func() { tr.End(running, 0, nil, QueryIO{}, nil) })

	h := newHistory(r, HistoryOptions{Interval: time.Second})
	h.Record()
	r.Counter("core.sort.rows").Add(500)
	// write() records the final point itself, closing the window at the
	// incident.

	dir := t.TempDir()
	f := NewFlightRecorder(dir, r)
	r.SetFlight(f)
	f.Attach(smp, h, tr)
	return r, f, dir
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestFlightBundleContentsAndDoctor(t *testing.T) {
	r, f, flightDir := fullRecorder(t)
	r.Trace().Emit(NodeEvent{Ev: "node", Node: 3, Rows: 12})

	dir := f.Trigger("test", "unit-test trigger")
	if dir == "" {
		t.Fatal("Trigger returned empty dir")
	}
	for _, name := range []string{
		BundleManifest, BundleMetrics, BundleHistory, BundleMemSeries,
		BundleQueries, BundleGoroutines, BundleHeap, BundleTraceTail,
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("bundle member %s missing: %v", name, err)
		}
	}

	b, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Info.Reason != "test" || b.Info.Context != "unit-test trigger" || b.Info.PID != os.Getpid() {
		t.Fatalf("manifest = %+v", b.Info)
	}
	if len(b.Info.Errors) != 0 {
		t.Fatalf("bundle written partially: %v", b.Info.Errors)
	}
	if b.Metrics == nil || b.Metrics.Counters["core.sort.rows"] != 1500 {
		t.Fatalf("metrics member = %+v", b.Metrics)
	}
	// The trigger's own final history point closes the window: the delta
	// across it must match the counter movement since the first point.
	if b.History == nil || b.History.Deltas["core.sort.rows"] != 500 {
		t.Fatalf("history member deltas = %+v", b.History)
	}
	if len(b.MemSeries) < 2 {
		t.Fatalf("mem series = %d samples", len(b.MemSeries))
	}
	if len(b.Inflight) != 1 || b.Inflight[0].Op != "where" || len(b.Recent) != 1 {
		t.Fatalf("queries member = %+v / %+v", b.Inflight, b.Recent)
	}
	if !strings.Contains(b.Goroutines, "goroutine ") {
		t.Fatal("goroutine dump empty")
	}
	if b.TraceTailLines == 0 {
		t.Fatal("trace tail empty despite emitted events")
	}
	states, total := b.GoroutineStates()
	if total == 0 || len(states) == 0 {
		t.Fatalf("goroutine states = %v (%d)", states, total)
	}

	// ReadBundle on the flight directory resolves to the newest bundle.
	dir2 := f.Trigger("second", "")
	b2, err := ReadBundle(flightDir)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Dir != dir2 || b2.Info.Reason != "second" {
		t.Fatalf("flight-dir resolution picked %s (%s), want %s", b2.Dir, b2.Info.Reason, dir2)
	}

	var sb strings.Builder
	if err := b.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	rep := sb.String()
	for _, want := range []string{
		"INCIDENT REPORT",
		"reason  test",
		"## Memory trajectory",
		"## Top counter movement",
		"core.sort.rows",
		"## Queries (1 in flight, 1 recent)",
		"Product.Class,Outlet.ALL",
		"## Goroutines",
		"trace tail: ",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestFlightTriggerOnceAndNil(t *testing.T) {
	r := NewRegistry()
	f := NewFlightRecorder(t.TempDir(), r)
	if f.TriggerOnce("mem_budget", "first") == "" {
		t.Fatal("first TriggerOnce wrote nothing")
	}
	if f.TriggerOnce("mem_budget", "second") != "" {
		t.Fatal("repeat TriggerOnce wrote a bundle")
	}
	if f.TriggerOnce("other", "") == "" {
		t.Fatal("distinct reason suppressed")
	}

	var nilF *FlightRecorder
	if nilF.Trigger("x", "") != "" || nilF.TriggerOnce("x", "") != "" || nilF.TriggerPanic(&PanicError{}) != "" || nilF.Dir() != "" {
		t.Fatal("nil recorder not inert")
	}
	nilF.Attach(nil, nil, nil)
}

// TestCapturePanicWritesBundle exercises the production panic path: a
// panicking instrumented goroutine gets wrapped with context, a bundle
// lands on disk with the panicking goroutine's stack, and re-panicked
// PanicErrors pass through outer layers without a second bundle.
func TestCapturePanicWritesBundle(t *testing.T) {
	r := NewRegistry()
	f := NewFlightRecorder(t.TempDir(), r)
	r.SetFlight(f)

	var pe *PanicError
	func() {
		defer func() {
			v := recover()
			var ok bool
			if pe, ok = v.(*PanicError); !ok {
				t.Fatalf("recovered %T %v, want *PanicError", v, v)
			}
		}()
		// Outer layer: must pass the inner wrapper through untouched.
		defer CapturePanic(r, func() string { return "outer layer" })
		func() {
			defer CapturePanic(r, func() string { return "cube worker slot=1 batch=2 node=Product.Class,Outlet.ALL" })
			panic("boom")
		}()
	}()

	if pe.Context != "cube worker slot=1 batch=2 node=Product.Class,Outlet.ALL" {
		t.Fatalf("context = %q (outer layer must not rewrap)", pe.Context)
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v", pe)
	}
	if pe.Bundle == "" {
		t.Fatal("no bundle written")
	}
	if !strings.Contains(pe.Error(), "panic in cube worker") || !strings.Contains(pe.Error(), pe.Bundle) {
		t.Fatalf("Error() = %q", pe.Error())
	}

	b, err := ReadBundle(pe.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if b.Info.Reason != "panic" || b.Info.Panic != "boom" || b.Info.Context != pe.Context {
		t.Fatalf("bundle manifest = %+v", b.Info)
	}
	// stack.txt must be the panicking goroutine's stack, captured at
	// panic time — it names this test function.
	if !strings.Contains(b.Stack, "TestCapturePanicWritesBundle") {
		t.Fatalf("stack.txt does not show the panicking goroutine:\n%s", b.Stack)
	}
	var sb strings.Builder
	if err := b.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "node=Product.Class,Outlet.ALL") || !strings.Contains(sb.String(), "## Panic stack") {
		t.Fatalf("doctor report does not name the node path:\n%s", sb.String())
	}

	// Only one bundle for the whole unwind.
	entries, err := os.ReadDir(f.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d bundles written for one panic", len(entries))
	}

	// No panic, no effect.
	func() {
		defer CapturePanic(r, nil)
	}()
}

func TestCapturePanicWithoutRecorder(t *testing.T) {
	// Panic capture on a registry with no recorder (or nil registry)
	// still wraps with context; bundle stays empty.
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok || pe.Bundle != "" || pe.Context != "bare" {
			t.Fatalf("recovered %+v", pe)
		}
	}()
	defer CapturePanic(nil, func() string { return "bare" })
	panic("boom")
}

func TestReadBundleErrors(t *testing.T) {
	if _, err := ReadBundle(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing path accepted")
	}
	if _, err := ReadBundle(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no bundle") {
		t.Fatalf("empty flight dir: %v", err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, BundleManifest), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestServerHistoryAndBundleEndpoints(t *testing.T) {
	r, f, _ := fullRecorder(t)
	h := newHistory(r, HistoryOptions{Interval: time.Second})
	h.Record()
	r.Counter("core.sort.rows").Add(100)
	h.Record()
	srv := startTestServer(t, r, ServerOptions{History: h, Flight: f})
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics/history")
	if code != 200 {
		t.Fatalf("/metrics/history = %d", code)
	}
	var doc HistoryDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics/history not JSON: %v\n%s", err, body)
	}
	if len(doc.Points) < 2 || doc.Deltas["core.sort.rows"] != 100 {
		t.Fatalf("/metrics/history doc = %+v", doc)
	}

	code, body = get(t, base+"/metrics/history?format=csv")
	if code != 200 || !strings.HasPrefix(body, "time,") || !strings.Contains(body, "core.sort.rows") {
		t.Fatalf("/metrics/history?format=csv = %d %q", code, body)
	}

	code, body = get(t, base+"/debug/bundle")
	if code != 200 {
		t.Fatalf("/debug/bundle = %d %s", code, body)
	}
	var resp map[string]string
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if b, err := ReadBundle(resp["bundle"]); err != nil || b.Info.Reason != "http" {
		t.Fatalf("on-demand bundle %q: %+v, %v", resp["bundle"], b, err)
	}

	// Without the sources the endpoints answer 404, not 500.
	bare := startTestServer(t, NewRegistry(), ServerOptions{})
	if code, _ := get(t, "http://"+bare.Addr()+"/metrics/history"); code != 404 {
		t.Fatalf("/metrics/history without history = %d", code)
	}
	if code, _ := get(t, "http://"+bare.Addr()+"/debug/bundle"); code != 404 {
		t.Fatalf("/debug/bundle without recorder = %d", code)
	}
}

func TestHealthzDegraded(t *testing.T) {
	r := NewRegistry()
	srv := startTestServer(t, r, ServerOptions{})
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthy /healthz = %d %q", code, body)
	}

	r.Counter("trace.dropped").Add(3)
	code, body := get(t, base+"/healthz")
	if code != 503 {
		t.Fatalf("/healthz with trace drops = %d", code)
	}
	var doc healthzDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("degraded /healthz not JSON: %v\n%s", err, body)
	}
	if doc.Status != "degraded" || len(doc.Reasons) != 1 || !strings.Contains(doc.Reasons[0], "trace.dropped=3") {
		t.Fatalf("degraded doc = %+v", doc)
	}

	// Heap over the declared budget is a second, independent reason.
	r.Gauge(BudgetGaugeName).Set(1)
	r.Gauge("runtime.heap_inuse_bytes").Set(2)
	code, body = json503(t, base+"/healthz")
	_ = code
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Reasons) != 2 || !strings.Contains(doc.Reasons[1], "exceeds mem_budget_bytes") {
		t.Fatalf("degraded doc = %+v", doc)
	}
}

func json503(t *testing.T, url string) (int, string) {
	t.Helper()
	code, body := get(t, url)
	if code != 503 {
		t.Fatalf("%s = %d, want 503", url, code)
	}
	return code, body
}

// TestDoctorFinalizeSection drives reportFinalize through a bundle whose
// metrics carry the finalize pipeline's counters and gauges, and checks
// the section stays silent when no finalize ran.
func TestDoctorFinalizeSection(t *testing.T) {
	r := NewRegistry()
	r.Counter("storage.finalize.extents").Add(12)
	r.Counter("storage.finalize.blocks").Add(340)
	r.Counter("storage.finalize.reread_bytes").Add(2048)
	r.Counter("storage.finalize.commit_stalls").Add(3)
	r.Counter("storage.finalize.sampled_blocks").Add(90)
	r.Counter("storage.finalize.mispredicts").Add(10)
	r.Gauge("storage.finalize.workers").Set(4)
	r.Gauge("storage.finalize.skew.mean_bytes").Set(1 << 20)
	r.Gauge("storage.finalize.skew.max_bytes").Set(3 << 20)
	f := NewFlightRecorder(t.TempDir(), r)
	b, err := ReadBundle(f.Trigger("test", ""))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := b.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	rep := sb.String()
	for _, want := range []string{
		"## Finalize",
		"workers=4 extents=12 blocks=340 reread=2.0KiB commit_stalls=3",
		"raw bytes/worker mean=1.00MiB max=3.00MiB (skew ×3.00)",
		"sampled column-blocks=90 mispredicts=10 (10.0% of fast-path attempts)",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}

	// No finalize counters → no section.
	quiet := NewFlightRecorder(t.TempDir(), NewRegistry())
	bq, err := ReadBundle(quiet.Trigger("test", ""))
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := bq.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "## Finalize") {
		t.Error("Finalize section rendered without finalize metrics")
	}
}
