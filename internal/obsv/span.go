package obsv

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one phase of a hierarchical execution: it carries wall time
// (start to End) and the rows/bytes that moved through the phase.
// Children nest (build → partition → node → sort); fields are atomic so
// concurrent partition workers may report into sibling spans. The nil
// Span is a valid no-op and hands out nil children.
type Span struct {
	reg    *Registry
	parent *Span
	name   string
	start  time.Time
	nanos  atomic.Int64 // running total; set once at End for ended spans

	rowsIn       atomic.Int64
	rowsOut      atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	mu       sync.Mutex
	children []*Span
	ended    bool
}

// maxRetainedRootSpans bounds how many root spans a registry keeps for
// snapshotting. Builds open a handful of root spans, but a long-lived
// query engine opens one per query; past the cap, spans still run, time
// themselves, and emit trace events — they are just not retained (the
// obsv.spans_dropped counter records how many).
const maxRetainedRootSpans = 4096

// StartSpan opens a new root span (nil when r is nil).
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{reg: r, name: name, start: time.Now()}
	r.mu.Lock()
	retained := len(r.spans) < maxRetainedRootSpans
	if retained {
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
	r.current.Store(s)
	if !retained {
		r.Counter("obsv.spans_dropped").Inc()
	}
	return s
}

// Child opens a sub-span (nil when s is nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{reg: s.reg, parent: s, name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	s.reg.current.Store(c)
	return c
}

// End closes the span, freezing its elapsed time. Ending twice is a
// no-op. If the registry has a trace sink attached, a span event is
// emitted.
func (s *Span) End() {
	if s == nil {
		return
	}
	elapsed := int64(time.Since(s.start))
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	// The frozen duration is published before the ended flag, under the
	// same lock that Elapsed and snapshot take: a concurrent Snapshot
	// (the /metrics and /progress endpoints call it mid-build) either
	// sees a running span or a fully frozen one, never ended-with-zero.
	s.nanos.Store(elapsed)
	s.ended = true
	s.mu.Unlock()
	s.reg.current.CompareAndSwap(s, s.parent)
	if tr := s.reg.Trace(); tr != nil {
		tr.Emit(SpanEvent{
			Ev:           "span",
			Span:         s.Path(),
			ElapsedUs:    s.nanos.Load() / 1e3,
			RowsIn:       s.rowsIn.Load(),
			RowsOut:      s.rowsOut.Load(),
			BytesRead:    s.bytesRead.Load(),
			BytesWritten: s.bytesWritten.Load(),
		})
	}
}

// Elapsed returns the span's wall time: frozen for ended spans, running
// for open ones (0 for the nil Span).
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	ended := s.ended
	s.mu.Unlock()
	if ended {
		return time.Duration(s.nanos.Load())
	}
	return time.Since(s.start)
}

// Running reports whether the span is still open (false for nil).
func (s *Span) Running() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.ended
}

// Name returns the span's name ("" for the nil Span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Path returns the slash-joined span path from the root ("" for nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	if s.parent == nil {
		return s.name
	}
	return s.parent.Path() + "/" + s.name
}

// AddRowsIn accrues rows entering the phase.
func (s *Span) AddRowsIn(n int64) {
	if s != nil {
		s.rowsIn.Add(n)
	}
}

// AddRowsOut accrues rows leaving the phase.
func (s *Span) AddRowsOut(n int64) {
	if s != nil {
		s.rowsOut.Add(n)
	}
}

// AddBytesRead accrues bytes read during the phase.
func (s *Span) AddBytesRead(n int64) {
	if s != nil {
		s.bytesRead.Add(n)
	}
}

// AddBytesWritten accrues bytes written during the phase.
func (s *Span) AddBytesWritten(n int64) {
	if s != nil {
		s.bytesWritten.Add(n)
	}
}

// Children returns a copy of the span's child list (nil for the nil
// Span).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span{}, s.children...)
}

// SpanSnapshot is the exported state of one span subtree. Snapshots may
// be taken mid-build (the /metrics and /progress endpoints do): a span
// still running carries Running=true, a zero EndTime, and its elapsed
// time so far; an ended span carries its frozen end time and duration.
type SpanSnapshot struct {
	Name         string         `json:"name"`
	StartTime    time.Time      `json:"start_time"`
	EndTime      time.Time      `json:"end_time,omitempty"` // zero while running
	Running      bool           `json:"running,omitempty"`
	ElapsedSec   float64        `json:"elapsed_sec"`
	RowsIn       int64          `json:"rows_in,omitempty"`
	RowsOut      int64          `json:"rows_out,omitempty"`
	BytesRead    int64          `json:"bytes_read,omitempty"`
	BytesWritten int64          `json:"bytes_written,omitempty"`
	Children     []SpanSnapshot `json:"children,omitempty"`
}

func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	ended := s.ended
	s.mu.Unlock()
	ss := SpanSnapshot{
		Name:         s.name,
		StartTime:    s.start,
		Running:      !ended,
		RowsIn:       s.rowsIn.Load(),
		RowsOut:      s.rowsOut.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
	if ended {
		d := time.Duration(s.nanos.Load())
		ss.ElapsedSec = d.Seconds()
		ss.EndTime = s.start.Add(d)
	} else {
		ss.ElapsedSec = time.Since(s.start).Seconds()
	}
	for _, c := range s.Children() {
		ss.Children = append(ss.Children, c.snapshot())
	}
	return ss
}

// PhaseTotals sums elapsed seconds by span path over a set of root
// spans, one map entry per distinct path ("build", "build/partition.split",
// …). Repeated builds accumulate, which is what per-experiment phase
// attribution wants.
func PhaseTotals(spans []*Span) map[string]float64 {
	totals := map[string]float64{}
	var walk func(s *Span)
	walk = func(s *Span) {
		totals[s.Path()] += s.Elapsed().Seconds()
		for _, c := range s.Children() {
			walk(c)
		}
	}
	for _, s := range spans {
		walk(s)
	}
	return totals
}
