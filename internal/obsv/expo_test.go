package obsv

import (
	"bytes"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"partition.bytes_read":  "cure_partition_bytes_read",
		"query.node.latency_us": "cure_query_node_latency_us",
		"weird-name.1":          "cure_weird_name_1",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePromRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("partition.bytes_read").Add(1234)
	r.Counter("core.tt_pruned").Add(9)
	r.Gauge("pool.occupancy").Set(42)
	h := r.Histogram("query.node.latency_us")
	for _, v := range []int64{5, 10, 200} {
		h.Observe(v)
	}
	sp := r.StartSpan("build")
	c := sp.Child("load")
	c.AddRowsIn(100)
	c.AddBytesRead(4096)
	c.End()
	sp.End()

	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	metrics, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	checks := map[string]float64{
		"cure_partition_bytes_read":                                 1234,
		"cure_core_tt_pruned":                                       9,
		"cure_pool_occupancy":                                       42,
		"cure_query_node_latency_us_count":                          3,
		"cure_query_node_latency_us_sum":                            215,
		`cure_span_rows_total{path="build/load",direction="in"}`:    100,
		`cure_span_bytes_total{path="build/load",direction="read"}`: 4096,
	}
	for key, want := range checks {
		m, ok := metrics[key]
		if !ok {
			t.Fatalf("missing series %q in exposition:\n%s", key, text)
		}
		if m.Value != want {
			t.Errorf("%s = %v, want %v", key, m.Value, want)
		}
	}
	if m := metrics["cure_partition_bytes_read"]; m.Type != "counter" {
		t.Errorf("counter typed %q", m.Type)
	}
	if m := metrics["cure_pool_occupancy"]; m.Type != "gauge" {
		t.Errorf("gauge typed %q", m.Type)
	}
	for _, q := range []string{"_p50", "_p90", "_p99"} {
		if _, ok := metrics["cure_query_node_latency_us"+q]; !ok {
			t.Errorf("missing quantile series %s", q)
		}
	}
	if _, ok := metrics[`cure_span_elapsed_seconds{path="build"}`]; !ok {
		t.Error("missing span elapsed series for build")
	}

	// Deterministic output: a second render is byte-identical (the
	// snapshot is re-taken but nothing moved).
	var buf2 bytes.Buffer
	if err := WriteProm(&buf2, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("exposition not deterministic across identical snapshots")
	}
}

func TestWritePromEmptyAndNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil snapshot rendered %q", buf.String())
	}
	var r *Registry
	if err := WriteProm(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseProm(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestParsePromRejectsGarbage(t *testing.T) {
	bad := []string{
		"not a metric line at all!",
		"cure_x{unclosed 1",
		"cure_x notanumber",
		"# TYPE cure_x sometype",
		"1leading_digit 5",
	}
	for _, line := range bad {
		if _, err := ParseProm(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ParseProm accepted %q", line)
		}
	}
	good := "# TYPE cure_x counter\ncure_x 5\ncure_y{a=\"b\"} 1.5 1700000000\n"
	metrics, err := ParseProm(strings.NewReader(good))
	if err != nil {
		t.Fatalf("ParseProm rejected valid input: %v", err)
	}
	if metrics["cure_x"].Value != 5 || metrics[`cure_y{a="b"}`].Value != 1.5 {
		t.Fatalf("parsed = %+v", metrics)
	}
}

func TestPromLabelEscapeRoundTrip(t *testing.T) {
	// Fuzz-style table: every value a span path could plausibly carry,
	// including the three characters the exposition format escapes
	// (backslash, newline, double quote) and the delimiters the label
	// scanner must not split on (commas, braces). Each value goes
	// registry → WriteProm → ParseProm → ParseLabels and must come back
	// byte-identical.
	values := []string{
		"plain",
		`back\slash`,
		`trailing\`,
		"new\nline",
		`quo"te`,
		"comma,inside",
		"brace{open",
		"brace}close",
		`\n`, // literal backslash-n, must not turn into a newline
		"mix\\\"ed,\nall{of}it",
	}
	for _, v := range values {
		r := NewRegistry()
		sp := r.StartSpan(v)
		sp.End()
		var buf bytes.Buffer
		if err := WriteProm(&buf, r.Snapshot()); err != nil {
			t.Fatalf("%q: WriteProm: %v", v, err)
		}
		metrics, err := ParseProm(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%q: ParseProm: %v\n%s", v, err, buf.String())
		}
		var found bool
		for _, m := range metrics {
			if m.Name != "cure_span_elapsed_seconds" {
				continue
			}
			found = true
			labels, err := ParseLabels(m.Labels)
			if err != nil {
				t.Fatalf("%q: ParseLabels(%q): %v", v, m.Labels, err)
			}
			if got := labels["path"]; got != v {
				t.Errorf("path label round-trip: got %q, want %q (wire %q)", got, v, m.Labels)
			}
		}
		if !found {
			t.Fatalf("%q: no cure_span_elapsed_seconds series in:\n%s", v, buf.String())
		}
	}
}

func TestParseLabels(t *testing.T) {
	labels, err := ParseLabels(`{a="x",b="y,z",c="q\"w",d="p\\q",e="l\nm"}`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"a": "x", "b": "y,z", "c": `q"w`, "d": `p\q`, "e": "l\nm"}
	if len(labels) != len(want) {
		t.Fatalf("labels = %+v", labels)
	}
	for k, v := range want {
		if labels[k] != v {
			t.Errorf("label %s = %q, want %q", k, labels[k], v)
		}
	}
	if empty, err := ParseLabels(""); err != nil || len(empty) != 0 {
		t.Fatalf("empty block: %v %+v", err, empty)
	}
	bad := []string{
		`a="x"`,          // no braces
		`{a=x}`,          // unquoted value
		`{a="x}`,         // unterminated value
		`{a="x\q"}`,      // unknown escape
		`{a="x\"}`,       // escape eats the closing quote
		`{a="x""b"="y"}`, // missing comma separator
		`{="x"}`,         // empty name
		`{a}`,            // no '='
	}
	for _, block := range bad {
		if _, err := ParseLabels(block); err == nil {
			t.Errorf("ParseLabels accepted %q", block)
		}
	}
}
