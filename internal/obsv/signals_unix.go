//go:build unix

package obsv

import (
	"os"
	"syscall"
)

// Signal wiring for unix platforms: the full flight-recorder signal
// vocabulary (SIGQUIT/SIGUSR1 bundles) on top of the flush-on-exit
// pair.

func notifySignals() []os.Signal {
	return []os.Signal{syscall.SIGINT, syscall.SIGTERM, syscall.SIGQUIT, syscall.SIGUSR1}
}

func classifySignal(sig os.Signal) (action signalAction, exitCode int) {
	switch sig {
	case syscall.SIGINT:
		return sigFlushExit, 130
	case syscall.SIGTERM:
		return sigFlushExit, 143
	case syscall.SIGQUIT:
		return sigBundleExit, 2
	case syscall.SIGUSR1:
		return sigBundleContinue, 0
	}
	return sigIgnore, 0
}
