package obsv

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("y")
	g.Set(7)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d", g.Value())
	}
	h := r.Histogram("z")
	h.Observe(3)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram recorded something")
	}
	s := r.StartSpan("build")
	child := s.Child("phase")
	child.AddRowsIn(10)
	child.End()
	s.End()
	if s.Elapsed() != 0 || s.Path() != "" {
		t.Fatal("nil span not inert")
	}
	if r.Trace() != nil {
		t.Fatal("nil registry has a trace")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("core.tt")
	c.Add(3)
	c.Inc()
	if got := r.Counter("core.tt").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("core.tt") != c {
		t.Fatal("counter not interned")
	}
	r.Gauge("pool.occupancy").Set(42)
	h := r.Histogram("lat")
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1106 {
		t.Fatalf("hist count/sum = %d/%d", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); q < 3 || q > 7 {
		t.Fatalf("p50 = %d, want bucket bound covering 3", q)
	}
	if q := h.Quantile(1); q < 1000 {
		t.Fatalf("p100 = %d, want ≥ 1000", q)
	}

	snap := r.Snapshot()
	if snap.Counters["core.tt"] != 4 || snap.Gauges["pool.occupancy"] != 42 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 5 {
		t.Fatalf("snapshot hists = %+v", snap.Histograms)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	const maxInt64 = int64(^uint64(0) >> 1)

	t.Run("empty", func(t *testing.T) {
		h := NewRegistry().Histogram("empty")
		for _, q := range []float64{-1, 0, 0.5, 1, 2} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty.Quantile(%v) = %d, want 0", q, got)
			}
		}
	})

	// Boundary values round-trip into the bucket whose upper bound they
	// are: a histogram holding only v answers every quantile with
	// bucketUpper(bucket(v)), which must be ≥ v and exact at bounds.
	t.Run("bucket-bounds", func(t *testing.T) {
		cases := []struct {
			v    int64
			want int64
		}{
			{-5, 0}, // negatives clamp to bucket 0
			{0, 0},
			{1, 1},
			{2, 3},
			{3, 3},
			{4, 7},
			{7, 7},
			{8, 15},
			{1 << 62, maxInt64},
			{maxInt64, maxInt64},
		}
		for _, tc := range cases {
			h := NewRegistry().Histogram("x")
			h.Observe(tc.v)
			for _, q := range []float64{0, 0.5, 0.99, 1} {
				if got := h.Quantile(q); got != tc.want {
					t.Errorf("hist{%d}.Quantile(%v) = %d, want %d", tc.v, q, got, tc.want)
				}
			}
		}
	})

	t.Run("clamping", func(t *testing.T) {
		h := NewRegistry().Histogram("x")
		h.Observe(1)
		h.Observe(1000)
		if lo, hi := h.Quantile(-3), h.Quantile(0); lo != hi {
			t.Errorf("Quantile(-3) = %d, Quantile(0) = %d; negative q must clamp", lo, hi)
		}
		if lo, hi := h.Quantile(99), h.Quantile(1); lo != hi {
			t.Errorf("Quantile(99) = %d, Quantile(1) = %d; q > 1 must clamp", lo, hi)
		}
		if h.Quantile(1) < 1000 {
			t.Errorf("Quantile(1) = %d, want ≥ 1000", h.Quantile(1))
		}
	})
}

// TestRegistryConcurrentHammer drives every concurrently-used surface of
// one registry at once — counters, gauges, histograms, span trees, trace
// emission, and mid-flight Snapshot/ProgressLine/WriteProm readers — and
// relies on `go test -race ./internal/obsv` to catch ordering bugs.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	var sink bytes.Buffer
	r.SetTrace(NewTraceWriter(&sink))
	root := r.StartSpan("build")

	const writers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := r.Trace()
			for i := 0; i < iters; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h").Observe(int64(i))
				tr.Emit(NodeEvent{Ev: "node", Node: int64(w*iters + i)})
				if i%100 == 0 {
					s := root.Child("worker")
					s.AddRowsIn(1)
					s.End()
				}
			}
		}()
	}
	// Concurrent readers: what /metrics and /progress do mid-build.
	for rd := 0; rd < 4; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				snap := r.Snapshot()
				if err := WriteProm(io.Discard, snap); err != nil {
					t.Errorf("WriteProm: %v", err)
					return
				}
				_ = r.ProgressLine()
				_ = r.CurrentPath()
			}
		}()
	}
	wg.Wait()
	root.End()
	if err := r.Trace().Flush(); err != nil {
		t.Fatal(err)
	}
	if got := r.Counter("c").Value(); got != writers*iters {
		t.Fatalf("counter = %d, want %d", got, writers*iters)
	}
	if got := r.Trace().Events(); got < writers*iters {
		t.Fatalf("trace events = %d, want ≥ %d", got, writers*iters)
	}
	snap := r.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Running {
		t.Fatalf("final snapshot spans = %+v", snap.Spans)
	}
}

func TestSpanRetentionCap(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxRetainedRootSpans+10; i++ {
		r.StartSpan("query.node").End()
	}
	snap := r.Snapshot()
	if len(snap.Spans) != maxRetainedRootSpans {
		t.Fatalf("retained %d spans, want cap %d", len(snap.Spans), maxRetainedRootSpans)
	}
	if got := r.Counter("obsv.spans_dropped").Value(); got != 10 {
		t.Fatalf("spans_dropped = %d, want 10", got)
	}
}

func TestSpanHierarchy(t *testing.T) {
	r := NewRegistry()
	build := r.StartSpan("build")
	load := build.Child("load")
	load.AddRowsIn(100)
	load.AddBytesRead(4096)
	time.Sleep(time.Millisecond)
	load.End()
	load.End() // double End is a no-op
	cube := build.Child("cube")
	cube.End()
	build.End()

	if build.Path() != "build" || load.Path() != "build/load" {
		t.Fatalf("paths = %q, %q", build.Path(), load.Path())
	}
	if load.Elapsed() <= 0 || build.Elapsed() < load.Elapsed() {
		t.Fatalf("elapsed: build=%v load=%v", build.Elapsed(), load.Elapsed())
	}
	snap := r.Snapshot()
	if len(snap.Spans) != 1 || len(snap.Spans[0].Children) != 2 {
		t.Fatalf("span snapshot = %+v", snap.Spans)
	}
	if snap.Spans[0].Children[0].RowsIn != 100 || snap.Spans[0].Children[0].BytesRead != 4096 {
		t.Fatalf("child snapshot = %+v", snap.Spans[0].Children[0])
	}

	totals := PhaseTotals(r.TakeSpans())
	if totals["build/load"] <= 0 || totals["build"] <= 0 {
		t.Fatalf("phase totals = %v", totals)
	}
	if len(r.TakeSpans()) != 0 {
		t.Fatal("TakeSpans did not drain")
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	parent := r.StartSpan("build")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(int64(j))
			}
			s := parent.Child("worker")
			s.AddRowsIn(1)
			s.End()
		}()
	}
	wg.Wait()
	parent.End()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := len(parent.Children()); got != 8 {
		t.Fatalf("children = %d, want 8", got)
	}
}

func TestTraceWriter(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Emit(NodeEvent{Ev: "node", Node: 7, Rows: 3, Depth: 1})
	tw.Emit(EdgeEvent{Ev: "edge", Node: 8, Edge: "solid", Mode: "sort", Alg: "counting", Rows: 3})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || tw.Events() != 2 {
		t.Fatalf("lines = %d, events = %d", len(lines), tw.Events())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev["ev"] != "node" || ev["node"] != float64(7) {
		t.Fatalf("event = %v", ev)
	}

	var nilTW *TraceWriter
	nilTW.Emit(NodeEvent{})
	if nilTW.Flush() != nil || nilTW.Events() != 0 {
		t.Fatal("nil trace writer not inert")
	}
}

func TestSpanEventOnEnd(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	r.SetTrace(NewTraceWriter(&buf))
	s := r.StartSpan("build")
	s.AddRowsOut(5)
	s.End()
	if err := r.Trace().Flush(); err != nil {
		t.Fatal(err)
	}
	var ev SpanEvent
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Ev != "span" || ev.Span != "build" || ev.RowsOut != 5 {
		t.Fatalf("span event = %+v", ev)
	}
}

func TestProgressLine(t *testing.T) {
	r := NewRegistry()
	s := r.StartSpan("build")
	p := s.Child("partition.cube")
	r.Counter("core.sort.rows").Add(1234)
	line := r.ProgressLine()
	if !strings.Contains(line, "phase=build/partition.cube") || !strings.Contains(line, "core.sort.rows=1234") {
		t.Fatalf("progress line = %q", line)
	}
	p.End()
	s.End()
}

// TestConcurrentSegSpans models the build's segment fan-out: many
// goroutines attach "seg" children to one phase span, tally rows, and
// end them while a scraper keeps snapshotting. All children must
// survive into the snapshot with their row counts, and PhaseTotals must
// merge them under one path.
func TestConcurrentSegSpans(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("build")
	cube := root.Child("cube")
	const workers, spansEach, rowsEach = 8, 25, 17
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent scraper: must never see a torn span
		for {
			select {
			case <-stop:
				return
			default:
				for _, sp := range r.Snapshot().Spans {
					if sp.Running && !sp.EndTime.IsZero() {
						panic("running span with end time")
					}
				}
			}
		}
	}()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < spansEach; i++ {
				sp := cube.Child("seg")
				sp.AddRowsIn(rowsEach)
				sp.End()
			}
		}()
	}
	wg.Wait()
	close(stop)
	cube.End()
	root.End()

	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("got %d root spans, want 1", len(snap.Spans))
	}
	segs := 0
	var rows int64
	for _, c := range snap.Spans[0].Children {
		if c.Name != "cube" {
			continue
		}
		for _, s := range c.Children {
			if s.Name == "seg" {
				segs++
				rows += s.RowsIn
			}
		}
	}
	if segs != workers*spansEach {
		t.Fatalf("snapshot holds %d seg spans, want %d", segs, workers*spansEach)
	}
	if rows != int64(workers*spansEach*rowsEach) {
		t.Fatalf("seg rows = %d, want %d", rows, workers*spansEach*rowsEach)
	}
	totals := PhaseTotals(r.TakeSpans())
	if totals["build/cube/seg"] <= 0 {
		t.Fatalf("phase totals missing merged seg path: %v", totals)
	}
}

func TestTraceWriterMaxBytes(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	r := NewRegistry()
	tw.SetDropCounter(r.Counter("trace.dropped"))

	// Measure one event line, then budget for exactly two.
	var pb bytes.Buffer
	pw := NewTraceWriter(&pb)
	pw.Emit(NodeEvent{Ev: "node", Node: 1, Rows: 1, Depth: 1})
	pw.Flush()
	lineLen := int64(pb.Len())
	tw.SetMaxBytes(2 * lineLen)

	for i := 0; i < 5; i++ {
		tw.Emit(NodeEvent{Ev: "node", Node: 1, Rows: 1, Depth: 1})
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() != 2 {
		t.Fatalf("events written = %d, want 2", tw.Events())
	}
	if tw.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tw.Dropped())
	}
	if c := r.Counter("trace.dropped").Value(); c != 3 {
		t.Fatalf("trace.dropped counter = %d, want 3", c)
	}
	if int64(buf.Len()) > 2*lineLen {
		t.Fatalf("sink holds %d bytes, budget was %d", buf.Len(), 2*lineLen)
	}
	// The surviving lines are intact JSON — the cap drops whole events,
	// never truncates one.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev NodeEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("kept line %q not JSON: %v", line, err)
		}
	}

	// Nil writer stays inert with the new methods too.
	var nilTW *TraceWriter
	nilTW.SetMaxBytes(1)
	nilTW.SetDropCounter(nil)
	if nilTW.Dropped() != 0 {
		t.Fatal("nil writer reported drops")
	}
}
