package obsv

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The metric history store is the flight recorder's time axis: it
// periodically snapshots every registry counter, gauge, and histogram
// quantile into a fixed-memory downsampling ring, so "what was the
// system doing in the two minutes before it fell over" has an answer
// after the fact. Two rings cover two horizons: the raw ring holds one
// point per interval over a short window, and the long ring holds one
// point per LongEvery intervals over a proportionally longer window.
// Memory is bounded by the ring capacities regardless of process
// lifetime; the /metrics/history endpoint and diagnostic bundles render
// the merged series.

// HistoryPoint is one snapshot of the registry's scalar state. Counters
// hold counter values plus per-histogram <name>.count / <name>.sum;
// Gauges hold gauge values plus per-histogram <name>.p50 / .p90 / .p99.
// The split matters downstream: deltas and rates are only meaningful
// over the Counters map.
type HistoryPoint struct {
	Time     time.Time        `json:"time"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
}

// HistoryOptions configures a history store.
type HistoryOptions struct {
	// Interval between snapshots (default 1s).
	Interval time.Duration
	// Window is the raw-resolution retention horizon (default 5m). The
	// raw ring holds Window/Interval points.
	Window time.Duration
	// LongEvery downsamples: every LongEvery-th point also lands in the
	// long ring (default 12, i.e. one point per 12s at the defaults).
	LongEvery int
	// LongWindow is the long ring's retention horizon (default
	// 12×Window = 1h at the defaults).
	LongWindow time.Duration
}

// History periodically records registry snapshots into its rings. The
// nil History is a valid no-op.
type History struct {
	reg  *Registry
	opts HistoryOptions

	mu       sync.Mutex
	raw      []HistoryPoint
	rawNext  int
	rawFull  bool
	long     []HistoryPoint
	longNext int
	longFull bool
	n        int64 // total points recorded

	count    atomic.Int64
	done     chan struct{}
	finished chan struct{}
}

// newHistory builds the store without starting the ticker goroutine
// (tests drive Record directly).
func newHistory(reg *Registry, opts HistoryOptions) *History {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Window <= 0 {
		opts.Window = 5 * time.Minute
	}
	if opts.LongEvery <= 0 {
		opts.LongEvery = 12
	}
	if opts.LongWindow <= 0 {
		opts.LongWindow = time.Duration(opts.LongEvery) * opts.Window
	}
	rawCap := int(opts.Window / opts.Interval)
	if rawCap < 2 {
		rawCap = 2
	}
	longCap := int(opts.LongWindow / (opts.Interval * time.Duration(opts.LongEvery)))
	if longCap < 2 {
		longCap = 2
	}
	return &History{
		reg:      reg,
		opts:     opts,
		raw:      make([]HistoryPoint, rawCap),
		long:     make([]HistoryPoint, longCap),
		done:     make(chan struct{}),
		finished: make(chan struct{}),
	}
}

// StartHistory launches a history store snapshotting reg every interval
// (nil when reg is nil). An immediate first point is taken so even
// short-lived processes leave a non-empty history. Call Stop when done;
// a final point is recorded at Stop.
func StartHistory(reg *Registry, opts HistoryOptions) *History {
	if reg == nil {
		return nil
	}
	h := newHistory(reg, opts)
	h.Record()
	go h.loop()
	return h
}

func (h *History) loop() {
	defer close(h.finished)
	t := time.NewTicker(h.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			h.Record()
		case <-h.done:
			h.Record()
			return
		}
	}
}

// Stop records a final point and terminates the ticker (no-op on nil,
// safe to call more than once).
func (h *History) Stop() {
	if h == nil {
		return
	}
	select {
	case <-h.done:
	default:
		close(h.done)
	}
	<-h.finished
}

// Points returns the number of snapshots recorded so far (0 for nil).
func (h *History) Points() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Interval returns the configured snapshot cadence (0 for nil).
func (h *History) Interval() time.Duration {
	if h == nil {
		return 0
	}
	return h.opts.Interval
}

// Record takes one snapshot now: every counter and gauge value, plus
// count/sum/p50/p90/p99 per histogram (no-op on nil). The flight
// recorder calls it once more at bundle time so the final window always
// ends at the incident.
func (h *History) Record() {
	if h == nil {
		return
	}
	s := h.reg.Snapshot()
	pt := HistoryPoint{
		Time:     time.Now(),
		Counters: s.Counters,
		Gauges:   s.Gauges,
	}
	for _, hs := range s.Histograms {
		pt.Counters[hs.Name+".count"] = hs.Count
		pt.Counters[hs.Name+".sum"] = hs.Sum
		pt.Gauges[hs.Name+".p50"] = hs.P50
		pt.Gauges[hs.Name+".p90"] = hs.P90
		pt.Gauges[hs.Name+".p99"] = hs.P99
	}

	h.mu.Lock()
	h.raw[h.rawNext] = pt
	h.rawNext++
	if h.rawNext == len(h.raw) {
		h.rawNext = 0
		h.rawFull = true
	}
	h.n++
	if h.n%int64(h.opts.LongEvery) == 0 {
		h.long[h.longNext] = pt
		h.longNext++
		if h.longNext == len(h.long) {
			h.longNext = 0
			h.longFull = true
		}
	}
	h.mu.Unlock()
	h.count.Add(1)
}

// ringSeries copies a ring out in chronological order.
func ringSeries(ring []HistoryPoint, next int, full bool) []HistoryPoint {
	if !full {
		return append([]HistoryPoint{}, ring[:next]...)
	}
	out := make([]HistoryPoint, 0, len(ring))
	out = append(out, ring[next:]...)
	return append(out, ring[:next]...)
}

// RawSeries returns the raw-resolution window, oldest first (nil for
// the nil History).
func (h *History) RawSeries() []HistoryPoint {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return ringSeries(h.raw, h.rawNext, h.rawFull)
}

// LongSeries returns the downsampled long window, oldest first.
func (h *History) LongSeries() []HistoryPoint {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return ringSeries(h.long, h.longNext, h.longFull)
}

// Series merges the two horizons into one chronological series: long
// points older than the raw window, then the raw window itself. Every
// raw point inside the window appears exactly once; a long point is
// included only when it predates the oldest raw point (the raw ring
// already covers its time at finer resolution).
func (h *History) Series() []HistoryPoint {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	raw := ringSeries(h.raw, h.rawNext, h.rawFull)
	long := ringSeries(h.long, h.longNext, h.longFull)
	h.mu.Unlock()
	if len(raw) == 0 {
		return long
	}
	out := make([]HistoryPoint, 0, len(long)+len(raw))
	for _, pt := range long {
		if pt.Time.Before(raw[0].Time) {
			out = append(out, pt)
		}
	}
	return append(out, raw...)
}

// Deltas returns last−first for every counter over the retained series
// (counters absent from the first point count from zero). With fewer
// than two points the map is empty: a delta needs a window.
func (h *History) Deltas() map[string]int64 {
	series := h.Series()
	out := map[string]int64{}
	if len(series) < 2 {
		return out
	}
	first, last := series[0], series[len(series)-1]
	for name, v := range last.Counters {
		out[name] = v - first.Counters[name]
	}
	return out
}

// HistoryDoc is the JSON document of /metrics/history and the
// history.json bundle member: the merged series plus counter deltas and
// per-second rates over its window.
type HistoryDoc struct {
	IntervalSec float64            `json:"interval_sec"`
	WindowSec   float64            `json:"window_sec"`
	Points      []HistoryPoint     `json:"points"`
	Deltas      map[string]int64   `json:"deltas,omitempty"`
	RatesPerSec map[string]float64 `json:"rates_per_sec,omitempty"`
}

// Doc assembles the exported history document (nil for the nil
// History).
func (h *History) Doc() *HistoryDoc {
	if h == nil {
		return nil
	}
	series := h.Series()
	doc := &HistoryDoc{
		IntervalSec: h.opts.Interval.Seconds(),
		Points:      series,
		Deltas:      map[string]int64{},
		RatesPerSec: map[string]float64{},
	}
	if len(series) < 2 {
		return doc
	}
	first, last := series[0], series[len(series)-1]
	doc.WindowSec = last.Time.Sub(first.Time).Seconds()
	for name, v := range last.Counters {
		d := v - first.Counters[name]
		doc.Deltas[name] = d
		if doc.WindowSec > 0 {
			doc.RatesPerSec[name] = float64(d) / doc.WindowSec
		}
	}
	return doc
}

// WriteCSV renders the merged series as CSV: a time column followed by
// one column per metric name (counters and gauges united, sorted),
// empty cells for metrics a point did not carry.
func (h *History) WriteCSV(w io.Writer) error {
	series := h.Series()
	names := map[string]bool{}
	for _, pt := range series {
		for name := range pt.Counters {
			names[name] = true
		}
		for name := range pt.Gauges {
			names[name] = true
		}
	}
	cols := make([]string, 0, len(names))
	for name := range names {
		cols = append(cols, name)
	}
	sort.Strings(cols)

	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"time"}, cols...)); err != nil {
		return err
	}
	rec := make([]string, len(cols)+1)
	for _, pt := range series {
		rec[0] = pt.Time.Format(time.RFC3339Nano)
		for i, name := range cols {
			if v, ok := pt.Counters[name]; ok {
				rec[i+1] = strconv.FormatInt(v, 10)
			} else if v, ok := pt.Gauges[name]; ok {
				rec[i+1] = strconv.FormatInt(v, 10)
			} else {
				rec[i+1] = ""
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
