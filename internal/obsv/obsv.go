// Package obsv is the build/query instrumentation layer: lightweight,
// allocation-conscious counters, gauges, and histograms, hierarchical
// phase spans (wall time plus rows/bytes moved), and a JSONL trace sink
// that records the execution-plan traversal of a build.
//
// Everything is nil-safe by design: a nil *Registry hands out nil
// instruments, and every method on a nil instrument is a no-op. Code
// under measurement therefore threads a single optional *Registry through
// and calls instruments unconditionally — the disabled path costs one
// nil check per call and allocates nothing, which keeps un-instrumented
// builds at their previous speed (verified by BenchmarkBuildMetricsNil
// in internal/core).
//
// Instruments are identified by dotted names ("partition.bytes_read",
// "query.cache.hits"); the first lookup interns the instrument and later
// lookups return the same pointer, so hot paths resolve their counters
// once up front and hold them.
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil Counter is a
// valid no-op.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the counter's registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a last-value metric. The nil Gauge is a valid no-op.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the last value set (0 for the nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket upper bounds
// 0, 1, 3, 7, …, 2^63-1.
const histBuckets = 65

// Histogram is a power-of-two bucketed histogram of non-negative int64
// observations (negative values clamp to bucket 0). Observe is
// allocation-free and safe for concurrent use. The nil Histogram is a
// valid no-op.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an upper bound on the q-quantile: the upper bound of
// the first bucket whose cumulative count reaches q·total. Edge behavior
// is specified: an empty histogram returns 0 regardless of q, and q is
// clamped to [0, 1] (q ≤ 0 locates the first non-empty bucket, q ≥ 1 the
// last). Bucket bounds round-trip exactly at 0, 1, and the int64 maximum:
// each lands in the bucket whose upper bound it is.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	switch {
	case q < 0 || q != q: // NaN clamps low
		q = 0
	case q > 1:
		q = 1
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketUpper(i)
		}
	}
	return h.max.Load()
}

// bucketUpper is the largest value landing in bucket i (2^i - 1).
func bucketUpper(i int) int64 {
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<uint(i) - 1
}

// Registry is the root of all instruments of one build or query session.
// A nil *Registry is valid: it hands out nil instruments and nil spans,
// making the whole instrumentation surface a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []*Span // completed or running root spans, in start order
	trace    atomic.Pointer[TraceWriter]
	flight   atomic.Pointer[FlightRecorder]
	current  atomic.Pointer[Span] // most recently started un-ended span
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter interns and returns the named counter (nil when r is nil).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge interns and returns the named gauge (nil when r is nil).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram interns and returns the named histogram (nil when r is nil).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// SetTrace attaches (or detaches, with nil) the JSONL trace sink.
func (r *Registry) SetTrace(t *TraceWriter) {
	if r != nil {
		r.trace.Store(t)
	}
}

// Trace returns the attached trace sink, nil when absent or r is nil.
// Hot paths fetch it once and keep the pointer.
func (r *Registry) Trace() *TraceWriter {
	if r == nil {
		return nil
	}
	return r.trace.Load()
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Snapshot is a point-in-time export of a registry, JSON-serializable.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]int64    `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot      `json:"spans,omitempty"`
}

// Snapshot exports the registry's current state (empty when r is nil).
// It is safe to call mid-build, concurrently with running instruments
// and open spans — the /metrics and /progress endpoints do exactly that.
// Spans still running snapshot with Running=true, a zero EndTime, and
// their elapsed time so far; counters, gauges, and histograms read their
// atomics without stopping writers, so a snapshot is per-instrument
// consistent rather than a global atomic cut.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Counters: map[string]int64{}, Gauges: map[string]int64{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	spans := append([]*Span{}, r.spans...)
	r.mu.Unlock()

	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.Value()
	}
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, h := range hists {
		hs := HistogramSnapshot{
			Name:  h.name,
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
			Max:   h.max.Load(),
		}
		if hs.Count > 0 {
			hs.Mean = float64(hs.Sum) / float64(hs.Count)
		}
		s.Histograms = append(s.Histograms, hs)
	}
	for _, sp := range spans {
		s.Spans = append(s.Spans, sp.snapshot())
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Snapshot())
}

// TakeSpans removes and returns the registry's root spans (running spans
// included — callers doing per-build accounting call this between
// builds, when everything has ended).
func (r *Registry) TakeSpans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	spans := r.spans
	r.spans = nil
	return spans
}

// CurrentPath returns the slash-joined path of the most recently started
// un-ended span ("" when idle or r is nil). The runtime sampler tags
// each memory sample with it so heap growth is attributable to a phase.
func (r *Registry) CurrentPath() string {
	if r == nil {
		return ""
	}
	return r.current.Load().Path()
}

// ProgressLine renders a one-line status for periodic progress output:
// the path of the deepest running span plus the largest counters.
func (r *Registry) ProgressLine() string {
	if r == nil {
		return ""
	}
	var b []byte
	if cur := r.current.Load(); cur != nil {
		b = append(b, "phase="...)
		b = append(b, cur.Path()...)
	}
	type kv struct {
		name string
		v    int64
	}
	r.mu.Lock()
	vals := make([]kv, 0, len(r.counters))
	for name, c := range r.counters {
		if v := c.Value(); v > 0 {
			vals = append(vals, kv{name, v})
		}
	}
	r.mu.Unlock()
	sort.Slice(vals, func(i, j int) bool {
		if vals[i].v != vals[j].v {
			return vals[i].v > vals[j].v
		}
		return vals[i].name < vals[j].name
	})
	if len(vals) > 6 {
		vals = vals[:6]
	}
	for _, e := range vals {
		if len(b) > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("%s=%d", e.name, e.v)...)
	}
	return string(b)
}
