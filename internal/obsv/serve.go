package obsv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// ServerOptions configures the telemetry HTTP server.
type ServerOptions struct {
	// Sampler, when set, contributes its time series to /progress.
	Sampler *Sampler
	// Queries, when set, backs the /queries endpoint with live
	// per-query introspection.
	Queries *QueryTracker
	// History, when set, backs the /metrics/history endpoint with the
	// flight recorder's metric time series.
	History *History
	// Flight, when set, backs the /debug/bundle endpoint: a POST (or
	// GET, for curl convenience) writes a diagnostic bundle on demand.
	Flight *FlightRecorder
	// ProgressInterval is the SSE emission cadence (default 1s).
	ProgressInterval time.Duration
}

// Server is the opt-in live telemetry plane of a build or query process:
//
//	GET /metrics       Prometheus text exposition of the registry
//	GET /healthz       liveness ("ok")
//	GET /progress      JSON: progress line, snapshot, sampler series
//	GET /progress      (Accept: text/event-stream or ?stream=1) SSE
//	                   stream of progress lines
//	GET /queries       JSON: in-flight queries + recent completed ring
//	GET /queries      (Accept: text/event-stream or ?stream=1) SSE
//	                   stream of the same document
//	GET /debug/pprof/  the standard pprof handlers
//
// It serves snapshots of a live registry, so everything works mid-build;
// nothing here blocks or slows the instrumented work beyond the snapshot
// cost per scrape.
type Server struct {
	reg      *Registry
	smp      *Sampler
	queries  *QueryTracker
	history  *History
	flight   *FlightRecorder
	interval time.Duration
	start    time.Time
	ln       net.Listener
	srv      *http.Server
}

// StartServer listens on addr (host:port, ":0" picks a free port) and
// serves the registry's telemetry until Close. An error is returned only
// for listen failures; serve errors after startup are dropped (the
// telemetry plane must never fail the build).
func StartServer(addr string, reg *Registry, opts ServerOptions) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("obsv: serve needs a registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		reg:      reg,
		smp:      opts.Sampler,
		queries:  opts.Queries,
		history:  opts.History,
		flight:   opts.Flight,
		interval: opts.ProgressInterval,
		start:    time.Now(),
		ln:       ln,
	}
	if s.interval <= 0 {
		s.interval = time.Second
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics/history", s.handleHistory)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/queries", s.handleQueries)
	mux.HandleFunc("/debug/bundle", s.handleBundle)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the server's actual listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down, dropping open SSE streams (no-op on nil).
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteProm(w, s.reg.Snapshot())
}

// handleHistory serves the flight recorder's metric time series: JSON
// by default (the HistoryDoc: merged points + counter deltas and rates
// over the window), CSV with ?format=csv or an Accept: text/csv header.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		http.Error(w, "history store not enabled", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "csv" || strings.Contains(r.Header.Get("Accept"), "text/csv") {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		s.history.WriteCSV(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(s.history.Doc())
}

// handleBundle writes a diagnostic bundle on demand and reports its
// path.
func (s *Server) handleBundle(w http.ResponseWriter, _ *http.Request) {
	if s.flight == nil {
		http.Error(w, "flight recorder not enabled (-flight-dir)", http.StatusNotFound)
		return
	}
	dir := s.flight.Trigger("http", "on-demand via /debug/bundle")
	if dir == "" {
		http.Error(w, "bundle write failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(map[string]string{"bundle": dir})
}

// healthzDoc is the JSON body of a degraded /healthz response.
type healthzDoc struct {
	Status  string   `json:"status"`
	Reasons []string `json:"reasons"`
}

// healthReasons inspects the registry snapshot for degraded conditions:
// trace events dropped at the byte cap, or live heap above the declared
// memory budget. It reads only already-interned instruments (via the
// snapshot), so probing health never pollutes /metrics with
// zero-valued entries.
func healthReasons(snap *Snapshot) []string {
	var reasons []string
	if d := snap.Counters["trace.dropped"]; d > 0 {
		reasons = append(reasons, fmt.Sprintf("trace.dropped=%d: trace events lost at -trace-max-bytes cap", d))
	}
	budget := snap.Gauges[BudgetGaugeName]
	heap := snap.Gauges["runtime.heap_inuse_bytes"]
	if budget > 0 && heap > budget {
		reasons = append(reasons, fmt.Sprintf("heap_inuse_bytes=%d exceeds mem_budget_bytes=%d", heap, budget))
	}
	return reasons
}

// handleHealthz reports liveness: 200 "ok" when healthy, 503 with a
// JSON reason list when the process is degraded (trace drops, heap over
// budget).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	reasons := healthReasons(s.reg.Snapshot())
	if len(reasons) == 0 {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(healthzDoc{Status: "degraded", Reasons: reasons})
}

// progressJSON is the /progress JSON document.
type progressJSON struct {
	ElapsedSec float64     `json:"elapsed_sec"`
	Progress   string      `json:"progress"`
	Snapshot   *Snapshot   `json:"snapshot"`
	MemSeries  []MemSample `json:"mem_series,omitempty"`
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") || r.URL.Query().Get("stream") != "" {
		s.streamProgress(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(progressJSON{
		ElapsedSec: time.Since(s.start).Seconds(),
		Progress:   s.reg.ProgressLine(),
		Snapshot:   s.reg.Snapshot(),
		MemSeries:  s.smp.Series(),
	})
}

// queriesJSON is the /queries document: the live in-flight table plus
// the ring of recently completed query records.
type queriesJSON struct {
	ElapsedSec float64         `json:"elapsed_sec"`
	Inflight   []InflightQuery `json:"inflight"`
	Recent     []QueryRecord   `json:"recent"`
}

func (s *Server) queriesDoc() queriesJSON {
	doc := queriesJSON{
		ElapsedSec: time.Since(s.start).Seconds(),
		Inflight:   s.queries.Inflight(),
		Recent:     s.queries.Recent(),
	}
	if doc.Inflight == nil {
		doc.Inflight = []InflightQuery{}
	}
	if doc.Recent == nil {
		doc.Recent = []QueryRecord{}
	}
	return doc
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") || r.URL.Query().Get("stream") != "" {
		s.streamQueries(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(s.queriesDoc())
}

// streamQueries emits one SSE "queries" event per interval carrying the
// /queries JSON document, until the client hangs up.
func (s *Server) streamQueries(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	emit := func() bool {
		data, err := json.Marshal(s.queriesDoc())
		if err != nil {
			return false
		}
		_, werr := fmt.Fprintf(w, "event: queries\ndata: %s\n\n", data)
		fl.Flush()
		return werr == nil
	}
	if !emit() {
		return
	}
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
			if !emit() {
				return
			}
		}
	}
}

// streamProgress emits one SSE "progress" event per interval carrying
// the registry's progress line, until the client hangs up.
func (s *Server) streamProgress(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	emit := func() bool {
		_, err := fmt.Fprintf(w, "event: progress\ndata: [%7.1fs] %s\n\n",
			time.Since(s.start).Seconds(), s.reg.ProgressLine())
		fl.Flush()
		return err == nil
	}
	if !emit() {
		return
	}
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
			if !emit() {
				return
			}
		}
	}
}
