package obsv

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// TraceWriter is a line-oriented JSON event sink: every Emit marshals
// one event and appends one line. It is safe for concurrent use (a build
// may run parallel partition workers) and buffers internally; call Flush
// (or Close the underlying file after Flush) when done. The nil
// TraceWriter is a valid no-op.
type TraceWriter struct {
	mu       sync.Mutex
	w        *bufio.Writer
	err      error
	max      int64 // byte budget, 0 = unlimited
	written  int64
	events   atomic.Int64
	dropped  atomic.Int64
	cDropped *Counter

	// Tail ring of the most recent marshalled event lines (without the
	// trailing newline), retained even for events dropped at the byte
	// cap: a diagnostic bundle wants the trace leading up to the
	// incident, which is exactly the part a capped sink no longer has.
	tail     [][]byte
	tailNext int
	tailFull bool
}

// NewTraceWriter wraps w as a JSONL trace sink.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// SetMaxBytes caps the total bytes the sink will ever write (0 =
// unlimited). Events past the cap are dropped and counted instead of
// written, so a long-running -serve-hold session cannot fill the disk.
func (t *TraceWriter) SetMaxBytes(n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.max = n
}

// SetDropCounter attaches a registry counter (conventionally
// "trace.dropped") incremented once per event dropped at the cap.
func (t *TraceWriter) SetDropCounter(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cDropped = c
}

// SetTailCap sizes the in-memory tail ring of recent event lines (0
// disables it). The ring holds marshalled lines, so memory is bounded
// by n times the typical event size.
func (t *TraceWriter) SetTailCap(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 {
		t.tail = nil
	} else {
		t.tail = make([][]byte, n)
	}
	t.tailNext = 0
	t.tailFull = false
}

// Tail returns the retained recent event lines in emission order
// (oldest first), without trailing newlines. Nil when no tail ring is
// configured. The lines are the marshalled bytes themselves; callers
// must not mutate them.
func (t *TraceWriter) Tail() [][]byte {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tail == nil {
		return nil
	}
	if !t.tailFull {
		return append([][]byte{}, t.tail[:t.tailNext]...)
	}
	out := make([][]byte, 0, len(t.tail))
	out = append(out, t.tail[t.tailNext:]...)
	return append(out, t.tail[:t.tailNext]...)
}

// Dropped returns the number of events dropped at the byte cap.
func (t *TraceWriter) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Emit appends one event as a JSON line. Marshal or write errors are
// sticky and reported by Flush; tracing never fails a build. Past the
// SetMaxBytes budget, events are dropped (and counted) instead.
func (t *TraceWriter) Emit(ev any) {
	if t == nil {
		return
	}
	data, err := json.Marshal(ev)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if t.tail != nil {
		t.tail[t.tailNext] = data
		t.tailNext++
		if t.tailNext == len(t.tail) {
			t.tailNext = 0
			t.tailFull = true
		}
	}
	if t.max > 0 && t.written+int64(len(data))+1 > t.max {
		t.dropped.Add(1)
		t.cDropped.Inc()
		return
	}
	if _, err := t.w.Write(data); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
		return
	}
	t.written += int64(len(data)) + 1
	t.events.Add(1)
}

// Events returns the number of events emitted so far.
func (t *TraceWriter) Events() int64 {
	if t == nil {
		return 0
	}
	return t.events.Load()
}

// Flush drains the buffer and returns the first error encountered, if
// any.
func (t *TraceWriter) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Trace event vocabulary. Every event carries Ev as its discriminator;
// the schema is documented in DESIGN.md §Observability.

// NodeEvent records one ExecutePlan visit: the lattice node whose tuple
// was computed from a segment of Rows source rows. Depth is the
// recursion depth (number of grouped dimensions so far).
type NodeEvent struct {
	Ev    string `json:"ev"` // "node"
	Node  int64  `json:"node"`
	Rows  int    `json:"rows"`
	Depth int    `json:"depth"`
}

// EdgeEvent records one FollowEdge execution: the plan edge taken into
// the node, whether it was a solid edge (fresh sort) or a dashed edge
// (pipelined refinement of an existing order), and the sort algorithm
// that ran.
type EdgeEvent struct {
	Ev    string `json:"ev"`   // "edge"
	Node  int64  `json:"node"` // target node of the edge
	Edge  string `json:"edge"` // "solid" | "dashed"
	Mode  string `json:"mode"` // "sort" | "pipeline"
	Alg   string `json:"alg"`  // "counting" | "quick" | "none"
	Dim   int    `json:"dim"`
	Level int    `json:"level"`
	Rows  int    `json:"rows"`
}

// SpanEvent records the completion of a phase span.
type SpanEvent struct {
	Ev           string `json:"ev"` // "span"
	Span         string `json:"span"`
	ElapsedUs    int64  `json:"elapsed_us"`
	RowsIn       int64  `json:"rows_in,omitempty"`
	RowsOut      int64  `json:"rows_out,omitempty"`
	BytesRead    int64  `json:"bytes_read,omitempty"`
	BytesWritten int64  `json:"bytes_written,omitempty"`
}

// FlushEvent records one signature-pool flush: occupancy at flush time
// and the NT/CAT split observed.
type FlushEvent struct {
	Ev        string `json:"ev"` // "pool-flush"
	Size      int    `json:"size"`
	NTs       int64  `json:"nts"`
	CatGroups int64  `json:"cat_groups"`
	CatSigs   int64  `json:"cat_sigs"`
	Format    string `json:"format"`
}

// LevelEvent records one candidate level considered during
// partition-level selection (§4), with the feasibility verdict.
type LevelEvent struct {
	Ev       string `json:"ev"` // "select-level"
	Dim      string `json:"dim"`
	Level    int    `json:"level"`
	Card     int64  `json:"card"`
	Need     int64  `json:"need"`
	NBytes   int64  `json:"n_bytes"`
	NBudget  int64  `json:"n_budget"`
	Feasible bool   `json:"feasible"`
	Reason   string `json:"reason,omitempty"`
}

// PartitionEvent records one partition file produced by the split pass.
type PartitionEvent struct {
	Ev    string `json:"ev"` // "partition"
	Index int    `json:"index"`
	Rows  int64  `json:"rows"`
	Bytes int64  `json:"bytes"`
}

// MemSampleEvent records one runtime sampler tick: heap occupancy, GC
// state, and goroutine count, tagged with the span path that was running
// when the sample was taken.
type MemSampleEvent struct {
	Ev           string `json:"ev"` // "mem_sample"
	HeapInuse    uint64 `json:"heap_inuse"`
	HeapAlloc    uint64 `json:"heap_alloc"`
	Goroutines   int    `json:"goroutines"`
	NumGC        uint32 `json:"num_gc"`
	GCPauseNanos uint64 `json:"gc_pause_total_ns"`
	Span         string `json:"span,omitempty"`
}

// MemBudgetEvent records the sampler observing heap-in-use crossing the
// declared memory budget (the build.mem_budget_bytes gauge, set by the
// partitioned build path from Options.MemoryBudget): Dir is "above" when
// the crossing violates the budget and "below" when heap drops back
// under it. §4's budget-adherence claim is externally checkable from
// these events.
type MemBudgetEvent struct {
	Ev        string `json:"ev"` // "mem_budget"
	Dir       string `json:"dir"`
	HeapInuse uint64 `json:"heap_inuse"`
	Budget    int64  `json:"budget"`
	Span      string `json:"span,omitempty"`
}
