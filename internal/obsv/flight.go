package obsv

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"
)

// The flight recorder is the crash-time half of the observability
// plane: a FlightRecorder attached to a registry dumps a self-contained
// diagnostic bundle directory on trigger — a worker or query panic,
// SIGQUIT/SIGUSR1, a memory-budget crossing, or an on-demand
// /debug/bundle request. Each bundle holds enough state to reconstruct
// the incident offline (`curectl doctor` reads one back): the metrics
// snapshot and history window, the recent trace tail, the query
// tracker's in-flight table and completion ring, a full goroutine dump,
// a heap profile, and the process's flags/buildinfo. Writing a bundle
// is best-effort file by file: a failed member is recorded in the
// manifest rather than aborting the rest.

// Bundle member filenames. DESIGN.md §10 documents the format.
const (
	BundleManifest   = "bundle.json"
	BundleMetrics    = "metrics.json"
	BundleHistory    = "history.json"
	BundleMemSeries  = "mem_series.json"
	BundleQueries    = "queries.json"
	BundleGoroutines = "goroutines.txt"
	BundleHeap       = "heap.pprof"
	BundleTraceTail  = "trace_tail.jsonl"
	BundleStack      = "stack.txt"
)

// BundleInfo is the bundle.json manifest: why and when the bundle was
// written, by which process, and which members made it to disk.
type BundleInfo struct {
	Time      time.Time `json:"time"`
	Reason    string    `json:"reason"`
	Context   string    `json:"context,omitempty"`
	Panic     string    `json:"panic,omitempty"`
	PID       int       `json:"pid"`
	GoVersion string    `json:"go_version"`
	Args      []string  `json:"args,omitempty"`
	Files     []string  `json:"files"`
	// Errors lists members that failed to write, as "file: error".
	Errors []string `json:"errors,omitempty"`
}

// bundleQueriesDoc mirrors the /queries document inside a bundle.
type bundleQueriesDoc struct {
	Inflight []InflightQuery `json:"inflight"`
	Recent   []QueryRecord   `json:"recent"`
}

// FlightRecorder writes diagnostic bundles into a directory. Attach one
// to a registry with SetFlight; panic-capture wrappers and signal
// handlers find it there. The nil FlightRecorder is a valid no-op whose
// Trigger returns "".
type FlightRecorder struct {
	dir string
	reg *Registry

	mu      sync.Mutex
	seq     int
	once    map[string]bool // reasons already bundled via TriggerOnce
	sampler *Sampler
	history *History
	queries *QueryTracker
}

// NewFlightRecorder creates a recorder writing bundles under dir
// (created on first trigger). reg supplies the metrics snapshot and the
// trace tail; Attach wires the optional sources.
func NewFlightRecorder(dir string, reg *Registry) *FlightRecorder {
	return &FlightRecorder{dir: dir, reg: reg, once: map[string]bool{}}
}

// Attach wires the recorder's optional data sources; nil arguments
// leave the corresponding member out of future bundles.
func (f *FlightRecorder) Attach(smp *Sampler, h *History, q *QueryTracker) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sampler = smp
	f.history = h
	f.queries = q
}

// Dir returns the recorder's bundle directory ("" for nil).
func (f *FlightRecorder) Dir() string {
	if f == nil {
		return ""
	}
	return f.dir
}

// Trigger writes one bundle and returns its directory path ("" when f
// is nil or the bundle directory cannot be created). reason is a short
// machine token ("panic", "sigquit", "mem_budget", "http", ...); note
// is free-form context for the manifest.
func (f *FlightRecorder) Trigger(reason, note string) string {
	return f.write(reason, note, "", nil)
}

// TriggerOnce writes a bundle the first time each reason fires and is a
// no-op (returning "") on repeats — the mem-budget crossing can flap,
// and one bundle per cause is enough.
func (f *FlightRecorder) TriggerOnce(reason, note string) string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	fired := f.once[reason]
	f.once[reason] = true
	f.mu.Unlock()
	if fired {
		return ""
	}
	return f.write(reason, note, "", nil)
}

// TriggerPanic writes a bundle for a captured panic, embedding the
// panic value and capture context in the manifest and the captured
// stack as stack.txt.
func (f *FlightRecorder) TriggerPanic(pe *PanicError) string {
	if f == nil || pe == nil {
		return ""
	}
	return f.write("panic", pe.Context, fmt.Sprint(pe.Value), pe.Stack)
}

func (f *FlightRecorder) write(reason, note, panicMsg string, stack []byte) string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	f.seq++
	seq := f.seq
	smp, hist, queries := f.sampler, f.history, f.queries
	f.mu.Unlock()

	// One last history point so the final window ends at the incident.
	hist.Record()

	now := time.Now()
	dir := filepath.Join(f.dir, fmt.Sprintf("bundle-%s-%03d-%s",
		now.UTC().Format("20060102T150405Z"), seq, reason))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}

	info := BundleInfo{
		Time:      now,
		Reason:    reason,
		Context:   note,
		Panic:     panicMsg,
		PID:       os.Getpid(),
		GoVersion: runtime.Version(),
		Args:      os.Args,
	}
	member := func(name string, write func(*os.File) error) {
		path := filepath.Join(dir, name)
		fh, err := os.Create(path)
		if err == nil {
			err = write(fh)
			if cerr := fh.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			os.Remove(path)
			info.Errors = append(info.Errors, fmt.Sprintf("%s: %v", name, err))
			return
		}
		info.Files = append(info.Files, name)
	}
	writeJSON := func(v any) func(*os.File) error {
		return func(fh *os.File) error {
			enc := json.NewEncoder(fh)
			enc.SetIndent("", " ")
			return enc.Encode(v)
		}
	}

	member(BundleMetrics, writeJSON(f.reg.Snapshot()))
	if hist != nil {
		member(BundleHistory, writeJSON(hist.Doc()))
	}
	if smp != nil {
		member(BundleMemSeries, writeJSON(smp.Series()))
	}
	if queries != nil {
		doc := bundleQueriesDoc{Inflight: queries.Inflight(), Recent: queries.Recent()}
		if doc.Inflight == nil {
			doc.Inflight = []InflightQuery{}
		}
		if doc.Recent == nil {
			doc.Recent = []QueryRecord{}
		}
		member(BundleQueries, writeJSON(doc))
	}
	member(BundleGoroutines, func(fh *os.File) error {
		return pprof.Lookup("goroutine").WriteTo(fh, 2)
	})
	member(BundleHeap, func(fh *os.File) error {
		return pprof.Lookup("heap").WriteTo(fh, 0)
	})
	if tail := f.reg.Trace().Tail(); len(tail) > 0 {
		member(BundleTraceTail, func(fh *os.File) error {
			for _, line := range tail {
				if _, err := fh.Write(line); err != nil {
					return err
				}
				if _, err := fh.Write([]byte("\n")); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if len(stack) > 0 {
		member(BundleStack, func(fh *os.File) error {
			_, err := fh.Write(stack)
			return err
		})
	}

	member(BundleManifest, writeJSON(&info))
	return dir
}

// SetFlight attaches (or detaches, with nil) the registry's flight
// recorder; panic wrappers, the sampler's budget check, and the
// telemetry server find it here.
func (r *Registry) SetFlight(f *FlightRecorder) {
	if r != nil {
		r.flight.Store(f)
	}
}

// Flight returns the attached flight recorder, nil when absent or r is
// nil.
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.flight.Load()
}

// PanicError wraps a panic captured in an instrumented worker: the
// original panic value, the stack of the panicking goroutine, the
// capture-site context ("cube worker slot=2 batch=5 span=build/cube",
// "query id=17 op=node"), and the bundle directory the flight recorder
// wrote, when one was attached. CapturePanic re-panics with it, so an
// uncaught worker panic still crashes the process — but the crash
// output names the culprit and the wreckage is already on disk.
type PanicError struct {
	Context string
	Value   any
	Stack   []byte
	Bundle  string
}

// Error renders the panic with its capture context.
func (e *PanicError) Error() string {
	msg := fmt.Sprintf("panic in %s: %v", e.Context, e.Value)
	if e.Bundle != "" {
		msg += fmt.Sprintf(" (diagnostic bundle: %s)", e.Bundle)
	}
	return msg
}

// CapturePanic is the deferred panic-capture hook for instrumented
// goroutines and call sites:
//
//	defer obsv.CapturePanic(reg, func() string { return "cube worker " + path })
//
// On panic it wraps the value in a *PanicError carrying ctx() and the
// panicking goroutine's stack, asks reg's flight recorder (if any) to
// write a diagnostic bundle, and re-panics with the wrapper. A value
// that is already a *PanicError (re-panicked across a layer boundary)
// passes through unwrapped — but if its bundle is still empty and this
// layer has a recorder, the bundle is written here, so panics crossing
// from a registry-less inner layer still get recorded. ctx may be nil.
// Note recover() semantics: CapturePanic itself must be the deferred
// function, not called from inside one.
func CapturePanic(reg *Registry, ctx func() string) {
	v := recover()
	if v == nil {
		return
	}
	if pe, ok := v.(*PanicError); ok {
		if pe.Bundle == "" {
			pe.Bundle = reg.Flight().TriggerPanic(pe)
		}
		panic(pe)
	}
	pe := &PanicError{Value: v}
	if ctx != nil {
		pe.Context = ctx()
	}
	stack := make([]byte, 64<<10)
	pe.Stack = stack[:runtime.Stack(stack, false)]
	pe.Bundle = reg.Flight().TriggerPanic(pe)
	panic(pe)
}
