package obsv

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

// counterValues projects one counter out of a series, in order.
func counterValues(series []HistoryPoint, name string) []int64 {
	out := make([]int64, len(series))
	for i, pt := range series {
		out[i] = pt.Counters[name]
	}
	return out
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHistoryRingWraparound drives both rings past capacity and checks
// the merged series: raw holds the newest Window/Interval points, the
// long ring every LongEvery-th point, and Series splices long points
// strictly older than the raw window in front of it.
func TestHistoryRingWraparound(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.ticks")
	// rawCap = 4s/1s = 4; longCap = 8s/(1s×2) = 4, fed every 2nd point.
	h := newHistory(r, HistoryOptions{
		Interval:   time.Second,
		Window:     4 * time.Second,
		LongEvery:  2,
		LongWindow: 8 * time.Second,
	})
	for i := 0; i < 10; i++ {
		c.Add(1)
		h.Record()
	}
	if h.Points() != 10 {
		t.Fatalf("Points = %d, want 10", h.Points())
	}
	// Raw ring wrapped twice: the last rawCap points survive.
	if got := counterValues(h.RawSeries(), "test.ticks"); !int64sEqual(got, []int64{7, 8, 9, 10}) {
		t.Fatalf("RawSeries ticks = %v", got)
	}
	// Long ring saw points 2,4,6,8,10 and wrapped once at cap 4.
	if got := counterValues(h.LongSeries(), "test.ticks"); !int64sEqual(got, []int64{4, 6, 8, 10}) {
		t.Fatalf("LongSeries ticks = %v", got)
	}
	// Merged: long points predating the raw window (4, 6), then raw.
	series := h.Series()
	if got := counterValues(series, "test.ticks"); !int64sEqual(got, []int64{4, 6, 7, 8, 9, 10}) {
		t.Fatalf("Series ticks = %v", got)
	}
	for i := 1; i < len(series); i++ {
		if series[i].Time.Before(series[i-1].Time) {
			t.Fatalf("Series out of order at %d", i)
		}
	}
	if d := h.Deltas()["test.ticks"]; d != 6 {
		t.Fatalf("Deltas over merged series = %d, want 6 (10-4)", d)
	}
}

// TestHistoryDownsampleBoundary pins the raw→long hand-off before any
// wraparound: while the raw ring still covers everything, Series must
// be exactly the raw series (no duplicated long points).
func TestHistoryDownsampleBoundary(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.ticks")
	h := newHistory(r, HistoryOptions{
		Interval:  time.Second,
		Window:    8 * time.Second,
		LongEvery: 2,
	})
	for i := 0; i < 4; i++ {
		c.Add(1)
		h.Record()
	}
	if got := counterValues(h.LongSeries(), "test.ticks"); !int64sEqual(got, []int64{2, 4}) {
		t.Fatalf("LongSeries ticks = %v", got)
	}
	if got := counterValues(h.Series(), "test.ticks"); !int64sEqual(got, []int64{1, 2, 3, 4}) {
		t.Fatalf("Series ticks = %v (long points must not duplicate raw ones)", got)
	}
}

// TestHistoryDeltasMatchCounters is the contract the doctor's rate
// table rests on: deltas over the window equal the counter increments
// between the window's endpoints, and histograms project into
// count/sum counters and quantile gauges.
func TestHistoryDeltasMatchCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter("storage.read.bytes").Add(100)
	r.Gauge("runtime.heap_inuse_bytes").Set(42)
	r.Histogram("query.latency_us").Observe(1000)
	h := newHistory(r, HistoryOptions{Interval: 10 * time.Millisecond})
	h.Record()
	time.Sleep(5 * time.Millisecond)
	r.Counter("storage.read.bytes").Add(250)
	r.Histogram("query.latency_us").Observe(3000)
	h.Record()

	doc := h.Doc()
	if doc.IntervalSec != 0.01 {
		t.Fatalf("IntervalSec = %v", doc.IntervalSec)
	}
	if doc.WindowSec <= 0 {
		t.Fatalf("WindowSec = %v", doc.WindowSec)
	}
	if d := doc.Deltas["storage.read.bytes"]; d != 250 {
		t.Fatalf("delta storage.read.bytes = %d, want 250", d)
	}
	if d := doc.Deltas["query.latency_us.count"]; d != 1 {
		t.Fatalf("delta query.latency_us.count = %d, want 1", d)
	}
	if rate := doc.RatesPerSec["storage.read.bytes"]; rate <= 0 {
		t.Fatalf("rate storage.read.bytes = %v", rate)
	}
	last := doc.Points[len(doc.Points)-1]
	if last.Gauges["runtime.heap_inuse_bytes"] != 42 {
		t.Fatalf("gauge missing from point: %+v", last.Gauges)
	}
	if last.Gauges["query.latency_us.p50"] == 0 {
		t.Fatalf("histogram quantile missing from point: %+v", last.Gauges)
	}
	// Quantiles are gauges, never counters: they must not appear in
	// deltas.
	if _, ok := doc.Deltas["query.latency_us.p50"]; ok {
		t.Fatal("histogram quantile leaked into Deltas")
	}
}

func TestHistoryCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.ticks").Add(1)
	h := newHistory(r, HistoryOptions{Interval: time.Second})
	h.Record()
	r.Gauge("b.depth").Set(7)
	h.Record()

	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("CSV rows = %d, want header + 2 points", len(rows))
	}
	header := strings.Join(rows[0], ",")
	if header != "time,a.ticks,b.depth" {
		t.Fatalf("CSV header = %q", header)
	}
	// First point predates b.depth: its cell must be empty, not zero.
	if rows[1][1] != "1" || rows[1][2] != "" {
		t.Fatalf("first CSV row = %v", rows[1])
	}
	if rows[2][2] != "7" {
		t.Fatalf("second CSV row = %v", rows[2])
	}
}

func TestHistoryStartStopAndNil(t *testing.T) {
	var nilH *History
	nilH.Record()
	nilH.Stop()
	if nilH.Series() != nil || nilH.Doc() != nil || nilH.Points() != 0 || len(nilH.Deltas()) != 0 {
		t.Fatal("nil history not inert")
	}
	if StartHistory(nil, HistoryOptions{}) != nil {
		t.Fatal("history on nil registry should be nil")
	}

	r := NewRegistry()
	h := StartHistory(r, HistoryOptions{Interval: 2 * time.Millisecond, Window: 100 * time.Millisecond})
	if h.Points() < 1 {
		t.Fatal("no immediate first point")
	}
	for h.Points() < 3 {
		time.Sleep(time.Millisecond)
	}
	before := h.Points()
	h.Stop()
	if h.Points() <= before {
		t.Fatalf("Stop did not record a final point: %d then %d", before, h.Points())
	}
	h.Stop() // idempotent
	if len(h.Series()) == 0 {
		t.Fatal("empty series after ticking history")
	}
}
