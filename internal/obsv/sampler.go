package obsv

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// BudgetGaugeName is the gauge the partitioned build path sets to its
// declared memory budget (core.Options.MemoryBudget); the sampler reads
// it every tick to decide whether heap-in-use violates §4's budget rule.
const BudgetGaugeName = "build.mem_budget_bytes"

// MemSample is one runtime sampler observation.
type MemSample struct {
	Time         time.Time `json:"time"`
	HeapInuse    uint64    `json:"heap_inuse"`
	HeapAlloc    uint64    `json:"heap_alloc"`
	Goroutines   int       `json:"goroutines"`
	NumGC        uint32    `json:"num_gc"`
	GCPauseNanos uint64    `json:"gc_pause_total_ns"`
	Span         string    `json:"span,omitempty"`
}

// SamplerOptions configures a runtime sampler.
type SamplerOptions struct {
	// Interval between samples (default 250ms).
	Interval time.Duration
	// Capacity of the in-memory ring buffer (default 960 samples — four
	// minutes at the default interval).
	Capacity int
	// Budget overrides the registry's build.mem_budget_bytes gauge as
	// the heap budget (bytes); ≤ 0 defers to the gauge.
	Budget int64
}

// Sampler periodically samples runtime.MemStats into a ring-buffer time
// series, mirrors the latest values into registry gauges (runtime.*, so
// they ride along in /metrics and -metrics-out), tags each sample with
// the span path running at sample time, and — when a memory budget is
// declared — emits a mem_budget trace event at every budget crossing.
// The nil Sampler is a valid no-op.
type Sampler struct {
	reg  *Registry
	opts SamplerOptions

	gHeapInuse  *Gauge
	gHeapAlloc  *Gauge
	gGoroutines *Gauge
	gNumGC      *Gauge
	gGCPause    *Gauge

	mu   sync.Mutex
	ring []MemSample
	next int
	full bool
	over bool // heap currently above budget

	count    atomic.Int64
	done     chan struct{}
	finished chan struct{}
}

// StartSampler launches a runtime sampler attached to reg (nil when reg
// is nil). An immediate first sample is taken, so even a process that
// crashes within the first interval leaves a memory trajectory in its
// diagnostic bundle. Call Stop when done; the final tick runs at Stop.
func StartSampler(reg *Registry, opts SamplerOptions) *Sampler {
	if reg == nil {
		return nil
	}
	if opts.Interval <= 0 {
		opts.Interval = 250 * time.Millisecond
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 960
	}
	s := &Sampler{
		reg:         reg,
		opts:        opts,
		gHeapInuse:  reg.Gauge("runtime.heap_inuse_bytes"),
		gHeapAlloc:  reg.Gauge("runtime.heap_alloc_bytes"),
		gGoroutines: reg.Gauge("runtime.goroutines"),
		gNumGC:      reg.Gauge("runtime.gc_count"),
		gGCPause:    reg.Gauge("runtime.gc_pause_total_ns"),
		ring:        make([]MemSample, opts.Capacity),
		done:        make(chan struct{}),
		finished:    make(chan struct{}),
	}
	s.sample()
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.finished)
	t := time.NewTicker(s.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sample()
		case <-s.done:
			s.sample()
			return
		}
	}
}

// sample takes one observation: ReadMemStats, gauge mirror, ring append,
// trace emission, budget check.
func (s *Sampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	sm := MemSample{
		Time:         time.Now(),
		HeapInuse:    ms.HeapInuse,
		HeapAlloc:    ms.HeapAlloc,
		Goroutines:   runtime.NumGoroutine(),
		NumGC:        ms.NumGC,
		GCPauseNanos: ms.PauseTotalNs,
		Span:         s.reg.CurrentPath(),
	}
	s.gHeapInuse.Set(int64(sm.HeapInuse))
	s.gHeapAlloc.Set(int64(sm.HeapAlloc))
	s.gGoroutines.Set(int64(sm.Goroutines))
	s.gNumGC.Set(int64(sm.NumGC))
	s.gGCPause.Set(int64(sm.GCPauseNanos))

	s.mu.Lock()
	s.ring[s.next] = sm
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
	over := s.over
	s.mu.Unlock()
	s.count.Add(1)

	tr := s.reg.Trace()
	tr.Emit(MemSampleEvent{
		Ev:           "mem_sample",
		HeapInuse:    sm.HeapInuse,
		HeapAlloc:    sm.HeapAlloc,
		Goroutines:   sm.Goroutines,
		NumGC:        sm.NumGC,
		GCPauseNanos: sm.GCPauseNanos,
		Span:         sm.Span,
	})

	budget := s.opts.Budget
	if budget <= 0 {
		budget = s.reg.Gauge(BudgetGaugeName).Value()
	}
	if budget <= 0 {
		return
	}
	nowOver := sm.HeapInuse > uint64(budget)
	if nowOver == over {
		return
	}
	s.mu.Lock()
	s.over = nowOver
	s.mu.Unlock()
	dir := "below"
	if nowOver {
		dir = "above"
		s.reg.Counter("runtime.mem_budget_exceeded").Inc()
		// First budget violation is incident-worthy: capture the state
		// while the over-budget heap is still live (once per process —
		// crossings can flap).
		s.reg.Flight().TriggerOnce("mem_budget",
			fmt.Sprintf("heap_inuse %d > budget %d (span %s)", sm.HeapInuse, budget, sm.Span))
	}
	tr.Emit(MemBudgetEvent{
		Ev:        "mem_budget",
		Dir:       dir,
		HeapInuse: sm.HeapInuse,
		Budget:    budget,
		Span:      sm.Span,
	})
}

// Stop takes a final sample and terminates the sampler (no-op on nil).
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	<-s.finished
}

// Samples returns the number of observations taken so far (0 for nil).
func (s *Sampler) Samples() int64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// Series returns the retained samples in chronological order (nil for
// the nil Sampler). The slice is a copy.
func (s *Sampler) Series() []MemSample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		return append([]MemSample{}, s.ring[:s.next]...)
	}
	out := make([]MemSample, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	return append(out, s.ring[:s.next]...)
}
