package obsv

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// openOut opens path for writing, mapping "-" to stdout. The returned
// close func is a no-op for stdout.
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// StartCPUProfile begins a CPU profile at path and returns the stop
// function.
func StartCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes an up-to-date heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // get up-to-date allocation statistics
	return pprof.WriteHeapProfile(f)
}

// WriteMetricsFile writes the registry snapshot as JSON to path ("-" =
// stdout).
func WriteMetricsFile(r *Registry, path string) error {
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(w); err != nil {
		closeFn()
		return err
	}
	return closeFn()
}

// OpenTraceFile creates a JSONL trace sink at path ("-" = stdout) and
// returns it with a close function that flushes and closes the file.
func OpenTraceFile(path string) (*TraceWriter, func() error, error) {
	w, closeFn, err := openOut(path)
	if err != nil {
		return nil, nil, err
	}
	t := NewTraceWriter(w)
	return t, func() error {
		ferr := t.Flush()
		if cerr := closeFn(); ferr == nil {
			ferr = cerr
		}
		return ferr
	}, nil
}

// StartProgress launches a goroutine printing one registry progress line
// to w every interval, for long out-of-core builds. The returned stop
// function prints a final line and terminates the reporter.
func StartProgress(r *Registry, w io.Writer, interval time.Duration) func() {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	start := time.Now()
	emit := func() {
		if line := r.ProgressLine(); line != "" {
			fmt.Fprintf(w, "[%7.1fs] %s\n", time.Since(start).Seconds(), line)
		}
	}
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				emit()
			case <-done:
				emit()
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
