package obsv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestSamplerSamplesAndTagsSpans(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	r.SetTrace(NewTraceWriter(&buf))
	sp := r.StartSpan("build")
	child := sp.Child("partition.cube")
	s := StartSampler(r, SamplerOptions{Interval: 5 * time.Millisecond})
	for s.Samples() < 3 {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	child.End()
	sp.End()
	if err := r.Trace().Flush(); err != nil {
		t.Fatal(err)
	}

	series := s.Series()
	if len(series) < 3 {
		t.Fatalf("series = %d samples, want ≥ 3", len(series))
	}
	for i, sm := range series {
		if sm.HeapInuse == 0 || sm.Goroutines == 0 {
			t.Fatalf("sample %d has zero runtime stats: %+v", i, sm)
		}
		if sm.Span != "build/partition.cube" {
			t.Fatalf("sample %d span = %q", i, sm.Span)
		}
		if i > 0 && sm.Time.Before(series[i-1].Time) {
			t.Fatalf("series out of order at %d", i)
		}
	}
	if r.Gauge("runtime.heap_inuse_bytes").Value() == 0 {
		t.Fatal("sampler did not mirror gauges")
	}
	var memSamples int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev struct {
			Ev   string `json:"ev"`
			Span string `json:"span"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line not JSON: %v", err)
		}
		if ev.Ev == "mem_sample" {
			memSamples++
		}
	}
	if memSamples < 3 {
		t.Fatalf("trace has %d mem_sample events, want ≥ 3", memSamples)
	}

	var nilS *Sampler
	nilS.Stop()
	if nilS.Samples() != 0 || nilS.Series() != nil {
		t.Fatal("nil sampler not inert")
	}
	if StartSampler(nil, SamplerOptions{}) != nil {
		t.Fatal("sampler on nil registry should be nil")
	}
}

func TestSamplerBudgetCrossing(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	r.SetTrace(NewTraceWriter(&buf))
	// A 1-byte budget guarantees heap-in-use is above it: the first
	// sample must record the crossing, and only once (edge-triggered).
	r.Gauge(BudgetGaugeName).Set(1)
	s := StartSampler(r, SamplerOptions{Interval: 2 * time.Millisecond})
	for s.Samples() < 4 {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if err := r.Trace().Flush(); err != nil {
		t.Fatal(err)
	}
	var crossings int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev MemBudgetEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Ev != "mem_budget" {
			continue
		}
		crossings++
		if ev.Dir != "above" || ev.Budget != 1 || ev.HeapInuse <= 1 {
			t.Fatalf("mem_budget event = %+v", ev)
		}
	}
	if crossings != 1 {
		t.Fatalf("crossings = %d, want exactly 1 (edge-triggered)", crossings)
	}
	if r.Counter("runtime.mem_budget_exceeded").Value() != 1 {
		t.Fatal("mem_budget_exceeded counter not bumped")
	}
}

func startTestServer(t *testing.T, r *Registry, opts ServerOptions) *Server {
	t.Helper()
	srv, err := StartServer("127.0.0.1:0", r, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("partition.bytes_read").Add(777)
	sp := r.StartSpan("build") // left running: snapshots must be clean mid-build
	defer sp.End()
	smp := StartSampler(r, SamplerOptions{Interval: 2 * time.Millisecond})
	defer smp.Stop()
	srv := startTestServer(t, r, ServerOptions{Sampler: smp, ProgressInterval: 5 * time.Millisecond})
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	metrics, err := ParseProm(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics not valid Prometheus text: %v\n%s", err, body)
	}
	if metrics["cure_partition_bytes_read"].Value != 777 {
		t.Fatalf("metrics = %v", body)
	}
	if _, ok := metrics[`cure_span_elapsed_seconds{path="build"}`]; !ok {
		t.Fatalf("running span missing from exposition:\n%s", body)
	}

	for smp.Samples() == 0 {
		time.Sleep(time.Millisecond)
	}
	code, body = get(t, base+"/progress")
	if code != 200 {
		t.Fatalf("/progress = %d", code)
	}
	var pj struct {
		ElapsedSec float64     `json:"elapsed_sec"`
		Progress   string      `json:"progress"`
		Snapshot   *Snapshot   `json:"snapshot"`
		MemSeries  []MemSample `json:"mem_series"`
	}
	if err := json.Unmarshal([]byte(body), &pj); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if !strings.Contains(pj.Progress, "phase=build") || pj.Snapshot == nil || len(pj.MemSeries) == 0 {
		t.Fatalf("/progress = %+v", pj)
	}
	if len(pj.Snapshot.Spans) != 1 || !pj.Snapshot.Spans[0].Running || !pj.Snapshot.Spans[0].EndTime.IsZero() {
		t.Fatalf("running span snapshot = %+v", pj.Snapshot.Spans)
	}

	if code, body := get(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestServerProgressSSE(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("build")
	defer sp.End()
	r.Counter("core.sort.rows").Add(5)
	srv := startTestServer(t, r, ServerOptions{ProgressInterval: 5 * time.Millisecond})

	req, err := http.NewRequest("GET", "http://"+srv.Addr()+"/progress", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var events, datas int
	for sc.Scan() && datas < 3 {
		line := sc.Text()
		if strings.HasPrefix(line, "event: progress") {
			events++
		}
		if strings.HasPrefix(line, "data: ") {
			datas++
			if !strings.Contains(line, "phase=build") {
				t.Fatalf("SSE data line %q missing progress content", line)
			}
		}
	}
	if events < 3 || datas < 3 {
		t.Fatalf("SSE stream yielded %d events / %d data lines", events, datas)
	}
}

func TestCLIServeFlags(t *testing.T) {
	c := &CLI{ServeAddr: "127.0.0.1:0", SampleEvery: 2 * time.Millisecond, SlowQueryMs: -1}
	var diag bytes.Buffer
	if err := c.Start(&diag); err != nil {
		t.Fatal(err)
	}
	if c.Registry() == nil {
		t.Fatal("serve flag did not create a registry")
	}
	c.Registry().Counter("core.segments").Add(3)
	addr := c.server.Addr()
	if code, _ := get(t, fmt.Sprintf("http://%s/healthz", addr)); code != 200 {
		t.Fatalf("healthz during CLI session = %d", code)
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if c.sampler.Samples() == 0 {
		t.Fatal("CLI sampler took no samples")
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("server still up after Finish")
	}
	if !strings.Contains(diag.String(), "telemetry: serving") {
		t.Fatalf("diag output = %q", diag.String())
	}
}

func TestServerQueriesEndpoint(t *testing.T) {
	r := NewRegistry()
	tr := NewQueryTracker(r, 8)
	done := tr.Begin("node", 3, "Product.Class", "")
	tr.End(done, 12, nil, QueryIO{BytesRead: 96, ZoneBlocksSkipped: 4}, nil)
	running := tr.Begin("where", 7, "Product.Code", "Product.Class=1")
	running.SetExtent(ExtentNT, 7)
	defer tr.End(running, 0, nil, QueryIO{}, nil)

	srv := startTestServer(t, r, ServerOptions{Queries: tr, ProgressInterval: 5 * time.Millisecond})
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/queries")
	if code != 200 {
		t.Fatalf("/queries = %d", code)
	}
	var doc struct {
		ElapsedSec float64         `json:"elapsed_sec"`
		Inflight   []InflightQuery `json:"inflight"`
		Recent     []QueryRecord   `json:"recent"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/queries not JSON: %v\n%s", err, body)
	}
	if len(doc.Inflight) != 1 || doc.Inflight[0].Op != "where" || doc.Inflight[0].Extent != "nt" {
		t.Fatalf("inflight = %+v", doc.Inflight)
	}
	if len(doc.Recent) != 1 || doc.Recent[0].Rows != 12 || doc.Recent[0].IO.ZoneBlocksSkipped != 4 {
		t.Fatalf("recent = %+v", doc.Recent)
	}

	// SSE stream of the same document.
	req, err := http.NewRequest("GET", base+"/queries", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var datas int
	for sc.Scan() && datas < 2 {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			datas++
			if !strings.Contains(line, `"inflight"`) || !strings.Contains(line, `"recent"`) {
				t.Fatalf("SSE data line %q missing queries document", line)
			}
		}
	}
	if datas < 2 {
		t.Fatalf("SSE stream yielded %d data lines", datas)
	}
}

func TestServerQueriesWithoutTracker(t *testing.T) {
	// No tracker wired: the endpoint still answers with empty tables
	// (nil tracker methods are no-ops), never a panic or a 500.
	r := NewRegistry()
	srv := startTestServer(t, r, ServerOptions{})
	code, body := get(t, "http://"+srv.Addr()+"/queries")
	if code != 200 {
		t.Fatalf("/queries without tracker = %d", code)
	}
	if !strings.Contains(body, `"inflight": []`) || !strings.Contains(body, `"recent": []`) {
		t.Fatalf("/queries without tracker = %s", body)
	}
}
