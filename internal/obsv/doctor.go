package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// The doctor is the read side of the flight recorder: it parses a
// diagnostic bundle directory back into memory and renders a
// human-readable incident report — what happened, the memory trajectory
// against the budget, which counters were moving fastest in the final
// window, which queries were slow or still in flight, and where the
// goroutines were. `curectl doctor <bundle|dir>` is a thin wrapper over
// ReadBundle + WriteReport.

// Bundle is a diagnostic bundle read back from disk. Missing members
// leave their fields zero — doctor degrades section by section rather
// than refusing a partial bundle.
type Bundle struct {
	// Dir is the bundle directory the members were read from.
	Dir        string
	Info       BundleInfo
	Metrics    *Snapshot
	History    *HistoryDoc
	MemSeries  []MemSample
	Inflight   []InflightQuery
	Recent     []QueryRecord
	Goroutines string
	Stack      string
	// TraceTailLines counts the trace_tail.jsonl lines present.
	TraceTailLines int
}

// ReadBundle loads a bundle. path may be the bundle directory itself or
// a flight directory holding bundle-* subdirectories, in which case the
// lexically newest bundle is chosen (names embed a UTC timestamp, so
// lexical order is chronological). The manifest is required; every
// other member is optional.
func ReadBundle(path string) (*Bundle, error) {
	dir, err := resolveBundleDir(path)
	if err != nil {
		return nil, err
	}
	b := &Bundle{Dir: dir}
	if err := readJSONFile(filepath.Join(dir, BundleManifest), &b.Info); err != nil {
		return nil, fmt.Errorf("obsv: not a bundle (no %s): %w", BundleManifest, err)
	}
	readJSONFile(filepath.Join(dir, BundleMetrics), &b.Metrics)
	readJSONFile(filepath.Join(dir, BundleHistory), &b.History)
	readJSONFile(filepath.Join(dir, BundleMemSeries), &b.MemSeries)
	var qdoc bundleQueriesDoc
	if readJSONFile(filepath.Join(dir, BundleQueries), &qdoc) == nil {
		b.Inflight = qdoc.Inflight
		b.Recent = qdoc.Recent
	}
	if data, err := os.ReadFile(filepath.Join(dir, BundleGoroutines)); err == nil {
		b.Goroutines = string(data)
	}
	if data, err := os.ReadFile(filepath.Join(dir, BundleStack)); err == nil {
		b.Stack = string(data)
	}
	if f, err := os.Open(filepath.Join(dir, BundleTraceTail)); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			b.TraceTailLines++
		}
		f.Close()
	}
	return b, nil
}

// resolveBundleDir accepts a bundle directory or a flight directory of
// bundle-* subdirectories (newest wins).
func resolveBundleDir(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if !fi.IsDir() {
		return "", fmt.Errorf("obsv: %s is not a directory", path)
	}
	if _, err := os.Stat(filepath.Join(path, BundleManifest)); err == nil {
		return path, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return "", err
	}
	var bundles []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			bundles = append(bundles, e.Name())
		}
	}
	if len(bundles) == 0 {
		return "", fmt.Errorf("obsv: %s holds no bundle.json and no bundle-* directories", path)
	}
	sort.Strings(bundles)
	return filepath.Join(path, bundles[len(bundles)-1]), nil
}

func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// goroutineState matches the header line of each goroutine in a
// debug=2 dump: "goroutine 17 [chan receive, 2 minutes]:".
var goroutineState = regexp.MustCompile(`^goroutine \d+ \[([^,\]]+)`)

// GoroutineStates tallies the bundle's goroutine dump by state
// ("running", "chan receive", "IO wait", ...), plus the total.
func (b *Bundle) GoroutineStates() (map[string]int, int) {
	states := map[string]int{}
	total := 0
	for _, line := range strings.Split(b.Goroutines, "\n") {
		if m := goroutineState.FindStringSubmatch(line); m != nil {
			states[m[1]]++
			total++
		}
	}
	return states, total
}

// WriteReport renders the bundle as a human-readable incident report.
func (b *Bundle) WriteReport(w io.Writer) error {
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "INCIDENT REPORT — %s\n", b.Dir)
	fmt.Fprintf(bw, "time    %s\n", b.Info.Time.Format("2006-01-02 15:04:05.000 MST"))
	fmt.Fprintf(bw, "reason  %s\n", b.Info.Reason)
	if b.Info.Context != "" {
		fmt.Fprintf(bw, "context %s\n", b.Info.Context)
	}
	if b.Info.Panic != "" {
		fmt.Fprintf(bw, "panic   %s\n", b.Info.Panic)
	}
	fmt.Fprintf(bw, "process pid=%d %s\n", b.Info.PID, b.Info.GoVersion)
	if len(b.Info.Args) > 0 {
		fmt.Fprintf(bw, "args    %s\n", strings.Join(b.Info.Args, " "))
	}
	if len(b.Info.Errors) > 0 {
		fmt.Fprintf(bw, "partial %s\n", strings.Join(b.Info.Errors, "; "))
	}

	b.reportMemory(bw)
	b.reportRates(bw)
	b.reportPartition(bw)
	b.reportFinalize(bw)
	b.reportQueries(bw)
	b.reportGoroutines(bw)

	if b.Stack != "" {
		fmt.Fprintf(bw, "\n## Panic stack\n")
		excerpt := b.Stack
		const maxStack = 2400
		if len(excerpt) > maxStack {
			excerpt = excerpt[:maxStack] + "\n... (truncated; full stack in " + BundleStack + ")"
		}
		fmt.Fprintln(bw, strings.TrimRight(excerpt, "\n"))
	}
	if b.TraceTailLines > 0 {
		fmt.Fprintf(bw, "\ntrace tail: %d events in %s\n", b.TraceTailLines, BundleTraceTail)
	}
	return bw.Flush()
}

// reportMemory renders the heap trajectory against the budget.
func (b *Bundle) reportMemory(w io.Writer) {
	if len(b.MemSeries) == 0 {
		return
	}
	fmt.Fprintf(w, "\n## Memory trajectory (%d samples over %s)\n",
		len(b.MemSeries),
		b.MemSeries[len(b.MemSeries)-1].Time.Sub(b.MemSeries[0].Time).Round(timeRound))
	first := b.MemSeries[0]
	last := b.MemSeries[len(b.MemSeries)-1]
	peak := first
	for _, sm := range b.MemSeries {
		if sm.HeapInuse > peak.HeapInuse {
			peak = sm
		}
	}
	var budget int64
	if b.Metrics != nil {
		budget = b.Metrics.Gauges[BudgetGaugeName]
	}
	line := func(label string, sm MemSample) {
		fmt.Fprintf(w, "%-6s heap_inuse=%s goroutines=%d", label, fmtBytes(int64(sm.HeapInuse)), sm.Goroutines)
		if sm.Span != "" {
			fmt.Fprintf(w, " span=%s", sm.Span)
		}
		if budget > 0 && sm.HeapInuse > uint64(budget) {
			fmt.Fprintf(w, "  ** OVER BUDGET **")
		}
		fmt.Fprintln(w)
	}
	line("first", first)
	line("peak", peak)
	line("last", last)
	if budget > 0 {
		fmt.Fprintf(w, "budget %s", fmtBytes(budget))
		if b.Metrics != nil {
			if n := b.Metrics.Counters["runtime.mem_budget_exceeded"]; n > 0 {
				fmt.Fprintf(w, " — exceeded %d time(s)", n)
			}
		}
		fmt.Fprintln(w)
	}
}

// reportRates renders the fastest-moving counters over the history
// window ending at the bundle.
func (b *Bundle) reportRates(w io.Writer) {
	if b.History == nil || len(b.History.Deltas) == 0 {
		return
	}
	type kv struct {
		name string
		d    int64
		r    float64
	}
	var rows []kv
	for name, d := range b.History.Deltas {
		if d != 0 {
			rows = append(rows, kv{name, d, b.History.RatesPerSec[name]})
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].d != rows[j].d {
			return rows[i].d > rows[j].d
		}
		return rows[i].name < rows[j].name
	})
	if len(rows) > 10 {
		rows = rows[:10]
	}
	fmt.Fprintf(w, "\n## Top counter movement (final %.1fs window, %d history points)\n",
		b.History.WindowSec, len(b.History.Points))
	for _, r := range rows {
		fmt.Fprintf(w, "%-40s %+12d  (%.1f/s)\n", r.name, r.d, r.r)
	}
}

// reportPartition renders the partitioned-scan picture: partition count
// and skew (max vs mean rows per partition — heavy skew means one
// partition file dominates the cubing phase), and the scan pipeline's
// worker count and flush-contention counters.
func (b *Bundle) reportPartition(w io.Writer) {
	if b.Metrics == nil {
		return
	}
	mean := b.Metrics.Gauges["partition.skew.mean_rows"]
	if mean == 0 {
		return
	}
	max := b.Metrics.Gauges["partition.skew.max_rows"]
	fmt.Fprintf(w, "\n## Partitioned scan\n")
	fmt.Fprintf(w, "partitions=%d level=%d rows/partition mean=%d max=%d (skew ×%.2f)\n",
		b.Metrics.Gauges["partition.count"], b.Metrics.Gauges["partition.level"],
		mean, max, float64(max)/float64(mean))
	if workers := b.Metrics.Gauges["partition.scan.workers"]; workers > 0 {
		flushes := b.Metrics.Counters["partition.scan.flushes"]
		stalls := b.Metrics.Counters["partition.scan.flush_stalls"]
		fmt.Fprintf(w, "scan workers=%d shards=%d batches=%d flushes=%d flush_stalls=%d merge_stalls=%d\n",
			workers, b.Metrics.Counters["partition.scan.shards"],
			b.Metrics.Counters["partition.scan.batches"], flushes, stalls,
			b.Metrics.Counters["partition.scan.merge_stalls"])
		if flushes > 0 && stalls*5 >= flushes {
			fmt.Fprintf(w, "note: %d%% of flushes stalled on a writer lock — partitions are too few or too hot for this worker count\n",
				stalls*100/flushes)
		}
	}
}

// reportFinalize renders the finalize extent pipeline: worker count and
// raw-byte skew across workers, extent/block volume, the sampled-codec
// hit rate, and how many bytes the pass re-read from finalized files
// (≈0 when zone maps were fused into the compression scan).
func (b *Bundle) reportFinalize(w io.Writer) {
	if b.Metrics == nil {
		return
	}
	extents := b.Metrics.Counters["storage.finalize.extents"]
	if extents == 0 {
		return
	}
	fmt.Fprintf(w, "\n## Finalize\n")
	fmt.Fprintf(w, "workers=%d extents=%d blocks=%d reread=%s commit_stalls=%d\n",
		b.Metrics.Gauges["storage.finalize.workers"], extents,
		b.Metrics.Counters["storage.finalize.blocks"],
		fmtBytes(b.Metrics.Counters["storage.finalize.reread_bytes"]),
		b.Metrics.Counters["storage.finalize.commit_stalls"])
	if mean := b.Metrics.Gauges["storage.finalize.skew.mean_bytes"]; mean > 0 {
		max := b.Metrics.Gauges["storage.finalize.skew.max_bytes"]
		fmt.Fprintf(w, "raw bytes/worker mean=%s max=%s (skew ×%.2f)\n",
			fmtBytes(mean), fmtBytes(max), float64(max)/float64(mean))
	}
	if sampled := b.Metrics.Counters["storage.finalize.sampled_blocks"]; sampled > 0 {
		mis := b.Metrics.Counters["storage.finalize.mispredicts"]
		fmt.Fprintf(w, "sampled column-blocks=%d mispredicts=%d (%.1f%% of fast-path attempts)\n",
			sampled, mis, 100*float64(mis)/float64(sampled+mis))
	}
}

// reportQueries renders the in-flight table and the slowest recently
// completed queries.
func (b *Bundle) reportQueries(w io.Writer) {
	if len(b.Inflight) == 0 && len(b.Recent) == 0 {
		return
	}
	fmt.Fprintf(w, "\n## Queries (%d in flight, %d recent)\n", len(b.Inflight), len(b.Recent))
	for _, q := range b.Inflight {
		fmt.Fprintf(w, "inflight id=%d op=%s node=%s elapsed=%dus", q.ID, q.Op, queryNodeLabel(q.NodeName, q.Node), q.ElapsedUs)
		if q.Where != "" {
			fmt.Fprintf(w, " where=%q", q.Where)
		}
		if q.Extent != "" {
			fmt.Fprintf(w, " scanning=%s", q.Extent)
		}
		fmt.Fprintln(w)
	}
	recent := append([]QueryRecord{}, b.Recent...)
	sort.Slice(recent, func(i, j int) bool { return recent[i].ElapsedUs > recent[j].ElapsedUs })
	if len(recent) > 5 {
		recent = recent[:5]
	}
	for _, q := range recent {
		fmt.Fprintf(w, "slowest id=%d op=%s node=%s elapsed=%dus rows=%d read=%s",
			q.ID, q.Op, queryNodeLabel(q.NodeName, q.Node), q.ElapsedUs, q.Rows, fmtBytes(q.IO.BytesRead))
		if q.Err != "" {
			fmt.Fprintf(w, " err=%q", q.Err)
		}
		fmt.Fprintln(w)
	}
}

func queryNodeLabel(name string, node int64) string {
	if name != "" {
		return name
	}
	return fmt.Sprintf("#%d", node)
}

// reportGoroutines tallies the goroutine dump by state.
func (b *Bundle) reportGoroutines(w io.Writer) {
	states, total := b.GoroutineStates()
	if total == 0 {
		return
	}
	type kv struct {
		state string
		n     int
	}
	rows := make([]kv, 0, len(states))
	for s, n := range states {
		rows = append(rows, kv{s, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].state < rows[j].state
	})
	fmt.Fprintf(w, "\n## Goroutines (%d total)\n", total)
	for _, r := range rows {
		fmt.Fprintf(w, "%5d  %s\n", r.n, r.state)
	}
}

const timeRound = 1e6 // 1ms, for humane durations in the report

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
