package obsv

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestQueryTrackerNilIsNoOp(t *testing.T) {
	var tr *QueryTracker
	q := tr.Begin("node", 1, "n", "")
	if q != nil {
		t.Fatalf("nil tracker handed out %+v", q)
	}
	q.SetExtent(ExtentNT, 7) // no-op, must not panic
	if q.ID() != 0 {
		t.Fatalf("nil handle id = %d", q.ID())
	}
	tr.End(q, 0, nil, QueryIO{}, nil)
	tr.SetSlowLog(nil, 0)
	if tr.Inflight() != nil || tr.Recent() != nil {
		t.Fatal("nil tracker returned non-nil snapshots")
	}
}

func TestQueryTrackerLifecycle(t *testing.T) {
	r := NewRegistry()
	tr := NewQueryTracker(r, 4)

	q1 := tr.Begin("node", 10, "Product.Class", "")
	q2 := tr.Begin("where", 20, "Product.Code", "Product.Class=3")
	if q1.ID() == q2.ID() || q1.ID() == 0 {
		t.Fatalf("ids not distinct/monotonic: %d %d", q1.ID(), q2.ID())
	}
	q2.SetExtent(ExtentNT, 20)

	inf := tr.Inflight()
	if len(inf) != 2 || inf[0].ID != q1.ID() || inf[1].ID != q2.ID() {
		t.Fatalf("inflight = %+v", inf)
	}
	if inf[1].Extent != "nt" || inf[1].ExtentNode != 20 || inf[1].Where == "" {
		t.Fatalf("inflight extent = %+v", inf[1])
	}
	if g := r.Snapshot().Gauges["query.inflight"]; g != 2 {
		t.Fatalf("inflight gauge = %d", g)
	}

	rec := tr.End(q2, 42, nil, QueryIO{BytesRead: 100, ZoneBlocksKept: 3}, nil)
	if rec.ID != q2.ID() || rec.Rows != 42 || rec.IO.BytesRead != 100 || rec.Err != "" {
		t.Fatalf("record = %+v", rec)
	}
	rec = tr.End(q1, 0, errors.New("boom"), QueryIO{}, nil)
	if rec.Err != "boom" {
		t.Fatalf("error record = %+v", rec)
	}

	snap := r.Snapshot()
	if g := snap.Gauges["query.inflight"]; g != 0 {
		t.Fatalf("inflight gauge after End = %d", g)
	}
	if c := snap.Counters["query.completed"]; c != 2 {
		t.Fatalf("completed counter = %d", c)
	}
	recent := tr.Recent()
	if len(recent) != 2 || recent[0].ID != q2.ID() || recent[1].ID != q1.ID() {
		t.Fatalf("recent = %+v", recent)
	}
}

func TestQueryTrackerRingWraps(t *testing.T) {
	tr := NewQueryTracker(nil, 3)
	for i := 0; i < 5; i++ {
		q := tr.Begin("node", int64(i), "", "")
		tr.End(q, int64(i), nil, QueryIO{}, nil)
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring holds %d records, want 3", len(recent))
	}
	// Oldest first: queries 3, 4, 5 (ids are 1-based).
	for i, want := range []int64{3, 4, 5} {
		if recent[i].ID != want {
			t.Fatalf("recent[%d].ID = %d, want %d (recent=%+v)", i, recent[i].ID, want, recent)
		}
	}
}

func TestQueryTrackerSlowLog(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	r := NewRegistry()
	tr := NewQueryTracker(r, 8)
	// Threshold 0: every completed query logs.
	tr.SetSlowLog(tw, 0)
	q := tr.Begin("node", 5, "Outlet.Retailer", "")
	tr.End(q, 9, nil, QueryIO{BytesRead: 64}, map[string]int{"extents": 2})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("threshold-0 slow log is empty")
	}
	var rec QueryRecord
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow log line not JSON: %v (%q)", err, line)
	}
	if rec.Ev != "query" || rec.Rows != 9 || rec.IO.BytesRead != 64 || rec.Plan == nil {
		t.Fatalf("slow record = %+v", rec)
	}
	if c := r.Snapshot().Counters["query.slow"]; c != 1 {
		t.Fatalf("slow counter = %d", c)
	}

	// A high threshold keeps fast queries out of the sink.
	buf.Reset()
	tr.SetSlowLog(tw, time.Hour)
	q = tr.Begin("node", 6, "", "")
	tr.End(q, 0, nil, QueryIO{}, nil)
	tw.Flush()
	if buf.Len() != 0 {
		t.Fatalf("fast query leaked into slow log: %q", buf.String())
	}
	if c := r.Snapshot().Counters["query.slow"]; c != 1 {
		t.Fatalf("slow counter moved to %d", c)
	}
}

func TestQueryTrackerConcurrent(t *testing.T) {
	r := NewRegistry()
	tr := NewQueryTracker(r, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := tr.Begin("node", int64(w), "n", "")
				q.SetExtent(ExtentCAT, int64(i))
				tr.Inflight() // concurrent readers
				tr.End(q, 1, nil, QueryIO{BytesRead: 8}, nil)
				tr.Recent()
			}
		}(w)
	}
	wg.Wait()
	if n := len(tr.Inflight()); n != 0 {
		t.Fatalf("%d queries left in-flight", n)
	}
	snap := r.Snapshot()
	if c := snap.Counters["query.completed"]; c != 400 {
		t.Fatalf("completed = %d, want 400", c)
	}
	if g := snap.Gauges["query.inflight"]; g != 0 {
		t.Fatalf("inflight gauge = %d", g)
	}
	if len(tr.Recent()) != 16 {
		t.Fatalf("ring holds %d", len(tr.Recent()))
	}
}

func TestExtentKindString(t *testing.T) {
	cases := map[ExtentKind]string{ExtentNone: "", ExtentTT: "tt", ExtentNT: "nt", ExtentCAT: "cat"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("ExtentKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
