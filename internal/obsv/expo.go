package obsv

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) rendered from a
// registry snapshot, so a scraper pointed at /metrics sees the same
// instruments -metrics-out dumps as JSON.
//
// Name mapping: the dotted instrument names become valid Prometheus
// metric names by prefixing "cure_" and replacing every character
// outside [a-zA-Z0-9_] with '_' ("partition.bytes_read" →
// "cure_partition_bytes_read"). Histograms export five series each:
// <name>_count, <name>_sum, <name>_p50, <name>_p90, <name>_p99 (the
// power-of-two bucket layout makes native Prometheus histograms
// misleading, so pre-computed quantiles are exported instead). Span
// subtrees flatten into three families labeled by slash-joined path:
// cure_span_elapsed_seconds, cure_span_rows_total (direction="in"/"out"),
// and cure_span_bytes_total (direction="read"/"written"); repeated paths
// (one "part" child per partition) sum. Output ordering is deterministic:
// families and series are sorted by name, then by label value.

// PromName maps a dotted instrument name to its Prometheus exposition
// name.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("cure_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format: backslash,
// newline, and double quote become \\, \n, and \". promUnescape inverts
// it; WriteProm → ParseProm → ParseLabels round-trips any value.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// promLabel renders one name="value" pair with exposition-format
// escaping. (Not %q: Go quoting escapes the escapes promEscape already
// applied, which double-encodes backslashes and newlines.)
func promLabel(name, value string) string {
	return name + `="` + promEscape(value) + `"`
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format. The output is deterministic for a given snapshot.
func WriteProm(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	if s == nil {
		return bw.Flush()
	}

	writeFamily := func(name, typ string, series []promSeries) {
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })
		for _, sr := range series {
			bw.WriteString(name)
			bw.WriteString(sr.labels)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatFloat(sr.value, 'g', -1, 64))
			bw.WriteByte('\n')
		}
	}
	single := func(name, typ string, v float64) {
		writeFamily(name, typ, []promSeries{{value: v}})
	}

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		single(PromName(name), "counter", float64(s.Counters[name]))
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		single(PromName(name), "gauge", float64(s.Gauges[name]))
	}

	// Histograms arrive sorted by name from Snapshot; keep that order.
	for _, h := range s.Histograms {
		base := PromName(h.Name)
		single(base+"_count", "counter", float64(h.Count))
		single(base+"_sum", "counter", float64(h.Sum))
		single(base+"_p50", "gauge", float64(h.P50))
		single(base+"_p90", "gauge", float64(h.P90))
		single(base+"_p99", "gauge", float64(h.P99))
	}

	if len(s.Spans) > 0 {
		elapsed := map[string]float64{}
		rows := map[string]float64{}  // path|direction
		bytes := map[string]float64{} // path|direction
		var walk func(prefix string, ss SpanSnapshot)
		walk = func(prefix string, ss SpanSnapshot) {
			path := ss.Name
			if prefix != "" {
				path = prefix + "/" + ss.Name
			}
			elapsed[path] += ss.ElapsedSec
			rows[path+"|in"] += float64(ss.RowsIn)
			rows[path+"|out"] += float64(ss.RowsOut)
			bytes[path+"|read"] += float64(ss.BytesRead)
			bytes[path+"|written"] += float64(ss.BytesWritten)
			for _, c := range ss.Children {
				walk(path, c)
			}
		}
		for _, ss := range s.Spans {
			walk("", ss)
		}
		series := make([]promSeries, 0, len(elapsed))
		for path, v := range elapsed {
			series = append(series, promSeries{
				labels: "{" + promLabel("path", path) + "}",
				value:  v,
			})
		}
		writeFamily("cure_span_elapsed_seconds", "gauge", series)
		directional := func(name string, m map[string]float64) {
			series = series[:0]
			for key, v := range m {
				if v == 0 {
					continue
				}
				path, dir, _ := strings.Cut(key, "|")
				series = append(series, promSeries{
					labels: "{" + promLabel("path", path) + "," + promLabel("direction", dir) + "}",
					value:  v,
				})
			}
			if len(series) > 0 {
				writeFamily(name, "counter", series)
			}
		}
		directional("cure_span_rows_total", rows)
		directional("cure_span_bytes_total", bytes)
	}
	return bw.Flush()
}

type promSeries struct {
	labels string
	value  float64
}

// PromMetric is one parsed exposition series.
type PromMetric struct {
	Name   string
	Labels string // raw label block including braces, "" when absent
	Value  float64
	Type   string // from the preceding # TYPE line, "" when absent
}

// ParseProm parses Prometheus text exposition into its series, keyed by
// name+labels, validating the subset of the format WriteProm emits
// (# TYPE / # HELP comments, optional label blocks, float values). It is
// the format check the telemetry tests and the CI smoke job rely on.
func ParseProm(r io.Reader) (map[string]PromMetric, error) {
	out := map[string]PromMetric{}
	types := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						return nil, fmt.Errorf("prom: line %d: malformed TYPE comment %q", lineNo, line)
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return nil, fmt.Errorf("prom: line %d: unknown metric type %q", lineNo, fields[3])
					}
					types[fields[2]] = fields[3]
				}
				continue
			}
			return nil, fmt.Errorf("prom: line %d: unrecognized comment %q", lineNo, line)
		}
		name := line
		labels := ""
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				return nil, fmt.Errorf("prom: line %d: unbalanced label braces in %q", lineNo, line)
			}
			name, labels, rest = line[:i], line[i:j+1], strings.TrimSpace(line[j+1:])
		} else {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return nil, fmt.Errorf("prom: line %d: missing value in %q", lineNo, line)
			}
			name, rest = fields[0], fields[1]
		}
		if !validPromName(name) {
			return nil, fmt.Errorf("prom: line %d: invalid metric name %q", lineNo, name)
		}
		// A value (and optional timestamp) follows the label block.
		valueField := strings.Fields(rest)
		if len(valueField) < 1 || len(valueField) > 2 {
			return nil, fmt.Errorf("prom: line %d: expected value after %q", lineNo, name)
		}
		v, err := strconv.ParseFloat(valueField[0], 64)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: bad value %q: %v", lineNo, valueField[0], err)
		}
		out[name+labels] = PromMetric{Name: name, Labels: labels, Value: v, Type: types[name]}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseLabels parses a raw label block as returned in PromMetric.Labels
// ("{name=\"value\",...}" or "") into a name → unescaped-value map. It
// scans character by character — escaped values may contain commas,
// braces, and quotes, so splitting on delimiters would corrupt them.
func ParseLabels(block string) (map[string]string, error) {
	out := map[string]string{}
	if block == "" {
		return out, nil
	}
	if len(block) < 2 || block[0] != '{' || block[len(block)-1] != '}' {
		return nil, fmt.Errorf("prom: label block %q not brace-delimited", block)
	}
	s := block[1 : len(block)-1]
	i := 0
	for i < len(s) {
		// Label name up to '='.
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j == len(s) || j == i {
			return nil, fmt.Errorf("prom: malformed label pair at %q", s[i:])
		}
		name := s[i:j]
		i = j + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("prom: label %q value not quoted", name)
		}
		i++
		var b strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("prom: label %q has dangling escape", name)
				}
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case 'n':
					b.WriteByte('\n')
				case '"':
					b.WriteByte('"')
				default:
					return nil, fmt.Errorf("prom: label %q has unknown escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("prom: label %q value unterminated", name)
		}
		out[name] = b.String()
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("prom: expected ',' after label %q", name)
			}
			i++
		}
	}
	return out, nil
}

func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}
