//go:build !unix

package obsv

import "os"

// Non-unix platforms lack SIGQUIT/SIGUSR1: only interrupt-flush is
// wired; bundles remain reachable via /debug/bundle.

func notifySignals() []os.Signal {
	return []os.Signal{os.Interrupt}
}

func classifySignal(sig os.Signal) (action signalAction, exitCode int) {
	if sig == os.Interrupt {
		return sigFlushExit, 130
	}
	return sigIgnore, 0
}
