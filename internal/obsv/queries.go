package obsv

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Per-query observability: a QueryTracker follows every query a serving
// engine runs from start to completion. It keeps an in-flight table
// (what is running right now, how long, and which extent it is
// scanning), a ring of the most recent completed query records, and an
// optional slow-query JSONL sink. The telemetry server's /queries
// endpoint renders the tracker live; the query.inflight gauge and
// query.completed / query.slow counters come from it.
//
// Like the rest of the package, everything is nil-safe: a nil tracker
// hands out nil ActiveQueries and every method is a no-op, so the query
// engine threads one optional pointer and calls unconditionally.

// ExtentKind identifies which extent class a query is currently
// scanning; the in-flight table publishes it so a stuck query is
// attributable to a relation.
type ExtentKind int32

// Extent classes in scan order.
const (
	ExtentNone ExtentKind = iota
	ExtentTT
	ExtentNT
	ExtentCAT
)

// String returns the extent's short name ("" for ExtentNone).
func (k ExtentKind) String() string {
	switch k {
	case ExtentTT:
		return "tt"
	case ExtentNT:
		return "nt"
	case ExtentCAT:
		return "cat"
	}
	return ""
}

// QueryIO is the per-query I/O and scan accounting attached to every
// completed query record: how much the query actually read, how the
// fact-page cache treated it, and what zone-map pruning saved.
type QueryIO struct {
	// BytesRead counts bytes fetched from disk for this query: extent
	// reads, AGGREGATES lookups, and fact-page faults.
	BytesRead int64 `json:"bytes_read"`
	// Reads counts the ReadAt calls behind BytesRead.
	Reads int64 `json:"reads,omitempty"`
	// BytesDecoded counts raw-equivalent bytes materialized from
	// compressed extent blocks (0 for uncompressed cubes and for blocks
	// served from the decoded-block cache).
	BytesDecoded int64 `json:"bytes_decoded,omitempty"`
	// CacheHits and PagesFaulted are the query's fact-page cache hits
	// and misses (a miss faults one page in).
	CacheHits    int64 `json:"cache_hits,omitempty"`
	PagesFaulted int64 `json:"pages_faulted,omitempty"`
	// TTScanned / NTScanned / CATScanned are rows visited per extent
	// class (post zone-map pruning).
	TTScanned  int64 `json:"tt_scanned,omitempty"`
	NTScanned  int64 `json:"nt_scanned,omitempty"`
	CATScanned int64 `json:"cat_scanned,omitempty"`
	// ZoneBlocksKept / ZoneBlocksSkipped are the zone-map pruning
	// verdicts across every extent the query consulted.
	ZoneBlocksKept    int64 `json:"zone_blocks_kept,omitempty"`
	ZoneBlocksSkipped int64 `json:"zone_blocks_skipped,omitempty"`
}

// QueryRecord is one completed query: identity, timing, result volume,
// I/O attribution, and (for explained queries) the structured plan. It
// is the slow-query JSONL event ("ev":"query") and the element of the
// /queries recent ring.
type QueryRecord struct {
	Ev        string    `json:"ev"` // "query"
	ID        int64     `json:"id"`
	Op        string    `json:"op"`
	Node      int64     `json:"node"`
	NodeName  string    `json:"node_name,omitempty"`
	Where     string    `json:"where,omitempty"`
	StartTime time.Time `json:"start_time"`
	ElapsedUs int64     `json:"elapsed_us"`
	Rows      int64     `json:"rows"`
	Err       string    `json:"err,omitempty"`
	IO        QueryIO   `json:"io"`
	Plan      any       `json:"plan,omitempty"`
}

// InflightQuery is the JSON view of one running query.
type InflightQuery struct {
	ID         int64  `json:"id"`
	Op         string `json:"op"`
	Node       int64  `json:"node"`
	NodeName   string `json:"node_name,omitempty"`
	Where      string `json:"where,omitempty"`
	ElapsedUs  int64  `json:"elapsed_us"`
	Extent     string `json:"extent,omitempty"`
	ExtentNode int64  `json:"extent_node,omitempty"`
}

// ActiveQuery is the tracker's handle for one running query. The scan
// publishes its current extent through atomics, so the /queries handler
// reads a consistent position without touching the scan's hot path.
type ActiveQuery struct {
	id       int64
	op       string
	node     int64
	nodeName string
	where    string
	start    time.Time
	extKind  atomic.Int32
	extNode  atomic.Int64
}

// ID returns the tracker-assigned query id (0 for nil).
func (q *ActiveQuery) ID() int64 {
	if q == nil {
		return 0
	}
	return q.id
}

// SetExtent publishes the extent the query is scanning right now.
func (q *ActiveQuery) SetExtent(kind ExtentKind, node int64) {
	if q == nil {
		return
	}
	q.extKind.Store(int32(kind))
	q.extNode.Store(node)
}

// DefaultQueryRing is the default number of completed query records a
// tracker retains.
const DefaultQueryRing = 256

// QueryTracker is the per-query observability hub of one query engine.
// Safe for concurrent use; Begin/End cost one mutex acquisition each,
// so tracking stays cheap under concurrent serving.
type QueryTracker struct {
	nextID atomic.Int64

	gInflight  *Gauge
	cCompleted *Counter
	cSlow      *Counter

	mu         sync.Mutex
	inflight   map[int64]*ActiveQuery
	ring       []QueryRecord
	ringCap    int
	pos        int // next overwrite position once the ring is full
	slow       *TraceWriter
	slowThresh time.Duration
}

// NewQueryTracker creates a tracker registering its gauge and counters
// on reg (nil reg keeps them inert). ringCap <= 0 uses DefaultQueryRing.
func NewQueryTracker(reg *Registry, ringCap int) *QueryTracker {
	if ringCap <= 0 {
		ringCap = DefaultQueryRing
	}
	return &QueryTracker{
		gInflight:  reg.Gauge("query.inflight"),
		cCompleted: reg.Counter("query.completed"),
		cSlow:      reg.Counter("query.slow"),
		inflight:   map[int64]*ActiveQuery{},
		ring:       make([]QueryRecord, 0, ringCap),
		ringCap:    ringCap,
	}
}

// SetSlowLog attaches the slow-query JSONL sink: every completed query
// with elapsed time >= threshold emits its full record (threshold 0
// logs every query; nil w detaches).
func (t *QueryTracker) SetSlowLog(w *TraceWriter, threshold time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.slow = w
	t.slowThresh = threshold
}

// Begin registers a query as in-flight and returns its handle. The
// tracker assigns the monotonically increasing query id.
func (t *QueryTracker) Begin(op string, node int64, nodeName, where string) *ActiveQuery {
	if t == nil {
		return nil
	}
	q := &ActiveQuery{
		id:       t.nextID.Add(1),
		op:       op,
		node:     node,
		nodeName: nodeName,
		where:    where,
		start:    time.Now(),
	}
	t.mu.Lock()
	t.inflight[q.id] = q
	n := len(t.inflight)
	t.mu.Unlock()
	t.gInflight.Set(int64(n))
	return q
}

// End completes a query: it leaves the in-flight table, lands in the
// recent ring, and — when slow enough and a sink is attached — in the
// slow-query log. The finished record is returned so callers can embed
// or render it. Nil tracker or handle is a no-op.
func (t *QueryTracker) End(q *ActiveQuery, rows int64, qerr error, io QueryIO, plan any) QueryRecord {
	if t == nil || q == nil {
		return QueryRecord{}
	}
	elapsed := time.Since(q.start)
	rec := QueryRecord{
		Ev:        "query",
		ID:        q.id,
		Op:        q.op,
		Node:      q.node,
		NodeName:  q.nodeName,
		Where:     q.where,
		StartTime: q.start,
		ElapsedUs: elapsed.Microseconds(),
		Rows:      rows,
		IO:        io,
		Plan:      plan,
	}
	if qerr != nil {
		rec.Err = qerr.Error()
	}
	t.mu.Lock()
	delete(t.inflight, q.id)
	n := len(t.inflight)
	if len(t.ring) < t.ringCap {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.pos] = rec
		t.pos = (t.pos + 1) % t.ringCap
	}
	slow := t.slow
	isSlow := slow != nil && elapsed >= t.slowThresh
	t.mu.Unlock()
	t.gInflight.Set(int64(n))
	t.cCompleted.Inc()
	if isSlow {
		t.cSlow.Inc()
		slow.Emit(rec)
		// Slow records are rare and wanted immediately (tail -f, or a
		// process killed mid-serve): flush per record, not on close.
		slow.Flush()
	}
	return rec
}

// Inflight snapshots the running queries, ordered by id (empty for nil).
func (t *QueryTracker) Inflight() []InflightQuery {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	qs := make([]*ActiveQuery, 0, len(t.inflight))
	for _, q := range t.inflight {
		qs = append(qs, q)
	}
	t.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].id < qs[j].id })
	out := make([]InflightQuery, len(qs))
	for i, q := range qs {
		out[i] = InflightQuery{
			ID:         q.id,
			Op:         q.op,
			Node:       q.node,
			NodeName:   q.nodeName,
			Where:      q.where,
			ElapsedUs:  time.Since(q.start).Microseconds(),
			Extent:     ExtentKind(q.extKind.Load()).String(),
			ExtentNode: q.extNode.Load(),
		}
	}
	return out
}

// Recent returns the retained completed records, oldest first (empty
// for nil).
func (t *QueryTracker) Recent() []QueryRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]QueryRecord, 0, len(t.ring))
	if len(t.ring) == t.ringCap {
		out = append(out, t.ring[t.pos:]...)
		out = append(out, t.ring[:t.pos]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}
