package obsv

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// CLI bundles the observability command-line flags shared by the cure
// commands (curectl, cubebench, apbgen): metrics/trace sinks, pprof
// profiles, a periodic progress reporter, the runtime sampler, and the
// live telemetry server.
type CLI struct {
	MetricsOut    string
	TraceOut      string
	TraceMaxBytes int64
	CPUProfile    string
	MemProfile    string
	Progress      bool
	ServeAddr     string
	ServeHold     time.Duration
	SampleEvery   time.Duration
	SlowQueryMs   int64
	SlowQueryOut  string

	reg          *Registry
	closeTrace   func() error
	closeSlow    func() error
	stopCPU      func()
	stopProgress func()
	sampler      *Sampler
	server       *Server
	queries      *QueryTracker
}

// RegisterFlags registers the standard observability flags on fs and
// returns the CLI that will honor them.
func RegisterFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write metrics snapshot JSON to file ('-' = stdout)")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write JSONL plan-traversal trace to file ('-' = stdout)")
	fs.Int64Var(&c.TraceMaxBytes, "trace-max-bytes", 0, "cap -trace-out at this many bytes, dropping further events (0 = unlimited)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write CPU profile to file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write heap profile to file")
	fs.BoolVar(&c.Progress, "progress", false, "report build progress to stderr every 2s")
	fs.StringVar(&c.ServeAddr, "serve", "", "serve live telemetry on this address (/metrics, /healthz, /progress, /debug/pprof)")
	fs.DurationVar(&c.ServeHold, "serve-hold", 0, "keep the -serve telemetry server up this long after the work finishes")
	fs.DurationVar(&c.SampleEvery, "sample-every", 0, "runtime sampler interval (default 250ms when -serve is set, off otherwise)")
	fs.Int64Var(&c.SlowQueryMs, "slow-query-ms", -1, "log queries at least this slow as JSONL (0 = log every query, -1 = off)")
	fs.StringVar(&c.SlowQueryOut, "slow-query-out", "", "slow-query JSONL sink ('-' = stdout, default stderr)")
	return c
}

// Registry returns the registry the flags call for: a live one when any
// metrics, trace, progress, serve, sampling, or slow-query flag was
// given, nil (zero-overhead) otherwise.
func (c *CLI) Registry() *Registry {
	if c.reg == nil && (c.MetricsOut != "" || c.TraceOut != "" || c.Progress || c.ServeAddr != "" || c.SampleEvery > 0 || c.SlowQueryMs >= 0) {
		c.reg = NewRegistry()
	}
	return c.reg
}

// Queries returns the query tracker the flags call for: live when a
// registry is live (so /queries, the slow-query log, and the
// query.inflight gauge all work), nil otherwise. Pass it to
// query.Options.Queries.
func (c *CLI) Queries() *QueryTracker {
	if c.queries == nil && c.Registry() != nil {
		c.queries = NewQueryTracker(c.reg, 0)
	}
	return c.queries
}

// Start opens the trace sink, begins CPU profiling, launches the
// progress reporter (writing to progressW), starts the runtime sampler,
// and brings up the telemetry server as requested by the flags. The
// server (and sampler) come up before the instrumented work begins, so
// /healthz answers for the whole run. Call Finish when the work is done.
func (c *CLI) Start(progressW io.Writer) error {
	if c.TraceOut != "" {
		tw, closeFn, err := OpenTraceFile(c.TraceOut)
		if err != nil {
			return err
		}
		if c.TraceMaxBytes > 0 {
			tw.SetMaxBytes(c.TraceMaxBytes)
			tw.SetDropCounter(c.Registry().Counter("trace.dropped"))
		}
		c.Registry().SetTrace(tw)
		c.closeTrace = closeFn
	}
	if c.SlowQueryMs >= 0 {
		var sw *TraceWriter
		if c.SlowQueryOut == "" {
			sw = NewTraceWriter(os.Stderr)
			c.closeSlow = sw.Flush
		} else {
			var closeFn func() error
			var err error
			sw, closeFn, err = OpenTraceFile(c.SlowQueryOut)
			if err != nil {
				return err
			}
			c.closeSlow = closeFn
		}
		c.Queries().SetSlowLog(sw, time.Duration(c.SlowQueryMs)*time.Millisecond)
	}
	if c.CPUProfile != "" {
		stop, err := StartCPUProfile(c.CPUProfile)
		if err != nil {
			return err
		}
		c.stopCPU = stop
	}
	if c.Progress {
		c.stopProgress = StartProgress(c.Registry(), progressW, 2*time.Second)
	}
	if c.SampleEvery > 0 || c.ServeAddr != "" {
		c.sampler = StartSampler(c.Registry(), SamplerOptions{Interval: c.SampleEvery})
	}
	if c.ServeAddr != "" {
		srv, err := StartServer(c.ServeAddr, c.Registry(), ServerOptions{Sampler: c.sampler, Queries: c.Queries()})
		if err != nil {
			return err
		}
		c.server = srv
		fmt.Fprintf(progressW, "telemetry: serving http://%s/{metrics,healthz,progress,queries,debug/pprof}\n", srv.Addr())
	}
	return nil
}

// Finish stops the progress reporter and CPU profiler, holds then closes
// the telemetry server, stops the sampler, writes the heap profile and
// metrics snapshot, and flushes the trace. Safe to call once after Start
// (even a failed one).
func (c *CLI) Finish() error {
	if c.stopProgress != nil {
		c.stopProgress()
	}
	if c.stopCPU != nil {
		c.stopCPU()
	}
	if c.server != nil && c.ServeHold > 0 {
		time.Sleep(c.ServeHold)
	}
	var firstErr error
	if c.server != nil {
		if err := c.server.Close(); err != nil {
			firstErr = err
		}
	}
	// Sampler after server: scrapes stay consistent to the end; the
	// sampler's final tick still lands in the metrics file and trace.
	c.sampler.Stop()
	if c.MemProfile != "" {
		if err := WriteHeapProfile(c.MemProfile); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.MetricsOut != "" {
		if err := WriteMetricsFile(c.reg, c.MetricsOut); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.closeTrace != nil {
		if err := c.closeTrace(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.closeSlow != nil {
		if err := c.closeSlow(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
