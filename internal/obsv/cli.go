package obsv

import (
	"flag"
	"io"
	"time"
)

// CLI bundles the observability command-line flags shared by the cure
// commands (curectl, cubebench, apbgen): metrics/trace sinks, pprof
// profiles, and a periodic progress reporter.
type CLI struct {
	MetricsOut string
	TraceOut   string
	CPUProfile string
	MemProfile string
	Progress   bool

	reg          *Registry
	closeTrace   func() error
	stopCPU      func()
	stopProgress func()
}

// RegisterFlags registers the standard observability flags on fs and
// returns the CLI that will honor them.
func RegisterFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write metrics snapshot JSON to file ('-' = stdout)")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write JSONL plan-traversal trace to file ('-' = stdout)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write CPU profile to file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write heap profile to file")
	fs.BoolVar(&c.Progress, "progress", false, "report build progress to stderr every 2s")
	return c
}

// Registry returns the registry the flags call for: a live one when any
// metrics, trace, or progress flag was given, nil (zero-overhead)
// otherwise.
func (c *CLI) Registry() *Registry {
	if c.reg == nil && (c.MetricsOut != "" || c.TraceOut != "" || c.Progress) {
		c.reg = NewRegistry()
	}
	return c.reg
}

// Start opens the trace sink, begins CPU profiling, and launches the
// progress reporter (writing to progressW) as requested by the flags.
// Call Finish when the instrumented work is done.
func (c *CLI) Start(progressW io.Writer) error {
	if c.TraceOut != "" {
		tw, closeFn, err := OpenTraceFile(c.TraceOut)
		if err != nil {
			return err
		}
		c.Registry().SetTrace(tw)
		c.closeTrace = closeFn
	}
	if c.CPUProfile != "" {
		stop, err := StartCPUProfile(c.CPUProfile)
		if err != nil {
			return err
		}
		c.stopCPU = stop
	}
	if c.Progress {
		c.stopProgress = StartProgress(c.Registry(), progressW, 2*time.Second)
	}
	return nil
}

// Finish stops the progress reporter and CPU profiler, writes the heap
// profile and metrics snapshot, and flushes the trace. Safe to call once
// after Start (even a failed one).
func (c *CLI) Finish() error {
	if c.stopProgress != nil {
		c.stopProgress()
	}
	if c.stopCPU != nil {
		c.stopCPU()
	}
	var firstErr error
	if c.MemProfile != "" {
		if err := WriteHeapProfile(c.MemProfile); err != nil {
			firstErr = err
		}
	}
	if c.MetricsOut != "" {
		if err := WriteMetricsFile(c.reg, c.MetricsOut); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.closeTrace != nil {
		if err := c.closeTrace(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
