package obsv

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"time"
)

// signalAction classifies what a received process signal asks of the
// observability plane (the platform mapping lives in signals_unix.go /
// signals_other.go).
type signalAction int

const (
	sigIgnore signalAction = iota
	// sigFlushExit flushes every sink, then exits (SIGINT/SIGTERM).
	sigFlushExit
	// sigBundleExit writes a diagnostic bundle, flushes, exits (SIGQUIT).
	sigBundleExit
	// sigBundleContinue writes a bundle and keeps running (SIGUSR1).
	sigBundleContinue
)

// CLI bundles the observability command-line flags shared by the cure
// commands (curectl, cubebench, apbgen): metrics/trace sinks, pprof
// profiles, a periodic progress reporter, the runtime sampler, and the
// live telemetry server.
type CLI struct {
	MetricsOut    string
	TraceOut      string
	TraceMaxBytes int64
	CPUProfile    string
	MemProfile    string
	Progress      bool
	ServeAddr     string
	ServeHold     time.Duration
	SampleEvery   time.Duration
	SlowQueryMs   int64
	SlowQueryOut  string
	FlightDir     string
	HistoryEvery  time.Duration
	HistoryWindow time.Duration

	reg          *Registry
	closeTrace   func() error
	closeSlow    func() error
	stopCPU      func()
	stopProgress func()
	sampler      *Sampler
	server       *Server
	queries      *QueryTracker
	history      *History
	flight       *FlightRecorder
	flushOnce    sync.Once
	flushErr     error
	stopSignals  func()
}

// RegisterFlags registers the standard observability flags on fs and
// returns the CLI that will honor them.
func RegisterFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write metrics snapshot JSON to file ('-' = stdout)")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write JSONL plan-traversal trace to file ('-' = stdout)")
	fs.Int64Var(&c.TraceMaxBytes, "trace-max-bytes", 0, "cap -trace-out at this many bytes, dropping further events (0 = unlimited)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write CPU profile to file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write heap profile to file")
	fs.BoolVar(&c.Progress, "progress", false, "report build progress to stderr every 2s")
	fs.StringVar(&c.ServeAddr, "serve", "", "serve live telemetry on this address (/metrics, /healthz, /progress, /debug/pprof)")
	fs.DurationVar(&c.ServeHold, "serve-hold", 0, "keep the -serve telemetry server up this long after the work finishes")
	fs.DurationVar(&c.SampleEvery, "sample-every", 0, "runtime sampler interval (default 250ms when -serve is set, off otherwise)")
	fs.Int64Var(&c.SlowQueryMs, "slow-query-ms", -1, "log queries at least this slow as JSONL (0 = log every query, -1 = off)")
	fs.StringVar(&c.SlowQueryOut, "slow-query-out", "", "slow-query JSONL sink ('-' = stdout, default stderr)")
	fs.StringVar(&c.FlightDir, "flight-dir", "", "enable the flight recorder: write diagnostic bundles into this directory on panic, SIGQUIT/SIGUSR1, mem-budget crossing, or /debug/bundle")
	fs.DurationVar(&c.HistoryEvery, "history-every", 0, "metric history snapshot interval (default 1s when history is on; history is on with -serve or -flight-dir)")
	fs.DurationVar(&c.HistoryWindow, "history-window", 0, "raw-resolution metric history window (default 5m; the coarse long window covers 12x)")
	return c
}

// Registry returns the registry the flags call for: a live one when any
// metrics, trace, progress, serve, sampling, or slow-query flag was
// given, nil (zero-overhead) otherwise.
func (c *CLI) Registry() *Registry {
	if c.reg == nil && (c.MetricsOut != "" || c.TraceOut != "" || c.Progress || c.ServeAddr != "" || c.SampleEvery > 0 || c.SlowQueryMs >= 0 || c.FlightDir != "" || c.HistoryEvery > 0) {
		c.reg = NewRegistry()
	}
	return c.reg
}

// Queries returns the query tracker the flags call for: live when a
// registry is live (so /queries, the slow-query log, and the
// query.inflight gauge all work), nil otherwise. Pass it to
// query.Options.Queries.
func (c *CLI) Queries() *QueryTracker {
	if c.queries == nil && c.Registry() != nil {
		c.queries = NewQueryTracker(c.reg, 0)
	}
	return c.queries
}

// Start opens the trace sink, begins CPU profiling, launches the
// progress reporter (writing to progressW), starts the runtime sampler,
// and brings up the telemetry server as requested by the flags. The
// server (and sampler) come up before the instrumented work begins, so
// /healthz answers for the whole run. Call Finish when the work is done.
func (c *CLI) Start(progressW io.Writer) error {
	if c.TraceOut != "" {
		tw, closeFn, err := OpenTraceFile(c.TraceOut)
		if err != nil {
			return err
		}
		if c.TraceMaxBytes > 0 {
			tw.SetMaxBytes(c.TraceMaxBytes)
			tw.SetDropCounter(c.Registry().Counter("trace.dropped"))
		}
		c.Registry().SetTrace(tw)
		c.closeTrace = closeFn
	}
	if c.SlowQueryMs >= 0 {
		var sw *TraceWriter
		if c.SlowQueryOut == "" {
			sw = NewTraceWriter(os.Stderr)
			c.closeSlow = sw.Flush
		} else {
			var closeFn func() error
			var err error
			sw, closeFn, err = OpenTraceFile(c.SlowQueryOut)
			if err != nil {
				return err
			}
			c.closeSlow = closeFn
		}
		c.Queries().SetSlowLog(sw, time.Duration(c.SlowQueryMs)*time.Millisecond)
	}
	if c.CPUProfile != "" {
		stop, err := StartCPUProfile(c.CPUProfile)
		if err != nil {
			return err
		}
		c.stopCPU = stop
	}
	if c.Progress {
		c.stopProgress = StartProgress(c.Registry(), progressW, 2*time.Second)
	}
	if c.FlightDir != "" {
		c.flight = NewFlightRecorder(c.FlightDir, c.Registry())
		c.Registry().SetFlight(c.flight)
		// Bundles want the trace leading up to the incident. Retain a
		// tail ring on the configured sink, or on a discard-backed one
		// when no -trace-out was asked for.
		tw := c.Registry().Trace()
		if tw == nil {
			tw = NewTraceWriter(io.Discard)
			c.Registry().SetTrace(tw)
		}
		tw.SetTailCap(512)
	}
	if c.FlightDir != "" || c.ServeAddr != "" || c.HistoryEvery > 0 {
		c.history = StartHistory(c.Registry(), HistoryOptions{Interval: c.HistoryEvery, Window: c.HistoryWindow})
	}
	// The flight recorder wants the sampler's memory series; sampling is
	// therefore implied by -flight-dir as it is by -serve.
	if c.SampleEvery > 0 || c.ServeAddr != "" || c.FlightDir != "" {
		c.sampler = StartSampler(c.Registry(), SamplerOptions{Interval: c.SampleEvery})
	}
	c.flight.Attach(c.sampler, c.history, c.Queries())
	if c.ServeAddr != "" {
		srv, err := StartServer(c.ServeAddr, c.Registry(), ServerOptions{
			Sampler: c.sampler,
			Queries: c.Queries(),
			History: c.history,
			Flight:  c.flight,
		})
		if err != nil {
			return err
		}
		c.server = srv
		fmt.Fprintf(progressW, "telemetry: serving http://%s/{metrics,metrics/history,healthz,progress,queries,debug/pprof}\n", srv.Addr())
	}
	if c.Registry() != nil {
		c.installSignals(progressW)
	}
	return nil
}

// flushSinks stops the sampler and history store (each takes a final
// point), writes the -metrics-out snapshot, and closes the trace and
// slow-query sinks — exactly once, shared by Finish and the signal
// handler so an interrupted -serve-hold session loses no buffered tail
// records.
func (c *CLI) flushSinks() error {
	c.flushOnce.Do(func() {
		c.sampler.Stop()
		c.history.Stop()
		if c.MetricsOut != "" {
			if err := WriteMetricsFile(c.reg, c.MetricsOut); err != nil && c.flushErr == nil {
				c.flushErr = err
			}
		}
		if c.closeTrace != nil {
			if err := c.closeTrace(); err != nil && c.flushErr == nil {
				c.flushErr = err
			}
		}
		if c.closeSlow != nil {
			if err := c.closeSlow(); err != nil && c.flushErr == nil {
				c.flushErr = err
			}
		}
	})
	return c.flushErr
}

// installSignals routes process signals into the observability plane:
// SIGINT/SIGTERM flush every sink before exiting (codes 130/143),
// SIGQUIT writes a diagnostic bundle then flushes and exits (code 2),
// SIGUSR1 writes a bundle and keeps running. Platforms without these
// signals degrade to interrupt-flush only (see signals_other.go).
func (c *CLI) installSignals(progressW io.Writer) {
	ch := make(chan os.Signal, 4)
	signal.Notify(ch, notifySignals()...)
	c.stopSignals = func() { signal.Stop(ch) }
	go func() {
		for sig := range ch {
			action, code := classifySignal(sig)
			switch action {
			case sigBundleContinue:
				if dir := c.flight.Trigger("sigusr1", "signal-triggered bundle"); dir != "" {
					fmt.Fprintf(progressW, "flight: bundle written to %s\n", dir)
				}
			case sigBundleExit:
				if dir := c.flight.Trigger("sigquit", "signal-triggered bundle"); dir != "" {
					fmt.Fprintf(progressW, "flight: bundle written to %s\n", dir)
				}
				c.flushSinks()
				os.Exit(code)
			case sigFlushExit:
				c.flushSinks()
				os.Exit(code)
			}
		}
	}()
}

// Finish stops the progress reporter and CPU profiler, holds then closes
// the telemetry server, stops the sampler, writes the heap profile and
// metrics snapshot, and flushes the trace. Safe to call once after Start
// (even a failed one).
func (c *CLI) Finish() error {
	if c.stopProgress != nil {
		c.stopProgress()
	}
	if c.stopCPU != nil {
		c.stopCPU()
	}
	if c.server != nil && c.ServeHold > 0 {
		time.Sleep(c.ServeHold)
	}
	var firstErr error
	if c.server != nil {
		if err := c.server.Close(); err != nil {
			firstErr = err
		}
	}
	if c.MemProfile != "" {
		if err := WriteHeapProfile(c.MemProfile); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Sampler and history stop inside flushSinks, after the server is
	// down: scrapes stay consistent to the end, and the final tick still
	// lands in the metrics file and trace.
	if err := c.flushSinks(); err != nil && firstErr == nil {
		firstErr = err
	}
	if c.stopSignals != nil {
		c.stopSignals()
	}
	return firstErr
}
