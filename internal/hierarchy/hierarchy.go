// Package hierarchy models dimension hierarchies: ordered levels from the
// most detailed (base, level 0) upward, the base→level code mappings used
// to aggregate at coarser granularities, and — for complex (non-linear)
// hierarchies — the roll-up DAG between sibling levels together with the
// dashed-edge tree that CURE's modified rule 2 derives from it.
package hierarchy

import (
	"errors"
	"fmt"
)

// Level is one granularity of a dimension.
type Level struct {
	// Name identifies the level, e.g. "City" or "Month".
	Name string
	// Card is the number of distinct codes at this level; codes are the
	// dense range [0, Card).
	Card int32
	// Map translates a base-level code into this level's code. It is nil
	// for the base level itself (identity).
	Map []int32
	// RollsUpTo lists the indices of the levels this level aggregates
	// into in one step. For a linear hierarchy it is {i+1} (or empty for
	// the top real level, which rolls up only into ALL). Complex
	// hierarchies may list several, e.g. Day → {Week, Month}.
	RollsUpTo []int
}

// Dim is one dimension of a fact table together with its hierarchy.
// Levels[0] is the base level; higher indices are coarser. The implicit
// ALL level (a single value) sits above every top level and is addressed
// by level index len(Levels).
type Dim struct {
	Name   string
	Levels []Level
	// dashChildren[l] lists the levels reached from level l by CURE's
	// dashed edges (modified rule 2): among the levels that roll up into
	// l's "parents"... computed by computeDashTree; see that function.
	dashChildren [][]int
	// dashParent[l] is the level whose dashed edge leads to l, or -1 for
	// the level(s) hanging directly under ALL.
	dashParent []int
}

// NewLinearDim builds a dimension with a simple (linear) hierarchy from
// base-level cardinality and a chain of maps. maps[i] translates base
// codes to level-(i+1) codes and must have length baseCard; cards[i] is
// the cardinality of level i (cards[0] = baseCard).
func NewLinearDim(name string, levelNames []string, cards []int32, maps [][]int32) (*Dim, error) {
	if len(levelNames) != len(cards) {
		return nil, fmt.Errorf("hierarchy: %s: %d level names for %d cardinalities", name, len(levelNames), len(cards))
	}
	if len(maps) != len(cards)-1 {
		return nil, fmt.Errorf("hierarchy: %s: need %d maps, got %d", name, len(cards)-1, len(maps))
	}
	d := &Dim{Name: name}
	for i := range levelNames {
		lv := Level{Name: levelNames[i], Card: cards[i]}
		if i > 0 {
			lv.Map = maps[i-1]
		}
		if i+1 < len(levelNames) {
			lv.RollsUpTo = []int{i + 1}
		}
		d.Levels = append(d.Levels, lv)
	}
	if err := d.Finalize(); err != nil {
		return nil, err
	}
	return d, nil
}

// NewFlatDim builds a dimension with no hierarchy (a single base level).
func NewFlatDim(name string, card int32) *Dim {
	d := &Dim{Name: name, Levels: []Level{{Name: name, Card: card}}}
	// A single level cannot fail validation.
	if err := d.Finalize(); err != nil {
		panic("hierarchy: flat dim finalize: " + err.Error())
	}
	return d
}

// NumLevels returns the number of levels including the implicit ALL level;
// this is the quantity the paper calls 𝓛_i and what the node-enumeration
// formulas consume.
func (d *Dim) NumLevels() int { return len(d.Levels) + 1 }

// AllLevel returns the level index of the implicit ALL level.
func (d *Dim) AllLevel() int { return len(d.Levels) }

// IsAll reports whether level l is the implicit ALL level.
func (d *Dim) IsAll(l int) bool { return l == len(d.Levels) }

// Card returns the cardinality of level l (1 for ALL).
func (d *Dim) Card(l int) int32 {
	if d.IsAll(l) {
		return 1
	}
	return d.Levels[l].Card
}

// MapCode translates a base-level code to its code at level l.
func (d *Dim) MapCode(base int32, l int) int32 {
	if d.IsAll(l) {
		return 0
	}
	if l == 0 {
		return base
	}
	return d.Levels[l].Map[base]
}

// LevelName returns the name of level l ("ALL" for the implicit top).
func (d *Dim) LevelName(l int) string {
	if d.IsAll(l) {
		return "ALL"
	}
	return d.Levels[l].Name
}

// IsLinear reports whether the hierarchy is a simple chain.
func (d *Dim) IsLinear() bool {
	for i, lv := range d.Levels {
		switch len(lv.RollsUpTo) {
		case 0:
			if i != len(d.Levels)-1 {
				return false
			}
		case 1:
			if lv.RollsUpTo[0] != i+1 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Finalize validates the dimension and computes the dashed-edge tree. It
// must be called after the Levels slice is fully populated and before the
// dimension is used to build a plan.
func (d *Dim) Finalize() error {
	if len(d.Levels) == 0 {
		return fmt.Errorf("hierarchy: %s: no levels", d.Name)
	}
	base := d.Levels[0]
	if base.Map != nil {
		return fmt.Errorf("hierarchy: %s: base level must not have a map", d.Name)
	}
	if base.Card <= 0 {
		return fmt.Errorf("hierarchy: %s: base cardinality %d", d.Name, base.Card)
	}
	for i := 1; i < len(d.Levels); i++ {
		lv := d.Levels[i]
		if lv.Card <= 0 {
			return fmt.Errorf("hierarchy: %s/%s: cardinality %d", d.Name, lv.Name, lv.Card)
		}
		if int32(len(lv.Map)) != base.Card {
			return fmt.Errorf("hierarchy: %s/%s: map covers %d base codes, want %d", d.Name, lv.Name, len(lv.Map), base.Card)
		}
		for _, c := range lv.Map {
			if c < 0 || c >= lv.Card {
				return fmt.Errorf("hierarchy: %s/%s: mapped code %d outside [0,%d)", d.Name, lv.Name, c, lv.Card)
			}
		}
	}
	for i, lv := range d.Levels {
		for _, p := range lv.RollsUpTo {
			if p <= i || p >= len(d.Levels) {
				return fmt.Errorf("hierarchy: %s/%s: rolls up to invalid level %d", d.Name, lv.Name, p)
			}
		}
	}
	return d.computeDashTree()
}

// computeDashTree derives the per-dimension dashed-edge tree of CURE's
// execution plan. A dashed edge runs from a node at level l to a node at a
// level one step more detailed. In a linear hierarchy the tree is the
// chain ALL → top → … → base. In a complex hierarchy a level c may roll
// up into several coarser levels; the modified rule 2 keeps only the
// incoming edge from the sibling with maximum cardinality, so that each
// level is reached exactly once and the plan remains a tree.
func (d *Dim) computeDashTree() error {
	n := len(d.Levels)
	d.dashParent = make([]int, n)
	d.dashChildren = make([][]int, n+1) // index n = ALL
	for c := 0; c < n; c++ {
		parents := d.Levels[c].RollsUpTo
		if len(parents) == 0 {
			// Top real level(s): hang directly under ALL.
			d.dashParent[c] = n
			d.dashChildren[n] = append(d.dashChildren[n], c)
			continue
		}
		best := parents[0]
		for _, p := range parents[1:] {
			if d.Levels[p].Card > d.Levels[best].Card {
				best = p
			}
		}
		d.dashParent[c] = best
		d.dashChildren[best] = append(d.dashChildren[best], c)
	}
	// Every level must be reachable from ALL through the tree, otherwise
	// the plan would miss nodes.
	seen := make([]bool, n+1)
	var walk func(l int)
	walk = func(l int) {
		seen[l] = true
		for _, c := range d.dashChildren[l] {
			walk(c)
		}
	}
	walk(n)
	for l := 0; l < n; l++ {
		if !seen[l] {
			return fmt.Errorf("hierarchy: %s: level %s unreachable from ALL in dashed-edge tree", d.Name, d.Levels[l].Name)
		}
	}
	return nil
}

// DashChildren returns the levels reached from level l by dashed edges in
// CURE's plan. l may be the ALL level.
func (d *Dim) DashChildren(l int) []int { return d.dashChildren[l] }

// DashParent returns the level whose dashed edge leads to l, or AllLevel()
// if l hangs directly under ALL.
func (d *Dim) DashParent(l int) int { return d.dashParent[l] }

// TopUnderAll returns the level(s) directly below ALL in the dashed tree.
// For a linear hierarchy this is the single top level.
func (d *Dim) TopUnderAll() []int { return d.dashChildren[len(d.Levels)] }

// Schema is the ordered list of dimensions of a fact table, i.e. the
// hierarchical metadata the cube is built over.
type Schema struct {
	Dims []*Dim
}

// NewSchema validates and wraps a list of dimensions.
func NewSchema(dims ...*Dim) (*Schema, error) {
	if len(dims) == 0 {
		return nil, errors.New("hierarchy: schema needs at least one dimension")
	}
	names := make(map[string]bool, len(dims))
	for _, d := range dims {
		if names[d.Name] {
			return nil, fmt.Errorf("hierarchy: duplicate dimension %q", d.Name)
		}
		names[d.Name] = true
		if d.dashParent == nil {
			return nil, fmt.Errorf("hierarchy: dimension %q not finalized", d.Name)
		}
	}
	return &Schema{Dims: dims}, nil
}

// NumDims returns the number of dimensions.
func (s *Schema) NumDims() int { return len(s.Dims) }

// NumNodes returns the total number of nodes of the hierarchical cube
// lattice: the product over dimensions of (levels incl. ALL), the paper's
// ∏(𝓛_i + 1) with 𝓛_i counted excluding ALL.
func (s *Schema) NumNodes() int {
	n := 1
	for _, d := range s.Dims {
		n *= d.NumLevels()
	}
	return n
}

// SortByCardinality returns a permutation of dimension indices in
// decreasing base-level cardinality — the BUC heuristic the paper adopts,
// which also makes CURE's partitioning more effective (it maximizes
// |A0|/|A(L+1)| for the first dimension).
func (s *Schema) SortByCardinality() []int {
	perm := make([]int, len(s.Dims))
	for i := range perm {
		perm[i] = i
	}
	// Insertion sort: D is small.
	for i := 1; i < len(perm); i++ {
		for j := i; j > 0 && s.Dims[perm[j]].Levels[0].Card > s.Dims[perm[j-1]].Levels[0].Card; j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
	return perm
}

// Flatten returns a copy of the schema with every dimension reduced to its
// base level only. It is what the flat-cube variants (BUC, BU-BST, FCURE)
// operate on.
func (s *Schema) Flatten() *Schema {
	dims := make([]*Dim, len(s.Dims))
	for i, d := range s.Dims {
		dims[i] = NewFlatDim(d.Name, d.Levels[0].Card)
	}
	return &Schema{Dims: dims}
}

// BuildContiguousMap is a helper for generators and tests: it maps a base
// domain of size baseCard onto parentCard contiguous ranges of (nearly)
// equal size, preserving roll-up monotonicity.
func BuildContiguousMap(baseCard, parentCard int32) []int32 {
	m := make([]int32, baseCard)
	for c := int32(0); c < baseCard; c++ {
		p := int32(int64(c) * int64(parentCard) / int64(baseCard))
		if p >= parentCard {
			p = parentCard - 1
		}
		m[c] = p
	}
	return m
}

// ComposeMaps composes a base→mid map with a mid→top map into a base→top
// map, letting linear hierarchies be specified one step at a time.
func ComposeMaps(baseToMid, midToTop []int32) []int32 {
	out := make([]int32, len(baseToMid))
	for i, m := range baseToMid {
		out[i] = midToTop[m]
	}
	return out
}

// FactorsThrough reports whether level upper's map factors through level
// lower's map: base codes with equal codes at lower always have equal
// codes at upper. The external partitioner relies on this to group the
// in-memory node N by representative base codes; it holds for any
// consistent hierarchy (each lower-level member rolls up to a single
// upper-level member).
func (d *Dim) FactorsThrough(lower, upper int) bool {
	if upper <= lower {
		return false
	}
	if d.IsAll(upper) {
		return true
	}
	rep := make([]int32, d.Card(lower))
	for i := range rep {
		rep[i] = -1
	}
	for base := int32(0); base < d.Levels[0].Card; base++ {
		lo := d.MapCode(base, lower)
		up := d.MapCode(base, upper)
		if rep[lo] == -1 {
			rep[lo] = up
		} else if rep[lo] != up {
			return false
		}
	}
	return true
}
