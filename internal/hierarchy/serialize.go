package hierarchy

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"os"
)

// wireDim is the gob-encoded form of a Dim: only the declarative fields
// travel; the dashed-edge tree is recomputed by Finalize on load so that
// the serialized form stays independent of plan internals.
type wireDim struct {
	Name   string
	Levels []Level
}

type wireSchema struct {
	Dims []wireDim
}

// WriteSchemaFile persists a hierarchy schema (names, cardinalities, level
// maps, roll-up edges) so that a cube on disk can be queried by a fresh
// process.
func WriteSchemaFile(path string, s *Schema) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriter(f)
	ws := wireSchema{}
	for _, d := range s.Dims {
		ws.Dims = append(ws.Dims, wireDim{Name: d.Name, Levels: d.Levels})
	}
	if err := gob.NewEncoder(w).Encode(&ws); err != nil {
		return fmt.Errorf("hierarchy: encoding schema: %w", err)
	}
	return w.Flush()
}

// ReadSchemaFile loads a schema written by WriteSchemaFile, revalidating
// it and rebuilding the dashed-edge trees.
func ReadSchemaFile(path string) (*Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ws wireSchema
	if err := gob.NewDecoder(bufio.NewReader(f)).Decode(&ws); err != nil {
		return nil, fmt.Errorf("hierarchy: decoding schema %s: %w", path, err)
	}
	dims := make([]*Dim, len(ws.Dims))
	for i, wd := range ws.Dims {
		d := &Dim{Name: wd.Name, Levels: wd.Levels}
		if err := d.Finalize(); err != nil {
			return nil, err
		}
		dims[i] = d
	}
	return NewSchema(dims...)
}
