package hierarchy

import (
	"os"
	"reflect"
	"testing"
	"testing/quick"
)

// paperDimA builds the running example's dimension A: A0 → A1 → A2 with
// cardinalities 8 → 4 → 2.
func paperDimA(t *testing.T) *Dim {
	t.Helper()
	m01 := BuildContiguousMap(8, 4)
	m12 := BuildContiguousMap(4, 2)
	d, err := NewLinearDim("A", []string{"A0", "A1", "A2"}, []int32{8, 4, 2}, [][]int32{m01, ComposeMaps(m01, m12)})
	if err != nil {
		t.Fatalf("NewLinearDim: %v", err)
	}
	return d
}

func TestLinearDimBasics(t *testing.T) {
	d := paperDimA(t)
	if d.NumLevels() != 4 { // 3 real + ALL
		t.Errorf("NumLevels = %d, want 4", d.NumLevels())
	}
	if d.AllLevel() != 3 {
		t.Errorf("AllLevel = %d, want 3", d.AllLevel())
	}
	if !d.IsAll(3) || d.IsAll(2) {
		t.Error("IsAll misidentifies levels")
	}
	if d.Card(0) != 8 || d.Card(1) != 4 || d.Card(2) != 2 || d.Card(3) != 1 {
		t.Errorf("Card sequence wrong: %d %d %d %d", d.Card(0), d.Card(1), d.Card(2), d.Card(3))
	}
	if !d.IsLinear() {
		t.Error("linear dim not recognized as linear")
	}
	if d.LevelName(3) != "ALL" || d.LevelName(0) != "A0" {
		t.Error("LevelName wrong")
	}
}

func TestMapCode(t *testing.T) {
	d := paperDimA(t)
	// Contiguous maps: base codes 0..7 → level1 0,0,1,1,2,2,3,3 → level2 0,0,0,0,1,1,1,1.
	for base := int32(0); base < 8; base++ {
		if got, want := d.MapCode(base, 0), base; got != want {
			t.Errorf("MapCode(%d, 0) = %d", base, got)
		}
		if got, want := d.MapCode(base, 1), base/2; got != want {
			t.Errorf("MapCode(%d, 1) = %d, want %d", base, got, want)
		}
		if got, want := d.MapCode(base, 2), base/4; got != want {
			t.Errorf("MapCode(%d, 2) = %d, want %d", base, got, want)
		}
		if got := d.MapCode(base, 3); got != 0 {
			t.Errorf("MapCode(%d, ALL) = %d", base, got)
		}
	}
}

func TestDashTreeLinear(t *testing.T) {
	d := paperDimA(t)
	// Chain: ALL(3) → 2 → 1 → 0.
	if got := d.TopUnderAll(); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("TopUnderAll = %v", got)
	}
	if got := d.DashChildren(2); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("DashChildren(2) = %v", got)
	}
	if got := d.DashChildren(0); len(got) != 0 {
		t.Errorf("DashChildren(0) = %v", got)
	}
	if d.DashParent(0) != 1 || d.DashParent(1) != 2 || d.DashParent(2) != 3 {
		t.Error("DashParent chain wrong")
	}
}

// complexTimeDim reproduces Figure 5a: day → {week, month}, month → year,
// week → year, with |week| > |month| so the modified rule 2 must route
// day's dashed edge through week.
func complexTimeDim(t *testing.T) *Dim {
	t.Helper()
	const days = 728
	d := &Dim{
		Name: "time",
		Levels: []Level{
			{Name: "day", Card: days, RollsUpTo: []int{1, 2}},
			{Name: "week", Card: 104, Map: BuildContiguousMap(days, 104), RollsUpTo: []int{3}},
			{Name: "month", Card: 24, Map: BuildContiguousMap(days, 24), RollsUpTo: []int{3}},
			{Name: "year", Card: 2, Map: BuildContiguousMap(days, 2)},
		},
	}
	if err := d.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return d
}

func TestComplexHierarchyModifiedRule2(t *testing.T) {
	d := complexTimeDim(t)
	if d.IsLinear() {
		t.Error("complex dim classified linear")
	}
	// day's incoming dashed edge must come from week (card 104 > 24).
	if got := d.DashParent(0); got != 1 {
		t.Errorf("DashParent(day) = %s, want week", d.LevelName(got))
	}
	// The month→day edge is discarded: month has no dashed children.
	if got := d.DashChildren(2); len(got) != 0 {
		t.Errorf("DashChildren(month) = %v, want none", got)
	}
	// year fans out to both week and month.
	if got := d.DashChildren(3); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("DashChildren(year) = %v, want [week month]", got)
	}
	// year hangs under ALL.
	if got := d.TopUnderAll(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("TopUnderAll = %v", got)
	}
}

func TestDashTreeCoversAllLevels(t *testing.T) {
	// Property: for any dimension we can build, every level is reachable
	// from ALL, i.e. the plan covers every node.
	for _, d := range []*Dim{paperDimA(t), complexTimeDim(t), NewFlatDim("F", 10)} {
		seen := map[int]bool{}
		var walk func(l int)
		walk = func(l int) {
			seen[l] = true
			for _, c := range d.DashChildren(l) {
				walk(c)
			}
		}
		walk(d.AllLevel())
		for l := 0; l < d.AllLevel(); l++ {
			if !seen[l] {
				t.Errorf("%s: level %s unreachable", d.Name, d.LevelName(l))
			}
		}
	}
}

func TestFinalizeRejectsBadDims(t *testing.T) {
	bad := []*Dim{
		{Name: "empty"},
		{Name: "badcard", Levels: []Level{{Name: "l0", Card: 0}}},
		{Name: "basemap", Levels: []Level{{Name: "l0", Card: 2, Map: []int32{0, 0}}}},
		{Name: "shortmap", Levels: []Level{
			{Name: "l0", Card: 4, RollsUpTo: []int{1}},
			{Name: "l1", Card: 2, Map: []int32{0, 0}},
		}},
		{Name: "oob", Levels: []Level{
			{Name: "l0", Card: 2, RollsUpTo: []int{1}},
			{Name: "l1", Card: 1, Map: []int32{0, 5}},
		}},
		{Name: "badrollup", Levels: []Level{
			{Name: "l0", Card: 2, RollsUpTo: []int{0}},
		}},
		{Name: "unreachable", Levels: []Level{
			// level 1 does not roll up anywhere and is not top-of-chain
			// in the dash tree from ALL... actually any parentless level
			// hangs under ALL, so craft a cycle-ish invalid rollup index.
			{Name: "l0", Card: 2, RollsUpTo: []int{2}},
			{Name: "l1", Card: 2, Map: []int32{0, 1}},
		}},
	}
	for _, d := range bad {
		if err := d.Finalize(); err == nil {
			t.Errorf("%s: invalid dim accepted", d.Name)
		}
	}
}

func TestNewLinearDimArityChecks(t *testing.T) {
	if _, err := NewLinearDim("X", []string{"a", "b"}, []int32{4}, nil); err == nil {
		t.Error("mismatched names/cards accepted")
	}
	if _, err := NewLinearDim("X", []string{"a", "b"}, []int32{4, 2}, nil); err == nil {
		t.Error("missing maps accepted")
	}
}

func TestSchema(t *testing.T) {
	a := paperDimA(t)
	b := NewFlatDim("B", 5)
	s, err := NewSchema(a, b)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	if s.NumDims() != 2 {
		t.Errorf("NumDims = %d", s.NumDims())
	}
	// A has 4 levels incl. ALL, B has 2 → 8 nodes.
	if s.NumNodes() != 8 {
		t.Errorf("NumNodes = %d, want 8", s.NumNodes())
	}
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(a, paperDimA(t)); err == nil {
		t.Error("duplicate dimension name accepted")
	}
	if _, err := NewSchema(&Dim{Name: "raw", Levels: []Level{{Name: "l", Card: 1}}}); err == nil {
		t.Error("unfinalized dim accepted")
	}
}

func TestPaperNodeCount(t *testing.T) {
	// §3: A0→A1→A2, B0→B1, C0 gives (3+1)(2+1)(1+1) = 24 nodes.
	a := paperDimA(t)
	bm := BuildContiguousMap(6, 3)
	b, err := NewLinearDim("B", []string{"B0", "B1"}, []int32{6, 3}, [][]int32{bm})
	if err != nil {
		t.Fatal(err)
	}
	c := NewFlatDim("C", 4)
	s, err := NewSchema(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumNodes() != 24 {
		t.Errorf("NumNodes = %d, want 24", s.NumNodes())
	}
}

func TestSortByCardinality(t *testing.T) {
	a := NewFlatDim("A", 10)
	b := NewFlatDim("B", 1000)
	c := NewFlatDim("C", 100)
	s, err := NewSchema(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SortByCardinality(); !reflect.DeepEqual(got, []int{1, 2, 0}) {
		t.Errorf("SortByCardinality = %v, want [1 2 0]", got)
	}
}

func TestFlatten(t *testing.T) {
	a := paperDimA(t)
	s, err := NewSchema(a, NewFlatDim("B", 5))
	if err != nil {
		t.Fatal(err)
	}
	f := s.Flatten()
	if f.NumNodes() != 4 { // 2 levels each incl. ALL → 2*2
		t.Errorf("flat NumNodes = %d, want 4", f.NumNodes())
	}
	if f.Dims[0].Levels[0].Card != 8 {
		t.Error("flatten lost base cardinality")
	}
}

func TestBuildContiguousMapProperties(t *testing.T) {
	f := func(baseCard, parentCard uint16) bool {
		b := int32(baseCard%5000) + 1
		p := int32(parentCard%200) + 1
		if p > b {
			p = b
		}
		m := BuildContiguousMap(b, p)
		// Monotone, in-range, and onto.
		seen := make([]bool, p)
		prev := int32(0)
		for _, c := range m {
			if c < prev || c >= p {
				return false
			}
			prev = c
			seen[c] = true
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestComposeMaps(t *testing.T) {
	baseToMid := []int32{0, 0, 1, 1, 2, 2}
	midToTop := []int32{0, 0, 1}
	got := ComposeMaps(baseToMid, midToTop)
	want := []int32{0, 0, 0, 0, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ComposeMaps = %v, want %v", got, want)
	}
}

func TestFactorsThrough(t *testing.T) {
	d := paperDimA(t)
	// Contiguous chain maps factor: level 2 through level 1.
	if !d.FactorsThrough(1, 2) {
		t.Error("consistent chain does not factor")
	}
	if !d.FactorsThrough(0, 1) || !d.FactorsThrough(0, 3) || !d.FactorsThrough(2, 3) {
		t.Error("trivial factorizations rejected")
	}
	if d.FactorsThrough(2, 1) || d.FactorsThrough(1, 1) {
		t.Error("non-increasing levels accepted")
	}
	// An inconsistent pair: level 1 groups {0,1},{2,3}; level 2 groups
	// {0,2},{1,3} — level 2 does not factor through level 1.
	bad := &Dim{
		Name: "X",
		Levels: []Level{
			{Name: "x0", Card: 4, RollsUpTo: []int{1, 2}},
			{Name: "x1", Card: 2, Map: []int32{0, 0, 1, 1}},
			{Name: "x2", Card: 2, Map: []int32{0, 1, 0, 1}},
		},
	}
	if err := bad.Finalize(); err != nil {
		t.Fatal(err)
	}
	if bad.FactorsThrough(1, 2) {
		t.Error("inconsistent maps reported as factoring")
	}
}

func TestSchemaFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/hier.gob"
	a := paperDimA(t)
	ct := complexTimeDim(t)
	s, err := NewSchema(a, ct, NewFlatDim("F", 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSchemaFile(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSchemaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumDims() != 3 || back.NumNodes() != s.NumNodes() {
		t.Fatalf("round trip lost shape: %d dims, %d nodes", back.NumDims(), back.NumNodes())
	}
	// Maps survive.
	if back.Dims[0].MapCode(7, 2) != a.MapCode(7, 2) {
		t.Error("level map lost")
	}
	// Dashed trees are recomputed: complex time still routes day ← week.
	if back.Dims[1].DashParent(0) != 1 {
		t.Error("dashed tree not rebuilt after load")
	}
	// Error paths.
	if _, err := ReadSchemaFile(dir + "/absent.gob"); err == nil {
		t.Error("missing file accepted")
	}
	if err := writeGarbage(dir+"/garbage.gob", "not gob at all"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSchemaFile(dir + "/garbage.gob"); err == nil {
		t.Error("garbage accepted")
	}
}

func writeGarbage(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
