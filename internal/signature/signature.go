// Package signature implements §5.2 of the paper: the signature pool that
// classifies non-trivial cube tuples into normal tuples (NTs) and common
// aggregate tuples (CATs), and the statistics-driven choice among the
// alternative CAT storage formats of §5.1.
//
// A signature <Aggr1..AggrY, R-rowid, NodeId> is the minimal metadata of
// one aggregated (non-trivial) cube tuple: the aggregate values, the
// minimum row-id of the source tuple set in the fact table, and the id of
// the lattice node the tuple belongs to. Holding signatures instead of
// tuples is what lets CURE defer the NT/CAT decision without holding the
// cube in memory; a bounded pool trades a little redundancy (tuples
// classified per flush instead of globally) for bounded memory.
package signature

import (
	"fmt"
	"sort"

	"cure/internal/lattice"
	"cure/internal/obsv"
)

// Format selects how CATs are materialized (§5.1).
type Format uint8

const (
	// FormatUndecided means no flush has observed CATs yet.
	FormatUndecided Format = iota
	// FormatA stores AGGREGATES = <R-rowid, aggrs> and CAT rows that are
	// a bare A-rowid; best when common-source CATs prevail (k/n > Y+1).
	FormatA
	// FormatB stores AGGREGATES = <aggrs> and CAT rows <R-rowid,
	// A-rowid>; best when coincidental CATs prevail and Y > 1.
	FormatB
	// FormatNT stores would-be CATs as plain NTs; best when coincidental
	// CATs prevail and Y = 1 (an A-rowid would be as wide as the single
	// aggregate it replaces).
	FormatNT
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatUndecided:
		return "undecided"
	case FormatA:
		return "A(common-source)"
	case FormatB:
		return "B(coincidental)"
	case FormatNT:
		return "NT(fallback)"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// Stats aggregates the quantities of the §5.1 cost model observed during
// flushes: m aggregate-value combinations shared by CATs, each pointed at
// by k CATs on average, produced by n distinct source sets on average.
type Stats struct {
	// CatGroups is m: the number of distinct aggregate combinations
	// shared by ≥2 signatures.
	CatGroups int64
	// CatSigs is the total number of signatures inside those groups
	// (k·m in the paper's model).
	CatSigs int64
	// CatSourceSets is the total number of distinct (aggrs, R-rowid)
	// pairs inside those groups (n·m).
	CatSourceSets int64
	// NTs is the number of signatures classified as normal tuples.
	NTs int64
	// Flushes counts pool flushes.
	Flushes int64
	// Total counts all signatures ever added.
	Total int64
}

// Add returns the element-wise sum of s and o — the union statistics of
// independent pools. Parallel builds classify through one pool per
// worker (pools are single-goroutine; only the locked writer is shared)
// and report the merged counts.
func (s Stats) Add(o Stats) Stats {
	s.CatGroups += o.CatGroups
	s.CatSigs += o.CatSigs
	s.CatSourceSets += o.CatSourceSets
	s.NTs += o.NTs
	s.Flushes += o.Flushes
	s.Total += o.Total
	return s
}

// K returns the average number of CATs per shared aggregate combination.
func (s Stats) K() float64 {
	if s.CatGroups == 0 {
		return 0
	}
	return float64(s.CatSigs) / float64(s.CatGroups)
}

// N returns the average number of distinct source sets per shared
// aggregate combination.
func (s Stats) N() float64 {
	if s.CatGroups == 0 {
		return 0
	}
	return float64(s.CatSourceSets) / float64(s.CatGroups)
}

// Decide applies the paper's format-selection rule to observed statistics
// for a cube with numAggrs aggregate columns:
//
//	if common-source CATs prevail (k/n > Y+1)  → format (a)
//	else if Y = 1                              → store CATs as NTs
//	else                                       → format (b)
func Decide(s Stats, numAggrs int) Format {
	if s.CatGroups == 0 {
		// No CATs observed; format (b) is a safe default (it degrades
		// to nothing if CATs never appear).
		if numAggrs == 1 {
			return FormatNT
		}
		return FormatB
	}
	if s.K() > s.N()*float64(numAggrs+1) {
		return FormatA
	}
	if numAggrs == 1 {
		return FormatNT
	}
	return FormatB
}

// Sink receives classified tuples from pool flushes. Implementations live
// in the storage layer.
type Sink interface {
	// WriteNT materializes a normal tuple of node: <R-rowid, aggrs>.
	WriteNT(node lattice.NodeID, rrowid int64, aggrs []float64) error
	// AppendAggregate appends one tuple to the shared AGGREGATES
	// relation and returns its A-rowid. rrowid is ≥0 under format (a)
	// and -1 under format (b), where AGGREGATES holds aggregates only.
	AppendAggregate(rrowid int64, aggrs []float64) (int64, error)
	// WriteCAT materializes a common-aggregate tuple of node. rrowid is
	// -1 under format (a), where the R-rowid lives in AGGREGATES.
	WriteCAT(node lattice.NodeID, rrowid, arowid int64) error
}

// Pool is the bounded signature pool. Aggregate values are stored flat
// ([Y]float64 per signature) to keep the per-signature footprint at
// 8·(Y+2) bytes, matching the paper's "(Y+2)·4 MB per million
// signatures" up to the word size.
//
// A Pool is not safe for concurrent use.
type Pool struct {
	numAggrs int
	capacity int
	sink     Sink

	aggrs   []float64
	rrowids []int64
	nodes   []lattice.NodeID

	format Format
	stats  Stats
	// ForceFormat, when not FormatUndecided, bypasses the dynamic
	// decision; used by tests and by ablation benchmarks.
	ForceFormat Format
	// Metrics is the optional observability registry: flush counts,
	// NT/CAT classification counters, pool occupancy at flush time, and a
	// flush trace event per Flush. nil disables it.
	Metrics *obsv.Registry
}

// NewPool creates a pool holding up to capacity signatures with numAggrs
// aggregate values each. capacity = 0 disables CAT/NT separation entirely
// (every non-trivial tuple is emitted immediately as an NT), the paper's
// "zero-length pool prohibits the identification of CATs" extreme.
func NewPool(numAggrs, capacity int, sink Sink) (*Pool, error) {
	if numAggrs < 1 {
		return nil, fmt.Errorf("signature: need at least one aggregate, got %d", numAggrs)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("signature: negative capacity %d", capacity)
	}
	p := &Pool{numAggrs: numAggrs, capacity: capacity, sink: sink}
	if capacity > 0 {
		hint := capacity
		if hint > 1<<20 {
			hint = 1 << 20 // grow lazily for huge pools
		}
		p.aggrs = make([]float64, 0, hint*numAggrs)
		p.rrowids = make([]int64, 0, hint)
		p.nodes = make([]lattice.NodeID, 0, hint)
	}
	return p, nil
}

// Len returns the number of buffered signatures.
func (p *Pool) Len() int { return len(p.rrowids) }

// Full reports whether the pool has reached capacity.
func (p *Pool) Full() bool { return len(p.rrowids) >= p.capacity }

// Format returns the storage format in effect (FormatUndecided until the
// first flush that observes CATs).
func (p *Pool) Format() Format { return p.format }

// Stats returns cumulative classification statistics.
func (p *Pool) Stats() Stats { return p.stats }

// SizeBytes returns the in-memory footprint of a full pool, for memory
// accounting.
func (p *Pool) SizeBytes() int64 {
	return int64(p.capacity) * int64(8*(p.numAggrs+2))
}

// Add buffers the signature of one non-trivial tuple, flushing first if
// the pool is full. With zero capacity the tuple is written out as an NT
// immediately.
func (p *Pool) Add(node lattice.NodeID, rrowid int64, aggrs []float64) error {
	p.stats.Total++
	if p.capacity == 0 {
		p.stats.NTs++
		return p.sink.WriteNT(node, rrowid, aggrs)
	}
	if p.Full() {
		if err := p.Flush(); err != nil {
			return err
		}
	}
	p.aggrs = append(p.aggrs, aggrs[:p.numAggrs]...)
	p.rrowids = append(p.rrowids, rrowid)
	p.nodes = append(p.nodes, node)
	return nil
}

// aggrsOf returns the aggregate slice of buffered signature i.
func (p *Pool) aggrsOf(i int32) []float64 {
	return p.aggrs[int(i)*p.numAggrs : (int(i)+1)*p.numAggrs]
}

// compareSig orders signatures by (aggrs, R-rowid); grouping by aggregate
// values is a prefix of this order, so one sort serves both formats.
func (p *Pool) compareSig(a, b int32) int {
	av, bv := p.aggrsOf(a), p.aggrsOf(b)
	for i := range av {
		if av[i] < bv[i] {
			return -1
		}
		if av[i] > bv[i] {
			return 1
		}
	}
	switch {
	case p.rrowids[a] < p.rrowids[b]:
		return -1
	case p.rrowids[a] > p.rrowids[b]:
		return 1
	}
	return 0
}

func (p *Pool) sameAggrs(a, b int32) bool {
	av, bv := p.aggrsOf(a), p.aggrsOf(b)
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

// Flush sorts the buffered signatures, updates the format statistics,
// locks the storage format on the first flush that observes CATs, and
// emits every buffered signature to the sink as an NT or CAT. The pool is
// empty afterwards.
func (p *Pool) Flush() error {
	n := len(p.rrowids)
	if n == 0 {
		return nil
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return p.compareSig(order[i], order[j]) < 0 })

	// First pass: statistics over aggregate-value groups.
	var flushStats Stats
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && p.sameAggrs(order[lo], order[hi]) {
			hi++
		}
		if hi-lo > 1 {
			flushStats.CatGroups++
			flushStats.CatSigs += int64(hi - lo)
			sources := int64(1)
			for i := lo + 1; i < hi; i++ {
				if p.rrowids[order[i]] != p.rrowids[order[i-1]] {
					sources++
				}
			}
			flushStats.CatSourceSets += sources
		}
		lo = hi
	}
	p.stats.CatGroups += flushStats.CatGroups
	p.stats.CatSigs += flushStats.CatSigs
	p.stats.CatSourceSets += flushStats.CatSourceSets
	p.stats.Flushes++
	if reg := p.Metrics; reg != nil {
		reg.Counter("pool.flushes").Inc()
		reg.Counter("pool.cat_groups").Add(flushStats.CatGroups)
		reg.Counter("pool.cat_sigs").Add(flushStats.CatSigs)
		reg.Gauge("pool.occupancy").Set(int64(n))
	}

	// Lock the format once: the first flush that actually sees CATs
	// decides for the whole construction, as the paper prescribes.
	if p.format == FormatUndecided {
		if p.ForceFormat != FormatUndecided {
			p.format = p.ForceFormat
		} else if flushStats.CatGroups > 0 {
			p.format = Decide(flushStats, p.numAggrs)
		}
	}
	effective := p.format
	if effective == FormatUndecided {
		// Still no CATs anywhere: everything in this flush is an NT.
		effective = FormatNT
	}

	// Second pass: emit.
	ntsBefore := p.stats.NTs
	var err error
	for lo := 0; lo < n && err == nil; {
		hi := lo + 1
		for hi < n && p.sameAggrs(order[lo], order[hi]) {
			hi++
		}
		err = p.emitGroup(order[lo:hi], effective)
		lo = hi
	}
	if reg := p.Metrics; reg != nil {
		flushNTs := p.stats.NTs - ntsBefore
		reg.Counter("pool.nts").Add(flushNTs)
		if tr := reg.Trace(); tr != nil {
			tr.Emit(obsv.FlushEvent{
				Ev: "pool-flush", Size: n, NTs: flushNTs,
				CatGroups: flushStats.CatGroups, CatSigs: flushStats.CatSigs,
				Format: effective.String(),
			})
		}
	}
	p.aggrs = p.aggrs[:0]
	p.rrowids = p.rrowids[:0]
	p.nodes = p.nodes[:0]
	return err
}

// emitGroup writes one aggregate-value group (already sorted by R-rowid)
// to the sink under the chosen format.
func (p *Pool) emitGroup(group []int32, format Format) error {
	if len(group) == 1 || format == FormatNT {
		for _, s := range group {
			p.stats.NTs += 1
			if err := p.sink.WriteNT(p.nodes[s], p.rrowids[s], p.aggrsOf(s)); err != nil {
				return err
			}
		}
		return nil
	}
	switch format {
	case FormatA:
		// One AGGREGATES tuple per common-source subgroup; coincidental
		// members of the group each get their own (the paper's "second,
		// mainly redundant tuple" cost that the decision rule weighs).
		for lo := 0; lo < len(group); {
			hi := lo + 1
			for hi < len(group) && p.rrowids[group[hi]] == p.rrowids[group[lo]] {
				hi++
			}
			arowid, err := p.sink.AppendAggregate(p.rrowids[group[lo]], p.aggrsOf(group[lo]))
			if err != nil {
				return err
			}
			for _, s := range group[lo:hi] {
				if err := p.sink.WriteCAT(p.nodes[s], -1, arowid); err != nil {
					return err
				}
			}
			lo = hi
		}
		return nil
	case FormatB:
		arowid, err := p.sink.AppendAggregate(-1, p.aggrsOf(group[0]))
		if err != nil {
			return err
		}
		for _, s := range group {
			if err := p.sink.WriteCAT(p.nodes[s], p.rrowids[s], arowid); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("signature: emit under format %v", format)
	}
}
