package signature

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"cure/internal/lattice"
)

// recordingSink captures everything a pool emits.
type recordingSink struct {
	nts  []ntRec
	aggs []aggRec
	cats []catRec
}

type ntRec struct {
	node   lattice.NodeID
	rrowid int64
	aggrs  []float64
}

type aggRec struct {
	rrowid int64
	aggrs  []float64
}

type catRec struct {
	node           lattice.NodeID
	rrowid, arowid int64
}

func (s *recordingSink) WriteNT(node lattice.NodeID, rrowid int64, aggrs []float64) error {
	s.nts = append(s.nts, ntRec{node, rrowid, append([]float64(nil), aggrs...)})
	return nil
}

func (s *recordingSink) AppendAggregate(rrowid int64, aggrs []float64) (int64, error) {
	s.aggs = append(s.aggs, aggRec{rrowid, append([]float64(nil), aggrs...)})
	return int64(len(s.aggs) - 1), nil
}

func (s *recordingSink) WriteCAT(node lattice.NodeID, rrowid, arowid int64) error {
	s.cats = append(s.cats, catRec{node, rrowid, arowid})
	return nil
}

func TestDecideRule(t *testing.T) {
	tests := []struct {
		name  string
		stats Stats
		y     int
		want  Format
	}{
		// k/n > Y+1 → common source prevails → format (a).
		{"common source Y=2", Stats{CatGroups: 10, CatSigs: 100, CatSourceSets: 20}, 2, FormatA}, // k=10, n=2, 10 > 2·3
		{"coincidental Y=2", Stats{CatGroups: 10, CatSigs: 40, CatSourceSets: 30}, 2, FormatB},   // k=4, n=3, 4 < 9
		{"coincidental Y=1", Stats{CatGroups: 10, CatSigs: 40, CatSourceSets: 30}, 1, FormatNT},
		{"common source Y=1", Stats{CatGroups: 10, CatSigs: 100, CatSourceSets: 10}, 1, FormatA},       // k=10, n=1, 10 > 2
		{"boundary equals not greater", Stats{CatGroups: 1, CatSigs: 6, CatSourceSets: 2}, 2, FormatB}, // k/n = 3 = Y+1
		{"no cats Y=2", Stats{}, 2, FormatB},
		{"no cats Y=1", Stats{}, 1, FormatNT},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Decide(tt.stats, tt.y); got != tt.want {
				t.Errorf("Decide = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStatsKN(t *testing.T) {
	s := Stats{CatGroups: 4, CatSigs: 20, CatSourceSets: 8}
	if s.K() != 5 || s.N() != 2 {
		t.Errorf("K=%v N=%v", s.K(), s.N())
	}
	var zero Stats
	if zero.K() != 0 || zero.N() != 0 {
		t.Error("zero stats must not divide by zero")
	}
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(0, 10, &recordingSink{}); err == nil {
		t.Error("zero aggregates accepted")
	}
	if _, err := NewPool(1, -1, &recordingSink{}); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestZeroCapacityPoolWritesNTsImmediately(t *testing.T) {
	sink := &recordingSink{}
	p, err := NewPool(2, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Two identical signatures that a real pool would classify as CATs.
	if err := p.Add(1, 10, []float64{5, 5}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(2, 10, []float64{5, 5}); err != nil {
		t.Fatal(err)
	}
	if len(sink.nts) != 2 || len(sink.cats) != 0 {
		t.Errorf("zero pool wrote %d NTs, %d CATs", len(sink.nts), len(sink.cats))
	}
	if p.Stats().Total != 2 {
		t.Errorf("Total = %d", p.Stats().Total)
	}
}

func TestCommonSourceCATsUseFormatA(t *testing.T) {
	sink := &recordingSink{}
	p, err := NewPool(2, 100, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Three common-source CATs (same aggrs, same min R-rowid, distinct
	// nodes) plus one NT.
	for node := lattice.NodeID(1); node <= 3; node++ {
		if err := p.Add(node, 7, []float64{30, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Add(9, 3, []float64{90, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// k=3, n=1 → k/n=3 > Y+1=3? No: 3 > 3 is false... with Y=2 the rule
	// needs k/n > 3; a single source set with 3 CATs sits exactly on the
	// boundary and picks format (b). Add more CATs to push it over.
	if p.Format() != FormatB {
		t.Fatalf("boundary case format = %v, want B", p.Format())
	}

	sink = &recordingSink{}
	p, err = NewPool(2, 100, sink)
	if err != nil {
		t.Fatal(err)
	}
	for node := lattice.NodeID(1); node <= 7; node++ {
		if err := p.Add(node, 7, []float64{30, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Add(9, 3, []float64{90, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.Format() != FormatA {
		t.Fatalf("format = %v, want A", p.Format())
	}
	// One AGGREGATES tuple carrying the shared R-rowid; seven bare-A-rowid
	// CAT rows; one NT.
	if len(sink.aggs) != 1 || sink.aggs[0].rrowid != 7 {
		t.Errorf("aggs = %+v", sink.aggs)
	}
	if len(sink.cats) != 7 {
		t.Fatalf("cats = %d", len(sink.cats))
	}
	for _, c := range sink.cats {
		if c.rrowid != -1 || c.arowid != 0 {
			t.Errorf("format-A CAT row = %+v", c)
		}
	}
	if len(sink.nts) != 1 || sink.nts[0].rrowid != 3 {
		t.Errorf("nts = %+v", sink.nts)
	}
}

func TestCoincidentalCATsUseFormatB(t *testing.T) {
	sink := &recordingSink{}
	p, err := NewPool(2, 100, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Two coincidental CATs: same aggregates, different source sets.
	if err := p.Add(1, 10, []float64{85, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(2, 20, []float64{85, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.Format() != FormatB {
		t.Fatalf("format = %v, want B", p.Format())
	}
	if len(sink.aggs) != 1 || sink.aggs[0].rrowid != -1 {
		t.Errorf("aggs = %+v", sink.aggs)
	}
	if len(sink.cats) != 2 {
		t.Fatalf("cats = %+v", sink.cats)
	}
	rids := []int64{sink.cats[0].rrowid, sink.cats[1].rrowid}
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	if !reflect.DeepEqual(rids, []int64{10, 20}) {
		t.Errorf("format-B CAT rrowids = %v", rids)
	}
}

func TestSingleAggregateCoincidentalStoredAsNT(t *testing.T) {
	sink := &recordingSink{}
	p, err := NewPool(1, 100, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Add(1, 10, []float64{85}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(2, 20, []float64{85}); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.Format() != FormatNT {
		t.Fatalf("format = %v, want NT", p.Format())
	}
	if len(sink.nts) != 2 || len(sink.cats) != 0 || len(sink.aggs) != 0 {
		t.Errorf("NT fallback wrote nts=%d cats=%d aggs=%d", len(sink.nts), len(sink.cats), len(sink.aggs))
	}
}

func TestAutoFlushOnCapacity(t *testing.T) {
	sink := &recordingSink{}
	p, err := NewPool(1, 4, sink)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := p.Add(lattice.NodeID(i), int64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 4: adds 0-3 buffered, 5th add flushes then buffers, 9th
	// add flushes again. Two flushes so far, 1 signature left buffered.
	if got := p.Stats().Flushes; got != 2 {
		t.Errorf("Flushes = %d, want 2", got)
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d, want 1", p.Len())
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(sink.nts) != 9 {
		t.Errorf("total NTs = %d, want 9", len(sink.nts))
	}
}

func TestBoundedPoolMayMissCrossFlushCATs(t *testing.T) {
	// The documented trade-off: partners split across flushes are
	// classified independently (here: as NTs), whereas one big pool
	// finds the CAT pair.
	small := &recordingSink{}
	p, _ := NewPool(2, 1, small)
	p.Add(1, 10, []float64{85, 1})
	p.Add(2, 20, []float64{85, 1})
	p.Flush()
	if len(small.cats) != 0 || len(small.nts) != 2 {
		t.Errorf("split flushes: cats=%d nts=%d", len(small.cats), len(small.nts))
	}
	big := &recordingSink{}
	q, _ := NewPool(2, 10, big)
	q.Add(1, 10, []float64{85, 1})
	q.Add(2, 20, []float64{85, 1})
	q.Flush()
	if len(big.cats) != 2 {
		t.Errorf("joint flush: cats=%d", len(big.cats))
	}
}

func TestForceFormat(t *testing.T) {
	sink := &recordingSink{}
	p, _ := NewPool(2, 10, sink)
	p.ForceFormat = FormatA
	p.Add(1, 10, []float64{85, 1})
	p.Add(2, 20, []float64{85, 1}) // coincidental, but format is forced
	p.Flush()
	if p.Format() != FormatA {
		t.Fatalf("format = %v", p.Format())
	}
	// Format (a) with two different source sets → two AGGREGATES tuples.
	if len(sink.aggs) != 2 {
		t.Errorf("aggs = %d, want 2 (one per source set)", len(sink.aggs))
	}
}

func TestFormatLockedAcrossFlushes(t *testing.T) {
	sink := &recordingSink{}
	p, _ := NewPool(2, 10, sink)
	// First flush: coincidental → FormatB.
	p.Add(1, 10, []float64{85, 1})
	p.Add(2, 20, []float64{85, 1})
	p.Flush()
	if p.Format() != FormatB {
		t.Fatalf("first flush format = %v", p.Format())
	}
	// Second flush is overwhelmingly common-source, but the decision is
	// already locked.
	for i := 0; i < 8; i++ {
		p.Add(lattice.NodeID(i), 5, []float64{42, 7})
	}
	p.Flush()
	if p.Format() != FormatB {
		t.Errorf("format changed after lock: %v", p.Format())
	}
}

func TestSizeBytesMatchesPaperFootprint(t *testing.T) {
	// §5.2: a pool of 1e6 signatures occupies ≈ (Y+2)·4 MB with 4-byte
	// words; our words are 8 bytes, so (Y+2)·8 MB.
	p, _ := NewPool(2, 1_000_000, &recordingSink{})
	if got, want := p.SizeBytes(), int64(1_000_000*(2+2)*8); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}

func TestEveryAddedSignatureIsEmittedExactlyOnce(t *testing.T) {
	// Property: over random inputs, #NTs + #CATs emitted equals the
	// number of signatures added, regardless of flush boundaries.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		sink := &recordingSink{}
		capacity := 1 + rng.Intn(50)
		p, _ := NewPool(2, capacity, sink)
		n := 1 + rng.Intn(300)
		for i := 0; i < n; i++ {
			aggrs := []float64{float64(rng.Intn(5)), float64(rng.Intn(3))}
			if err := p.Add(lattice.NodeID(rng.Intn(8)), int64(rng.Intn(20)), aggrs); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		if got := len(sink.nts) + len(sink.cats); got != n {
			t.Fatalf("trial %d: emitted %d tuples for %d signatures (cap %d)", trial, got, n, capacity)
		}
		// Each CAT's A-rowid must reference a recorded AGGREGATES tuple.
		for _, c := range sink.cats {
			if c.arowid < 0 || int(c.arowid) >= len(sink.aggs) {
				t.Fatalf("trial %d: dangling A-rowid %d", trial, c.arowid)
			}
		}
	}
}

func TestFlushEmptyPoolIsNoop(t *testing.T) {
	sink := &recordingSink{}
	p, _ := NewPool(1, 10, sink)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Flushes != 0 {
		t.Error("empty flush counted")
	}
}

func TestFormatString(t *testing.T) {
	for f, want := range map[Format]string{
		FormatUndecided: "undecided",
		FormatA:         "A(common-source)",
		FormatB:         "B(coincidental)",
		FormatNT:        "NT(fallback)",
	} {
		if got := f.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	if got := Format(99).String(); got != fmt.Sprintf("Format(%d)", 99) {
		t.Errorf("unknown format string = %q", got)
	}
}
