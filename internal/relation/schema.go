// Package relation implements the miniature relational substrate CURE is
// built on: columnar in-memory fact tables, aggregate specifications, and a
// row-oriented fixed-width binary persistence format that supports random
// access by row-id (needed because CURE cubes reference fact tuples by
// R-rowid instead of storing dimension values).
package relation

import (
	"errors"
	"fmt"
)

// AggFunc identifies a distributive or algebraic aggregate function.
// Holistic functions (e.g. MEDIAN) are excluded on purpose: CURE's
// observation 3 (computing coarse nodes from the in-memory node N) only
// holds for non-holistic aggregates, as the paper notes.
type AggFunc uint8

const (
	// AggSum computes the sum of a measure column.
	AggSum AggFunc = iota
	// AggCount counts input tuples; it needs no measure column.
	AggCount
	// AggMin computes the minimum of a measure column.
	AggMin
	// AggMax computes the maximum of a measure column.
	AggMax
)

// String returns the SQL-ish name of the aggregate function.
func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// AggSpec describes one aggregate of the cube: which function over which
// measure column of the fact table. For AggCount, Measure is ignored.
type AggSpec struct {
	Func    AggFunc
	Measure int // index into FactTable.Measures; ignored for AggCount
}

// Validate checks the spec against a fact table with numMeasures measure
// columns.
func (s AggSpec) Validate(numMeasures int) error {
	if s.Func == AggCount {
		return nil
	}
	if s.Measure < 0 || s.Measure >= numMeasures {
		return fmt.Errorf("relation: aggregate %s references measure %d of %d", s.Func, s.Measure, numMeasures)
	}
	return nil
}

// Schema describes the logical layout of a fact table: named dimension
// columns (stored as int32 codes at the base hierarchy level) and named
// measure columns (float64).
type Schema struct {
	DimNames     []string
	MeasureNames []string
}

// NumDims returns the number of dimension columns.
func (s *Schema) NumDims() int { return len(s.DimNames) }

// NumMeasures returns the number of measure columns.
func (s *Schema) NumMeasures() int { return len(s.MeasureNames) }

// Validate checks that the schema is well formed: at least one dimension
// and no duplicate column names.
func (s *Schema) Validate() error {
	if len(s.DimNames) == 0 {
		return errors.New("relation: schema needs at least one dimension")
	}
	seen := make(map[string]bool, len(s.DimNames)+len(s.MeasureNames))
	for _, n := range s.DimNames {
		if n == "" {
			return errors.New("relation: empty dimension name")
		}
		if seen[n] {
			return fmt.Errorf("relation: duplicate column name %q", n)
		}
		seen[n] = true
	}
	for _, n := range s.MeasureNames {
		if n == "" {
			return errors.New("relation: empty measure name")
		}
		if seen[n] {
			return fmt.Errorf("relation: duplicate column name %q", n)
		}
		seen[n] = true
	}
	return nil
}

// RowWidth returns the fixed on-disk width in bytes of one fact-table row:
// 4 bytes per dimension code plus 8 bytes per measure.
func (s *Schema) RowWidth() int { return 4*len(s.DimNames) + 8*len(s.MeasureNames) }
