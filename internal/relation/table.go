package relation

import (
	"fmt"
)

// FactTable is a columnar in-memory fact table. Dimension values are int32
// codes at the most detailed (base) hierarchy level; measures are float64.
// Rows are addressed by their index, which doubles as the R-rowid that
// CURE's storage formats reference.
type FactTable struct {
	Schema *Schema
	// Dims[d][r] is the base-level code of dimension d in row r.
	Dims [][]int32
	// Measures[m][r] is the value of measure m in row r.
	Measures [][]float64
	// RowIDs maps local row index to the row-id in the original fact
	// table. It is nil for an original table (identity mapping) and set
	// for partitions and derived nodes, whose tuples must keep pointing
	// at the original relation.
	RowIDs []int64
}

// NewFactTable allocates an empty fact table with the given schema and
// capacity hint.
func NewFactTable(schema *Schema, capacity int) *FactTable {
	t := &FactTable{Schema: schema}
	t.Dims = make([][]int32, schema.NumDims())
	for d := range t.Dims {
		t.Dims[d] = make([]int32, 0, capacity)
	}
	t.Measures = make([][]float64, schema.NumMeasures())
	for m := range t.Measures {
		t.Measures[m] = make([]float64, 0, capacity)
	}
	return t
}

// Len returns the number of rows.
func (t *FactTable) Len() int {
	if len(t.Dims) == 0 {
		return 0
	}
	return len(t.Dims[0])
}

// Append adds one row. dims and measures must match the schema arity.
func (t *FactTable) Append(dims []int32, measures []float64) {
	for d := range t.Dims {
		t.Dims[d] = append(t.Dims[d], dims[d])
	}
	for m := range t.Measures {
		t.Measures[m] = append(t.Measures[m], measures[m])
	}
}

// AppendWithRowID adds one row that originates from row id of another
// table. All rows of a table must be appended consistently: either all via
// Append (identity row-ids) or all via AppendWithRowID.
func (t *FactTable) AppendWithRowID(dims []int32, measures []float64, id int64) {
	t.Append(dims, measures)
	t.RowIDs = append(t.RowIDs, id)
}

// RowID returns the original-fact-table row-id of local row r.
func (t *FactTable) RowID(r int) int64 {
	if t.RowIDs != nil {
		return t.RowIDs[r]
	}
	return int64(r)
}

// DimRow copies the dimension codes of row r into dst and returns it.
// If dst is nil or too short a new slice is allocated.
func (t *FactTable) DimRow(r int, dst []int32) []int32 {
	if cap(dst) < len(t.Dims) {
		dst = make([]int32, len(t.Dims))
	}
	dst = dst[:len(t.Dims)]
	for d := range t.Dims {
		dst[d] = t.Dims[d][r]
	}
	return dst
}

// MeasureRow copies the measure values of row r into dst and returns it.
func (t *FactTable) MeasureRow(r int, dst []float64) []float64 {
	if cap(dst) < len(t.Measures) {
		dst = make([]float64, len(t.Measures))
	}
	dst = dst[:len(t.Measures)]
	for m := range t.Measures {
		dst[m] = t.Measures[m][r]
	}
	return dst
}

// SizeBytes returns the approximate in-memory footprint of the table, used
// by the partitioner to honour the memory budget.
func (t *FactTable) SizeBytes() int64 {
	n := int64(t.Len())
	per := int64(4*len(t.Dims) + 8*len(t.Measures))
	if t.RowIDs != nil {
		per += 8
	}
	return n * per
}

// Validate checks internal consistency: all columns the same length and
// row-ids (if present) covering every row.
func (t *FactTable) Validate() error {
	n := t.Len()
	for d, col := range t.Dims {
		if len(col) != n {
			return fmt.Errorf("relation: dim column %d has %d rows, want %d", d, len(col), n)
		}
	}
	for m, col := range t.Measures {
		if len(col) != n {
			return fmt.Errorf("relation: measure column %d has %d rows, want %d", m, len(col), n)
		}
	}
	if t.RowIDs != nil && len(t.RowIDs) != n {
		return fmt.Errorf("relation: row-id column has %d rows, want %d", len(t.RowIDs), n)
	}
	return nil
}

// Aggregator accumulates aggregate values for one group of fact tuples
// according to a list of AggSpecs. The zero Aggregator is not usable; call
// NewAggregator.
type Aggregator struct {
	specs []AggSpec
	vals  []float64
	count int64
}

// NewAggregator creates an aggregator for the given specs.
func NewAggregator(specs []AggSpec) *Aggregator {
	return &Aggregator{specs: specs, vals: make([]float64, len(specs))}
}

// Reset clears the accumulated state so the aggregator can be reused.
func (a *Aggregator) Reset() {
	a.count = 0
	for i := range a.vals {
		a.vals[i] = 0
	}
}

// Add accumulates row r of table t.
func (a *Aggregator) Add(t *FactTable, r int) {
	first := a.count == 0
	a.count++
	for i, s := range a.specs {
		switch s.Func {
		case AggSum:
			a.vals[i] += t.Measures[s.Measure][r]
		case AggCount:
			a.vals[i]++
		case AggMin:
			v := t.Measures[s.Measure][r]
			if first || v < a.vals[i] {
				a.vals[i] = v
			}
		case AggMax:
			v := t.Measures[s.Measure][r]
			if first || v > a.vals[i] {
				a.vals[i] = v
			}
		}
	}
}

// AddValues accumulates a pre-aggregated tuple (measures already at some
// granularity). Valid only for distributive functions, which all of ours
// are; count must be merged through an AggCount/AggSum column by the
// caller's choice of specs. The provided measures slice is indexed like
// the table's measure columns.
func (a *Aggregator) AddValues(measures []float64) {
	first := a.count == 0
	a.count++
	for i, s := range a.specs {
		switch s.Func {
		case AggSum:
			a.vals[i] += measures[s.Measure]
		case AggCount:
			a.vals[i]++
		case AggMin:
			v := measures[s.Measure]
			if first || v < a.vals[i] {
				a.vals[i] = v
			}
		case AggMax:
			v := measures[s.Measure]
			if first || v > a.vals[i] {
				a.vals[i] = v
			}
		}
	}
}

// Count returns the number of input tuples accumulated so far.
func (a *Aggregator) Count() int64 { return a.count }

// Values copies the current aggregate values into dst and returns it.
func (a *Aggregator) Values(dst []float64) []float64 {
	if cap(dst) < len(a.vals) {
		dst = make([]float64, len(a.vals))
	}
	dst = dst[:len(a.vals)]
	copy(dst, a.vals)
	return dst
}

// AggregateRange aggregates rows idx[lo:hi] of t in one call and returns
// the aggregate values. It is the hot path of cube construction.
func AggregateRange(t *FactTable, specs []AggSpec, idx []int32, lo, hi int, dst []float64) []float64 {
	if cap(dst) < len(specs) {
		dst = make([]float64, len(specs))
	}
	dst = dst[:len(specs)]
	for i, s := range specs {
		switch s.Func {
		case AggCount:
			dst[i] = float64(hi - lo)
		case AggSum:
			col := t.Measures[s.Measure]
			var sum float64
			for j := lo; j < hi; j++ {
				sum += col[idx[j]]
			}
			dst[i] = sum
		case AggMin:
			col := t.Measures[s.Measure]
			v := col[idx[lo]]
			for j := lo + 1; j < hi; j++ {
				if col[idx[j]] < v {
					v = col[idx[j]]
				}
			}
			dst[i] = v
		case AggMax:
			col := t.Measures[s.Measure]
			v := col[idx[lo]]
			for j := lo + 1; j < hi; j++ {
				if col[idx[j]] > v {
					v = col[idx[j]]
				}
			}
			dst[i] = v
		}
	}
	return dst
}
