package relation

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Chunked sequential scanning. CURE's partitioning pass (§4) and every
// other full-table re-scan used to fetch rows one ReadRaw at a time —
// one pread(2) and one row decode per tuple. ScanBatches replaces that
// pattern with MB-sized reads decoded column-at-a-time into reusable
// buffers, so a sequential pass over R streams at disk bandwidth instead
// of syscall latency.

// DefaultScanBatchBytes is the target raw size of one decode batch.
const DefaultScanBatchBytes = 1 << 20

// Batch is one chunk of decoded fact rows, columnar like FactTable. The
// batch (including Raw) is only valid until the ScanBatches callback
// returns: buffers are reused for the next chunk.
type Batch struct {
	// Start is the file row index of the first row in the batch.
	Start int64
	// N is the number of rows in the batch.
	N int
	// Dims[d][i] and Meas[m][i] hold the decoded columns.
	Dims [][]int32
	Meas [][]float64
	// IDs holds the explicit original row-ids carried by partition
	// files; nil for plain fact files (use Start+i).
	IDs []int64
	// Raw is the undecoded row data of the batch (N rows of Width bytes
	// each), exposed so routing passes can copy rows without re-encoding.
	Raw []byte
	// Width is the byte width of one raw row.
	Width int
}

// RowID returns the original row-id of batch row i.
func (b *Batch) RowID(i int) int64 {
	if b.IDs != nil {
		return b.IDs[i]
	}
	return b.Start + int64(i)
}

// BatchRowsFor returns the default batch size in rows for a row width:
// as many rows as fit DefaultScanBatchBytes, at least 1.
func BatchRowsFor(rowWidth int) int {
	if rowWidth <= 0 {
		return 1
	}
	n := DefaultScanBatchBytes / rowWidth
	if n < 1 {
		n = 1
	}
	return n
}

// ScanBatches streams rows [start, end) of the file in chunks of up to
// batchRows rows (≤ 0 selects BatchRowsFor(RowWidth)), decoding each
// chunk column-wise into a reused Batch and passing it to fn. It is safe
// to call concurrently on one FactReader over disjoint (or even
// overlapping) ranges: reads use ReadAt and all scratch is per-call.
func (fr *FactReader) ScanBatches(start, end int64, batchRows int, fn func(*Batch) error) error {
	if start < 0 || end > fr.rows || start > end {
		return fmt.Errorf("relation: scan range [%d,%d) out of range [0,%d)", start, end, fr.rows)
	}
	if batchRows <= 0 {
		batchRows = BatchRowsFor(fr.rowWidth)
	}
	numDims := fr.schema.NumDims()
	numMeas := fr.schema.NumMeasures()
	b := &Batch{
		Dims:  make([][]int32, numDims),
		Meas:  make([][]float64, numMeas),
		Raw:   make([]byte, batchRows*fr.rowWidth),
		Width: fr.rowWidth,
	}
	for d := range b.Dims {
		b.Dims[d] = make([]int32, batchRows)
	}
	for m := range b.Meas {
		b.Meas[m] = make([]float64, batchRows)
	}
	if fr.hasIDs {
		b.IDs = make([]int64, batchRows)
	}
	for at := start; at < end; {
		n := int(end - at)
		if n > batchRows {
			n = batchRows
		}
		raw := b.Raw[:n*fr.rowWidth]
		if _, err := fr.f.ReadAt(raw, fr.dataOff+at*int64(fr.rowWidth)); err != nil {
			return fmt.Errorf("relation: rows [%d,%d): %w", at, at+int64(n), err)
		}
		b.Start = at
		b.N = n
		decodeBatchColumns(raw, fr.rowWidth, n, b, fr.hasIDs, fr.schema.RowWidth())
		if err := fn(b); err != nil {
			return err
		}
		at += int64(n)
	}
	return nil
}

// decodeBatchColumns decodes n raw rows column-at-a-time: each column is
// a tight strided loop over the chunk instead of one mixed-type decode
// per row, which is what lets the scan keep up with large reads.
func decodeBatchColumns(raw []byte, width, n int, b *Batch, hasIDs bool, logicalWidth int) {
	for d := range b.Dims {
		col := b.Dims[d][:n]
		off := 4 * d
		for i := 0; i < n; i++ {
			col[i] = int32(binary.LittleEndian.Uint32(raw[i*width+off:]))
		}
	}
	dimBytes := 4 * len(b.Dims)
	for m := range b.Meas {
		col := b.Meas[m][:n]
		off := dimBytes + 8*m
		for i := 0; i < n; i++ {
			col[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*width+off:]))
		}
	}
	if hasIDs {
		ids := b.IDs[:n]
		for i := 0; i < n; i++ {
			ids[i] = int64(binary.LittleEndian.Uint64(raw[i*width+logicalWidth:]))
		}
	}
}

// AppendBatch bulk-appends a scan batch to the table. Tables being
// filled from a row-id-tagged file receive the batch's explicit ids.
func (t *FactTable) AppendBatch(b *Batch) {
	for d := range t.Dims {
		t.Dims[d] = append(t.Dims[d], b.Dims[d][:b.N]...)
	}
	for m := range t.Measures {
		t.Measures[m] = append(t.Measures[m], b.Meas[m][:b.N]...)
	}
	if b.IDs != nil {
		t.RowIDs = append(t.RowIDs, b.IDs[:b.N]...)
	}
}

// LoadFactRows loads the first rows rows of a fact file into memory via
// the chunked scan (rows < 0 loads the whole file). Callers that only
// need a prefix — the verifier pins the manifest's row count even after
// incremental updates extended the file — avoid both the tail rows and
// the old row-at-a-time decode.
func LoadFactRows(path string, rows int64) (*FactTable, error) {
	fr, err := OpenFactReader(path)
	if err != nil {
		return nil, err
	}
	defer fr.Close()
	if rows < 0 || rows > fr.Rows() {
		rows = fr.Rows()
	}
	t := NewFactTable(fr.Schema(), int(rows))
	if fr.HasRowIDs() {
		t.RowIDs = make([]int64, 0, rows)
	}
	if err := fr.ScanBatches(0, rows, 0, func(b *Batch) error {
		t.AppendBatch(b)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("relation: %s: %w", path, err)
	}
	return t, nil
}

// WriteRawRows appends n pre-encoded rows (each RawRowWidth bytes,
// encoded exactly as Write/WriteWithRowID would) in one buffered write.
// It is the flush half of the partitioner's per-worker write buffers.
func (fw *FactWriter) WriteRawRows(raw []byte, n int) error {
	width := fw.schema.RowWidth()
	if fw.withRowIDs {
		width += 8
	}
	if len(raw) != n*width {
		return fmt.Errorf("relation: raw batch is %d bytes, want %d rows × %d", len(raw), n, width)
	}
	if _, err := fw.w.Write(raw); err != nil {
		return err
	}
	fw.rows += int64(n)
	return nil
}

// RawRowWidth is the byte width of one encoded row as this writer
// expects it (including the trailing row-id for row-id-tagged files).
func (fw *FactWriter) RawRowWidth() int {
	if fw.withRowIDs {
		return fw.schema.RowWidth() + 8
	}
	return fw.schema.RowWidth()
}
