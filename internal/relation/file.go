package relation

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// The on-disk fact-table format is a small header followed by fixed-width
// rows (4 bytes little-endian per dimension code, 8 bytes per measure).
// Fixed width is what makes O(1) random access by row-id possible, which
// CURE's query path depends on: cube tuples store R-rowids instead of
// dimension values and must fetch the referenced fact rows cheaply.

const (
	factMagic   = 0x43555245 // "CURE"
	factVersion = 1

	// flagRowIDs marks files whose rows carry an 8-byte original row-id
	// after the measures. Partition files use it so cube tuples built
	// from a partition keep referencing the original fact table.
	flagRowIDs uint16 = 1 << 0
)

// headerSize is the byte length of the fact-file header preceding row data.
func headerSize(s *Schema) int {
	n := 4 + 2 + 2 + 2 + 2 + 8 // magic, version, flags, numDims, numMeasures, rowCount
	for _, name := range s.DimNames {
		n += 2 + len(name)
	}
	for _, name := range s.MeasureNames {
		n += 2 + len(name)
	}
	return n
}

func writeHeader(w io.Writer, s *Schema, rows int64, flags uint16) error {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], factMagic)
	if _, err := w.Write(buf[:4]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(buf[:2], factVersion)
	if _, err := w.Write(buf[:2]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(buf[:2], flags)
	if _, err := w.Write(buf[:2]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(buf[:2], uint16(len(s.DimNames)))
	if _, err := w.Write(buf[:2]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(buf[:2], uint16(len(s.MeasureNames)))
	if _, err := w.Write(buf[:2]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(buf[:8], uint64(rows))
	if _, err := w.Write(buf[:8]); err != nil {
		return err
	}
	writeName := func(name string) error {
		binary.LittleEndian.PutUint16(buf[:2], uint16(len(name)))
		if _, err := w.Write(buf[:2]); err != nil {
			return err
		}
		_, err := io.WriteString(w, name)
		return err
	}
	for _, name := range s.DimNames {
		if err := writeName(name); err != nil {
			return err
		}
	}
	for _, name := range s.MeasureNames {
		if err := writeName(name); err != nil {
			return err
		}
	}
	return nil
}

func readHeader(r io.Reader) (*Schema, int64, uint16, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return nil, 0, 0, fmt.Errorf("relation: reading magic: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[:4]) != factMagic {
		return nil, 0, 0, errors.New("relation: not a fact-table file (bad magic)")
	}
	if _, err := io.ReadFull(r, buf[:2]); err != nil {
		return nil, 0, 0, err
	}
	if v := binary.LittleEndian.Uint16(buf[:2]); v != factVersion {
		return nil, 0, 0, fmt.Errorf("relation: unsupported fact-file version %d", v)
	}
	if _, err := io.ReadFull(r, buf[:2]); err != nil {
		return nil, 0, 0, err
	}
	flags := binary.LittleEndian.Uint16(buf[:2])
	if _, err := io.ReadFull(r, buf[:2]); err != nil {
		return nil, 0, 0, err
	}
	numDims := int(binary.LittleEndian.Uint16(buf[:2]))
	if _, err := io.ReadFull(r, buf[:2]); err != nil {
		return nil, 0, 0, err
	}
	numMeasures := int(binary.LittleEndian.Uint16(buf[:2]))
	if _, err := io.ReadFull(r, buf[:8]); err != nil {
		return nil, 0, 0, err
	}
	rows := int64(binary.LittleEndian.Uint64(buf[:8]))
	if rows < 0 {
		return nil, 0, 0, fmt.Errorf("relation: corrupt fact-file header: row count %d", rows)
	}
	readName := func() (string, error) {
		if _, err := io.ReadFull(r, buf[:2]); err != nil {
			return "", err
		}
		b := make([]byte, binary.LittleEndian.Uint16(buf[:2]))
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	s := &Schema{}
	for i := 0; i < numDims; i++ {
		name, err := readName()
		if err != nil {
			return nil, 0, 0, err
		}
		s.DimNames = append(s.DimNames, name)
	}
	for i := 0; i < numMeasures; i++ {
		name, err := readName()
		if err != nil {
			return nil, 0, 0, err
		}
		s.MeasureNames = append(s.MeasureNames, name)
	}
	if err := s.Validate(); err != nil {
		return nil, 0, 0, fmt.Errorf("relation: corrupt fact-file header: %w", err)
	}
	return s, rows, flags, nil
}

// encodeRow serializes one row into buf, which must be RowWidth bytes.
func encodeRow(buf []byte, dims []int32, measures []float64) {
	off := 0
	for _, v := range dims {
		binary.LittleEndian.PutUint32(buf[off:], uint32(v))
		off += 4
	}
	for _, v := range measures {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
}

// decodeRow deserializes one row from buf.
func decodeRow(buf []byte, dims []int32, measures []float64) {
	off := 0
	for d := range dims {
		dims[d] = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	for m := range measures {
		measures[m] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
}

// WriteFactFile persists an in-memory fact table to path. Tables with
// explicit row-ids keep them (the file grows by 8 bytes per row).
func WriteFactFile(path string, t *FactTable) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	var flags uint16
	width := t.Schema.RowWidth()
	if t.RowIDs != nil {
		flags |= flagRowIDs
		width += 8
	}
	if err := writeHeader(w, t.Schema, int64(t.Len()), flags); err != nil {
		return err
	}
	buf := make([]byte, width)
	dims := make([]int32, t.Schema.NumDims())
	meas := make([]float64, t.Schema.NumMeasures())
	for r := 0; r < t.Len(); r++ {
		dims = t.DimRow(r, dims)
		meas = t.MeasureRow(r, meas)
		encodeRow(buf, dims, meas)
		if t.RowIDs != nil {
			binary.LittleEndian.PutUint64(buf[t.Schema.RowWidth():], uint64(t.RowIDs[r]))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Flush()
}

// FactWriter streams rows to a fact file without holding them in memory;
// it is used by the data generators and the external partitioner.
type FactWriter struct {
	f          *os.File
	w          *bufio.Writer
	schema     *Schema
	buf        []byte
	rows       int64
	withRowIDs bool
}

// NewFactWriter creates path and writes a provisional header. Close fixes
// up the row count. withRowIDs selects the partition-file layout where
// every row carries its original row-id.
func NewFactWriter(path string, schema *Schema, withRowIDs bool) (*FactWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	width := schema.RowWidth()
	var flags uint16
	if withRowIDs {
		flags |= flagRowIDs
		width += 8
	}
	fw := &FactWriter{
		f:          f,
		w:          bufio.NewWriterSize(f, 1<<20),
		schema:     schema,
		buf:        make([]byte, width),
		withRowIDs: withRowIDs,
	}
	if err := writeHeader(fw.w, schema, 0, flags); err != nil {
		f.Close()
		return nil, err
	}
	return fw, nil
}

// Write appends one row (only for writers without row-ids).
func (fw *FactWriter) Write(dims []int32, measures []float64) error {
	if fw.withRowIDs {
		return errors.New("relation: writer expects WriteWithRowID")
	}
	encodeRow(fw.buf, dims, measures)
	if _, err := fw.w.Write(fw.buf); err != nil {
		return err
	}
	fw.rows++
	return nil
}

// WriteWithRowID appends one row tagged with its original row-id.
func (fw *FactWriter) WriteWithRowID(dims []int32, measures []float64, id int64) error {
	if !fw.withRowIDs {
		return errors.New("relation: writer was opened without row-ids")
	}
	encodeRow(fw.buf, dims, measures)
	binary.LittleEndian.PutUint64(fw.buf[fw.schema.RowWidth():], uint64(id))
	if _, err := fw.w.Write(fw.buf); err != nil {
		return err
	}
	fw.rows++
	return nil
}

// Rows returns the number of rows written so far.
func (fw *FactWriter) Rows() int64 { return fw.rows }

// Close flushes buffered rows, patches the header row count, and closes
// the file.
func (fw *FactWriter) Close() error {
	if err := fw.w.Flush(); err != nil {
		fw.f.Close()
		return err
	}
	// Patch the row count at its fixed offset in the header.
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(fw.rows))
	if _, err := fw.f.WriteAt(cnt[:], 4+2+2+2+2); err != nil {
		fw.f.Close()
		return err
	}
	return fw.f.Close()
}

// ReadFactFile loads an entire fact file into memory via the chunked
// batch scan (see scan.go).
func ReadFactFile(path string) (*FactTable, error) {
	return LoadFactRows(path, -1)
}

// FactReader provides O(1) random access to rows of a fact file by row-id
// without loading the file. It is the backing store for CURE's R-rowid
// dereferences during query answering.
type FactReader struct {
	f        *os.File
	schema   *Schema
	rows     int64
	rowWidth int
	hasIDs   bool
	dataOff  int64
}

// OpenFactReader opens a fact file for random access.
func OpenFactReader(path string) (*FactReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	schema, rows, flags, err := readHeader(bufio.NewReader(io.NewSectionReader(f, 0, 1<<20)))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("relation: %s: %w", path, err)
	}
	width := schema.RowWidth()
	if flags&flagRowIDs != 0 {
		width += 8
	}
	return &FactReader{
		f:        f,
		schema:   schema,
		rows:     rows,
		rowWidth: width,
		hasIDs:   flags&flagRowIDs != 0,
		dataOff:  int64(headerSize(schema)),
	}, nil
}

// Schema returns the schema of the underlying fact file.
func (fr *FactReader) Schema() *Schema { return fr.schema }

// Rows returns the number of rows in the file.
func (fr *FactReader) Rows() int64 { return fr.rows }

// RowWidth returns the fixed byte width of one row.
func (fr *FactReader) RowWidth() int { return fr.rowWidth }

// ReadRaw reads the raw bytes of row id into buf (len >= RowWidth).
func (fr *FactReader) ReadRaw(id int64, buf []byte) error {
	if id < 0 || id >= fr.rows {
		return fmt.Errorf("relation: row-id %d out of range [0,%d)", id, fr.rows)
	}
	_, err := fr.f.ReadAt(buf[:fr.rowWidth], fr.dataOff+id*int64(fr.rowWidth))
	return err
}

// ReadRawAt reads count consecutive rows starting at row id into buf.
func (fr *FactReader) ReadRawAt(id int64, count int, buf []byte) error {
	if id < 0 || id+int64(count) > fr.rows {
		return fmt.Errorf("relation: row range [%d,%d) out of range [0,%d)", id, id+int64(count), fr.rows)
	}
	_, err := fr.f.ReadAt(buf[:fr.rowWidth*count], fr.dataOff+id*int64(fr.rowWidth))
	return err
}

// HasRowIDs reports whether rows carry an explicit original row-id.
func (fr *FactReader) HasRowIDs() bool { return fr.hasIDs }

// Read decodes row id into dims and measures.
func (fr *FactReader) Read(id int64, dims []int32, measures []float64) error {
	buf := make([]byte, fr.rowWidth)
	if err := fr.ReadRaw(id, buf); err != nil {
		return err
	}
	decodeRow(buf, dims, measures)
	return nil
}

// RowIDOf extracts the original row-id from a raw row buffer of a file
// with explicit row-ids.
func (fr *FactReader) RowIDOf(buf []byte) int64 {
	return int64(binary.LittleEndian.Uint64(buf[fr.schema.RowWidth():]))
}

// DecodeRow decodes one raw row buffer previously filled by ReadRaw.
func (fr *FactReader) DecodeRow(buf []byte, dims []int32, measures []float64) {
	decodeRow(buf, dims, measures)
}

// Close closes the underlying file.
func (fr *FactReader) Close() error { return fr.f.Close() }

// AppendToFactFile appends the rows of t to an existing fact file and
// patches the header row count, returning the row-id of the first
// appended row. Schemas must match; the target file must not use explicit
// row-ids. Incremental cube maintenance uses this to extend the fact
// table before merging the delta cube.
func AppendToFactFile(path string, t *FactTable) (firstID int64, err error) {
	fr, err := OpenFactReader(path)
	if err != nil {
		return 0, err
	}
	oldRows := fr.Rows()
	schema := fr.Schema()
	hasIDs := fr.HasRowIDs()
	fr.Close()
	if hasIDs {
		return 0, errors.New("relation: cannot append to a row-id-tagged file")
	}
	if schema.NumDims() != t.Schema.NumDims() || schema.NumMeasures() != t.Schema.NumMeasures() {
		return 0, fmt.Errorf("relation: append schema mismatch: %dx%d vs %dx%d",
			t.Schema.NumDims(), t.Schema.NumMeasures(), schema.NumDims(), schema.NumMeasures())
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	// Seek to the end of the existing rows (O_APPEND would forbid the
	// header patch below).
	if _, err := f.Seek(int64(headerSize(schema))+oldRows*int64(schema.RowWidth()), io.SeekStart); err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	buf := make([]byte, schema.RowWidth())
	dims := make([]int32, schema.NumDims())
	meas := make([]float64, schema.NumMeasures())
	for r := 0; r < t.Len(); r++ {
		dims = t.DimRow(r, dims)
		meas = t.MeasureRow(r, meas)
		encodeRow(buf, dims, meas)
		if _, err := w.Write(buf); err != nil {
			return 0, err
		}
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(oldRows+int64(t.Len())))
	if _, err := f.WriteAt(cnt[:], 4+2+2+2+2); err != nil {
		return 0, err
	}
	return oldRows, nil
}
