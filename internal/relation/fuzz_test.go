package relation

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// headerBytes serializes a valid header for seeding the fuzzer.
func headerBytes(t testing.TB, s *Schema, rows int64, flags uint16) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeHeader(&buf, s, rows, flags); err != nil {
		t.Fatalf("writeHeader: %v", err)
	}
	return buf.Bytes()
}

// FuzzFactHeader throws arbitrary bytes at the fact-file header parser.
// The invariant is totality: corrupt input — truncated headers, bad
// magic or version, oversized name lengths, negative row counts,
// degenerate schemas — must come back as an error, never a panic, and
// whatever parses must itself be a valid schema.
func FuzzFactHeader(f *testing.F) {
	s := &Schema{DimNames: []string{"a", "bb", "ccc"}, MeasureNames: []string{"x"}}
	valid := headerBytes(f, s, 42, 0)
	f.Add(valid)
	f.Add(headerBytes(f, s, 0, flagRowIDs))
	// Every truncation point of a valid header.
	for i := 0; i < len(valid); i += 3 {
		f.Add(valid[:i])
	}
	// Bad magic.
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xff
	f.Add(bad)
	// Bad version.
	bad = append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(bad[4:], 99)
	f.Add(bad)
	// Negative row count.
	bad = append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(bad[12:], 1<<63)
	f.Add(bad)
	// Oversized name length pointing past the buffer.
	bad = append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(bad[20:], 0xffff)
	f.Add(bad)
	// Zero dims (invalid schema) and absurd dim counts.
	bad = headerBytes(f, s, 1, 0)
	binary.LittleEndian.PutUint16(bad[8:], 0)
	f.Add(bad)
	bad = headerBytes(f, s, 1, 0)
	binary.LittleEndian.PutUint16(bad[8:], 0xffff)
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, rows, _, err := readHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		if rows < 0 {
			t.Fatalf("parser accepted negative row count %d", rows)
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid schema: %v", verr)
		}
	})
}

// FuzzOpenFactReader runs the same corpus through the file-open path,
// which additionally sizes the data region against the real file.
func FuzzOpenFactReader(f *testing.F) {
	s := &Schema{DimNames: []string{"a", "b"}, MeasureNames: []string{"m"}}
	ft := NewFactTable(s, 4)
	for i := 0; i < 4; i++ {
		ft.Append([]int32{int32(i), int32(i * 2)}, []float64{float64(i)})
	}
	var buf bytes.Buffer
	if err := writeHeader(&buf, s, 4, 0); err != nil {
		f.Fatalf("writeHeader: %v", err)
	}
	row := make([]byte, s.RowWidth())
	dims := make([]int32, 2)
	meas := make([]float64, 1)
	for r := 0; r < 4; r++ {
		dims[0], dims[1] = ft.Dims[0][r], ft.Dims[1][r]
		meas[0] = ft.Measures[0][r]
		encodeRow(row, dims, meas)
		buf.Write(row)
	}
	whole := buf.Bytes()
	f.Add(whole)
	f.Add(whole[:len(whole)-5]) // truncated data region
	f.Add(whole[:10])           // truncated header
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		fr, err := OpenFactReader(path)
		if err != nil {
			return
		}
		defer fr.Close()
		// Whatever opened must scan without panicking; read errors are fine.
		_ = fr.ScanBatches(0, fr.Rows(), 0, func(*Batch) error { return nil })
	})
}
