package relation

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return &Schema{
		DimNames:     []string{"A", "B", "C"},
		MeasureNames: []string{"M1", "M2"},
	}
}

func TestSchemaValidate(t *testing.T) {
	tests := []struct {
		name    string
		schema  Schema
		wantErr bool
	}{
		{"ok", *testSchema(), false},
		{"no dims", Schema{MeasureNames: []string{"M"}}, true},
		{"dup dim", Schema{DimNames: []string{"A", "A"}}, true},
		{"dup across", Schema{DimNames: []string{"A"}, MeasureNames: []string{"A"}}, true},
		{"empty dim name", Schema{DimNames: []string{""}}, true},
		{"empty measure name", Schema{DimNames: []string{"A"}, MeasureNames: []string{""}}, true},
		{"no measures ok", Schema{DimNames: []string{"A"}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.schema.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSchemaRowWidth(t *testing.T) {
	s := testSchema()
	if got, want := s.RowWidth(), 3*4+2*8; got != want {
		t.Errorf("RowWidth() = %d, want %d", got, want)
	}
}

func TestAggSpecValidate(t *testing.T) {
	if err := (AggSpec{Func: AggSum, Measure: 1}).Validate(2); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (AggSpec{Func: AggSum, Measure: 2}).Validate(2); err == nil {
		t.Error("out-of-range measure accepted")
	}
	if err := (AggSpec{Func: AggCount, Measure: 99}).Validate(2); err != nil {
		t.Errorf("COUNT should ignore measure index: %v", err)
	}
}

func TestAggFuncString(t *testing.T) {
	for f, want := range map[AggFunc]string{AggSum: "SUM", AggCount: "COUNT", AggMin: "MIN", AggMax: "MAX"} {
		if got := f.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", f, got, want)
		}
	}
}

func TestFactTableAppendAndAccess(t *testing.T) {
	ft := NewFactTable(testSchema(), 4)
	ft.Append([]int32{1, 2, 3}, []float64{10, 20})
	ft.Append([]int32{4, 5, 6}, []float64{30, 40})
	if ft.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ft.Len())
	}
	if err := ft.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := ft.DimRow(1, nil); !reflect.DeepEqual(got, []int32{4, 5, 6}) {
		t.Errorf("DimRow(1) = %v", got)
	}
	if got := ft.MeasureRow(0, nil); !reflect.DeepEqual(got, []float64{10, 20}) {
		t.Errorf("MeasureRow(0) = %v", got)
	}
	if ft.RowID(1) != 1 {
		t.Errorf("identity RowID(1) = %d", ft.RowID(1))
	}
}

func TestFactTableRowIDs(t *testing.T) {
	ft := NewFactTable(testSchema(), 2)
	ft.AppendWithRowID([]int32{1, 1, 1}, []float64{1, 1}, 42)
	ft.AppendWithRowID([]int32{2, 2, 2}, []float64{2, 2}, 7)
	if ft.RowID(0) != 42 || ft.RowID(1) != 7 {
		t.Errorf("RowIDs = %d,%d, want 42,7", ft.RowID(0), ft.RowID(1))
	}
	if err := ft.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFactTableSizeBytes(t *testing.T) {
	ft := NewFactTable(testSchema(), 0)
	for i := 0; i < 10; i++ {
		ft.Append([]int32{0, 0, 0}, []float64{0, 0})
	}
	if got, want := ft.SizeBytes(), int64(10*(3*4+2*8)); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}

func TestAggregator(t *testing.T) {
	specs := []AggSpec{
		{Func: AggSum, Measure: 0},
		{Func: AggCount},
		{Func: AggMin, Measure: 1},
		{Func: AggMax, Measure: 1},
	}
	ft := NewFactTable(testSchema(), 3)
	ft.Append([]int32{1, 1, 1}, []float64{10, 5})
	ft.Append([]int32{1, 1, 1}, []float64{20, -3})
	ft.Append([]int32{1, 1, 1}, []float64{30, 8})
	a := NewAggregator(specs)
	for r := 0; r < 3; r++ {
		a.Add(ft, r)
	}
	got := a.Values(nil)
	want := []float64{60, 3, -3, 8}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Values = %v, want %v", got, want)
	}
	if a.Count() != 3 {
		t.Errorf("Count = %d", a.Count())
	}
	a.Reset()
	if a.Count() != 0 {
		t.Error("Reset did not clear count")
	}
	a.AddValues([]float64{5, 2})
	a.AddValues([]float64{7, 9})
	got = a.Values(got)
	want = []float64{12, 2, 2, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("after AddValues: Values = %v, want %v", got, want)
	}
}

func TestAggregateRange(t *testing.T) {
	specs := []AggSpec{{Func: AggSum, Measure: 0}, {Func: AggCount}, {Func: AggMin, Measure: 0}, {Func: AggMax, Measure: 0}}
	ft := NewFactTable(testSchema(), 5)
	for i := 0; i < 5; i++ {
		ft.Append([]int32{0, 0, 0}, []float64{float64(i + 1), 0})
	}
	idx := []int32{4, 2, 0, 1, 3}
	got := AggregateRange(ft, specs, idx, 1, 4, nil)
	// Rows 2, 0, 1 → measures 3, 1, 2.
	want := []float64{6, 3, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AggregateRange = %v, want %v", got, want)
	}
}

func TestAggregateRangeMatchesAggregator(t *testing.T) {
	// Property: AggregateRange over a segment equals incremental Add.
	specs := []AggSpec{{Func: AggSum, Measure: 0}, {Func: AggMin, Measure: 1}, {Func: AggMax, Measure: 0}, {Func: AggCount}}
	rng := rand.New(rand.NewSource(1))
	ft := NewFactTable(testSchema(), 100)
	for i := 0; i < 100; i++ {
		ft.Append([]int32{0, 0, 0}, []float64{rng.NormFloat64() * 10, rng.NormFloat64()})
	}
	idx := make([]int32, 100)
	for i := range idx {
		idx[i] = int32(rng.Intn(100))
	}
	for trial := 0; trial < 20; trial++ {
		lo := rng.Intn(99)
		hi := lo + 1 + rng.Intn(100-lo-1)
		fast := AggregateRange(ft, specs, idx, lo, hi, nil)
		a := NewAggregator(specs)
		for j := lo; j < hi; j++ {
			a.Add(ft, int(idx[j]))
		}
		slow := a.Values(nil)
		for k := range fast {
			if math.Abs(fast[k]-slow[k]) > 1e-9 {
				t.Fatalf("trial %d agg %d: fast %v slow %v", trial, k, fast, slow)
			}
		}
	}
}

func TestFactFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fact.bin")
	ft := NewFactTable(testSchema(), 100)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		ft.Append(
			[]int32{int32(rng.Intn(50)), int32(rng.Intn(20)), int32(rng.Intn(5))},
			[]float64{rng.Float64() * 100, float64(rng.Intn(1000))},
		)
	}
	if err := WriteFactFile(path, ft); err != nil {
		t.Fatalf("WriteFactFile: %v", err)
	}
	back, err := ReadFactFile(path)
	if err != nil {
		t.Fatalf("ReadFactFile: %v", err)
	}
	if back.Len() != ft.Len() {
		t.Fatalf("rows = %d, want %d", back.Len(), ft.Len())
	}
	if !reflect.DeepEqual(back.Schema, ft.Schema) {
		t.Errorf("schema mismatch: %+v vs %+v", back.Schema, ft.Schema)
	}
	if !reflect.DeepEqual(back.Dims, ft.Dims) || !reflect.DeepEqual(back.Measures, ft.Measures) {
		t.Error("data mismatch after round trip")
	}
}

func TestFactWriterStreamsAndPatchesCount(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.bin")
	s := testSchema()
	fw, err := NewFactWriter(path, s, false)
	if err != nil {
		t.Fatalf("NewFactWriter: %v", err)
	}
	for i := 0; i < 37; i++ {
		if err := fw.Write([]int32{int32(i), int32(i * 2), int32(i % 3)}, []float64{float64(i), -float64(i)}); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if fw.Rows() != 37 {
		t.Errorf("Rows = %d", fw.Rows())
	}
	if err := fw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	back, err := ReadFactFile(path)
	if err != nil {
		t.Fatalf("ReadFactFile: %v", err)
	}
	if back.Len() != 37 {
		t.Fatalf("rows = %d, want 37", back.Len())
	}
	if back.Dims[0][36] != 36 || back.Measures[1][36] != -36 {
		t.Error("last row corrupted")
	}
}

func TestFactReaderRandomAccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ra.bin")
	ft := NewFactTable(testSchema(), 64)
	for i := 0; i < 64; i++ {
		ft.Append([]int32{int32(i), int32(i * i), 0}, []float64{float64(i) / 3, float64(-i)})
	}
	if err := WriteFactFile(path, ft); err != nil {
		t.Fatalf("WriteFactFile: %v", err)
	}
	fr, err := OpenFactReader(path)
	if err != nil {
		t.Fatalf("OpenFactReader: %v", err)
	}
	defer fr.Close()
	if fr.Rows() != 64 {
		t.Fatalf("Rows = %d", fr.Rows())
	}
	dims := make([]int32, 3)
	meas := make([]float64, 2)
	for _, id := range []int64{0, 63, 17, 31, 1} {
		if err := fr.Read(id, dims, meas); err != nil {
			t.Fatalf("Read(%d): %v", id, err)
		}
		if dims[0] != int32(id) || dims[1] != int32(id*id) || meas[1] != float64(-id) {
			t.Errorf("row %d decoded as dims=%v meas=%v", id, dims, meas)
		}
	}
	if err := fr.Read(64, dims, meas); err == nil {
		t.Error("out-of-range read succeeded")
	}
	if err := fr.Read(-1, dims, meas); err == nil {
		t.Error("negative read succeeded")
	}
	// Batch read of three consecutive rows.
	buf := make([]byte, fr.RowWidth()*3)
	if err := fr.ReadRawAt(10, 3, buf); err != nil {
		t.Fatalf("ReadRawAt: %v", err)
	}
	fr.DecodeRow(buf[fr.RowWidth():2*fr.RowWidth()], dims, meas)
	if dims[0] != 11 {
		t.Errorf("batch middle row dims=%v", dims)
	}
}

func TestOpenFactReaderRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.bin")
	if err := os.WriteFile(path, []byte("this is not a fact file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFactReader(path); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadFactFile(path); err == nil {
		t.Error("garbage accepted by ReadFactFile")
	}
}

func TestRowCodecProperty(t *testing.T) {
	// Property: encodeRow/decodeRow round-trips arbitrary values,
	// including NaN payloads and negative codes.
	f := func(a, b int32, m1, m2 float64) bool {
		buf := make([]byte, 2*4+2*8)
		encodeRow(buf, []int32{a, b}, []float64{m1, m2})
		dims := make([]int32, 2)
		meas := make([]float64, 2)
		decodeRow(buf, dims, meas)
		same := func(x, y float64) bool {
			return x == y || (math.IsNaN(x) && math.IsNaN(y))
		}
		return dims[0] == a && dims[1] == b && same(meas[0], m1) && same(meas[1], m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFactFileWithRowIDsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "part.bin")
	ft := NewFactTable(testSchema(), 8)
	for i := 0; i < 8; i++ {
		ft.AppendWithRowID([]int32{int32(i), 0, 0}, []float64{float64(i), 0}, int64(i*100+7))
	}
	if err := WriteFactFile(path, ft); err != nil {
		t.Fatalf("WriteFactFile: %v", err)
	}
	back, err := ReadFactFile(path)
	if err != nil {
		t.Fatalf("ReadFactFile: %v", err)
	}
	if back.RowIDs == nil {
		t.Fatal("row-ids lost")
	}
	for i := 0; i < 8; i++ {
		if back.RowID(i) != int64(i*100+7) {
			t.Errorf("RowID(%d) = %d", i, back.RowID(i))
		}
	}
	fr, err := OpenFactReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if !fr.HasRowIDs() {
		t.Fatal("reader lost row-id flag")
	}
	buf := make([]byte, fr.RowWidth())
	if err := fr.ReadRaw(3, buf); err != nil {
		t.Fatal(err)
	}
	if fr.RowIDOf(buf) != 307 {
		t.Errorf("RowIDOf = %d, want 307", fr.RowIDOf(buf))
	}
}

func TestFactWriterRowIDModeEnforced(t *testing.T) {
	dir := t.TempDir()
	s := testSchema()
	fw, err := NewFactWriter(filepath.Join(dir, "a.bin"), s, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Write([]int32{0, 0, 0}, []float64{0, 0}); err == nil {
		t.Error("Write accepted on row-id writer")
	}
	if err := fw.WriteWithRowID([]int32{0, 0, 0}, []float64{0, 0}, 5); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fw2, err := NewFactWriter(filepath.Join(dir, "b.bin"), s, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw2.WriteWithRowID([]int32{0, 0, 0}, []float64{0, 0}, 5); err == nil {
		t.Error("WriteWithRowID accepted on plain writer")
	}
	fw2.Close()
}

func TestAppendToFactFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grow.bin")
	base := NewFactTable(testSchema(), 5)
	for i := 0; i < 5; i++ {
		base.Append([]int32{int32(i), 0, 0}, []float64{float64(i), 0})
	}
	if err := WriteFactFile(path, base); err != nil {
		t.Fatal(err)
	}
	delta := NewFactTable(testSchema(), 3)
	for i := 0; i < 3; i++ {
		delta.Append([]int32{int32(100 + i), 1, 1}, []float64{float64(i), 1})
	}
	firstID, err := AppendToFactFile(path, delta)
	if err != nil {
		t.Fatal(err)
	}
	if firstID != 5 {
		t.Errorf("firstID = %d, want 5", firstID)
	}
	back, err := ReadFactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 8 {
		t.Fatalf("rows = %d, want 8", back.Len())
	}
	if back.Dims[0][5] != 100 || back.Dims[0][7] != 102 || back.Measures[1][6] != 1 {
		t.Error("appended rows corrupted")
	}
	// Original rows untouched.
	if back.Dims[0][4] != 4 || back.Measures[0][4] != 4 {
		t.Error("original rows corrupted")
	}

	// Mismatched schema rejected.
	bad := NewFactTable(&Schema{DimNames: []string{"A"}, MeasureNames: []string{"M"}}, 1)
	bad.Append([]int32{0}, []float64{0})
	if _, err := AppendToFactFile(path, bad); err == nil {
		t.Error("schema mismatch accepted")
	}
	// Row-id-tagged target rejected.
	tagged := NewFactTable(testSchema(), 1)
	tagged.AppendWithRowID([]int32{0, 0, 0}, []float64{0, 0}, 9)
	taggedPath := filepath.Join(dir, "tagged.bin")
	if err := WriteFactFile(taggedPath, tagged); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendToFactFile(taggedPath, delta); err == nil {
		t.Error("append to row-id file accepted")
	}
	// Missing file rejected.
	if _, err := AppendToFactFile(filepath.Join(dir, "absent.bin"), delta); err == nil {
		t.Error("missing target accepted")
	}
}

func TestFactReaderSchemaAccessor(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.bin")
	ft := NewFactTable(testSchema(), 1)
	ft.Append([]int32{1, 2, 3}, []float64{4, 5})
	if err := WriteFactFile(path, ft); err != nil {
		t.Fatal(err)
	}
	fr, err := OpenFactReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if fr.Schema().NumDims() != 3 || fr.Schema().MeasureNames[1] != "M2" {
		t.Errorf("Schema = %+v", fr.Schema())
	}
	if ft.Len() != 1 {
		t.Error("Len wrong")
	}
	empty := NewFactTable(testSchema(), 0)
	if empty.Len() != 0 {
		t.Error("empty Len wrong")
	}
	var zero FactTable
	if zero.Len() != 0 {
		t.Error("zero-value Len wrong")
	}
}
