package relation

import (
	"math/rand"
	"path/filepath"
	"testing"
)

// scanTestFact writes a fact file with rows random rows (tagged row-ids
// when withIDs) and returns its path plus the in-memory ground truth.
func scanTestFact(t *testing.T, rows int, withIDs bool) (string, *FactTable) {
	t.Helper()
	s := &Schema{DimNames: []string{"a", "b", "c"}, MeasureNames: []string{"x", "y"}}
	ft := NewFactTable(s, rows)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < rows; i++ {
		dims := []int32{rng.Int31n(100), rng.Int31n(50), rng.Int31n(10)}
		meas := []float64{float64(rng.Intn(1000)), float64(rng.Intn(9))}
		if withIDs {
			// Non-trivial ids: reversed order, so Start+i would be wrong.
			ft.AppendWithRowID(dims, meas, int64(rows-i))
		} else {
			ft.Append(dims, meas)
		}
	}
	path := filepath.Join(t.TempDir(), "fact.bin")
	if err := WriteFactFile(path, ft); err != nil {
		t.Fatalf("WriteFactFile: %v", err)
	}
	return path, ft
}

func TestScanBatchesMatchesRowReads(t *testing.T) {
	for _, withIDs := range []bool{false, true} {
		path, want := scanTestFact(t, 337, withIDs)
		fr, err := OpenFactReader(path)
		if err != nil {
			t.Fatalf("OpenFactReader: %v", err)
		}
		defer fr.Close()
		// Deliberately awkward batch size so the last batch is partial.
		for _, batchRows := range []int{1, 7, 64, 337, 10_000, 0} {
			var got int64
			err := fr.ScanBatches(0, fr.Rows(), batchRows, func(b *Batch) error {
				if b.Start != got {
					t.Fatalf("batch start %d, want %d", b.Start, got)
				}
				for i := 0; i < b.N; i++ {
					r := int(b.Start) + i
					for d := range b.Dims {
						if b.Dims[d][i] != want.Dims[d][r] {
							t.Fatalf("ids=%v batch=%d row %d dim %d: got %d want %d",
								withIDs, batchRows, r, d, b.Dims[d][i], want.Dims[d][r])
						}
					}
					for m := range b.Meas {
						if b.Meas[m][i] != want.Measures[m][r] {
							t.Fatalf("row %d measure %d: got %v want %v", r, m, b.Meas[m][i], want.Measures[m][r])
						}
					}
					wantID := int64(r)
					if withIDs {
						wantID = want.RowIDs[r]
					}
					if b.RowID(i) != wantID {
						t.Fatalf("row %d: RowID=%d want %d", r, b.RowID(i), wantID)
					}
					// Raw bytes must round-trip through the row decoder too.
					dims := make([]int32, 3)
					meas := make([]float64, 2)
					fr.DecodeRow(b.Raw[i*b.Width:(i+1)*b.Width], dims, meas)
					if dims[0] != want.Dims[0][r] {
						t.Fatalf("row %d raw decode mismatch", r)
					}
				}
				got += int64(b.N)
				return nil
			})
			if err != nil {
				t.Fatalf("ScanBatches(batchRows=%d): %v", batchRows, err)
			}
			if got != fr.Rows() {
				t.Fatalf("scanned %d rows, want %d", got, fr.Rows())
			}
		}
	}
}

func TestScanBatchesSubrange(t *testing.T) {
	path, want := scanTestFact(t, 100, false)
	fr, err := OpenFactReader(path)
	if err != nil {
		t.Fatalf("OpenFactReader: %v", err)
	}
	defer fr.Close()
	var rows []int32
	if err := fr.ScanBatches(25, 60, 8, func(b *Batch) error {
		rows = append(rows, b.Dims[0][:b.N]...)
		return nil
	}); err != nil {
		t.Fatalf("ScanBatches: %v", err)
	}
	if len(rows) != 35 {
		t.Fatalf("got %d rows, want 35", len(rows))
	}
	for i, v := range rows {
		if v != want.Dims[0][25+i] {
			t.Fatalf("row %d: got %d want %d", 25+i, v, want.Dims[0][25+i])
		}
	}
	if err := fr.ScanBatches(-1, 10, 0, func(*Batch) error { return nil }); err == nil {
		t.Fatal("negative start accepted")
	}
	if err := fr.ScanBatches(0, fr.Rows()+1, 0, func(*Batch) error { return nil }); err == nil {
		t.Fatal("end past EOF accepted")
	}
}

func TestLoadFactRowsPrefixAndAll(t *testing.T) {
	for _, withIDs := range []bool{false, true} {
		path, want := scanTestFact(t, 211, withIDs)
		full, err := LoadFactRows(path, -1)
		if err != nil {
			t.Fatalf("LoadFactRows(-1): %v", err)
		}
		if full.Len() != want.Len() {
			t.Fatalf("full load: %d rows, want %d", full.Len(), want.Len())
		}
		prefix, err := LoadFactRows(path, 50)
		if err != nil {
			t.Fatalf("LoadFactRows(50): %v", err)
		}
		if prefix.Len() != 50 {
			t.Fatalf("prefix load: %d rows, want 50", prefix.Len())
		}
		for r := 0; r < 50; r++ {
			for d := range want.Dims {
				if prefix.Dims[d][r] != want.Dims[d][r] {
					t.Fatalf("prefix row %d dim %d mismatch", r, d)
				}
			}
		}
		if withIDs {
			if len(full.RowIDs) != want.Len() || full.RowIDs[0] != want.RowIDs[0] {
				t.Fatalf("row-ids not preserved: %v", full.RowIDs[:3])
			}
		} else if full.RowIDs != nil {
			t.Fatal("plain file grew row-ids")
		}
		// Over-large request clamps to the file.
		over, err := LoadFactRows(path, 10_000)
		if err != nil || over.Len() != want.Len() {
			t.Fatalf("over-large load: %d rows, err %v", over.Len(), err)
		}
	}
}

func TestWriteRawRowsRoundTrip(t *testing.T) {
	for _, withIDs := range []bool{false, true} {
		src, want := scanTestFact(t, 150, withIDs)
		fr, err := OpenFactReader(src)
		if err != nil {
			t.Fatalf("OpenFactReader: %v", err)
		}
		dst := filepath.Join(t.TempDir(), "copy.bin")
		fw, err := NewFactWriter(dst, fr.Schema(), withIDs)
		if err != nil {
			t.Fatalf("NewFactWriter: %v", err)
		}
		if fw.RawRowWidth() != fr.RowWidth() {
			t.Fatalf("RawRowWidth %d != reader width %d", fw.RawRowWidth(), fr.RowWidth())
		}
		if err := fr.ScanBatches(0, fr.Rows(), 32, func(b *Batch) error {
			return fw.WriteRawRows(b.Raw[:b.N*b.Width], b.N)
		}); err != nil {
			t.Fatalf("copy: %v", err)
		}
		if err := fw.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		fr.Close()
		got, err := ReadFactFile(dst)
		if err != nil {
			t.Fatalf("ReadFactFile(copy): %v", err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("copy has %d rows, want %d", got.Len(), want.Len())
		}
		for r := 0; r < want.Len(); r++ {
			for d := range want.Dims {
				if got.Dims[d][r] != want.Dims[d][r] {
					t.Fatalf("row %d dim %d mismatch", r, d)
				}
			}
			for m := range want.Measures {
				if got.Measures[m][r] != want.Measures[m][r] {
					t.Fatalf("row %d measure %d mismatch", r, m)
				}
			}
			if withIDs && got.RowIDs[r] != want.RowIDs[r] {
				t.Fatalf("row %d id %d, want %d", r, got.RowIDs[r], want.RowIDs[r])
			}
		}
		// A mis-sized raw buffer must be rejected, not silently written.
		fw2, err := NewFactWriter(filepath.Join(t.TempDir(), "bad.bin"), fr.Schema(), withIDs)
		if err != nil {
			t.Fatalf("NewFactWriter: %v", err)
		}
		if err := fw2.WriteRawRows(make([]byte, fw2.RawRowWidth()+1), 1); err == nil {
			t.Fatal("mis-sized raw batch accepted")
		}
		fw2.Close()
	}
}

func TestBatchRowsFor(t *testing.T) {
	if got := BatchRowsFor(0); got != 1 {
		t.Fatalf("BatchRowsFor(0) = %d", got)
	}
	if got := BatchRowsFor(DefaultScanBatchBytes * 2); got != 1 {
		t.Fatalf("huge row width: %d", got)
	}
	if got := BatchRowsFor(32); got != DefaultScanBatchBytes/32 {
		t.Fatalf("BatchRowsFor(32) = %d", got)
	}
}
