// Package gen produces the datasets of the paper's evaluation (§7):
// zipf-skewed flat synthetic tables (dimensionality and skew sweeps),
// the APB-1 benchmark fact table with its exact hierarchy schema, and
// synthetic surrogates for the two real datasets (CovType and Sep85L)
// built from their documented shapes — see DESIGN.md for the substitution
// rationale. All generators are deterministic in their seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/relation"
)

// Zipf samples codes [0, card) with probability ∝ 1/(rank+1)^s. s = 0 is
// uniform. It inverts a precomputed CDF, so sampling is O(log card).
type Zipf struct {
	rng *rand.Rand
	cum []float64
}

// NewZipf builds a sampler over card values with exponent s.
func NewZipf(rng *rand.Rand, card int32, s float64) *Zipf {
	cum := make([]float64, card)
	total := 0.0
	for i := int32(0); i < card; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{rng: rng, cum: cum}
}

// Next draws one code.
func (z *Zipf) Next() int32 {
	u := z.rng.Float64()
	return int32(sort.SearchFloat64s(z.cum, u))
}

// SyntheticSpec parameterizes the flat synthetic datasets of Figures
// 19–22: T tuples over D dimensions with cardinalities C_i = T/i and a
// shared zipf factor Z.
type SyntheticSpec struct {
	Dims   int
	Tuples int
	Zipf   float64
	Seed   int64
}

// Cards returns the per-dimension cardinalities C_i = T/i (1-based i),
// floored at 2.
func (s SyntheticSpec) Cards() []int32 {
	cards := make([]int32, s.Dims)
	for i := range cards {
		c := s.Tuples / (i + 1)
		if c < 2 {
			c = 2
		}
		cards[i] = int32(c)
	}
	return cards
}

// Synthetic generates the table and its (flat) hierarchy schema.
func Synthetic(spec SyntheticSpec) (*relation.FactTable, *hierarchy.Schema, error) {
	if spec.Dims < 1 || spec.Tuples < 1 {
		return nil, nil, fmt.Errorf("gen: bad synthetic spec %+v", spec)
	}
	cards := spec.Cards()
	dims := make([]*hierarchy.Dim, spec.Dims)
	dimNames := make([]string, spec.Dims)
	for i := range dims {
		dimNames[i] = fmt.Sprintf("D%d", i)
		dims[i] = hierarchy.NewFlatDim(dimNames[i], cards[i])
	}
	hier, err := hierarchy.NewSchema(dims...)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	samplers := make([]*Zipf, spec.Dims)
	for i := range samplers {
		samplers[i] = NewZipf(rng, cards[i], spec.Zipf)
	}
	schema := &relation.Schema{DimNames: dimNames, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, spec.Tuples)
	row := make([]int32, spec.Dims)
	for t := 0; t < spec.Tuples; t++ {
		for d := range row {
			row[d] = samplers[d].Next()
		}
		ft.Append(row, []float64{float64(rng.Intn(100))})
	}
	return ft, hier, nil
}

// linear builds a linear dimension from a chain of cardinalities using
// contiguous roll-up maps.
func linear(name string, levelNames []string, cards []int32) *hierarchy.Dim {
	maps := make([][]int32, len(cards)-1)
	var acc []int32
	for i := 1; i < len(cards); i++ {
		step := hierarchy.BuildContiguousMap(cards[i-1], cards[i])
		if acc == nil {
			acc = step
		} else {
			acc = hierarchy.ComposeMaps(acc, step)
		}
		maps[i-1] = acc
	}
	d, err := hierarchy.NewLinearDim(name, levelNames, cards, maps)
	if err != nil {
		panic("gen: " + err.Error()) // static definitions cannot fail
	}
	return d
}

// APBSchema returns the APB-1 hierarchy exactly as §7 specifies it:
// Product Code(6500)→Class(435)→Group(215)→Family(54)→Line(11)→Division(3),
// Customer Store(640)→Retailer(71), Time Month(17)→Quarter(6)→Year(2),
// Channel Base(9). Total nodes: 7·3·4·2 = 168.
func APBSchema() *hierarchy.Schema {
	product := linear("Product",
		[]string{"Code", "Class", "Group", "Family", "Line", "Division"},
		[]int32{6500, 435, 215, 54, 11, 3})
	customer := linear("Customer", []string{"Store", "Retailer"}, []int32{640, 71})
	timeDim := linear("Time", []string{"Month", "Quarter", "Year"}, []int32{17, 6, 2})
	channel := hierarchy.NewFlatDim("Channel", 9)
	s, err := hierarchy.NewSchema(product, customer, timeDim, channel)
	if err != nil {
		panic("gen: " + err.Error())
	}
	return s
}

// APBTuples returns the fact-table size for a density factor: §7 reports
// 1,239,300 tuples at density 0.1 and 400× that at density 40, i.e.
// 12,393,000 tuples per unit density.
func APBTuples(density float64) int {
	return int(12_393_000 * density)
}

// APBSchemaRelation is APB-1's relational schema: the four dimensions and
// the two measures (Unit Sales, Dollar Sales).
func APBSchemaRelation() *relation.Schema {
	return &relation.Schema{
		DimNames:     []string{"Product", "Customer", "Time", "Channel"},
		MeasureNames: []string{"UnitSales", "DollarSales"},
	}
}

// APB generates an APB-1-style fact table in memory. Dimension values are
// mildly skewed (zipf 0.3) as retail activity concentrates on popular
// products and stores; measures are small integers so aggregate values
// are exact in float64 and coincidental CATs can occur as in real data.
func APB(density float64, seed int64) (*relation.FactTable, *hierarchy.Schema, error) {
	tuples := APBTuples(density)
	if tuples < 1 {
		return nil, nil, fmt.Errorf("gen: APB density %v yields no tuples", density)
	}
	hier := APBSchema()
	ft := relation.NewFactTable(APBSchemaRelation(), tuples)
	g := newAPBSampler(seed, hier)
	dims := make([]int32, 4)
	meas := make([]float64, 2)
	for t := 0; t < tuples; t++ {
		g.next(dims, meas)
		ft.Append(dims, meas)
	}
	return ft, hier, nil
}

// APBToFile streams an APB-1-style fact table to path without holding it
// in memory — the path used for the out-of-core densities.
func APBToFile(path string, density float64, seed int64) (int64, *hierarchy.Schema, error) {
	tuples := APBTuples(density)
	if tuples < 1 {
		return 0, nil, fmt.Errorf("gen: APB density %v yields no tuples", density)
	}
	hier := APBSchema()
	fw, err := relation.NewFactWriter(path, APBSchemaRelation(), false)
	if err != nil {
		return 0, nil, err
	}
	g := newAPBSampler(seed, hier)
	dims := make([]int32, 4)
	meas := make([]float64, 2)
	for t := 0; t < tuples; t++ {
		g.next(dims, meas)
		if err := fw.Write(dims, meas); err != nil {
			fw.Close()
			return 0, nil, err
		}
	}
	if err := fw.Close(); err != nil {
		return 0, nil, err
	}
	return int64(tuples), hier, nil
}

type apbSampler struct {
	rng      *rand.Rand
	samplers []*Zipf
}

func newAPBSampler(seed int64, hier *hierarchy.Schema) *apbSampler {
	rng := rand.New(rand.NewSource(seed))
	g := &apbSampler{rng: rng}
	for _, d := range hier.Dims {
		g.samplers = append(g.samplers, NewZipf(rng, d.Card(0), 0.3))
	}
	return g
}

func (g *apbSampler) next(dims []int32, meas []float64) {
	for d := range dims {
		dims[d] = g.samplers[d].Next()
	}
	unit := float64(1 + g.rng.Intn(9))
	price := float64(1 + g.rng.Intn(50))
	meas[0] = unit
	meas[1] = unit * price
}

// CovTypeLike generates a surrogate for the Forest CoverType dataset:
// 10 dimensions, 581,012 tuples at scale 1, with the cardinalities of the
// quantized real dataset commonly used in cubing studies and moderate
// skew. scale ∈ (0, 1] shrinks the tuple count for laptop-scale runs
// (cardinalities are capped at the tuple count so small scales remain
// meaningful).
func CovTypeLike(scale float64, seed int64) (*relation.FactTable, *hierarchy.Schema, error) {
	cards := []int32{1978, 361, 67, 551, 700, 5827, 207, 185, 255, 5827}
	names := []string{
		"Elevation", "Aspect", "Slope", "HDistHydro", "VDistHydro",
		"HDistRoad", "Hillshade9", "HillshadeNoon", "Hillshade3", "HDistFire",
	}
	return surrogate(581_012, cards, names, 0.7, 0, scale, seed)
}

// Sep85LLike generates a surrogate for the Sep85L cloud-report dataset:
// 9 dimensions, 1,015,367 tuples at scale 1. Sep85L's distinguishing
// property in the paper is its dense areas, which force many non-trivial
// tuples and make CURE pay for signature sorting; denseFraction of the
// tuples are drawn from a tiny sub-domain to reproduce exactly that.
func Sep85LLike(scale float64, seed int64) (*relation.FactTable, *hierarchy.Schema, error) {
	cards := []int32{7037, 352, 179, 101, 26, 182, 38, 48, 10}
	names := []string{
		"Station", "PresentWeather", "PastWeather", "TotalCloud",
		"LowCloud", "MidCloud", "HighCloud", "Visibility", "WindSpeed",
	}
	return surrogate(1_015_367, cards, names, 0.5, 0.3, scale, seed)
}

// surrogate generates a flat dataset of the given shape. denseFraction of
// the tuples are confined to the lowest ~3% of each dimension's codes,
// creating the dense areas that generate aggregationally redundant
// tuples.
func surrogate(fullTuples int, cards []int32, names []string, skew, denseFraction, scale float64, seed int64) (*relation.FactTable, *hierarchy.Schema, error) {
	if scale <= 0 || scale > 1 {
		return nil, nil, fmt.Errorf("gen: scale %v outside (0,1]", scale)
	}
	tuples := int(float64(fullTuples) * scale)
	if tuples < 1 {
		tuples = 1
	}
	for i, c := range cards {
		if int(c) > tuples {
			cards[i] = int32(tuples)
		}
	}
	dims := make([]*hierarchy.Dim, len(cards))
	for i := range dims {
		dims[i] = hierarchy.NewFlatDim(names[i], cards[i])
	}
	hier, err := hierarchy.NewSchema(dims...)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	samplers := make([]*Zipf, len(cards))
	denseCards := make([]int32, len(cards))
	for i := range samplers {
		samplers[i] = NewZipf(rng, cards[i], skew)
		dc := cards[i] / 32
		if dc < 1 {
			dc = 1
		}
		denseCards[i] = dc
	}
	schema := &relation.Schema{DimNames: names, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, tuples)
	row := make([]int32, len(cards))
	for t := 0; t < tuples; t++ {
		dense := rng.Float64() < denseFraction
		for d := range row {
			if dense {
				row[d] = rng.Int31n(denseCards[d])
			} else {
				row[d] = samplers[d].Next()
			}
		}
		ft.Append(row, []float64{float64(rng.Intn(10))})
	}
	return ft, hier, nil
}

// NodeWorkload draws n node ids uniformly at random from the lattice —
// §7's "1,000 random node queries, which perform no selection".
func NodeWorkload(enum *lattice.Enum, n int, seed int64) []lattice.NodeID {
	rng := rand.New(rand.NewSource(seed))
	out := make([]lattice.NodeID, n)
	for i := range out {
		out[i] = lattice.NodeID(rng.Int63n(enum.NumNodes()))
	}
	return out
}
