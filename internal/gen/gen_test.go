package gen

import (
	"math"
	"math/rand"
	"testing"

	"cure/internal/lattice"
	"cure/internal/relation"
)

func TestZipfUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 10, 0)
	counts := make([]int, 10)
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for c, got := range counts {
		if math.Abs(float64(got)-n/10) > n/10*0.15 {
			t.Errorf("uniform zipf code %d drawn %d times, want ≈%d", c, got, n/10)
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 1000, 1.5)
	head := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if z.Next() < 10 {
			head++
		}
	}
	// With s = 1.5 the top 10 of 1000 ranks carry most of the mass.
	if float64(head)/n < 0.6 {
		t.Errorf("skewed zipf put only %d/%d draws in the head", head, n)
	}
	// Codes stay in range.
	for i := 0; i < 1000; i++ {
		if c := z.Next(); c < 0 || c >= 1000 {
			t.Fatalf("code %d out of range", c)
		}
	}
}

func TestSyntheticSpec(t *testing.T) {
	spec := SyntheticSpec{Dims: 4, Tuples: 1000, Zipf: 0.8, Seed: 3}
	cards := spec.Cards()
	want := []int32{1000, 500, 333, 250}
	for i := range want {
		if cards[i] != want[i] {
			t.Errorf("C_%d = %d, want %d", i+1, cards[i], want[i])
		}
	}
	ft, hier, err := Synthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Len() != 1000 || hier.NumDims() != 4 {
		t.Fatalf("generated %d rows, %d dims", ft.Len(), hier.NumDims())
	}
	for d := 0; d < 4; d++ {
		for _, v := range ft.Dims[d] {
			if v < 0 || v >= cards[d] {
				t.Fatalf("dim %d value %d out of [0,%d)", d, v, cards[d])
			}
		}
	}
	// Determinism.
	ft2, _, err := Synthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	for d := range ft.Dims {
		for r := range ft.Dims[d] {
			if ft.Dims[d][r] != ft2.Dims[d][r] {
				t.Fatal("synthetic generation not deterministic")
			}
		}
	}
	if _, _, err := Synthetic(SyntheticSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestAPBSchemaMatchesPaper(t *testing.T) {
	hier := APBSchema()
	if hier.NumDims() != 4 {
		t.Fatalf("dims = %d", hier.NumDims())
	}
	// §7: total nodes = (6+1)·(2+1)·(3+1)·(1+1) = 168.
	if got := hier.NumNodes(); got != 168 {
		t.Errorf("NumNodes = %d, want 168", got)
	}
	p := hier.Dims[0]
	wantCards := []int32{6500, 435, 215, 54, 11, 3}
	for l, w := range wantCards {
		if p.Card(l) != w {
			t.Errorf("Product level %d card = %d, want %d", l, p.Card(l), w)
		}
	}
	if hier.Dims[1].Card(0) != 640 || hier.Dims[1].Card(1) != 71 {
		t.Error("Customer cards wrong")
	}
	if hier.Dims[2].Card(0) != 17 || hier.Dims[2].Card(2) != 2 {
		t.Error("Time cards wrong")
	}
	if hier.Dims[3].Card(0) != 9 {
		t.Error("Channel card wrong")
	}
	// Roll-up consistency: maps must factor through every intermediate
	// level (needed by the partitioner).
	for lo := 0; lo < p.AllLevel(); lo++ {
		for hi := lo + 1; hi <= p.AllLevel(); hi++ {
			if !p.FactorsThrough(lo, hi) {
				t.Errorf("Product level %d does not factor through %d", hi, lo)
			}
		}
	}
}

func TestAPBTuples(t *testing.T) {
	if got := APBTuples(0.1); got != 1_239_300 {
		t.Errorf("density 0.1 → %d tuples, want 1,239,300 (paper)", got)
	}
	if got := APBTuples(40); got != 495_720_000 {
		t.Errorf("density 40 → %d tuples, want 495,720,000 (paper)", got)
	}
}

func TestAPBGeneration(t *testing.T) {
	ft, hier, err := APB(0.0005, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Len() != APBTuples(0.0005) {
		t.Fatalf("rows = %d", ft.Len())
	}
	for d := 0; d < 4; d++ {
		card := hier.Dims[d].Card(0)
		for _, v := range ft.Dims[d] {
			if v < 0 || v >= card {
				t.Fatalf("dim %d value %d out of range", d, v)
			}
		}
	}
	// Measures: unit sales ≥ 1, dollar = unit × price ≥ unit.
	for r := 0; r < ft.Len(); r++ {
		if ft.Measures[0][r] < 1 || ft.Measures[1][r] < ft.Measures[0][r] {
			t.Fatalf("row %d measures %v %v", r, ft.Measures[0][r], ft.Measures[1][r])
		}
	}
	if _, _, err := APB(0, 1); err == nil {
		t.Error("zero density accepted")
	}
}

func TestAPBToFileMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/apb.bin"
	n, _, err := APBToFile(path, 0.0002, 9)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(APBTuples(0.0002)) {
		t.Fatalf("streamed %d rows", n)
	}
	ft, _, err := APB(0.0002, 9)
	if err != nil {
		t.Fatal(err)
	}
	back, err := readFact(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ft.Len() {
		t.Fatalf("file has %d rows, memory %d", back.Len(), ft.Len())
	}
	for r := 0; r < ft.Len(); r++ {
		for d := range ft.Dims {
			if ft.Dims[d][r] != back.Dims[d][r] {
				t.Fatalf("row %d dim %d differs", r, d)
			}
		}
	}
}

func TestCovTypeLike(t *testing.T) {
	ft, hier, err := CovTypeLike(0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	if hier.NumDims() != 10 {
		t.Fatalf("dims = %d", hier.NumDims())
	}
	scale := 0.01
	if want := int(float64(581_012) * scale); ft.Len() != want {
		t.Fatalf("rows = %d, want %d", ft.Len(), want)
	}
	if _, _, err := CovTypeLike(0, 1); err == nil {
		t.Error("zero scale accepted")
	}
	if _, _, err := CovTypeLike(1.5, 1); err == nil {
		t.Error("scale > 1 accepted")
	}
}

func TestSep85LLikeHasDenseAreas(t *testing.T) {
	ft, hier, err := Sep85LLike(0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	if hier.NumDims() != 9 {
		t.Fatalf("dims = %d", hier.NumDims())
	}
	// The dense sub-domain must be visibly over-represented: count rows
	// whose every dimension lies in the lowest 1/32 of its domain.
	dense := 0
	for r := 0; r < ft.Len(); r++ {
		in := true
		for d := 0; d < hier.NumDims(); d++ {
			dc := hier.Dims[d].Card(0) / 32
			if dc < 1 {
				dc = 1
			}
			if ft.Dims[d][r] >= dc {
				in = false
				break
			}
		}
		if in {
			dense++
		}
	}
	if float64(dense)/float64(ft.Len()) < 0.15 {
		t.Errorf("dense area holds only %d/%d rows", dense, ft.Len())
	}
}

func TestNodeWorkload(t *testing.T) {
	hier := APBSchema()
	enum := lattice.NewEnum(hier)
	w := NodeWorkload(enum, 1000, 5)
	if len(w) != 1000 {
		t.Fatalf("workload size %d", len(w))
	}
	seen := map[lattice.NodeID]bool{}
	for _, id := range w {
		if !enum.Valid(id) {
			t.Fatalf("invalid node %d", id)
		}
		seen[id] = true
	}
	// 1000 draws over 168 nodes should hit most of them.
	if len(seen) < 100 {
		t.Errorf("workload covers only %d distinct nodes", len(seen))
	}
	// Deterministic.
	w2 := NodeWorkload(enum, 1000, 5)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("workload not deterministic")
		}
	}
}

// readFact loads a generated fact file for comparison.
func readFact(path string) (*relation.FactTable, error) {
	return relation.ReadFactFile(path)
}
