package bench

import (
	"fmt"
	"path/filepath"

	"cure/internal/bubst"
	"cure/internal/buc"
	"cure/internal/core"
	"cure/internal/gen"
)

// bucDimLimit stops the BUC column of the dimensionality sweep: without
// trivial-tuple pruning the complete cube's tuple count grows as 2^D and
// becomes unbuildable long before the other methods struggle.
const bucDimLimit = 12

// runDims regenerates Figures 19–20: construction time and storage space
// as dimensionality grows (paper: T = 500,000, Z = 0.8, C_i = T/i,
// D = 8…28).
func (h *Harness) runDims() (map[string]*Result, error) {
	tuples := int(500_000 * h.cfg.Scale)
	if tuples < 1000 {
		tuples = 1000
	}
	notes := []string{
		fmt.Sprintf("T = %s tuples (paper: 500,000), Z = 0.8, C_i = T/i", fmtCount(int64(tuples))),
		fmt.Sprintf("BUC stopped beyond D = %d: complete-cube output grows as 2^D without TT pruning", bucDimLimit),
	}
	fig19 := &Result{ID: "fig19", Title: "Dimensionality vs construction time",
		Header: []string{"D", "BUC", "BU-BST", "CURE", "CURE+"}, Notes: notes}
	fig20 := &Result{ID: "fig20", Title: "Dimensionality vs storage space",
		Header: []string{"D", "BUC", "BU-BST", "CURE", "CURE+"}, Notes: notes}
	for d := 8; d <= h.cfg.MaxDims; d += 4 {
		ft, hier, err := gen.Synthetic(gen.SyntheticSpec{Dims: d, Tuples: tuples, Zipf: 0.8, Seed: h.cfg.Seed})
		if err != nil {
			return nil, err
		}
		dir := filepath.Join(h.cfg.WorkDir, fmt.Sprintf("dims%d", d))
		timeCells := []string{fmt.Sprintf("%d", d)}
		sizeCells := []string{fmt.Sprintf("%d", d)}
		if d <= bucDimLimit {
			st, err := buc.Build(ft, hier, stdSpecs(), buc.Options{Dir: filepath.Join(dir, "buc")})
			if err != nil {
				return nil, err
			}
			timeCells = append(timeCells, fmtDur(st.Elapsed.Seconds()))
			sizeCells = append(sizeCells, fmtBytes(st.Bytes))
		} else {
			timeCells = append(timeCells, "-")
			sizeCells = append(sizeCells, "-")
		}
		st, err := bubst.Build(ft, hier, stdSpecs(), bubst.Options{Dir: filepath.Join(dir, "bubst")})
		if err != nil {
			return nil, err
		}
		timeCells = append(timeCells, fmtDur(st.Elapsed.Seconds()))
		sizeCells = append(sizeCells, fmtBytes(st.Bytes))
		cs, err := h.buildCURE(filepath.Join(dir, "cure"), ft, hier, nil)
		if err != nil {
			return nil, err
		}
		timeCells = append(timeCells, fmtDur(cs.Elapsed.Seconds()))
		sizeCells = append(sizeCells, fmtBytes(cs.Sizes.Total()))
		cps, err := h.buildCURE(filepath.Join(dir, "cureplus"), ft, hier, func(o *core.Options) { o.Plus = true })
		if err != nil {
			return nil, err
		}
		timeCells = append(timeCells, fmtDur(cps.Elapsed.Seconds()))
		sizeCells = append(sizeCells, fmtBytes(cps.Sizes.Total()))
		fig19.AddRow(timeCells...)
		fig20.AddRow(sizeCells...)
	}
	return map[string]*Result{"fig19": fig19, "fig20": fig20}, nil
}

// runSkew regenerates Figures 21–22: the effect of zipf skew (paper:
// D = 8, T = 500,000, Z = 0…2, counting sort enabled).
func (h *Harness) runSkew() (map[string]*Result, error) {
	tuples := int(500_000 * h.cfg.Scale)
	if tuples < 1000 {
		tuples = 1000
	}
	notes := []string{fmt.Sprintf("D = 8, T = %s tuples (paper: 500,000), C_i = T/i, CountingSort", fmtCount(int64(tuples)))}
	fig21 := &Result{ID: "fig21", Title: "Skew vs construction time",
		Header: []string{"Z", "BUC", "BU-BST", "CURE", "CURE+"}, Notes: notes}
	fig22 := &Result{ID: "fig22", Title: "Skew vs storage space",
		Header: []string{"Z", "BUC", "BU-BST", "CURE", "CURE+"}, Notes: notes}
	for _, z := range []float64{0, 0.4, 0.8, 1.2, 1.6, 2.0} {
		ft, hier, err := gen.Synthetic(gen.SyntheticSpec{Dims: 8, Tuples: tuples, Zipf: z, Seed: h.cfg.Seed})
		if err != nil {
			return nil, err
		}
		dir := filepath.Join(h.cfg.WorkDir, fmt.Sprintf("skew%.1f", z))
		zs := fmt.Sprintf("%.1f", z)
		timeCells := []string{zs}
		sizeCells := []string{zs}
		st, err := buc.Build(ft, hier, stdSpecs(), buc.Options{Dir: filepath.Join(dir, "buc")})
		if err != nil {
			return nil, err
		}
		timeCells = append(timeCells, fmtDur(st.Elapsed.Seconds()))
		sizeCells = append(sizeCells, fmtBytes(st.Bytes))
		bs, err := bubst.Build(ft, hier, stdSpecs(), bubst.Options{Dir: filepath.Join(dir, "bubst")})
		if err != nil {
			return nil, err
		}
		timeCells = append(timeCells, fmtDur(bs.Elapsed.Seconds()))
		sizeCells = append(sizeCells, fmtBytes(bs.Bytes))
		cs, err := h.buildCURE(filepath.Join(dir, "cure"), ft, hier, nil)
		if err != nil {
			return nil, err
		}
		timeCells = append(timeCells, fmtDur(cs.Elapsed.Seconds()))
		sizeCells = append(sizeCells, fmtBytes(cs.Sizes.Total()))
		cps, err := h.buildCURE(filepath.Join(dir, "cureplus"), ft, hier, func(o *core.Options) { o.Plus = true })
		if err != nil {
			return nil, err
		}
		timeCells = append(timeCells, fmtDur(cps.Elapsed.Seconds()))
		sizeCells = append(sizeCells, fmtBytes(cps.Sizes.Total()))
		fig21.AddRow(timeCells...)
		fig22.AddRow(sizeCells...)
	}
	return map[string]*Result{"fig21": fig21, "fig22": fig22}, nil
}
