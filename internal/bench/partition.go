package bench

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"math/rand"

	"cure/internal/core"
	"cure/internal/hierarchy"
	"cure/internal/obsv"
	"cure/internal/partition"
	"cure/internal/relation"
)

// runPartitionThroughput times the partitioning phase in isolation — the
// 2R1W pass that splits R into sound partitions while hash-building the
// in-memory node N. Arms: the legacy row-at-a-time scan (one pread and
// one buffered write per tuple, the pre-pipeline implementation kept
// here as the baseline), then the batched scan pipeline at 1, 4, and 8
// workers, then a batch-size ablation at 8 workers. Every pipeline arm's
// node N must be byte-identical to the 1-worker run, and its group count
// must match the legacy scan's.
func (h *Harness) runPartitionThroughput() (map[string]*Result, error) {
	tuples := int(50_000_000 * h.cfg.Scale)
	if tuples < 50_000 {
		tuples = 50_000
	}
	ft, hier, err := partitionFact(tuples, h.cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	specs := stdSpecs()
	dir := filepath.Join(h.cfg.WorkDir, "partition_throughput")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	factPath := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(factPath, ft); err != nil {
		return nil, err
	}
	rBytes := int64(tuples) * int64(ft.Schema.RowWidth())
	ft = nil // release ~32MB before the timed arms; every run reads the file
	// Ask for 8 partitions; N gets the whole budget (it is tiny here —
	// dimension 0 is flat, so N projects it out entirely).
	choice, err := partition.SelectLevel(hier.Dims[0], rBytes, (rBytes+7)/8, rBytes)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "partition-throughput",
		Title:  "Partitioning phase: batched parallel scan vs row-at-a-time",
		Header: []string{"arm", "workers", "batch rows", "time", "throughput", "speedup", "N groups", "N identical"},
		Notes: []string{
			fmt.Sprintf("synthetic D=4 (A hierarchical 8192→512→32), %s tuples (%s), %d partitions on A@%d; speedup vs the rowwise scan",
				fmtCount(int64(tuples)), fmtBytes(rBytes), choice.NumPartitions, choice.Level),
			"best of 5 runs per arm; N identical = node N byte-equal to the 1-worker pipeline run; on a single-core host the worker sweep is bounded by the disk, the rowwise/batched gap by syscall count",
		},
	}

	// Each arm is timed as the best of timingReps runs — a single-core
	// host shares its one CPU with GC and writeback, so single-shot
	// timings swing by 2×; the minimum is the arm's real cost.
	const timingReps = 5
	best := func(run func() error) (float64, error) {
		bestSec := 0.0
		for r := 0; r < timingReps; r++ {
			runtime.GC()
			start := time.Now()
			if err := run(); err != nil {
				return 0, err
			}
			if sec := time.Since(start).Seconds(); r == 0 || sec < bestSec {
				bestSec = sec
			}
		}
		return bestSec, nil
	}

	root := h.reg.StartSpan("partition")
	var rowGroups int
	rowSec, err := best(func() error {
		var rerr error
		rowGroups, rerr = rowwisePartition(factPath, filepath.Join(dir, "rowwise"), hier, specs, choice)
		return rerr
	})
	if err != nil {
		root.End()
		return nil, err
	}
	res.AddRow("rowwise", "1", "-", fmtDur(rowSec), fmtRate(rBytes, rowSec), "1.00x", fmtCount(int64(rowGroups)), "-")

	var refN *relation.FactTable
	arms := []struct {
		workers, batch int
	}{{1, 0}, {4, 0}, {8, 0}, {8, 256}, {8, 4096}}
	for _, arm := range arms {
		outDir := filepath.Join(dir, fmt.Sprintf("scan_w%d_b%d", arm.workers, arm.batch))
		sp := root.Child("throughput")
		var pres *partition.Result
		sec, err := best(func() error {
			var rerr error
			pres, rerr = partition.PartitionScan(factPath, outDir, hier, specs, choice, partition.ScanConfig{
				Parallelism: arm.workers,
				BatchRows:   arm.batch,
				Reg:         h.reg,
				Span:        sp,
			})
			return rerr
		})
		sp.End()
		if err != nil {
			root.End()
			return nil, err
		}
		identical := "yes"
		if refN == nil {
			refN = pres.N
		} else if !tablesByteEqual(refN, pres.N) {
			identical = "NO"
		}
		if pres.N.Len() != rowGroups {
			identical = "NO (group count)"
		}
		batch := "default"
		if arm.batch > 0 {
			batch = fmt.Sprintf("%d", arm.batch)
		}
		res.AddRow("batched scan", fmt.Sprintf("%d", arm.workers), batch,
			fmtDur(sec), fmtRate(rBytes, sec), fmt.Sprintf("%.2fx", rowSec/sec),
			fmtCount(int64(pres.N.Len())), identical)
	}
	root.End()

	// One full out-of-core build rides along (single run): it exercises
	// the scan inside core.Build — budget forces ~8 partitions — so the
	// build/partition.split(/scan) and partition.cube phases reach the
	// regression baseline alongside the isolated pass timings.
	buildStart := time.Now()
	_, err = core.Build(core.Options{
		Dir:          filepath.Join(dir, "cube"),
		FactPath:     factPath,
		Hier:         hier,
		AggSpecs:     specs,
		MemoryBudget: rBytes / 8,
		Parallelism:  8,
		Compression:  h.cfg.Compression,
		Metrics:      h.reg,
	})
	if err != nil {
		return nil, err
	}
	buildSec := time.Since(buildStart).Seconds()
	res.AddRow("out-of-core build", "8", "default", fmtDur(buildSec), fmtRate(rBytes, buildSec), "-", "-", "-")
	for path, sec := range obsv.PhaseTotals(h.reg.TakeSpans()) {
		h.phases[path] += sec
	}
	return map[string]*Result{"partition-throughput": res}, nil
}

// partitionFact generates the throughput dataset: a hierarchical first
// dimension (8192 → 512 → 32) for partition-level selection, modest
// cardinalities elsewhere so node N stays small (the experiment measures
// the scan path, not hash growth), and integer measures so N is exactly
// reproducible at any worker count.
func partitionFact(tuples int, seed int64) (*relation.FactTable, *hierarchy.Schema, error) {
	m01 := hierarchy.BuildContiguousMap(8192, 512)
	m02 := hierarchy.ComposeMaps(m01, hierarchy.BuildContiguousMap(512, 32))
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1", "A2"}, []int32{8192, 512, 32}, [][]int32{m01, m02})
	if err != nil {
		return nil, nil, err
	}
	hier, err := hierarchy.NewSchema(a,
		hierarchy.NewFlatDim("B", 64), hierarchy.NewFlatDim("C", 8), hierarchy.NewFlatDim("D", 8))
	if err != nil {
		return nil, nil, err
	}
	schema := &relation.Schema{DimNames: []string{"A", "B", "C", "D"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, tuples)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < tuples; i++ {
		ft.Append(
			[]int32{int32(rng.Intn(8192)), int32(rng.Intn(64)), int32(rng.Intn(8)), int32(rng.Intn(8))},
			[]float64{float64(rng.Intn(100))},
		)
	}
	return ft, hier, nil
}

// rowwisePartition is the legacy partitioner: one ReadRaw per tuple, one
// buffered write per tuple, node N folded through a string-keyed
// aggregator map. It exists only as the bench baseline the pipeline is
// measured against.
func rowwisePartition(factPath, outDir string, hier *hierarchy.Schema, specs []relation.AggSpec, choice partition.LevelChoice) (groups int, err error) {
	fr, err := relation.OpenFactReader(factPath)
	if err != nil {
		return 0, err
	}
	defer fr.Close()
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return 0, err
	}
	writers := make([]*relation.FactWriter, choice.NumPartitions)
	defer func() {
		for _, w := range writers {
			if w != nil {
				w.Close()
			}
		}
	}()
	for i := range writers {
		writers[i], err = relation.NewFactWriter(filepath.Join(outDir, fmt.Sprintf("part_%04d.bin", i)), fr.Schema(), true)
		if err != nil {
			return 0, err
		}
	}
	dim0 := hier.Dims[0]
	numDims := fr.Schema().NumDims()
	buf := make([]byte, fr.RowWidth())
	dims := make([]int32, numDims)
	meas := make([]float64, fr.Schema().NumMeasures())
	key := make([]byte, 4*numDims)
	node := map[string]*relation.Aggregator{}
	for i := int64(0); i < fr.Rows(); i++ {
		if err := fr.ReadRaw(i, buf); err != nil {
			return 0, err
		}
		fr.DecodeRow(buf, dims, meas)
		rowid := i
		if fr.HasRowIDs() {
			rowid = fr.RowIDOf(buf)
		}
		p := int(dim0.MapCode(dims[0], choice.Level)) % choice.NumPartitions
		if err := writers[p].WriteWithRowID(dims, meas, rowid); err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint32(key[0:], uint32(dim0.MapCode(dims[0], choice.Level+1)))
		for d := 1; d < numDims; d++ {
			binary.LittleEndian.PutUint32(key[4*d:], uint32(dims[d]))
		}
		g, ok := node[string(key)]
		if !ok {
			g = relation.NewAggregator(specs)
			node[string(key)] = g
		}
		g.AddValues(meas)
	}
	for i, w := range writers {
		if cerr := w.Close(); cerr != nil {
			return 0, cerr
		}
		writers[i] = nil
	}
	return len(node), nil
}

// tablesByteEqual reports exact equality of two fact tables — columns,
// order, and row-ids.
func tablesByteEqual(a, b *relation.FactTable) bool {
	return reflect.DeepEqual(a.Dims, b.Dims) &&
		reflect.DeepEqual(a.Measures, b.Measures) &&
		reflect.DeepEqual(a.RowIDs, b.RowIDs)
}

// fmtRate renders bytes/sec.
func fmtRate(bytes int64, sec float64) string {
	if sec <= 0 {
		return "-"
	}
	return fmtBytes(int64(float64(bytes)/sec)) + "/s"
}
