package bench

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"time"

	"cure/internal/core"
	"cure/internal/gen"
	"cure/internal/lattice"
	"cure/internal/obsv"
	"cure/internal/query"
)

// throughputZoneBlockRows is the zone-map granularity of the
// query-throughput cube: finer than the storage default so the
// scaled-down bench datasets still have multi-block extents to prune.
const throughputZoneBlockRows = 64

// tpOp is one pre-generated operation of the mixed workload.
type tpOp struct {
	kind  int // 0 = point slice, 1 = range selection, 2 = roll-up scan
	node  lattice.NodeID
	level int
	lo    int32
	hi    int32
}

// runThroughput measures concurrent query serving: a mixed workload
// (~40% point slices, ~30% range selections, ~30% roll-up scans) driven
// by C ∈ {1, 4, 16} concurrent clients over one shared engine, with and
// without zone-map indexes on the same store, plus an uncompressed-twin
// ablation arm when the configured format is compressed. Reported per
// arm: QPS, latency percentiles from the query.latency_us histogram,
// the cumulative zone-map block counters, physical scan MB/s, and
// cube_bytes_on_disk. Every arm must return the same row volume — the
// cross-format equivalence check rides along with the timing.
func (h *Harness) runThroughput() (map[string]*Result, error) {
	density := h.cfg.APBDensities[0]
	ft, hier, err := gen.APB(density, h.cfg.Seed)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(h.cfg.WorkDir, "throughput")
	stats, err := h.buildCURE(dir, ft, hier, func(o *core.Options) {
		o.ZoneBlockRows = throughputZoneBlockRows
	})
	if err != nil {
		return nil, err
	}
	// Whenever the configured format is compressed, build an uncompressed
	// twin of the same cube for the -compress=none ablation arm: same
	// data, same zone maps, fixed-width v1 extents.
	nocompDir := ""
	var nocompBytes int64
	if h.cfg.Compression != "none" && !h.cfg.NoIndex {
		nocompDir = filepath.Join(h.cfg.WorkDir, "throughput_nocompress")
		ns, err := h.buildCURE(nocompDir, ft, hier, func(o *core.Options) {
			o.ZoneBlockRows = throughputZoneBlockRows
			o.Compression = "none"
		})
		if err != nil {
			return nil, err
		}
		nocompBytes = ns.Sizes.Total()
	}

	// Pre-generate the workload once; every arm replays the same ops.
	enum := lattice.NewEnum(hier)
	var coarse []lattice.NodeID
	for _, id := range enum.AllNodes() {
		arity := 0
		for d, l := range enum.Decode(id, nil) {
			if !hier.Dims[d].IsAll(l) {
				arity++
			}
		}
		if arity <= 2 {
			coarse = append(coarse, id)
		}
	}
	prod := hier.Dims[0]
	rng := rand.New(rand.NewSource(h.cfg.Seed + 41))
	mkLevels := func(l0 int) []int {
		levels := make([]int, hier.NumDims())
		for d := range levels {
			levels[d] = hier.Dims[d].AllLevel()
		}
		levels[0] = l0
		levels[2] = 0
		return levels
	}
	ops := make([]tpOp, h.cfg.Queries)
	for i := range ops {
		switch r := rng.Float64(); {
		case r < 0.4:
			// Point slice on the Product hierarchy.
			l := 1 + rng.Intn(2)
			ops[i] = tpOp{kind: 0, node: enum.Encode(mkLevels(l)), level: l}
			code := int32(rng.Intn(int(prod.Card(l))))
			ops[i].lo, ops[i].hi = code, code
		case r < 0.7:
			// Range selection at a coarser Product level.
			const famLevel = 3
			card := int(prod.Card(famLevel))
			lo := rng.Intn(card)
			hi := lo + card/8
			if hi >= card {
				hi = card - 1
			}
			ops[i] = tpOp{kind: 1, node: enum.Encode(mkLevels(1)), level: famLevel, lo: int32(lo), hi: int32(hi)}
		default:
			// Roll-up: full scan of a coarse node.
			ops[i] = tpOp{kind: 2, node: coarse[rng.Intn(len(coarse))]}
		}
	}

	res := &Result{
		ID:     "query-throughput",
		Title:  "Concurrent query serving: QPS and latency, zone maps vs full scans",
		Header: []string{"index", "clients", "QPS", "p50", "p90", "p99", "blocks skipped", "rows", "scan MB/s", "cube_bytes_on_disk"},
		Notes: []string{
			fmt.Sprintf("APB-1 density %.3g (%s tuples); %d mixed ops per arm (40%% point slice / 30%% range / 30%% roll-up), shared engine, full fact cache", density, fmtCount(int64(ft.Len())), len(ops)),
			fmt.Sprintf("storage format %q; scan MB/s counts physical extent bytes read per second", h.cfg.Compression),
		},
	}
	// Arm families: zone maps and full scans over the configured format,
	// plus (when compressed) zone maps over the uncompressed twin.
	type armSpec struct {
		label   string
		dir     string
		noIndex bool
		suffix  string
		cubeB   int64
	}
	arms := []armSpec{
		{label: "zone maps", dir: dir, cubeB: stats.Sizes.Total()},
		{label: "no index", dir: dir, noIndex: true, suffix: ".noindex", cubeB: stats.Sizes.Total()},
	}
	if h.cfg.NoIndex {
		arms = arms[1:2]
	} else if nocompDir != "" {
		arms = append(arms, armSpec{label: "no compress", dir: nocompDir, suffix: ".nocompress", cubeB: nocompBytes})
	}
	var wantRows int64 = -1
	for _, arm := range arms {
		for _, c := range []int{1, 4, 16} {
			reg := obsv.NewRegistry()
			tracker := obsv.NewQueryTracker(reg, 64)
			eng, err := query.Open(arm.dir, query.Options{
				CacheFraction: 1, PinAggregates: true, Metrics: reg, Queries: tracker, NoIndex: arm.noIndex,
			})
			if err != nil {
				return nil, err
			}
			var rows atomic.Int64
			start := time.Now()
			err = query.ForEach(c, len(ops), func(i int) error {
				op := ops[i]
				count := func(query.Row) error { rows.Add(1); return nil }
				switch op.kind {
				case 0:
					return eng.SliceQuery(op.node, 0, op.level, op.lo, count)
				case 1:
					return eng.NodeQueryWhere(op.node, []query.Predicate{{Dim: 0, Level: op.level, Lo: op.lo, Hi: op.hi}}, count)
				default:
					return eng.NodeQuery(op.node, count)
				}
			})
			wall := time.Since(start).Seconds()
			eng.Close()
			if err != nil {
				return nil, err
			}
			// Every arm must return the same result volume — a cheap
			// equivalence check riding along with the timing.
			if wantRows < 0 {
				wantRows = rows.Load()
			} else if rows.Load() != wantRows {
				return nil, fmt.Errorf("bench: throughput arms disagree: %d rows vs %d", rows.Load(), wantRows)
			}
			snap := reg.Snapshot()
			var lat *obsv.HistogramSnapshot
			for i := range snap.Histograms {
				if snap.Histograms[i].Name == "query.latency_us" {
					lat = &snap.Histograms[i]
				}
			}
			if lat == nil || lat.Count == 0 {
				return nil, fmt.Errorf("bench: throughput arm recorded no query latencies")
			}
			// Per-query tracking rides along on every arm: after the run
			// nothing may remain in-flight and the recent ring must hold
			// completed records — a cheap liveness check on the tracker
			// under C-way concurrency.
			if n := len(tracker.Inflight()); n != 0 {
				return nil, fmt.Errorf("bench: %d queries still in-flight after throughput arm", n)
			}
			if len(tracker.Recent()) == 0 {
				return nil, fmt.Errorf("bench: throughput arm recorded no completed queries")
			}
			phase := fmt.Sprintf("query/throughput.c%d%s", c, arm.suffix)
			h.phases[phase] += wall
			res.AddRow(arm.label, fmt.Sprintf("%d", c),
				fmtCount(int64(float64(len(ops))/wall)),
				fmtDur(float64(lat.P50)/1e6), fmtDur(float64(lat.P90)/1e6), fmtDur(float64(lat.P99)/1e6),
				fmtCount(snap.Counters["query.index.blocks_skipped"]),
				fmtCount(snap.Counters["query.rows"]),
				fmt.Sprintf("%.1f", float64(snap.Counters["query.bytes_read"])/wall/1e6),
				fmt.Sprintf("%d", arm.cubeB))
		}
	}
	return map[string]*Result{"query-throughput": res}, nil
}
