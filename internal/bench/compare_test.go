package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeResults(t *testing.T, name string, results []*Result, asArray bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	var parts []string
	for _, r := range results {
		parts = append(parts, r.JSON())
	}
	content := strings.Join(parts, "\n")
	if asArray {
		content = "[" + strings.Join(parts, ",") + "]"
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchResult(id string, phases map[string]float64) *Result {
	return &Result{ID: id, Title: id, Header: []string{"x"}, Phases: phases}
}

func TestLoadResultsBothForms(t *testing.T) {
	results := []*Result{
		benchResult("fig14", map[string]float64{"build": 1.5, "build/load": 0.2}),
		benchResult("table1", nil),
	}
	for _, asArray := range []bool{false, true} {
		path := writeResults(t, "r.json", results, asArray)
		got, err := LoadResults(path)
		if err != nil {
			t.Fatalf("asArray=%v: %v", asArray, err)
		}
		if len(got) != 2 || got[0].ID != "fig14" || got[1].ID != "table1" {
			t.Fatalf("asArray=%v: got %+v", asArray, got)
		}
		if got[0].Phases["build"] != 1.5 {
			t.Fatalf("phases lost: %+v", got[0].Phases)
		}
	}
	if _, err := LoadResults(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"title":"no id"}`), 0o644)
	if _, err := LoadResults(bad); err == nil {
		t.Fatal("result without id did not error")
	}
}

func TestCompareRunsFlagsRegressions(t *testing.T) {
	base := []*Result{
		benchResult("fig14", map[string]float64{
			"build":                 1.0,
			"build/partition.split": 0.50,
			"build/load":            0.001, // below the noise floor: never flagged
			"gone":                  1.0,   // absent from current: skipped
		}),
		benchResult("fig23", map[string]float64{"build": 2.0}),
	}
	cur := []*Result{
		benchResult("fig14", map[string]float64{
			"build":                 1.15, // +15%: under the gate
			"build/partition.split": 0.90, // +80%: flagged
			"build/load":            1.0,  // huge ratio but noise-floored base
			"new-phase":             5.0,  // absent from baseline: skipped
		}),
		benchResult("fig23", map[string]float64{"build": 2.5}), // +25%: flagged
		benchResult("not-in-baseline", map[string]float64{"build": 9}),
	}
	regs := CompareRuns(base, cur, 0.20)
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want 2", regs)
	}
	if regs[0].ID != "fig14" || regs[0].Phase != "build/partition.split" {
		t.Fatalf("regs[0] = %+v", regs[0])
	}
	if regs[1].ID != "fig23" || regs[1].Phase != "build" || regs[1].Ratio != 1.25 {
		t.Fatalf("regs[1] = %+v", regs[1])
	}

	// Default threshold kicks in at ≤ 0; +15% passes, +25% does not.
	if got := CompareRuns(base, cur, 0); len(got) != 2 {
		t.Fatalf("default threshold: %+v", got)
	}
	// A looser gate lets everything through.
	if got := CompareRuns(base, cur, 1.0); len(got) != 0 {
		t.Fatalf("100%% threshold: %+v", got)
	}

	report := CompareReport(regs, 0.20)
	if !strings.Contains(report, "2 phase(s)") || !strings.Contains(report, "build/partition.split") {
		t.Fatalf("report = %q", report)
	}
	if clear := CompareReport(nil, 0.20); !strings.Contains(clear, "no per-phase regressions") {
		t.Fatalf("all-clear report = %q", clear)
	}
}

func TestCompareRunsIdenticalRunsClean(t *testing.T) {
	run := []*Result{benchResult("fig14", map[string]float64{"build": 1.0, "build/cube": 0.7})}
	if regs := CompareRuns(run, run, 0.20); len(regs) != 0 {
		t.Fatalf("identical runs flagged: %+v", regs)
	}
}
