package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Bench-regression gate: `cubebench -format json` output is a sequence
// of Result objects; LoadResults reads such a file (or a JSON array of
// the same objects) back, and CompareRuns flags per-phase wall-time
// regressions between two runs. The committed BENCH_baseline.json seeds
// the trajectory; CI re-runs the same experiments and compares in
// report-only mode (wall times are hardware-dependent, so the gate's
// exit code is opt-in via cubebench -regress-fail).

// LoadResults parses one or more Result JSON documents from path.
func LoadResults(path string) ([]*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeResults(f)
}

// DecodeResults parses a stream of Result objects (concatenated, as
// `cubebench -format json` prints them) or JSON arrays of them.
func DecodeResults(r io.Reader) ([]*Result, error) {
	dec := json.NewDecoder(r)
	var out []*Result
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("bench: parsing results: %w", err)
		}
		trimmed := bytes.TrimSpace(raw)
		if len(trimmed) > 0 && trimmed[0] == '[' {
			var arr []*Result
			if err := json.Unmarshal(trimmed, &arr); err != nil {
				return nil, fmt.Errorf("bench: parsing results: %w", err)
			}
			out = append(out, arr...)
			continue
		}
		var res Result
		if err := json.Unmarshal(trimmed, &res); err != nil {
			return nil, fmt.Errorf("bench: parsing results: %w", err)
		}
		out = append(out, &res)
	}
	for _, res := range out {
		if res.ID == "" {
			return nil, fmt.Errorf("bench: result without an id in results file")
		}
	}
	return out, nil
}

// Regression is one flagged per-phase wall-time increase.
type Regression struct {
	// ID is the experiment the phase belongs to.
	ID string
	// Phase is the span path ("build/partition.split").
	Phase string
	// Base and Cur are the wall times (seconds) in the two runs.
	Base, Cur float64
	// Ratio is Cur/Base.
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.3fs -> %.3fs (%.0f%%)", r.ID, r.Phase, r.Base, r.Cur, (r.Ratio-1)*100)
}

// minComparableSec filters noise: phases faster than this in the
// baseline are too short for a ratio to mean anything.
const minComparableSec = 0.01

// CompareRuns flags every phase whose wall time grew by more than
// threshold (a fraction; ≤ 0 defaults to 0.20, the >20% gate) between
// the baseline and current runs. Results are matched by experiment ID
// and phases by span path; phases present in only one run, and phases
// below 10ms in the baseline, are skipped. The returned slice is sorted
// by ID then phase.
func CompareRuns(base, cur []*Result, threshold float64) []Regression {
	if threshold <= 0 {
		threshold = 0.20
	}
	baseByID := map[string]*Result{}
	for _, r := range base {
		baseByID[r.ID] = r
	}
	var out []Regression
	for _, c := range cur {
		b, ok := baseByID[c.ID]
		if !ok {
			continue
		}
		for phase, curSec := range c.Phases {
			baseSec, ok := b.Phases[phase]
			if !ok || baseSec < minComparableSec {
				continue
			}
			ratio := curSec / baseSec
			if ratio > 1+threshold {
				out = append(out, Regression{ID: c.ID, Phase: phase, Base: baseSec, Cur: curSec, Ratio: ratio})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// CompareReport renders regressions as a human-readable block, or an
// all-clear line when there are none.
func CompareReport(regs []Regression, threshold float64) string {
	if threshold <= 0 {
		threshold = 0.20
	}
	if len(regs) == 0 {
		return fmt.Sprintf("bench-compare: no per-phase regressions above %.0f%%", threshold*100)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "bench-compare: %d phase(s) regressed more than %.0f%%:\n", len(regs), threshold*100)
	for _, r := range regs {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return strings.TrimRight(b.String(), "\n")
}
