package bench

import (
	"fmt"
	"path/filepath"

	"cure/internal/core"
	"cure/internal/gen"
	"cure/internal/query"
)

// runParallel regenerates the segment-parallel scaling curve: the same
// in-memory synthetic build at increasing worker counts, every parallel
// cube equivalence-checked against the sequential one via node queries.
// On a single-core host the speedup column hovers around 1× — which is
// the honest measurement; the equivalence column must read yes
// regardless of hardware.
func (h *Harness) runParallel() (map[string]*Result, error) {
	tuples := int(500_000 * h.cfg.Scale)
	if tuples < 1000 {
		tuples = 1000
	}
	ft, hier, err := gen.Synthetic(gen.SyntheticSpec{Dims: 8, Tuples: tuples, Zipf: 1.0, Seed: h.cfg.Seed})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "parallel-speedup",
		Title:  "Segment-parallel in-memory build: worker scaling",
		Header: []string{"workers", "build", "speedup", "equivalent"},
		Notes: []string{fmt.Sprintf("synthetic D=8, %s tuples, zipf 1.0; equivalent = node-query equality vs 1 worker",
			fmtCount(int64(tuples)))},
	}
	var refDir string
	var refSec float64
	for _, p := range []int{1, 2, 4, 8} {
		dir := filepath.Join(h.cfg.WorkDir, fmt.Sprintf("parallel_%dw", p))
		stats, err := h.buildCURE(dir, ft, hier, func(o *core.Options) { o.Parallelism = p })
		if err != nil {
			return nil, err
		}
		sec := stats.Elapsed.Seconds()
		equivalent := "-"
		if p == 1 {
			refDir, refSec = dir, sec
		} else {
			same, err := cubesEquivalent(refDir, dir)
			if err != nil {
				return nil, err
			}
			equivalent = "yes"
			if !same {
				equivalent = "NO"
			}
		}
		res.AddRow(fmt.Sprintf("%d", p), fmtDur(sec), fmt.Sprintf("%.2fx", refSec/sec), equivalent)
	}
	return map[string]*Result{"parallel-speedup": res}, nil
}

// cubesEquivalent reports whether two cubes answer every node query
// identically.
func cubesEquivalent(dirA, dirB string) (bool, error) {
	a, err := query.OpenDefault(dirA)
	if err != nil {
		return false, err
	}
	defer a.Close()
	b, err := query.OpenDefault(dirB)
	if err != nil {
		return false, err
	}
	defer b.Close()
	rep, err := query.Diff(a, b)
	if err != nil {
		return false, err
	}
	return rep.Equal(), nil
}
