// Package bench regenerates every table and figure of the paper's
// evaluation (§7). Each experiment builds its datasets with internal/gen,
// runs the methods under comparison (BUC, BU-BST, and the CURE variants),
// and reports the same rows/series the paper plots. Dataset sizes are
// scaled down by default so the whole suite runs on a laptop; the scale
// is recorded in each result so shapes — who wins, by what factor, where
// crossovers fall — can be compared against the paper's absolute-scale
// graphs.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"cure/internal/obsv"
)

// Config controls experiment scale.
type Config struct {
	// Scale multiplies dataset sizes relative to the paper (1 = paper
	// scale). The default 0.02 keeps the full suite in the minutes
	// range.
	Scale float64
	// APBDensities are the APB-1 density factors for Figures 23–24
	// (paper: 0.4, 4, 40). The defaults are 100× smaller.
	APBDensities []float64
	// MemoryBudget (bytes) is CURE's memory budget for the APB builds;
	// it decides which densities run out-of-core.
	MemoryBudget int64
	// Queries is the node-query workload size (paper: 1,000).
	Queries int
	// WorkDir is scratch space; a temp dir is created when empty.
	WorkDir string
	// Seed makes every dataset and workload deterministic.
	Seed int64
	// MaxDims bounds the dimensionality sweep of Figures 19–20
	// (paper: 28). BUC is always stopped at 12 — without trivial-tuple
	// pruning its complete-cube output grows as 2^D.
	MaxDims int
	// Parallelism is passed to every CURE build the harness runs (0/1 =
	// sequential, the paper's setting). The parallel-speedup experiment
	// sweeps its own worker counts regardless.
	Parallelism int
	// NoIndex restricts the query-throughput experiment to its full-scan
	// arms (the zone-map ablation); by default both arms run.
	NoIndex bool
	// Compression is the extent storage format for every CURE build the
	// harness runs ("auto" = compressed columnar blocks, the default;
	// "none" = fixed-width v1). query-throughput additionally runs an
	// uncompressed ablation arm whenever compression is on.
	Compression string
	// Metrics, when set, is the registry the harness instruments its
	// builds with (so a caller can dump cumulative counters afterwards);
	// by default the harness creates a private one. Either way the
	// per-phase wall times surface in each Result's Phases.
	Metrics *obsv.Registry
}

// DefaultConfig returns the laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Scale:        0.02,
		APBDensities: []float64{0.004, 0.04, 0.4},
		MemoryBudget: 32 << 20,
		Queries:      1000,
		Seed:         1,
		MaxDims:      16,
		Compression:  "auto",
	}
}

// Result is one regenerated table or figure.
type Result struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
	// Phases holds the per-phase wall times (seconds, summed over every
	// build the experiment group ran), keyed by span path, e.g.
	// "build/cube" or "build/partition.split".
	Phases map[string]float64 `json:"phases,omitempty"`
}

// JSON renders the result as an indented JSON object.
func (r *Result) JSON() string {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"id":%q,"error":%q}`, r.ID, err.Error())
	}
	return string(data)
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Harness runs experiments, caching shared builds within a process (the
// three real-dataset figures share one set of cubes, and so on).
type Harness struct {
	cfg     Config
	tempDir string
	cache   map[string]map[string]*Result // group → id → result
	// reg instruments every build the harness runs; phases accumulates
	// the span totals of the current experiment group.
	reg    *obsv.Registry
	phases map[string]float64
}

// New creates a harness; zero-value Config fields fall back to defaults.
func New(cfg Config) (*Harness, error) {
	def := DefaultConfig()
	if cfg.Scale <= 0 {
		cfg.Scale = def.Scale
	}
	if len(cfg.APBDensities) == 0 {
		cfg.APBDensities = def.APBDensities
	}
	if cfg.MemoryBudget <= 0 {
		cfg.MemoryBudget = def.MemoryBudget
	}
	if cfg.Queries <= 0 {
		cfg.Queries = def.Queries
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.MaxDims <= 0 {
		cfg.MaxDims = def.MaxDims
	}
	if cfg.Compression == "" {
		cfg.Compression = def.Compression
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	h := &Harness{
		cfg:    cfg,
		cache:  map[string]map[string]*Result{},
		reg:    reg,
		phases: map[string]float64{},
	}
	if cfg.WorkDir == "" {
		dir, err := os.MkdirTemp("", "curebench")
		if err != nil {
			return nil, err
		}
		h.tempDir = dir
		h.cfg.WorkDir = dir
	}
	return h, nil
}

// Close removes scratch space the harness created.
func (h *Harness) Close() {
	if h.tempDir != "" {
		os.RemoveAll(h.tempDir)
	}
}

// experiment maps an id to its group runner. A group computes several
// figures in one pass (they share builds).
type experiment struct {
	group string
	title string
	run   func(h *Harness) (map[string]*Result, error)
}

func (h *Harness) experiments() map[string]experiment {
	return map[string]experiment{
		"table1":               {"table1", "Partitioning feasibility (Table 1)", (*Harness).runTable1},
		"fig14":                {"real", "Real datasets: construction time", (*Harness).runReal},
		"fig15":                {"real", "Real datasets: storage space", (*Harness).runReal},
		"fig16":                {"real", "Real datasets: average query response time", (*Harness).runReal},
		"fig17":                {"real", "Effect of caching on average QRT", (*Harness).runReal},
		"fig18":                {"pool", "Signature-pool size vs cube size", (*Harness).runPool},
		"fig19":                {"dims", "Dimensionality vs construction time", (*Harness).runDims},
		"fig20":                {"dims", "Dimensionality vs storage space", (*Harness).runDims},
		"fig21":                {"skew", "Skew vs construction time", (*Harness).runSkew},
		"fig22":                {"skew", "Skew vs storage space", (*Harness).runSkew},
		"fig23":                {"apb", "APB-1: construction time", (*Harness).runAPB},
		"fig24":                {"apb", "APB-1: storage space", (*Harness).runAPB},
		"fig25":                {"apbq", "APB-1: average QRT by result size", (*Harness).runAPBQuery},
		"fig26":                {"flathier", "Flat vs hierarchical: construction time", (*Harness).runFlatHier},
		"fig27":                {"flathier", "Flat vs hierarchical: storage space", (*Harness).runFlatHier},
		"fig28":                {"flathier", "Flat vs hierarchical: roll-up/drill-down QRT", (*Harness).runFlatHier},
		"iceberg":              {"iceberg", "Iceberg count queries (§7 closing remark)", (*Harness).runIceberg},
		"update":               {"update", "Incremental maintenance vs full rebuild (§8)", (*Harness).runUpdate},
		"ablation-sort":        {"ablation-sort", "CountingSort vs QuickSort under skew", (*Harness).runSortAblation},
		"parallel-speedup":     {"parallel", "Segment-parallel build: worker scaling", (*Harness).runParallel},
		"ablation-height":      {"ablation-height", "Tallest plan (P3) vs shortest plan (P2)", (*Harness).runHeightAblation},
		"ablation-plan":        {"ablation-plan", "Shared hierarchical plan vs independent sub-cubes", (*Harness).runPlanAblation},
		"query-throughput":     {"throughput", "Concurrent query serving: QPS/latency, zone maps vs full scans", (*Harness).runThroughput},
		"partition-throughput": {"partition", "Partitioning phase: batched parallel scan vs row-at-a-time", (*Harness).runPartitionThroughput},
		"finalize-throughput":  {"finalize", "Finalize pipeline: parallel fused compression + zone maps", (*Harness).runFinalizeThroughput},
	}
}

// IDs lists all experiment ids in a stable order.
func (h *Harness) IDs() []string {
	exps := h.experiments()
	ids := make([]string, 0, len(exps))
	for id := range exps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes (or retrieves from cache) the experiment with the given id.
func (h *Harness) Run(id string) (*Result, error) {
	exp, ok := h.experiments()[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(h.IDs(), ", "))
	}
	if group, ok := h.cache[exp.group]; ok {
		if res, ok := group[id]; ok {
			return res, nil
		}
	}
	h.phases = map[string]float64{}
	results, err := exp.run(h)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", id, err)
	}
	if len(h.phases) > 0 {
		// The group's builds share one phase breakdown; attach it to every
		// result the group produced.
		for _, res := range results {
			res.Phases = h.phases
		}
	}
	h.cache[exp.group] = results
	res, ok := results[id]
	if !ok {
		return nil, fmt.Errorf("bench: group %s did not produce %s", exp.group, id)
	}
	return res, nil
}

// RunAll executes every experiment and returns the results in id order.
func (h *Harness) RunAll() ([]*Result, error) {
	var out []*Result
	for _, id := range h.IDs() {
		res, err := h.Run(id)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Formatting helpers shared by the experiment files.

func fmtDur(sec float64) string {
	switch {
	case sec < 0.001:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.1fms", sec*1e3)
	case sec < 120:
		return fmt.Sprintf("%.2fs", sec)
	default:
		return fmt.Sprintf("%.1fmin", sec/60)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	}
}

func fmtCount(n int64) string {
	s := fmt.Sprintf("%d", n)
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 && c != '-' {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}

// Markdown renders the result as a GitHub-flavored markdown table,
// used to generate EXPERIMENTS.md.
func (r *Result) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	b.WriteString("| " + strings.Join(r.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(r.Header)) + "\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
