package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps the whole suite in the seconds range for CI.
func tinyConfig() Config {
	return Config{
		Scale:        0.002,
		APBDensities: []float64{0.0005, 0.002},
		MemoryBudget: 1 << 20,
		Queries:      40,
		Seed:         1,
		MaxDims:      12,
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{ID: "x", Title: "demo", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	r.AddRow("1", "2")
	s := r.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q in:\n%s", want, s)
		}
	}
}

func TestFormattingHelpers(t *testing.T) {
	if got := fmtDur(0.0000005); got != "1µs" && got != "0µs" {
		t.Errorf("fmtDur micro = %q", got)
	}
	if got := fmtDur(0.5); got != "500.0ms" {
		t.Errorf("fmtDur ms = %q", got)
	}
	if got := fmtDur(2.5); got != "2.50s" {
		t.Errorf("fmtDur s = %q", got)
	}
	if got := fmtDur(300); got != "5.0min" {
		t.Errorf("fmtDur min = %q", got)
	}
	if got := fmtBytes(512); got != "512B" {
		t.Errorf("fmtBytes B = %q", got)
	}
	if got := fmtBytes(1536); got != "1.5KB" {
		t.Errorf("fmtBytes KB = %q", got)
	}
	if got := fmtBytes(3 << 20); got != "3.0MB" {
		t.Errorf("fmtBytes MB = %q", got)
	}
	if got := fmtBytes(3 << 30); got != "3.00GB" {
		t.Errorf("fmtBytes GB = %q", got)
	}
	if got := fmtCount(1234567); got != "1,234,567" {
		t.Errorf("fmtCount = %q", got)
	}
	if got := fmtCount(12); got != "12" {
		t.Errorf("fmtCount small = %q", got)
	}
}

func TestUnknownExperiment(t *testing.T) {
	h, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Run("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable1(t *testing.T) {
	h, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	res, err := h.Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper's Table 1: L = economic_strength (level 2) at 10 GB, brand
	// (level 1) at 100 GB and 1 TB.
	if res.Rows[0][1] != "economic_strength" || res.Rows[1][1] != "brand" || res.Rows[2][1] != "brand" {
		t.Errorf("levels = %v %v %v", res.Rows[0][1], res.Rows[1][1], res.Rows[2][1])
	}
	if res.Rows[0][2] != "10" || res.Rows[1][2] != "100" || res.Rows[2][2] != "1,000" {
		t.Errorf("partition counts = %v %v %v", res.Rows[0][2], res.Rows[1][2], res.Rows[2][2])
	}
}

func TestRealGroupAndCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiments in -short mode")
	}
	h, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	start := time.Now()
	f14, err := h.Run("fig14")
	if err != nil {
		t.Fatal(err)
	}
	firstRun := time.Since(start)
	if len(f14.Rows) != 2 {
		t.Fatalf("fig14 rows = %d", len(f14.Rows))
	}
	// The group is cached: fig15–17 must come back instantly.
	start = time.Now()
	for _, id := range []string{"fig15", "fig16", "fig17"} {
		res, err := h.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s has no rows", id)
		}
	}
	if cached := time.Since(start); cached > firstRun && cached > time.Second {
		t.Errorf("cached group reruns took %v (first run %v)", cached, firstRun)
	}
}

func TestSynthAndExtraGroups(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiments in -short mode")
	}
	h, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for _, tc := range []struct {
		id      string
		minRows int
	}{
		{"fig19", 2}, // D = 8, 12 at MaxDims = 12
		{"fig21", 6}, // Z = 0 … 2 in steps of 0.4
		{"ablation-sort", 3},
	} {
		res, err := h.Run(tc.id)
		if err != nil {
			t.Fatalf("%s: %v", tc.id, err)
		}
		if len(res.Rows) < tc.minRows {
			t.Errorf("%s rows = %d, want ≥ %d", tc.id, len(res.Rows), tc.minRows)
		}
	}
}

func TestAPBGroups(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiments in -short mode")
	}
	h, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	f23, err := h.Run("fig23")
	if err != nil {
		t.Fatal(err)
	}
	if len(f23.Rows) != 2 {
		t.Fatalf("fig23 rows = %d", len(f23.Rows))
	}
	// The second density (0.002 → ~24.8K tuples ≈ 694KB) exceeds half
	// the 1 MiB budget, so it must run out-of-core.
	if !strings.Contains(f23.Rows[1][2], "out-of-core") {
		t.Errorf("high density did not partition: %v", f23.Rows[1])
	}
	f25, err := h.Run("fig25")
	if err != nil {
		t.Fatal(err)
	}
	if len(f25.Rows) != 10 {
		t.Errorf("fig25 rows = %d, want 10 deciles", len(f25.Rows))
	}
	for _, id := range []string{"fig26", "fig27", "fig28", "iceberg"} {
		res, err := h.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s has no rows", id)
		}
	}
}

func TestPlanAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiments in -short mode")
	}
	h, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	res, err := h.Run("ablation-plan")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// 6·2·3·1 = 36 independent runs.
	if res.Rows[1][1] != "36" {
		t.Errorf("combo count = %v", res.Rows[1][1])
	}
}

func TestUpdateAndHeightExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiments in -short mode")
	}
	h, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	upd, err := h.Run("update")
	if err != nil {
		t.Fatal(err)
	}
	if len(upd.Rows) != 3 {
		t.Fatalf("update rows = %d", len(upd.Rows))
	}
	for _, row := range upd.Rows {
		if row[3] != "yes" {
			t.Fatalf("merge diverged from rebuild: %v", row)
		}
	}
	hgt, err := h.Run("ablation-height")
	if err != nil {
		t.Fatal(err)
	}
	if len(hgt.Rows) != 2 {
		t.Fatalf("height rows = %d", len(hgt.Rows))
	}
}

func TestQueryThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiments in -short mode")
	}
	cfg := tinyConfig()
	cfg.Queries = 30
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	res, err := h.Run("query-throughput")
	if err != nil {
		t.Fatal(err)
	}
	// Three arms (zone maps / no index / no compress) × three client
	// counts: the default format is compressed, so the uncompressed twin
	// rides along as an ablation.
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[7] != res.Rows[0][7] {
			t.Errorf("arm %d returned %s rows, arm 0 returned %s", i, row[7], res.Rows[0][7])
		}
	}
	// The indexed arms must actually skip blocks; the full-scan arms none.
	if res.Rows[0][6] == "0" {
		t.Error("zone-map arm skipped no blocks")
	}
	if res.Rows[3][6] != "0" {
		t.Errorf("no-index arm skipped %s blocks", res.Rows[3][6])
	}
	// The compressed cube must be smaller than its uncompressed twin
	// (column 9 is cube_bytes_on_disk; rows 0 and 6 are the zone-map and
	// no-compress arms at C=1).
	compB, err1 := strconv.ParseInt(res.Rows[0][9], 10, 64)
	rawB, err2 := strconv.ParseInt(res.Rows[6][9], 10, 64)
	if err1 != nil || err2 != nil || compB <= 0 || rawB <= compB {
		t.Errorf("cube_bytes_on_disk: compressed %s, uncompressed %s", res.Rows[0][9], res.Rows[6][9])
	}
	if res.Rows[6][0] != "no compress" {
		t.Errorf("arm 6 = %q, want the no-compress ablation", res.Rows[6][0])
	}
	// Per-arm wall times surface as phases for the regression gate.
	found := 0
	for path := range res.Phases {
		if strings.HasPrefix(path, "query/throughput.c") {
			found++
		}
	}
	if found != 9 {
		t.Errorf("phase entries = %d, want 9", found)
	}

	// The NoIndex config restricts the experiment to its ablation arms.
	cfg.NoIndex = true
	h2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	res2, err := h2.Run("query-throughput")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 3 {
		t.Fatalf("ablation rows = %d, want 3", len(res2.Rows))
	}
	for _, row := range res2.Rows {
		if row[0] != "no index" {
			t.Errorf("ablation arm = %q", row[0])
		}
	}
}

func TestMarkdownRendering(t *testing.T) {
	r := &Result{ID: "x", Title: "demo", Header: []string{"a", "b"}, Notes: []string{"n"}}
	r.AddRow("1", "2")
	md := r.Markdown()
	for _, want := range []string{"### x — demo", "| a | b |", "| 1 | 2 |", "*n*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q in:\n%s", want, md)
		}
	}
}
