package bench

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"cure/internal/core"
	"cure/internal/gen"
	"cure/internal/obsv"
	"cure/internal/storage"
)

// runFinalizeThroughput times the finalize extent pipeline in isolation:
// the APB-1 hierarchical cube (CURE+, middle density) is built with the
// construction phase held sequential while FinalizeParallelism sweeps
// P ∈ {1, 2, 8} over exact ("auto") codec selection, plus a sampled-
// selection arm at P=8. Every "auto" arm's extent files and manifest
// must be byte-identical to the P=1 run — the pipeline's ordered commit
// is the whole point — and the sampled arm reports its misprediction
// rate instead (its codec picks may legitimately differ).
func (h *Harness) runFinalizeThroughput() (map[string]*Result, error) {
	density := h.cfg.APBDensities[len(h.cfg.APBDensities)/2]
	factPath := filepath.Join(h.cfg.WorkDir, fmt.Sprintf("apb_%g.bin", density))
	if _, err := fileSize(factPath); err != nil {
		if _, _, err := gen.APBToFile(factPath, density, h.cfg.Seed); err != nil {
			return nil, err
		}
	}
	tuples := gen.APBTuples(density)

	res := &Result{
		ID:     "finalize-throughput",
		Title:  "Finalize pipeline: parallel fused compression + zone maps",
		Header: []string{"arm", "P", "finalize", "compress+zones", "speedup", "reread", "identical", "mispredicts"},
		Notes: []string{
			fmt.Sprintf("APB-1 CURE+ cube at density %g (%s tuples); construction held sequential, FinalizeParallelism sweeps the extent pipeline", density, fmtCount(int64(tuples))),
			"best of 3 builds per arm; identical = nt/tt/cat/agg/ttbm.bin and manifest byte-equal to the auto P=1 run; sampled arms may pick different codecs, so they report mispredicts instead",
		},
	}

	arms := []struct {
		mode string
		par  int
	}{
		{storage.CompressionAuto, 1},
		{storage.CompressionAuto, 2},
		{storage.CompressionAuto, 8},
		{storage.CompressionSampled, 8},
	}

	const reps = 3
	var refDir string
	var baseSec float64
	for _, arm := range arms {
		dir := filepath.Join(h.cfg.WorkDir, fmt.Sprintf("finalize_%s_p%d", arm.mode, arm.par))
		var best *storage.FinalizeStats
		for r := 0; r < reps; r++ {
			if err := os.RemoveAll(dir); err != nil {
				return nil, err
			}
			if _, err := core.Build(core.Options{
				Dir:                 dir,
				FactPath:            factPath,
				Hier:                gen.APBSchema(),
				AggSpecs:            stdSpecs(),
				Plus:                true,
				Compression:         arm.mode,
				Parallelism:         1,
				FinalizeParallelism: arm.par,
				Metrics:             h.reg,
			}); err != nil {
				return nil, err
			}
			for path, sec := range obsv.PhaseTotals(h.reg.TakeSpans()) {
				h.phases[path] += sec
			}
			st, err := storage.ReadFinalizeStats(dir)
			if err != nil {
				return nil, err
			}
			if best == nil || finalizeSec(st) < finalizeSec(best) {
				best = st
			}
		}
		finSec := finalizeSec(best)
		identical := "-"
		if arm.mode == storage.CompressionAuto {
			if refDir == "" {
				refDir, baseSec = dir, finSec
				identical = "ref"
			} else if same, err := cubesByteEqual(refDir, dir); err != nil {
				return nil, err
			} else if same {
				identical = "yes"
			} else {
				identical = "NO"
			}
		}
		speedup := "-"
		if baseSec > 0 {
			speedup = fmt.Sprintf("%.2fx", baseSec/finSec)
		}
		mispred := "-"
		if best.SampledBlocks+best.Mispredicts > 0 {
			mispred = fmt.Sprintf("%d/%d", best.Mispredicts, best.SampledBlocks+best.Mispredicts)
		}
		res.AddRow(arm.mode, fmt.Sprintf("%d", arm.par),
			fmtDur(finSec), fmtDur(best.CompressSec+best.ZonesSec),
			speedup, fmtBytes(best.RereadBytes), identical, mispred)
	}
	return map[string]*Result{"finalize-throughput": res}, nil
}

// finalizeSec is the total finalize wall clock a sidecar records.
func finalizeSec(st *storage.FinalizeStats) float64 {
	return st.CompactSec + st.CompressSec + st.ZonesSec + st.CommitSec
}

// cubesByteEqual reports whether two cube directories hold byte-equal
// extent files and manifests (the finalize sidecar is excluded — it
// records wall-clock timings).
func cubesByteEqual(a, b string) (bool, error) {
	for _, name := range []string{
		storage.NTFile, storage.TTFile, storage.CATFile,
		storage.AggFile, storage.BitmapFile, storage.ManifestFile,
	} {
		da, errA := os.ReadFile(filepath.Join(a, name))
		db, errB := os.ReadFile(filepath.Join(b, name))
		if os.IsNotExist(errA) && os.IsNotExist(errB) {
			continue
		}
		if errA != nil {
			return false, errA
		}
		if errB != nil {
			return false, errB
		}
		if !bytes.Equal(da, db) {
			return false, nil
		}
	}
	return true, nil
}
