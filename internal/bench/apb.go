package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"cure/internal/core"
	"cure/internal/gen"
	"cure/internal/lattice"
	"cure/internal/obsv"
	"cure/internal/query"
)

// apbVariants are the CURE variants of Figures 23–25.
var apbVariants = []struct {
	label string
	mod   func(*core.Options)
}{
	{"CURE", func(o *core.Options) {}},
	{"CURE+", func(o *core.Options) { o.Plus = true }},
	{"CURE_DR", func(o *core.Options) { o.DimsInline = true }},
	{"CURE_DR+", func(o *core.Options) { o.DimsInline = true; o.Plus = true }},
}

// buildAPBVariant streams an APB fact table at the given density (cached
// per density in the work dir) and builds one variant over it.
func (h *Harness) buildAPBVariant(density float64, label string, mod func(*core.Options)) (*core.BuildStats, string, error) {
	factPath := filepath.Join(h.cfg.WorkDir, fmt.Sprintf("apb_%g.bin", density))
	if _, err := fileSize(factPath); err != nil {
		if _, _, err := gen.APBToFile(factPath, density, h.cfg.Seed); err != nil {
			return nil, "", err
		}
	}
	dir := filepath.Join(h.cfg.WorkDir, fmt.Sprintf("apb_%g_%s", density, label))
	opts := core.Options{
		Dir:          dir,
		FactPath:     factPath,
		Hier:         gen.APBSchema(),
		AggSpecs:     stdSpecs(),
		MemoryBudget: h.cfg.MemoryBudget,
		Metrics:      h.reg,
	}
	mod(&opts)
	stats, err := core.Build(opts)
	for path, sec := range obsv.PhaseTotals(h.reg.TakeSpans()) {
		h.phases[path] += sec
	}
	return stats, dir, err
}

// runAPB regenerates Figures 23–24: construction time and storage space
// of the four CURE variants across APB-1 densities, including the
// out-of-core path whenever the fact table exceeds the memory budget.
func (h *Harness) runAPB() (map[string]*Result, error) {
	notes := []string{
		fmt.Sprintf("APB-1 densities %v (paper: 0.4, 4, 40); memory budget %s", h.cfg.APBDensities, fmtBytes(h.cfg.MemoryBudget)),
	}
	fig23 := &Result{ID: "fig23", Title: "APB-1: construction time",
		Header: []string{"density", "tuples", "mode", "CURE", "CURE+", "CURE_DR", "CURE_DR+"}, Notes: notes}
	fig24 := &Result{ID: "fig24", Title: "APB-1: storage space",
		Header: []string{"density", "tuples", "fact size", "CURE", "CURE+", "CURE_DR", "CURE_DR+"}, Notes: notes}
	for _, density := range h.cfg.APBDensities {
		tuples := gen.APBTuples(density)
		timeCells := []string{fmt.Sprintf("%g", density), fmtCount(int64(tuples)), ""}
		sizeCells := []string{fmt.Sprintf("%g", density), fmtCount(int64(tuples)), fmtBytes(int64(tuples) * 28)}
		for _, v := range apbVariants {
			stats, _, err := h.buildAPBVariant(density, v.label, v.mod)
			if err != nil {
				return nil, err
			}
			if stats.Partitioned {
				timeCells[2] = fmt.Sprintf("out-of-core (L=%d, %d parts)", stats.PartitionLevel, stats.NumPartitions)
			} else if timeCells[2] == "" {
				timeCells[2] = "in-memory"
			}
			timeCells = append(timeCells, fmtDur(stats.Elapsed.Seconds()))
			sizeCells = append(sizeCells, fmtBytes(stats.Sizes.Total()))
		}
		fig23.AddRow(timeCells...)
		fig24.AddRow(sizeCells...)
	}
	return map[string]*Result{"fig23": fig23, "fig24": fig24}, nil
}

// runAPBQuery regenerates Figure 25: the 168 node queries of the APB-1
// cube at the middle density, ordered by result size and split into ten
// equal sets; average QRT per set for each CURE variant.
func (h *Harness) runAPBQuery() (map[string]*Result, error) {
	density := h.cfg.APBDensities[len(h.cfg.APBDensities)/2]
	fig25 := &Result{ID: "fig25", Title: "APB-1: average QRT by result-size decile",
		Header: []string{"set", "max result", "CURE", "CURE+", "CURE_DR", "CURE_DR+"},
		Notes: []string{
			fmt.Sprintf("all 168 node queries at density %g, ordered by result size, ten sets", density),
		}}
	type built struct {
		label string
		dir   string
	}
	var cubes []built
	for _, v := range apbVariants {
		_, dir, err := h.buildAPBVariant(density, v.label, v.mod)
		if err != nil {
			return nil, err
		}
		cubes = append(cubes, built{v.label, dir})
	}
	// Order the 168 nodes by result size using the first cube's counts.
	eng, err := query.OpenDefault(cubes[0].dir)
	if err != nil {
		return nil, err
	}
	enum := eng.Enum()
	type nodeSize struct {
		id   lattice.NodeID
		size int64
	}
	var nodes []nodeSize
	for _, id := range enum.AllNodes() {
		n, err := eng.NodeCount(id)
		if err != nil {
			eng.Close()
			return nil, err
		}
		nodes = append(nodes, nodeSize{id, n})
	}
	eng.Close()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].size < nodes[j].size })
	const sets = 10
	per := (len(nodes) + sets - 1) / sets

	// Time each set on each cube.
	avg := make([][]float64, sets)
	for i := range avg {
		avg[i] = make([]float64, len(cubes))
	}
	for ci, c := range cubes {
		e, err := query.OpenDefault(c.dir)
		if err != nil {
			return nil, err
		}
		for si := 0; si < sets; si++ {
			lo, hi := si*per, (si+1)*per
			if hi > len(nodes) {
				hi = len(nodes)
			}
			start := time.Now()
			for _, ns := range nodes[lo:hi] {
				if err := e.NodeQuery(ns.id, func(query.Row) error { return nil }); err != nil {
					e.Close()
					return nil, err
				}
			}
			avg[si][ci] = time.Since(start).Seconds() / float64(hi-lo)
		}
		e.Close()
	}
	for si := 0; si < sets; si++ {
		hi := (si + 1) * per
		if hi > len(nodes) {
			hi = len(nodes)
		}
		cells := []string{fmt.Sprintf("%d", si+1), fmtCount(nodes[hi-1].size)}
		for ci := range cubes {
			cells = append(cells, fmtDur(avg[si][ci]))
		}
		fig25.AddRow(cells...)
	}
	return map[string]*Result{"fig25": fig25}, nil
}

// fileSize returns the size of a file or an error if it does not exist.
func fileSize(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
