package bench

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"time"

	"cure/internal/bubst"
	"cure/internal/buc"
	"cure/internal/core"
	"cure/internal/gen"
	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/partition"
	"cure/internal/query"
	"cure/internal/relation"
	"cure/internal/update"
)

// runTable1 regenerates Table 1: the partition-level selection arithmetic
// for the SALES example (Product: barcode 10,000 → brand 1,000 →
// economic_strength 10; M = 1 GB) at |R| = 10 GB, 100 GB, and 1 TB.
func (h *Harness) runTable1() (map[string]*Result, error) {
	const gb = int64(1) << 30
	m1 := hierarchy.BuildContiguousMap(10000, 1000)
	m2 := hierarchy.ComposeMaps(m1, hierarchy.BuildContiguousMap(1000, 10))
	product, err := hierarchy.NewLinearDim("Product",
		[]string{"barcode", "brand", "economic_strength"},
		[]int32{10000, 1000, 10}, [][]int32{m1, m2})
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "table1", Title: "CURE's partitioning efficiency (SALES, M = 1 GB)",
		Header: []string{"|R|", "L", "# partitions", "partition size", "|A0|/|A(L+1)|", "|N|"}}
	for _, r := range []struct {
		label string
		bytes int64
	}{
		{"10 GB", 10 * gb}, {"100 GB", 100 * gb}, {"1 TB", 1000 * gb},
	} {
		c, err := partition.SelectLevel(product, r.bytes, gb, gb)
		if err != nil {
			return nil, err
		}
		res.AddRow(r.label,
			product.LevelName(c.Level),
			fmtCount(int64(c.NumPartitions)),
			fmtBytes(c.PartitionBytes),
			fmt.Sprintf("%.0f", c.Ratio),
			fmtBytes(c.NBytes))
	}
	return map[string]*Result{"table1": res}, nil
}

// runIceberg regenerates §7's closing observation: count iceberg queries
// (HAVING count(*) > min_count) over a CURE cube skip trivial tuples
// wholesale, while the other formats must scan and filter everything.
func (h *Harness) runIceberg() (map[string]*Result, error) {
	ft, hier, err := gen.CovTypeLike(h.cfg.Scale, h.cfg.Seed)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(h.cfg.WorkDir, "iceberg")
	res := &Result{ID: "iceberg", Title: "Iceberg count queries (HAVING count(*) > min_count)",
		Header: []string{"min_count", "BUC scan+filter", "BU-BST scan+filter", "CURE iceberg"},
		Notes: []string{
			fmt.Sprintf("CovType-like at scale %.3g; average over all %d flat nodes", h.cfg.Scale, 1<<hier.NumDims()),
		}}
	if _, err := buc.Build(ft, hier, stdSpecs(), buc.Options{Dir: filepath.Join(dir, "buc")}); err != nil {
		return nil, err
	}
	if _, err := bubst.Build(ft, hier, stdSpecs(), bubst.Options{Dir: filepath.Join(dir, "bubst")}); err != nil {
		return nil, err
	}
	if _, err := h.buildCURE(filepath.Join(dir, "cure"), ft, hier, nil); err != nil {
		return nil, err
	}
	enum := lattice.NewEnum(hier)
	nodes := enum.AllNodes()

	be, err := buc.Open(filepath.Join(dir, "buc"))
	if err != nil {
		return nil, err
	}
	defer be.Close()
	se, err := bubst.Open(filepath.Join(dir, "bubst"))
	if err != nil {
		return nil, err
	}
	defer se.Close()
	ce, err := query.OpenDefault(filepath.Join(dir, "cure"))
	if err != nil {
		return nil, err
	}
	defer ce.Close()

	for _, minCount := range []float64{2, 10, 100} {
		filterScan := func(q flatQuerier) (float64, error) {
			start := time.Now()
			for _, id := range nodes {
				if err := q.Query(id, func(_ []int32, aggrs []float64) error {
					_ = aggrs[1] > minCount
					return nil
				}); err != nil {
					return 0, err
				}
			}
			return time.Since(start).Seconds() / float64(len(nodes)), nil
		}
		bucAvg, err := filterScan(bucQuerier{be})
		if err != nil {
			return nil, err
		}
		bubstAvg, err := filterScan(bubstQuerier{se})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, id := range nodes {
			if err := ce.IcebergQuery(id, 1, minCount, func(query.Row) error { return nil }); err != nil {
				return nil, err
			}
		}
		cureAvg := time.Since(start).Seconds() / float64(len(nodes))
		res.AddRow(fmt.Sprintf("%.0f", minCount), fmtDur(bucAvg), fmtDur(bubstAvg), fmtDur(cureAvg))
	}
	return map[string]*Result{"iceberg": res}, nil
}

// runSortAblation isolates the CountingSort-vs-QuickSort design choice
// the paper credits for BUC-based methods surviving high skew.
func (h *Harness) runSortAblation() (map[string]*Result, error) {
	tuples := int(500_000 * h.cfg.Scale)
	if tuples < 1000 {
		tuples = 1000
	}
	res := &Result{ID: "ablation-sort", Title: "CURE construction: CountingSort vs QuickSort",
		Header: []string{"Z", "CountingSort", "QuickSort"},
		Notes:  []string{fmt.Sprintf("D = 8, T = %s", fmtCount(int64(tuples)))}}
	for _, z := range []float64{0, 1, 2} {
		ft, hier, err := gen.Synthetic(gen.SyntheticSpec{Dims: 8, Tuples: tuples, Zipf: z, Seed: h.cfg.Seed})
		if err != nil {
			return nil, err
		}
		cs, err := h.buildCURE(filepath.Join(h.cfg.WorkDir, fmt.Sprintf("abl_cnt_%.0f", z)), ft, hier, nil)
		if err != nil {
			return nil, err
		}
		qs, err := h.buildCURE(filepath.Join(h.cfg.WorkDir, fmt.Sprintf("abl_qck_%.0f", z)), ft, hier,
			func(o *core.Options) { o.ForceQuickSort = true })
		if err != nil {
			return nil, err
		}
		res.AddRow(fmt.Sprintf("%.0f", z), fmtDur(cs.Elapsed.Seconds()), fmtDur(qs.Elapsed.Seconds()))
	}
	return map[string]*Result{"ablation-sort": res}, nil
}

// runPlanAblation quantifies §3's argument against building each
// level-combination sub-cube independently: one shared hierarchical CURE
// plan versus one flat FCURE run per combination of hierarchy levels.
func (h *Harness) runPlanAblation() (map[string]*Result, error) {
	density := h.cfg.APBDensities[0]
	ft, hier, err := gen.APB(density, h.cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "ablation-plan", Title: "Shared hierarchical plan vs independent sub-cube runs",
		Header: []string{"strategy", "runs", "total time"},
		Notes:  []string{fmt.Sprintf("APB-1 density %g (%s tuples)", density, fmtCount(int64(ft.Len())))}}

	stats, err := h.buildCURE(filepath.Join(h.cfg.WorkDir, "plan_cure"), ft, hier, nil)
	if err != nil {
		return nil, err
	}
	res.AddRow("CURE (one shared plan)", "1", fmtDur(stats.Elapsed.Seconds()))

	// Strawman: one flat cubing run per combination of real hierarchy
	// levels, each over the table mapped to those levels.
	combos := levelCombos(hier)
	start := time.Now()
	for i, combo := range combos {
		mapped, flatHier, err := mapToLevels(ft, hier, combo)
		if err != nil {
			return nil, err
		}
		if _, err := buc.Build(mapped, flatHier, stdSpecs(), buc.Options{
			Dir: filepath.Join(h.cfg.WorkDir, fmt.Sprintf("plan_combo%d", i)),
		}); err != nil {
			return nil, err
		}
	}
	res.AddRow("independent sub-cubes", fmt.Sprintf("%d", len(combos)), fmtDur(time.Since(start).Seconds()))
	return map[string]*Result{"ablation-plan": res}, nil
}

// levelCombos enumerates every combination of one real level per
// dimension.
func levelCombos(hier *hierarchy.Schema) [][]int {
	combos := [][]int{{}}
	for _, d := range hier.Dims {
		var next [][]int
		for _, c := range combos {
			for l := 0; l < d.AllLevel(); l++ {
				nc := append(append([]int{}, c...), l)
				next = append(next, nc)
			}
		}
		combos = next
	}
	return combos
}

// mapToLevels projects a fact table onto one level per dimension,
// producing the input of one independent sub-cube run.
func mapToLevels(ft *relation.FactTable, hier *hierarchy.Schema, levels []int) (*relation.FactTable, *hierarchy.Schema, error) {
	dims := make([]*hierarchy.Dim, hier.NumDims())
	names := make([]string, hier.NumDims())
	for d, dim := range hier.Dims {
		names[d] = fmt.Sprintf("%s@%s", dim.Name, dim.LevelName(levels[d]))
		dims[d] = hierarchy.NewFlatDim(names[d], dim.Card(levels[d]))
	}
	flat, err := hierarchy.NewSchema(dims...)
	if err != nil {
		return nil, nil, err
	}
	schema := &relation.Schema{DimNames: names, MeasureNames: ft.Schema.MeasureNames}
	out := relation.NewFactTable(schema, ft.Len())
	row := make([]int32, hier.NumDims())
	meas := make([]float64, len(ft.Measures))
	for r := 0; r < ft.Len(); r++ {
		for d, dim := range hier.Dims {
			row[d] = dim.MapCode(ft.Dims[d][r], levels[d])
		}
		meas = ft.MeasureRow(r, meas)
		out.Append(row, meas)
	}
	return out, flat, nil
}

// runHeightAblation isolates §3.1's core argument: the tallest BUC-style
// plan (P3) pushes expensive sorts to coarse granularities where they are
// shared by whole pipelines, so it must beat the shortest plan (P2),
// which re-sorts fine-grained data for every level combination.
func (h *Harness) runHeightAblation() (map[string]*Result, error) {
	density := h.cfg.APBDensities[0]
	ft, hier, err := gen.APB(density, h.cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "ablation-height", Title: "Hierarchical plan height: tallest (P3) vs shortest (P2)",
		Header: []string{"plan", "construction", "cube size"},
		Notes:  []string{fmt.Sprintf("APB-1 density %g (%s tuples); identical cubes, different traversals", density, fmtCount(int64(ft.Len())))}}
	tall, err := h.buildCURE(filepath.Join(h.cfg.WorkDir, "height_p3"), ft, hier, nil)
	if err != nil {
		return nil, err
	}
	res.AddRow("P3 (tallest, CURE)", fmtDur(tall.Elapsed.Seconds()), fmtBytes(tall.Sizes.Total()))
	short, err := h.buildCURE(filepath.Join(h.cfg.WorkDir, "height_p2"), ft, hier, func(o *core.Options) { o.ShortPlan = true })
	if err != nil {
		return nil, err
	}
	res.AddRow("P2 (shortest)", fmtDur(short.Elapsed.Seconds()), fmtBytes(short.Sizes.Total()))
	return map[string]*Result{"ablation-height": res}, nil
}

// runUpdate evaluates the §8 future-work implementation: merging delta
// batches into an existing cube versus rebuilding it from scratch, across
// delta sizes.
func (h *Harness) runUpdate() (map[string]*Result, error) {
	density := h.cfg.APBDensities[0]
	base, hier, err := gen.APB(density, h.cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "update", Title: "Incremental maintenance vs full rebuild",
		Header: []string{"delta rows", "merge (update.Apply)", "full rebuild", "merged = rebuilt"},
		Notes: []string{
			fmt.Sprintf("base: APB-1 density %g (%s tuples)", density, fmtCount(int64(base.Len()))),
			"the merge is O(cube) while a rebuild is O(T·plan): on sparse cubes (cube >> fact table) rebuilds win;",
			"the merge's value is independence from T (no fact re-scan) and keeping the old cube queryable until swap",
		}}
	rng := rand.New(rand.NewSource(h.cfg.Seed + 7))
	newDelta := func(n int) *relation.FactTable {
		d := relation.NewFactTable(base.Schema, n)
		dims := make([]int32, hier.NumDims())
		for i := 0; i < n; i++ {
			for di, dim := range hier.Dims {
				dims[di] = rng.Int31n(dim.Card(0))
			}
			unit := float64(1 + rng.Intn(9))
			d.Append(dims, []float64{unit, unit * float64(1+rng.Intn(50))})
		}
		return d
	}
	for _, frac := range []float64{0.01, 0.05, 0.2} {
		n := int(float64(base.Len()) * frac)
		if n < 1 {
			n = 1
		}
		delta := newDelta(n)
		oldDir := filepath.Join(h.cfg.WorkDir, fmt.Sprintf("upd_base_%g", frac))
		if _, err := h.buildCURE(oldDir, base, hier, nil); err != nil {
			return nil, err
		}
		newDir := filepath.Join(h.cfg.WorkDir, fmt.Sprintf("upd_new_%g", frac))
		us, err := update.Apply(update.Options{OldDir: oldDir, NewDir: newDir, Delta: delta})
		if err != nil {
			return nil, err
		}
		// Full rebuild over base ∪ delta.
		combined := relation.NewFactTable(base.Schema, base.Len()+delta.Len())
		dims := make([]int32, hier.NumDims())
		meas := make([]float64, base.Schema.NumMeasures())
		for _, tbl := range []*relation.FactTable{base, delta} {
			for r := 0; r < tbl.Len(); r++ {
				dims = tbl.DimRow(r, dims)
				meas = tbl.MeasureRow(r, meas)
				combined.Append(dims, meas)
			}
		}
		refDir := filepath.Join(h.cfg.WorkDir, fmt.Sprintf("upd_ref_%g", frac))
		rs, err := h.buildCURE(refDir, combined, hier, nil)
		if err != nil {
			return nil, err
		}
		// Equivalence check via Diff.
		a, err := query.OpenDefault(newDir)
		if err != nil {
			return nil, err
		}
		b, err := query.OpenDefault(refDir)
		if err != nil {
			a.Close()
			return nil, err
		}
		rep, err := query.Diff(a, b)
		a.Close()
		b.Close()
		if err != nil {
			return nil, err
		}
		equal := "yes"
		if !rep.Equal() {
			equal = fmt.Sprintf("NO (%d diffs)", len(rep.Differences))
		}
		res.AddRow(fmtCount(int64(n)), fmtDur(us.Elapsed.Seconds()), fmtDur(rs.Elapsed.Seconds()), equal)
	}
	return map[string]*Result{"update": res}, nil
}
