package bench

import (
	"fmt"
	"path/filepath"
	"time"

	"cure/internal/bubst"
	"cure/internal/buc"
	"cure/internal/core"
	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/obsv"
	"cure/internal/query"
	"cure/internal/relation"
)

// stdSpecs is the aggregate set used by the comparative experiments: one
// SUM and one COUNT, like the paper's measures.
func stdSpecs() []relation.AggSpec {
	return []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}}
}

// flatQuerier is the uniform node-query surface over the three cube
// formats, used to time workloads.
type flatQuerier interface {
	Query(id lattice.NodeID, fn func(dims []int32, aggrs []float64) error) error
	Close() error
}

type bucQuerier struct{ e *buc.Engine }

func (q bucQuerier) Query(id lattice.NodeID, fn func([]int32, []float64) error) error {
	return q.e.NodeQuery(id, func(row buc.Row) error { return fn(row.Dims, row.Aggrs) })
}
func (q bucQuerier) Close() error { return q.e.Close() }

type bubstQuerier struct{ e *bubst.Engine }

func (q bubstQuerier) Query(id lattice.NodeID, fn func([]int32, []float64) error) error {
	return q.e.NodeQuery(id, func(row bubst.Row) error { return fn(row.Dims, row.Aggrs) })
}
func (q bubstQuerier) Close() error { return q.e.Close() }

type cureQuerier struct{ e *query.Engine }

func (q cureQuerier) Query(id lattice.NodeID, fn func([]int32, []float64) error) error {
	return q.e.NodeQuery(id, func(row query.Row) error { return fn(row.Dims, row.Aggrs) })
}
func (q cureQuerier) Close() error { return q.e.Close() }

// buildCURE writes the table to disk (once per dir) and runs a CURE
// variant over it, recording per-phase wall times into the harness
// registry (they surface as the Phases of the group's results).
func (h *Harness) buildCURE(dir string, ft *relation.FactTable, hier *hierarchy.Schema, mod func(*core.Options)) (*core.BuildStats, error) {
	opts := core.Options{
		Dir: dir, Hier: hier, AggSpecs: stdSpecs(), Metrics: h.reg,
		Parallelism: h.cfg.Parallelism, Compression: h.cfg.Compression,
	}
	if mod != nil {
		mod(&opts)
	}
	stats, err := core.BuildFromTable(ft, opts)
	for path, sec := range obsv.PhaseTotals(h.reg.TakeSpans()) {
		h.phases[path] += sec
	}
	return stats, err
}

// timeWorkload measures the average per-query wall time of a node-query
// workload, returning (avg seconds, total rows visited).
func timeWorkload(q flatQuerier, workload []lattice.NodeID) (float64, int64, error) {
	var rows int64
	start := time.Now()
	for _, id := range workload {
		if err := q.Query(id, func([]int32, []float64) error {
			rows++
			return nil
		}); err != nil {
			return 0, 0, err
		}
	}
	return time.Since(start).Seconds() / float64(len(workload)), rows, nil
}

// mergeAggs folds one already-aggregated tuple into dst under the given
// specs (COUNT values add, SUM adds, MIN/MAX compare). first marks the
// first contribution to dst.
func mergeAggs(dst, src []float64, specs []relation.AggSpec, first bool) {
	for i, s := range specs {
		switch s.Func {
		case relation.AggSum, relation.AggCount:
			if first {
				dst[i] = src[i]
			} else {
				dst[i] += src[i]
			}
		case relation.AggMin:
			if first || src[i] < dst[i] {
				dst[i] = src[i]
			}
		case relation.AggMax:
			if first || src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// hierOverFlat answers a hierarchical node query against a flat cube: it
// queries the flat node grouping the same dimensions at base level, maps
// every base code to the requested hierarchy level, and re-aggregates on
// the fly — exactly the work the paper argues flat cubes force on
// roll-up/drill-down operations (Figure 28).
func hierOverFlat(q flatQuerier, flatEnum *lattice.Enum, hier *hierarchy.Schema, levels []int, specs []relation.AggSpec) (int64, error) {
	active := make([]int, 0, len(levels))
	flatLevels := make([]int, len(levels))
	for d, l := range levels {
		if hier.Dims[d].IsAll(l) {
			flatLevels[d] = 1
		} else {
			flatLevels[d] = 0
			active = append(active, d)
		}
	}
	flatID := flatEnum.Encode(flatLevels)
	groups := map[string][]float64{}
	var keyBuf []byte
	err := q.Query(flatID, func(dims []int32, aggrs []float64) error {
		keyBuf = keyBuf[:0]
		for i, d := range active {
			code := hier.Dims[d].MapCode(dims[i], levels[d])
			keyBuf = append(keyBuf, byte(code), byte(code>>8), byte(code>>16), byte(code>>24))
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = make([]float64, len(specs))
			mergeAggs(g, aggrs, specs, true)
			groups[string(keyBuf)] = g
			return nil
		}
		mergeAggs(g, aggrs, specs, false)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return int64(len(groups)), nil
}

// writeFact persists a generated table under the work dir and returns its
// path.
func writeFact(workDir, name string, ft *relation.FactTable) (string, error) {
	path := filepath.Join(workDir, name)
	if err := relation.WriteFactFile(path, ft); err != nil {
		return "", fmt.Errorf("bench: writing %s: %w", name, err)
	}
	return path, nil
}
