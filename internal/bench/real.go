package bench

import (
	"fmt"
	"path/filepath"

	"cure/internal/bubst"
	"cure/internal/buc"
	"cure/internal/core"
	"cure/internal/gen"
	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/query"
	"cure/internal/relation"
)

// realDataset bundles one generated surrogate dataset.
type realDataset struct {
	name string
	ft   *relation.FactTable
	hier *hierarchy.Schema
}

func (h *Harness) realDatasets() ([]realDataset, error) {
	cov, covHier, err := gen.CovTypeLike(h.cfg.Scale, h.cfg.Seed)
	if err != nil {
		return nil, err
	}
	sep, sepHier, err := gen.Sep85LLike(h.cfg.Scale, h.cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	return []realDataset{
		{"CovType-like", cov, covHier},
		{"Sep85L-like", sep, sepHier},
	}, nil
}

// runReal regenerates Figures 14–17: construction time, storage space,
// average query response time, and the caching sweep, over the two
// real-dataset surrogates, for BUC, BU-BST, CURE, and CURE+.
func (h *Harness) runReal() (map[string]*Result, error) {
	datasets, err := h.realDatasets()
	if err != nil {
		return nil, err
	}
	scaleNote := fmt.Sprintf("datasets scaled to %.3g× the paper's row counts", h.cfg.Scale)
	fig14 := &Result{ID: "fig14", Title: "Real datasets: construction time",
		Header: []string{"dataset", "BUC", "BU-BST", "CURE", "CURE+"}, Notes: []string{scaleNote}}
	fig15 := &Result{ID: "fig15", Title: "Real datasets: storage space",
		Header: []string{"dataset", "BUC", "BU-BST", "CURE", "CURE+"}, Notes: []string{scaleNote}}
	fig16 := &Result{ID: "fig16", Title: "Real datasets: average query response time",
		Header: []string{"dataset", "BUC", "BU-BST", "CURE", "CURE+"},
		Notes:  []string{scaleNote, fmt.Sprintf("%d random node queries, no selection", h.cfg.Queries)}}
	fig17 := &Result{ID: "fig17", Title: "Effect of fact-table caching on average QRT",
		Header: []string{"dataset", "method", "cache=0", "0.25", "0.5", "0.75", "1"},
		Notes:  []string{scaleNote, "cache sweep over the first 100 workload queries (uncached queries dominate wall time)"}}

	for di, ds := range datasets {
		dir := filepath.Join(h.cfg.WorkDir, fmt.Sprintf("real%d", di))
		enum := lattice.NewEnum(ds.hier)
		workload := gen.NodeWorkload(enum, h.cfg.Queries, h.cfg.Seed+int64(di))

		bucStats, err := buc.Build(ds.ft, ds.hier, stdSpecs(), buc.Options{Dir: filepath.Join(dir, "buc")})
		if err != nil {
			return nil, err
		}
		bubstStats, err := bubst.Build(ds.ft, ds.hier, stdSpecs(), bubst.Options{Dir: filepath.Join(dir, "bubst")})
		if err != nil {
			return nil, err
		}
		cureStats, err := h.buildCURE(filepath.Join(dir, "cure"), ds.ft, ds.hier, nil)
		if err != nil {
			return nil, err
		}
		curePlusStats, err := h.buildCURE(filepath.Join(dir, "cureplus"), ds.ft, ds.hier, func(o *core.Options) { o.Plus = true })
		if err != nil {
			return nil, err
		}

		fig14.AddRow(ds.name,
			fmtDur(bucStats.Elapsed.Seconds()), fmtDur(bubstStats.Elapsed.Seconds()),
			fmtDur(cureStats.Elapsed.Seconds()), fmtDur(curePlusStats.Elapsed.Seconds()))
		fig15.AddRow(ds.name,
			fmtBytes(bucStats.Bytes), fmtBytes(bubstStats.Bytes),
			fmtBytes(cureStats.Sizes.Total()), fmtBytes(curePlusStats.Sizes.Total()))

		// Average QRT with the default engines (full caching for CURE).
		var qrts []string
		bq, err := buc.Open(filepath.Join(dir, "buc"))
		if err != nil {
			return nil, err
		}
		avg, _, err := timeWorkload(bucQuerier{bq}, workload)
		if err != nil {
			return nil, err
		}
		qrts = append(qrts, fmtDur(avg))
		sq, err := bubst.Open(filepath.Join(dir, "bubst"))
		if err != nil {
			return nil, err
		}
		avg, _, err = timeWorkload(bubstQuerier{sq}, workload)
		if err != nil {
			return nil, err
		}
		qrts = append(qrts, fmtDur(avg))
		for _, sub := range []string{"cure", "cureplus"} {
			ce, err := query.OpenDefault(filepath.Join(dir, sub))
			if err != nil {
				return nil, err
			}
			avg, _, err = timeWorkload(cureQuerier{ce}, workload)
			if err != nil {
				return nil, err
			}
			qrts = append(qrts, fmtDur(avg))
		}
		fig16.AddRow(append([]string{ds.name}, qrts...)...)

		// Figure 17: cache-fraction sweep for CURE and CURE+. Uncached
		// queries on the dense dataset cost three orders of magnitude
		// more than cached ones (that is the figure's very point), so the
		// sweep uses a subsample of the workload to stay tractable.
		sweep := workload
		if len(sweep) > 100 {
			sweep = sweep[:100]
		}
		for _, sub := range []struct{ label, dir string }{
			{"CURE", "cure"}, {"CURE+", "cureplus"},
		} {
			cells := []string{ds.name, sub.label}
			for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
				ce, err := query.Open(filepath.Join(dir, sub.dir), query.Options{CacheFraction: frac, PinAggregates: true})
				if err != nil {
					return nil, err
				}
				avg, _, err := timeWorkload(cureQuerier{ce}, sweep)
				if err != nil {
					return nil, err
				}
				cells = append(cells, fmtDur(avg))
			}
			fig17.AddRow(cells...)
		}
	}
	return map[string]*Result{"fig14": fig14, "fig15": fig15, "fig16": fig16, "fig17": fig17}, nil
}

// runPool regenerates Figure 18: cube size as a function of the signature
// pool capacity, on both real-dataset surrogates.
func (h *Harness) runPool() (map[string]*Result, error) {
	datasets, err := h.realDatasets()
	if err != nil {
		return nil, err
	}
	fig18 := &Result{ID: "fig18", Title: "Signature-pool size vs cube size",
		Header: []string{"dataset", "pool=0", "1K", "4K", "16K", "64K", "unbounded"},
		Notes: []string{
			fmt.Sprintf("datasets scaled to %.3g× the paper's row counts", h.cfg.Scale),
			"pool=0 disables CAT identification; unbounded matches the paper's optimal cube",
		}}
	caps := []int{core.NoPool, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 1 << 30}
	for di, ds := range datasets {
		cells := []string{ds.name}
		for ci, cap := range caps {
			dir := filepath.Join(h.cfg.WorkDir, fmt.Sprintf("pool%d_%d", di, ci))
			stats, err := h.buildCURE(dir, ds.ft, ds.hier, func(o *core.Options) { o.PoolCapacity = cap })
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmtBytes(stats.Sizes.Total()))
		}
		fig18.AddRow(cells...)
	}
	return map[string]*Result{"fig18": fig18}, nil
}
