package bench

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"time"

	"cure/internal/bubst"
	"cure/internal/buc"
	"cure/internal/core"
	"cure/internal/gen"
	"cure/internal/lattice"
	"cure/internal/query"
)

// runFlatHier regenerates Figures 26–28: the trade-off between flat and
// hierarchical cubes over hierarchical data (APB-1 at the lowest
// density). Flat cubes (BUC, BU-BST, FCURE, FCURE+) build faster and
// store less, but answering queries at coarser hierarchy levels forces
// on-the-fly re-aggregation; hierarchical cubes (CURE, CURE+) answer them
// directly.
func (h *Harness) runFlatHier() (map[string]*Result, error) {
	density := h.cfg.APBDensities[0]
	hier := gen.APBSchema()
	ft, _, err := gen.APB(density, h.cfg.Seed)
	if err != nil {
		return nil, err
	}
	notes := []string{fmt.Sprintf("APB-1 density %g (%s tuples)", density, fmtCount(int64(ft.Len())))}
	fig26 := &Result{ID: "fig26", Title: "Flat vs hierarchical: construction time",
		Header: []string{"method", "time"}, Notes: notes}
	fig27 := &Result{ID: "fig27", Title: "Flat vs hierarchical: storage space",
		Header: []string{"method", "size"}, Notes: notes}
	fig28 := &Result{ID: "fig28", Title: "Flat vs hierarchical: average QRT (roll-up/drill-down workload)",
		Header: []string{"method", "avg QRT"},
		Notes: append(notes,
			"workload: random hierarchical node queries; flat cubes re-aggregate on the fly")}

	dir := filepath.Join(h.cfg.WorkDir, "flathier")

	bucStats, err := buc.Build(ft, hier, stdSpecs(), buc.Options{Dir: filepath.Join(dir, "buc")})
	if err != nil {
		return nil, err
	}
	fig26.AddRow("BUC", fmtDur(bucStats.Elapsed.Seconds()))
	fig27.AddRow("BUC", fmtBytes(bucStats.Bytes))

	bubstStats, err := bubst.Build(ft, hier, stdSpecs(), bubst.Options{Dir: filepath.Join(dir, "bubst")})
	if err != nil {
		return nil, err
	}
	fig26.AddRow("BU-BST", fmtDur(bubstStats.Elapsed.Seconds()))
	fig27.AddRow("BU-BST", fmtBytes(bubstStats.Bytes))

	cureBuilds := []struct {
		label string
		sub   string
		mod   func(*core.Options)
	}{
		{"FCURE", "fcure", func(o *core.Options) { o.Flat = true }},
		{"FCURE+", "fcureplus", func(o *core.Options) { o.Flat = true; o.Plus = true }},
		{"CURE", "cure", func(o *core.Options) {}},
		{"CURE+", "cureplus", func(o *core.Options) { o.Plus = true }},
	}
	for _, cb := range cureBuilds {
		stats, err := h.buildCURE(filepath.Join(dir, cb.sub), ft, hier, cb.mod)
		if err != nil {
			return nil, err
		}
		fig26.AddRow(cb.label, fmtDur(stats.Elapsed.Seconds()))
		fig27.AddRow(cb.label, fmtBytes(stats.Sizes.Total()))
	}

	// Figure 28's workload: random hierarchical nodes (the roll-up /
	// drill-down space). Hierarchical cubes answer directly; flat cubes
	// answer through hierOverFlat.
	hierEnum := lattice.NewEnum(hier)
	flatEnum := lattice.NewEnum(hier.Flatten())
	rng := rand.New(rand.NewSource(h.cfg.Seed + 100))
	n := h.cfg.Queries / 10
	if n < 20 {
		n = 20
	}
	workload := make([][]int, n)
	for i := range workload {
		levels := make([]int, hier.NumDims())
		for d, dim := range hier.Dims {
			levels[d] = rng.Intn(dim.NumLevels())
		}
		workload[i] = levels
	}

	timeFlat := func(q flatQuerier) (float64, error) {
		defer q.Close()
		start := time.Now()
		for _, levels := range workload {
			if _, err := hierOverFlat(q, flatEnum, hier, levels, stdSpecs()); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds() / float64(len(workload)), nil
	}
	be, err := buc.Open(filepath.Join(dir, "buc"))
	if err != nil {
		return nil, err
	}
	avg, err := timeFlat(bucQuerier{be})
	if err != nil {
		return nil, err
	}
	fig28.AddRow("BUC", fmtDur(avg))
	se, err := bubst.Open(filepath.Join(dir, "bubst"))
	if err != nil {
		return nil, err
	}
	if avg, err = timeFlat(bubstQuerier{se}); err != nil {
		return nil, err
	}
	fig28.AddRow("BU-BST", fmtDur(avg))
	for _, sub := range []struct{ label, dir string }{{"FCURE", "fcure"}, {"FCURE+", "fcureplus"}} {
		fe, err := query.OpenDefault(filepath.Join(dir, sub.dir))
		if err != nil {
			return nil, err
		}
		if avg, err = timeFlat(cureQuerier{fe}); err != nil {
			return nil, err
		}
		fig28.AddRow(sub.label, fmtDur(avg))
	}
	// Hierarchical cubes: direct node queries.
	for _, sub := range []struct{ label, dir string }{{"CURE", "cure"}, {"CURE+", "cureplus"}} {
		he, err := query.OpenDefault(filepath.Join(dir, sub.dir))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for _, levels := range workload {
			id := hierEnum.Encode(levels)
			if err := he.NodeQuery(id, func(query.Row) error { return nil }); err != nil {
				he.Close()
				return nil, err
			}
		}
		he.Close()
		fig28.AddRow(sub.label, fmtDur(time.Since(start).Seconds()/float64(len(workload))))
	}
	return map[string]*Result{"fig26": fig26, "fig27": fig27, "fig28": fig28}, nil
}
