package query

import (
	"strings"
	"testing"

	"cure/internal/obsv"
)

// TestExplainAnalyzeMatchesCounters is the EXPLAIN acceptance check: the
// plan's actuals — zone blocks kept/skipped, bytes read, rows — must
// equal the registry counter deltas attributed to that query, because
// both come from the same per-query tally.
func TestExplainAnalyzeMatchesCounters(t *testing.T) {
	dir, _, _ := buildIndexedCube(t, false)
	reg := obsv.NewRegistry()
	tracker := obsv.NewQueryTracker(reg, 8)
	eng, err := Open(dir, Options{CacheFraction: 1, PinAggregates: true, Metrics: reg, Queries: tracker})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	node := eng.Enum().Encode([]int{0, 0})
	preds := []Predicate{{Dim: 0, Level: 0, Lo: 5, Hi: 10}}
	before := reg.Snapshot().Counters
	plan, err := eng.Explain(node, preds, true)
	if err != nil {
		t.Fatal(err)
	}
	after := reg.Snapshot().Counters
	delta := func(name string) int64 { return after[name] - before[name] }

	if plan.Actual == nil || plan.QueryID == 0 {
		t.Fatalf("analyze plan lacks actuals: %+v", plan)
	}
	io := plan.Actual.IO
	if io.ZoneBlocksKept != delta("query.index.hits") {
		t.Errorf("zone kept: plan %d, counter delta %d", io.ZoneBlocksKept, delta("query.index.hits"))
	}
	if io.ZoneBlocksSkipped != delta("query.index.blocks_skipped") {
		t.Errorf("zone skipped: plan %d, counter delta %d", io.ZoneBlocksSkipped, delta("query.index.blocks_skipped"))
	}
	if io.BytesRead != delta("query.bytes_read") {
		t.Errorf("bytes read: plan %d, counter delta %d", io.BytesRead, delta("query.bytes_read"))
	}
	if io.BytesDecoded != delta("query.bytes_decoded") {
		t.Errorf("bytes decoded: plan %d, counter delta %d", io.BytesDecoded, delta("query.bytes_decoded"))
	}
	if plan.Actual.Rows != delta("query.rows") {
		t.Errorf("rows: plan %d, counter delta %d", plan.Actual.Rows, delta("query.rows"))
	}
	if io.TTScanned != delta("query.scan.tt_rows") || io.NTScanned != delta("query.scan.nt_rows") || io.CATScanned != delta("query.scan.cat_rows") {
		t.Errorf("scan rows: plan tt=%d nt=%d cat=%d, deltas tt=%d nt=%d cat=%d",
			io.TTScanned, io.NTScanned, io.CATScanned,
			delta("query.scan.tt_rows"), delta("query.scan.nt_rows"), delta("query.scan.cat_rows"))
	}
	// The selective predicate must actually have pruned — otherwise this
	// test exercises nothing.
	if io.ZoneBlocksSkipped == 0 {
		t.Error("selective range predicate skipped no zone blocks")
	}
	if io.BytesRead == 0 {
		t.Error("query attributed no bytes read")
	}

	// The plan side of the same verdicts: per-extent kept/skipped totals
	// agree with the measured query (same zone maps, same predicates).
	var kept, skipped int64
	for _, ext := range plan.Extents {
		if ext.Zones != nil {
			kept += int64(ext.Zones.Kept)
			skipped += int64(ext.Zones.Skipped)
			if ext.Zones.Kept+ext.Zones.Skipped != ext.Zones.Blocks {
				t.Errorf("extent %s/%d: kept %d + skipped %d != blocks %d",
					ext.Relation, ext.Node, ext.Zones.Kept, ext.Zones.Skipped, ext.Zones.Blocks)
			}
		}
	}
	if kept != io.ZoneBlocksKept || skipped != io.ZoneBlocksSkipped {
		t.Errorf("plan zones kept/skipped = %d/%d, actuals %d/%d", kept, skipped, io.ZoneBlocksKept, io.ZoneBlocksSkipped)
	}

	// Analyze runs count as real queries: the row volume matches a direct
	// NodeQueryWhere and the tracker ring holds the record with the plan.
	direct := collectWhere(t, eng, node, preds)
	if plan.Actual.Rows != int64(len(direct)) {
		t.Errorf("analyze saw %d rows, direct query %d", plan.Actual.Rows, len(direct))
	}
	recent := tracker.Recent()
	var rec *obsv.QueryRecord
	for i := range recent {
		if recent[i].ID == plan.QueryID {
			rec = &recent[i]
		}
	}
	if rec == nil {
		t.Fatalf("query %d missing from tracker ring", plan.QueryID)
	}
	if rec.Op != "explain" || rec.Plan == nil || rec.IO != io {
		t.Errorf("tracker record = %+v", rec)
	}
}

func TestExplainPlanOnly(t *testing.T) {
	dir, _, _ := buildIndexedCube(t, false)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	node := eng.Enum().Encode([]int{0, 0})
	plan, err := eng.Explain(node, []Predicate{{Dim: 0, Level: 0, Lo: 5, Hi: 10}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if plan.QueryID != 0 || plan.Actual != nil {
		t.Fatalf("plan-only EXPLAIN ran the query: %+v", plan)
	}
	if plan.Op != "where" || plan.Where == "" || len(plan.Extents) == 0 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.EstScanRows <= 0 || plan.EstBytes <= 0 {
		t.Fatalf("estimates = %d rows / %d bytes", plan.EstScanRows, plan.EstBytes)
	}
	var pruned bool
	for _, ext := range plan.Extents {
		if ext.ScanRows > ext.Rows {
			t.Errorf("extent %s/%d scans %d of %d rows", ext.Relation, ext.Node, ext.ScanRows, ext.Rows)
		}
		switch ext.Access {
		case "linear":
			if ext.Zones != nil {
				t.Errorf("linear extent %s/%d carries zone detail", ext.Relation, ext.Node)
			}
		case "zone", "zone+narrow":
			if ext.Zones == nil {
				t.Errorf("indexed extent %s/%d lacks zone detail", ext.Relation, ext.Node)
			} else if ext.Zones.Skipped > 0 {
				pruned = true
			}
		default:
			t.Errorf("extent %s/%d has unknown access %q", ext.Relation, ext.Node, ext.Access)
		}
	}
	if !pruned {
		t.Error("no extent pruned under the selective predicate")
	}

	// Without predicates the plan is a plain node scan: every extent
	// linear, no where clause.
	plan, err = eng.Explain(node, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Op != "node" || plan.Where != "" {
		t.Fatalf("no-predicate plan = %+v", plan)
	}
	for _, ext := range plan.Extents {
		if ext.Access != "linear" || ext.ScanRows != ext.Rows {
			t.Errorf("no-predicate extent = %+v", ext)
		}
	}
}

func TestExplainNoIndex(t *testing.T) {
	dir, _, _ := buildIndexedCube(t, false)
	eng, err := Open(dir, Options{CacheFraction: 1, PinAggregates: true, NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	plan, err := eng.Explain(eng.Enum().Encode([]int{0, 0}), []Predicate{{Dim: 0, Level: 0, Lo: 5, Hi: 10}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.NoIndex {
		t.Fatal("plan does not report -no-index")
	}
	for _, ext := range plan.Extents {
		if ext.Access != "linear" {
			t.Errorf("-no-index extent uses %q access", ext.Access)
		}
	}
}

func TestExplainRejectsBadQuery(t *testing.T) {
	dir, _, _ := buildIndexedCube(t, false)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	node := eng.Enum().Encode([]int{0, 0})
	if _, err := eng.Explain(node, []Predicate{{Dim: 9, Level: 0, Lo: 0, Hi: 0}}, false); err == nil {
		t.Error("Explain accepted an out-of-range dimension")
	}
	if _, err := eng.Explain(node, []Predicate{{Dim: 0, Level: 99, Lo: 0, Hi: 0}}, false); err == nil {
		t.Error("Explain accepted an out-of-range level")
	}
	// A predicate at a level finer than the node's grouping is invalid.
	coarse := eng.Enum().Encode([]int{1, 0})
	if _, err := eng.Explain(coarse, []Predicate{{Dim: 0, Level: 0, Lo: 0, Hi: 0}}, false); err == nil {
		t.Error("Explain accepted a predicate finer than the grouping")
	}
}

// TestExplainWhereString pins the rendered plan vocabulary the curectl
// transcript in README relies on.
func TestExplainWhereString(t *testing.T) {
	dir, hier, _ := buildIndexedCube(t, false)
	reg := obsv.NewRegistry()
	eng, err := Open(dir, Options{CacheFraction: 1, PinAggregates: true, Metrics: reg, Queries: obsv.NewQueryTracker(reg, 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	node := eng.Enum().Encode([]int{0, 0})
	plan, err := eng.Explain(node, []Predicate{
		{Dim: 0, Level: 1, Lo: 2, Hi: 2},
		{Dim: 1, Level: 0, Lo: 1, Hi: 3},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	wantA := hier.Dims[0].Name + "." + hier.Dims[0].LevelName(1) + "=2"
	if !strings.Contains(plan.Where, wantA) || !strings.Contains(plan.Where, " and ") {
		t.Errorf("where = %q, want it to contain %q joined with ' and '", plan.Where, wantA)
	}
	if plan.NodeName == "" || plan.NodeName == "ALL" {
		t.Errorf("node name = %q", plan.NodeName)
	}
}
