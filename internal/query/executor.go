package query

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"cure/internal/lattice"
)

// ForEach runs task(i) for i in [0, n) on up to `workers` goroutines
// (workers <= 0 uses GOMAXPROCS; workers == 1 runs sequentially). Work
// is claimed from a shared atomic counter, so cheap and expensive tasks
// interleave without static partitioning skew. The first error stops
// new claims; in-flight tasks finish. All errors are joined.
func ForEach(workers, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errs   []error
		wg     sync.WaitGroup
		// First task panic (from any worker); re-raised on the calling
		// goroutine after the others drain, so a panicking query batch
		// surfaces through the caller's stack — with the *obsv.PanicError
		// context the engine's own capture wrappers attached — instead of
		// crashing the process from an anonymous goroutine.
		panicVal any
	)
	capture := func(v any) {
		mu.Lock()
		if panicVal == nil {
			panicVal = v
		}
		mu.Unlock()
		failed.Store(true)
	}
	run := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(n) || failed.Load() {
				return
			}
			if err := task(int(i)); err != nil {
				failed.Store(true)
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
				return
			}
		}
	}
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					capture(v)
				}
			}()
			run()
		}()
	}
	func() {
		defer func() {
			if v := recover(); v != nil {
				capture(v)
			}
		}()
		run() // the calling goroutine participates
	}()
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return errors.Join(errs...)
}

// NodeQueryBatch answers the given node queries concurrently on up to
// `workers` goroutines over one shared engine (the engine is safe for
// concurrent use; results of different queries interleave only across
// distinct qi values — fn is invoked concurrently for different qi but
// sequentially within one).
func (e *Engine) NodeQueryBatch(workers int, ids []lattice.NodeID, fn func(qi int, row Row) error) error {
	return ForEach(workers, len(ids), func(qi int) error {
		return e.NodeQuery(ids[qi], func(r Row) error { return fn(qi, r) })
	})
}
