package query

import (
	"encoding/binary"
	"fmt"
)

// DiffReport summarizes a node-by-node comparison of two cubes.
type DiffReport struct {
	// NodesCompared is the number of lattice nodes examined.
	NodesCompared int
	// TuplesA and TuplesB are the total tuple counts of each cube.
	TuplesA, TuplesB int64
	// Differences lists the first few discrepancies (empty when the two
	// cubes answer every node query identically).
	Differences []string
}

// Equal reports whether the two cubes are query-equivalent.
func (r *DiffReport) Equal() bool { return len(r.Differences) == 0 }

const maxDiffErrors = 20

// Diff compares two cubes node by node on their query results (dims +
// aggregates) — storage layout, variant, CAT format, and partitioning may
// all differ; only the answers matter. The schemas must have identical
// lattice shapes.
func Diff(a, b *Engine) (*DiffReport, error) {
	if a.Enum().NumNodes() != b.Enum().NumNodes() {
		return nil, fmt.Errorf("query: lattices differ: %d vs %d nodes", a.Enum().NumNodes(), b.Enum().NumNodes())
	}
	if a.Manifest().NumAggrs() != b.Manifest().NumAggrs() {
		return nil, fmt.Errorf("query: aggregate counts differ: %d vs %d", a.Manifest().NumAggrs(), b.Manifest().NumAggrs())
	}
	rep := &DiffReport{}
	var keyBuf []byte
	key := func(dims []int32) string {
		keyBuf = keyBuf[:0]
		for _, d := range dims {
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], uint32(d))
			keyBuf = append(keyBuf, buf[:]...)
		}
		return string(keyBuf)
	}
	for _, id := range a.Enum().AllNodes() {
		rep.NodesCompared++
		rowsA := map[string][]float64{}
		if err := a.NodeQuery(id, func(row Row) error {
			rep.TuplesA++
			rowsA[key(row.Dims)] = append([]float64(nil), row.Aggrs...)
			return nil
		}); err != nil {
			return nil, err
		}
		matched := 0
		if err := b.NodeQuery(id, func(row Row) error {
			rep.TuplesB++
			k := key(row.Dims)
			w, ok := rowsA[k]
			if !ok {
				rep.addDiff("node %s: tuple %v only in B", a.Enum().Name(id), row.Dims)
				return nil
			}
			matched++
			for i := range w {
				if w[i] != row.Aggrs[i] {
					rep.addDiff("node %s tuple %v: aggregate %d differs (%v vs %v)",
						a.Enum().Name(id), row.Dims, i, w[i], row.Aggrs[i])
					return nil
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		if matched != len(rowsA) {
			rep.addDiff("node %s: %d tuples only in A", a.Enum().Name(id), len(rowsA)-matched)
		}
	}
	return rep, nil
}

func (r *DiffReport) addDiff(format string, args ...any) {
	if len(r.Differences) < maxDiffErrors {
		r.Differences = append(r.Differences, fmt.Sprintf(format, args...))
	}
}
