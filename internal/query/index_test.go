package query

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"cure/internal/core"
	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/obsv"
	"cure/internal/relation"
)

// buildIndexedCube builds a hierarchical cube with fine-grained zone maps
// (8-row blocks) so small test extents still get indexed.
func buildIndexedCube(t *testing.T, dr bool) (string, *hierarchy.Schema, *relation.FactTable) {
	t.Helper()
	m := hierarchy.BuildContiguousMap(64, 8)
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1"}, []int32{64, 8}, [][]int32{m})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := hierarchy.NewSchema(a, hierarchy.NewFlatDim("B", 8))
	if err != nil {
		t.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"A", "B"}, MeasureNames: []string{"M"}}
	const rows = 4000
	ft := relation.NewFactTable(schema, rows)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < rows; i++ {
		ft.Append([]int32{int32(rng.Intn(64)), int32(rng.Intn(8))}, []float64{float64(rng.Intn(9))})
	}
	dir := filepath.Join(t.TempDir(), "cube")
	if _, err := core.BuildFromTable(ft, core.Options{
		Dir: dir, Hier: hier,
		AggSpecs:      []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}},
		DimsInline:    dr,
		ZoneBlockRows: 8,
		Compression:   testCompression(),
	}); err != nil {
		t.Fatal(err)
	}
	return dir, hier, ft
}

// collectWhere renders a predicate query's result multiset to sorted
// strings.
func collectWhere(t *testing.T, eng *Engine, node lattice.NodeID, preds []Predicate) []string {
	t.Helper()
	var rows []string
	if err := eng.NodeQueryWhere(node, preds, func(r Row) error {
		rows = append(rows, fmt.Sprintf("%v|%v", r.Dims, r.Aggrs))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(rows)
	return rows
}

func TestZoneMapsWrittenToManifest(t *testing.T) {
	dir, _, _ := buildIndexedCube(t, false)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	indexed := 0
	for _, id := range eng.Enum().AllNodes() {
		nm, ok := eng.Manifest().NodeMeta(id)
		if !ok {
			continue
		}
		for _, z := range []interface{ NumBlocks() int }{nm.NTZones, nm.TTZones, nm.CATZones} {
			if n := z.NumBlocks(); n > 0 {
				indexed++
			}
		}
	}
	if indexed == 0 {
		t.Fatal("no extent of the cube carries a zone map")
	}
}

// TestSliceQueryZonePruning is the headline acceptance check: a selective
// slice over a hierarchical cube skips blocks, and the indexed results
// are identical to a full-scan (-no-index) run over the same store.
func TestSliceQueryZonePruning(t *testing.T) {
	dir, _, _ := buildIndexedCube(t, false)
	regIdx := obsv.NewRegistry()
	idx, err := Open(dir, Options{CacheFraction: 1, PinAggregates: true, Metrics: regIdx})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	regFull := obsv.NewRegistry()
	full, err := Open(dir, Options{CacheFraction: 1, PinAggregates: true, Metrics: regFull, NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()

	slice := func(eng *Engine) []string {
		var rows []string
		base := eng.Enum().Encode([]int{0, 0})
		if err := eng.SliceQuery(base, 0, 0, 17, func(r Row) error {
			rows = append(rows, fmt.Sprintf("%v|%v", r.Dims, r.Aggrs))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		sort.Strings(rows)
		return rows
	}
	got, want := slice(idx), slice(full)
	if len(got) == 0 {
		t.Fatal("slice returned nothing — selection is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("indexed %d rows, full scan %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: indexed %q != full %q", i, got[i], want[i])
		}
	}
	if skipped := regIdx.Snapshot().Counters["query.index.blocks_skipped"]; skipped == 0 {
		t.Error("selective slice skipped no blocks")
	}
	if skipped := regFull.Snapshot().Counters["query.index.blocks_skipped"]; skipped != 0 {
		t.Errorf("-no-index engine skipped %d blocks", skipped)
	}
}

// TestZonePruningCoarserLevel checks pruning through a coarser-level
// predicate (the zone map has one slot per level, so the A1 slot prunes
// directly).
func TestZonePruningCoarserLevel(t *testing.T) {
	dir, _, _ := buildIndexedCube(t, false)
	reg := obsv.NewRegistry()
	idx, err := Open(dir, Options{CacheFraction: 1, PinAggregates: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	full, err := Open(dir, Options{CacheFraction: 1, PinAggregates: true, NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()

	preds := []Predicate{{Dim: 0, Level: 1, Lo: 2, Hi: 3}}
	for n, id := range idx.Enum().AllNodes() {
		// The predicate references A1; nodes grouping A more coarsely
		// reject it by design.
		if idx.Enum().Decode(id, nil)[0] > 1 {
			continue
		}
		got := collectWhere(t, idx, id, preds)
		want := collectWhere(t, full, id, preds)
		if len(got) != len(want) {
			t.Fatalf("node %d: indexed %d rows, full %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d row %d: %q != %q", n, i, got[i], want[i])
			}
		}
	}
	if reg.Snapshot().Counters["query.index.hits"] == 0 {
		t.Error("no zone map was ever consulted")
	}
}

// TestZonePruningDR checks indexed vs full-scan equivalence on a CURE_DR
// cube, whose NT zone maps are built from the inline codes.
func TestZonePruningDR(t *testing.T) {
	dir, _, _ := buildIndexedCube(t, true)
	idx, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	full, err := Open(dir, Options{CacheFraction: 1, PinAggregates: true, NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	// DR predicates target the node's own level.
	preds := []Predicate{{Dim: 0, Level: 0, Lo: 10, Hi: 20}}
	base := idx.Enum().Encode([]int{0, 0})
	got := collectWhere(t, idx, base, preds)
	want := collectWhere(t, full, base, preds)
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("DR indexed %d rows, full %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DR row %d: %q != %q", i, got[i], want[i])
		}
	}
}
