package query

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/obsv"
	"cure/internal/relation"
	"cure/internal/signature"
	"cure/internal/storage"
)

// Options configures a query engine.
type Options struct {
	// CacheFraction is the fraction of the fact table held in the page
	// cache (0 = no caching, 1 = the whole table). This is the knob of
	// the paper's Figure 17.
	CacheFraction float64
	// PinAggregates loads the whole AGGREGATES relation into memory —
	// the other half of §5.3's caching advice. Defaults to true via
	// OpenDefault.
	PinAggregates bool
	// NoIndex disables zone-map block pruning for predicate queries (the
	// ablation arm of the query-throughput experiment); selections then
	// fall back to full extent scans.
	NoIndex bool
	// DecodedCacheBytes budgets the decoded-block cache of compressed
	// cubes in raw-equivalent bytes (0 = a 32 MiB default, negative =
	// disabled). Uncompressed cubes never allocate one.
	DecodedCacheBytes int64
	// Metrics is the optional observability registry: cache
	// hit/miss/eviction counters, per-query row counters, and a
	// node-query latency histogram (microseconds). nil disables it.
	Metrics *obsv.Registry
	// Queries is the optional per-query tracker: every public query op
	// registers itself in-flight, publishes the extent it is scanning,
	// and lands a completed record (with I/O attribution) in the
	// tracker's ring and slow-query log. nil disables tracking.
	Queries *obsv.QueryTracker
}

// Engine answers queries over one materialized cube directory.
type Engine struct {
	r      *storage.Reader
	fact   *relation.FactReader
	cache  *factCache
	aggRaw []byte // pinned AGGREGATES, nil when not pinned
	enum   *lattice.Enum
	// reg is nil when no registry is attached; hLatency/cRows are then
	// inert, and latency clocking is skipped entirely.
	reg      *obsv.Registry
	hLatency *obsv.Histogram
	cQueries *obsv.Counter
	cRows    *obsv.Counter
	cTTScan  *obsv.Counter
	cNTScan  *obsv.Counter
	cCATScan *obsv.Counter
	// Zone-map index accounting and the umbrella latency histogram every
	// public query op observes.
	cIdxHits    *obsv.Counter
	cIdxSkipped *obsv.Counter
	cBytes      *obsv.Counter
	cDecoded    *obsv.Counter
	cWhere      *obsv.Counter
	hWhere      *obsv.Histogram
	hQuery      *obsv.Histogram
	noIndex     bool
	zoneOffs    []int // dimension → first zone slot (storage.ZoneSlots)
	// queries is the optional per-query tracker; qid numbers queries when
	// no tracker is attached (EXPLAIN still wants a stable query id).
	queries *obsv.QueryTracker
	qid     atomic.Int64
}

// Open opens a cube directory for querying.
func Open(dir string, opts Options) (*Engine, error) {
	r, err := storage.OpenReader(dir)
	if err != nil {
		return nil, err
	}
	r.SetMetrics(opts.Metrics)
	fact, err := relation.OpenFactReader(r.FactPath())
	if err != nil {
		r.Close()
		return nil, err
	}
	e := &Engine{
		r:        r,
		fact:     fact,
		cache:    newFactCache(fact, opts.CacheFraction, opts.Metrics),
		enum:     r.Enum(),
		reg:      opts.Metrics,
		hLatency: opts.Metrics.Histogram("query.node.latency_us"),
		cQueries: opts.Metrics.Counter("query.node.count"),
		cRows:    opts.Metrics.Counter("query.rows"),
		cTTScan:  opts.Metrics.Counter("query.scan.tt_rows"),
		cNTScan:  opts.Metrics.Counter("query.scan.nt_rows"),
		cCATScan: opts.Metrics.Counter("query.scan.cat_rows"),

		cIdxHits:    opts.Metrics.Counter("query.index.hits"),
		cIdxSkipped: opts.Metrics.Counter("query.index.blocks_skipped"),
		cBytes:      opts.Metrics.Counter("query.bytes_read"),
		cDecoded:    opts.Metrics.Counter("query.bytes_decoded"),
		cWhere:      opts.Metrics.Counter("query.where.count"),
		hWhere:      opts.Metrics.Histogram("query.where.latency_us"),
		hQuery:      opts.Metrics.Histogram("query.latency_us"),
		noIndex:     opts.NoIndex,
		queries:     opts.Queries,
	}
	e.zoneOffs, _ = storage.ZoneSlots(r.Hier())
	opts.Metrics.Gauge("query.cache.fraction_pct").Set(int64(opts.CacheFraction * 100))
	if r.Manifest().Compressed() {
		// Compressed cubes read through a decoded-block cache: a hit costs
		// neither the pread nor the decode. Attached before any read path
		// runs, per the reader's concurrency contract.
		if bc := newBlockCache(opts.DecodedCacheBytes, opts.Metrics); bc != nil {
			r.SetBlockCache(bc)
		}
	}
	if opts.PinAggregates {
		if e.aggRaw, err = r.AggregatesRaw(); err != nil {
			e.Close()
			return nil, err
		}
	}
	return e, nil
}

// OpenDefault opens a cube with full fact-table caching and pinned
// AGGREGATES — the configuration the paper's headline query numbers use.
func OpenDefault(dir string) (*Engine, error) {
	return Open(dir, Options{CacheFraction: 1, PinAggregates: true})
}

// Close releases the engine's resources.
func (e *Engine) Close() error {
	err := e.r.Close()
	if cerr := e.fact.Close(); err == nil {
		err = cerr
	}
	return err
}

// Enum exposes the node enumeration of the cube's schema.
func (e *Engine) Enum() *lattice.Enum { return e.enum }

// Hier exposes the hierarchical schema the cube was built over.
func (e *Engine) Hier() *hierarchy.Schema { return e.r.Hier() }

// FactPath returns the resolved path of the fact table the cube's row-ids
// reference.
func (e *Engine) FactPath() string { return e.r.FactPath() }

// Manifest exposes the cube catalog.
func (e *Engine) Manifest() *storage.Manifest { return e.r.Manifest() }

// CacheStats returns fact-cache hits and misses.
func (e *Engine) CacheStats() (hits, misses int64) { return e.cache.Stats() }

// Row is one result tuple of a node query: the node's grouping-attribute
// codes (at the node's levels, in dimension order) and the aggregates.
// RRowid is the minimum fact-table row-id of the tuple's source set (-1
// for CURE_DR normal tuples, whose storage drops the reference);
// incremental maintenance relies on it.
type Row struct {
	Dims   []int32
	Aggrs  []float64
	RRowid int64
}

// qctx is the per-query attribution context: one per query, owned by
// the single goroutine running it, threaded through scanNode down to
// the storage reader and fact cache. Tallies are plain fields (no
// atomics — concurrent queries each carry their own) and settle into
// the engine's registry counters exactly once at query end, which is
// what makes an EXPLAIN ANALYZE's actuals equal the cure_query_*
// counter deltas observed around that query.
type qctx struct {
	id   int64
	rows int64
	io   storage.IOStats
	// Fact-page cache treatment.
	cacheHits    int64
	pagesFaulted int64
	// Rows visited per extent class (post zone-map pruning).
	ttScanned  int64
	ntScanned  int64
	catScanned int64
	// Zone-map pruning verdicts across the extents consulted.
	zoneKept    int64
	zoneSkipped int64
	active      *obsv.ActiveQuery // tracker handle, nil without a tracker
	plan        *Plan             // EXPLAIN ANALYZE attaches its plan here
}

// queryIO renders the tally as the record's I/O block.
func (q *qctx) queryIO() obsv.QueryIO {
	return obsv.QueryIO{
		BytesRead:         q.io.BytesRead,
		Reads:             q.io.Reads,
		BytesDecoded:      q.io.BytesDecoded,
		CacheHits:         q.cacheHits,
		PagesFaulted:      q.pagesFaulted,
		TTScanned:         q.ttScanned,
		NTScanned:         q.ntScanned,
		CATScanned:        q.catScanned,
		ZoneBlocksKept:    q.zoneKept,
		ZoneBlocksSkipped: q.zoneSkipped,
	}
}

// beginQuery opens the per-query context: a fresh tally, a monotonic
// query id, and (when a tracker is attached) the in-flight registration.
func (e *Engine) beginQuery(op string, id lattice.NodeID, where string) *qctx {
	q := &qctx{}
	if e.queries != nil {
		q.active = e.queries.Begin(op, int64(id), e.nodeName(id), where)
		q.id = q.active.ID()
	} else {
		q.id = e.qid.Add(1)
	}
	return q
}

// endQuery settles the query's tallies into the registry counters
// (exactly once per query) and completes the tracker record. Returns
// err unchanged so callers can tail-call it.
func (e *Engine) endQuery(q *qctx, err error) error {
	e.cTTScan.Add(q.ttScanned)
	e.cNTScan.Add(q.ntScanned)
	e.cCATScan.Add(q.catScanned)
	e.cIdxHits.Add(q.zoneKept)
	e.cIdxSkipped.Add(q.zoneSkipped)
	e.cBytes.Add(q.io.BytesRead)
	e.cDecoded.Add(q.io.BytesDecoded)
	e.cRows.Add(q.rows)
	if e.queries != nil {
		var plan any
		if q.plan != nil {
			plan = q.plan
		}
		e.queries.End(q.active, q.rows, err, q.queryIO(), plan)
	}
	return err
}

// panicCtx is the capture context the public query ops defer: a panic
// anywhere under the op is attributed to this query's id, op, and node
// in the diagnostic bundle and the re-raised *obsv.PanicError.
func (e *Engine) panicCtx(q *qctx, op string, id lattice.NodeID) func() string {
	return func() string {
		return fmt.Sprintf("query id=%d op=%s node=%s", q.id, op, e.nodeName(id))
	}
}

// nodeName renders a node as its grouped dimension levels
// ("dim.Level,dim.Level", "ALL" for the apex) for query records.
func (e *Engine) nodeName(id lattice.NodeID) string {
	if !e.enum.Valid(id) {
		return ""
	}
	levels := e.enum.Decode(id, nil)
	hier := e.r.Hier()
	var b strings.Builder
	for d, l := range levels {
		if hier.Dims[d].IsAll(l) {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(hier.Dims[d].Name)
		b.WriteByte('.')
		b.WriteString(hier.Dims[d].LevelName(l))
	}
	if b.Len() == 0 {
		return "ALL"
	}
	return b.String()
}

// whereString renders validated predicates for query records
// ("dim.Level=code" / "dim.Level in [lo,hi]", " and "-joined).
func (e *Engine) whereString(preds []Predicate) string {
	if len(preds) == 0 {
		return ""
	}
	hier := e.r.Hier()
	var b strings.Builder
	for i, p := range preds {
		if i > 0 {
			b.WriteString(" and ")
		}
		d := hier.Dims[p.Dim]
		b.WriteString(d.Name)
		b.WriteByte('.')
		b.WriteString(d.LevelName(p.Level))
		if p.Lo == p.Hi {
			fmt.Fprintf(&b, "=%d", p.Lo)
		} else {
			fmt.Fprintf(&b, " in [%d,%d]", p.Lo, p.Hi)
		}
	}
	return b.String()
}

// NodeQuery streams every tuple of node id to fn. The Row passed to fn
// reuses internal buffers. This is the "node query, no selection"
// workload of the paper's §7. Safe for concurrent use — any number of
// goroutines may query one Engine simultaneously.
func (e *Engine) NodeQuery(id lattice.NodeID, fn func(Row) error) error {
	q := e.beginQuery("node", id, "")
	defer obsv.CapturePanic(e.reg, e.panicCtx(q, "node", id))
	cfn := func(r Row) error { q.rows++; return fn(r) }
	if e.reg == nil {
		return e.endQuery(q, e.nodeQuery(id, q, cfn))
	}
	// Each instrumented query is a root span, so in-flight queries show
	// up in /metrics and /progress next to build phases. The registry
	// caps retained root spans, keeping long query workloads bounded.
	sp := e.reg.StartSpan("query.node")
	defer sp.End()
	start := time.Now()
	err := e.nodeQuery(id, q, cfn)
	sp.AddRowsOut(q.rows)
	e.cQueries.Inc()
	us := time.Since(start).Microseconds()
	e.hLatency.Observe(us)
	e.hQuery.Observe(us)
	return e.endQuery(q, err)
}

func (e *Engine) nodeQuery(id lattice.NodeID, q *qctx, fn func(Row) error) error {
	if !e.enum.Valid(id) {
		return fmt.Errorf("query: invalid node id %d", id)
	}
	return e.scanNode(id, e.enum.Decode(id, nil), nil, q, fn)
}

// scanFilter is a per-query selection threaded through scanNode: the
// tuple predicates, the same predicates lowered to zone-map slots (nil
// disables block pruning), and the CURE_DR dimension→position map for
// evaluating inline codes.
type scanFilter struct {
	preds []Predicate
	zp    []storage.ZonePred
	drPos []int
}

// scanNode streams the tuples of node id through the optional filter,
// attributing every read, cache access, and pruning verdict to q. All
// scratch state is per-call, so concurrent scans never share mutable
// memory.
func (e *Engine) scanNode(id lattice.NodeID, levels []int, f *scanFilter, q *qctx, fn func(Row) error) error {
	hier := e.r.Hier()
	activeDims := make([]int, 0, len(levels))
	for d, l := range levels {
		if !hier.Dims[d].IsAll(l) {
			activeDims = append(activeDims, d)
		}
	}
	row := Row{
		Dims:  make([]int32, len(activeDims)),
		Aggrs: make([]float64, e.r.Manifest().NumAggrs()),
	}
	baseDims := make([]int32, hier.NumDims())
	baseMeas := make([]float64, e.fact.Schema().NumMeasures())
	rawBuf := make([]byte, e.fact.RowWidth())
	specs := e.r.Manifest().AggSpecs

	project := func(rrowid int64) error {
		if err := e.cache.readRow(rrowid, rawBuf, q); err != nil {
			return err
		}
		e.fact.DecodeRow(rawBuf, baseDims, baseMeas)
		for i, d := range activeDims {
			row.Dims[i] = hier.Dims[d].MapCode(baseDims[d], levels[d])
		}
		return nil
	}
	// match evaluates the filter on the current row: CURE_DR tuples on
	// the inline codes already in row.Dims, everything else on the
	// projected base row — the exact semantics zone maps are built with,
	// which is what makes block pruning lossless.
	match := func() bool {
		if f == nil {
			return true
		}
		if f.drPos != nil {
			for _, p := range f.preds {
				if !p.Match(row.Dims[f.drPos[p.Dim]]) {
					return false
				}
			}
			return true
		}
		for _, p := range f.preds {
			if !p.Match(hier.Dims[p.Dim].MapCode(baseDims[p.Dim], p.Level)) {
				return false
			}
		}
		return true
	}
	// prune lowers the filter onto one extent's zone map; a nil result
	// means scan everything (no filter, no map, or indexing disabled).
	// Verdicts tally into q and settle into the registry at query end.
	prune := func(z *storage.ZoneIndex, rows int64) []storage.RowRange {
		if f == nil || len(f.zp) == 0 || z == nil || e.noIndex {
			return nil
		}
		ranges, st := storage.PruneZonesStats(z, rows, f.zp)
		q.zoneKept += int64(st.Kept)
		q.zoneSkipped += int64(st.Skipped)
		return ranges
	}

	// 1. Trivial tuples: stored once at the least detailed node they
	// belong to; collect them along the plan path (bounded to the
	// partition subtree when the cube was built partitioned). Each
	// ancestor extent prunes against its own zone map.
	for _, anc := range e.planPath(id, levels) {
		q.active.SetExtent(obsv.ExtentTT, int64(anc))
		ids, err := e.r.TTRowIDsIO(anc, nil, &q.io)
		if err != nil {
			return err
		}
		ttRanges := []storage.RowRange{{Lo: 0, Hi: int64(len(ids))}}
		if nm, ok := e.r.Manifest().NodeMeta(anc); ok {
			if pr := prune(nm.TTZones, int64(len(ids))); pr != nil {
				ttRanges = pr
			}
		}
		for _, rg := range ttRanges {
			for _, rrowid := range ids[rg.Lo:rg.Hi] {
				q.ttScanned++
				if err := project(rrowid); err != nil {
					return err
				}
				if !match() {
					continue
				}
				// A trivial tuple's aggregates are the projections of its
				// single source tuple.
				for i, s := range specs {
					if s.Func == relation.AggCount {
						row.Aggrs[i] = 1
					} else {
						row.Aggrs[i] = baseMeas[s.Measure]
					}
				}
				row.RRowid = rrowid
				if err := fn(row); err != nil {
					return err
				}
			}
		}
	}

	nm, _ := e.r.Manifest().NodeMeta(id)

	// 2. Normal tuples.
	q.active.SetExtent(obsv.ExtentNT, int64(id))
	if err := e.r.NTRowsRanges(id, prune(nm.NTZones, nm.NTRows), &q.io, func(nt storage.NTRow) error {
		q.ntScanned++
		if e.r.Manifest().DimsInline {
			copy(row.Dims, nt.Dims)
		} else if err := project(nt.RRowid); err != nil {
			return err
		}
		if !match() {
			return nil
		}
		copy(row.Aggrs, nt.Aggrs)
		row.RRowid = nt.RRowid // -1 under CURE_DR
		return fn(row)
	}); err != nil {
		return err
	}

	// 3. Common aggregate tuples: aggregates via AGGREGATES, dimensions
	// via the source row-id (carried by the CAT row under format (b), by
	// the AGGREGATES tuple under format (a)).
	q.active.SetExtent(obsv.ExtentCAT, int64(id))
	return e.r.CATRowsRanges(id, prune(nm.CATZones, nm.CATRows), &q.io, func(cat storage.CATRow) error {
		q.catScanned++
		aggRowid, err := e.readAggregate(cat.ARowid, row.Aggrs, &q.io)
		if err != nil {
			return err
		}
		rrowid := cat.RRowid
		if rrowid < 0 {
			rrowid = aggRowid
		}
		if err := project(rrowid); err != nil {
			return err
		}
		if !match() {
			return nil
		}
		row.RRowid = rrowid
		return fn(row)
	})
}

// readAggregate fetches AGGREGATES tuple arowid through the pin if
// present; unpinned reads are attributed to io.
func (e *Engine) readAggregate(arowid int64, aggrs []float64, io *storage.IOStats) (int64, error) {
	if e.aggRaw != nil {
		return e.r.DecodeAggregate(e.aggRaw, arowid, aggrs), nil
	}
	return e.r.ReadAggregateIO(arowid, aggrs, io)
}

// planPath returns the plan nodes whose TT relations contribute to node
// id, respecting the partition boundary of partitioned builds and the
// plan style the cube was built with.
func (e *Engine) planPath(id lattice.NodeID, levels []int) []lattice.NodeID {
	if e.r.Manifest().ShortPlan {
		return e.enum.PlanPathShort(id)
	}
	L := e.r.Manifest().PartitionLevel
	M := e.r.Manifest().PartitionLevelB
	if M >= 0 && levels[0] <= L {
		// Pair-partitioned build: nodes with both partitioned dimensions
		// at fine levels root at {A_l0, B_M}; nodes with dimension 1
		// coarser root at {A_l0} (the N2 phase).
		hier := e.r.Hier()
		rootLevels := make([]int, hier.NumDims())
		rootLevels[0] = levels[0]
		for d := 1; d < len(rootLevels); d++ {
			rootLevels[d] = hier.Dims[d].AllLevel()
		}
		if levels[1] <= M {
			rootLevels[1] = M
		}
		return e.enum.PlanPathFromNode(id, e.enum.Encode(rootLevels))
	}
	if L >= 0 && levels[0] <= L {
		return e.enum.PlanPathFrom(id, L)
	}
	return e.enum.PlanPath(id)
}

// NodeCount returns the number of result tuples of a node query without
// materializing dimension values (TTs still require plan-path metadata
// but no fact access).
func (e *Engine) NodeCount(id lattice.NodeID) (int64, error) {
	levels := e.enum.Decode(id, nil)
	var n int64
	for _, anc := range e.planPath(id, levels) {
		nm, ok := e.r.Manifest().NodeMeta(anc)
		if !ok {
			continue
		}
		n += nm.TTRows
	}
	if nm, ok := e.r.Manifest().NodeMeta(id); ok {
		n += nm.NTRows + nm.CATRows
	}
	return n, nil
}

// IcebergQuery streams the tuples of node id whose count aggregate
// exceeds minCount. countAgg is the index of a COUNT aggregate in the
// cube's specs. Trivial tuples are skipped wholesale (their count is
// always 1) — the property that makes iceberg queries on CURE cubes
// orders of magnitude cheaper than on formats that materialize TTs.
func (e *Engine) IcebergQuery(id lattice.NodeID, countAgg int, minCount float64, fn func(Row) error) error {
	q := e.beginQuery("iceberg", id, fmt.Sprintf("count>%v", minCount))
	defer obsv.CapturePanic(e.reg, e.panicCtx(q, "iceberg", id))
	cfn := func(r Row) error { q.rows++; return fn(r) }
	if e.reg == nil {
		return e.endQuery(q, e.icebergQuery(id, countAgg, minCount, q, cfn))
	}
	sp := e.reg.StartSpan("query.iceberg")
	defer sp.End()
	start := time.Now()
	err := e.icebergQuery(id, countAgg, minCount, q, cfn)
	sp.AddRowsOut(q.rows)
	e.reg.Counter("query.iceberg.count").Inc()
	us := time.Since(start).Microseconds()
	e.reg.Histogram("query.iceberg.latency_us").Observe(us)
	e.hQuery.Observe(us)
	return e.endQuery(q, err)
}

func (e *Engine) icebergQuery(id lattice.NodeID, countAgg int, minCount float64, q *qctx, fn func(Row) error) error {
	specs := e.r.Manifest().AggSpecs
	if countAgg < 0 || countAgg >= len(specs) || specs[countAgg].Func != relation.AggCount {
		return fmt.Errorf("query: aggregate %d is not a COUNT", countAgg)
	}
	if minCount < 1 {
		return fmt.Errorf("query: iceberg threshold %v below 1 matches everything", minCount)
	}
	levels := e.enum.Decode(id, nil)
	hier := e.r.Hier()
	activeDims := make([]int, 0, len(levels))
	for d, l := range levels {
		if !hier.Dims[d].IsAll(l) {
			activeDims = append(activeDims, d)
		}
	}
	row := Row{Dims: make([]int32, len(activeDims)), Aggrs: make([]float64, len(specs))}
	baseDims := make([]int32, hier.NumDims())
	baseMeas := make([]float64, e.fact.Schema().NumMeasures())
	rawBuf := make([]byte, e.fact.RowWidth())
	project := func(rrowid int64) error {
		if err := e.cache.readRow(rrowid, rawBuf, q); err != nil {
			return err
		}
		e.fact.DecodeRow(rawBuf, baseDims, baseMeas)
		for i, d := range activeDims {
			row.Dims[i] = hier.Dims[d].MapCode(baseDims[d], levels[d])
		}
		return nil
	}
	q.active.SetExtent(obsv.ExtentNT, int64(id))
	if err := e.r.NTRowsRanges(id, nil, &q.io, func(nt storage.NTRow) error {
		q.ntScanned++
		if nt.Aggrs[countAgg] <= minCount {
			return nil
		}
		if e.r.Manifest().DimsInline {
			copy(row.Dims, nt.Dims)
		} else if err := project(nt.RRowid); err != nil {
			return err
		}
		copy(row.Aggrs, nt.Aggrs)
		return fn(row)
	}); err != nil {
		return err
	}
	q.active.SetExtent(obsv.ExtentCAT, int64(id))
	return e.r.CATRowsRanges(id, nil, &q.io, func(cat storage.CATRow) error {
		q.catScanned++
		aggRowid, err := e.readAggregate(cat.ARowid, row.Aggrs, &q.io)
		if err != nil {
			return err
		}
		if row.Aggrs[countAgg] <= minCount {
			return nil
		}
		rrowid := cat.RRowid
		if rrowid < 0 {
			rrowid = aggRowid
		}
		if err := project(rrowid); err != nil {
			return err
		}
		return fn(row)
	})
}

// RollUp returns the node id with dimension dim one hierarchy level
// coarser (towards ALL), and false when dim is already at ALL.
func (e *Engine) RollUp(id lattice.NodeID, dim int) (lattice.NodeID, bool) {
	levels := e.enum.Decode(id, nil)
	d := e.r.Hier().Dims[dim]
	if d.IsAll(levels[dim]) {
		return id, false
	}
	levels[dim]++
	return e.enum.Encode(levels), true
}

// DrillDown returns the node id with dimension dim one level finer along
// the dashed-edge tree, and false when dim is already at a base level.
func (e *Engine) DrillDown(id lattice.NodeID, dim int) (lattice.NodeID, bool) {
	levels := e.enum.Decode(id, nil)
	d := e.r.Hier().Dims[dim]
	children := d.DashChildren(levels[dim])
	if len(children) == 0 {
		return id, false
	}
	levels[dim] = children[0]
	return e.enum.Encode(levels), true
}

// Format reports the cube's CAT storage format.
func (e *Engine) Format() signature.Format { return e.r.Manifest().CatFormat }
