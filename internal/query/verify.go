package query

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"cure/internal/lattice"
	"cure/internal/relation"
)

// VerifyReport summarizes a cube integrity check.
type VerifyReport struct {
	// NodesChecked is the number of lattice nodes verified.
	NodesChecked int
	// TuplesChecked is the total number of cube tuples compared.
	TuplesChecked int64
	// Errors lists the first few discrepancies found (empty when the
	// cube is consistent).
	Errors []string
}

// OK reports whether verification found no discrepancies.
func (r *VerifyReport) OK() bool { return len(r.Errors) == 0 }

// maxVerifyErrors bounds the discrepancy list.
const maxVerifyErrors = 20

// Verify recomputes sampleNodes randomly chosen lattice nodes (all of
// them when sampleNodes ≤ 0 or exceeds the lattice) directly from the
// fact table and compares them against the cube's query results — an
// end-to-end integrity check over every storage component (TT sharing,
// NT references, CAT indirection, AGGREGATES, bitmaps). Iceberg cubes
// are verified against the thresholded ground truth.
func (e *Engine) Verify(sampleNodes int, seed int64) (*VerifyReport, error) {
	// The manifest pins the cube's row count; load exactly that prefix via
	// the chunked scan path, ignoring rows appended later (incremental
	// updates extend the file before the cube is swapped).
	rows := int(e.Manifest().FactRows)
	ft, err := relation.LoadFactRows(e.FactPath(), int64(rows))
	if err != nil {
		return nil, err
	}
	if ft.Len() < rows {
		return nil, fmt.Errorf("query: cube expects %d fact rows, file has %d", rows, ft.Len())
	}

	var nodes []lattice.NodeID
	all := e.enum.AllNodes()
	if sampleNodes <= 0 || sampleNodes >= len(all) {
		nodes = all
	} else {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		nodes = all[:sampleNodes]
	}

	report := &VerifyReport{}
	specs := e.Manifest().AggSpecs
	hier := e.Hier()
	minCount := e.Manifest().Iceberg
	if minCount < 1 {
		minCount = 1
	}
	for _, id := range nodes {
		levels := e.enum.Decode(id, nil)
		// Ground truth for this node.
		type group struct {
			agg   *relation.Aggregator
			count int64
		}
		want := map[string]*group{}
		var keyBuf []byte
		meas := make([]float64, len(ft.Measures))
		for r := 0; r < rows; r++ {
			keyBuf = keyBuf[:0]
			for d, l := range levels {
				if hier.Dims[d].IsAll(l) {
					continue
				}
				var b [4]byte
				binary.LittleEndian.PutUint32(b[:], uint32(hier.Dims[d].MapCode(ft.Dims[d][r], l)))
				keyBuf = append(keyBuf, b[:]...)
			}
			g, ok := want[string(keyBuf)]
			if !ok {
				g = &group{agg: relation.NewAggregator(specs)}
				want[string(keyBuf)] = g
			}
			meas = ft.MeasureRow(r, meas)
			g.agg.AddValues(meas)
			g.count++
		}
		for k, g := range want {
			if g.count < minCount {
				delete(want, k)
			}
		}
		// Compare against the cube.
		seen := map[string]bool{}
		err := e.NodeQuery(id, func(row Row) error {
			keyBuf = keyBuf[:0]
			for _, d := range row.Dims {
				var b [4]byte
				binary.LittleEndian.PutUint32(b[:], uint32(d))
				keyBuf = append(keyBuf, b[:]...)
			}
			k := string(keyBuf)
			report.TuplesChecked++
			g, ok := want[k]
			if !ok {
				report.addError("node %s: unexpected tuple %v", e.enum.Name(id), row.Dims)
				return nil
			}
			if seen[k] {
				report.addError("node %s: duplicate tuple %v", e.enum.Name(id), row.Dims)
				return nil
			}
			seen[k] = true
			vals := g.agg.Values(nil)
			for i := range vals {
				if vals[i] != row.Aggrs[i] {
					report.addError("node %s tuple %v: aggregate %d is %v, want %v",
						e.enum.Name(id), row.Dims, i, row.Aggrs[i], vals[i])
					return nil
				}
			}
			return nil
		})
		if err != nil {
			// A scan that cannot even read its extents is corruption
			// evidence, not a verifier failure — compressed extents turn
			// flipped bytes into decode errors rather than bad tuples.
			report.addError("node %s: scan failed: %v", e.enum.Name(id), err)
			report.NodesChecked++
			continue
		}
		if len(seen) != len(want) {
			report.addError("node %s: cube holds %d tuples, fact table implies %d",
				e.enum.Name(id), len(seen), len(want))
		}
		report.NodesChecked++
	}
	return report, nil
}

func (r *VerifyReport) addError(format string, args ...any) {
	if len(r.Errors) < maxVerifyErrors {
		r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
	}
}
