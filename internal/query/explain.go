package query

import (
	"time"

	"cure/internal/lattice"
	"cure/internal/obsv"
	"cure/internal/storage"
)

// EXPLAIN: the engine can describe how it would answer a node query —
// which extents it touches (TT extents along the plan path, then the
// node's NT and CAT extents), what each extent's zone map prunes for the
// given predicates, whether the sorted-slot binary search narrowed the
// block range, and what the scan is estimated to cost in rows and
// bytes. With Analyze the query actually runs and the plan carries the
// measured rows, elapsed time, and per-query I/O — taken from the same
// per-query tally that settles into the registry counters, so the
// actuals equal the cure_query_* counter deltas for that query id.

// Plan is the structured EXPLAIN output for one node query.
type Plan struct {
	// QueryID is the query's id: the tracker-assigned id when the query
	// ran (Analyze), 0 for a plan-only EXPLAIN.
	QueryID  int64  `json:"query_id,omitempty"`
	Op       string `json:"op"`
	Node     int64  `json:"node"`
	NodeName string `json:"node_name"`
	Where    string `json:"where,omitempty"`
	// NoIndex reports that zone-map pruning is disabled engine-wide.
	NoIndex bool `json:"no_index,omitempty"`
	// Extents lists the scanned extents in execution order.
	Extents []PlanExtent `json:"extents"`
	// EstScanRows / EstBytes total the per-extent estimates.
	EstScanRows int64 `json:"est_scan_rows"`
	EstBytes    int64 `json:"est_bytes"`
	// Actual is present after EXPLAIN ANALYZE.
	Actual *PlanActuals `json:"actual,omitempty"`
}

// PlanExtent is one extent the scan visits.
type PlanExtent struct {
	Relation string `json:"relation"` // "tt" | "nt" | "cat"
	Node     int64  `json:"node"`
	NodeName string `json:"node_name"`
	// Rows is the extent's stored row count; ScanRows the rows left to
	// visit after zone pruning (equal when nothing prunes).
	Rows     int64 `json:"rows"`
	ScanRows int64 `json:"scan_rows"`
	// EstBytes estimates the read cost: TT extents are always fetched
	// whole; NT/CAT extents read only the kept ranges; unpinned
	// AGGREGATES lookups add one row per CAT reference. Compressed
	// extents estimate encoded bytes — the blocks overlapping the kept
	// ranges — not raw row widths.
	EstBytes int64 `json:"est_bytes"`
	// Compressed reports that the extent is stored block-compressed, so
	// the scan decodes blocks instead of reading fixed-width rows.
	Compressed bool `json:"compressed,omitempty"`
	// Access is "linear" (full scan), "zone" (zone-map block pruning),
	// or "zone+narrow" (pruning after sorted-slot binary-search
	// narrowing, the CURE+ path).
	Access string `json:"access"`
	// Zones details the pruning decision (nil when Access == "linear").
	Zones *PlanZones `json:"zones,omitempty"`
}

// PlanZones is one extent's zone-map pruning verdict.
type PlanZones struct {
	Blocks   int  `json:"blocks"`
	Kept     int  `json:"kept"`
	Skipped  int  `json:"skipped"`
	Narrowed bool `json:"narrowed"`
	// Ranges are the kept extent-row ranges the scan will visit.
	Ranges []storage.RowRange `json:"ranges"`
}

// PlanActuals is the measured side of EXPLAIN ANALYZE.
type PlanActuals struct {
	Rows      int64        `json:"rows"`
	ElapsedUs int64        `json:"elapsed_us"`
	IO        obsv.QueryIO `json:"io"`
}

// Explain plans the node query with the given predicates (nil for a
// plain node query). With analyze the query also runs — results are
// discarded — and the plan carries its actuals; the run is tracked and
// counted like any other query, under op "explain".
func (e *Engine) Explain(id lattice.NodeID, preds []Predicate, analyze bool) (*Plan, error) {
	f, levels, err := e.compileFilter(id, preds)
	if err != nil {
		return nil, err
	}
	plan := e.buildPlan(id, levels, f)
	plan.Where = e.whereString(preds)
	if !analyze {
		return plan, nil
	}
	q := e.beginQuery("explain", id, plan.Where)
	defer obsv.CapturePanic(e.reg, e.panicCtx(q, "explain", id))
	q.plan = plan
	start := time.Now()
	serr := e.scanNode(id, levels, f, q, func(Row) error { q.rows++; return nil })
	plan.QueryID = q.id
	plan.Actual = &PlanActuals{
		Rows:      q.rows,
		ElapsedUs: time.Since(start).Microseconds(),
		IO:        q.queryIO(),
	}
	if e.reg != nil {
		e.hQuery.Observe(plan.Actual.ElapsedUs)
	}
	if err := e.endQuery(q, serr); err != nil {
		return nil, err
	}
	return plan, nil
}

// buildPlan assembles the extent list the scan of (id, f) will visit,
// evaluating each extent's zone map the same way scanNode's prune does
// — same inputs, same verdicts — so a plan's kept/skipped numbers match
// the counters of the query it describes.
func (e *Engine) buildPlan(id lattice.NodeID, levels []int, f *scanFilter) *Plan {
	m := e.r.Manifest()
	hier := e.r.Hier()
	arity := 0
	for d, l := range levels {
		if !hier.Dims[d].IsAll(l) {
			arity++
		}
	}
	op := "node"
	if f != nil {
		op = "where"
	}
	plan := &Plan{
		Op:       op,
		Node:     int64(id),
		NodeName: e.nodeName(id),
		NoIndex:  e.noIndex,
	}
	zones := func(z *storage.ZoneIndex, rows int64) (*PlanZones, int64) {
		if f == nil || len(f.zp) == 0 || z == nil || e.noIndex {
			return nil, rows
		}
		ranges, st := storage.PruneZonesStats(z, rows, f.zp)
		pz := &PlanZones{
			Blocks:   st.Blocks,
			Kept:     st.Kept,
			Skipped:  st.Skipped,
			Narrowed: st.Narrowed,
			Ranges:   ranges,
		}
		return pz, st.ScanRows
	}
	access := func(pz *PlanZones) string {
		switch {
		case pz == nil:
			return "linear"
		case pz.Narrowed:
			return "zone+narrow"
		default:
			return "zone"
		}
	}
	for _, anc := range e.planPath(id, levels) {
		nm, ok := m.NodeMeta(anc)
		if !ok || nm.TTRows == 0 {
			continue
		}
		pz, scan := zones(nm.TTZones, nm.TTRows)
		plan.Extents = append(plan.Extents, PlanExtent{
			Relation:   "tt",
			Node:       int64(anc),
			NodeName:   e.nodeName(anc),
			Rows:       nm.TTRows,
			ScanRows:   scan,
			EstBytes:   nm.TTBytes(), // TT extents are fetched whole
			Compressed: nm.TTCodec != nil,
			Access:     access(pz),
			Zones:      pz,
		})
	}
	if nm, ok := m.NodeMeta(id); ok {
		// keptRanges maps a pruning verdict to the ranges a compressed
		// estimate covers (nil = the whole extent).
		keptRanges := func(pz *PlanZones) []storage.RowRange {
			if pz == nil {
				return nil
			}
			return pz.Ranges
		}
		if nm.NTRows > 0 {
			pz, scan := zones(nm.NTZones, nm.NTRows)
			est := scan * int64(m.NTRowWidth(arity))
			if nm.NTCodec != nil {
				est = nm.NTCodec.BytesForRanges(keptRanges(pz))
			}
			plan.Extents = append(plan.Extents, PlanExtent{
				Relation:   "nt",
				Node:       int64(id),
				NodeName:   plan.NodeName,
				Rows:       nm.NTRows,
				ScanRows:   scan,
				EstBytes:   est,
				Compressed: nm.NTCodec != nil,
				Access:     access(pz),
				Zones:      pz,
			})
		}
		if nm.CATRows > 0 {
			pz, scan := zones(nm.CATZones, nm.CATRows)
			est := scan * int64(m.CATRowWidth())
			if nm.CATCodec != nil {
				est = nm.CATCodec.BytesForRanges(keptRanges(pz))
			}
			if e.aggRaw == nil {
				// Unpinned AGGREGATES: every visited CAT reference costs
				// one AGGREGATES row read — estimated at the relation's
				// mean encoded row cost when it is compressed.
				aggRow := int64(m.AggRowWidth())
				if m.AggCodec != nil && m.AggRows > 0 {
					aggRow = m.AggCodec.EncodedBytes() / m.AggRows
				}
				est += scan * aggRow
			}
			plan.Extents = append(plan.Extents, PlanExtent{
				Relation:   "cat",
				Node:       int64(id),
				NodeName:   plan.NodeName,
				Rows:       nm.CATRows,
				ScanRows:   scan,
				EstBytes:   est,
				Compressed: nm.CATCodec != nil,
				Access:     access(pz),
				Zones:      pz,
			})
		}
	}
	for _, ext := range plan.Extents {
		plan.EstScanRows += ext.ScanRows
		plan.EstBytes += ext.EstBytes
	}
	return plan
}
