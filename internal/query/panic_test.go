package query

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestForEachPropagatesPanic pins the parallel scan pool's crash
// contract: a panic in any worker stops new claims, the pool drains,
// and the first panic value re-raises on the calling goroutine (where
// the engine's obsv.CapturePanic wrapper can annotate it).
func TestForEachPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		var recovered any
		func() {
			defer func() { recovered = recover() }()
			ForEach(workers, 100, func(i int) error {
				if i == 3 {
					panic("kaboom-3")
				}
				ran.Add(1)
				return nil
			})
		}()
		if recovered == nil || !strings.Contains(fmt.Sprint(recovered), "kaboom-3") {
			t.Fatalf("workers=%d: recovered %v, want the task's panic value", workers, recovered)
		}
		if n := ran.Load(); n >= 100 {
			t.Fatalf("workers=%d: all %d tasks ran despite a panic stopping claims", workers, n)
		}
	}
}
