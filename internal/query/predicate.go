package query

import (
	"fmt"
	"time"

	"cure/internal/lattice"
	"cure/internal/obsv"
	"cure/internal/storage"
)

// Predicate restricts a node query to tuples whose value of one dimension
// at some hierarchy level falls into a code set or range — the paper's
// "queries combined with some selection of specific ranges" (§7). The
// predicate level may be the node's own level or any coarser one (e.g.
// select a Division while grouping by Code).
type Predicate struct {
	// Dim is the dimension index.
	Dim int
	// Level is the hierarchy level the codes refer to.
	Level int
	// Lo and Hi bound the accepted code range, inclusive. For a single
	// value set Lo == Hi.
	Lo, Hi int32
}

// Match reports whether a code satisfies the predicate.
func (p Predicate) Match(code int32) bool { return code >= p.Lo && code <= p.Hi }

// NodeQueryWhere streams the tuples of node id that satisfy every
// predicate. Predicates are evaluated against the tuples' base-level
// source rows, so they may reference any level at or above the node's
// granularity for the dimension. CURE_DR cubes evaluate predicates on
// their inline codes and therefore only accept predicates at exactly the
// node's level for grouped dimensions.
func (e *Engine) NodeQueryWhere(id lattice.NodeID, preds []Predicate, fn func(Row) error) error {
	if len(preds) == 0 {
		return e.NodeQuery(id, fn)
	}
	f, levels, err := e.compileFilter(id, preds)
	if err != nil {
		return err
	}
	var where string
	if e.queries != nil {
		where = e.whereString(preds)
	}
	q := e.beginQuery("where", id, where)
	defer obsv.CapturePanic(e.reg, e.panicCtx(q, "where", id))
	cfn := func(r Row) error { q.rows++; return fn(r) }
	if e.reg == nil {
		return e.endQuery(q, e.scanNode(id, levels, f, q, cfn))
	}
	sp := e.reg.StartSpan("query.where")
	defer sp.End()
	start := time.Now()
	serr := e.scanNode(id, levels, f, q, cfn)
	sp.AddRowsOut(q.rows)
	e.cWhere.Inc()
	us := time.Since(start).Microseconds()
	e.hWhere.Observe(us)
	e.hQuery.Observe(us)
	return e.endQuery(q, serr)
}

// compileFilter validates preds against node id and lowers them into a
// scanFilter: tuple predicates, the CURE_DR dimension→position map, and
// (unless indexing is disabled) the zone-map slot predicates block
// pruning uses. The node's decoded levels are returned alongside.
func (e *Engine) compileFilter(id lattice.NodeID, preds []Predicate) (*scanFilter, []int, error) {
	if !e.enum.Valid(id) {
		return nil, nil, fmt.Errorf("query: invalid node id %d", id)
	}
	levels := e.enum.Decode(id, nil)
	if len(preds) == 0 {
		return nil, levels, nil
	}
	hier := e.r.Hier()
	for _, p := range preds {
		if p.Dim < 0 || p.Dim >= hier.NumDims() {
			return nil, nil, fmt.Errorf("query: predicate dimension %d out of range", p.Dim)
		}
		d := hier.Dims[p.Dim]
		if p.Level < 0 || p.Level > d.AllLevel() {
			return nil, nil, fmt.Errorf("query: predicate level %d out of range for %s", p.Level, d.Name)
		}
		if p.Level < levels[p.Dim] {
			return nil, nil, fmt.Errorf("query: predicate on %s at level %s is finer than the node's level %s",
				d.Name, d.LevelName(p.Level), d.LevelName(levels[p.Dim]))
		}
		if p.Lo > p.Hi {
			return nil, nil, fmt.Errorf("query: empty predicate range [%d,%d]", p.Lo, p.Hi)
		}
	}
	f := &scanFilter{preds: preds}
	if e.r.Manifest().DimsInline {
		// CURE_DR: predicates evaluate against inline codes, so each must
		// target exactly the node's level of a grouped dimension (coarser
		// levels would need base codes, which DR rows no longer
		// reference). Map dimension index → grouped position.
		pos := make([]int, hier.NumDims())
		idx := 0
		for d, l := range levels {
			if hier.Dims[d].IsAll(l) {
				pos[d] = -1
			} else {
				pos[d] = idx
				idx++
			}
		}
		for _, p := range preds {
			if pos[p.Dim] < 0 || p.Level != levels[p.Dim] {
				return nil, nil, fmt.Errorf("query: CURE_DR cubes only support predicates at the node's own level (dim %s, level %s)",
					hier.Dims[p.Dim].Name, hier.Dims[p.Dim].LevelName(levels[p.Dim]))
			}
		}
		f.drPos = pos
	}
	// Lower predicates onto zone-map slots. Predicates at the ALL level
	// accept everything and have no slot; they contribute no pruning.
	if !e.noIndex {
		for _, p := range preds {
			if p.Level < hier.Dims[p.Dim].AllLevel() {
				f.zp = append(f.zp, storage.ZonePred{Slot: e.zoneOffs[p.Dim] + p.Level, Lo: p.Lo, Hi: p.Hi})
			}
		}
	}
	return f, levels, nil
}

// SliceQuery is the common OLAP slice: the grouping of node id with
// dimension dim additionally fixed to a single value at the given level.
// A node that aggregates dim away cannot be filtered on it after the
// fact (its tuples mix all of dim's values), so the query is answered
// from the node that still groups dim at that level; the returned rows
// therefore include the fixed dimension's (constant) code among their
// grouping attributes.
func (e *Engine) SliceQuery(id lattice.NodeID, dim, level int, code int32, fn func(Row) error) error {
	if dim < 0 || dim >= e.r.Hier().NumDims() {
		return fmt.Errorf("query: slice dimension %d out of range", dim)
	}
	levels := e.enum.Decode(id, nil)
	if level < levels[dim] {
		// The node aggregates dim more coarsely than the slice asks for:
		// refine the grouping so the selection is answerable.
		levels[dim] = level
	}
	target := e.enum.Encode(levels)
	return e.NodeQueryWhere(target, []Predicate{{Dim: dim, Level: level, Lo: code, Hi: code}}, fn)
}
