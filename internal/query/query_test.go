package query

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cure/internal/core"
	"cure/internal/hierarchy"
	"cure/internal/relation"
)

// buildTestCube builds a small hierarchical cube and returns its
// directory.
func buildTestCube(t *testing.T, plus bool) (string, *hierarchy.Schema, *relation.FactTable) {
	t.Helper()
	m := hierarchy.BuildContiguousMap(10, 5)
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1"}, []int32{10, 5}, [][]int32{m})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := hierarchy.NewSchema(a, hierarchy.NewFlatDim("B", 4))
	if err != nil {
		t.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"A", "B"}, MeasureNames: []string{"M"}}
	// 3,000 rows span ~12 cache pages, enough for partial-cache tests to
	// exercise LRU eviction.
	const rows = 3000
	ft := relation.NewFactTable(schema, rows)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < rows; i++ {
		ft.Append([]int32{int32(rng.Intn(10)), int32(rng.Intn(4))}, []float64{float64(rng.Intn(7))})
	}
	dir := t.TempDir()
	cubeDir := filepath.Join(dir, "cube")
	_, err = core.BuildFromTable(ft, core.Options{
		Dir:  cubeDir,
		Hier: hier,
		AggSpecs: []relation.AggSpec{
			{Func: relation.AggSum, Measure: 0},
			{Func: relation.AggCount},
		},
		Plus:        plus,
		Compression: testCompression(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cubeDir, hier, ft
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Error("empty dir opened")
	}
}

func TestNodeQueryInvalidID(t *testing.T) {
	dir, _, _ := buildTestCube(t, false)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.NodeQuery(-1, func(Row) error { return nil }); err == nil {
		t.Error("negative node id accepted")
	}
	if err := eng.NodeQuery(999, func(Row) error { return nil }); err == nil {
		t.Error("out-of-range node id accepted")
	}
}

func TestCacheFractionsAgree(t *testing.T) {
	dir, _, _ := buildTestCube(t, false)
	// All cache settings must return identical result multisets.
	counts := map[float64]int{}
	sums := map[float64]float64{}
	for _, frac := range []float64{0, 0.3, 1} {
		eng, err := Open(dir, Options{CacheFraction: frac, PinAggregates: frac > 0.5})
		if err != nil {
			t.Fatal(err)
		}
		for id := int64(0); id < 6; id++ {
			if err := eng.NodeQuery(eng.Enum().AllNodes()[id], func(row Row) error {
				counts[frac]++
				sums[frac] += row.Aggrs[0]
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		hits, misses := eng.CacheStats()
		if frac == 0 && hits != 0 {
			t.Errorf("zero cache recorded %d hits", hits)
		}
		if frac == 1 && misses > hits && counts[frac] > 100 {
			t.Errorf("full cache: %d hits, %d misses", hits, misses)
		}
		eng.Close()
	}
	if counts[0] != counts[0.3] || counts[0.3] != counts[1] {
		t.Errorf("row counts differ across cache settings: %v", counts)
	}
	if sums[0] != sums[0.3] || sums[0.3] != sums[1] {
		t.Errorf("aggregates differ across cache settings: %v", sums)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	dir, _, _ := buildTestCube(t, false)
	eng, err := Open(dir, Options{CacheFraction: 0.4, PinAggregates: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Run several node queries; the cache must stay within its budget
	// and keep answering correctly.
	for pass := 0; pass < 3; pass++ {
		for _, id := range eng.Enum().AllNodes() {
			if err := eng.NodeQuery(id, func(Row) error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
	}
	hits, misses := eng.CacheStats()
	if hits == 0 || misses == 0 {
		t.Errorf("partial cache produced hits=%d misses=%d", hits, misses)
	}
}

func TestManifestAndFormatExposed(t *testing.T) {
	dir, _, _ := buildTestCube(t, true)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Manifest() == nil || !eng.Manifest().Plus {
		t.Error("manifest not exposed or Plus lost")
	}
	_ = eng.Format() // any locked format is fine; must not panic
}

func TestNodeCountWithoutMaterialization(t *testing.T) {
	dir, _, _ := buildTestCube(t, false)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, id := range eng.Enum().AllNodes() {
		want := 0
		if err := eng.NodeQuery(id, func(Row) error { want++; return nil }); err != nil {
			t.Fatal(err)
		}
		got, err := eng.NodeCount(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(want) {
			t.Errorf("node %s: NodeCount = %d, enumerated %d", eng.Enum().Name(id), got, want)
		}
	}
}

func TestVerifyCleanCube(t *testing.T) {
	dir, _, _ := buildTestCube(t, true)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rep, err := eng.Verify(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean cube failed verification: %v", rep.Errors)
	}
	if rep.NodesChecked != int(eng.Enum().NumNodes()) || rep.TuplesChecked == 0 {
		t.Errorf("report = %+v", rep)
	}
	// Sampled verification checks fewer nodes.
	rep2, err := eng.Verify(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.NodesChecked != 2 {
		t.Errorf("sampled %d nodes, want 2", rep2.NodesChecked)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	dir, _, _ := buildTestCube(t, false)
	// Corrupt the NT relation: flip bytes in the middle of the file.
	ntPath := filepath.Join(dir, "nt.bin")
	data, err := os.ReadFile(ntPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 24 {
		t.Skip("NT relation too small to corrupt")
	}
	for i := 8; i < 24; i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(ntPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rep, err := eng.Verify(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("corrupted cube passed verification")
	}
}

func TestDiffEquivalentAndDivergent(t *testing.T) {
	dirA, hier, ft := buildTestCube(t, false)
	// Same data, different variant (CURE+): query-equivalent.
	dirB := filepath.Join(t.TempDir(), "plus")
	if _, err := core.BuildFromTable(ft, core.Options{
		Dir: dirB, Hier: hier,
		AggSpecs: []relation.AggSpec{
			{Func: relation.AggSum, Measure: 0},
			{Func: relation.AggCount},
		},
		Plus: true,
	}); err != nil {
		t.Fatal(err)
	}
	a, err := OpenDefault(dirA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenDefault(dirB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rep, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equal() {
		t.Fatalf("equivalent cubes reported different: %v", rep.Differences)
	}
	if rep.TuplesA != rep.TuplesB || rep.TuplesA == 0 {
		t.Errorf("tuple counts: %d vs %d", rep.TuplesA, rep.TuplesB)
	}

	// Different data: divergent.
	ft2 := relation.NewFactTable(ft.Schema, ft.Len())
	dims := make([]int32, 2)
	meas := make([]float64, 1)
	for r := 0; r < ft.Len(); r++ {
		dims = ft.DimRow(r, dims)
		meas = ft.MeasureRow(r, meas)
		meas[0]++ // shift every measure
		ft2.Append(dims, meas)
	}
	dirC := filepath.Join(t.TempDir(), "shifted")
	if _, err := core.BuildFromTable(ft2, core.Options{
		Dir: dirC, Hier: hier,
		AggSpecs: []relation.AggSpec{
			{Func: relation.AggSum, Measure: 0},
			{Func: relation.AggCount},
		},
	}); err != nil {
		t.Fatal(err)
	}
	c, err := OpenDefault(dirC)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep2, err := Diff(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Equal() {
		t.Error("divergent cubes reported equal")
	}
}
