package query

import (
	"container/list"
	"sync"
	"sync/atomic"

	"cure/internal/obsv"
	"cure/internal/storage"
)

// defaultBlockCacheBytes is the decoded-block cache budget when the
// option is left zero: enough for the hot blocks of the workload's
// working set without competing with the fact-page cache for memory.
const defaultBlockCacheBytes = 32 << 20

// blockCache is a sharded LRU cache of decoded extent blocks, bounded by
// a raw-equivalent-bytes budget. It implements storage.BlockCache: the
// reader consults it before reading or decoding a compressed block, so a
// hit costs neither the pread nor the decode. Cached blocks are shared
// immutably between queries — the reader decodes misses into fresh
// blocks when a cache is attached, never into reused scratch.
type blockCache struct {
	shards []blockShard
	hits   atomic.Int64
	misses atomic.Int64
	// Bound registry counters (nil-safe no-ops without a registry).
	cHits, cMisses, cEvicts *obsv.Counter
}

type blockShard struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	blocks   map[blockKey]*list.Element
	lru      *list.List // front = most recent
}

type blockKey struct {
	rel   uint8
	node  int64
	block int
}

type blockEntry struct {
	key   blockKey
	db    *storage.DecodedBlock
	bytes int64
}

// newBlockCache builds a decoded-block cache with the given budget in
// raw-equivalent bytes (0 = defaultBlockCacheBytes, negative = disabled,
// returning nil).
func newBlockCache(budget int64, reg *obsv.Registry) *blockCache {
	if budget < 0 {
		return nil
	}
	if budget == 0 {
		budget = defaultBlockCacheBytes
	}
	numShards := maxCacheShards
	c := &blockCache{
		shards:  make([]blockShard, numShards),
		cHits:   reg.Counter("query.block_cache.hits"),
		cMisses: reg.Counter("query.block_cache.misses"),
		cEvicts: reg.Counter("query.block_cache.evictions"),
	}
	for i := range c.shards {
		c.shards[i] = blockShard{
			maxBytes: budget / int64(numShards),
			blocks:   map[blockKey]*list.Element{},
			lru:      list.New(),
		}
	}
	reg.Gauge("query.block_cache.budget_bytes").Set(budget)
	return c
}

func (c *blockCache) shard(k blockKey) *blockShard {
	h := uint64(k.node)*31 + uint64(k.block)*7 + uint64(k.rel)
	return &c.shards[h%uint64(len(c.shards))]
}

// GetBlock returns the cached decoded block or nil. The returned block
// is shared — callers must treat it as immutable.
func (c *blockCache) GetBlock(rel uint8, node int64, block int) *storage.DecodedBlock {
	k := blockKey{rel: rel, node: node, block: block}
	s := c.shard(k)
	s.mu.Lock()
	if el, ok := s.blocks[k]; ok {
		s.lru.MoveToFront(el)
		db := el.Value.(*blockEntry).db
		s.mu.Unlock()
		c.hits.Add(1)
		c.cHits.Inc()
		return db
	}
	s.mu.Unlock()
	c.misses.Add(1)
	c.cMisses.Inc()
	return nil
}

// PutBlock inserts a freshly decoded block, evicting LRU entries until
// the shard fits its budget. Blocks larger than the whole shard budget
// are not cached at all.
func (c *blockCache) PutBlock(rel uint8, node int64, block int, db *storage.DecodedBlock, decodedBytes int64) {
	k := blockKey{rel: rel, node: node, block: block}
	s := c.shard(k)
	if decodedBytes > s.maxBytes {
		return
	}
	s.mu.Lock()
	if _, ok := s.blocks[k]; ok {
		// Concurrent missers of one block insert once; the losers' decodes
		// are counted as the misses they were.
		s.mu.Unlock()
		return
	}
	for s.bytes+decodedBytes > s.maxBytes && s.lru.Len() > 0 {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		ent := oldest.Value.(*blockEntry)
		delete(s.blocks, ent.key)
		s.bytes -= ent.bytes
		c.cEvicts.Inc()
	}
	s.blocks[k] = s.lru.PushFront(&blockEntry{key: k, db: db, bytes: decodedBytes})
	s.bytes += decodedBytes
	s.mu.Unlock()
}

// Stats returns decoded-block cache hits and misses.
func (c *blockCache) Stats() (hits, misses int64) { return c.hits.Load(), c.misses.Load() }
