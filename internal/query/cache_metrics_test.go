package query

import (
	"math/rand"
	"path/filepath"
	"testing"

	"cure/internal/core"
	"cure/internal/hierarchy"
	"cure/internal/obsv"
	"cure/internal/relation"
)

// queryAll runs a node query over every lattice node.
func queryAll(t *testing.T, eng *Engine) {
	t.Helper()
	for _, id := range eng.Enum().AllNodes() {
		if err := eng.NodeQuery(id, func(Row) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheMetricsFullCache checks that the registry's cache counters
// track the engine's own CacheStats exactly: with the full table cached a
// second pass is all hits and nothing is ever evicted.
func TestCacheMetricsFullCache(t *testing.T) {
	dir, _, _ := buildTestCube(t, false)
	reg := obsv.NewRegistry()
	eng, err := Open(dir, Options{CacheFraction: 1, PinAggregates: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	queryAll(t, eng)
	snap := reg.Snapshot()
	firstMisses := snap.Counters["query.cache.misses"]
	if firstMisses == 0 {
		t.Fatal("cold cache recorded no misses")
	}
	if snap.Counters["query.cache.evictions"] != 0 {
		t.Fatalf("full cache evicted %d pages", snap.Counters["query.cache.evictions"])
	}

	queryAll(t, eng)
	snap = reg.Snapshot()
	if snap.Counters["query.cache.misses"] != firstMisses {
		t.Fatalf("warm pass missed: %d → %d", firstMisses, snap.Counters["query.cache.misses"])
	}
	if snap.Counters["query.cache.hits"] == 0 {
		t.Fatal("warm pass recorded no hits")
	}

	// The counters must agree with the engine's CacheStats API.
	hits, misses := eng.CacheStats()
	if snap.Counters["query.cache.hits"] != hits || snap.Counters["query.cache.misses"] != misses {
		t.Fatalf("registry (%d, %d) != CacheStats (%d, %d)",
			snap.Counters["query.cache.hits"], snap.Counters["query.cache.misses"], hits, misses)
	}

	// Query-level metrics ride along: one count per node query, rows and
	// latency observed.
	nodes := int64(len(eng.Enum().AllNodes()))
	if got := snap.Counters["query.node.count"]; got != 2*nodes {
		t.Fatalf("query.node.count = %d, want %d", got, 2*nodes)
	}
	if snap.Counters["query.rows"] == 0 {
		t.Fatal("query.rows not counted")
	}
	var lat *obsv.HistogramSnapshot
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "query.node.latency_us" {
			lat = &snap.Histograms[i]
		}
	}
	if lat == nil || lat.Count != 2*nodes {
		t.Fatalf("latency histogram = %+v, want count %d", lat, 2*nodes)
	}
}

// buildWideCube builds a cube whose finest level has ~2,500 groups over
// 3,000 rows, so the minimum source row-ids the tuples dereference spread
// across the whole fact file (a tiny cube keeps all minima in page 0 and
// a partial cache never evicts).
func buildWideCube(t *testing.T) string {
	t.Helper()
	hier, err := hierarchy.NewSchema(hierarchy.NewFlatDim("A", 50), hierarchy.NewFlatDim("B", 50))
	if err != nil {
		t.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"A", "B"}, MeasureNames: []string{"M"}}
	const rows = 3000
	ft := relation.NewFactTable(schema, rows)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < rows; i++ {
		ft.Append([]int32{int32(rng.Intn(50)), int32(rng.Intn(50))}, []float64{float64(rng.Intn(7))})
	}
	dir := filepath.Join(t.TempDir(), "cube")
	if _, err := core.BuildFromTable(ft, core.Options{
		Dir:         dir,
		Hier:        hier,
		AggSpecs:    []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}},
		Compression: testCompression(),
	}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCacheMetricsEviction checks that a cache smaller than the working
// set records evictions.
func TestCacheMetricsEviction(t *testing.T) {
	dir := buildWideCube(t)
	reg := obsv.NewRegistry()
	eng, err := Open(dir, Options{CacheFraction: 0.25, PinAggregates: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for pass := 0; pass < 3; pass++ {
		queryAll(t, eng)
	}
	snap := reg.Snapshot()
	if snap.Counters["query.cache.evictions"] == 0 {
		t.Fatal("undersized cache recorded no evictions")
	}
	if snap.Counters["query.cache.hits"] == 0 || snap.Counters["query.cache.misses"] == 0 {
		t.Fatalf("hits=%d misses=%d", snap.Counters["query.cache.hits"], snap.Counters["query.cache.misses"])
	}
}

// TestCacheMetricsDisabledCache checks that with caching off every access
// is a miss and nothing is stored or evicted.
func TestCacheMetricsDisabledCache(t *testing.T) {
	dir, _, _ := buildTestCube(t, false)
	reg := obsv.NewRegistry()
	eng, err := Open(dir, Options{CacheFraction: 0, PinAggregates: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for pass := 0; pass < 2; pass++ {
		queryAll(t, eng)
	}
	snap := reg.Snapshot()
	if snap.Counters["query.cache.hits"] != 0 {
		t.Fatalf("disabled cache recorded %d hits", snap.Counters["query.cache.hits"])
	}
	if snap.Counters["query.cache.evictions"] != 0 {
		t.Fatalf("disabled cache recorded %d evictions", snap.Counters["query.cache.evictions"])
	}
	if snap.Counters["query.cache.misses"] == 0 {
		t.Fatal("disabled cache recorded no misses")
	}
}

// TestQueryNilRegistry checks that the engine works (and stays silent)
// without a registry — the zero-overhead default path.
func TestQueryNilRegistry(t *testing.T) {
	dir, _, _ := buildTestCube(t, false)
	eng, err := Open(dir, Options{CacheFraction: 1, PinAggregates: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	queryAll(t, eng)
	if hits, misses := eng.CacheStats(); hits+misses == 0 {
		t.Fatal("CacheStats empty — queries did not touch the fact cache")
	}
}
