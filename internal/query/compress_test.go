package query

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"cure/internal/core"
	"cure/internal/hierarchy"
	"cure/internal/obsv"
	"cure/internal/relation"
)

// testCompression returns the Compression mode the cube-building test
// helpers pass to core: the CURE_TEST_COMPRESSION env var when set
// ("none" or "auto"), the fixed-width v1 default otherwise. CI runs the
// query suites once per mode, so every test in this package doubles as a
// compressed-format regression test.
func testCompression() string { return os.Getenv("CURE_TEST_COMPRESSION") }

// buildTwin builds a cube over ft with the given compression mode.
func buildTwin(t *testing.T, ft *relation.FactTable, hier *hierarchy.Schema, mode string, plus bool) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "cube")
	if _, err := core.BuildFromTable(ft, core.Options{
		Dir: dir, Hier: hier,
		AggSpecs: []relation.AggSpec{
			{Func: relation.AggSum, Measure: 0},
			{Func: relation.AggCount},
		},
		Plus:          plus,
		ZoneBlockRows: 32,
		Compression:   mode,
	}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCompressedQueryEquivalence is the tentpole acceptance check: a
// compressed cube answers every node query byte-identically to its
// uncompressed twin, across the Diff sweep and at C = 1, 4, 16
// concurrent clients (an undersized decoded-block cache keeps evictions
// racing shared-block readers under -race).
func TestCompressedQueryEquivalence(t *testing.T) {
	for _, plus := range []bool{false, true} {
		t.Run(fmt.Sprintf("plus=%v", plus), func(t *testing.T) {
			_, hier, ft := buildTestCube(t, plus)
			dirNone := buildTwin(t, ft, hier, "none", plus)
			dirAuto := buildTwin(t, ft, hier, "auto", plus)

			none, err := OpenDefault(dirNone)
			if err != nil {
				t.Fatal(err)
			}
			defer none.Close()
			reg := obsv.NewRegistry()
			auto, err := Open(dirAuto, Options{
				CacheFraction: 1, PinAggregates: true, Metrics: reg,
				DecodedCacheBytes: 64 << 10, // undersized: force evictions
			})
			if err != nil {
				t.Fatal(err)
			}
			defer auto.Close()

			if none.Manifest().Compressed() || !auto.Manifest().Compressed() {
				t.Fatalf("compression flags: none=%q auto=%q",
					none.Manifest().Compression, auto.Manifest().Compression)
			}
			rep, err := Diff(none, auto)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Equal() {
				t.Fatalf("compressed cube differs: %v", rep.Differences)
			}

			nodes := none.Enum().AllNodes()
			want := make([][]string, len(nodes))
			for i := range nodes {
				want[i] = collectNode(t, none, int64(i))
			}
			for _, c := range []int{1, 4, 16} {
				got := make([][]string, len(nodes))
				var mu sync.Mutex
				if err := auto.NodeQueryBatch(c, nodes, func(qi int, r Row) error {
					s := fmt.Sprintf("%v|%v|%d", r.Dims, r.Aggrs, r.RRowid)
					mu.Lock()
					got[qi] = append(got[qi], s)
					mu.Unlock()
					return nil
				}); err != nil {
					t.Fatalf("C=%d: %v", c, err)
				}
				for qi := range nodes {
					sort.Strings(got[qi])
					if len(got[qi]) != len(want[qi]) {
						t.Fatalf("C=%d node %d: %d rows, want %d", c, qi, len(got[qi]), len(want[qi]))
					}
					for i := range want[qi] {
						if got[qi][i] != want[qi][i] {
							t.Fatalf("C=%d node %d row %d: %q != %q", c, qi, i, got[qi][i], want[qi][i])
						}
					}
				}
			}
			snap := reg.Snapshot()
			if snap.Counters["query.bytes_decoded"] == 0 {
				t.Error("compressed scans attributed no decoded bytes")
			}
			if snap.Counters["query.block_cache.hits"] == 0 {
				t.Error("repeated scans never hit the decoded-block cache")
			}
		})
	}
}

// TestV1CubeFixtureCompat pins the backward-compat story: a cube built
// with Compression "none" is a byte-for-byte v1 directory (manifest
// version 1, no codec metadata) and the same Engine opens and queries it
// without ever touching a decode path.
func TestV1CubeFixtureCompat(t *testing.T) {
	_, hier, ft := buildTestCube(t, false)
	dir := buildTwin(t, ft, hier, "none", false)
	reg := obsv.NewRegistry()
	eng, err := Open(dir, Options{CacheFraction: 1, PinAggregates: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	m := eng.Manifest()
	if m.Version != 1 || m.Compressed() || m.AggCodec != nil {
		t.Fatalf("v1 fixture: version=%d compression=%q aggCodec=%v", m.Version, m.Compression, m.AggCodec)
	}
	for _, nm := range m.Nodes {
		if nm.NTCodec != nil || nm.TTCodec != nil || nm.CATCodec != nil {
			t.Fatal("v1 fixture carries codec metadata")
		}
	}
	rows := 0
	for i := range eng.Enum().AllNodes() {
		rows += len(collectNode(t, eng, int64(i)))
	}
	if rows == 0 {
		t.Fatal("v1 cube returned no rows")
	}
	snap := reg.Snapshot()
	if snap.Counters["query.bytes_decoded"] != 0 {
		t.Errorf("v1 reads decoded %d bytes", snap.Counters["query.bytes_decoded"])
	}
	if snap.Counters["query.bytes_read"] == 0 {
		t.Error("v1 reads attributed no bytes")
	}
}

// TestExplainCompressedEstimates checks the EXPLAIN story on a
// compressed cube: extents are marked compressed, byte estimates come
// from the codec's block offsets (encoded bytes, not raw row widths),
// and ANALYZE actuals carry the decoded bytes that settle into the
// query.bytes_decoded counter.
func TestExplainCompressedEstimates(t *testing.T) {
	_, hier, ft := buildIndexedCube(t, false)
	dir := filepath.Join(t.TempDir(), "cube")
	if _, err := core.BuildFromTable(ft, core.Options{
		Dir: dir, Hier: hier,
		AggSpecs:      []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}},
		ZoneBlockRows: 8,
		Compression:   "auto",
	}); err != nil {
		t.Fatal(err)
	}
	reg := obsv.NewRegistry()
	eng, err := Open(dir, Options{CacheFraction: 1, PinAggregates: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	node := eng.Enum().Encode([]int{0, 0})
	preds := []Predicate{{Dim: 0, Level: 0, Lo: 5, Hi: 10}}
	before := reg.Snapshot().Counters
	plan, err := eng.Explain(node, preds, true)
	if err != nil {
		t.Fatal(err)
	}
	after := reg.Snapshot().Counters

	m := eng.Manifest()
	arity := 2
	for _, ext := range plan.Extents {
		if !ext.Compressed {
			t.Errorf("extent %s/%d not marked compressed", ext.Relation, ext.Node)
		}
		if ext.EstBytes <= 0 {
			t.Errorf("extent %s/%d: est %d bytes", ext.Relation, ext.Node, ext.EstBytes)
		}
		if ext.Relation == "nt" && ext.EstBytes >= ext.Rows*int64(m.NTRowWidth(arity)) {
			t.Errorf("nt estimate %d not below raw extent size %d",
				ext.EstBytes, ext.Rows*int64(m.NTRowWidth(arity)))
		}
	}
	io := plan.Actual.IO
	if io.BytesDecoded == 0 {
		t.Error("compressed ANALYZE decoded no bytes")
	}
	if got := after["query.bytes_decoded"] - before["query.bytes_decoded"]; io.BytesDecoded != got {
		t.Errorf("bytes decoded: plan %d, counter delta %d", io.BytesDecoded, got)
	}
}

// TestBlockCacheDisabled pins the negative budget: the engine attaches
// no decoded-block cache, and every block read decodes.
func TestBlockCacheDisabled(t *testing.T) {
	_, hier, ft := buildTestCube(t, false)
	dir := buildTwin(t, ft, hier, "auto", false)
	reg := obsv.NewRegistry()
	eng, err := Open(dir, Options{
		CacheFraction: 1, PinAggregates: true, Metrics: reg,
		DecodedCacheBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	queryAll(t, eng)
	queryAll(t, eng)
	snap := reg.Snapshot()
	if snap.Counters["query.block_cache.hits"] != 0 {
		t.Errorf("disabled cache recorded %d hits", snap.Counters["query.block_cache.hits"])
	}
	if snap.Counters["query.bytes_decoded"] == 0 {
		t.Error("compressed scans attributed no decoded bytes")
	}
}
