// Package query answers node queries over materialized CURE cubes: it
// reassembles each node's tuples from its NT/TT/CAT relations (collecting
// shared trivial tuples along the execution-plan path), dereferences
// R-rowids against the original fact table through a budgeted page cache
// (§5.3 identifies the fact table and AGGREGATES as the two relations
// worth caching), and provides iceberg count queries and roll-up /
// drill-down navigation. The engine is safe for concurrent use: any
// number of goroutines may run queries over one Engine.
package query

import (
	"container/list"
	"sync"
	"sync/atomic"

	"cure/internal/obsv"
	"cure/internal/relation"
)

// cachePageRows is the number of fact rows per cache page.
const cachePageRows = 256

// maxCacheShards caps the lock striping of the fact cache; the effective
// shard count never exceeds the page budget, so tiny caches (the
// Figure 17 low-fraction points) keep their eviction behavior instead of
// degenerating into one page per shard.
const maxCacheShards = 16

// factCache is a sharded LRU page cache over a fact file, sized as a
// fraction of the table (the x-axis of the paper's Figure 17). Pages are
// striped over the shards by page id; each shard holds its own map, LRU
// list, and mutex, so concurrent queries contend only when they touch
// the same stripe. Rows are copied out to the caller — handing out
// slices of page memory would let an eviction on another goroutine race
// the reader.
type factCache struct {
	fr       *relation.FactReader
	rowWidth int
	rows     int64
	shards   []cacheShard
	hits     atomic.Int64
	misses   atomic.Int64
	// Bound registry counters (nil-safe no-ops without a registry).
	cHits, cMisses, cEvicts *obsv.Counter
}

type cacheShard struct {
	mu       sync.Mutex
	maxPages int
	pages    map[int64]*list.Element
	lru      *list.List // front = most recent
}

type cachePage struct {
	id   int64
	data []byte
}

// newFactCache builds a cache holding at most fraction of the file's
// pages (fraction is clamped to [0, 1]; 0 disables caching).
func newFactCache(fr *relation.FactReader, fraction float64, reg *obsv.Registry) *factCache {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	totalPages := (fr.Rows() + cachePageRows - 1) / cachePageRows
	maxPages := int(float64(totalPages) * fraction)
	c := &factCache{
		fr:       fr,
		rowWidth: fr.RowWidth(),
		rows:     fr.Rows(),
		cHits:    reg.Counter("query.cache.hits"),
		cMisses:  reg.Counter("query.cache.misses"),
		cEvicts:  reg.Counter("query.cache.evictions"),
	}
	if maxPages > 0 {
		numShards := maxPages
		if numShards > maxCacheShards {
			numShards = maxCacheShards
		}
		c.shards = make([]cacheShard, numShards)
		for i := range c.shards {
			budget := maxPages / numShards
			if i < maxPages%numShards {
				budget++
			}
			c.shards[i] = cacheShard{
				maxPages: budget,
				pages:    map[int64]*list.Element{},
				lru:      list.New(),
			}
		}
	}
	reg.Gauge("query.cache.shards").Set(int64(len(c.shards)))
	return c
}

// readRow copies the raw bytes of fact row rrowid into dst (rowWidth
// bytes), reading through the cache, attributing the access to q (nil
// disables attribution). Safe for concurrent use — q belongs to the
// calling query's goroutine.
func (c *factCache) readRow(rrowid int64, dst []byte, q *qctx) error {
	pageID := rrowid / cachePageRows
	off := int(rrowid%cachePageRows) * c.rowWidth
	if len(c.shards) == 0 {
		// Caching disabled: read just the one row.
		c.misses.Add(1)
		c.cMisses.Inc()
		if q != nil {
			q.pagesFaulted++
			q.io.Add(int64(c.rowWidth))
		}
		return c.fr.ReadRawAt(rrowid, 1, dst[:c.rowWidth])
	}
	s := &c.shards[pageID%int64(len(c.shards))]
	s.mu.Lock()
	if el, ok := s.pages[pageID]; ok {
		s.lru.MoveToFront(el)
		copy(dst, el.Value.(*cachePage).data[off:off+c.rowWidth])
		s.mu.Unlock()
		c.hits.Add(1)
		c.cHits.Inc()
		if q != nil {
			q.cacheHits++
		}
		return nil
	}
	s.mu.Unlock()
	c.misses.Add(1)
	c.cMisses.Inc()
	// Fetch the page outside the shard lock — a miss costs one pread and
	// must not serialize the stripe's hits behind it.
	first := pageID * cachePageRows
	count := int64(cachePageRows)
	if first+count > c.rows {
		count = c.rows - first
	}
	data := make([]byte, int(count)*c.rowWidth)
	if err := c.fr.ReadRawAt(first, int(count), data); err != nil {
		return err
	}
	if q != nil {
		q.pagesFaulted++
		q.io.Add(int64(len(data)))
	}
	copy(dst, data[off:off+c.rowWidth])
	s.mu.Lock()
	if _, ok := s.pages[pageID]; !ok {
		// Concurrent missers of one page insert once; the losers' reads
		// are counted as the misses they were.
		if s.lru.Len() >= s.maxPages {
			oldest := s.lru.Back()
			s.lru.Remove(oldest)
			delete(s.pages, oldest.Value.(*cachePage).id)
			c.cEvicts.Inc()
		}
		s.pages[pageID] = s.lru.PushFront(&cachePage{id: pageID, data: data})
	}
	s.mu.Unlock()
	return nil
}

// Stats returns cache hits and misses.
func (c *factCache) Stats() (hits, misses int64) { return c.hits.Load(), c.misses.Load() }
