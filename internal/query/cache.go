// Package query answers node queries over materialized CURE cubes: it
// reassembles each node's tuples from its NT/TT/CAT relations (collecting
// shared trivial tuples along the execution-plan path), dereferences
// R-rowids against the original fact table through a budgeted page cache
// (§5.3 identifies the fact table and AGGREGATES as the two relations
// worth caching), and provides iceberg count queries and roll-up /
// drill-down navigation.
package query

import (
	"container/list"

	"cure/internal/obsv"
	"cure/internal/relation"
)

// cachePageRows is the number of fact rows per cache page.
const cachePageRows = 256

// factCache is an LRU page cache over a fact file, sized as a fraction of
// the table (the x-axis of the paper's Figure 17).
type factCache struct {
	fr       *relation.FactReader
	rowWidth int
	maxPages int
	pages    map[int64]*list.Element
	lru      *list.List // front = most recent
	hits     int64
	misses   int64
	// Bound registry counters (nil-safe no-ops without a registry).
	cHits, cMisses, cEvicts *obsv.Counter
}

type cachePage struct {
	id   int64
	data []byte
}

// newFactCache builds a cache holding at most fraction of the file's
// pages (fraction is clamped to [0, 1]; 0 disables caching).
func newFactCache(fr *relation.FactReader, fraction float64, reg *obsv.Registry) *factCache {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	totalPages := (fr.Rows() + cachePageRows - 1) / cachePageRows
	return &factCache{
		fr:       fr,
		rowWidth: fr.RowWidth(),
		maxPages: int(float64(totalPages) * fraction),
		pages:    map[int64]*list.Element{},
		lru:      list.New(),
		cHits:    reg.Counter("query.cache.hits"),
		cMisses:  reg.Counter("query.cache.misses"),
		cEvicts:  reg.Counter("query.cache.evictions"),
	}
}

// row returns the raw bytes of fact row rrowid, reading through the cache.
// The returned slice aliases cache memory and is valid until the next call.
func (c *factCache) row(rrowid int64) ([]byte, error) {
	pageID := rrowid / cachePageRows
	off := int(rrowid%cachePageRows) * c.rowWidth
	if el, ok := c.pages[pageID]; ok {
		c.hits++
		c.cHits.Inc()
		c.lru.MoveToFront(el)
		return el.Value.(*cachePage).data[off : off+c.rowWidth], nil
	}
	c.misses++
	c.cMisses.Inc()
	first := pageID * cachePageRows
	count := int64(cachePageRows)
	if first+count > c.fr.Rows() {
		count = c.fr.Rows() - first
	}
	data := make([]byte, int(count)*c.rowWidth)
	if err := c.fr.ReadRawAt(first, int(count), data); err != nil {
		return nil, err
	}
	if c.maxPages > 0 {
		if c.lru.Len() >= c.maxPages {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.pages, oldest.Value.(*cachePage).id)
			c.cEvicts.Inc()
		}
		c.pages[pageID] = c.lru.PushFront(&cachePage{id: pageID, data: data})
	}
	return data[off : off+c.rowWidth], nil
}

// Stats returns cache hits and misses.
func (c *factCache) Stats() (hits, misses int64) { return c.hits, c.misses }
