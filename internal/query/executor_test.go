package query

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"cure/internal/obsv"
)

func TestForEachStopsOnFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4, 16} {
		var ran atomic.Int64
		err := ForEach(workers, 1000, func(i int) error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
		// The first error stops new claims; only in-flight tasks finish,
		// so nothing close to the full range runs.
		if n := ran.Load(); n >= 1000 {
			t.Fatalf("workers=%d: %d tasks ran after the error", workers, n)
		}
	}
}

func TestForEachJoinsConcurrentErrors(t *testing.T) {
	// Force several workers to fail in the same round: everyone blocks on
	// the barrier until all claims are taken, then all fail at once.
	const workers = 4
	barrier := make(chan struct{})
	var arrived atomic.Int64
	err := ForEach(workers, workers, func(i int) error {
		if arrived.Add(1) == workers {
			close(barrier)
		}
		<-barrier
		return fmt.Errorf("task %d failed", i)
	})
	if err == nil {
		t.Fatal("ForEach swallowed the errors")
	}
	for i := 0; i < workers; i++ {
		want := fmt.Sprintf("task %d failed", i)
		if !containsError(err, want) {
			t.Errorf("joined error %q missing %q", err, want)
		}
	}
}

func containsError(err error, msg string) bool {
	if err == nil {
		return false
	}
	if err.Error() == msg {
		return true
	}
	// errors.Join concatenates messages with newlines.
	for _, line := range splitLines(err.Error()) {
		if line == msg {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func TestForEachEdgeCases(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	var seen atomic.Int64
	if err := ForEach(0, 10, func(int) error { seen.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if seen.Load() != 10 {
		t.Fatalf("workers=0 ran %d of 10 tasks", seen.Load())
	}
	// Sequential path returns the error immediately.
	calls := 0
	err := ForEach(1, 10, func(i int) error {
		calls++
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || calls != 3 {
		t.Fatalf("sequential: err=%v calls=%d", err, calls)
	}
}

// TestNodeQueryBatchErrorPaths drives batch queries whose consumer fails
// mid-stream and checks the engine's tracking stays consistent: the
// error propagates, nothing stays in-flight, and the inflight gauge
// settles at zero. Run with -race this also checks the error path is
// race-clean.
func TestNodeQueryBatchErrorPaths(t *testing.T) {
	dir, _, _ := buildPredCube(t, false)
	reg := obsv.NewRegistry()
	tracker := obsv.NewQueryTracker(reg, 32)
	eng, err := Open(dir, Options{CacheFraction: 1, PinAggregates: true, Metrics: reg, Queries: tracker})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ids := eng.Enum().AllNodes()
	for _, workers := range []int{1, 4, 16} {
		cancel := errors.New("consumer gave up")
		err := eng.NodeQueryBatch(workers, ids, func(qi int, r Row) error {
			if qi == len(ids)/2 {
				return cancel
			}
			return nil
		})
		if !errors.Is(err, cancel) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if n := len(tracker.Inflight()); n != 0 {
			t.Fatalf("workers=%d: %d queries in-flight after failed batch", workers, n)
		}
		if g := reg.Snapshot().Gauges["query.inflight"]; g != 0 {
			t.Fatalf("workers=%d: inflight gauge = %d", workers, g)
		}
	}

	// The failed queries landed in the ring with their error recorded.
	var failed int
	for _, rec := range tracker.Recent() {
		if rec.Err != "" {
			failed++
			if rec.Err != "consumer gave up" {
				t.Fatalf("recorded error = %q", rec.Err)
			}
		}
	}
	if failed == 0 {
		t.Fatal("no failed query recorded in the ring")
	}

	// A clean batch over the same engine still works after the failures.
	var rows atomic.Int64
	if err := eng.NodeQueryBatch(4, ids, func(int, Row) error { rows.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if rows.Load() == 0 {
		t.Fatal("clean batch returned no rows")
	}
}
