package query

import (
	"math/rand"
	"path/filepath"
	"testing"

	"cure/internal/core"
	"cure/internal/hierarchy"
	"cure/internal/relation"
)

// buildComplexCube builds a cube whose first dimension has a complex
// hierarchy: Day rolls up into both Week and Month (siblings, neither a
// refinement of the other), the shape CURE's modified rule 2 handles.
func buildComplexCube(t *testing.T) (string, *hierarchy.Schema) {
	t.Helper()
	weekMap := hierarchy.BuildContiguousMap(12, 4)
	monthMap := hierarchy.BuildContiguousMap(12, 3)
	day := &hierarchy.Dim{
		Name: "T",
		Levels: []hierarchy.Level{
			{Name: "Day", Card: 12, RollsUpTo: []int{1, 2}},
			{Name: "Week", Card: 4, Map: weekMap},
			{Name: "Month", Card: 3, Map: monthMap},
		},
	}
	if err := day.Finalize(); err != nil {
		t.Fatal(err)
	}
	hier, err := hierarchy.NewSchema(day, hierarchy.NewFlatDim("B", 3))
	if err != nil {
		t.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"T", "B"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, 500)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		ft.Append([]int32{int32(rng.Intn(12)), int32(rng.Intn(3))}, []float64{float64(rng.Intn(5))})
	}
	dir := filepath.Join(t.TempDir(), "cube")
	if _, err := core.BuildFromTable(ft, core.Options{
		Dir: dir, Hier: hier,
		AggSpecs:    []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}},
		Compression: testCompression(),
	}); err != nil {
		t.Fatal(err)
	}
	return dir, hier
}

// TestRollUpDrillDownBoundaries exercises navigation at the lattice
// borders: ALL cannot roll up further, base levels cannot drill deeper,
// and each successful step moves exactly one level.
func TestRollUpDrillDownBoundaries(t *testing.T) {
	dir, hier, _ := buildTestCube(t, false)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	enum := eng.Enum()
	allA := hier.Dims[0].AllLevel()
	allB := hier.Dims[1].AllLevel()

	top := enum.Encode([]int{allA, allB}) // apex: every dimension at ALL
	for dim := 0; dim < 2; dim++ {
		if id, ok := eng.RollUp(top, dim); ok || id != top {
			t.Errorf("dim %d: rolled up beyond ALL to %d", dim, id)
		}
	}
	base := enum.Encode([]int{0, 0}) // finest grouping
	for dim := 0; dim < 2; dim++ {
		if id, ok := eng.DrillDown(base, dim); ok || id != base {
			t.Errorf("dim %d: drilled below base to %d", dim, id)
		}
	}

	// Climb dimension A from base to ALL one level at a time, then walk
	// back down; every step must invert exactly.
	id := base
	var path []int64
	for {
		path = append(path, int64(id))
		next, ok := eng.RollUp(id, 0)
		if !ok {
			break
		}
		if next == id {
			t.Fatal("RollUp reported progress without moving")
		}
		id = next
	}
	if len(path) != allA+1 {
		t.Fatalf("climbed %d steps, want %d", len(path)-1, allA)
	}
	for i := len(path) - 1; i > 0; i-- {
		down, ok := eng.DrillDown(id, 0)
		if !ok {
			t.Fatalf("stuck at step %d of the descent", i)
		}
		id = down
	}
	if int64(id) != path[0] {
		t.Errorf("descent ended at %d, want %d", id, path[0])
	}
}

// TestNavigationComplexHierarchy checks the dashed-edge tree boundaries
// when a base level rolls up into two sibling levels: drill-down from
// ALL lands on one top-under-ALL sibling, the other sibling is reachable
// by roll-up, and both siblings' node queries aggregate correctly.
func TestNavigationComplexHierarchy(t *testing.T) {
	dir, hier := buildComplexCube(t)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	enum := eng.Enum()
	d := hier.Dims[0]
	if d.IsLinear() {
		t.Fatal("test hierarchy is linear")
	}

	// Both Week (1) and Month (2) hang under ALL (neither refines the
	// other), so the apex has two drill-down targets on T; the engine
	// follows the first dashed child.
	apex := enum.Encode([]int{d.AllLevel(), hier.Dims[1].AllLevel()})
	down, ok := eng.DrillDown(apex, 0)
	if !ok {
		t.Fatal("cannot drill below ALL")
	}
	gotLevel := enum.Decode(down, nil)[0]
	tops := d.TopUnderAll()
	if len(tops) != 2 {
		t.Fatalf("TopUnderAll = %v, want two siblings", tops)
	}
	if gotLevel != tops[0] {
		t.Errorf("drill-down landed on level %d, want first dashed child %d", gotLevel, tops[0])
	}

	// Roll-up from Week (level 1) moves to Month (level 2) — the next
	// coarser level index, even though Week does not map into Month.
	week := enum.Encode([]int{1, hier.Dims[1].AllLevel()})
	up, ok := eng.RollUp(week, 0)
	if !ok || enum.Decode(up, nil)[0] != 2 {
		t.Errorf("roll-up from Week: ok=%v level=%d, want Month (2)", ok, enum.Decode(up, nil)[0])
	}

	// Each sibling level aggregates the full fact table independently.
	for _, level := range tops {
		node := enum.Encode([]int{level, hier.Dims[1].AllLevel()})
		var count float64
		groups := 0
		if err := eng.NodeQuery(node, func(r Row) error {
			groups++
			count += r.Aggrs[1]
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if count != 500 {
			t.Errorf("level %s: counts sum to %v, want 500", d.LevelName(level), count)
		}
		if groups == 0 || groups > int(d.Card(level)) {
			t.Errorf("level %s: %d groups for cardinality %d", d.LevelName(level), groups, d.Card(level))
		}
	}

	// The whole complex-hierarchy cube verifies.
	rep, err := eng.Verify(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("complex-hierarchy cube failed verification: %v", rep.Errors)
	}
}
