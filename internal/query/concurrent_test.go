package query

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"cure/internal/obsv"
)

// collectNode runs a node query and returns its rows rendered to stable
// strings (the result multiset, order-independent and copy-safe).
func collectNode(t *testing.T, eng *Engine, id int64) []string {
	t.Helper()
	var rows []string
	if err := eng.NodeQuery(eng.Enum().AllNodes()[id], func(r Row) error {
		rows = append(rows, fmt.Sprintf("%v|%v|%d", r.Dims, r.Aggrs, r.RRowid))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(rows)
	return rows
}

// TestConcurrentNodeQueryEquivalence runs the same node-query workload at
// C = 1, 4, 16 concurrent clients over one engine with an undersized
// cache (so evictions race reads) and requires byte-identical results at
// every concurrency level.
func TestConcurrentNodeQueryEquivalence(t *testing.T) {
	dir, _, _ := buildTestCube(t, false)
	eng, err := Open(dir, Options{CacheFraction: 0.3, PinAggregates: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	nodes := eng.Enum().AllNodes()
	// Sequential ground truth.
	want := make([][]string, len(nodes))
	for i := range nodes {
		want[i] = collectNode(t, eng, int64(i))
	}

	for _, c := range []int{1, 4, 16} {
		got := make([][]string, len(nodes))
		var mu sync.Mutex
		if err := eng.NodeQueryBatch(c, nodes, func(qi int, r Row) error {
			s := fmt.Sprintf("%v|%v|%d", r.Dims, r.Aggrs, r.RRowid)
			mu.Lock()
			got[qi] = append(got[qi], s)
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatalf("C=%d: %v", c, err)
		}
		for qi := range nodes {
			sort.Strings(got[qi])
			if len(got[qi]) != len(want[qi]) {
				t.Fatalf("C=%d node %d: %d rows, want %d", c, qi, len(got[qi]), len(want[qi]))
			}
			for i := range want[qi] {
				if got[qi][i] != want[qi][i] {
					t.Fatalf("C=%d node %d row %d: %q != %q", c, qi, i, got[qi][i], want[qi][i])
				}
			}
		}
	}
}

// TestConcurrentMixedOps hammers one engine with every public query
// operation from many goroutines; under -race this is the engine's
// thread-safety regression test, and the tiny cache keeps evictions
// racing the copied-out reads (the aliasing bug this PR fixes).
func TestConcurrentMixedOps(t *testing.T) {
	dir, _, _ := buildTestCube(t, false)
	reg := obsv.NewRegistry()
	eng, err := Open(dir, Options{CacheFraction: 0.2, PinAggregates: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	nodes := eng.Enum().AllNodes()

	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nop := func(Row) error { return nil }
			for i := 0; i < 6; i++ {
				id := nodes[(w+i)%len(nodes)]
				switch (w + i) % 5 {
				case 0:
					if err := eng.NodeQuery(id, nop); err != nil {
						errCh <- err
						return
					}
				case 1:
					// Predicates must not be finer than the node's level;
					// query a fixed base-grouped node.
					whereNode := eng.Enum().Encode([]int{0, 0})
					if err := eng.NodeQueryWhere(whereNode, []Predicate{{Dim: 1, Level: 0, Lo: 0, Hi: 2}}, nop); err != nil {
						errCh <- err
						return
					}
				case 2:
					if err := eng.SliceQuery(id, 0, 1, 1, nop); err != nil {
						errCh <- err
						return
					}
				case 3:
					if err := eng.IcebergQuery(id, 1, 2, nop); err != nil {
						errCh <- err
						return
					}
				case 4:
					if _, err := eng.Verify(2, 1); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Counters must have survived the stampede coherently.
	hits, misses := eng.CacheStats()
	snap := reg.Snapshot()
	if snap.Counters["query.cache.hits"] != hits || snap.Counters["query.cache.misses"] != misses {
		t.Fatalf("registry (%d, %d) != CacheStats (%d, %d)",
			snap.Counters["query.cache.hits"], snap.Counters["query.cache.misses"], hits, misses)
	}
}

func TestForEach(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var sum atomic.Int64
		if err := ForEach(workers, 100, func(i int) error {
			sum.Add(int64(i))
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := sum.Load(); got != 4950 {
			t.Errorf("workers=%d: sum = %d, want 4950", workers, got)
		}
	}
	// n <= 0 is a no-op.
	if err := ForEach(4, 0, func(int) error { t.Error("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ForEach(4, 1000, func(i int) error {
		ran.Add(1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The error must stop new claims well before all 1000 tasks run.
	if n := ran.Load(); n == 1000 {
		t.Error("error did not stop the pool")
	}
	// Sequential mode stops at the first error.
	ran.Store(0)
	if err := ForEach(1, 100, func(i int) error {
		ran.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("sequential err = %v", err)
	}
	if ran.Load() != 6 {
		t.Errorf("sequential ran %d tasks, want 6", ran.Load())
	}
}
