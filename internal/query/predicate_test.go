package query

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"cure/internal/core"
	"cure/internal/hierarchy"
	"cure/internal/relation"
)

// buildPredCube builds a hierarchical cube for predicate tests and
// returns (dir, hier, table).
func buildPredCube(t *testing.T, dr bool) (string, *hierarchy.Schema, *relation.FactTable) {
	t.Helper()
	m := hierarchy.BuildContiguousMap(12, 3)
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1"}, []int32{12, 3}, [][]int32{m})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := hierarchy.NewSchema(a, hierarchy.NewFlatDim("B", 5))
	if err != nil {
		t.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"A", "B"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, 400)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		ft.Append([]int32{int32(rng.Intn(12)), int32(rng.Intn(5))}, []float64{float64(rng.Intn(8))})
	}
	dir := filepath.Join(t.TempDir(), "cube")
	if _, err := core.BuildFromTable(ft, core.Options{
		Dir: dir, Hier: hier,
		AggSpecs:    []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}},
		DimsInline:  dr,
		Compression: testCompression(),
	}); err != nil {
		t.Fatal(err)
	}
	return dir, hier, ft
}

func TestPredicateMatch(t *testing.T) {
	p := Predicate{Lo: 3, Hi: 7}
	for code, want := range map[int32]bool{2: false, 3: true, 5: true, 7: true, 8: false} {
		if p.Match(code) != want {
			t.Errorf("Match(%d) = %v", code, !want)
		}
	}
}

func TestNodeQueryWhereCoarserLevel(t *testing.T) {
	dir, hier, ft := buildPredCube(t, false)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Group by A0 × B, select A1 = 1 (a coarser level than the grouping).
	node := eng.Enum().Encode([]int{0, 0})
	pred := Predicate{Dim: 0, Level: 1, Lo: 1, Hi: 1}
	// Ground truth.
	type key struct{ a, b int32 }
	want := map[key][2]float64{}
	for r := 0; r < ft.Len(); r++ {
		if hier.Dims[0].MapCode(ft.Dims[0][r], 1) != 1 {
			continue
		}
		k := key{ft.Dims[0][r], ft.Dims[1][r]}
		agg := want[k]
		agg[0] += ft.Measures[0][r]
		agg[1]++
		want[k] = agg
	}
	got := 0
	if err := eng.NodeQueryWhere(node, []Predicate{pred}, func(row Row) error {
		k := key{row.Dims[0], row.Dims[1]}
		w, ok := want[k]
		if !ok {
			return fmt.Errorf("tuple %v outside selection", row.Dims)
		}
		if w[0] != row.Aggrs[0] || w[1] != row.Aggrs[1] {
			return fmt.Errorf("tuple %v: %v want %v", row.Dims, row.Aggrs, w)
		}
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != len(want) {
		t.Fatalf("selected %d tuples, want %d", got, len(want))
	}
}

func TestNodeQueryWhereRange(t *testing.T) {
	dir, _, ft := buildPredCube(t, false)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Node B (A at ALL), range predicate on B itself.
	node := eng.Enum().Encode([]int{2, 0})
	got := 0
	if err := eng.NodeQueryWhere(node, []Predicate{{Dim: 1, Level: 0, Lo: 1, Hi: 3}}, func(row Row) error {
		if row.Dims[0] < 1 || row.Dims[0] > 3 {
			return fmt.Errorf("tuple %v outside range", row.Dims)
		}
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("range selected %d B-groups, want 3", got)
	}
	_ = ft
}

func TestNodeQueryWhereValidation(t *testing.T) {
	dir, _, _ := buildPredCube(t, false)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	node := eng.Enum().Encode([]int{1, 1}) // A1, B at ALL
	nop := func(Row) error { return nil }
	if err := eng.NodeQueryWhere(node, []Predicate{{Dim: 5, Level: 0, Lo: 0, Hi: 0}}, nop); err == nil {
		t.Error("bad dim accepted")
	}
	if err := eng.NodeQueryWhere(node, []Predicate{{Dim: 0, Level: 9, Lo: 0, Hi: 0}}, nop); err == nil {
		t.Error("bad level accepted")
	}
	if err := eng.NodeQueryWhere(node, []Predicate{{Dim: 0, Level: 0, Lo: 0, Hi: 0}}, nop); err == nil {
		t.Error("predicate finer than node level accepted")
	}
	if err := eng.NodeQueryWhere(node, []Predicate{{Dim: 0, Level: 1, Lo: 3, Hi: 1}}, nop); err == nil {
		t.Error("empty range accepted")
	}
	if err := eng.NodeQueryWhere(-1, []Predicate{{Dim: 0, Level: 1, Lo: 0, Hi: 0}}, nop); err == nil {
		t.Error("invalid node accepted")
	}
	// Empty predicate list degrades to a plain node query.
	count := 0
	if err := eng.NodeQueryWhere(node, nil, func(Row) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Error("empty predicate list returned nothing")
	}
}

// TestNodeQueryWhereEdgeCases covers the domain boundaries: predicates
// whose ranges fall entirely outside the code domain select nothing
// (without erroring), ALL-level predicates are vacuously true, and
// single-point ranges at the domain edges behave inclusively.
func TestNodeQueryWhereEdgeCases(t *testing.T) {
	dir, hier, ft := buildPredCube(t, false)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	node := eng.Enum().Encode([]int{0, 0})
	count := func(preds []Predicate) int {
		t.Helper()
		n := 0
		if err := eng.NodeQueryWhere(node, preds, func(Row) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		return n
	}

	total := count(nil)
	if total == 0 {
		t.Fatal("cube is empty")
	}
	// Entirely above / below the domain: zero rows, no error.
	if n := count([]Predicate{{Dim: 0, Level: 0, Lo: 100, Hi: 200}}); n != 0 {
		t.Errorf("above-domain range selected %d rows", n)
	}
	if n := count([]Predicate{{Dim: 0, Level: 0, Lo: -50, Hi: -1}}); n != 0 {
		t.Errorf("below-domain range selected %d rows", n)
	}
	// A range covering the whole domain (and beyond) selects everything.
	if n := count([]Predicate{{Dim: 0, Level: 0, Lo: -10, Hi: 100}}); n != total {
		t.Errorf("superset range selected %d of %d rows", n, total)
	}
	// ALL-level predicate: the only code is 0, so [0,0] is vacuously true
	// and [1,1] is vacuously false.
	all := hier.Dims[0].AllLevel()
	if n := count([]Predicate{{Dim: 0, Level: all, Lo: 0, Hi: 0}}); n != total {
		t.Errorf("ALL-level [0,0] selected %d of %d rows", n, total)
	}
	if n := count([]Predicate{{Dim: 0, Level: all, Lo: 1, Hi: 1}}); n != 0 {
		t.Errorf("ALL-level [1,1] selected %d rows", n)
	}
	// Point ranges at the domain edges are inclusive; together with the
	// interior they partition the total.
	edges := 0
	for _, p := range []Predicate{
		{Dim: 1, Level: 0, Lo: 0, Hi: 0},
		{Dim: 1, Level: 0, Lo: 1, Hi: 3},
		{Dim: 1, Level: 0, Lo: 4, Hi: 4},
	} {
		edges += count([]Predicate{p})
	}
	if edges != total {
		t.Errorf("partitioned counts sum to %d, want %d", edges, total)
	}
	// Contradictory predicates on one dimension: zero rows, no error.
	if n := count([]Predicate{
		{Dim: 1, Level: 0, Lo: 0, Hi: 1},
		{Dim: 1, Level: 0, Lo: 3, Hi: 4},
	}); n != 0 {
		t.Errorf("contradictory predicates selected %d rows", n)
	}
	_ = ft
}

func TestSliceQuery(t *testing.T) {
	dir, hier, ft := buildPredCube(t, false)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Slice: group by B, fix A1 = 0.
	node := eng.Enum().Encode([]int{2, 0})
	var gotSum float64
	if err := eng.SliceQuery(node, 0, 1, 0, func(row Row) error {
		gotSum += row.Aggrs[0]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wantSum float64
	for r := 0; r < ft.Len(); r++ {
		if hier.Dims[0].MapCode(ft.Dims[0][r], 1) == 0 {
			wantSum += ft.Measures[0][r]
		}
	}
	if gotSum != wantSum {
		t.Errorf("slice sum = %v, want %v", gotSum, wantSum)
	}
}

func TestNodeQueryWhereDR(t *testing.T) {
	dir, _, ft := buildPredCube(t, true)
	eng, err := OpenDefault(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// DR: predicate at the node's own level works…
	node := eng.Enum().Encode([]int{1, 0}) // A1 × B
	got := 0
	if err := eng.NodeQueryWhere(node, []Predicate{{Dim: 0, Level: 1, Lo: 2, Hi: 2}}, func(row Row) error {
		if row.Dims[0] != 2 {
			return fmt.Errorf("tuple %v outside slice", row.Dims)
		}
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Error("DR slice empty")
	}
	// …but coarser-level predicates are rejected (the rows have no
	// base-code reference to re-project).
	base := eng.Enum().Encode([]int{0, 0})
	if err := eng.NodeQueryWhere(base, []Predicate{{Dim: 0, Level: 1, Lo: 0, Hi: 0}}, func(Row) error { return nil }); err == nil {
		t.Error("DR coarser-level predicate accepted")
	}
	_ = ft
}
