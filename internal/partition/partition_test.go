package partition

import (
	"math/rand"
	"path/filepath"
	"testing"

	"cure/internal/hierarchy"
	"cure/internal/relation"
)

const gb = int64(1) << 30

// salesDim reproduces the paper's SALES example: Product with hierarchy
// barcode(10,000) → brand(1,000) → economic_strength(10).
func salesDim(t *testing.T) *hierarchy.Dim {
	t.Helper()
	m1 := hierarchy.BuildContiguousMap(10000, 1000)
	m2 := hierarchy.ComposeMaps(m1, hierarchy.BuildContiguousMap(1000, 10))
	d, err := hierarchy.NewLinearDim("Product",
		[]string{"barcode", "brand", "economic_strength"},
		[]int32{10000, 1000, 10}, [][]int32{m1, m2})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSelectLevelReproducesTable1(t *testing.T) {
	// Table 1 of the paper: |M| = 1 GB.
	d := salesDim(t)
	tests := []struct {
		rBytes    int64
		wantL     int
		wantParts int
		wantRatio float64
		wantN     int64
	}{
		{10 * gb, 2, 10, 10000, 10 * gb / 10000},     // |N| ≈ 1 MB
		{100 * gb, 1, 100, 1000, 100 * gb / 1000},    // |N| ≈ 100 MB
		{1000 * gb, 1, 1000, 1000, 1000 * gb / 1000}, // the paper's "1 TB" row: 1000 partitions, |N| ≈ 1 GB
	}
	for _, tt := range tests {
		c, err := SelectLevel(d, tt.rBytes, gb, gb)
		if err != nil {
			t.Fatalf("R=%d: %v", tt.rBytes, err)
		}
		if c.Level != tt.wantL {
			t.Errorf("R=%dGB: L = %d, want %d", tt.rBytes/gb, c.Level, tt.wantL)
		}
		if c.NumPartitions != tt.wantParts {
			t.Errorf("R=%dGB: parts = %d, want %d", tt.rBytes/gb, c.NumPartitions, tt.wantParts)
		}
		if c.Ratio != tt.wantRatio {
			t.Errorf("R=%dGB: ratio = %v, want %v", tt.rBytes/gb, c.Ratio, tt.wantRatio)
		}
		if c.NBytes != tt.wantN {
			t.Errorf("R=%dGB: |N| = %d, want %d", tt.rBytes/gb, c.NBytes, tt.wantN)
		}
		if c.PartitionBytes > gb {
			t.Errorf("R=%dGB: partition size %d exceeds budget", tt.rBytes/gb, c.PartitionBytes)
		}
	}
}

func TestSelectLevelInfeasible(t *testing.T) {
	// §4's motivating failure: |R| = 10 GB, M = 1 GB, top-level
	// cardinality 5 and no deeper levels with enough values.
	d, err := hierarchy.NewLinearDim("A", []string{"a0", "a1"}, []int32{8, 5},
		[][]int32{hierarchy.BuildContiguousMap(8, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SelectLevel(d, 10*gb, gb, gb); err == nil {
		t.Error("infeasible partitioning accepted (only 8 base values for 10 partitions)")
	}
	// Degenerate sizes are rejected.
	if _, err := SelectLevel(d, 0, gb, gb); err == nil {
		t.Error("zero R accepted")
	}
}

func TestSelectLevelPrefersMaxLevel(t *testing.T) {
	// Both L=0 and L=1 are feasible: the maximum must win (it minimizes
	// the N-phase work).
	d, err := hierarchy.NewLinearDim("A", []string{"a0", "a1"}, []int32{1000, 100},
		[][]int32{hierarchy.BuildContiguousMap(1000, 100)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := SelectLevel(d, 10*gb, gb, gb)
	if err != nil {
		t.Fatal(err)
	}
	if c.Level != 1 {
		t.Errorf("Level = %d, want 1", c.Level)
	}
}

func TestDerivedSpecs(t *testing.T) {
	specs := []relation.AggSpec{
		{Func: relation.AggSum, Measure: 3},
		{Func: relation.AggCount},
		{Func: relation.AggMin, Measure: 1},
	}
	got := DerivedSpecs(specs, 3)
	want := []relation.AggSpec{
		{Func: relation.AggSum, Measure: 0},
		{Func: relation.AggSum, Measure: 3},
		{Func: relation.AggMin, Measure: 2},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// buildTestFact writes a small fact table with a 2-level first dimension
// and one flat dimension.
func buildTestFact(t *testing.T, rows int) (string, *hierarchy.Schema, *relation.FactTable) {
	t.Helper()
	m := hierarchy.BuildContiguousMap(16, 4)
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1"}, []int32{16, 4}, [][]int32{m})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := hierarchy.NewSchema(a, hierarchy.NewFlatDim("B", 3))
	if err != nil {
		t.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"A", "B"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, rows)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < rows; i++ {
		ft.Append([]int32{int32(rng.Intn(16)), int32(rng.Intn(3))}, []float64{float64(rng.Intn(100))})
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(path, ft); err != nil {
		t.Fatal(err)
	}
	return path, hier, ft
}

func TestPartitionSoundnessAndN(t *testing.T) {
	path, hier, ft := buildTestFact(t, 500)
	specs := []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}}
	choice := LevelChoice{Level: 0, NumPartitions: 4}
	res, err := Partition(path, t.TempDir(), hier, specs, choice)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PartitionPaths) != 4 {
		t.Fatalf("partitions = %d", len(res.PartitionPaths))
	}

	// (1) Partitions are sound on A_0 and their union is exactly R.
	seenRows := map[int64]bool{}
	valueToPart := map[int32]int{}
	var total int
	for pi, pp := range res.PartitionPaths {
		pt, err := relation.ReadFactFile(pp)
		if err != nil {
			t.Fatal(err)
		}
		total += pt.Len()
		for r := 0; r < pt.Len(); r++ {
			id := pt.RowID(r)
			if seenRows[id] {
				t.Fatalf("row %d in two partitions", id)
			}
			seenRows[id] = true
			code := pt.Dims[0][r] // level 0 partitioning: code is the base value
			if prev, ok := valueToPart[code]; ok && prev != pi {
				t.Fatalf("value %d split across partitions %d and %d", code, prev, pi)
			}
			valueToPart[code] = pi
			// Row content matches the original table.
			if ft.Dims[0][id] != pt.Dims[0][r] || ft.Dims[1][id] != pt.Dims[1][r] || ft.Measures[0][id] != pt.Measures[0][r] {
				t.Fatalf("row %d corrupted in partition", id)
			}
		}
	}
	if total != ft.Len() {
		t.Fatalf("partitions hold %d rows, want %d", total, ft.Len())
	}

	// (2) N groups by (A_1, B): verify aggregates against a direct
	// computation.
	type key struct{ a1, b int32 }
	wantSum := map[key]float64{}
	wantCnt := map[key]float64{}
	wantMin := map[key]int64{}
	a := hier.Dims[0]
	for r := 0; r < ft.Len(); r++ {
		k := key{a.MapCode(ft.Dims[0][r], 1), ft.Dims[1][r]}
		wantSum[k] += ft.Measures[0][r]
		wantCnt[k]++
		if _, ok := wantMin[k]; !ok || int64(r) < wantMin[k] {
			wantMin[k] = int64(r)
		}
	}
	n := res.N
	if n.Len() != len(wantSum) {
		t.Fatalf("N has %d groups, want %d", n.Len(), len(wantSum))
	}
	for r := 0; r < n.Len(); r++ {
		k := key{a.MapCode(n.Dims[0][r], 1), n.Dims[1][r]}
		if n.Measures[0][r] != wantSum[k] {
			t.Errorf("group %+v: sum = %v, want %v", k, n.Measures[0][r], wantSum[k])
		}
		if n.Measures[1][r] != wantCnt[k] {
			t.Errorf("group %+v: count agg = %v, want %v", k, n.Measures[1][r], wantCnt[k])
		}
		if n.Measures[res.NCountCol][r] != wantCnt[k] {
			t.Errorf("group %+v: count col = %v, want %v", k, n.Measures[res.NCountCol][r], wantCnt[k])
		}
		if n.RowID(r) != wantMin[k] {
			t.Errorf("group %+v: min rowid = %d, want %d", k, n.RowID(r), wantMin[k])
		}
	}
	// (3) Derived specs re-aggregate N to the grand total correctly.
	agg := relation.NewAggregator(res.NSpecs)
	meas := make([]float64, len(n.Measures))
	for r := 0; r < n.Len(); r++ {
		meas = n.MeasureRow(r, meas)
		agg.AddValues(meas)
	}
	got := agg.Values(nil)
	var totalSum float64
	for _, v := range ft.Measures[0] {
		totalSum += v
	}
	if got[0] != totalSum || got[1] != float64(ft.Len()) {
		t.Errorf("re-aggregated totals = %v, want [%v %v]", got, totalSum, ft.Len())
	}
}

func TestPartitionOnTopLevelDropsDim0(t *testing.T) {
	path, hier, ft := buildTestFact(t, 200)
	specs := []relation.AggSpec{{Func: relation.AggSum, Measure: 0}}
	// L = 1 is the top real level → N is grouped on (ALL, B) = B only.
	choice := LevelChoice{Level: 1, NumPartitions: 2}
	res, err := Partition(path, t.TempDir(), hier, specs, choice)
	if err != nil {
		t.Fatal(err)
	}
	if res.N.Len() != 3 { // |B| = 3
		t.Errorf("N has %d groups, want 3", res.N.Len())
	}
	var totalSum float64
	for _, v := range ft.Measures[0] {
		totalSum += v
	}
	var nSum float64
	for r := 0; r < res.N.Len(); r++ {
		nSum += res.N.Measures[0][r]
	}
	if nSum != totalSum {
		t.Errorf("N sums to %v, want %v", nSum, totalSum)
	}
}

func TestPartitionRejectsNonFactoringHierarchy(t *testing.T) {
	// Dimension whose level 2 does not factor through level 1: N at
	// level 1 cannot represent level-2 groupings.
	bad := &hierarchy.Dim{
		Name: "X",
		Levels: []hierarchy.Level{
			{Name: "x0", Card: 4, RollsUpTo: []int{1, 2}},
			{Name: "x1", Card: 2, Map: []int32{0, 0, 1, 1}},
			{Name: "x2", Card: 2, Map: []int32{0, 1, 0, 1}},
		},
	}
	if err := bad.Finalize(); err != nil {
		t.Fatal(err)
	}
	hier, err := hierarchy.NewSchema(bad)
	if err != nil {
		t.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"X"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, 4)
	for i := 0; i < 4; i++ {
		ft.Append([]int32{int32(i)}, []float64{1})
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(path, ft); err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(path, t.TempDir(), hier, []relation.AggSpec{{Func: relation.AggCount}}, LevelChoice{Level: 0, NumPartitions: 2}); err == nil {
		t.Error("non-factoring hierarchy accepted")
	}
}

func TestSelectLevelPair(t *testing.T) {
	// A: 64 → 4; B: 256 → 16; R = 44,800 B, budgets 2,800 / 1,400 →
	// 16 partitions; only (L=1, M=1) works (see core's pair tests for
	// the full derivation).
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1"}, []int32{64, 4},
		[][]int32{hierarchy.BuildContiguousMap(64, 4)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := hierarchy.NewLinearDim("B", []string{"B0", "B1"}, []int32{256, 16},
		[][]int32{hierarchy.BuildContiguousMap(256, 16)})
	if err != nil {
		t.Fatal(err)
	}
	// Single-dimension selection must fail here.
	if _, err := SelectLevel(a, 44_800, 2_800, 1_400); err == nil {
		t.Fatal("single-dimension selection unexpectedly feasible")
	}
	c, err := SelectLevelPair(a, b, 44_800, 2_800, 1_400)
	if err != nil {
		t.Fatal(err)
	}
	if c.LevelA != 1 || c.LevelB != 1 {
		t.Errorf("levels = (%d, %d), want (1, 1)", c.LevelA, c.LevelB)
	}
	if c.NumPartitions != 16 {
		t.Errorf("partitions = %d, want 16", c.NumPartitions)
	}
	if c.N1Bytes != 44_800/64 || c.N2Bytes != 44_800/256 {
		t.Errorf("N sizes = %d, %d", c.N1Bytes, c.N2Bytes)
	}
	// Degenerate inputs rejected.
	if _, err := SelectLevelPair(a, b, 0, 1, 1); err == nil {
		t.Error("zero R accepted")
	}
	// Infeasible: both N floors above budget.
	if _, err := SelectLevelPair(a, b, 44_800, 2_800, 10); err == nil {
		t.Error("infeasible pair accepted")
	}
}

func TestPartitionPairSoundness(t *testing.T) {
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1"}, []int32{8, 2},
		[][]int32{hierarchy.BuildContiguousMap(8, 2)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := hierarchy.NewLinearDim("B", []string{"B0", "B1"}, []int32{12, 3},
		[][]int32{hierarchy.BuildContiguousMap(12, 3)})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := hierarchy.NewSchema(a, b)
	if err != nil {
		t.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"A", "B"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, 400)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 400; i++ {
		ft.Append([]int32{int32(rng.Intn(8)), int32(rng.Intn(12))}, []float64{float64(rng.Intn(10))})
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(path, ft); err != nil {
		t.Fatal(err)
	}
	specs := []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}}
	// L = 0, M = 1: N1 groups on (A_1, B_0); N2 on (A_0, ALL) since
	// M + 1 is B's ALL level.
	choice := PairChoice{LevelA: 0, LevelB: 1, NumPartitions: 5}
	res, err := PartitionPair(path, t.TempDir(), hier, specs, choice)
	if err != nil {
		t.Fatal(err)
	}
	// Soundness on (A0, B1): a pair value must live in exactly one
	// partition, and the union must be R.
	pairToPart := map[[2]int32]int{}
	total := 0
	for pi, pp := range res.PartitionPaths {
		pt, err := relation.ReadFactFile(pp)
		if err != nil {
			t.Fatal(err)
		}
		total += pt.Len()
		for r := 0; r < pt.Len(); r++ {
			pair := [2]int32{pt.Dims[0][r], b.MapCode(pt.Dims[1][r], 1)}
			if prev, ok := pairToPart[pair]; ok && prev != pi {
				t.Fatalf("pair %v split across partitions %d and %d", pair, prev, pi)
			}
			pairToPart[pair] = pi
		}
	}
	if total != ft.Len() {
		t.Fatalf("partitions hold %d rows, want %d", total, ft.Len())
	}
	// N1 groups on (A1, B0): count distinct groups directly.
	type k1 struct{ a1, b int32 }
	want1 := map[k1]float64{}
	for r := 0; r < ft.Len(); r++ {
		want1[k1{a.MapCode(ft.Dims[0][r], 1), ft.Dims[1][r]}] += ft.Measures[0][r]
	}
	if res.N1.Len() != len(want1) {
		t.Fatalf("N1 groups = %d, want %d", res.N1.Len(), len(want1))
	}
	for r := 0; r < res.N1.Len(); r++ {
		key := k1{a.MapCode(res.N1.Dims[0][r], 1), res.N1.Dims[1][r]}
		if res.N1.Measures[0][r] != want1[key] {
			t.Fatalf("N1 group %v sum = %v, want %v", key, res.N1.Measures[0][r], want1[key])
		}
	}
	// N2 groups on (A0, B at ALL) = A0 alone.
	want2 := map[int32]float64{}
	for r := 0; r < ft.Len(); r++ {
		want2[ft.Dims[0][r]] += ft.Measures[0][r]
	}
	if res.N2.Len() != len(want2) {
		t.Fatalf("N2 groups = %d, want %d", res.N2.Len(), len(want2))
	}
	for r := 0; r < res.N2.Len(); r++ {
		if res.N2.Measures[0][r] != want2[res.N2.Dims[0][r]] {
			t.Fatalf("N2 group %d sum = %v, want %v", res.N2.Dims[0][r], res.N2.Measures[0][r], want2[res.N2.Dims[0][r]])
		}
	}
}
