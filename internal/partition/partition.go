// Package partition implements CURE's external partitioning (§4): the
// selection of the partitioning level L on the first dimension
// (observations 1–3 and Table 1's feasibility arithmetic), and the
// single-pass partitioner that splits a disk-resident fact table into
// memory-sized partitions sound on A_L while simultaneously hash-building
// the in-memory node N = A_{L+1} B_0 C_0 ….
package partition

import (
	"fmt"
	"os"
	"path/filepath"

	"cure/internal/hierarchy"
	"cure/internal/obsv"
	"cure/internal/relation"
)

// LevelChoice is the outcome of partition-level selection, carrying the
// quantities Table 1 of the paper reports.
type LevelChoice struct {
	// Level is L, the level of dimension 0 partitioned on.
	Level int
	// NumPartitions is the number of partitions (⌈|R|/M⌉, achievable
	// because |A_L| ≥ that count).
	NumPartitions int
	// PartitionBytes is the expected partition size under uniformity.
	PartitionBytes int64
	// Ratio is |A_0| / |A_{L+1}|, the shrink factor of node N relative
	// to R (observation 2).
	Ratio float64
	// NBytes is the estimated size of node N.
	NBytes int64
}

// SelectLevel picks the maximum level L of dim such that (a) partitioning
// on A_L can produce ⌈rBytes/partBudget⌉ memory-sized sound partitions
// (requires |A_L| ≥ that many distinct values) and (b) the node N built
// at level L+1 fits in nBudget, estimated as rBytes·|A_{L+1}|/|A_0|
// (observation 2; |A_{LT+1}| = 1, i.e. dimension 0 projected out).
//
// It returns an error when no level qualifies; the paper notes the
// algorithm can then be extended to pairs of dimensions, an extension we
// do not implement.
func SelectLevel(dim *hierarchy.Dim, rBytes, partBudget, nBudget int64) (LevelChoice, error) {
	return SelectLevelObs(dim, rBytes, partBudget, nBudget, nil)
}

// SelectLevelObs is SelectLevel with the decision trace streamed to reg's
// trace sink: one level event per candidate level, recording why it was
// rejected (too few distinct values for soundness, or node N over budget)
// or that it was chosen. A nil registry makes it identical to SelectLevel.
func SelectLevelObs(dim *hierarchy.Dim, rBytes, partBudget, nBudget int64, reg *obsv.Registry) (LevelChoice, error) {
	if rBytes <= 0 || partBudget <= 0 || nBudget <= 0 {
		return LevelChoice{}, fmt.Errorf("partition: non-positive sizes (R=%d, M=%d, N budget=%d)", rBytes, partBudget, nBudget)
	}
	tr := reg.Trace()
	// Declare the split of the build budget so heap samples taken during
	// the partitioned phases can be judged against it from outside.
	reg.Gauge("partition.budget.partition_bytes").Set(partBudget)
	reg.Gauge("partition.budget.n_bytes").Set(nBudget)
	need := (rBytes + partBudget - 1) / partBudget
	if need < 1 {
		need = 1
	}
	emit := func(l int, nBytes int64, feasible bool, reason string) {
		if tr == nil {
			return
		}
		tr.Emit(obsv.LevelEvent{
			Ev: "select-level", Dim: dim.Name, Level: l,
			Card: int64(dim.Card(l)), Need: need,
			NBytes: nBytes, NBudget: nBudget,
			Feasible: feasible, Reason: reason,
		})
	}
	base := int64(dim.Card(0))
	for l := dim.AllLevel() - 1; l >= 0; l-- {
		if int64(dim.Card(l)) < need {
			emit(l, 0, false, "cardinality below partition count")
			continue
		}
		nextCard := int64(dim.Card(l + 1)) // 1 when l+1 is ALL
		nBytes := rBytes * nextCard / base
		if nBytes > nBudget {
			emit(l, nBytes, false, "node N over budget")
			continue
		}
		emit(l, nBytes, true, "selected")
		reg.Gauge("partition.level").Set(int64(l))
		reg.Gauge("partition.count").Set(need)
		return LevelChoice{
			Level:          l,
			NumPartitions:  int(need),
			PartitionBytes: (rBytes + need - 1) / need,
			Ratio:          float64(base) / float64(nextCard),
			NBytes:         nBytes,
		}, nil
	}
	return LevelChoice{}, fmt.Errorf("partition: no level of %s yields %d sound partitions with N under %d bytes", dim.Name, need, nBudget)
}

// Result is what Partition produces: the partition files (sound on A_L)
// and the in-memory node N.
type Result struct {
	Choice LevelChoice
	// PartitionPaths are the fact files of the partitions, each carrying
	// original row-ids.
	PartitionPaths []string
	// N is the in-memory node A_{L+1} B_0 C_0 …. Its dimension-0 column
	// holds *representative base codes* (the first base code seen per
	// A_{L+1} group); its measures are the Y aggregate columns followed
	// by a source-tuple count column; RowIDs hold the minimum original
	// row-id per group.
	N *relation.FactTable
	// NSpecs are the aggregate specs to use when cubing over N: the
	// original specs rewritten against N's pre-aggregated columns.
	NSpecs []relation.AggSpec
	// NCountCol is the index of N's source-count measure column.
	NCountCol int
}

// DerivedSpecs rewrites aggregate specs for re-aggregation over a table
// whose measure column i holds the already-aggregated value of spec i and
// whose column countCol holds source counts: COUNT becomes SUM of counts,
// the distributive functions re-apply to their own column.
func DerivedSpecs(specs []relation.AggSpec, countCol int) []relation.AggSpec {
	out := make([]relation.AggSpec, len(specs))
	for i, s := range specs {
		switch s.Func {
		case relation.AggCount:
			out[i] = relation.AggSpec{Func: relation.AggSum, Measure: countCol}
		default:
			out[i] = relation.AggSpec{Func: s.Func, Measure: i}
		}
	}
	return out
}

// Partition streams the fact table at factPath once, routing each tuple
// to its partition (A_L code modulo the partition count — sound on A_L
// because equal codes always land together) and folding it into the
// in-memory node N via hashing. Partition files are written under dir.
//
// The dimension-0 hierarchy must be consistent above L (level maps for
// l > L+1 must factor through level L+1), which Partition verifies; this
// is what lets N's representative base codes stand in for their groups at
// every coarser level.
func Partition(factPath, dir string, hier *hierarchy.Schema, specs []relation.AggSpec, choice LevelChoice) (*Result, error) {
	return PartitionObs(factPath, dir, hier, specs, choice, nil)
}

// PartitionObs is Partition with I/O accounting: the single scan of R is
// charged to partition.bytes_read, partition file volumes to
// partition.bytes_written (§4's 2-reads-1-write bound is then checkable as
// bytes_read ≈ 2 × bytes_written once the cubing phase re-reads the
// partitions), and a partition event per file records its rows and bytes.
// A nil registry makes it identical to Partition.
func PartitionObs(factPath, dir string, hier *hierarchy.Schema, specs []relation.AggSpec, choice LevelChoice, reg *obsv.Registry) (*Result, error) {
	return PartitionScan(factPath, dir, hier, specs, choice, ScanConfig{Reg: reg})
}

// PartitionScan is the full pipeline entry point: PartitionObs plus the
// scan knobs — worker count (drawn from cfg.Pool when set), batch and
// shard sizing, and the parent span for per-shard scan children. The
// result is identical at every parallelism level: the node N comes out
// in the exact group order a sequential scan produces (see nodeHash),
// and partition files hold the same row multiset with original row-ids
// (row order within a partition file may differ under parallelism).
func PartitionScan(factPath, dir string, hier *hierarchy.Schema, specs []relation.AggSpec, choice LevelChoice, cfg ScanConfig) (res *Result, err error) {
	fr, err := relation.OpenFactReader(factPath)
	if err != nil {
		return nil, err
	}
	defer fr.Close()
	if fr.Schema().NumDims() != hier.NumDims() {
		return nil, fmt.Errorf("partition: fact table has %d dims, hierarchy %d", fr.Schema().NumDims(), hier.NumDims())
	}
	dim0 := hier.Dims[0]
	for l := choice.Level + 2; l < dim0.AllLevel(); l++ {
		if !dim0.FactorsThrough(choice.Level+1, l) {
			return nil, fmt.Errorf("partition: level %s of %s does not factor through %s; N cannot represent it",
				dim0.LevelName(l), dim0.Name, dim0.LevelName(choice.Level+1))
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	numParts := choice.NumPartitions
	writers := make([]*relation.FactWriter, numParts)
	paths := make([]string, numParts)
	defer func() {
		if err != nil {
			for _, w := range writers {
				if w != nil {
					w.Close()
				}
			}
		}
	}()
	for i := range writers {
		paths[i] = filepath.Join(dir, fmt.Sprintf("part_%04d.bin", i))
		if writers[i], err = relation.NewFactWriter(paths[i], fr.Schema(), true); err != nil {
			return nil, err
		}
	}

	// N accumulates groups keyed by (A_{L+1} code, base codes of the
	// other dimensions).
	numDims := hier.NumDims()
	nSchema := &relation.Schema{
		DimNames:     fr.Schema().DimNames,
		MeasureNames: append(append([]string{}, aggColNames(specs)...), "__count"),
	}
	levelL := choice.Level
	fold := func(b *relation.Batch, i int, rowid int64, w *scanWorker, hashes []*nodeHash) (int, error) {
		d0 := b.Dims[0][i]
		code := dim0.MapCode(d0, levelL)
		if code < 0 {
			return 0, fmt.Errorf("partition: dim %s maps base code %d to negative level-%d code %d",
				dim0.Name, d0, levelL, code)
		}
		p := int(code) % numParts
		// Node key: dim 0 at L+1, every other dimension at base — packed
		// two 4-byte codes per word, same layout nodeHash.toWords builds.
		kw := w.kwords
		kw[0] = uint64(uint32(dim0.MapCode(d0, levelL+1)))
		for j := 1; j < len(kw); j++ {
			kw[j] = 0
		}
		for d := 1; d < numDims; d++ {
			kw[d>>1] |= uint64(uint32(b.Dims[d][i])) << (uint(d&1) * 32)
		}
		for m := range w.meas {
			w.meas[m] = b.Meas[m][i]
		}
		if hashes[0].addRowWords(kw, w.meas, rowid) {
			hashes[0].appendRepFromBatch(b, i)
		}
		return p, nil
	}
	hashes, err := runScanPipeline(fr, cfg, writers, 1, specs, numDims, fold)
	if err != nil {
		return nil, err
	}
	rowsPerPart := make([]int64, numParts)
	for i, w := range writers {
		rowsPerPart[i] = w.Rows()
		if cerr := w.Close(); cerr != nil {
			return nil, cerr
		}
	}
	n := hashes[0].materialize(nSchema)
	reg := cfg.Reg
	if reg != nil {
		reg.Counter("partition.bytes_read").Add(fr.Rows() * int64(fr.RowWidth()))
		reg.Counter("partition.rows").Add(fr.Rows())
		reg.Gauge("partition.n_groups").Set(int64(n.Len()))
		reportSkew(reg, rowsPerPart)
		tr := reg.Trace()
		for i, p := range paths {
			var size int64
			if fi, serr := os.Stat(p); serr == nil {
				size = fi.Size()
			}
			reg.Counter("partition.bytes_written").Add(size)
			if tr != nil {
				tr.Emit(obsv.PartitionEvent{Ev: "partition", Index: i, Rows: rowsPerPart[i], Bytes: size})
			}
		}
	}
	return &Result{
		Choice:         choice,
		PartitionPaths: paths,
		N:              n,
		NSpecs:         DerivedSpecs(specs, len(specs)),
		NCountCol:      len(specs),
	}, nil
}

// aggColNames derives N's aggregate column names.
func aggColNames(specs []relation.AggSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = fmt.Sprintf("%s_%d", s.Func, i)
	}
	return out
}
