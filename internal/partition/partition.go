// Package partition implements CURE's external partitioning (§4): the
// selection of the partitioning level L on the first dimension
// (observations 1–3 and Table 1's feasibility arithmetic), and the
// single-pass partitioner that splits a disk-resident fact table into
// memory-sized partitions sound on A_L while simultaneously hash-building
// the in-memory node N = A_{L+1} B_0 C_0 ….
package partition

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"cure/internal/hierarchy"
	"cure/internal/obsv"
	"cure/internal/relation"
)

// LevelChoice is the outcome of partition-level selection, carrying the
// quantities Table 1 of the paper reports.
type LevelChoice struct {
	// Level is L, the level of dimension 0 partitioned on.
	Level int
	// NumPartitions is the number of partitions (⌈|R|/M⌉, achievable
	// because |A_L| ≥ that count).
	NumPartitions int
	// PartitionBytes is the expected partition size under uniformity.
	PartitionBytes int64
	// Ratio is |A_0| / |A_{L+1}|, the shrink factor of node N relative
	// to R (observation 2).
	Ratio float64
	// NBytes is the estimated size of node N.
	NBytes int64
}

// SelectLevel picks the maximum level L of dim such that (a) partitioning
// on A_L can produce ⌈rBytes/partBudget⌉ memory-sized sound partitions
// (requires |A_L| ≥ that many distinct values) and (b) the node N built
// at level L+1 fits in nBudget, estimated as rBytes·|A_{L+1}|/|A_0|
// (observation 2; |A_{LT+1}| = 1, i.e. dimension 0 projected out).
//
// It returns an error when no level qualifies; the paper notes the
// algorithm can then be extended to pairs of dimensions, an extension we
// do not implement.
func SelectLevel(dim *hierarchy.Dim, rBytes, partBudget, nBudget int64) (LevelChoice, error) {
	return SelectLevelObs(dim, rBytes, partBudget, nBudget, nil)
}

// SelectLevelObs is SelectLevel with the decision trace streamed to reg's
// trace sink: one level event per candidate level, recording why it was
// rejected (too few distinct values for soundness, or node N over budget)
// or that it was chosen. A nil registry makes it identical to SelectLevel.
func SelectLevelObs(dim *hierarchy.Dim, rBytes, partBudget, nBudget int64, reg *obsv.Registry) (LevelChoice, error) {
	if rBytes <= 0 || partBudget <= 0 || nBudget <= 0 {
		return LevelChoice{}, fmt.Errorf("partition: non-positive sizes (R=%d, M=%d, N budget=%d)", rBytes, partBudget, nBudget)
	}
	tr := reg.Trace()
	// Declare the split of the build budget so heap samples taken during
	// the partitioned phases can be judged against it from outside.
	reg.Gauge("partition.budget.partition_bytes").Set(partBudget)
	reg.Gauge("partition.budget.n_bytes").Set(nBudget)
	need := (rBytes + partBudget - 1) / partBudget
	if need < 1 {
		need = 1
	}
	emit := func(l int, nBytes int64, feasible bool, reason string) {
		if tr == nil {
			return
		}
		tr.Emit(obsv.LevelEvent{
			Ev: "select-level", Dim: dim.Name, Level: l,
			Card: int64(dim.Card(l)), Need: need,
			NBytes: nBytes, NBudget: nBudget,
			Feasible: feasible, Reason: reason,
		})
	}
	base := int64(dim.Card(0))
	for l := dim.AllLevel() - 1; l >= 0; l-- {
		if int64(dim.Card(l)) < need {
			emit(l, 0, false, "cardinality below partition count")
			continue
		}
		nextCard := int64(dim.Card(l + 1)) // 1 when l+1 is ALL
		nBytes := rBytes * nextCard / base
		if nBytes > nBudget {
			emit(l, nBytes, false, "node N over budget")
			continue
		}
		emit(l, nBytes, true, "selected")
		reg.Gauge("partition.level").Set(int64(l))
		reg.Gauge("partition.count").Set(need)
		return LevelChoice{
			Level:          l,
			NumPartitions:  int(need),
			PartitionBytes: (rBytes + need - 1) / need,
			Ratio:          float64(base) / float64(nextCard),
			NBytes:         nBytes,
		}, nil
	}
	return LevelChoice{}, fmt.Errorf("partition: no level of %s yields %d sound partitions with N under %d bytes", dim.Name, need, nBudget)
}

// Result is what Partition produces: the partition files (sound on A_L)
// and the in-memory node N.
type Result struct {
	Choice LevelChoice
	// PartitionPaths are the fact files of the partitions, each carrying
	// original row-ids.
	PartitionPaths []string
	// N is the in-memory node A_{L+1} B_0 C_0 …. Its dimension-0 column
	// holds *representative base codes* (the first base code seen per
	// A_{L+1} group); its measures are the Y aggregate columns followed
	// by a source-tuple count column; RowIDs hold the minimum original
	// row-id per group.
	N *relation.FactTable
	// NSpecs are the aggregate specs to use when cubing over N: the
	// original specs rewritten against N's pre-aggregated columns.
	NSpecs []relation.AggSpec
	// NCountCol is the index of N's source-count measure column.
	NCountCol int
}

// DerivedSpecs rewrites aggregate specs for re-aggregation over a table
// whose measure column i holds the already-aggregated value of spec i and
// whose column countCol holds source counts: COUNT becomes SUM of counts,
// the distributive functions re-apply to their own column.
func DerivedSpecs(specs []relation.AggSpec, countCol int) []relation.AggSpec {
	out := make([]relation.AggSpec, len(specs))
	for i, s := range specs {
		switch s.Func {
		case relation.AggCount:
			out[i] = relation.AggSpec{Func: relation.AggSum, Measure: countCol}
		default:
			out[i] = relation.AggSpec{Func: s.Func, Measure: i}
		}
	}
	return out
}

// Partition streams the fact table at factPath once, routing each tuple
// to its partition (A_L code modulo the partition count — sound on A_L
// because equal codes always land together) and folding it into the
// in-memory node N via hashing. Partition files are written under dir.
//
// The dimension-0 hierarchy must be consistent above L (level maps for
// l > L+1 must factor through level L+1), which Partition verifies; this
// is what lets N's representative base codes stand in for their groups at
// every coarser level.
func Partition(factPath, dir string, hier *hierarchy.Schema, specs []relation.AggSpec, choice LevelChoice) (*Result, error) {
	return PartitionObs(factPath, dir, hier, specs, choice, nil)
}

// PartitionObs is Partition with I/O accounting: the single scan of R is
// charged to partition.bytes_read, partition file volumes to
// partition.bytes_written (§4's 2-reads-1-write bound is then checkable as
// bytes_read ≈ 2 × bytes_written once the cubing phase re-reads the
// partitions), and a partition event per file records its rows and bytes.
// A nil registry makes it identical to Partition.
func PartitionObs(factPath, dir string, hier *hierarchy.Schema, specs []relation.AggSpec, choice LevelChoice, reg *obsv.Registry) (res *Result, err error) {
	fr, err := relation.OpenFactReader(factPath)
	if err != nil {
		return nil, err
	}
	defer fr.Close()
	if fr.Schema().NumDims() != hier.NumDims() {
		return nil, fmt.Errorf("partition: fact table has %d dims, hierarchy %d", fr.Schema().NumDims(), hier.NumDims())
	}
	dim0 := hier.Dims[0]
	for l := choice.Level + 2; l < dim0.AllLevel(); l++ {
		if !dim0.FactorsThrough(choice.Level+1, l) {
			return nil, fmt.Errorf("partition: level %s of %s does not factor through %s; N cannot represent it",
				dim0.LevelName(l), dim0.Name, dim0.LevelName(choice.Level+1))
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	numParts := choice.NumPartitions
	writers := make([]*relation.FactWriter, numParts)
	paths := make([]string, numParts)
	defer func() {
		if err != nil {
			for _, w := range writers {
				if w != nil {
					w.Close()
				}
			}
		}
	}()
	for i := range writers {
		paths[i] = filepath.Join(dir, fmt.Sprintf("part_%04d.bin", i))
		if writers[i], err = relation.NewFactWriter(paths[i], fr.Schema(), true); err != nil {
			return nil, err
		}
	}

	// N accumulates groups keyed by (A_{L+1} code, base codes of the
	// other dimensions).
	numDims := hier.NumDims()
	numMeasures := fr.Schema().NumMeasures()
	nSchema := &relation.Schema{
		DimNames:     fr.Schema().DimNames,
		MeasureNames: append(append([]string{}, aggColNames(specs)...), "__count"),
	}
	n := relation.NewFactTable(nSchema, 1024)
	groups := map[string]int32{}
	key := make([]byte, 4*numDims)
	dims := make([]int32, numDims)
	meas := make([]float64, numMeasures)
	nRow := make([]float64, len(specs)+1)
	aggs := make([]*relation.Aggregator, 0) // one per group; parallel to n rows
	buf := make([]byte, fr.RowWidth())

	rowsPerPart := make([]int64, numParts)
	levelL := choice.Level
	for r := int64(0); r < fr.Rows(); r++ {
		if err := fr.ReadRaw(r, buf); err != nil {
			return nil, err
		}
		fr.DecodeRow(buf, dims, meas)
		code := dim0.MapCode(dims[0], levelL)
		p := int(code) % numParts
		if err := writers[p].WriteWithRowID(dims, meas, r); err != nil {
			return nil, err
		}
		rowsPerPart[p]++

		// Fold into N.
		binary.LittleEndian.PutUint32(key[0:], uint32(dim0.MapCode(dims[0], levelL+1)))
		for d := 1; d < numDims; d++ {
			binary.LittleEndian.PutUint32(key[4*d:], uint32(dims[d]))
		}
		gi, ok := groups[string(key)]
		if !ok {
			gi = int32(n.Len())
			groups[string(key)] = gi
			n.AppendWithRowID(dims, nRow[:len(specs)+1], r) // placeholder measures
			aggs = append(aggs, relation.NewAggregator(specs))
		}
		// Aggregate directly from the decoded measures.
		aggs[gi].AddValues(meas)
		if r < n.RowID(int(gi)) {
			n.RowIDs[gi] = r
		}
	}
	for _, w := range writers {
		if cerr := w.Close(); cerr != nil {
			return nil, cerr
		}
	}
	if reg != nil {
		reg.Counter("partition.bytes_read").Add(fr.Rows() * int64(fr.RowWidth()))
		reg.Counter("partition.rows").Add(fr.Rows())
		reg.Gauge("partition.n_groups").Set(int64(n.Len()))
		tr := reg.Trace()
		for i, p := range paths {
			var size int64
			if fi, serr := os.Stat(p); serr == nil {
				size = fi.Size()
			}
			reg.Counter("partition.bytes_written").Add(size)
			if tr != nil {
				tr.Emit(obsv.PartitionEvent{Ev: "partition", Index: i, Rows: rowsPerPart[i], Bytes: size})
			}
		}
	}
	// Materialize aggregate values and counts into N's measure columns.
	vals := make([]float64, len(specs))
	for gi, a := range aggs {
		vals = a.Values(vals)
		for i, v := range vals {
			n.Measures[i][gi] = v
		}
		n.Measures[len(specs)][gi] = float64(a.Count())
	}
	return &Result{
		Choice:         choice,
		PartitionPaths: paths,
		N:              n,
		NSpecs:         DerivedSpecs(specs, len(specs)),
		NCountCol:      len(specs),
	}, nil
}

// aggColNames derives N's aggregate column names.
func aggColNames(specs []relation.AggSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = fmt.Sprintf("%s_%d", s.Func, i)
	}
	return out
}
