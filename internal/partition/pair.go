package partition

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"cure/internal/hierarchy"
	"cure/internal/relation"
)

// PairChoice is the outcome of pair partition-level selection — the
// extension §4 of the paper mentions for the rare case where no level of
// the first dimension alone yields enough sound partitions ("the
// partitioning algorithm can be extended properly to work on pairs of
// dimensions"; the paper omits it for space, we implement it).
//
// Partitions are sound on the node {A_L, B_M}; two in-memory nodes take
// over everything the partitions cannot cover:
//
//	N1 = A_{L+1} B_0 C_0 …  (nodes with dimension 0 above level L or ALL)
//	N2 = A_0 B_{M+1} C_0 …  (nodes with dimension 0 ≤ L but dimension 1
//	                         above level M or ALL)
type PairChoice struct {
	// LevelA and LevelB are L and M.
	LevelA, LevelB int
	// NumPartitions is ⌈|R|/M_budget⌉, achievable because
	// |A_L|·|B_M| ≥ that count.
	NumPartitions int
	// PartitionBytes is the expected partition size under uniformity.
	PartitionBytes int64
	// N1Bytes and N2Bytes are the estimated sizes of the two in-memory
	// nodes.
	N1Bytes, N2Bytes int64
}

// SelectLevelPair picks the maximum (L, M) (lexicographically, L first)
// such that the pair-value space is large enough for the required number
// of sound partitions and both in-memory nodes fit their budget. It is
// the fallback for SelectLevel.
func SelectLevelPair(dimA, dimB *hierarchy.Dim, rBytes, partBudget, nBudget int64) (PairChoice, error) {
	if rBytes <= 0 || partBudget <= 0 || nBudget <= 0 {
		return PairChoice{}, fmt.Errorf("partition: non-positive sizes (R=%d, M=%d, N budget=%d)", rBytes, partBudget, nBudget)
	}
	need := (rBytes + partBudget - 1) / partBudget
	if need < 1 {
		need = 1
	}
	baseA := int64(dimA.Card(0))
	baseB := int64(dimB.Card(0))
	for la := dimA.AllLevel() - 1; la >= 0; la-- {
		n1 := rBytes * int64(dimA.Card(la+1)) / baseA
		if n1 > nBudget {
			continue
		}
		for lb := dimB.AllLevel() - 1; lb >= 0; lb-- {
			if int64(dimA.Card(la))*int64(dimB.Card(lb)) < need {
				continue
			}
			n2 := rBytes * int64(dimB.Card(lb+1)) / baseB
			if n2 > nBudget {
				continue
			}
			return PairChoice{
				LevelA:         la,
				LevelB:         lb,
				NumPartitions:  int(need),
				PartitionBytes: (rBytes + need - 1) / need,
				N1Bytes:        n1,
				N2Bytes:        n2,
			}, nil
		}
	}
	return PairChoice{}, fmt.Errorf("partition: no level pair of (%s, %s) yields %d sound partitions with N1/N2 under %d bytes",
		dimA.Name, dimB.Name, need, nBudget)
}

// PairResult is what PartitionPair produces.
type PairResult struct {
	Choice         PairChoice
	PartitionPaths []string
	// N1 groups by (A_{L+1}, B_0, C_0 …); N2 by (A_0, B_{M+1}, C_0 …).
	// Both carry representative base codes in the coarsened column, the
	// pre-aggregated measure columns, a source-count column, and minimum
	// original row-ids.
	N1, N2 *relation.FactTable
	// NSpecs re-aggregates either node under the original specs.
	NSpecs []relation.AggSpec
	// NCountCol is the index of the source-count measure column.
	NCountCol int
}

// PartitionPair streams the fact table once, routing each tuple by its
// (A_L, B_M) pair code and hash-building both in-memory nodes in the same
// pass. Both affected dimensions must be hierarchy-consistent above their
// partitioning levels.
func PartitionPair(factPath, dir string, hier *hierarchy.Schema, specs []relation.AggSpec, choice PairChoice) (res *PairResult, err error) {
	if hier.NumDims() < 2 {
		return nil, fmt.Errorf("partition: pair partitioning needs at least 2 dimensions")
	}
	fr, err := relation.OpenFactReader(factPath)
	if err != nil {
		return nil, err
	}
	defer fr.Close()
	if fr.Schema().NumDims() != hier.NumDims() {
		return nil, fmt.Errorf("partition: fact table has %d dims, hierarchy %d", fr.Schema().NumDims(), hier.NumDims())
	}
	dimA, dimB := hier.Dims[0], hier.Dims[1]
	for l := choice.LevelA + 2; l < dimA.AllLevel(); l++ {
		if !dimA.FactorsThrough(choice.LevelA+1, l) {
			return nil, fmt.Errorf("partition: level %s of %s does not factor through %s",
				dimA.LevelName(l), dimA.Name, dimA.LevelName(choice.LevelA+1))
		}
	}
	for l := choice.LevelB + 2; l < dimB.AllLevel(); l++ {
		if !dimB.FactorsThrough(choice.LevelB+1, l) {
			return nil, fmt.Errorf("partition: level %s of %s does not factor through %s",
				dimB.LevelName(l), dimB.Name, dimB.LevelName(choice.LevelB+1))
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	numParts := choice.NumPartitions
	writers := make([]*relation.FactWriter, numParts)
	paths := make([]string, numParts)
	defer func() {
		if err != nil {
			for _, w := range writers {
				if w != nil {
					w.Close()
				}
			}
		}
	}()
	for i := range writers {
		paths[i] = filepath.Join(dir, fmt.Sprintf("pair_%04d.bin", i))
		if writers[i], err = relation.NewFactWriter(paths[i], fr.Schema(), true); err != nil {
			return nil, err
		}
	}

	numDims := hier.NumDims()
	nSchema := &relation.Schema{
		DimNames:     fr.Schema().DimNames,
		MeasureNames: append(append([]string{}, aggColNames(specs)...), "__count"),
	}
	acc1 := newNodeAccumulator(nSchema, specs, numDims)
	acc2 := newNodeAccumulator(nSchema, specs, numDims)

	dims := make([]int32, numDims)
	meas := make([]float64, fr.Schema().NumMeasures())
	buf := make([]byte, fr.RowWidth())
	key := make([]byte, 4*numDims)
	cardBM := int64(dimB.Card(choice.LevelB))
	for r := int64(0); r < fr.Rows(); r++ {
		if err := fr.ReadRaw(r, buf); err != nil {
			return nil, err
		}
		fr.DecodeRow(buf, dims, meas)
		pair := int64(dimA.MapCode(dims[0], choice.LevelA))*cardBM + int64(dimB.MapCode(dims[1], choice.LevelB))
		if err := writers[pair%int64(numParts)].WriteWithRowID(dims, meas, r); err != nil {
			return nil, err
		}
		// N1 key: dim0 at L+1, everything else at base.
		binary.LittleEndian.PutUint32(key[0:], uint32(dimA.MapCode(dims[0], choice.LevelA+1)))
		for d := 1; d < numDims; d++ {
			binary.LittleEndian.PutUint32(key[4*d:], uint32(dims[d]))
		}
		acc1.add(string(key), dims, meas, r)
		// N2 key: dim1 at M+1, everything else at base.
		binary.LittleEndian.PutUint32(key[0:], uint32(dims[0]))
		binary.LittleEndian.PutUint32(key[4:], uint32(dimB.MapCode(dims[1], choice.LevelB+1)))
		for d := 2; d < numDims; d++ {
			binary.LittleEndian.PutUint32(key[4*d:], uint32(dims[d]))
		}
		acc2.add(string(key), dims, meas, r)
	}
	for _, w := range writers {
		if cerr := w.Close(); cerr != nil {
			return nil, cerr
		}
	}
	return &PairResult{
		Choice:         choice,
		PartitionPaths: paths,
		N1:             acc1.finish(),
		N2:             acc2.finish(),
		NSpecs:         DerivedSpecs(specs, len(specs)),
		NCountCol:      len(specs),
	}, nil
}

// nodeAccumulator hash-builds one in-memory node during the partitioning
// pass (shared by the single-dimension and pair paths).
type nodeAccumulator struct {
	table  *relation.FactTable
	groups map[string]int32
	aggs   []*relation.Aggregator
	specs  []relation.AggSpec
}

func newNodeAccumulator(schema *relation.Schema, specs []relation.AggSpec, numDims int) *nodeAccumulator {
	return &nodeAccumulator{
		table:  relation.NewFactTable(schema, 1024),
		groups: map[string]int32{},
		specs:  specs,
	}
}

func (a *nodeAccumulator) add(key string, dims []int32, meas []float64, rowid int64) {
	gi, ok := a.groups[key]
	if !ok {
		gi = int32(a.table.Len())
		a.groups[key] = gi
		placeholder := make([]float64, len(a.specs)+1)
		a.table.AppendWithRowID(dims, placeholder, rowid)
		a.aggs = append(a.aggs, relation.NewAggregator(a.specs))
	}
	a.aggs[gi].AddValues(meas)
	if rowid < a.table.RowID(int(gi)) {
		a.table.RowIDs[gi] = rowid
	}
}

func (a *nodeAccumulator) finish() *relation.FactTable {
	vals := make([]float64, len(a.specs))
	for gi, agg := range a.aggs {
		vals = agg.Values(vals)
		for i, v := range vals {
			a.table.Measures[i][gi] = v
		}
		a.table.Measures[len(a.specs)][gi] = float64(agg.Count())
	}
	return a.table
}
