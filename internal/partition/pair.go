package partition

import (
	"fmt"
	"os"
	"path/filepath"

	"cure/internal/hierarchy"
	"cure/internal/relation"
)

// PairChoice is the outcome of pair partition-level selection — the
// extension §4 of the paper mentions for the rare case where no level of
// the first dimension alone yields enough sound partitions ("the
// partitioning algorithm can be extended properly to work on pairs of
// dimensions"; the paper omits it for space, we implement it).
//
// Partitions are sound on the node {A_L, B_M}; two in-memory nodes take
// over everything the partitions cannot cover:
//
//	N1 = A_{L+1} B_0 C_0 …  (nodes with dimension 0 above level L or ALL)
//	N2 = A_0 B_{M+1} C_0 …  (nodes with dimension 0 ≤ L but dimension 1
//	                         above level M or ALL)
type PairChoice struct {
	// LevelA and LevelB are L and M.
	LevelA, LevelB int
	// NumPartitions is ⌈|R|/M_budget⌉, achievable because
	// |A_L|·|B_M| ≥ that count.
	NumPartitions int
	// PartitionBytes is the expected partition size under uniformity.
	PartitionBytes int64
	// N1Bytes and N2Bytes are the estimated sizes of the two in-memory
	// nodes.
	N1Bytes, N2Bytes int64
}

// SelectLevelPair picks the maximum (L, M) (lexicographically, L first)
// such that the pair-value space is large enough for the required number
// of sound partitions and both in-memory nodes fit their budget. It is
// the fallback for SelectLevel.
func SelectLevelPair(dimA, dimB *hierarchy.Dim, rBytes, partBudget, nBudget int64) (PairChoice, error) {
	if rBytes <= 0 || partBudget <= 0 || nBudget <= 0 {
		return PairChoice{}, fmt.Errorf("partition: non-positive sizes (R=%d, M=%d, N budget=%d)", rBytes, partBudget, nBudget)
	}
	need := (rBytes + partBudget - 1) / partBudget
	if need < 1 {
		need = 1
	}
	baseA := int64(dimA.Card(0))
	baseB := int64(dimB.Card(0))
	for la := dimA.AllLevel() - 1; la >= 0; la-- {
		n1 := rBytes * int64(dimA.Card(la+1)) / baseA
		if n1 > nBudget {
			continue
		}
		for lb := dimB.AllLevel() - 1; lb >= 0; lb-- {
			if int64(dimA.Card(la))*int64(dimB.Card(lb)) < need {
				continue
			}
			n2 := rBytes * int64(dimB.Card(lb+1)) / baseB
			if n2 > nBudget {
				continue
			}
			return PairChoice{
				LevelA:         la,
				LevelB:         lb,
				NumPartitions:  int(need),
				PartitionBytes: (rBytes + need - 1) / need,
				N1Bytes:        n1,
				N2Bytes:        n2,
			}, nil
		}
	}
	return PairChoice{}, fmt.Errorf("partition: no level pair of (%s, %s) yields %d sound partitions with N1/N2 under %d bytes",
		dimA.Name, dimB.Name, need, nBudget)
}

// PairResult is what PartitionPair produces.
type PairResult struct {
	Choice         PairChoice
	PartitionPaths []string
	// N1 groups by (A_{L+1}, B_0, C_0 …); N2 by (A_0, B_{M+1}, C_0 …).
	// Both carry representative base codes in the coarsened column, the
	// pre-aggregated measure columns, a source-count column, and minimum
	// original row-ids.
	N1, N2 *relation.FactTable
	// NSpecs re-aggregates either node under the original specs.
	NSpecs []relation.AggSpec
	// NCountCol is the index of the source-count measure column.
	NCountCol int
}

// PartitionPair streams the fact table once, routing each tuple by its
// (A_L, B_M) pair code and hash-building both in-memory nodes in the same
// pass. Both affected dimensions must be hierarchy-consistent above their
// partitioning levels.
func PartitionPair(factPath, dir string, hier *hierarchy.Schema, specs []relation.AggSpec, choice PairChoice) (*PairResult, error) {
	return PartitionPairScan(factPath, dir, hier, specs, choice, ScanConfig{})
}

// PartitionPairScan is PartitionPair through the parallel scan pipeline
// (see PartitionScan): same deterministic N1/N2 at every worker count,
// same partition-row multisets, plus the scan counters and spans.
func PartitionPairScan(factPath, dir string, hier *hierarchy.Schema, specs []relation.AggSpec, choice PairChoice, cfg ScanConfig) (res *PairResult, err error) {
	if hier.NumDims() < 2 {
		return nil, fmt.Errorf("partition: pair partitioning needs at least 2 dimensions")
	}
	fr, err := relation.OpenFactReader(factPath)
	if err != nil {
		return nil, err
	}
	defer fr.Close()
	if fr.Schema().NumDims() != hier.NumDims() {
		return nil, fmt.Errorf("partition: fact table has %d dims, hierarchy %d", fr.Schema().NumDims(), hier.NumDims())
	}
	dimA, dimB := hier.Dims[0], hier.Dims[1]
	for l := choice.LevelA + 2; l < dimA.AllLevel(); l++ {
		if !dimA.FactorsThrough(choice.LevelA+1, l) {
			return nil, fmt.Errorf("partition: level %s of %s does not factor through %s",
				dimA.LevelName(l), dimA.Name, dimA.LevelName(choice.LevelA+1))
		}
	}
	for l := choice.LevelB + 2; l < dimB.AllLevel(); l++ {
		if !dimB.FactorsThrough(choice.LevelB+1, l) {
			return nil, fmt.Errorf("partition: level %s of %s does not factor through %s",
				dimB.LevelName(l), dimB.Name, dimB.LevelName(choice.LevelB+1))
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	numParts := choice.NumPartitions
	writers := make([]*relation.FactWriter, numParts)
	paths := make([]string, numParts)
	defer func() {
		if err != nil {
			for _, w := range writers {
				if w != nil {
					w.Close()
				}
			}
		}
	}()
	for i := range writers {
		paths[i] = filepath.Join(dir, fmt.Sprintf("pair_%04d.bin", i))
		if writers[i], err = relation.NewFactWriter(paths[i], fr.Schema(), true); err != nil {
			return nil, err
		}
	}

	numDims := hier.NumDims()
	nSchema := &relation.Schema{
		DimNames:     fr.Schema().DimNames,
		MeasureNames: append(append([]string{}, aggColNames(specs)...), "__count"),
	}
	cardBM := int64(dimB.Card(choice.LevelB))
	la, lb := choice.LevelA, choice.LevelB
	fold := func(b *relation.Batch, i int, rowid int64, w *scanWorker, hashes []*nodeHash) (int, error) {
		d0, d1 := b.Dims[0][i], b.Dims[1][i]
		codeA := dimA.MapCode(d0, la)
		codeB := dimB.MapCode(d1, lb)
		if codeA < 0 || codeB < 0 {
			return 0, fmt.Errorf("partition: negative mapped pair code (%s@%d→%d, %s@%d→%d)",
				dimA.Name, d0, codeA, dimB.Name, d1, codeB)
		}
		pair := int64(codeA)*cardBM + int64(codeB)
		p := int(pair % int64(numParts))
		for m := range w.meas {
			w.meas[m] = b.Meas[m][i]
		}
		// Base codes packed two per word; the two node keys differ from
		// each other only in word 0 (dims 0 and 1 share it).
		kw := w.kwords
		for j := 1; j < len(kw); j++ {
			kw[j] = 0
		}
		for d := 2; d < numDims; d++ {
			kw[d>>1] |= uint64(uint32(b.Dims[d][i])) << (uint(d&1) * 32)
		}
		// N1 key: dim0 at L+1, everything else at base.
		kw[0] = uint64(uint32(dimA.MapCode(d0, la+1))) | uint64(uint32(d1))<<32
		if hashes[0].addRowWords(kw, w.meas, rowid) {
			hashes[0].appendRepFromBatch(b, i)
		}
		// N2 key: dim1 at M+1, everything else at base.
		kw[0] = uint64(uint32(d0)) | uint64(uint32(dimB.MapCode(d1, lb+1)))<<32
		if hashes[1].addRowWords(kw, w.meas, rowid) {
			hashes[1].appendRepFromBatch(b, i)
		}
		return p, nil
	}
	hashes, err := runScanPipeline(fr, cfg, writers, 2, specs, numDims, fold)
	if err != nil {
		return nil, err
	}
	rowsPerPart := make([]int64, numParts)
	for i, w := range writers {
		rowsPerPart[i] = w.Rows()
		if cerr := w.Close(); cerr != nil {
			return nil, cerr
		}
	}
	reportSkew(cfg.Reg, rowsPerPart)
	return &PairResult{
		Choice:         choice,
		PartitionPaths: paths,
		N1:             hashes[0].materialize(nSchema),
		N2:             hashes[1].materialize(nSchema),
		NSpecs:         DerivedSpecs(specs, len(specs)),
		NCountCol:      len(specs),
	}, nil
}
