package partition

import (
	"encoding/binary"
	"math"

	"cure/internal/relation"
)

// nodeHash is the flat, allocation-free accumulator behind the in-memory
// node N. The old path kept a map[string]int32 plus one heap-allocated
// relation.Aggregator per group; at millions of groups the pointer chase
// and per-group allocs dominated the fold. nodeHash instead stores each
// group as one fixed-stride record in a flat uint64 array — key words
// (the 4-byte dimension codes packed two per word, zero-padded), source
// count, minimum row-id, then the aggregate values as float64 bits —
// addressed through one open-addressing table. The interleaving is
// deliberate: the fold is memory-latency-bound, and keeping a group's
// key and its mutable state on the same cache line turns the
// compare-then-update of the hot path into a single random access
// instead of one per parallel array.
type nodeHash struct {
	specs  []relation.AggSpec
	keyLen int // logical key bytes: 4 × nDims
	kw     int // key width in uint64 words: ⌈keyLen/8⌉
	st     int // record stride in words: kw + 2 + len(specs)
	nDims  int

	// Open-addressing table: slot value 0 is empty, otherwise group
	// index + 1. Sized to a power of two, grown at ~2/3 load.
	slots []int32
	mask  uint64

	n       int      // number of groups
	recs    []uint64 // n × st group records
	repDims []int32  // n × nDims representative base codes (first occurrence)

	wbuf []uint64 // scratch: one key's words
}

// Record layout offsets, relative to the record start: key words at
// [0,kw), count at kw, min row-id at kw+1, aggregate values (float64
// bits) at [kw+2, st).

// Groups keep their insertion order, which for a single sequential scan
// is first-occurrence order. mergeFrom preserves that property across
// shards: merging per-shard hashes in ascending shard order yields the
// exact group order a sequential scan would have produced, because a
// group's first global occurrence lies in the earliest shard containing
// it (shards are contiguous, ascending row ranges).

func newNodeHash(specs []relation.AggSpec, nDims int) *nodeHash {
	keyLen := 4 * nDims
	kw := (keyLen + 7) / 8
	h := &nodeHash{specs: specs, keyLen: keyLen, kw: kw, st: kw + 2 + len(specs), nDims: nDims}
	h.slots = make([]int32, 64)
	h.mask = 63
	h.wbuf = make([]uint64, kw)
	return h
}

// toWords packs the byte key into h.wbuf. keyLen is a multiple of 4, so
// the tail is either empty or one 4-byte code.
func (h *nodeHash) toWords(key []byte) []uint64 {
	w := h.wbuf
	j := 0
	for o := 0; o+8 <= h.keyLen; o += 8 {
		w[j] = binary.LittleEndian.Uint64(key[o:])
		j++
	}
	if h.keyLen%8 != 0 {
		w[j] = uint64(binary.LittleEndian.Uint32(key[h.keyLen-4:]))
	}
	return w
}

// hashWords is FNV-1a over the key words with a murmur3 finalizer. The
// finalizer is load-bearing: the table index is the hash's low bits, a
// multiply's low bits ignore its operand's high bits, and half the
// dimension codes sit in the high half of their packed word — without
// the down-mixing, those dimensions vanish from the index and probe
// chains degenerate.
func hashWords(w []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range w {
		h ^= v
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// lookup finds the slot holding the key, or the empty slot where it
// belongs.
func (h *nodeHash) lookup(w []uint64) int {
	i := hashWords(w) & h.mask
	for {
		gi := h.slots[i]
		if gi == 0 {
			return int(i)
		}
		rec := h.recs[int(gi-1)*h.st:]
		eq := true
		for j, v := range w {
			if rec[j] != v {
				eq = false
				break
			}
		}
		if eq {
			return int(i)
		}
		i = (i + 1) & h.mask
	}
}

func (h *nodeHash) grow() {
	old := h.slots
	h.slots = make([]int32, len(old)*2)
	h.mask = uint64(len(h.slots) - 1)
	for _, gi := range old {
		if gi == 0 {
			continue
		}
		off := int(gi-1) * h.st
		i := hashWords(h.recs[off:off+h.kw]) & h.mask
		for h.slots[i] != 0 {
			i = (i + 1) & h.mask
		}
		h.slots[i] = gi
	}
}

// appendGroup adds a new group with zeroed aggregate state and returns
// its record offset. slot is the empty slot lookup returned for the
// key. The caller MUST follow up by appending the group's nDims
// representative codes to repDims (addRow and mergeFrom do; pipeline
// folds call appendRep) — the two arrays advance in lockstep.
func (h *nodeHash) appendGroup(slot int, w []uint64, rowid int64) int {
	gi := h.n
	h.n++
	h.slots[slot] = int32(gi + 1)
	h.recs = append(h.recs, w...)
	h.recs = append(h.recs, 0, uint64(rowid))
	for i := 0; i < len(h.specs); i++ {
		h.recs = append(h.recs, 0)
	}
	if uint64(h.n)*3 >= uint64(len(h.slots))*2 {
		h.grow()
	}
	return gi * h.st
}

// appendRep records the representative base codes of the newest group.
func (h *nodeHash) appendRep(dims ...int32) {
	h.repDims = append(h.repDims, dims...)
}

// appendRepFromBatch records row i of a decoded batch as the newest
// group's representative.
func (h *nodeHash) appendRepFromBatch(b *relation.Batch, i int) {
	for d := range b.Dims {
		h.repDims = append(h.repDims, b.Dims[d][i])
	}
}

// addRow folds one source row into the group for key, creating it on
// first sight. Semantics match relation.Aggregator.AddValues exactly.
// key must hold at least keyLen bytes.
func (h *nodeHash) addRow(key []byte, dims []int32, meas []float64, rowid int64) {
	if h.addRowWords(h.toWords(key), meas, rowid) {
		h.appendRep(dims...)
	}
}

// addRowWords is addRow for a pre-packed key (the pipeline's hot path:
// folds pack dimension codes straight from batch columns into words,
// skipping the byte-key round trip). It reports whether the row opened
// a new group — the caller must then appendRep the representative
// codes.
func (h *nodeHash) addRowWords(w []uint64, meas []float64, rowid int64) (first bool) {
	slot := h.lookup(w)
	gi := int(h.slots[slot]) - 1
	first = gi < 0
	var off int
	if first {
		off = h.appendGroup(slot, w, rowid)
	} else {
		off = gi * h.st
	}
	rec := h.recs[off : off+h.st]
	rec[h.kw]++
	if rowid < int64(rec[h.kw+1]) {
		rec[h.kw+1] = uint64(rowid)
	}
	v := rec[h.kw+2:]
	for i, s := range h.specs {
		switch s.Func {
		case relation.AggSum:
			v[i] = math.Float64bits(math.Float64frombits(v[i]) + meas[s.Measure])
		case relation.AggCount:
			v[i] = math.Float64bits(math.Float64frombits(v[i]) + 1)
		case relation.AggMin:
			if m := meas[s.Measure]; first || m < math.Float64frombits(v[i]) {
				v[i] = math.Float64bits(m)
			}
		case relation.AggMax:
			if m := meas[s.Measure]; first || m > math.Float64frombits(v[i]) {
				v[i] = math.Float64bits(m)
			}
		}
	}
	return first
}

// count, minRow, and val read one group's state out of its record.
func (h *nodeHash) count(gi int) int64       { return int64(h.recs[gi*h.st+h.kw]) }
func (h *nodeHash) minRow(gi int) int64      { return int64(h.recs[gi*h.st+h.kw+1]) }
func (h *nodeHash) val(gi, i int) float64    { return math.Float64frombits(h.recs[gi*h.st+h.kw+2+i]) }
func (h *nodeHash) keyWords(gi int) []uint64 { return h.recs[gi*h.st : gi*h.st+h.kw] }

// mergeFrom folds every group of o (in o's insertion order) into h.
// Unlike addRow this merges *pre-aggregated* state: SUM and COUNT add,
// MIN/MAX compare, counts add, min row-ids take the minimum. The
// representative dims of a group present in both stay h's — h holds the
// earlier shards, so its representative is the first occurrence.
func (h *nodeHash) mergeFrom(o *nodeHash) {
	for g2 := 0; g2 < o.n; g2++ {
		orec := o.recs[g2*o.st : (g2+1)*o.st]
		w := orec[:o.kw]
		slot := h.lookup(w)
		gi := int(h.slots[slot]) - 1
		first := gi < 0
		var off int
		if first {
			off = h.appendGroup(slot, w, int64(orec[o.kw+1]))
			h.appendRep(o.repDims[g2*o.nDims : (g2+1)*o.nDims]...)
		} else {
			off = gi * h.st
		}
		rec := h.recs[off : off+h.st]
		rec[h.kw] += orec[o.kw]
		if int64(orec[o.kw+1]) < int64(rec[h.kw+1]) {
			rec[h.kw+1] = orec[o.kw+1]
		}
		v := rec[h.kw+2:]
		ov := orec[o.kw+2:]
		for i, s := range h.specs {
			switch s.Func {
			case relation.AggSum, relation.AggCount:
				v[i] = math.Float64bits(math.Float64frombits(v[i]) + math.Float64frombits(ov[i]))
			case relation.AggMin:
				if first || math.Float64frombits(ov[i]) < math.Float64frombits(v[i]) {
					v[i] = ov[i]
				}
			case relation.AggMax:
				if first || math.Float64frombits(ov[i]) > math.Float64frombits(v[i]) {
					v[i] = ov[i]
				}
			}
		}
	}
}

// materialize renders the accumulated groups, in insertion order, as the
// node relation: representative dims, aggregate columns, the source
// count column, and min row-ids.
func (h *nodeHash) materialize(schema *relation.Schema) *relation.FactTable {
	t := relation.NewFactTable(schema, h.n)
	ns := len(h.specs)
	row := make([]float64, ns+1)
	for gi := 0; gi < h.n; gi++ {
		for i := 0; i < ns; i++ {
			row[i] = h.val(gi, i)
		}
		row[ns] = float64(h.count(gi))
		t.AppendWithRowID(h.repDims[gi*h.nDims:(gi+1)*h.nDims], row, h.minRow(gi))
	}
	return t
}
