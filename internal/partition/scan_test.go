package partition

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"cure/internal/hierarchy"
	"cure/internal/obsv"
	"cure/internal/relation"
)

// tablesIdentical requires exact equality — same rows in the same order,
// same row-ids. The parallel pipeline promises byte-equal N at every
// worker count, so order-insensitive comparison would be too weak.
func tablesIdentical(t *testing.T, label string, a, b *relation.FactTable) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: %d rows vs %d", label, a.Len(), b.Len())
	}
	if !reflect.DeepEqual(a.Dims, b.Dims) {
		t.Fatalf("%s: dim columns differ", label)
	}
	if !reflect.DeepEqual(a.Measures, b.Measures) {
		t.Fatalf("%s: measure columns differ", label)
	}
	if !reflect.DeepEqual(a.RowIDs, b.RowIDs) {
		t.Fatalf("%s: row-ids differ", label)
	}
}

// partitionRowSets loads every partition file into a sorted multiset of
// row strings (row-id included), one per partition.
func partitionRowSets(t *testing.T, paths []string) [][]string {
	t.Helper()
	out := make([][]string, len(paths))
	for i, p := range paths {
		pt, err := relation.ReadFactFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		rows := make([]string, pt.Len())
		for r := 0; r < pt.Len(); r++ {
			rows[r] = rowString(pt, r)
		}
		sort.Strings(rows)
		out[i] = rows
	}
	return out
}

func rowString(tbl *relation.FactTable, r int) string {
	s := fmt.Sprintf("id=%d", tbl.RowID(r))
	for d := range tbl.Dims {
		s += fmt.Sprintf(",d%d=%d", d, tbl.Dims[d][r])
	}
	for m := range tbl.Measures {
		s += fmt.Sprintf(",m%d=%v", m, tbl.Measures[m][r])
	}
	return s
}

// hierTestFact builds a fact table over a 3-level first dimension, a
// 2-level second, and a flat third — the "hierarchical" equivalence
// configuration.
func hierTestFact(t *testing.T, rows int) (string, *hierarchy.Schema) {
	t.Helper()
	m1 := hierarchy.BuildContiguousMap(24, 6)
	m2 := hierarchy.ComposeMaps(m1, hierarchy.BuildContiguousMap(6, 2))
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1", "A2"}, []int32{24, 6, 2}, [][]int32{m1, m2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := hierarchy.NewLinearDim("B", []string{"B0", "B1"}, []int32{10, 2},
		[][]int32{hierarchy.BuildContiguousMap(10, 2)})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := hierarchy.NewSchema(a, b, hierarchy.NewFlatDim("C", 4))
	if err != nil {
		t.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M", "Q"}}
	ft := relation.NewFactTable(schema, rows)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < rows; i++ {
		ft.Append(
			[]int32{int32(rng.Intn(24)), int32(rng.Intn(10)), int32(rng.Intn(4))},
			[]float64{float64(rng.Intn(50)), float64(rng.Intn(7))},
		)
	}
	path := filepath.Join(t.TempDir(), "fact.bin")
	if err := relation.WriteFactFile(path, ft); err != nil {
		t.Fatal(err)
	}
	return path, hier
}

// TestPartitionParallelEquivalence is the satellite equivalence matrix:
// P ∈ {1, 2, 8} (plus deliberately tiny batch/shard sizes to force many
// shards and partial batches) must yield an identical node N — same
// groups, same order, same aggregates, same min row-ids — and identical
// per-partition row multisets with preserved row-ids.
func TestPartitionParallelEquivalence(t *testing.T) {
	configs := []struct {
		name   string
		fact   func(t *testing.T) (string, *hierarchy.Schema)
		specs  []relation.AggSpec
		choice LevelChoice
	}{
		{"flat", func(t *testing.T) (string, *hierarchy.Schema) {
			p, h, _ := buildTestFact(t, 700)
			return p, h
		}, []relation.AggSpec{
			{Func: relation.AggSum, Measure: 0},
			{Func: relation.AggCount},
			{Func: relation.AggMin, Measure: 0},
		}, LevelChoice{Level: 0, NumPartitions: 4}},
		{"hierarchical", func(t *testing.T) (string, *hierarchy.Schema) {
			return hierTestFact(t, 900)
		}, []relation.AggSpec{
			{Func: relation.AggSum, Measure: 0},
			{Func: relation.AggCount},
			{Func: relation.AggMin, Measure: 1},
			{Func: relation.AggMax, Measure: 0},
		}, LevelChoice{Level: 1, NumPartitions: 3}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			path, hier := cfg.fact(t)
			specs := cfg.specs
			base, err := PartitionScan(path, t.TempDir(), hier, specs, cfg.choice,
				ScanConfig{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			baseRows := partitionRowSets(t, base.PartitionPaths)
			for _, par := range []int{1, 2, 8} {
				reg := obsv.NewRegistry()
				res, err := PartitionScan(path, t.TempDir(), hier, specs, cfg.choice,
					ScanConfig{Parallelism: par, BatchRows: 37, ShardRows: 111, Reg: reg})
				if err != nil {
					t.Fatalf("P=%d: %v", par, err)
				}
				tablesIdentical(t, fmt.Sprintf("P=%d node N", par), base.N, res.N)
				gotRows := partitionRowSets(t, res.PartitionPaths)
				if !reflect.DeepEqual(baseRows, gotRows) {
					t.Fatalf("P=%d: partition row multisets differ", par)
				}
				if g := reg.Gauge("partition.skew.max_rows").Value(); g <= 0 {
					t.Fatalf("P=%d: skew gauge not published (max_rows=%d)", par, g)
				}
			}
		})
	}
}

// TestPartitionPairParallelEquivalence covers the pair-partitioned leg
// of the matrix: both nodes N1 and N2 and the partition row multisets
// must be identical at every worker count.
func TestPartitionPairParallelEquivalence(t *testing.T) {
	path, hier := hierTestFact(t, 800)
	specs := []relation.AggSpec{
		{Func: relation.AggSum, Measure: 0},
		{Func: relation.AggCount},
		{Func: relation.AggMax, Measure: 1},
	}
	choice := PairChoice{LevelA: 1, LevelB: 1, NumPartitions: 5}
	base, err := PartitionPairScan(path, t.TempDir(), hier, specs, choice, ScanConfig{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseRows := partitionRowSets(t, base.PartitionPaths)
	for _, par := range []int{1, 2, 8} {
		res, err := PartitionPairScan(path, t.TempDir(), hier, specs, choice,
			ScanConfig{Parallelism: par, BatchRows: 29, ShardRows: 97})
		if err != nil {
			t.Fatalf("P=%d: %v", par, err)
		}
		tablesIdentical(t, fmt.Sprintf("P=%d N1", par), base.N1, res.N1)
		tablesIdentical(t, fmt.Sprintf("P=%d N2", par), base.N2, res.N2)
		gotRows := partitionRowSets(t, res.PartitionPaths)
		if !reflect.DeepEqual(baseRows, gotRows) {
			t.Fatalf("P=%d: partition row multisets differ", par)
		}
	}
}

// TestPartitionRejectsNegativeCode: a corrupt fact row with a negative
// dimension code must fail the build with an explicit error instead of
// panicking on a negative partition index.
func TestPartitionRejectsNegativeCode(t *testing.T) {
	hier, err := hierarchy.NewSchema(hierarchy.NewFlatDim("A", 8), hierarchy.NewFlatDim("B", 3))
	if err != nil {
		t.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"A", "B"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, 4)
	ft.Append([]int32{1, 0}, []float64{1})
	ft.Append([]int32{-3, 1}, []float64{2}) // corrupt
	path := filepath.Join(t.TempDir(), "fact.bin")
	if err := relation.WriteFactFile(path, ft); err != nil {
		t.Fatal(err)
	}
	specs := []relation.AggSpec{{Func: relation.AggCount}}
	if _, err := Partition(path, t.TempDir(), hier, specs, LevelChoice{Level: 0, NumPartitions: 2}); err == nil {
		t.Fatal("negative dim code accepted")
	}
	// Pair path too.
	if _, err := PartitionPair(path, t.TempDir(), hier, specs, PairChoice{LevelA: 0, LevelB: 0, NumPartitions: 2}); err == nil {
		t.Fatal("negative dim code accepted by pair partitioner")
	}
}

// TestNodeHashMatchesAggregator drives nodeHash.addRow and mergeFrom
// against the reference relation.Aggregator on random data.
func TestNodeHashMatchesAggregator(t *testing.T) {
	specs := []relation.AggSpec{
		{Func: relation.AggSum, Measure: 0},
		{Func: relation.AggCount},
		{Func: relation.AggMin, Measure: 1},
		{Func: relation.AggMax, Measure: 1},
	}
	const nDims = 2
	rng := rand.New(rand.NewSource(3))
	type row struct {
		dims []int32
		meas []float64
	}
	rows := make([]row, 2000)
	for i := range rows {
		rows[i] = row{
			dims: []int32{int32(rng.Intn(7)), int32(rng.Intn(5))},
			meas: []float64{float64(rng.Intn(100)) - 50, float64(rng.Intn(40)) - 20},
		}
	}
	key := make([]byte, 4*nDims)
	keyOf := func(r row) []byte {
		for d, v := range r.dims {
			key[4*d] = byte(v)
			key[4*d+1] = byte(v >> 8)
			key[4*d+2] = byte(v >> 16)
			key[4*d+3] = byte(v >> 24)
		}
		return key
	}
	// Reference: map of Aggregators in first-occurrence order.
	type ref struct {
		agg    *relation.Aggregator
		minRow int64
	}
	want := map[string]*ref{}
	var order []string
	for i, r := range rows {
		k := string(keyOf(r))
		g, ok := want[k]
		if !ok {
			g = &ref{agg: relation.NewAggregator(specs), minRow: int64(i)}
			want[k] = g
			order = append(order, k)
		}
		g.agg.AddValues(r.meas)
	}
	// keyAt unpacks group gi's stored key words back into the byte form
	// keyOf produces.
	keyAt := func(h *nodeHash, gi int) string {
		buf := make([]byte, h.kw*8)
		for j, v := range h.keyWords(gi) {
			for b := 0; b < 8; b++ {
				buf[8*j+b] = byte(v >> (8 * b))
			}
		}
		return string(buf[:h.keyLen])
	}
	check := func(label string, h *nodeHash) {
		t.Helper()
		if h.n != len(order) {
			t.Fatalf("%s: %d groups, want %d", label, h.n, len(order))
		}
		for gi, k := range order {
			if keyAt(h, gi) != k {
				t.Fatalf("%s: group %d out of order", label, gi)
			}
			g := want[k]
			vals := g.agg.Values(nil)
			for i := range vals {
				if h.val(gi, i) != vals[i] {
					t.Fatalf("%s: group %d spec %d: %v want %v", label, gi, i, h.val(gi, i), vals[i])
				}
			}
			if h.count(gi) != g.agg.Count() {
				t.Fatalf("%s: group %d count %d want %d", label, gi, h.count(gi), g.agg.Count())
			}
			if h.minRow(gi) != g.minRow {
				t.Fatalf("%s: group %d minRow %d want %d", label, gi, h.minRow(gi), g.minRow)
			}
		}
	}
	// Single hash, sequential adds.
	h := newNodeHash(specs, nDims)
	for i, r := range rows {
		h.addRow(keyOf(r), r.dims, r.meas, int64(i))
	}
	check("sequential", h)
	// Split into shards at awkward boundaries, merge in order.
	for _, nShards := range []int{2, 3, 7, 2000} {
		merged := newNodeHash(specs, nDims)
		per := (len(rows) + nShards - 1) / nShards
		for s := 0; s < nShards; s++ {
			lo, hi := s*per, (s+1)*per
			if hi > len(rows) {
				hi = len(rows)
			}
			sh := newNodeHash(specs, nDims)
			for i := lo; i < hi; i++ {
				sh.addRow(keyOf(rows[i]), rows[i].dims, rows[i].meas, int64(i))
			}
			merged.mergeFrom(sh)
		}
		check(fmt.Sprintf("merged-%d", nShards), merged)
	}
}

// TestScanPipelineEmptyFact: zero-row inputs must produce empty
// partitions and an empty N without tripping the shard math.
func TestScanPipelineEmptyFact(t *testing.T) {
	hier, err := hierarchy.NewSchema(hierarchy.NewFlatDim("A", 8))
	if err != nil {
		t.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"A"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, 0)
	path := filepath.Join(t.TempDir(), "fact.bin")
	if err := relation.WriteFactFile(path, ft); err != nil {
		t.Fatal(err)
	}
	res, err := PartitionScan(path, t.TempDir(), hier, []relation.AggSpec{{Func: relation.AggCount}},
		LevelChoice{Level: 0, NumPartitions: 2}, ScanConfig{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.N.Len() != 0 {
		t.Fatalf("empty fact produced %d N groups", res.N.Len())
	}
	for _, p := range res.PartitionPaths {
		pt, err := relation.ReadFactFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Len() != 0 {
			t.Fatalf("empty fact produced %d partition rows", pt.Len())
		}
	}
}
