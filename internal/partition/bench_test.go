package partition

import (
	"math/rand"
	"path/filepath"
	"testing"

	"cure/internal/hierarchy"
	"cure/internal/relation"
)

// benchFixture writes a fact file shaped like the bench harness's
// partition-throughput dataset: hierarchical A (8192→512→32), three flat
// dims, one integer measure.
func benchFixture(b *testing.B, rows int) (string, *hierarchy.Schema, LevelChoice) {
	b.Helper()
	m01 := hierarchy.BuildContiguousMap(8192, 512)
	m02 := hierarchy.ComposeMaps(m01, hierarchy.BuildContiguousMap(512, 32))
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1", "A2"}, []int32{8192, 512, 32}, [][]int32{m01, m02})
	if err != nil {
		b.Fatal(err)
	}
	hier, err := hierarchy.NewSchema(a,
		hierarchy.NewFlatDim("B", 64), hierarchy.NewFlatDim("C", 8), hierarchy.NewFlatDim("D", 8))
	if err != nil {
		b.Fatal(err)
	}
	schema := &relation.Schema{DimNames: []string{"A", "B", "C", "D"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, rows)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < rows; i++ {
		ft.Append(
			[]int32{int32(rng.Intn(8192)), int32(rng.Intn(64)), int32(rng.Intn(8)), int32(rng.Intn(8))},
			[]float64{float64(rng.Intn(100))},
		)
	}
	dir := b.TempDir()
	path := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(path, ft); err != nil {
		b.Fatal(err)
	}
	rBytes := int64(rows) * int64(schema.RowWidth())
	choice, err := SelectLevel(hier.Dims[0], rBytes, (rBytes+7)/8, rBytes)
	if err != nil {
		b.Fatal(err)
	}
	return path, hier, choice
}

func BenchmarkPartitionScan(b *testing.B) {
	const rows = 1_000_000
	path, hier, choice := benchFixture(b, rows)
	specs := []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}}
	out := b.TempDir()
	b.SetBytes(int64(rows) * 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := PartitionScan(path, filepath.Join(out, "run"), hier, specs, choice, ScanConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if res.N.Len() == 0 {
			b.Fatal("empty N")
		}
	}
}
