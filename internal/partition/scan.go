package partition

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cure/internal/obsv"
	"cure/internal/relation"
)

// This file is the parallel 2R1W scan pipeline. The fact file is split
// into contiguous row-range shards; workers claim shards from an atomic
// counter, decode them batch-wise (relation.ScanBatches), route each row
// to its partition through per-worker write buffers that flush in large
// chunks to mutex-guarded shared writers, and fold the in-memory node(s)
// into per-shard nodeHash accumulators. Shard accumulators merge into
// the final node in ascending shard order, which makes the result — the
// group order, representatives, min row-ids, and (with exact arithmetic)
// the aggregates — identical to what one sequential scan produces, at
// any worker count. See DESIGN.md §12 for the determinism argument.

// WorkerPool grants extra worker slots from a build-wide limiter so the
// partitioner's workers and the cubing phases' workers share one
// concurrency cap. TryAcquire must not block; every successful acquire
// is paired with one Release.
type WorkerPool interface {
	TryAcquire() bool
	Release()
}

// ScanConfig tunes the parallel scan pipeline. The zero value is the
// sequential pipeline with default batch/shard sizes.
type ScanConfig struct {
	// Parallelism is the target worker count including the calling
	// goroutine; values ≤ 1 scan sequentially.
	Parallelism int
	// Pool optionally gates the extra workers; when nil, Parallelism-1
	// helpers spawn unconditionally.
	Pool WorkerPool
	// BatchRows is the decode batch size in rows (≤ 0 picks enough rows
	// for relation.DefaultScanBatchBytes).
	BatchRows int
	// ShardRows is the shard size in rows (≤ 0 picks scanShardBatches
	// decode batches). Shard boundaries are a pure function of the file
	// and this knob — never of Parallelism — so traces are reproducible
	// across worker counts.
	ShardRows int64
	// Reg receives partition.scan.* counters; Span parents the
	// per-shard "scan" child spans. Both may be nil.
	Reg  *obsv.Registry
	Span *obsv.Span
}

const (
	// scanShardBatches is the default shard size in decode batches.
	scanShardBatches = 8
	// scanFlushBytes is the per-partition write-buffer flush threshold.
	scanFlushBytes = 256 << 10
)

// rowFunc routes and folds row i of a decoded batch: it returns the
// row's partition index after folding the row into the shard's node
// hashes. Folds read dimension codes straight out of the batch's
// columns and pack node keys into w's word scratch — no per-row
// column→row copy, no byte-key intermediate.
type rowFunc func(b *relation.Batch, i int, rowid int64, w *scanWorker, hashes []*nodeHash) (int, error)

// shardMerger folds per-shard accumulators into the final node hashes in
// ascending shard order. A worker submitting shard s parks until either
// s is the next shard to merge or the parking window has room; the head
// shard never waits, so the pipeline cannot deadlock. The window bounds
// how many completed shards a straggler can strand in memory.
type shardMerger struct {
	mu      sync.Mutex
	cond    *sync.Cond
	next    int
	pending map[int][]*nodeHash
	window  int
	merged  []*nodeHash
	aborted bool
	stalls  int64 // submissions that had to park
}

func newShardMerger(merged []*nodeHash, window int) *shardMerger {
	m := &shardMerger{pending: map[int][]*nodeHash{}, window: window, merged: merged}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *shardMerger) submit(s int, hashes []*nodeHash) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s != m.next && len(m.pending) >= m.window {
		m.stalls++
		for s != m.next && len(m.pending) >= m.window && !m.aborted {
			m.cond.Wait()
		}
	}
	if m.aborted {
		return
	}
	m.pending[s] = hashes
	for {
		hs, ok := m.pending[m.next]
		if !ok {
			break
		}
		delete(m.pending, m.next)
		for i, h := range hs {
			m.merged[i].mergeFrom(h)
		}
		m.next++
	}
	m.cond.Broadcast()
}

// abort releases any parked submitters after a worker failure.
func (m *shardMerger) abort() {
	m.mu.Lock()
	m.aborted = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// scanWorker is one worker goroutine's private state: fold scratch and
// the per-partition write buffers.
type scanWorker struct {
	meas   []float64 // measure scratch for the node fold
	kwords []uint64  // packed node-key scratch (two codes per word)
	bufs   [][]byte  // pending encoded rows (row bytes + row-id), per partition
	rows   []int     // pending row counts, per partition
}

func newScanWorker(nDims, nMeas, numParts int) *scanWorker {
	return &scanWorker{
		meas:   make([]float64, nMeas),
		kwords: make([]uint64, (4*nDims+7)/8),
		bufs:   make([][]byte, numParts),
		rows:   make([]int, numParts),
	}
}

// runScanPipeline executes the full pass: it returns the final node
// hashes (numHashes of them, merged in shard order). Partition rows land
// in writers; per-partition totals are read back from the writers.
func runScanPipeline(fr *relation.FactReader, cfg ScanConfig, writers []*relation.FactWriter,
	numHashes int, specs []relation.AggSpec, nDims int, fn rowFunc) ([]*nodeHash, error) {

	rows := fr.Rows()
	batchRows := cfg.BatchRows
	if batchRows <= 0 {
		batchRows = relation.BatchRowsFor(fr.RowWidth())
	}
	shardRows := cfg.ShardRows
	if shardRows <= 0 {
		shardRows = int64(batchRows) * scanShardBatches
	}
	numShards := int((rows + shardRows - 1) / shardRows)

	merged := make([]*nodeHash, numHashes)
	for i := range merged {
		merged[i] = newNodeHash(specs, nDims)
	}
	if numShards == 0 {
		return merged, nil
	}

	workers := cfg.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > numShards {
		workers = numShards
	}
	merger := newShardMerger(merged, 4*workers)
	partMu := make([]sync.Mutex, len(writers))
	logicalWidth := fr.Schema().RowWidth()
	recWidth := logicalWidth + 8

	var (
		next     atomic.Int64
		failed   atomic.Bool
		errMu    sync.Mutex
		errs     []error
		panicMu  sync.Mutex
		panicVal any
	)
	fail := func(err error) {
		errMu.Lock()
		errs = append(errs, err)
		errMu.Unlock()
		failed.Store(true)
		merger.abort()
	}
	capture := func(v any) {
		panicMu.Lock()
		if panicVal == nil {
			panicVal = v
		}
		panicMu.Unlock()
		failed.Store(true)
		merger.abort()
	}

	var cFlushes, cStalls, cBatches *obsv.Counter
	if cfg.Reg != nil {
		cFlushes = cfg.Reg.Counter("partition.scan.flushes")
		cStalls = cfg.Reg.Counter("partition.scan.flush_stalls")
		cBatches = cfg.Reg.Counter("partition.scan.batches")
		cfg.Reg.Counter("partition.scan.shards").Add(int64(numShards))
		cfg.Reg.Gauge("partition.scan.workers").Set(int64(workers))
	}

	flush := func(w *scanWorker, p int) error {
		n := w.rows[p]
		if n == 0 {
			return nil
		}
		if !partMu[p].TryLock() {
			if cStalls != nil {
				cStalls.Inc()
			}
			partMu[p].Lock()
		}
		err := writers[p].WriteRawRows(w.bufs[p], n)
		partMu[p].Unlock()
		w.bufs[p] = w.bufs[p][:0]
		w.rows[p] = 0
		if cFlushes != nil {
			cFlushes.Inc()
		}
		return err
	}

	worker := func() {
		w := newScanWorker(fr.Schema().NumDims(), fr.Schema().NumMeasures(), len(writers))
		var idBuf [8]byte
		for {
			s := int(next.Add(1)) - 1
			if s >= numShards || failed.Load() {
				break
			}
			start := int64(s) * shardRows
			end := start + shardRows
			if end > rows {
				end = rows
			}
			hashes := make([]*nodeHash, numHashes)
			for i := range hashes {
				hashes[i] = newNodeHash(specs, nDims)
			}
			sp := cfg.Span.Child("scan")
			err := fr.ScanBatches(start, end, batchRows, func(b *relation.Batch) error {
				for i := 0; i < b.N; i++ {
					rowid := b.RowID(i)
					p, rerr := fn(b, i, rowid, w, hashes)
					if rerr != nil {
						return rerr
					}
					binary.LittleEndian.PutUint64(idBuf[:], uint64(rowid))
					w.bufs[p] = append(w.bufs[p], b.Raw[i*b.Width:i*b.Width+logicalWidth]...)
					w.bufs[p] = append(w.bufs[p], idBuf[:]...)
					w.rows[p]++
					if len(w.bufs[p]) >= scanFlushBytes {
						if ferr := flush(w, p); ferr != nil {
							return ferr
						}
					}
				}
				if cBatches != nil {
					cBatches.Inc()
				}
				return nil
			})
			sp.AddRowsIn(end - start)
			sp.AddBytesRead((end - start) * int64(fr.RowWidth()))
			sp.AddBytesWritten((end - start) * int64(recWidth))
			sp.End()
			if err != nil {
				fail(fmt.Errorf("partition: shard %d (rows %d-%d): %w", s, start, end, err))
				break
			}
			merger.submit(s, hashes)
		}
		// Drain this worker's remaining buffered rows even on failure of
		// another shard: writers are closed (and files deleted) by the
		// caller on error, but a clean exit must not lose rows.
		for p := range w.bufs {
			if w.rows[p] > 0 {
				if err := flush(w, p); err != nil {
					fail(err)
					return
				}
			}
		}
	}

	extras := 0
	maxExtras := workers - 1
	if cfg.Pool != nil {
		for extras < maxExtras && cfg.Pool.TryAcquire() {
			extras++
		}
	} else {
		extras = maxExtras
	}
	var wg sync.WaitGroup
	for i := 0; i < extras; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if cfg.Pool != nil {
				defer cfg.Pool.Release()
			}
			defer func() {
				if v := recover(); v != nil {
					capture(v)
				}
			}()
			worker()
		}()
	}
	func() {
		defer func() {
			if v := recover(); v != nil {
				capture(v)
			}
		}()
		worker()
	}()
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	if cfg.Reg != nil {
		cfg.Reg.Counter("partition.scan.merge_stalls").Add(merger.stalls)
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return merged, nil
}

// reportSkew publishes the partition row-count skew gauges: maximum and
// mean rows per partition. A max far above the mean means the chosen
// level's value distribution is pathological — visible in /metrics and
// surfaced by `curectl doctor`.
func reportSkew(reg *obsv.Registry, rowsPerPart []int64) {
	if reg == nil || len(rowsPerPart) == 0 {
		return
	}
	var max, total int64
	for _, r := range rowsPerPart {
		if r > max {
			max = r
		}
		total += r
	}
	reg.Gauge("partition.skew.max_rows").Set(max)
	reg.Gauge("partition.skew.mean_rows").Set(total / int64(len(rowsPerPart)))
}
