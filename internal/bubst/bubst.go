// Package bubst implements BU-BST (Wang et al., ICDE 2002), the paper's
// second baseline: BUC's execution plan plus condensation of base single
// tuples (BSTs — the paper's trivial tuples), all stored in one monolithic
// relation. The condensed cube is smaller than BUC's, but answering any
// node query requires a sequential scan of the entire relation — the
// behaviour behind the paper's "two to three orders of magnitude worse"
// query times (Figure 16).
package bubst

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/relation"
	"cure/internal/sortutil"
)

const (
	manifestFile        = "bubst.json"
	dataFile            = "bubst.bin"
	allCode      int32  = -1
	flagBST      uint32 = 1
)

// Options configures a BU-BST build.
type Options struct {
	Dir            string
	Iceberg        int64
	ForceQuickSort bool
}

// Stats reports a build.
type Stats struct {
	Tuples  int64 // rows stored (normal + BST)
	BSTs    int64
	Bytes   int64
	Elapsed time.Duration
}

type manifest struct {
	NumDims  int                `json:"num_dims"`
	AggSpecs []relation.AggSpec `json:"agg_specs"`
	Cards    []int32            `json:"cards"`
	DimNames []string           `json:"dim_names"`
	Rows     int64              `json:"rows"`
	Iceberg  int64              `json:"iceberg"`
}

func rowWidth(numDims, numAggrs int) int { return 8 + 4 + 4*numDims + 8*numAggrs }

// Build computes the condensed flat cube of t into opts.Dir.
func Build(t *relation.FactTable, hier *hierarchy.Schema, specs []relation.AggSpec, opts Options) (*Stats, error) {
	start := time.Now()
	if opts.Dir == "" {
		return nil, errors.New("bubst: missing output directory")
	}
	if len(specs) == 0 {
		return nil, errors.New("bubst: need at least one aggregate")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	flat := hier.Flatten()
	f, err := os.Create(filepath.Join(opts.Dir, dataFile))
	if err != nil {
		return nil, err
	}
	b := &builder{
		t:        t,
		flat:     flat,
		specs:    specs,
		enum:     lattice.NewEnum(flat),
		w:        bufio.NewWriterSize(f, 1<<20),
		idx:      sortutil.Iota(nil, t.Len()),
		dims:     make([]int32, flat.NumDims()),
		levels:   make([]int, flat.NumDims()),
		row:      make([]byte, rowWidth(flat.NumDims(), len(specs))),
		aggBuf:   make([]float64, len(specs)),
		minCount: opts.Iceberg,
	}
	if b.minCount < 1 {
		b.minCount = 1
	}
	b.sorter.ForceQuick = opts.ForceQuickSort
	for d := range b.dims {
		b.dims[d] = allCode
		b.levels[d] = 1
	}
	if t.Len() > 0 {
		if err := b.bubst(0, t.Len(), 0); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := b.w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	m := &manifest{NumDims: flat.NumDims(), AggSpecs: specs, Rows: b.rows, Iceberg: opts.Iceberg}
	for _, d := range flat.Dims {
		m.Cards = append(m.Cards, d.Card(0))
		m.DimNames = append(m.DimNames, d.Name)
	}
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(opts.Dir, manifestFile), data, 0o644); err != nil {
		return nil, err
	}
	st := &Stats{Tuples: b.rows, BSTs: b.bsts, Elapsed: time.Since(start)}
	if fi, err := os.Stat(filepath.Join(opts.Dir, dataFile)); err == nil {
		st.Bytes = fi.Size()
	}
	return st, nil
}

type builder struct {
	t        *relation.FactTable
	flat     *hierarchy.Schema
	specs    []relation.AggSpec
	enum     *lattice.Enum
	w        *bufio.Writer
	sorter   sortutil.Sorter
	idx      []int32
	dims     []int32
	levels   []int
	row      []byte
	aggBuf   []float64
	rows     int64
	bsts     int64
	minCount int64
}

func (b *builder) bubst(lo, hi, dim int) error {
	if int64(hi-lo) < b.minCount {
		return nil
	}
	node := b.enum.Encode(b.levels)
	if hi-lo == 1 && b.minCount == 1 {
		// Base single tuple: store it once, flagged, at the least
		// detailed node it belongs to, and prune the recursion — it
		// represents itself in the whole plan subtree.
		b.bsts++
		return b.writeRow(node, flagBST, b.t, int(b.idx[lo]))
	}
	aggs := relation.AggregateRange(b.t, b.specs, b.idx, lo, hi, b.aggBuf)
	if err := b.writeGroupRow(node, aggs); err != nil {
		return err
	}
	for d := dim; d < b.flat.NumDims(); d++ {
		key := sortutil.SliceKeyer{Col: b.t.Dims[d], Hi: b.flat.Dims[d].Card(0)}
		seg := b.idx[lo:hi]
		b.sorter.Sort(seg, key)
		b.levels[d] = 0
		runLo := 0
		for runLo < len(seg) {
			code := key.Key(seg[runLo])
			runHi := runLo + 1
			for runHi < len(seg) && key.Key(seg[runHi]) == code {
				runHi++
			}
			b.dims[d] = code
			if err := b.bubst(lo+runLo, lo+runHi, d+1); err != nil {
				return err
			}
			runLo = runHi
		}
		b.dims[d] = allCode
		b.levels[d] = 1
	}
	return nil
}

// writeGroupRow stores a normal condensed-cube tuple: the current group
// values (allCode marks aggregated-away dimensions) and its aggregates.
func (b *builder) writeGroupRow(node lattice.NodeID, aggs []float64) error {
	binary.LittleEndian.PutUint64(b.row[0:], uint64(node))
	binary.LittleEndian.PutUint32(b.row[8:], 0)
	off := 12
	for _, v := range b.dims {
		binary.LittleEndian.PutUint32(b.row[off:], uint32(v))
		off += 4
	}
	for _, v := range aggs {
		binary.LittleEndian.PutUint64(b.row[off:], math.Float64bits(v))
		off += 8
	}
	b.rows++
	_, err := b.w.Write(b.row)
	return err
}

// writeRow stores a BST: the base dimension values of its single source
// tuple and that tuple's aggregate projections.
func (b *builder) writeRow(node lattice.NodeID, flags uint32, t *relation.FactTable, r int) error {
	binary.LittleEndian.PutUint64(b.row[0:], uint64(node))
	binary.LittleEndian.PutUint32(b.row[8:], flags)
	off := 12
	for d := range t.Dims {
		binary.LittleEndian.PutUint32(b.row[off:], uint32(t.Dims[d][r]))
		off += 4
	}
	for _, s := range b.specs {
		v := 1.0
		if s.Func != relation.AggCount {
			v = t.Measures[s.Measure][r]
		}
		binary.LittleEndian.PutUint64(b.row[off:], math.Float64bits(v))
		off += 8
	}
	b.rows++
	_, err := b.w.Write(b.row)
	return err
}

// Engine answers node queries over a BU-BST cube. Every query scans the
// whole monolithic relation: normal rows match when their node id equals
// the query node; BST rows match when they are stored at a node on the
// query node's plan path (they then project onto the query's grouping).
type Engine struct {
	m     *manifest
	f     *os.File
	enum  *lattice.Enum
	width int
}

// Open opens a BU-BST cube directory.
func Open(dir string) (*Engine, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, err
	}
	m := &manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("bubst: parsing manifest: %w", err)
	}
	dims := make([]*hierarchy.Dim, m.NumDims)
	for i := range dims {
		dims[i] = hierarchy.NewFlatDim(m.DimNames[i], m.Cards[i])
	}
	flat, err := hierarchy.NewSchema(dims...)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, dataFile))
	if err != nil {
		return nil, err
	}
	return &Engine{m: m, f: f, enum: lattice.NewEnum(flat), width: rowWidth(m.NumDims, len(m.AggSpecs))}, nil
}

// Close releases the engine.
func (e *Engine) Close() error { return e.f.Close() }

// Enum exposes the flat node enumeration.
func (e *Engine) Enum() *lattice.Enum { return e.enum }

// Row is one result tuple.
type Row struct {
	Dims  []int32
	Aggrs []float64
}

// NodeQuery streams the tuples of node id by scanning the entire
// relation.
func (e *Engine) NodeQuery(id lattice.NodeID, fn func(Row) error) error {
	onPath := map[lattice.NodeID]bool{}
	for _, anc := range e.enum.PlanPath(id) {
		onPath[anc] = true
	}
	levels := e.enum.Decode(id, nil)
	active := make([]int, 0, len(levels))
	for d, l := range levels {
		if l == 0 {
			active = append(active, d)
		}
	}
	numAggrs := len(e.m.AggSpecs)
	row := Row{Dims: make([]int32, len(active)), Aggrs: make([]float64, numAggrs)}
	full := make([]int32, e.m.NumDims)

	r := bufio.NewReaderSize(&readerAt{f: e.f}, 1<<20)
	buf := make([]byte, e.width)
	for i := int64(0); i < e.m.Rows; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		node := lattice.NodeID(binary.LittleEndian.Uint64(buf[0:]))
		flags := binary.LittleEndian.Uint32(buf[8:])
		isBST := flags&flagBST != 0
		if isBST {
			if !onPath[node] {
				continue
			}
		} else if node != id {
			continue
		}
		for d := 0; d < e.m.NumDims; d++ {
			full[d] = int32(binary.LittleEndian.Uint32(buf[12+4*d:]))
		}
		for ai := 0; ai < numAggrs; ai++ {
			row.Aggrs[ai] = math.Float64frombits(binary.LittleEndian.Uint64(buf[12+4*e.m.NumDims+8*ai:]))
		}
		for i2, d := range active {
			row.Dims[i2] = full[d] // BSTs carry base codes; normal rows carry group codes
		}
		if err := fn(row); err != nil {
			return err
		}
	}
	return nil
}

// readerAt adapts sequential reads over the shared file handle so
// concurrent queries each get a fresh cursor.
type readerAt struct {
	f   *os.File
	off int64
}

func (r *readerAt) Read(p []byte) (int, error) {
	n, err := r.f.ReadAt(p, r.off)
	r.off += int64(n)
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}
