package bubst

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cure/internal/hierarchy"
	"cure/internal/relation"
)

func flatHier(t testing.TB) *hierarchy.Schema {
	t.Helper()
	s, err := hierarchy.NewSchema(
		hierarchy.NewFlatDim("A", 12),
		hierarchy.NewFlatDim("B", 5),
		hierarchy.NewFlatDim("C", 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomFact(t testing.TB, rows int, seed int64) *relation.FactTable {
	t.Helper()
	schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, rows)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		ft.Append([]int32{int32(rng.Intn(12)), int32(rng.Intn(5)), int32(rng.Intn(3))}, []float64{float64(rng.Intn(30))})
	}
	return ft
}

func specs() []relation.AggSpec {
	return []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}}
}

func reference(ft *relation.FactTable, sp []relation.AggSpec, levels []int) map[string][]float64 {
	groups := map[string]*relation.Aggregator{}
	meas := make([]float64, len(ft.Measures))
	for r := 0; r < ft.Len(); r++ {
		var key strings.Builder
		for d, l := range levels {
			if l == 0 {
				fmt.Fprintf(&key, "%d|", ft.Dims[d][r])
			}
		}
		a, ok := groups[key.String()]
		if !ok {
			a = relation.NewAggregator(sp)
			groups[key.String()] = a
		}
		meas = ft.MeasureRow(r, meas)
		a.AddValues(meas)
	}
	out := map[string][]float64{}
	for k, a := range groups {
		out[k] = a.Values(nil)
	}
	return out
}

func key(dims []int32) string {
	var b strings.Builder
	for _, d := range dims {
		fmt.Fprintf(&b, "%d|", d)
	}
	return b.String()
}

func TestBUBSTMatchesReference(t *testing.T) {
	hier := flatHier(t)
	ft := randomFact(t, 600, 23)
	sp := specs()
	dir := t.TempDir()
	st, err := Build(ft, hier, sp, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if st.BSTs == 0 {
		t.Error("no BSTs found in a sparse cube")
	}
	eng, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	enum := eng.Enum()
	for _, id := range enum.AllNodes() {
		levels := enum.Decode(id, nil)
		want := reference(ft, sp, levels)
		got := map[string]bool{}
		if err := eng.NodeQuery(id, func(row Row) error {
			k := key(row.Dims)
			w, ok := want[k]
			if !ok {
				return fmt.Errorf("unexpected tuple %v", row.Dims)
			}
			if got[k] {
				return fmt.Errorf("duplicate tuple %v", row.Dims)
			}
			if w[0] != row.Aggrs[0] || w[1] != row.Aggrs[1] {
				return fmt.Errorf("tuple %v: %v want %v", row.Dims, row.Aggrs, w)
			}
			got[k] = true
			return nil
		}); err != nil {
			t.Fatalf("node %s: %v", enum.Name(id), err)
		}
		if len(got) != len(want) {
			t.Fatalf("node %s: %d tuples, want %d", enum.Name(id), len(got), len(want))
		}
	}
}

func TestBUBSTCondensesAgainstBUCCount(t *testing.T) {
	// The condensed cube must store strictly fewer rows than the full
	// cube whenever BSTs exist.
	hier := flatHier(t)
	ft := randomFact(t, 400, 8)
	sp := specs()
	st, err := Build(ft, hier, sp, Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	enum := hier
	_ = enum
	var full int64
	// Full cube tuple count: sum of distinct groups over all 8 nodes.
	for mask := 0; mask < 8; mask++ {
		levels := []int{(mask >> 0) & 1, (mask >> 1) & 1, (mask >> 2) & 1}
		full += int64(len(reference(ft, sp, levels)))
	}
	if st.Tuples >= full {
		t.Errorf("condensed rows %d not below full cube %d", st.Tuples, full)
	}
}

func TestBUBSTValidation(t *testing.T) {
	hier := flatHier(t)
	ft := randomFact(t, 10, 1)
	if _, err := Build(ft, hier, specs(), Options{}); err == nil {
		t.Error("missing dir accepted")
	}
	if _, err := Build(ft, hier, nil, Options{Dir: t.TempDir()}); err == nil {
		t.Error("missing specs accepted")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("empty dir opened")
	}
}
