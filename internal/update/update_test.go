package update

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"cure/internal/core"
	"cure/internal/hierarchy"
	"cure/internal/query"
	"cure/internal/relation"
)

func testHier(t testing.TB) *hierarchy.Schema {
	t.Helper()
	am1 := hierarchy.BuildContiguousMap(12, 4)
	a, err := hierarchy.NewLinearDim("A", []string{"A0", "A1"}, []int32{12, 4}, [][]int32{am1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := hierarchy.NewLinearDim("B", []string{"B0", "B1"}, []int32{8, 2}, [][]int32{hierarchy.BuildContiguousMap(8, 2)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := hierarchy.NewSchema(a, b, hierarchy.NewFlatDim("C", 3))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomRows(rng *rand.Rand, n int) *relation.FactTable {
	schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, n)
	for i := 0; i < n; i++ {
		ft.Append(
			[]int32{int32(rng.Intn(12)), int32(rng.Intn(8)), int32(rng.Intn(3))},
			[]float64{float64(rng.Intn(9))},
		)
	}
	return ft
}

func specs() []relation.AggSpec {
	return []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}}
}

// combine concatenates two tables.
func combine(a, b *relation.FactTable) *relation.FactTable {
	out := relation.NewFactTable(a.Schema, a.Len()+b.Len())
	dims := make([]int32, a.Schema.NumDims())
	meas := make([]float64, a.Schema.NumMeasures())
	for _, t := range []*relation.FactTable{a, b} {
		for r := 0; r < t.Len(); r++ {
			dims = t.DimRow(r, dims)
			meas = t.MeasureRow(r, meas)
			out.Append(dims, meas)
		}
	}
	return out
}

// cubesEqual compares two cube directories node by node (dims + aggrs).
func cubesEqual(t *testing.T, gotDir, wantDir string) {
	t.Helper()
	got, err := query.OpenDefault(gotDir)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	want, err := query.OpenDefault(wantDir)
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	if got.Enum().NumNodes() != want.Enum().NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", got.Enum().NumNodes(), want.Enum().NumNodes())
	}
	key := func(row query.Row) string {
		var b strings.Builder
		for _, d := range row.Dims {
			fmt.Fprintf(&b, "%d|", d)
		}
		return b.String()
	}
	for _, id := range want.Enum().AllNodes() {
		wantRows := map[string][]float64{}
		if err := want.NodeQuery(id, func(row query.Row) error {
			wantRows[key(row)] = append([]float64(nil), row.Aggrs...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		count := 0
		if err := got.NodeQuery(id, func(row query.Row) error {
			w, ok := wantRows[key(row)]
			if !ok {
				return fmt.Errorf("unexpected tuple %v", row.Dims)
			}
			for i := range w {
				if w[i] != row.Aggrs[i] {
					return fmt.Errorf("tuple %v: aggrs %v, want %v", row.Dims, row.Aggrs, w)
				}
			}
			count++
			return nil
		}); err != nil {
			t.Fatalf("node %s: %v", want.Enum().Name(id), err)
		}
		if count != len(wantRows) {
			t.Fatalf("node %s: %d tuples, want %d", want.Enum().Name(id), count, len(wantRows))
		}
	}
}

func TestApplyMatchesRebuild(t *testing.T) {
	hier := testHier(t)
	rng := rand.New(rand.NewSource(77))
	base := randomRows(rng, 400)
	delta := randomRows(rng, 80)

	dir := t.TempDir()
	oldDir := filepath.Join(dir, "old")
	if _, err := core.BuildFromTable(base, core.Options{Dir: oldDir, Hier: hier, AggSpecs: specs()}); err != nil {
		t.Fatal(err)
	}
	newDir := filepath.Join(dir, "new")
	stats, err := Apply(Options{OldDir: oldDir, NewDir: newDir, Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaRows != 80 || stats.Nodes == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Inserted == 0 || stats.Updated == 0 || stats.Carried == 0 {
		t.Errorf("expected a mix of inserted/updated/carried tuples: %+v", stats)
	}

	// Ground truth: a from-scratch cube over base ∪ delta.
	refDir := filepath.Join(dir, "ref")
	if _, err := core.BuildFromTable(combine(base, delta), core.Options{Dir: refDir, Hier: hier, AggSpecs: specs()}); err != nil {
		t.Fatal(err)
	}
	cubesEqual(t, newDir, refDir)
}

func TestApplyRepeatedBatches(t *testing.T) {
	// Three consecutive delta batches must equal one big rebuild.
	hier := testHier(t)
	rng := rand.New(rand.NewSource(5))
	base := randomRows(rng, 200)
	dir := t.TempDir()
	cur := filepath.Join(dir, "cube0")
	if _, err := core.BuildFromTable(base, core.Options{Dir: cur, Hier: hier, AggSpecs: specs()}); err != nil {
		t.Fatal(err)
	}
	all := base
	for batch := 1; batch <= 3; batch++ {
		delta := randomRows(rng, 50)
		next := filepath.Join(dir, fmt.Sprintf("cube%d", batch))
		if _, err := Apply(Options{OldDir: cur, NewDir: next, Delta: delta}); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		all = combine(all, delta)
		cur = next
	}
	refDir := filepath.Join(dir, "ref")
	if _, err := core.BuildFromTable(all, core.Options{Dir: refDir, Hier: hier, AggSpecs: specs()}); err != nil {
		t.Fatal(err)
	}
	cubesEqual(t, cur, refDir)
}

func TestApplyTTTransitions(t *testing.T) {
	// A crafted case: the base has a singleton (a TT) that the delta
	// duplicates (TT → aggregated tuple) and the delta introduces a brand
	// new singleton (a new TT).
	hier := testHier(t)
	schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M"}}
	base := relation.NewFactTable(schema, 3)
	base.Append([]int32{0, 0, 0}, []float64{1})
	base.Append([]int32{0, 0, 0}, []float64{2})
	base.Append([]int32{5, 5, 1}, []float64{3}) // singleton → TT
	delta := relation.NewFactTable(schema, 2)
	delta.Append([]int32{5, 5, 1}, []float64{4})  // hits the TT
	delta.Append([]int32{11, 7, 2}, []float64{5}) // new singleton

	dir := t.TempDir()
	oldDir := filepath.Join(dir, "old")
	if _, err := core.BuildFromTable(base, core.Options{Dir: oldDir, Hier: hier, AggSpecs: specs()}); err != nil {
		t.Fatal(err)
	}
	newDir := filepath.Join(dir, "new")
	if _, err := Apply(Options{OldDir: oldDir, NewDir: newDir, Delta: delta}); err != nil {
		t.Fatal(err)
	}
	refDir := filepath.Join(dir, "ref")
	if _, err := core.BuildFromTable(combine(base, delta), core.Options{Dir: refDir, Hier: hier, AggSpecs: specs()}); err != nil {
		t.Fatal(err)
	}
	cubesEqual(t, newDir, refDir)

	// The upgraded group must now report count 2 at the base node.
	eng, err := query.OpenDefault(newDir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	node := eng.Enum().Encode([]int{0, 0, 0})
	found := false
	if err := eng.NodeQuery(node, func(row query.Row) error {
		if row.Dims[0] == 5 && row.Dims[1] == 5 && row.Dims[2] == 1 {
			found = true
			if row.Aggrs[1] != 2 || row.Aggrs[0] != 7 {
				t.Errorf("upgraded TT aggrs = %v", row.Aggrs)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("upgraded TT missing from base node")
	}
}

func TestApplyOnPlusCubeKeepsPlus(t *testing.T) {
	hier := testHier(t)
	rng := rand.New(rand.NewSource(9))
	base := randomRows(rng, 150)
	delta := randomRows(rng, 30)
	dir := t.TempDir()
	oldDir := filepath.Join(dir, "old")
	if _, err := core.BuildFromTable(base, core.Options{Dir: oldDir, Hier: hier, AggSpecs: specs(), Plus: true}); err != nil {
		t.Fatal(err)
	}
	newDir := filepath.Join(dir, "new")
	if _, err := Apply(Options{OldDir: oldDir, NewDir: newDir, Delta: delta}); err != nil {
		t.Fatal(err)
	}
	eng, err := query.OpenDefault(newDir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if !eng.Manifest().Plus {
		t.Error("refreshed cube lost the Plus setting")
	}
	refDir := filepath.Join(dir, "ref")
	if _, err := core.BuildFromTable(combine(base, delta), core.Options{Dir: refDir, Hier: hier, AggSpecs: specs()}); err != nil {
		t.Fatal(err)
	}
	cubesEqual(t, newDir, refDir)
}

func TestApplyValidation(t *testing.T) {
	hier := testHier(t)
	rng := rand.New(rand.NewSource(2))
	base := randomRows(rng, 60)
	delta := randomRows(rng, 10)
	dir := t.TempDir()

	// DR cubes are rejected.
	drDir := filepath.Join(dir, "dr")
	if _, err := core.BuildFromTable(base, core.Options{Dir: drDir, Hier: hier, AggSpecs: specs(), DimsInline: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(Options{OldDir: drDir, NewDir: filepath.Join(dir, "x1"), Delta: delta}); err == nil {
		t.Error("DR cube accepted")
	}

	// Iceberg cubes are rejected.
	iceDir := filepath.Join(dir, "ice")
	if _, err := core.BuildFromTable(base, core.Options{Dir: iceDir, Hier: hier, AggSpecs: specs(), Iceberg: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(Options{OldDir: iceDir, NewDir: filepath.Join(dir, "x2"), Delta: delta}); err == nil {
		t.Error("iceberg cube accepted")
	}

	// Cubes without COUNT are rejected.
	noCountDir := filepath.Join(dir, "nocount")
	if _, err := core.BuildFromTable(base, core.Options{
		Dir: noCountDir, Hier: hier,
		AggSpecs: []relation.AggSpec{{Func: relation.AggSum, Measure: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(Options{OldDir: noCountDir, NewDir: filepath.Join(dir, "x3"), Delta: delta}); err == nil {
		t.Error("cube without COUNT accepted")
	}

	okDir := filepath.Join(dir, "ok")
	if _, err := core.BuildFromTable(base, core.Options{Dir: okDir, Hier: hier, AggSpecs: specs()}); err != nil {
		t.Fatal(err)
	}
	empty := relation.NewFactTable(base.Schema, 0)
	if _, err := Apply(Options{OldDir: okDir, NewDir: filepath.Join(dir, "x4"), Delta: empty}); err == nil {
		t.Error("empty delta accepted")
	}
	if _, err := Apply(Options{OldDir: okDir, NewDir: okDir, Delta: delta}); err == nil {
		t.Error("same old/new dir accepted")
	}
	tagged := relation.NewFactTable(base.Schema, 1)
	tagged.AppendWithRowID([]int32{0, 0, 0}, []float64{1}, 5)
	if _, err := Apply(Options{OldDir: okDir, NewDir: filepath.Join(dir, "x5"), Delta: tagged}); err == nil {
		t.Error("row-id-tagged delta accepted")
	}
}

func TestOldCubeStillQueryableAfterApply(t *testing.T) {
	// The fact file grows, but the old cube's manifest pins its row
	// count, so its queries keep returning the pre-delta state.
	hier := testHier(t)
	rng := rand.New(rand.NewSource(13))
	base := randomRows(rng, 120)
	delta := randomRows(rng, 40)
	dir := t.TempDir()
	oldDir := filepath.Join(dir, "old")
	if _, err := core.BuildFromTable(base, core.Options{Dir: oldDir, Hier: hier, AggSpecs: specs()}); err != nil {
		t.Fatal(err)
	}
	eng, err := query.OpenDefault(oldDir)
	if err != nil {
		t.Fatal(err)
	}
	root := eng.Enum().RootID()
	var beforeSum float64
	if err := eng.NodeQuery(root, func(row query.Row) error {
		beforeSum = row.Aggrs[0]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if _, err := Apply(Options{OldDir: oldDir, NewDir: filepath.Join(dir, "new"), Delta: delta}); err != nil {
		t.Fatal(err)
	}
	eng2, err := query.OpenDefault(oldDir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	var afterSum float64
	if err := eng2.NodeQuery(root, func(row query.Row) error {
		afterSum = row.Aggrs[0]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if beforeSum != afterSum {
		t.Errorf("old cube changed after append: %v vs %v", beforeSum, afterSum)
	}
}

func TestApplyOnPartitionedCube(t *testing.T) {
	// The old cube was built out-of-core (TT sharing bounded at the
	// partition level); the merge must read it correctly and produce a
	// consistent refreshed cube.
	hier := testHier(t)
	rng := rand.New(rand.NewSource(41))
	base := randomRows(rng, 600)
	delta := randomRows(rng, 100)
	dir := t.TempDir()
	factPath := filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(factPath, base); err != nil {
		t.Fatal(err)
	}
	oldDir := filepath.Join(dir, "old")
	stats, err := core.Build(core.Options{
		Dir:          oldDir,
		FactPath:     factPath,
		Hier:         hier,
		AggSpecs:     specs(),
		MemoryBudget: 12_000, // forces partitioning (600 rows × 28 B)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partitioned {
		t.Fatal("setup expected a partitioned build")
	}
	newDir := filepath.Join(dir, "new")
	if _, err := Apply(Options{OldDir: oldDir, NewDir: newDir, Delta: delta}); err != nil {
		t.Fatal(err)
	}
	refDir := filepath.Join(dir, "ref")
	if _, err := core.BuildFromTable(combine(base, delta), core.Options{Dir: refDir, Hier: hier, AggSpecs: specs()}); err != nil {
		t.Fatal(err)
	}
	cubesEqual(t, newDir, refDir)
}

func TestApplyMinMaxAggregates(t *testing.T) {
	// MIN/MAX must merge correctly (fold semantics differ from SUM).
	hier := testHier(t)
	rng := rand.New(rand.NewSource(14))
	base := randomRows(rng, 150)
	delta := randomRows(rng, 60)
	allSpecs := []relation.AggSpec{
		{Func: relation.AggSum, Measure: 0},
		{Func: relation.AggCount},
		{Func: relation.AggMin, Measure: 0},
		{Func: relation.AggMax, Measure: 0},
	}
	dir := t.TempDir()
	oldDir := filepath.Join(dir, "old")
	if _, err := core.BuildFromTable(base, core.Options{Dir: oldDir, Hier: hier, AggSpecs: allSpecs}); err != nil {
		t.Fatal(err)
	}
	newDir := filepath.Join(dir, "new")
	if _, err := Apply(Options{OldDir: oldDir, NewDir: newDir, Delta: delta}); err != nil {
		t.Fatal(err)
	}
	refDir := filepath.Join(dir, "ref")
	if _, err := core.BuildFromTable(combine(base, delta), core.Options{Dir: refDir, Hier: hier, AggSpecs: allSpecs}); err != nil {
		t.Fatal(err)
	}
	cubesEqual(t, newDir, refDir)
}
