// Package update implements incremental maintenance of CURE cubes — the
// future-work direction §8 of the paper reports solving for NTs and TTs
// (with CATs in progress). Apply appends a batch of new fact tuples to
// the cube's fact table and produces a refreshed cube directory by
// merging the delta into every lattice node, instead of re-cubing the
// full fact table:
//
//  1. The delta rows are appended to the fact file (row-ids continue), so
//     existing R-rowid references stay valid and the old cube remains
//     queryable until the caller swaps directories.
//  2. The execution-plan tree is walked depth-first. At each node the old
//     tuples (materialized through the query engine, trivial-tuple
//     inheritance included) and the delta's groups are merged by their
//     projected dimension values.
//  3. Merged tuples are re-emitted through a fresh signature pool and
//     cube writer: groups that remain singletons are stored as trivial
//     tuples exactly at the least detailed node where they are singleton
//     (decided against the parent node's merged counts), and everything
//     else is re-classified into NTs and CATs — aggregate collisions may
//     change with the new data, so classification must re-run.
//
// Requirements: the cube must carry a COUNT aggregate (source-set sizes
// are recovered from it), must not be a CURE_DR cube (its NT rows drop
// the R-rowid), and must not be an iceberg cube (pruned groups cannot be
// merged). Memory grows with the tuple counts along one root-to-leaf plan
// path, matching the in-memory spirit of the merge.
package update

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/query"
	"cure/internal/relation"
	"cure/internal/signature"
	"cure/internal/storage"
)

// Options configures an incremental update.
type Options struct {
	// OldDir is the existing cube directory.
	OldDir string
	// NewDir receives the refreshed cube (must differ from OldDir).
	NewDir string
	// Delta holds the new fact tuples (same schema as the fact table).
	Delta *relation.FactTable
	// PoolCapacity sizes the signature pool for re-classification
	// (default core.DefaultPoolCapacity).
	PoolCapacity int
}

// Stats reports what an update did.
type Stats struct {
	// DeltaRows is the number of appended fact tuples.
	DeltaRows int
	// Nodes is the number of lattice nodes merged.
	Nodes int
	// Updated counts merged tuples whose aggregates changed.
	Updated int64
	// Inserted counts tuples that exist only because of the delta.
	Inserted int64
	// Carried counts old tuples re-emitted unchanged.
	Carried int64
	// TTs is the number of trivial tuples in the refreshed cube.
	TTs int64
	// Sizes is the refreshed cube's footprint.
	Sizes storage.Sizes
	// Elapsed is the wall-clock merge time.
	Elapsed time.Duration
}

// mergedTuple is one group during the per-node merge.
type mergedTuple struct {
	aggrs    []float64
	count    int64
	minRowid int64
	updated  bool // touched by the delta
	isNew    bool // exists only because of the delta
}

// Apply merges a delta batch into the cube at OldDir, writing the
// refreshed cube into NewDir.
func Apply(opts Options) (*Stats, error) {
	start := time.Now()
	if opts.OldDir == "" || opts.NewDir == "" || opts.OldDir == opts.NewDir {
		return nil, errors.New("update: need distinct OldDir and NewDir")
	}
	if opts.Delta == nil || opts.Delta.Len() == 0 {
		return nil, errors.New("update: empty delta")
	}
	if opts.Delta.RowIDs != nil {
		return nil, errors.New("update: delta must not carry explicit row-ids")
	}
	old, err := query.OpenDefault(opts.OldDir)
	if err != nil {
		return nil, err
	}
	defer old.Close()
	m := old.Manifest()
	if m.DimsInline {
		return nil, errors.New("update: CURE_DR cubes drop R-rowids and cannot be incrementally maintained")
	}
	if m.Iceberg > 1 {
		return nil, errors.New("update: iceberg cubes cannot be incrementally maintained (pruned groups are unrecoverable)")
	}
	countAgg := -1
	for i, s := range m.AggSpecs {
		if s.Func == relation.AggCount {
			countAgg = i
			break
		}
	}
	if countAgg < 0 {
		return nil, errors.New("update: cube needs a COUNT aggregate to recover source-set sizes")
	}
	hier := old.Hier()
	if hier.NumDims() != opts.Delta.Schema.NumDims() {
		return nil, fmt.Errorf("update: delta has %d dims, cube %d", opts.Delta.Schema.NumDims(), hier.NumDims())
	}

	// 1. Extend the fact table; delta tuple i becomes row-id firstID+i.
	factPath := old.FactPath()
	firstID, err := relation.AppendToFactFile(factPath, opts.Delta)
	if err != nil {
		return nil, err
	}
	factRows := firstID + int64(opts.Delta.Len())
	// Load the extended fact table once through the chunked scan path: the
	// merge re-projects a source row per singleton tuple, which would
	// otherwise be one random read each (the merge is an in-memory pass,
	// like the builds it replaces). Loading exactly factRows also shields
	// the merge from rows appended concurrently after ours.
	fact, err := relation.LoadFactRows(factPath, factRows)
	if err != nil {
		return nil, err
	}
	if int64(fact.Len()) < factRows {
		return nil, fmt.Errorf("update: extended fact file holds %d rows, want %d", fact.Len(), factRows)
	}

	w, err := storage.NewWriter(storage.Options{
		Dir:      opts.NewDir,
		Hier:     hier,
		AggSpecs: m.AggSpecs,
		FactFile: factPath,
		FactRows: factRows,
		Plus:     m.Plus,
		// The maintained cube keeps the old cube's storage format.
		Compression: m.Compression,
	})
	if err != nil {
		return nil, err
	}
	poolCap := opts.PoolCapacity
	if poolCap <= 0 {
		poolCap = 1_000_000
	}
	pool, err := signature.NewPool(len(m.AggSpecs), poolCap, w)
	if err != nil {
		w.Abort()
		return nil, err
	}

	mg := &merger{
		old:      old,
		delta:    opts.Delta,
		firstID:  firstID,
		hier:     hier,
		enum:     old.Enum(),
		specs:    m.AggSpecs,
		countAgg: countAgg,
		pool:     pool,
		w:        w,
		fact:     fact,
		stats:    &Stats{DeltaRows: opts.Delta.Len()},
	}
	if err := mg.walk(mg.enum.RootID(), nil); err != nil {
		w.Abort()
		return nil, err
	}
	if err := pool.Flush(); err != nil {
		w.Abort()
		return nil, err
	}
	manifest, err := w.Finalize(pool.Format())
	if err != nil {
		return nil, err
	}
	mg.stats.Sizes = manifest.Sizes
	mg.stats.Elapsed = time.Since(start)
	return mg.stats, nil
}

type merger struct {
	old      *query.Engine
	delta    *relation.FactTable
	firstID  int64
	hier     *hierarchy.Schema
	enum     *lattice.Enum
	specs    []relation.AggSpec
	countAgg int
	pool     *signature.Pool
	w        *storage.Writer
	fact     *relation.FactTable
	stats    *Stats

	keyBuf  []byte
	dimBuf  []int32
	measBuf []float64
}

// walk merges node id and recurses into its plan children, carrying the
// merged map so children can place trivial tuples correctly.
func (mg *merger) walk(id lattice.NodeID, parent map[string]*mergedTuple) error {
	merged, err := mg.mergeNode(id, parent)
	if err != nil {
		return err
	}
	mg.stats.Nodes++
	for _, child := range mg.enum.PlanChildren(id) {
		if err := mg.walk(child, merged); err != nil {
			return err
		}
	}
	return nil
}

// mergeNode builds the merged tuple map of one node, emits its tuples,
// and returns the map for the children's trivial-tuple placement.
func (mg *merger) mergeNode(id lattice.NodeID, parent map[string]*mergedTuple) (map[string]*mergedTuple, error) {
	levels := mg.enum.Decode(id, nil)
	active := make([]int, 0, len(levels))
	for d, l := range levels {
		if !mg.hier.Dims[d].IsAll(l) {
			active = append(active, d)
		}
	}
	merged := map[string]*mergedTuple{}

	// Old side: the query engine materializes the node completely,
	// including inherited trivial tuples, and exposes each tuple's
	// minimum source row-id.
	err := mg.old.NodeQuery(id, func(row query.Row) error {
		if row.RRowid < 0 {
			return fmt.Errorf("update: node %s produced a tuple without an R-rowid", mg.enum.Name(id))
		}
		t := &mergedTuple{
			aggrs:    append([]float64(nil), row.Aggrs...),
			count:    int64(row.Aggrs[mg.countAgg]),
			minRowid: row.RRowid,
		}
		merged[mg.key(row.Dims)] = t
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Delta side: project and fold every delta row.
	numAggrs := len(mg.specs)
	if cap(mg.measBuf) < len(mg.delta.Measures) {
		mg.measBuf = make([]float64, len(mg.delta.Measures))
	}
	dims := make([]int32, len(active))
	for r := 0; r < mg.delta.Len(); r++ {
		for i, d := range active {
			dims[i] = mg.hier.Dims[d].MapCode(mg.delta.Dims[d][r], levels[d])
		}
		k := mg.key(dims)
		rowid := mg.firstID + int64(r)
		meas := mg.delta.MeasureRow(r, mg.measBuf)
		t, ok := merged[k]
		if !ok {
			t = &mergedTuple{
				aggrs:    make([]float64, numAggrs),
				minRowid: rowid,
				isNew:    true,
				updated:  true,
			}
			initAggrs(t.aggrs, mg.specs, meas)
			t.count = 1
			merged[k] = t
			continue
		}
		foldAggrs(t.aggrs, mg.specs, meas)
		t.count++
		t.updated = true
		if rowid < t.minRowid {
			t.minRowid = rowid
		}
	}

	// Emit.
	for _, t := range merged {
		switch {
		case t.isNew:
			mg.stats.Inserted++
		case t.updated:
			mg.stats.Updated++
		default:
			mg.stats.Carried++
		}
		if t.count == 1 {
			// Singleton: a trivial tuple. Store it only at the least
			// detailed node it belongs to — here, unless the parent's
			// group is also a singleton (then an ancestor already holds
			// it and this node inherits it).
			if parent != nil {
				pk, err := mg.parentKey(id, t.minRowid)
				if err != nil {
					return nil, err
				}
				if pt, ok := parent[pk]; ok && pt.count == 1 {
					continue
				}
			}
			mg.stats.TTs++
			if err := mg.w.WriteTT(id, t.minRowid); err != nil {
				return nil, err
			}
			continue
		}
		if err := mg.pool.Add(id, t.minRowid, t.aggrs); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// key encodes projected dimension codes into a map key.
func (mg *merger) key(dims []int32) string {
	mg.keyBuf = mg.keyBuf[:0]
	for _, d := range dims {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(d))
		mg.keyBuf = append(mg.keyBuf, b[:]...)
	}
	return string(mg.keyBuf)
}

// parentKey computes a tuple's group key in the plan parent of node id by
// re-projecting its source fact row.
func (mg *merger) parentKey(id lattice.NodeID, rrowid int64) (string, error) {
	pid, ok := mg.enum.PlanParent(id)
	if !ok {
		return "", fmt.Errorf("update: node %s has no plan parent", mg.enum.Name(id))
	}
	plevels := mg.enum.Decode(pid, nil)
	proj := make([]int32, 0, len(plevels))
	for d, l := range plevels {
		if mg.hier.Dims[d].IsAll(l) {
			continue
		}
		proj = append(proj, mg.hier.Dims[d].MapCode(mg.fact.Dims[d][rrowid], l))
	}
	return mg.key(proj), nil
}

// initAggrs seeds aggregate values from one source tuple's measures.
func initAggrs(dst []float64, specs []relation.AggSpec, meas []float64) {
	for i, s := range specs {
		if s.Func == relation.AggCount {
			dst[i] = 1
		} else {
			dst[i] = meas[s.Measure]
		}
	}
}

// foldAggrs folds one more source tuple into aggregate values.
func foldAggrs(dst []float64, specs []relation.AggSpec, meas []float64) {
	for i, s := range specs {
		switch s.Func {
		case relation.AggSum:
			dst[i] += meas[s.Measure]
		case relation.AggCount:
			dst[i]++
		case relation.AggMin:
			if meas[s.Measure] < dst[i] {
				dst[i] = meas[s.Measure]
			}
		case relation.AggMax:
			if meas[s.Measure] > dst[i] {
				dst[i] = meas[s.Measure]
			}
		}
	}
}
