package bitmap

import "testing"

// FuzzUnmarshal hardens the bitmap decoder against arbitrary input: it
// must reject inconsistent headers with an error, never panic or
// over-allocate based on unvalidated lengths.
func FuzzUnmarshal(f *testing.F) {
	f.Add(New(100).Marshal())
	f.Add(FromIDs(64, []int64{0, 63}).Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Unmarshal(data)
		if err != nil {
			return
		}
		// A successfully decoded bitmap must round-trip.
		if got := b.Marshal(); len(got) != int(b.SizeBytes()) {
			t.Fatalf("marshal length %d != SizeBytes %d", len(got), b.SizeBytes())
		}
	})
}
