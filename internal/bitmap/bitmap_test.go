package bitmap

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetGetCount(t *testing.T) {
	b := New(200)
	if b.Len() != 200 {
		t.Fatalf("Len = %d", b.Len())
	}
	ids := []int64{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range ids {
		b.Set(i)
	}
	for _, i := range ids {
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Get(2) || b.Get(198) {
		t.Error("unset bit reads set")
	}
	if b.Get(-1) || b.Get(200) {
		t.Error("out-of-range Get returned true")
	}
	if got := b.Count(); got != int64(len(ids)) {
		t.Errorf("Count = %d, want %d", got, len(ids))
	}
}

func TestSetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set out of range did not panic")
		}
	}()
	New(10).Set(10)
}

func TestForEachOrderAndStop(t *testing.T) {
	b := FromIDs(300, []int64{5, 250, 70, 71})
	var got []int64
	b.ForEach(func(i int64) bool {
		got = append(got, i)
		return true
	})
	if !reflect.DeepEqual(got, []int64{5, 70, 71, 250}) {
		t.Errorf("ForEach order = %v", got)
	}
	got = got[:0]
	b.ForEach(func(i int64) bool {
		got = append(got, i)
		return len(got) < 2
	})
	if len(got) != 2 {
		t.Errorf("early stop visited %d bits", len(got))
	}
}

func TestIDsRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(nRaw) + 1
		count := rng.Intn(int(n))
		set := map[int64]bool{}
		for i := 0; i < count; i++ {
			set[int64(rng.Intn(int(n)))] = true
		}
		ids := make([]int64, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		b := FromIDs(n, ids)
		back := b.IDs()
		if int64(len(back)) != b.Count() || len(back) != len(set) {
			return false
		}
		for i := 1; i < len(back); i++ {
			if back[i] <= back[i-1] {
				return false
			}
		}
		for _, id := range back {
			if !set[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	b := FromIDs(1000, []int64{0, 999, 512, 64})
	back, err := Unmarshal(b.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back.IDs(), b.IDs()) || back.Len() != b.Len() {
		t.Error("round trip mismatch")
	}
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("truncated data accepted")
	}
	raw := b.Marshal()
	raw = raw[:len(raw)-8]
	if _, err := Unmarshal(raw); err == nil {
		t.Error("short payload accepted")
	}
}

func TestSizeBytesMatchesMarshal(t *testing.T) {
	for _, n := range []int64{1, 63, 64, 65, 1000} {
		b := New(n)
		if got := int64(len(b.Marshal())); got != b.SizeBytes() {
			t.Errorf("n=%d: Marshal len %d != SizeBytes %d", n, got, b.SizeBytes())
		}
	}
}

func TestDenserThanIDs(t *testing.T) {
	// 1M-row domain: bitmap costs ~125KB; beats id lists above ~15.6K ids.
	if DenserThanIDs(1_000_000, 1000) {
		t.Error("sparse id set should prefer explicit ids")
	}
	if !DenserThanIDs(1_000_000, 100_000) {
		t.Error("dense id set should prefer bitmap")
	}
}
