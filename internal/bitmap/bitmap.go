// Package bitmap implements the dense bitset used by the CURE+ variant:
// §5.3 proposes replacing the row-id lists of TT (and format-(a) CAT)
// relations with bitmap indices over the referenced relation, which both
// compresses dense id sets and yields sequential scans at query time.
package bitmap

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Bitmap is a dense bitset over row-ids [0, n).
type Bitmap struct {
	words []uint64
	n     int64 // logical length in bits
}

// New creates a bitmap able to hold bits [0, n).
func New(n int64) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the logical bit length.
func (b *Bitmap) Len() int64 { return b.n }

// Set marks bit i.
func (b *Bitmap) Set(i int64) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmap: set %d out of range [0,%d)", i, b.n))
	}
	b.words[i>>6] |= 1 << uint(i&63)
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int64) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int64 {
	var c int64
	for _, w := range b.words {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// ForEach calls fn for every set bit in increasing order; this is the
// sequential-scan access pattern the paper's post-processing step aims
// for. fn returning false stops the iteration.
func (b *Bitmap) ForEach(fn func(i int64) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(int64(wi)*64 + int64(bit)) {
				return
			}
			w &= w - 1
		}
	}
}

// FromIDs builds a bitmap over [0, n) with the given ids set.
func FromIDs(n int64, ids []int64) *Bitmap {
	b := New(n)
	for _, id := range ids {
		b.Set(id)
	}
	return b
}

// IDs returns the set bits as a sorted slice.
func (b *Bitmap) IDs() []int64 {
	out := make([]int64, 0, b.Count())
	b.ForEach(func(i int64) bool {
		out = append(out, i)
		return true
	})
	return out
}

// SizeBytes returns the serialized size of the bitmap.
func (b *Bitmap) SizeBytes() int64 { return 16 + int64(len(b.words))*8 }

// Marshal serializes the bitmap (length header + words, little endian).
func (b *Bitmap) Marshal() []byte {
	out := make([]byte, b.SizeBytes())
	binary.LittleEndian.PutUint64(out[0:], uint64(b.n))
	binary.LittleEndian.PutUint64(out[8:], uint64(len(b.words)))
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[16+8*i:], w)
	}
	return out
}

// Unmarshal reconstructs a bitmap serialized by Marshal.
func Unmarshal(data []byte) (*Bitmap, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("bitmap: truncated header (%d bytes)", len(data))
	}
	n := int64(binary.LittleEndian.Uint64(data[0:]))
	words := int64(binary.LittleEndian.Uint64(data[8:]))
	if words != (n+63)/64 || int64(len(data)) < 16+8*words {
		return nil, fmt.Errorf("bitmap: inconsistent lengths n=%d words=%d payload=%d", n, words, len(data)-16)
	}
	b := &Bitmap{words: make([]uint64, words), n: n}
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[16+8*i:])
	}
	return b, nil
}

// DenserThanIDs reports whether storing count row-ids over a domain of n
// rows is cheaper as a bitmap than as an explicit 8-byte id list — the
// paper's "this variation makes sense only if the number of row-ids stored
// originally is large enough" criterion.
func DenserThanIDs(n, count int64) bool {
	return 16+8*((n+63)/64) < 8*count
}
