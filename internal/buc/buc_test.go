package buc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/relation"
)

func flatHier(t testing.TB) *hierarchy.Schema {
	t.Helper()
	s, err := hierarchy.NewSchema(
		hierarchy.NewFlatDim("A", 10),
		hierarchy.NewFlatDim("B", 6),
		hierarchy.NewFlatDim("C", 4),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomFact(t testing.TB, rows int, seed int64) *relation.FactTable {
	t.Helper()
	schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, rows)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		ft.Append([]int32{int32(rng.Intn(10)), int32(rng.Intn(6)), int32(rng.Intn(4))}, []float64{float64(rng.Intn(50))})
	}
	return ft
}

func specs() []relation.AggSpec {
	return []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}}
}

// reference computes one flat node by brute force.
func reference(ft *relation.FactTable, sp []relation.AggSpec, levels []int) map[string][]float64 {
	groups := map[string]*relation.Aggregator{}
	meas := make([]float64, len(ft.Measures))
	for r := 0; r < ft.Len(); r++ {
		var key strings.Builder
		for d, l := range levels {
			if l == 0 {
				fmt.Fprintf(&key, "%d|", ft.Dims[d][r])
			}
		}
		a, ok := groups[key.String()]
		if !ok {
			a = relation.NewAggregator(sp)
			groups[key.String()] = a
		}
		meas = ft.MeasureRow(r, meas)
		a.AddValues(meas)
	}
	out := map[string][]float64{}
	for k, a := range groups {
		out[k] = a.Values(nil)
	}
	return out
}

func key(dims []int32) string {
	var b strings.Builder
	for _, d := range dims {
		fmt.Fprintf(&b, "%d|", d)
	}
	return b.String()
}

func TestBUCBuildStats(t *testing.T) {
	hier := flatHier(t)
	ft := randomFact(t, 700, 5)
	st, err := Build(ft, hier, specs(), Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tuples == 0 || st.Bytes == 0 || st.Nodes != 8 {
		t.Fatalf("stats = %+v", st)
	}
	// BUC materializes every group of every node: the total tuple count
	// must be the sum over nodes of distinct-group counts.
	enum := lattice.NewEnum(hier)
	var want int64
	for _, id := range enum.AllNodes() {
		want += int64(len(reference(ft, specs(), enum.Decode(id, nil))))
	}
	if st.Tuples != want {
		t.Fatalf("Tuples = %d, want %d", st.Tuples, want)
	}
}

func TestBUCQueryAllNodes(t *testing.T) {
	hier := flatHier(t)
	ft := randomFact(t, 700, 5)
	sp := specs()
	dir := t.TempDir()
	if _, err := Build(ft, hier, sp, Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	eng, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	enum := lattice.NewEnum(hier)
	for _, id := range enum.AllNodes() {
		levels := enum.Decode(id, nil)
		want := reference(ft, sp, levels)
		got := 0
		if err := eng.NodeQuery(id, func(row Row) error {
			w, ok := want[key(row.Dims)]
			if !ok {
				return fmt.Errorf("unexpected tuple %v", row.Dims)
			}
			if w[0] != row.Aggrs[0] || w[1] != row.Aggrs[1] {
				return fmt.Errorf("tuple %v: %v want %v", row.Dims, row.Aggrs, w)
			}
			got++
			return nil
		}); err != nil {
			t.Fatalf("node %s: %v", enum.Name(id), err)
		}
		if got != len(want) {
			t.Fatalf("node %s: %d tuples, want %d", enum.Name(id), got, len(want))
		}
		if eng.NodeCount(id) != int64(len(want)) {
			t.Fatalf("node %s: NodeCount = %d, want %d", enum.Name(id), eng.NodeCount(id), len(want))
		}
	}
}

func TestBUCIceberg(t *testing.T) {
	hier := flatHier(t)
	ft := randomFact(t, 700, 9)
	sp := specs()
	dir := t.TempDir()
	const min = 4
	if _, err := Build(ft, hier, sp, Options{Dir: dir, Iceberg: min}); err != nil {
		t.Fatal(err)
	}
	eng, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	enum := lattice.NewEnum(hier)
	for _, id := range enum.AllNodes() {
		levels := enum.Decode(id, nil)
		want := reference(ft, sp, levels)
		for k, v := range want {
			if v[1] < min {
				delete(want, k)
			}
		}
		got := 0
		if err := eng.NodeQuery(id, func(row Row) error {
			if _, ok := want[key(row.Dims)]; !ok {
				return fmt.Errorf("below-threshold tuple %v (%v)", row.Dims, row.Aggrs)
			}
			got++
			return nil
		}); err != nil {
			t.Fatalf("node %s: %v", enum.Name(id), err)
		}
		if got != len(want) {
			t.Fatalf("node %s: %d tuples, want %d", enum.Name(id), got, len(want))
		}
	}
}

func TestBUCValidation(t *testing.T) {
	hier := flatHier(t)
	ft := randomFact(t, 10, 1)
	if _, err := Build(ft, hier, specs(), Options{}); err == nil {
		t.Error("missing dir accepted")
	}
	if _, err := Build(ft, hier, nil, Options{Dir: t.TempDir()}); err == nil {
		t.Error("missing specs accepted")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("empty dir opened")
	}
}

func TestBUCEmptyTable(t *testing.T) {
	hier := flatHier(t)
	ft := relation.NewFactTable(&relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M"}}, 0)
	st, err := Build(ft, hier, specs(), Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tuples != 0 {
		t.Errorf("empty table produced %d tuples", st.Tuples)
	}
}
